package dialogue

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/thingtalk"
)

// testSchemas declares a thermostat (enum mode), a light (boolean power plus
// a string name) and a speaker (string device): one function per rewrite
// family.
func testSchemas() thingtalk.SchemaMap {
	m := thingtalk.SchemaMap{}
	m.Add(&thingtalk.FunctionSchema{
		Class: "thermostat", Name: "set_mode", Kind: thingtalk.KindAction,
		Canonical: "set mode",
		Params: []thingtalk.ParamSpec{
			{Name: "mode", Type: thingtalk.EnumType{Values: []string{"heat", "cool", "auto"}}, Dir: thingtalk.DirInReq},
		},
	})
	m.Add(&thingtalk.FunctionSchema{
		Class: "light", Name: "set_power", Kind: thingtalk.KindAction,
		Canonical: "set power",
		Params: []thingtalk.ParamSpec{
			{Name: "power", Type: thingtalk.BoolType{}, Dir: thingtalk.DirInReq},
			{Name: "name", Type: thingtalk.StringType{}, Dir: thingtalk.DirInOpt},
		},
	})
	m.Add(&thingtalk.FunctionSchema{
		Class: "speaker", Name: "play", Kind: thingtalk.KindAction,
		Canonical: "play",
		Params: []thingtalk.ParamSpec{
			{Name: "song", Type: thingtalk.StringType{}, Dir: thingtalk.DirInReq},
		},
	})
	return m
}

func seedExamples() []dataset.Example {
	// Typecheck resolves each parameter's declared type into the program,
	// like the synthesis pipeline's examples; eval compares typechecked
	// predictions against gold, so untyped seeds would never match.
	mk := func(words []string, p *thingtalk.Program) dataset.Example {
		if err := thingtalk.Typecheck(p, testSchemas()); err != nil {
			panic(err)
		}
		return dataset.Example{Words: words, Program: p, Group: dataset.GroupSynthesized}
	}
	return []dataset.Example{
		mk([]string{"set", "the", "thermostat", "to", "heat"},
			&thingtalk.Program{Stream: thingtalk.Now(), Action: thingtalk.Do("thermostat", "set_mode",
				thingtalk.In("mode", thingtalk.EnumValue("heat")))}),
		mk([]string{"turn", "on", "the", "kitchen", "light"},
			&thingtalk.Program{Stream: thingtalk.Now(), Action: thingtalk.Do("light", "set_power",
				thingtalk.In("power", thingtalk.BoolValue(true)),
				thingtalk.In("name", thingtalk.StringValue("kitchen")))}),
		mk([]string{"play", "thunder", "road"},
			&thingtalk.Program{Stream: thingtalk.Now(), Action: thingtalk.Do("speaker", "play",
				thingtalk.In("song", thingtalk.StringValue("thunder", "road")))}),
	}
}

// manySeeds tiles the base examples past one chunk so multi-worker runs
// actually split the work.
func manySeeds(n int) []dataset.Example {
	base := seedExamples()
	out := make([]dataset.Example, 0, n)
	for len(out) < n {
		for i := range base {
			if len(out) >= n {
				break
			}
			out = append(out, base[i].Clone())
		}
	}
	return out
}

func testCfg(workers int) Config {
	return Config{
		Seed:    42,
		Turns:   3,
		Workers: workers,
		Schemas: testSchemas(),
		Encode:  thingtalk.EncodeOptions{TypeAnnotations: true, Schemas: testSchemas()},
	}
}

func TestSynthesizeSessions(t *testing.T) {
	sessions := Synthesize(seedExamples(), testCfg(1))
	if len(sessions) != len(seedExamples()) {
		t.Fatalf("got %d sessions, want %d", len(sessions), len(seedExamples()))
	}
	schemas := testSchemas()
	for _, s := range sessions {
		if len(s.Turns) < 2 {
			t.Fatalf("session %s has %d turns, want >= 2", s.ID, len(s.Turns))
		}
		if s.Turns[0].Context != nil || s.Turns[0].Rewrite != "" {
			t.Errorf("session %s first turn carries context or rewrite", s.ID)
		}
		for i := 1; i < len(s.Turns); i++ {
			turn := s.Turns[i]
			if turn.Rewrite == "" {
				t.Errorf("session %s turn %d has no rewrite family", s.ID, i)
			}
			if !reflect.DeepEqual(turn.Context, s.Turns[i-1].Target) {
				t.Errorf("session %s turn %d context != previous target", s.ID, i)
			}
			if turn.Program.String() == s.Turns[i-1].Program.String() {
				t.Errorf("session %s turn %d rewrite left the program unchanged: %s", s.ID, i, turn.Program)
			}
			if err := thingtalk.Typecheck(turn.Program, schemas); err != nil {
				t.Errorf("session %s turn %d rewritten program fails typecheck: %v", s.ID, i, err)
			}
			if len(turn.Words) == 0 {
				t.Errorf("session %s turn %d has an empty utterance", s.ID, i)
			}
		}
	}
}

// TestSynthesizeWorkerCountDeterminism: the session stream is bit-identical
// for every worker count, the same contract as synthesis.SynthesizeStream.
func TestSynthesizeWorkerCountDeterminism(t *testing.T) {
	seeds := manySeeds(100)
	want := Synthesize(seeds, testCfg(1))
	if len(want) == 0 {
		t.Fatal("no sessions synthesized")
	}
	for _, workers := range []int{2, 3, 8} {
		got := Synthesize(seeds, testCfg(workers))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d sessions, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || len(got[i].Turns) != len(want[i].Turns) {
				t.Fatalf("workers=%d session %d shape differs", workers, i)
			}
			for j := range want[i].Turns {
				a, b := want[i].Turns[j], got[i].Turns[j]
				if strings.Join(a.Words, " ") != strings.Join(b.Words, " ") ||
					strings.Join(a.Target, " ") != strings.Join(b.Target, " ") ||
					strings.Join(a.Context, " ") != strings.Join(b.Context, " ") ||
					a.Rewrite != b.Rewrite {
					t.Fatalf("workers=%d session %d turn %d differs:\n  %v | %v\n  %v | %v",
						workers, i, j, a.Words, a.Target, b.Words, b.Target)
				}
			}
		}
	}
}

func TestSynthesizeMaxSessionsAndFamilies(t *testing.T) {
	cfg := testCfg(1)
	cfg.MaxSessions = 2
	sessions := Synthesize(manySeeds(50), cfg)
	if len(sessions) > 2 {
		t.Errorf("MaxSessions=2 produced %d sessions", len(sessions))
	}

	// Across many seeds all three families fire.
	famSeen := map[string]bool{}
	for _, s := range Synthesize(manySeeds(120), testCfg(1)) {
		for _, turn := range s.Turns[1:] {
			famSeen[turn.Rewrite] = true
		}
	}
	for _, fam := range []string{"substitute", "polarity", "coreference"} {
		if !famSeen[fam] {
			t.Errorf("rewrite family %q never fired", fam)
		}
	}
}

func TestPairsAndSplitTurns(t *testing.T) {
	sessions := Synthesize(seedExamples(), testCfg(1))
	pairs := Pairs(sessions)
	total := 0
	for _, s := range sessions {
		total += len(s.Turns)
	}
	if len(pairs) != total {
		t.Fatalf("Pairs returned %d pairs for %d turns", len(pairs), total)
	}
	first, follow := SplitTurns(sessions)
	if len(first) != len(sessions) {
		t.Errorf("SplitTurns: %d first turns for %d sessions", len(first), len(sessions))
	}
	if len(first)+len(follow) != total {
		t.Errorf("SplitTurns dropped turns: %d + %d != %d", len(first), len(follow), total)
	}
	ctxPairs := 0
	for _, p := range pairs {
		if len(p.Ctx) > 0 {
			ctxPairs++
		}
	}
	if ctxPairs != len(follow) {
		t.Errorf("%d contextual pairs, want %d (one per follow-up)", ctxPairs, len(follow))
	}
}
