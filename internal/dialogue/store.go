package dialogue

import (
	"container/list"
	"sync"
)

// Store is a bounded LRU session store: the last accepted program tokens per
// (session id, skill). The serving tier consults it to build the contextual
// parser's decoding context for follow-up requests, and refreshes it with
// every accepted parse. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[storeKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type storeKey struct {
	session string
	skill   string
}

type storeEntry struct {
	key     storeKey
	program []string
}

// DefaultStoreCapacity bounds a store built with capacity <= 0.
const DefaultStoreCapacity = 1024

// NewStore builds a session store holding at most capacity sessions
// (<= 0 uses DefaultStoreCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{cap: capacity, ll: list.New(), items: map[storeKey]*list.Element{}}
}

// Get returns the last accepted program of a session and marks it
// recently used. The returned slice is shared: callers must not mutate it.
func (s *Store) Get(session, skill string) ([]string, bool) {
	if s == nil || session == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[storeKey{session, skill}]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*storeEntry).program, true
}

// Put records a session's accepted program, evicting the least recently used
// session at capacity.
func (s *Store) Put(session, skill string, program []string) {
	if s == nil || session == "" || len(program) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	key := storeKey{session, skill}
	if el, ok := s.items[key]; ok {
		el.Value.(*storeEntry).program = program
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&storeEntry{key: key, program: program})
	for s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*storeEntry).key)
		s.evictions++
	}
}

// Drop forgets one session (all skills use separate keys; this drops one
// (session, skill) pair).
func (s *Store) Drop(session, skill string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[storeKey{session, skill}]; ok {
		s.ll.Remove(el)
		delete(s.items, storeKey{session, skill})
	}
}

// Len returns the number of stored sessions.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// StoreStats is a snapshot of the store's counters.
type StoreStats struct {
	Size      int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Stats snapshots the hit/miss/eviction counters.
func (s *Store) Stats() StoreStats {
	if s == nil {
		return StoreStats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Size: s.ll.Len(), Hits: s.hits, Misses: s.misses, Evictions: s.evictions}
}
