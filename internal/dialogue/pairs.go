package dialogue

import (
	"repro/internal/eval"
	"repro/internal/model"
)

// Pairs flattens sessions into contextual training pairs: every turn
// becomes one pair, follow-up turns carrying the previous turn's target
// serialization as decoding context.
func Pairs(sessions []Session) []model.Pair {
	var out []model.Pair
	for _, s := range sessions {
		for _, t := range s.Turns {
			out = append(out, model.Pair{Src: t.Words, Tgt: t.Target, Ctx: t.Context})
		}
	}
	return out
}

// TurnSamples converts sessions into the eval package's multi-turn form:
// one ordered TurnSample sequence per session, follow-ups carrying the gold
// previous program as context (eval.EvaluateDialogue teacher-forces it;
// eval.EvaluateFleetDialogue ignores it and lets the fleet's session store
// supply the live one).
func TurnSamples(sessions []Session) [][]eval.TurnSample {
	out := make([][]eval.TurnSample, len(sessions))
	for i, s := range sessions {
		turns := make([]eval.TurnSample, len(s.Turns))
		for j, t := range s.Turns {
			turns[j] = eval.TurnSample{Words: t.Words, Context: t.Context, Program: t.Program}
		}
		out[i] = turns
	}
	return out
}

// SplitTurns partitions sessions' turns into first turns and follow-ups,
// the two accuracy buckets of the multi-turn evaluation.
func SplitTurns(sessions []Session) (first, followups []Turn) {
	for _, s := range sessions {
		for i, t := range s.Turns {
			if i == 0 {
				first = append(first, t)
			} else {
				followups = append(followups, t)
			}
		}
	}
	return first, followups
}
