// Package dialogue synthesizes multi-turn command sessions and tracks
// per-session conversational state for serving.
//
// Genie's synthesis (Section 3.1) produces single commands; real assistant
// traffic arrives as short dialogues whose follow-up turns lean on the
// previous command ("turn it off", "make it warmer", "and the bedroom one
// too"). This package closes that gap with a contextual construct family:
// every synthesized session starts from a sampled single-turn example and
// each follow-up turn rewrites the previous turn's program — parameter
// substitution, polarity flip, or device/value coreference — paired with a
// follow-up utterance template. The follow-up's gold program is the complete
// rewritten program, so a parser must combine the short utterance with the
// previous program (its decoding context) to recover it.
//
// Synthesis is deterministic with the same contract as
// synthesis.SynthesizeStream: seeds are processed in fixed-size chunks, each
// chunk draws from an RNG derived from (Config.Seed, chunk index), and chunk
// results merge in chunk order — the output is bit-identical for every
// Workers setting, including Workers=1.
//
//genielint:deterministic
package dialogue

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"repro/internal/dataset"
	"repro/internal/params"
	"repro/internal/thingtalk"
)

// chunkSize is the unit of deterministic work distribution: every chunk of
// seed examples owns one derived RNG stream regardless of worker count.
const chunkSize = 16

// Config controls session synthesis.
type Config struct {
	// Seed makes the run deterministic; for a fixed seed the output is
	// identical regardless of Workers.
	Seed int64
	// Turns is the number of turns per session (first turn included);
	// values below 2 default to 3.
	Turns int
	// MaxSessions caps the number of produced sessions (0 = one per seed).
	MaxSessions int
	// Workers is the number of synthesis goroutines (0 = GOMAXPROCS,
	// 1 = fully sequential). The produced sessions do not depend on it.
	Workers int
	// Schemas resolves parameter types for the rewrite families.
	Schemas thingtalk.SchemaSource
	// Encode serializes programs into the Target and Context token
	// sequences; it must match the parser's target serialization.
	Encode thingtalk.EncodeOptions
}

// Turn is one exchange of a session.
type Turn struct {
	// Words is the user utterance.
	Words []string
	// Program is the gold program after this turn.
	Program *thingtalk.Program
	// Target is Program serialized under Config.Encode.
	Target []string
	// Context is the previous turn's Target (nil on the first turn); it is
	// the contextual parser's second attended memory.
	Context []string
	// Rewrite names the construct family that produced a follow-up turn
	// ("substitute", "polarity", "coreference"); empty on the first turn.
	Rewrite string
}

// Session is one synthesized dialogue.
type Session struct {
	ID    string
	Turns []Turn
}

// Synthesize derives multi-turn sessions from single-turn seed examples.
// Seeds whose programs offer no rewritable parameter site yield no session.
func Synthesize(seeds []dataset.Example, cfg Config) []Session {
	if cfg.Turns < 2 {
		cfg.Turns = 3
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxSessions > 0 && len(seeds) > cfg.MaxSessions {
		seeds = seeds[:cfg.MaxSessions]
	}
	nChunks := (len(seeds) + chunkSize - 1) / chunkSize
	results := make([][]Session, nChunks)
	runChunk := func(c int) {
		lo, hi := c*chunkSize, (c+1)*chunkSize
		if hi > len(seeds) {
			hi = len(seeds)
		}
		rng := rand.New(rand.NewSource(params.DeriveSeed(cfg.Seed, "dialogue", c)))
		var out []Session
		for i := lo; i < hi; i++ {
			if s, ok := buildSession(&seeds[i], rng, cfg); ok {
				s.ID = fmt.Sprintf("sess-%d", i)
				out = append(out, s)
			}
		}
		results[c] = out
	}
	if cfg.Workers == 1 || nChunks <= 1 {
		for c := 0; c < nChunks; c++ {
			runChunk(c)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for c := range jobs {
					runChunk(c)
				}
			}()
		}
		for c := 0; c < nChunks; c++ {
			jobs <- c
		}
		close(jobs)
		wg.Wait()
	}
	var out []Session
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// buildSession grows one session from a seed example. A rewrite family that
// fails to apply falls through to the next; a turn with no applicable family
// ends the session early (two turns minimum, or no session at all).
func buildSession(e *dataset.Example, rng *rand.Rand, cfg Config) (Session, bool) {
	first := Turn{
		Words:   append([]string(nil), e.Words...),
		Program: e.Program.Clone(),
	}
	first.Target = first.Program.Encode(cfg.Encode)
	s := Session{Turns: []Turn{first}}
	prev := &s.Turns[0]
	for t := 1; t < cfg.Turns; t++ {
		turn, ok := rewriteTurn(prev.Program, rng, cfg)
		if !ok {
			break
		}
		turn.Context = prev.Target
		s.Turns = append(s.Turns, turn)
		prev = &s.Turns[len(s.Turns)-1]
	}
	return s, len(s.Turns) >= 2
}

// rewriteFamilies lists the contextual construct families in canonical
// order; applicability is decided per program, and the applied family is
// drawn uniformly from the applicable ones.
var rewriteFamilies = []struct {
	name  string
	apply func([]site, *rand.Rand, Config) (words []string, ok bool)
}{
	{"substitute", rewriteSubstitute},
	{"polarity", rewritePolarity},
	{"coreference", rewriteCoreference},
}

// rewriteTurn clones the previous program, mutates one parameter site via a
// randomly drawn applicable family, and pairs the result with a follow-up
// utterance.
func rewriteTurn(prev *thingtalk.Program, rng *rand.Rand, cfg Config) (Turn, bool) {
	prog := prev.Clone()
	sites := collectSites(prog, cfg.Schemas)
	if len(sites) == 0 {
		return Turn{}, false
	}
	var applicable []int
	for i, f := range rewriteFamilies {
		if len(familySites(f.name, sites)) > 0 {
			applicable = append(applicable, i)
		}
	}
	if len(applicable) == 0 {
		return Turn{}, false
	}
	f := rewriteFamilies[applicable[rng.Intn(len(applicable))]]
	words, ok := f.apply(familySites(f.name, sites), rng, cfg)
	if !ok {
		return Turn{}, false
	}
	if cfg.Schemas != nil {
		prog = thingtalk.Canonicalize(prog, cfg.Schemas)
	}
	return Turn{
		Words:   words,
		Program: prog,
		Target:  prog.Encode(cfg.Encode),
		Rewrite: f.name,
	}, true
}

// site is one mutable parameter value inside a program: an invocation input
// or a filter atom, with its resolved declared type.
type site struct {
	val   *thingtalk.Value
	param string
	typ   thingtalk.Type
}

// collectSites walks the program's invocations and predicates gathering
// rewritable constant values in deterministic traversal order.
func collectSites(p *thingtalk.Program, schemas thingtalk.SchemaSource) []site {
	var out []site
	invs := p.Invocations()
	for _, inv := range invs {
		var fs *thingtalk.FunctionSchema
		if schemas != nil {
			fs, _ = schemas.Schema(inv.Class, inv.Function)
		}
		for i := range inv.In {
			ip := &inv.In[i]
			typ := ip.Type
			if typ == nil && fs != nil {
				if ps, ok := fs.Param(ip.Name); ok {
					typ = ps.Type
				}
			}
			if typ == nil || !rewritableValue(ip.Value) {
				continue
			}
			out = append(out, site{val: &ip.Value, param: ip.Name, typ: typ})
		}
	}
	collectPredSites(p, invs, schemas, &out)
	return out
}

// collectPredSites gathers filter-atom sites; an atom's type comes from its
// recorded ParamType or, failing that, the first invocation schema that
// declares an output parameter of that name.
func collectPredSites(p *thingtalk.Program, invs []*thingtalk.Invocation, schemas thingtalk.SchemaSource, out *[]site) {
	var walk func(pr *thingtalk.Predicate)
	walk = func(pr *thingtalk.Predicate) {
		if pr == nil {
			return
		}
		switch pr.Kind {
		case thingtalk.PredAtom:
			typ := pr.ParamType
			if typ == nil && schemas != nil {
				for _, inv := range invs {
					fs, ok := schemas.Schema(inv.Class, inv.Function)
					if !ok {
						continue
					}
					if ps, ok := fs.Param(pr.Param); ok && ps.Dir == thingtalk.DirOut {
						typ = ps.Type
						break
					}
				}
			}
			if typ != nil && rewritableValue(pr.Value) {
				*out = append(*out, site{val: &pr.Value, param: pr.Param, typ: typ})
			}
		case thingtalk.PredNot, thingtalk.PredAnd, thingtalk.PredOr:
			for _, ch := range pr.Children {
				walk(ch)
			}
		case thingtalk.PredExternal:
			walk(pr.InnerPred)
		}
	}
	var walkQuery func(q *thingtalk.Query)
	walkQuery = func(q *thingtalk.Query) {
		if q == nil {
			return
		}
		walk(q.Predicate)
		walkQuery(q.Inner)
		walkQuery(q.Right)
	}
	var walkStream func(st *thingtalk.Stream)
	walkStream = func(st *thingtalk.Stream) {
		if st == nil {
			return
		}
		walk(st.Predicate)
		walkQuery(st.Monitor)
		walkStream(st.Inner)
	}
	walkStream(p.Stream)
	walkQuery(p.Query)
}

// rewritableValue reports whether a value is a concrete constant the rewrite
// families can replace (slots, placeholders and parameter passing are not).
func rewritableValue(v thingtalk.Value) bool {
	switch v.Kind {
	case thingtalk.VString, thingtalk.VBool, thingtalk.VEnum:
		return true
	}
	return false
}

// familySites filters sites by family applicability.
func familySites(family string, sites []site) []site {
	var out []site
	for _, s := range sites {
		switch family {
		case "substitute":
			if et, ok := s.typ.(thingtalk.EnumType); ok && len(et.Values) >= 2 && s.val.Kind == thingtalk.VEnum {
				out = append(out, s)
			}
		case "polarity":
			if _, ok := s.typ.(thingtalk.BoolType); ok && s.val.Kind == thingtalk.VBool {
				out = append(out, s)
			}
		case "coreference":
			if thingtalk.IsStringLike(s.typ) && s.val.Kind == thingtalk.VString && len(s.val.Words) > 0 {
				out = append(out, s)
			}
		}
	}
	return out
}

// enumWords renders an enum member the way sentences spell it (params
// package convention: underscores become spaces).
func enumWords(member string) []string {
	return strings.Fields(strings.ReplaceAll(member, "_", " "))
}

// rewriteSubstitute swaps an enum parameter for a different member of its
// enum ("make it warmer" over a thermostat mode).
func rewriteSubstitute(sites []site, rng *rand.Rand, _ Config) ([]string, bool) {
	s := sites[rng.Intn(len(sites))]
	et := s.typ.(thingtalk.EnumType)
	var others []string
	for _, m := range et.Values {
		if m != s.val.Name {
			others = append(others, m)
		}
	}
	if len(others) == 0 {
		return nil, false
	}
	member := others[rng.Intn(len(others))]
	*s.val = thingtalk.EnumValue(member)
	w := enumWords(member)
	templates := [][]string{
		append([]string{"change", "it", "to"}, w...),
		append([]string{"make", "it"}, w...),
		append([]string{"actually", "set", "it", "to"}, w...),
		append(append([]string{"no", ","}, w...), "instead"),
	}
	return templates[rng.Intn(len(templates))], true
}

// rewritePolarity flips a boolean parameter ("turn it off").
func rewritePolarity(sites []site, rng *rand.Rand, _ Config) ([]string, bool) {
	s := sites[rng.Intn(len(sites))]
	flipped := !s.val.Bool
	*s.val = thingtalk.BoolValue(flipped)
	w := "false"
	if flipped {
		w = "true"
	}
	templates := [][]string{
		{"turn", "it", w},
		{"actually", "make", "that", w},
		{"switch", "it", "to", w},
	}
	return templates[rng.Intn(len(templates))], true
}

// rewriteCoreference re-targets a string-like parameter at a fresh value
// ("and the bedroom one too"): the previous program repeats with only the
// referenced entity replaced.
func rewriteCoreference(sites []site, rng *rand.Rand, cfg Config) ([]string, bool) {
	s := sites[rng.Intn(len(sites))]
	sampler := params.NewSampler()
	for attempt := 0; attempt < 4; attempt++ {
		sample := sampler.Draw(rng, s.typ, s.param)
		if sample.Value.Kind != thingtalk.VString || len(sample.Value.Words) == 0 {
			return nil, false
		}
		if strings.Join(sample.Value.Words, " ") == strings.Join(s.val.Words, " ") {
			continue
		}
		*s.val = sample.Value
		templates := [][]string{
			append(append([]string{"and", "the"}, sample.Words...), "one", "too"),
			append([]string{"do", "the", "same", "for"}, sample.Words...),
			append([]string{"now", "for"}, sample.Words...),
		}
		return templates[rng.Intn(len(templates))], true
	}
	return nil, false
}
