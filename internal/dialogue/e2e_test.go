package dialogue

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/model"
)

// e2eShared trains one contextual parser on synthesized sessions and holds
// the held-out slice, shared across the end-to-end tests (training dominates
// the cost).
var e2eShared struct {
	once    sync.Once
	p       *model.Parser
	holdout []Session
}

// e2eTrainedParser synthesizes multi-turn sessions, trains a contextual
// parser on most of them, and keeps the rest as a held-out eval split drawn
// from the same distribution (the held-out chunks own different RNG streams,
// so their rewrite draws, templates and sampled values are fresh).
func e2eTrainedParser(t *testing.T) (*model.Parser, []Session) {
	t.Helper()
	e2eShared.once.Do(func() {
		sessions := Synthesize(manySeeds(140), testCfg(0))
		if len(sessions) < 40 {
			t.Fatalf("only %d sessions synthesized", len(sessions))
		}
		split := len(sessions) * 3 / 4
		train, holdout := sessions[:split], sessions[split:]
		cfg := model.Config{
			EmbedDim: 28, HiddenDim: 40, LR: 5e-3, Epochs: 14,
			EvalEvery: 1 << 30, PointerGen: true, MaxDecodeLen: 32,
			MinVocabCount: 2, Seed: 11, Contextual: true,
		}
		e2eShared.p = model.Train(Pairs(train), nil, nil, cfg)
		e2eShared.holdout = holdout
	})
	return e2eShared.p, e2eShared.holdout
}

// TestMultiTurnAccuracyGap is the PR's acceptance bound end to end:
// synthesize K-turn sessions, train a contextual parser on the flattened
// pairs, and score a held-out multi-turn split with teacher-forced context.
// Follow-up-turn program accuracy must land within 10 points of first-turn
// accuracy — the contextual head plus context pointer-copy must carry prior
// arguments into follow-up programs about as reliably as the single-turn
// path parses opening commands.
func TestMultiTurnAccuracyGap(t *testing.T) {
	p, holdout := e2eTrainedParser(t)
	report := eval.EvaluateDialogue(p, TurnSamples(holdout), testSchemas(), 0)
	if report.First.Total != len(holdout) || report.Followups.Total == 0 {
		t.Fatalf("eval split shape: %d first turns for %d sessions, %d follow-ups",
			report.First.Total, len(holdout), report.Followups.Total)
	}
	first, follow := report.FirstTurnAccuracy(), report.FollowupAccuracy()
	t.Logf("first-turn %.1f%% (%d), follow-up %.1f%% (%d), gap %.1f",
		first, report.First.Total, follow, report.Followups.Total, report.Gap())
	if first < 60 {
		t.Errorf("first-turn accuracy %.1f%% is degenerate; the gap bound is meaningless", first)
	}
	if gap := report.Gap(); gap > 10 {
		for _, sess := range holdout {
			for i := 1; i < len(sess.Turns); i++ {
				turn := sess.Turns[i]
				if got := p.ParseContext(turn.Words, turn.Context); strings.Join(got, " ") != strings.Join(turn.Target, " ") {
					t.Logf("%s turn %d (%s): src=%v got=%v want=%v",
						sess.ID, i, turn.Rewrite, turn.Words, got, turn.Target)
				}
			}
		}
		t.Errorf("follow-up accuracy %.1f%% trails first-turn %.1f%% by %.1f points (bound: 10)", follow, first, gap)
	}
}

// TestEmptyContextBitParity: the trained contextual parser decodes every
// held-out first turn (empty context) bit-identically through the contextual
// and the single-turn entry points — the serving tier's plain partition and
// the model's nil-context path agree exactly.
func TestEmptyContextBitParity(t *testing.T) {
	p, holdout := e2eTrainedParser(t)
	for _, sess := range holdout {
		words := sess.Turns[0].Words
		a, as := p.ParseScored(words, 1)
		b, bs := p.ParseContextScored(words, nil, 1)
		if strings.Join(a, " ") != strings.Join(b, " ") || as != bs {
			t.Fatalf("empty-context decode drifted on %v: %v (%v) != %v (%v)", words, a, as, b, bs)
		}
	}
}
