package dialogue

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestStoreLRUAndStats(t *testing.T) {
	s := NewStore(2)
	if _, ok := s.Get("a", "lights"); ok {
		t.Fatal("empty store returned a program")
	}
	s.Put("a", "lights", []string{"p1"})
	s.Put("b", "lights", []string{"p2"})
	if got, ok := s.Get("a", "lights"); !ok || got[0] != "p1" {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	s.Put("c", "lights", []string{"p3"})
	if _, ok := s.Get("b", "lights"); ok {
		t.Error("evicted session b still present")
	}
	if got, ok := s.Get("a", "lights"); !ok || got[0] != "p1" {
		t.Errorf("recently-used session a evicted: %v, %v", got, ok)
	}

	// Same session id under a different skill is a distinct entry.
	s.Put("a", "lights", []string{"p1b"})
	if got, _ := s.Get("a", "lights"); got[0] != "p1b" {
		t.Errorf("Put did not refresh program: %v", got)
	}
	st := s.Stats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want size 2 eviction 1", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stats did not count hits/misses: %+v", st)
	}

	s.Drop("a", "lights")
	if _, ok := s.Get("a", "lights"); ok {
		t.Error("dropped session still present")
	}

	// nil and empty-id degenerate uses are safe no-ops.
	var nilStore *Store
	nilStore.Put("x", "y", []string{"p"})
	if _, ok := nilStore.Get("x", "y"); ok {
		t.Error("nil store returned a program")
	}
	if nilStore.Len() != 0 || nilStore.Stats() != (StoreStats{}) {
		t.Error("nil store has non-zero state")
	}
	s.Put("", "skill", []string{"p"})
	if s.Len() != 1 {
		t.Errorf("empty session id was stored; len = %d", s.Len())
	}
}

// TestStoreConcurrent hammers one store from many goroutines; run with -race
// in CI.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("sess-%d", (w*200+i)%96)
				skill := "skill-a"
				if i%2 == 0 {
					skill = "skill-b"
				}
				s.Put(id, skill, []string{"prog", id})
				if got, ok := s.Get(id, skill); ok {
					if len(got) != 2 || got[1] != id {
						t.Errorf("cross-session bleed: Get(%s) = %v", id, got)
					}
				}
				if i%17 == 0 {
					s.Drop(id, skill)
				}
				_ = s.Stats()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 64 {
		t.Errorf("store exceeded capacity: %d", s.Len())
	}
	st := s.Stats()
	if !strings.Contains(fmt.Sprint(st), "Hits") && st.Hits == 0 {
		t.Log("no hits recorded (acceptable under heavy eviction)")
	}
}
