package thingpedia

// Communication skills: Gmail, Slack, SMS, Telegram.

const builtinComms = `
class @com.gmail easy {
  monitorable list query inbox(out sender : Entity(tt:email_address),
                               out subject : String,
                               out snippet : String,
                               out labels : Array(String),
                               out date : Date) "emails in my inbox";
  action send_email(in req to : Entity(tt:email_address),
                    in req subject : String,
                    in opt message : String) "send an email";
  action reply(in req message : String) "reply to the latest email";
}

templates {
  np "emails in my inbox" := @com.gmail.inbox ;
  np "my gmail inbox" := @com.gmail.inbox ;
  np "emails from $x" (x : Entity(tt:email_address)) := @com.gmail.inbox filter param:sender == $x ;
  np "emails with subject containing $x" (x : String) := @com.gmail.inbox filter param:subject substr $x ;
  np "emails labeled $x" (x : String) := @com.gmail.inbox filter param:labels contains $x ;
  np "emails i received since the start of the week" := @com.gmail.inbox filter param:date > date:start_of_week ;
  wp "when i receive an email" := monitor ( @com.gmail.inbox ) ;
  wp "when i get an email from $x" (x : Entity(tt:email_address)) := monitor ( @com.gmail.inbox filter param:sender == $x ) ;
  wp "when an email labeled $x arrives" (x : String) := monitor ( @com.gmail.inbox filter param:labels contains $x ) ;
  vp "send an email to $x with subject $y" (x : Entity(tt:email_address), y : String) := @com.gmail.send_email param:to = $x param:subject = $y ;
  vp "email $x about $y" (x : Entity(tt:email_address), y : String) := @com.gmail.send_email param:to = $x param:subject = $y ;
  vp "send an email to $x with subject $y saying $z" (x : Entity(tt:email_address), y : String, z : String) := @com.gmail.send_email param:to = $x param:subject = $y param:message = $z ;
  vp "reply $x to the last email" (x : String) := @com.gmail.reply param:message = $x ;
}

class @com.slack easy {
  monitorable list query channel_history(in req channel : String,
                                         out sender : Entity(tt:username),
                                         out message : String) "messages in a slack channel";
  action send(in req channel : String, in req message : String) "send a slack message";
  action set_status(in req status : String) "set my slack status";
}

templates {
  np "messages in the slack channel $x" (x : String) := @com.slack.channel_history param:channel = $x ;
  np "the slack history of $x" (x : String) := @com.slack.channel_history param:channel = $x ;
  np "slack messages from $y in $x" (x : String, y : Entity(tt:username)) := @com.slack.channel_history param:channel = $x filter param:sender == $y ;
  wp "when somebody posts in the slack channel $x" (x : String) := monitor ( @com.slack.channel_history param:channel = $x ) ;
  wp "when there is a new message in $x on slack" (x : String) := monitor ( @com.slack.channel_history param:channel = $x ) ;
  vp "send $y to the slack channel $x" (x : String, y : String) := @com.slack.send param:channel = $x param:message = $y ;
  vp "post $y in $x on slack" (x : String, y : String) := @com.slack.send param:channel = $x param:message = $y ;
  vp "let the team know $y on slack channel $x" (x : String, y : String) := @com.slack.send param:channel = $x param:message = $y ;
  vp "set my slack status to $x" (x : String) := @com.slack.set_status param:status = $x ;
}

class @org.thingpedia.builtin.sms {
  monitorable list query inbox(out sender : Entity(tt:phone_number),
                               out body : String) "text messages i received";
  action send(in req to : Entity(tt:phone_number), in req body : String) "send a text message";
}

templates {
  np "my text messages" := @org.thingpedia.builtin.sms.inbox ;
  np "sms messages i received" := @org.thingpedia.builtin.sms.inbox ;
  np "text messages from $x" (x : Entity(tt:phone_number)) := @org.thingpedia.builtin.sms.inbox filter param:sender == $x ;
  wp "when i receive a text" := monitor ( @org.thingpedia.builtin.sms.inbox ) ;
  wp "when $x texts me" (x : Entity(tt:phone_number)) := monitor ( @org.thingpedia.builtin.sms.inbox filter param:sender == $x ) ;
  vp "text $x saying $y" (x : Entity(tt:phone_number), y : String) := @org.thingpedia.builtin.sms.send param:to = $x param:body = $y ;
  vp "send a text to $x saying $y" (x : Entity(tt:phone_number), y : String) := @org.thingpedia.builtin.sms.send param:to = $x param:body = $y ;
  vp "message $x $y" (x : Entity(tt:phone_number), y : String) := @org.thingpedia.builtin.sms.send param:to = $x param:body = $y ;
}

class @com.telegram {
  monitorable list query messages(out sender : Entity(tt:username),
                                  out message : String) "telegram messages i received";
  action send(in req to : Entity(tt:username), in req message : String) "send a telegram message";
}

templates {
  np "my telegram messages" := @com.telegram.messages ;
  np "telegram messages from $x" (x : Entity(tt:username)) := @com.telegram.messages filter param:sender == $x ;
  wp "when i get a telegram" := monitor ( @com.telegram.messages ) ;
  wp "when $x messages me on telegram" (x : Entity(tt:username)) := monitor ( @com.telegram.messages filter param:sender == $x ) ;
  vp "send a telegram to $x saying $y" (x : Entity(tt:username), y : String) := @com.telegram.send param:to = $x param:message = $y ;
  vp "telegram $y to $x" (x : Entity(tt:username), y : String) := @com.telegram.send param:to = $x param:message = $y ;
}
`
