package thingpedia

import "sync"

// Builtin returns the built-in simulated Thingpedia library: 40+ skills
// modeled after the deployment the paper evaluates (Section 5: 44 skills,
// 131 functions, 178 distinct parameters), each with developer-supplied
// primitive templates in the Table 1 style.
//
// The library is parsed once and shared; callers must treat it as read-only
// (synthesis clones every fragment before instantiating it).
func Builtin() *Library {
	builtinOnce.Do(func() {
		builtinLib = MustParseLibrary(
			builtinSocial,
			builtinComms,
			builtinMedia,
			builtinNews,
			builtinIoT,
			builtinProductivity,
			builtinLife,
			builtinSpotify,
			builtinExtra,
		)
	})
	return builtinLib
}

var (
	builtinOnce sync.Once
	builtinLib  *Library
)

// SpotifyOnly returns a library holding just the Section 6.1 Spotify skill,
// for the music case study.
func SpotifyOnly() *Library { return MustParseLibrary(builtinSpotify) }
