package thingpedia

// Social-network skills: Twitter, Facebook, Instagram, Reddit, LinkedIn.

const builtinSocial = `
class @com.twitter easy {
  monitorable list query timeline(out author : Entity(tt:username),
                                  out text : String,
                                  out hashtags : Array(String),
                                  out tweet_id : Entity(com.twitter:id)) "tweets from people i follow";
  monitorable list query search(in req query : String,
                                out author : Entity(tt:username),
                                out text : String,
                                out tweet_id : Entity(com.twitter:id)) "tweets matching a search";
  monitorable list query my_tweets(out text : String,
                                   out hashtags : Array(String),
                                   out tweet_id : Entity(com.twitter:id)) "my tweets";
  monitorable list query direct_messages(out sender : Entity(tt:username),
                                         out message : String) "direct messages i received";
  action post(in req status : String) "tweet";
  action post_picture(in req picture_url : URL, in opt caption : String) "tweet a picture";
  action retweet(in req tweet_id : Entity(com.twitter:id)) "retweet";
  action follow(in req user_name : Entity(tt:username)) "follow someone on twitter";
  action send_direct_message(in req to : Entity(tt:username), in req message : String) "send a twitter dm";
}

templates {
  np "tweets in my timeline" := @com.twitter.timeline ;
  np "tweets from people i follow" := @com.twitter.timeline ;
  np "my twitter timeline" := @com.twitter.timeline ;
  np "tweets by $x" (x : Entity(tt:username)) := @com.twitter.timeline filter param:author == $x ;
  np "tweets with hashtag $x" (x : String) := @com.twitter.timeline filter param:hashtags contains $x ;
  np "tweets mentioning $x" (x : String) := @com.twitter.timeline filter param:text substr $x ;
  wp "when someone i follow tweets" := monitor ( @com.twitter.timeline ) ;
  wp "when $x tweets" (x : Entity(tt:username)) := monitor ( @com.twitter.timeline filter param:author == $x ) ;
  wp "when there is a tweet with hashtag $x" (x : String) := monitor ( @com.twitter.timeline filter param:hashtags contains $x ) ;
  np "tweets about $x" (x : String) := @com.twitter.search param:query = $x ;
  np "twitter search results for $x" (x : String) := @com.twitter.search param:query = $x ;
  vp "search twitter for $x" (x : String) := @com.twitter.search param:query = $x ;
  wp "when somebody tweets about $x" (x : String) := monitor ( @com.twitter.search param:query = $x ) ;
  np "my tweets" := @com.twitter.my_tweets ;
  np "tweets i posted" := @com.twitter.my_tweets ;
  wp "when i tweet" := monitor ( @com.twitter.my_tweets ) ;
  np "my twitter direct messages" := @com.twitter.direct_messages ;
  np "twitter dms i received" := @com.twitter.direct_messages ;
  wp "when i receive a twitter dm" := monitor ( @com.twitter.direct_messages ) ;
  wp "when $x sends me a direct message" (x : Entity(tt:username)) := monitor ( @com.twitter.direct_messages filter param:sender == $x ) ;
  vp "tweet $x" (x : String) := @com.twitter.post param:status = $x ;
  vp "post $x on twitter" (x : String) := @com.twitter.post param:status = $x ;
  vp "share $x with my twitter followers" (x : String) := @com.twitter.post param:status = $x ;
  vp "post the picture $x on twitter" (x : URL) := @com.twitter.post_picture param:picture_url = $x ;
  vp "tweet the picture $x" (x : URL) := @com.twitter.post_picture param:picture_url = $x ;
  vp "tweet $x with caption $y" (x : URL, y : String) := @com.twitter.post_picture param:picture_url = $x param:caption = $y ;
  vp "retweet $x" (x : Entity(com.twitter:id)) := @com.twitter.retweet param:tweet_id = $x ;
  
  vp "follow $x on twitter" (x : Entity(tt:username)) := @com.twitter.follow param:user_name = $x ;
  vp "send a twitter dm to $x saying $y" (x : Entity(tt:username), y : String) := @com.twitter.send_direct_message param:to = $x param:message = $y ;
  vp "dm $y to $x on twitter" (x : Entity(tt:username), y : String) := @com.twitter.send_direct_message param:to = $x param:message = $y ;
}

class @com.facebook easy {
  monitorable list query feed(out author : Entity(tt:username),
                              out message : String,
                              out link : URL) "posts in my facebook feed";
  action post(in req status : String) "post on facebook";
  action post_picture(in req picture_url : URL, in opt caption : String) "post a picture on facebook";
}

templates {
  np "posts in my facebook feed" := @com.facebook.feed ;
  np "my facebook news feed" := @com.facebook.feed ;
  np "facebook posts by $x" (x : Entity(tt:username)) := @com.facebook.feed filter param:author == $x ;
  np "facebook posts mentioning $x" (x : String) := @com.facebook.feed filter param:message substr $x ;
  wp "when somebody posts on facebook" := monitor ( @com.facebook.feed ) ;
  wp "when $x posts on facebook" (x : Entity(tt:username)) := monitor ( @com.facebook.feed filter param:author == $x ) ;
  vp "post $x on facebook" (x : String) := @com.facebook.post param:status = $x ;
  vp "update my facebook status to $x" (x : String) := @com.facebook.post param:status = $x ;
  vp "share $x on facebook" (x : String) := @com.facebook.post param:status = $x ;
  vp "put the picture $x on facebook" (x : URL) := @com.facebook.post_picture param:picture_url = $x ;
  vp "post the picture $x on facebook" (x : URL) := @com.facebook.post_picture param:picture_url = $x ;
  vp "post $x on facebook with caption $y" (x : URL, y : String) := @com.facebook.post_picture param:picture_url = $x param:caption = $y ;
}

class @com.instagram easy {
  monitorable list query my_pictures(out picture_url : URL,
                                     out caption : String,
                                     out hashtags : Array(String)) "my instagram pictures";
  action upload_picture(in req picture_url : URL, in opt caption : String) "upload a picture to instagram";
}

templates {
  np "my instagram pictures" := @com.instagram.my_pictures ;
  np "photos i posted on instagram" := @com.instagram.my_pictures ;
  np "my instagram posts with hashtag $x" (x : String) := @com.instagram.my_pictures filter param:hashtags contains $x ;
  np "instagram pictures with caption containing $x" (x : String) := @com.instagram.my_pictures filter param:caption substr $x ;
  wp "when i post on instagram" := monitor ( @com.instagram.my_pictures ) ;
  wp "when i upload a new instagram photo" := monitor ( @com.instagram.my_pictures ) ;
  vp "upload $x to instagram" (x : URL) := @com.instagram.upload_picture param:picture_url = $x ;
  vp "post the picture $x on instagram" (x : URL) := @com.instagram.upload_picture param:picture_url = $x ;
  vp "post $x on instagram with caption $y" (x : URL, y : String) := @com.instagram.upload_picture param:picture_url = $x param:caption = $y ;
}

class @com.reddit {
  monitorable list query frontpage(in opt subreddit : String,
                                   out title : String,
                                   out link : URL,
                                   out score : Number) "posts on the reddit front page";
  action submit(in req title : String, in req link : URL) "submit a link to reddit";
}

templates {
  np "posts on reddit" := @com.reddit.frontpage ;
  np "the reddit front page" := @com.reddit.frontpage ;
  np "posts on the $x subreddit" (x : String) := @com.reddit.frontpage param:subreddit = $x ;
  np "reddit posts with more than $x upvotes" (x : Number) := @com.reddit.frontpage filter param:score > $x ;
  np "reddit posts about $x" (x : String) := @com.reddit.frontpage filter param:title substr $x ;
  wp "when a post reaches the reddit front page" := monitor ( @com.reddit.frontpage ) ;
  wp "when there is a new post on the $x subreddit" (x : String) := monitor ( @com.reddit.frontpage param:subreddit = $x ) ;
  vp "submit $x to reddit as $y" (x : URL, y : String) := @com.reddit.submit param:link = $x param:title = $y ;
  vp "post the link $x on reddit titled $y" (x : URL, y : String) := @com.reddit.submit param:link = $x param:title = $y ;
}

class @com.linkedin {
  monitorable query profile(out headline : String,
                            out industry : String,
                            out profile_picture : URL) "my linkedin profile";
  action share(in req status : String) "share on linkedin";
}

templates {
  np "my linkedin profile" := @com.linkedin.profile ;
  np "my linkedin headline" := @com.linkedin.profile ;
  wp "when i update my linkedin profile" := monitor ( @com.linkedin.profile ) ;
  wp "when my linkedin headline changes" := monitor ( @com.linkedin.profile ) on new param:headline ;
  vp "share $x on linkedin" (x : String) := @com.linkedin.share param:status = $x ;
  vp "post $x to my linkedin network" (x : String) := @com.linkedin.share param:status = $x ;
}
`
