package thingpedia

// Productivity skills: Dropbox, Google Drive, GitHub, Todoist, calendar,
// notes.

const builtinProductivity = `
class @com.dropbox easy {
  monitorable query get_space_usage(out used_space : Measure(byte),
                                    out total_space : Measure(byte)) "my dropbox space usage";
  monitorable list query list_folder(in opt folder_name : PathName,
                                     in opt order_by : Enum(modified_time_decreasing,modified_time_increasing),
                                     out file_name : PathName,
                                     out is_folder : Boolean,
                                     out modified_time : Date,
                                     out file_size : Measure(byte)) "files in my dropbox";
  query open(in req file_name : PathName,
             out download_url : URL) "a temporary dropbox link";
  action move(in req old_name : PathName, in req new_name : PathName) "move a dropbox file";
  action delete_file(in req file_name : PathName) "delete a dropbox file";
}

templates {
  np "my dropbox space usage" := @com.dropbox.get_space_usage ;
  np "how much dropbox space i am using" := @com.dropbox.get_space_usage ;
  wp "when my dropbox usage changes" := monitor ( @com.dropbox.get_space_usage ) ;
  np "my dropbox files" := @com.dropbox.list_folder ;
  np "files in my dropbox" := @com.dropbox.list_folder ;
  np "my dropbox files that changed most recently" := @com.dropbox.list_folder param:order_by = enum:modified_time_decreasing ;
  np "my dropbox files that changed this week" := @com.dropbox.list_folder param:order_by = enum:modified_time_decreasing filter param:modified_time > date:start_of_week ;
  np "files in my dropbox folder $x" (x : PathName) := @com.dropbox.list_folder param:folder_name = $x ;
  np "dropbox files bigger than $x" (x : Measure(byte)) := @com.dropbox.list_folder filter param:file_size > $x ;
  np "folders in my dropbox" := @com.dropbox.list_folder filter param:is_folder == true ;
  wp "when i modify a file in dropbox" := monitor ( @com.dropbox.list_folder ) ;
  wp "when i create a file in dropbox" := monitor ( @com.dropbox.list_folder ) on new param:file_name ;
  wp "when files change in my dropbox folder $x" (x : PathName) := monitor ( @com.dropbox.list_folder param:folder_name = $x ) ;
  np "the download url of $x" (x : PathName) := @com.dropbox.open param:file_name = $x ;
  np "a temporary link to $x" (x : PathName) := @com.dropbox.open param:file_name = $x ;
  vp "open $x" (x : PathName) := @com.dropbox.open param:file_name = $x ;
  vp "download $x" (x : PathName) := @com.dropbox.open param:file_name = $x ;
  vp "move $x to $y in dropbox" (x : PathName, y : PathName) := @com.dropbox.move param:new_name = $y param:old_name = $x ;
  vp "rename the dropbox file $x to $y" (x : PathName, y : PathName) := @com.dropbox.move param:new_name = $y param:old_name = $x ;
  vp "delete $x from dropbox" (x : PathName) := @com.dropbox.delete_file param:file_name = $x ;
  vp "remove the dropbox file $x" (x : PathName) := @com.dropbox.delete_file param:file_name = $x ;
}

class @com.google.drive {
  monitorable list query list_files(in opt order_by : Enum(name,created_time,modified_time),
                                    out file_name : PathName,
                                    out file_size : Measure(byte),
                                    out created_time : Date) "files in my google drive";
  action create_file(in req file_name : PathName) "create a google drive file";
}

templates {
  np "files in my google drive" := @com.google.drive.list_files ;
  np "my google drive documents" := @com.google.drive.list_files ;
  np "my newest google drive files" := @com.google.drive.list_files param:order_by = enum:created_time ;
  np "google drive files created since the start of the month" := @com.google.drive.list_files filter param:created_time > date:start_of_month ;
  wp "when a file is added to my google drive" := monitor ( @com.google.drive.list_files ) on new param:file_name ;
  wp "when my google drive changes" := monitor ( @com.google.drive.list_files ) ;
  vp "create a new google drive file named $x" (x : PathName) := @com.google.drive.create_file param:file_name = $x ;
  vp "make a drive document called $x" (x : PathName) := @com.google.drive.create_file param:file_name = $x ;
}

class @com.github easy {
  monitorable list query issues(in opt repo : String,
                                out title : String,
                                out author : Entity(tt:username),
                                out number : Number) "github issues";
  monitorable list query commits(in opt repo : String,
                                 out message : String,
                                 out author : Entity(tt:username)) "commits in a repository";
  action open_issue(in req repo : String, in req title : String, in opt body : String) "open a github issue";
  action star(in req repo : String) "star a repository";
}

templates {
  np "issues in the $x repository" (x : String) := @com.github.issues param:repo = $x ;
  np "github issues on $x" (x : String) := @com.github.issues param:repo = $x ;
  np "open github issues" := @com.github.issues ;
  np "github issues opened by $x" (x : Entity(tt:username)) := @com.github.issues filter param:author == $x ;
  wp "when an issue is opened on $x" (x : String) := monitor ( @com.github.issues param:repo = $x ) ;
  wp "when somebody files a github issue" := monitor ( @com.github.issues ) ;
  np "commits to $x" (x : String) := @com.github.commits param:repo = $x ;
  np "the latest commits" := @com.github.commits ;
  wp "when somebody pushes to $x" (x : String) := monitor ( @com.github.commits param:repo = $x ) ;
  wp "when $x commits code" (x : Entity(tt:username)) := monitor ( @com.github.commits filter param:author == $x ) ;
  vp "open an issue on $x titled $y" (x : String, y : String) := @com.github.open_issue param:repo = $x param:title = $y ;
  vp "file a github issue on $x about $y" (x : String, y : String) := @com.github.open_issue param:repo = $x param:title = $y ;
  vp "star the $x repository" (x : String) := @com.github.star param:repo = $x ;
  vp "star $x on github" (x : String) := @com.github.star param:repo = $x ;
}

class @com.todoist {
  monitorable list query list_tasks(in opt project : String,
                                    out content : String,
                                    out due_date : Date,
                                    out priority : Number) "my todo list";
  action add_task(in req content : String, in opt due_date : Date) "add a task";
  action complete_task(in req content : String) "complete a task";
}

templates {
  np "tasks on my todo list" := @com.todoist.list_tasks ;
  np "my todoist tasks" := @com.todoist.list_tasks ;
  np "tasks in my $x project" (x : String) := @com.todoist.list_tasks param:project = $x ;
  np "tasks due before the end of the day" := @com.todoist.list_tasks filter param:due_date < date:end_of_day ;
  np "my high priority tasks" := @com.todoist.list_tasks filter param:priority >= 3 ;
  wp "when i add a task" := monitor ( @com.todoist.list_tasks ) on new param:content ;
  wp "when my todo list changes" := monitor ( @com.todoist.list_tasks ) ;
  vp "add $x to my todo list" (x : String) := @com.todoist.add_task param:content = $x ;
  vp "remind me to $x" (x : String) := @com.todoist.add_task param:content = $x ;
  vp "add a task $x due $y" (x : String, y : Date) := @com.todoist.add_task param:content = $x param:due_date = $y ;
  vp "mark $x as done" (x : String) := @com.todoist.complete_task param:content = $x ;
  vp "complete the task $x" (x : String) := @com.todoist.complete_task param:content = $x ;
}

class @com.google.calendar {
  monitorable list query list_events(out title : String,
                                     out start_time : Date,
                                     out end_time : Date,
                                     out location : Location) "events on my calendar";
  action create_event(in req title : String, in opt start_time : Date) "create a calendar event";
}

templates {
  np "events on my calendar" := @com.google.calendar.list_events ;
  np "my upcoming appointments" := @com.google.calendar.list_events ;
  np "calendar events before the end of the day" := @com.google.calendar.list_events filter param:start_time < date:end_of_day ;
  np "my meetings this week" := @com.google.calendar.list_events filter param:start_time < date:end_of_week ;
  wp "when an event is added to my calendar" := monitor ( @com.google.calendar.list_events ) on new param:title ;
  wp "when my calendar changes" := monitor ( @com.google.calendar.list_events ) ;
  vp "add $x to my calendar" (x : String) := @com.google.calendar.create_event param:title = $x ;
  vp "schedule $x" (x : String) := @com.google.calendar.create_event param:title = $x ;
  vp "create an event $x starting $y" (x : String, y : Date) := @com.google.calendar.create_event param:start_time = $y param:title = $x ;
}

class @com.evernote {
  monitorable list query list_notes(in opt notebook : String,
                                    out title : String,
                                    out content : String) "my notes";
  action create_note(in req title : String, in opt content : String) "create a note";
  action append_to_note(in req title : String, in req content : String) "append to a note";
}

templates {
  np "my evernote notes" := @com.evernote.list_notes ;
  np "notes in my $x notebook" (x : String) := @com.evernote.list_notes param:notebook = $x ;
  np "notes mentioning $x" (x : String) := @com.evernote.list_notes filter param:content substr $x ;
  wp "when i take a note" := monitor ( @com.evernote.list_notes ) on new param:title ;
  vp "make a note titled $x" (x : String) := @com.evernote.create_note param:title = $x ;
  vp "write down $x" (x : String) := @com.evernote.create_note param:title = $x ;
  vp "create a note $x saying $y" (x : String, y : String) := @com.evernote.create_note param:content = $y param:title = $x ;
  vp "append $y to my note $x" (x : String, y : String) := @com.evernote.append_to_note param:content = $y param:title = $x ;
}
`
