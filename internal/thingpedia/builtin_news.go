package thingpedia

// News, search, weather and finance skills.

const builtinNews = `
class @com.nytimes easy {
  monitorable list query get_front_page(out title : String,
                                        out link : URL,
                                        out updated : Date) "articles on the new york times front page";
}

templates {
  np "articles on the new york times front page" := @com.nytimes.get_front_page ;
  np "new york times headlines" := @com.nytimes.get_front_page ;
  np "the nyt front page" := @com.nytimes.get_front_page ;
  np "new york times articles about $x" (x : String) := @com.nytimes.get_front_page filter param:title substr $x ;
  wp "when the new york times publishes a new article" := monitor ( @com.nytimes.get_front_page ) ;
  wp "when there is breaking news in the new york times" := monitor ( @com.nytimes.get_front_page ) ;
}

class @com.washingtonpost {
  monitorable list query get_article(in opt section : Enum(politics,opinions,local,sports,national,world,business,lifestyle),
                                     out title : String,
                                     out link : URL) "washington post articles";
}

templates {
  np "washington post articles" := @com.washingtonpost.get_article ;
  np "headlines from the washington post" := @com.washingtonpost.get_article ;
  np "washington post $x articles" (x : Enum(politics,opinions,local,sports,national,world,business,lifestyle)) := @com.washingtonpost.get_article param:section = $x ;
  wp "when the washington post publishes an article" := monitor ( @com.washingtonpost.get_article ) ;
  wp "when there is washington post news about $x" (x : String) := monitor ( @com.washingtonpost.get_article filter param:title substr $x ) ;
}

class @com.wsj {
  monitorable list query headlines(out title : String,
                                   out link : URL) "wall street journal headlines";
}

templates {
  np "wall street journal headlines" := @com.wsj.headlines ;
  np "news from the wsj" := @com.wsj.headlines ;
  np "wsj stories about $x" (x : String) := @com.wsj.headlines filter param:title substr $x ;
  wp "when the wall street journal reports news" := monitor ( @com.wsj.headlines ) ;
}

class @com.bing {
  list query web_search(in req query : String,
                        out title : String,
                        out description : String,
                        out link : URL) "web search results";
  list query image_search(in req query : String,
                          out title : String,
                          out picture_url : URL) "image search results";
}

templates {
  np "websites matching $x" (x : String) := @com.bing.web_search param:query = $x ;
  np "bing results for $x" (x : String) := @com.bing.web_search param:query = $x ;
  vp "search the web for $x" (x : String) := @com.bing.web_search param:query = $x ;
  vp "look up $x on bing" (x : String) := @com.bing.web_search param:query = $x ;
  np "pictures of $x" (x : String) := @com.bing.image_search param:query = $x ;
  np "images matching $x" (x : String) := @com.bing.image_search param:query = $x ;
  vp "search images of $x" (x : String) := @com.bing.image_search param:query = $x ;
}

class @com.yandex {
  query translate(in req text : String,
                  in opt target_language : Entity(tt:iso_lang_code),
                  out translated_text : String) "the translation";
}

templates {
  np "the translation of $x" (x : String) := @com.yandex.translate param:text = $x ;
  np "the translation of $x to $y" (x : String, y : Entity(tt:iso_lang_code)) := @com.yandex.translate param:target_language = $y param:text = $x ;
  vp "translate $x" (x : String) := @com.yandex.translate param:text = $x ;
  vp "translate $x to $y" (x : String, y : Entity(tt:iso_lang_code)) := @com.yandex.translate param:target_language = $y param:text = $x ;
}

class @org.thingpedia.weather easy {
  monitorable query current(in opt location : Location,
                            out temperature : Measure(C),
                            out humidity : Number,
                            out wind_speed : Measure(mps),
                            out status : Enum(sunny,cloudy,raining,snowing,windy)) "the current weather";
  monitorable query sunrise(in opt location : Location,
                            out sunrise_time : Time,
                            out sunset_time : Time) "sunrise and sunset times";
}

templates {
  np "the current weather" := @org.thingpedia.weather.current ;
  np "the weather at $x" (x : Location) := @org.thingpedia.weather.current param:location = $x ;
  np "the temperature outside" := @org.thingpedia.weather.current ;
  wp "when the weather changes" := monitor ( @org.thingpedia.weather.current ) ;
  wp "when it starts raining" := monitor ( @org.thingpedia.weather.current filter param:status == enum:raining ) ;
  wp "when it rains" := monitor ( @org.thingpedia.weather.current filter param:status == enum:raining ) ;
  wp "when it snows at $x" (x : Location) := monitor ( @org.thingpedia.weather.current param:location = $x filter param:status == enum:snowing ) ;
  np "sunrise and sunset times" := @org.thingpedia.weather.sunrise ;
  np "the sunrise time at $x" (x : Location) := @org.thingpedia.weather.sunrise param:location = $x ;
}

class @com.yahoo.finance {
  monitorable query get_stock_quote(in req symbol : Entity(tt:stock_id),
                                    out price : Currency,
                                    out change : Number) "a stock quote";
}

templates {
  np "the stock price of $x" (x : Entity(tt:stock_id)) := @com.yahoo.finance.get_stock_quote param:symbol = $x ;
  np "a quote for $x" (x : Entity(tt:stock_id)) := @com.yahoo.finance.get_stock_quote param:symbol = $x ;
  wp "when the price of $x changes" (x : Entity(tt:stock_id)) := monitor ( @com.yahoo.finance.get_stock_quote param:symbol = $x ) ;
  wp "when $x stock moves" (x : Entity(tt:stock_id)) := monitor ( @com.yahoo.finance.get_stock_quote param:symbol = $x ) on new param:price ;
}

class @com.coinbase {
  monitorable query get_price(in opt currency : Enum(btc,eth,ltc),
                              out price : Currency) "a cryptocurrency price";
}

templates {
  np "the bitcoin price" := @com.coinbase.get_price param:currency = enum:btc ;
  np "the price of $x" (x : Enum(btc,eth,ltc)) := @com.coinbase.get_price param:currency = $x ;
  wp "when the $x price changes" (x : Enum(btc,eth,ltc)) := monitor ( @com.coinbase.get_price param:currency = $x ) ;
}

class @us.epa.airquality {
  monitorable query aqi(in opt location : Location,
                        out index : Number,
                        out category : Enum(good,moderate,unhealthy,hazardous)) "the air quality index";
}

templates {
  np "the air quality" := @us.epa.airquality.aqi ;
  np "the air quality index at $x" (x : Location) := @us.epa.airquality.aqi param:location = $x ;
  wp "when the air becomes unhealthy" := monitor ( @us.epa.airquality.aqi filter param:category == enum:unhealthy ) ;
  wp "when the air quality changes" := monitor ( @us.epa.airquality.aqi ) ;
}
`
