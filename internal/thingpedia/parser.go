package thingpedia

import (
	"fmt"
	"strings"

	"repro/internal/thingtalk"
)

// The class-definition DSL follows the grammar of Fig. 3, extended with the
// primitive-template syntax of Section 3.1:
//
//	file      := (class | templates)*
//	class     := "class" "@"cn ["extends" "@"cn]* ["easy"] "{" fn* "}"
//	fn        := ["monitorable"] ["list"] ("query"|"action") name
//	             "(" [param ("," param)*] ")" [canonical-string] ";"
//	param     := ("in" "req" | "in" "opt" | "out") name ":" type
//	templates := "templates" "{" template* "}"
//	template  := cat ["[" flag ("," flag)* "]"] utterance
//	             ["(" arg ("," arg)* ")"] ":=" code ";"
//	cat       := "np" | "vp" | "wp"
//	arg       := name ":" type
//
// The template code is ThingTalk canonical syntax with $name placeholders;
// "vp" resolves to a query verb phrase or an action verb phrase depending on
// the kind of the invoked function. Line comments start with "//".

// ParseLibrary parses one or more DSL sources into a library.
func ParseLibrary(sources ...string) (*Library, error) {
	lib := NewLibrary()
	for i, src := range sources {
		if err := parseInto(lib, src); err != nil {
			return nil, fmt.Errorf("thingpedia: source %d: %w", i, err)
		}
	}
	return lib, nil
}

// MustParseLibrary is ParseLibrary, panicking on error; for static built-in
// definitions only.
func MustParseLibrary(sources ...string) *Library {
	lib, err := ParseLibrary(sources...)
	if err != nil {
		panic(err)
	}
	return lib
}

func parseInto(lib *Library, src string) error {
	s := &scanner{src: src}
	for {
		s.skipSpace()
		if s.eof() {
			return nil
		}
		word := s.word()
		switch word {
		case "class":
			if err := parseClass(lib, s); err != nil {
				return err
			}
		case "templates":
			if err := parseTemplates(lib, s); err != nil {
				return err
			}
		default:
			return s.errf("expected 'class' or 'templates', got %q", word)
		}
	}
}

func parseClass(lib *Library, s *scanner) error {
	s.skipSpace()
	name := s.word()
	if !strings.HasPrefix(name, "@") {
		return s.errf("expected class name @..., got %q", name)
	}
	c := &Class{Name: name[1:]}
	for {
		s.skipSpace()
		switch {
		case s.peekWord("extends"):
			s.word()
			s.skipSpace()
			ext := s.word()
			if !strings.HasPrefix(ext, "@") {
				return s.errf("expected @class after extends, got %q", ext)
			}
			c.Extends = append(c.Extends, ext[1:])
		case s.peekWord("easy"):
			s.word()
			c.Easy = true
		default:
			goto body
		}
	}
body:
	if err := s.expect('{'); err != nil {
		return err
	}
	for {
		s.skipSpace()
		if s.peekByte() == '}' {
			s.next()
			break
		}
		f, err := parseFunction(c.Name, s)
		if err != nil {
			return err
		}
		c.Functions = append(c.Functions, f)
	}
	return lib.AddClass(c)
}

func parseFunction(class string, s *scanner) (*thingtalk.FunctionSchema, error) {
	f := &thingtalk.FunctionSchema{Class: class}
	for {
		s.skipSpace()
		w := s.word()
		switch w {
		case "monitorable":
			f.Monitor = true
		case "list":
			f.List = true
		case "query":
			f.Kind = thingtalk.KindQuery
			goto name
		case "action":
			f.Kind = thingtalk.KindAction
			goto name
		default:
			return nil, s.errf("expected function kind, got %q", w)
		}
	}
name:
	s.skipSpace()
	f.Name = s.word()
	if f.Name == "" {
		return nil, s.errf("expected function name")
	}
	if err := s.expect('('); err != nil {
		return nil, err
	}
	s.skipSpace()
	if s.peekByte() != ')' {
		for {
			p, err := parseParam(s)
			if err != nil {
				return nil, err
			}
			f.Params = append(f.Params, p)
			s.skipSpace()
			if s.peekByte() == ',' {
				s.next()
				continue
			}
			break
		}
	}
	if err := s.expect(')'); err != nil {
		return nil, err
	}
	s.skipSpace()
	if s.peekByte() == '"' {
		canon, err := s.quoted()
		if err != nil {
			return nil, err
		}
		f.Canonical = canon
	}
	if err := s.expect(';'); err != nil {
		return nil, err
	}
	return f, nil
}

func parseParam(s *scanner) (thingtalk.ParamSpec, error) {
	var p thingtalk.ParamSpec
	s.skipSpace()
	switch w := s.word(); w {
	case "in":
		s.skipSpace()
		switch m := s.word(); m {
		case "req":
			p.Dir = thingtalk.DirInReq
		case "opt":
			p.Dir = thingtalk.DirInOpt
		default:
			return p, s.errf("expected req or opt after in, got %q", m)
		}
	case "out":
		p.Dir = thingtalk.DirOut
	default:
		return p, s.errf("expected in/out, got %q", w)
	}
	s.skipSpace()
	p.Name = s.word()
	if p.Name == "" {
		return p, s.errf("expected parameter name")
	}
	if err := s.expect(':'); err != nil {
		return p, err
	}
	s.skipSpace()
	typeSrc := s.typeWord()
	t, err := thingtalk.ParseType(typeSrc)
	if err != nil {
		return p, s.errf("%v", err)
	}
	p.Type = t
	return p, nil
}

func parseTemplates(lib *Library, s *scanner) error {
	if err := s.expect('{'); err != nil {
		return err
	}
	for {
		s.skipSpace()
		if s.peekByte() == '}' {
			s.next()
			return nil
		}
		if err := parseTemplate(lib, s); err != nil {
			return err
		}
	}
}

func parseTemplate(lib *Library, s *scanner) error {
	s.skipSpace()
	cat := s.word()
	if cat != "np" && cat != "vp" && cat != "wp" {
		return s.errf("expected template category np/vp/wp, got %q", cat)
	}
	var flags []string
	s.skipSpace()
	if s.peekByte() == '[' {
		s.next()
		for {
			s.skipSpace()
			flags = append(flags, s.word())
			s.skipSpace()
			if s.peekByte() == ',' {
				s.next()
				continue
			}
			break
		}
		if err := s.expect(']'); err != nil {
			return err
		}
	}
	s.skipSpace()
	utt, err := s.quoted()
	if err != nil {
		return err
	}
	utterance := strings.Fields(utt)
	if len(utterance) == 0 {
		return s.errf("empty utterance")
	}
	var args []Placeholder
	s.skipSpace()
	if s.peekByte() == '(' {
		s.next()
		for {
			s.skipSpace()
			name := s.word()
			if err := s.expect(':'); err != nil {
				return err
			}
			s.skipSpace()
			t, err := thingtalk.ParseType(s.typeWord())
			if err != nil {
				return s.errf("%v", err)
			}
			args = append(args, Placeholder{Name: name, Type: t})
			s.skipSpace()
			if s.peekByte() == ',' {
				s.next()
				continue
			}
			break
		}
		if err := s.expect(')'); err != nil {
			return err
		}
	}
	s.skipSpace()
	if !strings.HasPrefix(s.src[s.pos:], ":=") {
		return s.errf("expected := in template")
	}
	s.pos += 2
	code := s.until(';')
	if code == "" {
		return s.errf("empty template code")
	}
	prim, err := buildPrimitive(lib, cat, flags, utterance, args, code)
	if err != nil {
		return err
	}
	return lib.AddPrimitive(prim)
}

// buildPrimitive parses the ThingTalk code fragment and classifies the
// template into its final grammar category.
func buildPrimitive(lib *Library, cat string, flags []string, utterance []string, args []Placeholder, code string) (*Primitive, error) {
	toks, err := thingtalk.Tokenize(code)
	if err != nil {
		return nil, err
	}
	tp := thingtalk.NewParser(toks, thingtalk.ParseOptions{})
	prim := &Primitive{Utterance: utterance, Args: args, Flags: flags}
	switch cat {
	case "wp":
		st, err := tp.Stream()
		if err != nil {
			return nil, err
		}
		if !tp.AtEnd() {
			return nil, fmt.Errorf("thingpedia: trailing tokens in template code %q", code)
		}
		prim.Category = CatWP
		prim.Stream = st
		prim.Class = fragmentClass(st.Monitor, nil, nil, st)
	case "np", "vp":
		q, err := tp.Query()
		if err != nil {
			return nil, err
		}
		if !tp.AtEnd() {
			return nil, fmt.Errorf("thingpedia: trailing tokens in template code %q", code)
		}
		// A vp whose function is an action becomes an action verb phrase.
		if cat == "vp" && q.Kind == thingtalk.QueryInvocation {
			if sch, ok := lib.Schema(q.Invocation.Class, q.Invocation.Function); ok && sch.Kind == thingtalk.KindAction {
				prim.Category = CatAVP
				prim.Action = &thingtalk.Action{Invocation: q.Invocation}
				prim.Class = q.Invocation.Class
				return prim, nil
			}
		}
		if cat == "np" {
			prim.Category = CatNP
		} else {
			prim.Category = CatQVP
		}
		prim.Query = q
		prim.Class = fragmentClass(q, nil, nil, nil)
	default:
		return nil, fmt.Errorf("thingpedia: unknown template category %q", cat)
	}
	return prim, nil
}

// fragmentClass returns the class of the first invocation in the fragment.
func fragmentClass(q *thingtalk.Query, a *thingtalk.Action, inv *thingtalk.Invocation, s *thingtalk.Stream) string {
	prog := &thingtalk.Program{Stream: thingtalk.Now(), Action: thingtalk.Notify()}
	if q != nil {
		prog.Query = q
	}
	if s != nil {
		prog.Stream = s
	}
	if a != nil {
		prog.Action = a
	}
	if inv != nil {
		prog.Action = &thingtalk.Action{Invocation: inv}
	}
	invs := prog.Invocations()
	if len(invs) == 0 {
		return ""
	}
	return invs[0].Class
}

// --- Scanner ------------------------------------------------------------------

type scanner struct {
	src string
	pos int
}

func (s *scanner) eof() bool { return s.pos >= len(s.src) }

func (s *scanner) peekByte() byte {
	if s.eof() {
		return 0
	}
	return s.src[s.pos]
}

func (s *scanner) next() byte {
	c := s.peekByte()
	s.pos++
	return c
}

func (s *scanner) skipSpace() {
	for !s.eof() {
		c := s.src[s.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			s.pos++
			continue
		}
		if c == '/' && s.pos+1 < len(s.src) && s.src[s.pos+1] == '/' {
			for !s.eof() && s.src[s.pos] != '\n' {
				s.pos++
			}
			continue
		}
		return
	}
}

func isWordByte(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '.' || c == '@' || c == '-':
		return true
	}
	return false
}

func (s *scanner) word() string {
	s.skipSpace()
	start := s.pos
	for !s.eof() && isWordByte(s.src[s.pos]) {
		s.pos++
	}
	return s.src[start:s.pos]
}

// peekWord reports whether the next word equals w without consuming it.
func (s *scanner) peekWord(w string) bool {
	save := s.pos
	got := s.word()
	s.pos = save
	return got == w
}

// typeWord reads a type spelling: a word optionally followed immediately by
// a balanced parenthesized argument (Measure(byte), Enum(a,b),
// Array(Entity(tt:x))). The ':' inside entity kinds is included.
func (s *scanner) typeWord() string {
	start := s.pos
	for !s.eof() && (isWordByte(s.src[s.pos]) || s.src[s.pos] == ':') {
		s.pos++
	}
	if s.peekByte() == '(' {
		depth := 0
		for !s.eof() {
			c := s.src[s.pos]
			s.pos++
			if c == '(' {
				depth++
			} else if c == ')' {
				depth--
				if depth == 0 {
					break
				}
			}
		}
	}
	return s.src[start:s.pos]
}

func (s *scanner) quoted() (string, error) {
	if s.peekByte() != '"' {
		return "", s.errf("expected quoted string")
	}
	s.pos++
	end := strings.IndexByte(s.src[s.pos:], '"')
	if end < 0 {
		return "", s.errf("unterminated string")
	}
	out := s.src[s.pos : s.pos+end]
	s.pos += end + 1
	return out, nil
}

// until returns the text up to (not including) the next occurrence of stop,
// consuming the stop byte.
func (s *scanner) until(stop byte) string {
	end := strings.IndexByte(s.src[s.pos:], stop)
	if end < 0 {
		out := strings.TrimSpace(s.src[s.pos:])
		s.pos = len(s.src)
		return out
	}
	out := strings.TrimSpace(s.src[s.pos : s.pos+end])
	s.pos += end + 1
	return out
}

func (s *scanner) expect(c byte) error {
	s.skipSpace()
	if s.peekByte() != c {
		return s.errf("expected %q, got %q", string(c), string(s.peekByte()))
	}
	s.pos++
	return nil
}

func (s *scanner) errf(format string, args ...any) error {
	line := 1 + strings.Count(s.src[:min(s.pos, len(s.src))], "\n")
	return fmt.Errorf("line %d: "+format, append([]any{line}, args...)...)
}
