package thingpedia

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file is the on-disk face of the skill library: a library directory
// holds one DSL source file per skill (<skill>.tt, the Fig. 3 grammar that
// parser.go reads), and the fleet control plane (internal/fleet) scans and
// watches it, keying each skill's trained snapshot by Library.Checksum().

// LibraryExt is the extension of skill-library source files in a library
// directory.
const LibraryExt = ".tt"

// DirEntry is one skill-library source discovered by ScanLibraryDir. Size
// and ModTime are the cheap change signal: the watcher only re-parses (and
// re-checksums) a file whose stat changed, so an idle fleet's watch tick
// costs one ReadDir plus one Stat per skill.
type DirEntry struct {
	Name    string // skill name: file base without the .tt extension
	Path    string
	Size    int64
	ModTime time.Time
}

// ScanLibraryDir lists the *.tt skill-library sources of dir, sorted by
// skill name. Subdirectories and other files are ignored.
func ScanLibraryDir(dir string) ([]DirEntry, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("thingpedia: scanning library dir: %w", err)
	}
	var out []DirEntry
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), LibraryExt) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			// The file vanished between ReadDir and Stat; the next scan
			// will see the final state.
			continue
		}
		out = append(out, DirEntry{
			Name:    strings.TrimSuffix(e.Name(), LibraryExt),
			Path:    filepath.Join(dir, e.Name()),
			Size:    info.Size(),
			ModTime: info.ModTime(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Changed reports whether the stat signal differs from prev (a new file
// compared against the zero DirEntry is always changed).
func (e DirEntry) Changed(prev DirEntry) bool {
	return e.Size != prev.Size || !e.ModTime.Equal(prev.ModTime)
}

// LoadLibraryFile parses one skill-library source file.
func LoadLibraryFile(path string) (*Library, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("thingpedia: reading %s: %w", path, err)
	}
	lib, err := ParseLibrary(string(src))
	if err != nil {
		return nil, fmt.Errorf("thingpedia: %s: %w", path, err)
	}
	return lib, nil
}
