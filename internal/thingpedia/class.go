// Package thingpedia implements the skill library of the Genie paper
// (Section 2.2): a registry of classes describing web services and IoT
// devices, each declaring query and action functions (Fig. 3) and a set of
// developer-supplied primitive templates (Table 1).
//
// Classes are written in a textual DSL matching the grammar of Fig. 3 and
// parsed by this package; the built-in library (builtin_*.go) is a simulated
// Thingpedia with the same shape as the deployment the paper evaluates on
// (40+ skills, 130+ functions, 175+ distinct parameters).
package thingpedia

import (
	"fmt"
	"sort"

	"repro/internal/thingtalk"
)

// Class is one skill: a named collection of query and action functions.
type Class struct {
	Name      string // e.g. com.dropbox
	Extends   []string
	Functions []*thingtalk.FunctionSchema
	// Easy reports developer guidance for paraphrase sampling: easy-to-
	// understand skills are combined with hard ones to maximize paraphrase
	// quality (Section 3.2).
	Easy bool
}

// Function returns the named function of the class.
func (c *Class) Function(name string) (*thingtalk.FunctionSchema, bool) {
	for _, f := range c.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// PrimitiveCategory is the natural-language grammar category of a primitive
// template utterance.
type PrimitiveCategory string

// Primitive template categories (Table 1). A query can be expressed both as
// a noun phrase ("the download URL of $x") and as a verb phrase ("open $x");
// actions are verb phrases; streams are when-phrases.
const (
	CatNP  PrimitiveCategory = "np"  // noun phrase (query)
	CatQVP PrimitiveCategory = "qvp" // verb phrase (query)
	CatWP  PrimitiveCategory = "wp"  // when phrase (stream)
	CatAVP PrimitiveCategory = "avp" // verb phrase (action)
)

// Placeholder declares one $-argument of a primitive template.
type Placeholder struct {
	Name string
	Type thingtalk.Type
}

// Primitive is a developer-supplied primitive template: an utterance with
// typed placeholders and the code fragment it denotes.
type Primitive struct {
	Class    string
	Category PrimitiveCategory
	// Utterance is the tokenized natural-language pattern; placeholder
	// tokens are spelled $name.
	Utterance []string
	Args      []Placeholder
	// Exactly one of Query, Stream, Action is set, consistent with
	// Category.
	Query  *thingtalk.Query
	Stream *thingtalk.Stream
	Action *thingtalk.Action
	// Flags select template subsets (e.g. "train", "paraphrase"); empty
	// means all purposes (Section 3.1).
	Flags []string
}

// HasFlag reports whether the template carries the flag (or has no flags,
// which means it applies to every purpose).
func (p *Primitive) HasFlag(flag string) bool {
	if len(p.Flags) == 0 {
		return true
	}
	for _, f := range p.Flags {
		if f == flag {
			return true
		}
	}
	return false
}

// Arg returns the declared placeholder named name.
func (p *Primitive) Arg(name string) (Placeholder, bool) {
	for _, a := range p.Args {
		if a.Name == name {
			return a, true
		}
	}
	return Placeholder{}, false
}

// Library is a set of classes with their primitive templates. It implements
// thingtalk.SchemaSource.
type Library struct {
	classes    map[string]*Class
	order      []string
	schemas    thingtalk.SchemaMap
	primitives []*Primitive
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{classes: map[string]*Class{}, schemas: thingtalk.SchemaMap{}}
}

// AddClass registers a class and its functions.
func (l *Library) AddClass(c *Class) error {
	if _, dup := l.classes[c.Name]; dup {
		return fmt.Errorf("thingpedia: duplicate class %q", c.Name)
	}
	for _, f := range c.Functions {
		if err := f.Validate(); err != nil {
			return err
		}
		l.schemas.Add(f)
	}
	l.classes[c.Name] = c
	l.order = append(l.order, c.Name)
	return nil
}

// AddPrimitive registers a primitive template after validating it against
// the library's schemas.
func (l *Library) AddPrimitive(p *Primitive) error {
	if err := l.validatePrimitive(p); err != nil {
		return err
	}
	l.primitives = append(l.primitives, p)
	return nil
}

func (l *Library) validatePrimitive(p *Primitive) error {
	desc := fmt.Sprintf("template %q", joinWords(p.Utterance))
	// Every placeholder in the utterance must be declared and used; every
	// declared placeholder must appear in both utterance and code.
	used := map[string]bool{}
	for _, tok := range p.Utterance {
		if len(tok) > 1 && tok[0] == '$' {
			name := tok[1:]
			if _, ok := p.Arg(name); !ok {
				return fmt.Errorf("thingpedia: %s: undeclared placeholder $%s", desc, name)
			}
			used[name] = true
		}
	}
	for _, a := range p.Args {
		if !used[a.Name] {
			return fmt.Errorf("thingpedia: %s: declared placeholder $%s unused in utterance", desc, a.Name)
		}
	}
	codeSlots := map[string]bool{}
	resolve := func(v *thingtalk.Value, param string) error {
		if v.Kind != thingtalk.VSlot || v.Name == "" {
			return nil
		}
		a, ok := p.Arg(v.Name)
		if !ok {
			return fmt.Errorf("thingpedia: %s: undeclared placeholder $%s in code", desc, v.Name)
		}
		v.SlotType = a.Type
		v.SlotParam = param
		codeSlots[v.Name] = true
		return nil
	}
	var err error
	switch p.Category {
	case CatNP, CatQVP:
		if p.Query == nil {
			return fmt.Errorf("thingpedia: %s: %s template must carry a query", desc, p.Category)
		}
		if err = walkQueryValues(p.Query, resolve); err != nil {
			return err
		}
		_, err = thingtalk.TypecheckQuery(p.Query, l)
	case CatWP:
		if p.Stream == nil {
			return fmt.Errorf("thingpedia: %s: wp template must carry a stream", desc)
		}
		if err = walkStreamValues(p.Stream, resolve); err != nil {
			return err
		}
		_, err = thingtalk.TypecheckStream(p.Stream, l)
	case CatAVP:
		if p.Action == nil {
			return fmt.Errorf("thingpedia: %s: avp template must carry an action", desc)
		}
		if err = walkActionValues(p.Action, resolve); err != nil {
			return err
		}
		err = thingtalk.TypecheckAction(p.Action, l, nil)
	default:
		return fmt.Errorf("thingpedia: %s: unknown category %q", desc, p.Category)
	}
	if err != nil {
		return fmt.Errorf("thingpedia: %s: %w", desc, err)
	}
	for _, a := range p.Args {
		if !codeSlots[a.Name] {
			return fmt.Errorf("thingpedia: %s: declared placeholder $%s unused in code", desc, a.Name)
		}
	}
	return nil
}

// Schema implements thingtalk.SchemaSource.
func (l *Library) Schema(class, function string) (*thingtalk.FunctionSchema, bool) {
	return l.schemas.Schema(class, function)
}

// Schemas returns the underlying schema map (shared, not a copy).
func (l *Library) Schemas() thingtalk.SchemaMap { return l.schemas }

// Class returns the named class.
func (l *Library) Class(name string) (*Class, bool) {
	c, ok := l.classes[name]
	return c, ok
}

// Classes returns all classes in registration order.
func (l *Library) Classes() []*Class {
	out := make([]*Class, 0, len(l.order))
	for _, name := range l.order {
		out = append(out, l.classes[name])
	}
	return out
}

// Primitives returns all primitive templates, optionally restricted to one
// class (empty class means all).
func (l *Library) Primitives(class string) []*Primitive {
	if class == "" {
		return l.primitives
	}
	var out []*Primitive
	for _, p := range l.primitives {
		if p.Class == class {
			out = append(out, p)
		}
	}
	return out
}

// Functions returns every function schema, sorted by selector.
func (l *Library) Functions() []*thingtalk.FunctionSchema {
	var out []*thingtalk.FunctionSchema
	for _, c := range l.Classes() {
		out = append(out, c.Functions...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Selector() < out[j].Selector() })
	return out
}

// Stats summarizes the library in the paper's terms (Section 5: "131
// functions, 178 distinct parameters, and 44 skills").
type Stats struct {
	Skills         int
	Functions      int
	Queries        int
	Actions        int
	DistinctParams int
	Primitives     int
	PerFunction    float64 // primitive templates per function
}

// Stats computes library statistics.
func (l *Library) Stats() Stats {
	s := Stats{Skills: len(l.classes), Primitives: len(l.primitives)}
	params := map[string]bool{}
	for _, c := range l.Classes() {
		for _, f := range c.Functions {
			s.Functions++
			if f.Kind == thingtalk.KindQuery {
				s.Queries++
			} else {
				s.Actions++
			}
			for _, p := range f.Params {
				params[p.Name] = true
			}
		}
	}
	s.DistinctParams = len(params)
	if s.Functions > 0 {
		s.PerFunction = float64(s.Primitives) / float64(s.Functions)
	}
	return s
}

func joinWords(words []string) string {
	out := ""
	for i, w := range words {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}

// --- Value walkers ------------------------------------------------------------

func walkQueryValues(q *thingtalk.Query, f func(*thingtalk.Value, string) error) error {
	if q == nil {
		return nil
	}
	switch q.Kind {
	case thingtalk.QueryInvocation:
		return walkInvocationValues(q.Invocation, f)
	case thingtalk.QueryFilter:
		if err := walkQueryValues(q.Inner, f); err != nil {
			return err
		}
		return walkPredicateValues(q.Predicate, f)
	case thingtalk.QueryJoin:
		if err := walkQueryValues(q.Inner, f); err != nil {
			return err
		}
		if err := walkQueryValues(q.Right, f); err != nil {
			return err
		}
		for i := range q.JoinParams {
			if err := f(&q.JoinParams[i].Value, q.JoinParams[i].Name); err != nil {
				return err
			}
		}
		return nil
	case thingtalk.QueryAggregate:
		return walkQueryValues(q.Inner, f)
	}
	return nil
}

func walkStreamValues(s *thingtalk.Stream, f func(*thingtalk.Value, string) error) error {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case thingtalk.StreamTimer:
		if err := f(&s.Base, "base"); err != nil {
			return err
		}
		return f(&s.Interval, "interval")
	case thingtalk.StreamAtTimer:
		return f(&s.Time, "time")
	case thingtalk.StreamMonitor:
		return walkQueryValues(s.Monitor, f)
	case thingtalk.StreamEdge:
		if err := walkStreamValues(s.Inner, f); err != nil {
			return err
		}
		return walkPredicateValues(s.Predicate, f)
	}
	return nil
}

func walkActionValues(a *thingtalk.Action, f func(*thingtalk.Value, string) error) error {
	if a == nil || a.Invocation == nil {
		return nil
	}
	return walkInvocationValues(a.Invocation, f)
}

func walkInvocationValues(inv *thingtalk.Invocation, f func(*thingtalk.Value, string) error) error {
	for i := range inv.In {
		if err := f(&inv.In[i].Value, inv.In[i].Name); err != nil {
			return err
		}
	}
	return nil
}

func walkPredicateValues(p *thingtalk.Predicate, f func(*thingtalk.Value, string) error) error {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case thingtalk.PredAtom:
		return f(&p.Value, p.Param)
	case thingtalk.PredNot, thingtalk.PredAnd, thingtalk.PredOr:
		for _, ch := range p.Children {
			if err := walkPredicateValues(ch, f); err != nil {
				return err
			}
		}
		return nil
	case thingtalk.PredExternal:
		if err := walkInvocationValues(p.External, f); err != nil {
			return err
		}
		return walkPredicateValues(p.InnerPred, f)
	}
	return nil
}

// WalkProgramValues applies f to every value in the program, passing the
// parameter name the value occupies. Exported for the augmentation stage.
func WalkProgramValues(prog *thingtalk.Program, f func(*thingtalk.Value, string) error) error {
	if prog.Stream != nil {
		if err := walkStreamValues(prog.Stream, f); err != nil {
			return err
		}
	}
	if prog.Query != nil {
		if err := walkQueryValues(prog.Query, f); err != nil {
			return err
		}
	}
	return walkActionValues(prog.Action, f)
}
