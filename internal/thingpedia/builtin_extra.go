package thingpedia

// Supplementary primitive templates for the built-in classes, raising the
// per-function template density toward the paper's 8.5 average (Section 5.2
// reports 1119 primitive templates over 131 functions). Additional phrasing
// variety here directly widens the synthesized distribution.

const builtinExtra = `
templates {
  // Twitter.
  np "what people are tweeting" := @com.twitter.timeline ;
  np "the latest tweets" := @com.twitter.timeline ;
  np "tweets that mention $x" (x : String) := @com.twitter.timeline filter param:text substr $x ;
  np "everything $x has tweeted" (x : Entity(tt:username)) := @com.twitter.timeline filter param:author == $x ;
  wp "when anybody i follow posts on twitter" := monitor ( @com.twitter.timeline ) ;
  wp "when a tweet mentions $x" (x : String) := monitor ( @com.twitter.timeline filter param:text substr $x ) ;
  np "recent tweets about $x" (x : String) := @com.twitter.search param:query = $x ;
  vp "look for $x on twitter" (x : String) := @com.twitter.search param:query = $x ;
  np "the tweets i have written" := @com.twitter.my_tweets ;
  wp "when i post a tweet" := monitor ( @com.twitter.my_tweets ) ;
  vp "say $x on twitter" (x : String) := @com.twitter.post param:status = $x ;
  vp "put $x on my twitter" (x : String) := @com.twitter.post param:status = $x ;
  vp "share the photo $x on twitter" (x : URL) := @com.twitter.post_picture param:picture_url = $x ;
  vp "retweet the tweet $x" (x : Entity(com.twitter:id)) := @com.twitter.retweet param:tweet_id = $x ;
  vp "start following $x" (x : Entity(tt:username)) := @com.twitter.follow param:user_name = $x ;
  vp "message $x on twitter saying $y" (x : Entity(tt:username), y : String) := @com.twitter.send_direct_message param:to = $x param:message = $y ;

  // Facebook / Instagram.
  np "what my friends are posting on facebook" := @com.facebook.feed ;
  np "the latest facebook posts" := @com.facebook.feed ;
  wp "when my facebook feed updates" := monitor ( @com.facebook.feed ) ;
  vp "tell facebook $x" (x : String) := @com.facebook.post param:status = $x ;
  vp "write $x on my facebook wall" (x : String) := @com.facebook.post param:status = $x ;
  vp "share the photo $x on facebook saying $y" (x : URL, y : String) := @com.facebook.post_picture param:caption = $y param:picture_url = $x ;
  np "my latest instagram uploads" := @com.instagram.my_pictures ;
  wp "when my instagram gets a new picture" := monitor ( @com.instagram.my_pictures ) ;
  vp "put the photo $x on instagram" (x : URL) := @com.instagram.upload_picture param:picture_url = $x ;

  // Reddit / LinkedIn.
  np "what is trending on reddit" := @com.reddit.frontpage ;
  np "top reddit posts in $x" (x : String) := @com.reddit.frontpage param:subreddit = $x ;
  wp "when something hits the front page of reddit" := monitor ( @com.reddit.frontpage ) ;
  vp "share the link $x on reddit with title $y" (x : URL, y : String) := @com.reddit.submit param:link = $x param:title = $y ;
  np "what my linkedin profile says" := @com.linkedin.profile ;
  vp "tell my linkedin network $x" (x : String) := @com.linkedin.share param:status = $x ;

  // Gmail / Slack / SMS / Telegram.
  np "my unread mail" := @com.gmail.inbox ;
  np "the most recent emails" := @com.gmail.inbox ;
  np "mail from $x" (x : Entity(tt:email_address)) := @com.gmail.inbox filter param:sender == $x ;
  np "emails about $x" (x : String) := @com.gmail.inbox filter param:subject substr $x ;
  wp "when new mail arrives" := monitor ( @com.gmail.inbox ) ;
  wp "when $x emails me" (x : Entity(tt:email_address)) := monitor ( @com.gmail.inbox filter param:sender == $x ) ;
  vp "write to $x about $y" (x : Entity(tt:email_address), y : String) := @com.gmail.send_email param:to = $x param:subject = $y ;
  vp "shoot an email to $x titled $y" (x : Entity(tt:email_address), y : String) := @com.gmail.send_email param:to = $x param:subject = $y ;
  np "what people said in $x on slack" (x : String) := @com.slack.channel_history param:channel = $x ;
  wp "when the $x slack channel gets a message" (x : String) := monitor ( @com.slack.channel_history param:channel = $x ) ;
  vp "tell the $x channel $y" (x : String, y : String) := @com.slack.send param:channel = $x param:message = $y ;
  vp "update my slack status to say $x" (x : String) := @com.slack.set_status param:status = $x ;
  np "my latest texts" := @org.thingpedia.builtin.sms.inbox ;
  wp "when a text message comes in" := monitor ( @org.thingpedia.builtin.sms.inbox ) ;
  vp "shoot a text to $x that says $y" (x : Entity(tt:phone_number), y : String) := @org.thingpedia.builtin.sms.send param:to = $x param:body = $y ;
  vp "forward $y to $x on telegram" (x : Entity(tt:username), y : String) := @com.telegram.send param:to = $x param:message = $y ;

  // Media.
  np "videos about $x on youtube" (x : String) := @com.youtube.search_videos param:query = $x ;
  vp "look up $x videos" (x : String) := @com.youtube.search_videos param:query = $x ;
  wp "when my subscriptions post new videos" := monitor ( @com.youtube.subscriptions ) ;
  vp "save $y to the playlist $x" (x : String, y : URL) := @com.youtube.add_to_playlist param:playlist = $x param:video_url = $y ;
  np "a picture of a cat" := @com.thecatapi.get ;
  np "some kitties" := @com.thecatapi.get ;
  np "the newest xkcd strip" := @com.xkcd.comic ;
  wp "when there is a fresh xkcd" := monitor ( @com.xkcd.comic ) ;
  np "a gif about $x" (x : String) := @com.giphy.get param:tag = $x ;
  np "the space picture of the day" := @gov.nasa.apod ;
  wp "when nasa publishes the daily picture" := monitor ( @gov.nasa.apod ) ;

  // News / search / weather / finance.
  np "what the new york times is reporting" := @com.nytimes.get_front_page ;
  wp "when the nyt posts breaking news" := monitor ( @com.nytimes.get_front_page ) ;
  np "today's washington post stories" := @com.washingtonpost.get_article ;
  np "the wall street journal front page" := @com.wsj.headlines ;
  wp "when the wsj publishes something" := monitor ( @com.wsj.headlines ) ;
  np "search results for $x" (x : String) := @com.bing.web_search param:query = $x ;
  vp "google $x for me" (x : String) := @com.bing.web_search param:query = $x ;
  np "photos matching $x" (x : String) := @com.bing.image_search param:query = $x ;
  np "$x translated" (x : String) := @com.yandex.translate param:text = $x ;
  vp "say $x in $y" (x : String, y : Entity(tt:iso_lang_code)) := @com.yandex.translate param:target_language = $y param:text = $x ;
  np "today's forecast" := @org.thingpedia.weather.current ;
  np "how hot it is outside" := @org.thingpedia.weather.current ;
  wp "when the weather turns cloudy" := monitor ( @org.thingpedia.weather.current filter param:status == enum:cloudy ) ;
  np "when the sun rises" := @org.thingpedia.weather.sunrise ;
  np "how $x is trading" (x : Entity(tt:stock_id)) := @com.yahoo.finance.get_stock_quote param:symbol = $x ;
  wp "when $x stock updates" (x : Entity(tt:stock_id)) := monitor ( @com.yahoo.finance.get_stock_quote param:symbol = $x ) ;
  np "what bitcoin is worth" := @com.coinbase.get_price param:currency = enum:btc ;
  np "the current air quality index" := @us.epa.airquality.aqi ;

  // IoT.
  np "whether my lights are on" := @com.hue.state ;
  vp "shut off the lights" := @com.hue.set_power param:power = enum:off ;
  vp "lights $x" (x : Enum(on,off)) := @com.hue.set_power param:power = $x ;
  vp "brighten the lights to $x" (x : Number) := @com.hue.set_brightness param:brightness = $x ;
  vp "turn my lights $x colored" (x : String) := @com.hue.set_color param:color = $x ;
  np "the thermostat temperature" := @com.nest.thermostat.get_temperature ;
  vp "make it $x degrees inside" (x : Measure(C)) := @com.nest.thermostat.set_target_temperature param:value = $x ;
  wp "when the camera sees someone" := monitor ( @com.nest.camera.current_event filter param:person_detected == true ) ;
  vp "switch the camera $x" (x : Enum(on,off)) := @com.nest.camera.set_streaming param:streaming = $x ;
  np "what channel the tv is on" := @com.lg.tv.get_channel ;
  vp "switch the tv to $x" (x : String) := @com.lg.tv.set_channel param:channel = $x ;
  vp "mute the tv" := @com.lg.tv.set_volume param:volume = 0 ;
  vp "power off the television" := @com.lg.tv.turn_off ;
  wp "when the roomba docks" := monitor ( @com.irobot.status filter param:state == enum:docked ) ;
  vp "have the roomba clean up" := @com.irobot.start_cleaning ;
  np "whether the front door is locked" := @com.august.lock.state ;
  wp "when the door gets unlocked" := monitor ( @com.august.lock.state filter param:locked == false ) ;
  vp "secure the door" := @com.august.lock.lock ;
  np "how many steps i took" := @com.fitbit.steps ;
  np "my distance walked" := @com.fitbit.steps ;
  wp "when i hit my step goal of $x" (x : Number) := edge ( monitor ( @com.fitbit.steps ) ) on param:steps >= $x ;
  np "my current heart rate" := @com.fitbit.heartrate ;
  np "what the scale says" := @com.bodytrace.scale.get_weight ;
  wp "when i step on the scale" := monitor ( @com.bodytrace.scale.get_weight ) ;

  // Productivity.
  np "how full my dropbox is" := @com.dropbox.get_space_usage ;
  np "everything in my dropbox" := @com.dropbox.list_folder ;
  np "the newest files in my dropbox" := @com.dropbox.list_folder param:order_by = enum:modified_time_decreasing ;
  np "what is inside $x on dropbox" (x : PathName) := @com.dropbox.list_folder param:folder_name = $x ;
  wp "when my dropbox files change" := monitor ( @com.dropbox.list_folder ) ;
  np "a share link for $x" (x : PathName) := @com.dropbox.open param:file_name = $x ;
  vp "get me a link to $x" (x : PathName) := @com.dropbox.open param:file_name = $x ;
  vp "rename $x to $y" (x : PathName, y : PathName) := @com.dropbox.move param:new_name = $y param:old_name = $x ;
  vp "trash the file $x" (x : PathName) := @com.dropbox.delete_file param:file_name = $x ;
  np "everything in my google drive" := @com.google.drive.list_files ;
  wp "when somebody shares a file to my drive" := monitor ( @com.google.drive.list_files ) on new param:file_name ;
  vp "start a new document called $x" (x : PathName) := @com.google.drive.create_file param:file_name = $x ;
  np "open issues on $x" (x : String) := @com.github.issues param:repo = $x ;
  np "recent activity in $x" (x : String) := @com.github.commits param:repo = $x ;
  wp "when $x gets a new issue" (x : String) := monitor ( @com.github.issues param:repo = $x ) ;
  wp "when code lands in $x" (x : String) := monitor ( @com.github.commits param:repo = $x ) ;
  vp "report a bug on $x called $y" (x : String, y : String) := @com.github.open_issue param:repo = $x param:title = $y ;
  np "what i still have to do" := @com.todoist.list_tasks ;
  np "my tasks for the $x project" (x : String) := @com.todoist.list_tasks param:project = $x ;
  wp "when a task gets added" := monitor ( @com.todoist.list_tasks ) on new param:content ;
  vp "put $x on my list" (x : String) := @com.todoist.add_task param:content = $x ;
  vp "note that i must $x" (x : String) := @com.todoist.add_task param:content = $x ;
  vp "check off $x" (x : String) := @com.todoist.complete_task param:content = $x ;
  np "what is on my schedule" := @com.google.calendar.list_events ;
  np "my next appointments" := @com.google.calendar.list_events ;
  wp "when a meeting is scheduled" := monitor ( @com.google.calendar.list_events ) on new param:title ;
  vp "put $x on the calendar" (x : String) := @com.google.calendar.create_event param:title = $x ;
  np "my saved notes" := @com.evernote.list_notes ;
  vp "jot down $x" (x : String) := @com.evernote.create_note param:title = $x ;
  vp "add $y to the note called $x" (x : String, y : String) := @com.evernote.append_to_note param:content = $y param:title = $x ;

  // Life.
  np "how much an uber costs from $x to $y" (x : Location, y : Location) := @com.uber.price_estimate param:end = $y param:start = $x ;
  vp "get me an uber from $x to $y" (x : Location, y : Location) := @com.uber.request param:end = $y param:start = $x ;
  np "when the next $x bus comes" (x : String) := @org.thingpedia.transit.next_bus param:route = $x ;
  np "good $x places to eat" (x : String) := @com.yelp.restaurants param:cuisine = $x ;
  np "well rated restaurants" := @com.yelp.restaurants filter param:rating > 4 ;
  np "what i can make with $x" (x : String) := @com.food2fork.recipes param:ingredient = $x ;
  np "how the $x game is going" (x : Entity(com.espn:team)) := @com.espn.team_score param:team = $x ;
  wp "when the $x finish playing" (x : Entity(com.espn:team)) := monitor ( @com.espn.team_score param:team = $x filter param:is_playing == false ) ;
  np "my remaining battery" := @org.thingpedia.builtin.battery.level ;
  wp "when my phone needs charging" := edge ( monitor ( @org.thingpedia.builtin.battery.level ) ) on param:battery_level < 15 ;

  // Spotify.
  np "the track playing right now" := @com.spotify.get_currently_playing ;
  np "what song this is" := @com.spotify.get_currently_playing ;
  np "everything i saved on spotify" := @com.spotify.get_my_songs ;
  np "my library songs with tempo above $x" (x : Measure(bpm)) := @com.spotify.get_my_songs filter param:tempo > $x ;
  np "the songs i play the most" := @com.spotify.get_top_tracks ;
  np "who i listen to most" := @com.spotify.get_top_artists ;
  np "facts about the song $x" (x : Entity(com.spotify:song)) := @com.spotify.get_song param:song = $x ;
  np "who made the album $x" (x : Entity(com.spotify:album)) := @com.spotify.get_album param:album = $x ;
  np "all my playlists" := @com.spotify.get_playlists ;
  np "what is on the playlist $x" (x : Entity(com.spotify:playlist)) := @com.spotify.get_playlist_tracks param:playlist = $x ;
  wp "when new music comes out" := monitor ( @com.spotify.get_new_releases ) ;
  np "music like $x" (x : Entity(com.spotify:artist)) := @com.spotify.get_recommendations param:seed_artist = $x ;
  np "what i played earlier" := @com.spotify.get_recently_played ;
  vp "start the song $x" (x : Entity(com.spotify:song)) := @com.spotify.play_song param:song = $x ;
  vp "blast $x by $y" (x : Entity(com.spotify:song), y : Entity(com.spotify:artist)) := @com.spotify.play_song param:artist = $y param:song = $x ;
  vp "put on music by $x" (x : Entity(com.spotify:artist)) := @com.spotify.play_artist param:artist = $x ;
  vp "start the playlist $x" (x : Entity(com.spotify:playlist)) := @com.spotify.play_playlist param:playlist = $x ;
  vp "hold the music" := @com.spotify.pause ;
  vp "unpause" := @com.spotify.resume ;
  vp "next song please" := @com.spotify.next_track ;
  vp "previous song" := @com.spotify.previous_track ;
  vp "volume to $x percent" (x : Number) := @com.spotify.set_volume param:volume = $x ;
  vp "shuffle $x" (x : Enum(on,off)) := @com.spotify.set_shuffle param:shuffle = $x ;
  vp "stick $y onto playlist $x" (x : Entity(com.spotify:playlist), y : Entity(com.spotify:song)) := @com.spotify.add_song_to_playlist param:playlist = $x param:song = $y ;
  vp "start a playlist named $x" (x : String) := @com.spotify.create_playlist param:name = $x ;
  vp "heart the song $x" (x : Entity(com.spotify:song)) := @com.spotify.save_song param:song = $x ;
  vp "drop $x from my songs" (x : Entity(com.spotify:song)) := @com.spotify.remove_song param:song = $x ;
  vp "send the music to the $x" (x : Entity(com.spotify:device)) := @com.spotify.transfer_playback param:device = $x ;
}
`
