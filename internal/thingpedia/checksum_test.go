package thingpedia

import (
	"testing"

	"repro/internal/thingtalk"
)

func TestChecksumStableAcrossParses(t *testing.T) {
	// SpotifyOnly parses fresh on every call, so this compares two distinct
	// parses of the same sources.
	if SpotifyOnly().Checksum() != SpotifyOnly().Checksum() {
		t.Error("re-parsing the same library sources must not change the checksum")
	}
	if got := Builtin().Checksum(); len(got) != 64 {
		t.Errorf("checksum %q is not a sha256 hex digest", got)
	}
}

func TestChecksumTracksContent(t *testing.T) {
	base := Builtin().Checksum()
	if base == SpotifyOnly().Checksum() {
		t.Error("different libraries must hash differently")
	}

	// Adding a class changes the digest (on a fresh parse — Builtin() is a
	// shared read-only singleton).
	lib := SpotifyOnly()
	before := lib.Checksum()
	if err := lib.AddClass(&Class{
		Name: "zz.test",
		Functions: []*thingtalk.FunctionSchema{{
			Class: "zz.test", Name: "ping", Kind: thingtalk.KindAction,
			Params: []thingtalk.ParamSpec{{Name: "msg", Dir: thingtalk.DirInReq, Type: thingtalk.StringType{}}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if lib.Checksum() == before {
		t.Error("adding a class must change the checksum")
	}
}

func TestChecksumOrderIndependent(t *testing.T) {
	mk := func(order []int) *Library {
		classes := []*Class{
			{Name: "a.one", Functions: []*thingtalk.FunctionSchema{{
				Class: "a.one", Name: "q", Kind: thingtalk.KindQuery,
				Params: []thingtalk.ParamSpec{{Name: "x", Dir: thingtalk.DirOut, Type: thingtalk.NumberType{}}},
			}}},
			{Name: "b.two", Functions: []*thingtalk.FunctionSchema{{
				Class: "b.two", Name: "act", Kind: thingtalk.KindAction,
				Params: []thingtalk.ParamSpec{{Name: "y", Dir: thingtalk.DirInReq, Type: thingtalk.StringType{}}},
			}}},
		}
		lib := NewLibrary()
		for _, i := range order {
			if err := lib.AddClass(classes[i]); err != nil {
				t.Fatal(err)
			}
		}
		return lib
	}
	if mk([]int{0, 1}).Checksum() != mk([]int{1, 0}).Checksum() {
		t.Error("class registration order must not affect the checksum")
	}
}
