package thingpedia

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sort"
	"strings"
)

// Checksum returns a stable hex digest of the library's content: every
// class (name, extends, easy flag), every function signature (selector,
// kind, monitorability, list-ness, canonical name, parameters with types
// and directions), and every primitive template (class, category, utterance,
// placeholder declarations, flags). Two libraries that would synthesize the
// same training data — and therefore train the same parser — hash equal;
// adding, removing or editing a skill, function, parameter or template
// changes the digest. The serving layer keys its trained-snapshot cache on
// it, so re-serving an unchanged skill library skips training.
//
// Classes and functions are hashed in sorted order, making the digest
// independent of registration order; primitive templates are sorted by
// their serialized form.
func (l *Library) Checksum() string {
	h := sha256.New()

	classes := l.Classes()
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })
	for _, c := range classes {
		hashStr(h, "class", c.Name)
		ext := append([]string(nil), c.Extends...)
		sort.Strings(ext)
		for _, e := range ext {
			hashStr(h, "extends", e)
		}
		hashStr(h, "easy", fmt.Sprintf("%t", c.Easy))
		var funcs []string
		for _, f := range c.Functions {
			var b strings.Builder
			b.WriteString(f.Selector())
			b.WriteByte('|')
			b.WriteString(f.Kind.String())
			fmt.Fprintf(&b, "|monitor=%t|list=%t|", f.Monitor, f.List)
			b.WriteString(f.Canonical)
			for _, p := range f.Params {
				fmt.Fprintf(&b, "|%s:%s:%d", p.Name, p.Type, p.Dir)
			}
			funcs = append(funcs, b.String())
		}
		sort.Strings(funcs)
		for _, s := range funcs {
			hashStr(h, "fn", s)
		}
	}

	prims := make([]string, 0, len(l.primitives))
	for _, p := range l.primitives {
		var b strings.Builder
		b.WriteString(p.Class)
		b.WriteByte('|')
		b.WriteString(string(p.Category))
		b.WriteByte('|')
		b.WriteString(strings.Join(p.Utterance, " "))
		for _, a := range p.Args {
			fmt.Fprintf(&b, "|$%s:%s", a.Name, a.Type)
		}
		flags := append([]string(nil), p.Flags...)
		sort.Strings(flags)
		for _, f := range flags {
			b.WriteByte('|')
			b.WriteString(f)
		}
		prims = append(prims, b.String())
	}
	sort.Strings(prims)
	for _, s := range prims {
		hashStr(h, "prim", s)
	}

	return hex.EncodeToString(h.Sum(nil))
}

// hashStr writes a domain-separated, length-prefixed string so that field
// boundaries cannot alias ("ab"+"c" vs "a"+"bc").
func hashStr(h hash.Hash, domain, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(domain)))
	h.Write(n[:])
	h.Write([]byte(domain))
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}
