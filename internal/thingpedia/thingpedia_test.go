package thingpedia

import (
	"strings"
	"testing"

	"repro/internal/thingtalk"
)

func TestBuiltinLibraryLoads(t *testing.T) {
	lib := Builtin()
	stats := lib.Stats()
	if stats.Skills < 30 {
		t.Errorf("built-in library too small: %d skills", stats.Skills)
	}
	if stats.Functions < 100 {
		t.Errorf("built-in library too small: %d functions", stats.Functions)
	}
	if stats.DistinctParams < 100 {
		t.Errorf("built-in library too small: %d distinct parameters", stats.DistinctParams)
	}
	if stats.Primitives < 250 {
		t.Errorf("built-in library too small: %d primitive templates", stats.Primitives)
	}
	if stats.PerFunction < 2 {
		t.Errorf("too few templates per function: %.1f", stats.PerFunction)
	}
	t.Logf("library: %d skills, %d functions (%d queries, %d actions), %d params, %d templates (%.1f per function)",
		stats.Skills, stats.Functions, stats.Queries, stats.Actions,
		stats.DistinctParams, stats.Primitives, stats.PerFunction)
}

func TestBuiltinSpotifyShape(t *testing.T) {
	lib := Builtin()
	c, ok := lib.Class("com.spotify")
	if !ok {
		t.Fatal("spotify class missing")
	}
	queries, actions := 0, 0
	for _, f := range c.Functions {
		if f.Kind == thingtalk.KindQuery {
			queries++
		} else {
			actions++
		}
	}
	// Section 6.1: 15 queries and 17 actions.
	if queries != 15 || actions != 17 {
		t.Errorf("spotify skill: got %d queries, %d actions; want 15, 17", queries, actions)
	}
}

func TestBuiltinPrimitivesAreTyped(t *testing.T) {
	lib := Builtin()
	for _, p := range lib.Primitives("") {
		var err error
		switch p.Category {
		case CatNP, CatQVP:
			_, err = thingtalk.TypecheckQuery(p.Query, lib)
		case CatWP:
			_, err = thingtalk.TypecheckStream(p.Stream, lib)
		case CatAVP:
			err = thingtalk.TypecheckAction(p.Action, lib, nil)
		}
		if err != nil {
			t.Errorf("template %q fails typecheck: %v", strings.Join(p.Utterance, " "), err)
		}
	}
}

func TestBuiltinEveryFunctionHasTemplate(t *testing.T) {
	lib := Builtin()
	covered := map[string]bool{}
	for _, p := range lib.Primitives("") {
		var prog *thingtalk.Program
		switch {
		case p.Query != nil:
			prog = &thingtalk.Program{Stream: thingtalk.Now(), Query: p.Query, Action: thingtalk.Notify()}
		case p.Stream != nil:
			prog = &thingtalk.Program{Stream: p.Stream, Action: thingtalk.Notify()}
		case p.Action != nil:
			prog = &thingtalk.Program{Stream: thingtalk.Now(), Action: p.Action}
		}
		for _, f := range prog.Functions() {
			covered[f] = true
		}
	}
	for _, f := range lib.Functions() {
		if !covered[f.Selector()] {
			t.Errorf("function %s has no primitive template", f.Selector())
		}
	}
}

func TestParseLibraryErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"garbage", `horses { }`},
		{"bad class name", `class dropbox { }`},
		{"bad kind", `class @a.b { retrieval f(out x : String); }`},
		{"bad dir", `class @a.b { query f(inout x : String, out y : String); }`},
		{"bad type", `class @a.b { query f(out x : Str); }`},
		{"action with out", `class @a.b { action f(out x : String); }`},
		{"query without out", `class @a.b { query f(in req x : String); }`},
		{"duplicate class", `class @a.b { query f(out x : String); } class @a.b { query g(out x : String); }`},
		{"undeclared placeholder in utterance", `class @a.b { query f(in req x : String, out y : String); }
			templates { np "things $z" (x : String) := @a.b.f param:x = $x ; }`},
		{"undeclared placeholder in code", `class @a.b { query f(in req x : String, out y : String); }
			templates { np "things $x" (x : String) := @a.b.f param:x = $z ; }`},
		{"unused placeholder", `class @a.b { query f(out y : String); }
			templates { np "things $x" (x : String) := @a.b.f ; }`},
		{"template wrong type", `class @a.b { query f(in req x : Number, out y : String); }
			templates { np "things $x" (x : String) := @a.b.f param:x = $x ; }`},
		{"template unknown function", `templates { np "things" := @a.b.missing ; }`},
		{"template monitor unmonitorable", `class @a.b { query f(out y : String); }
			templates { wp "when things" := monitor ( @a.b.f ) ; }`},
		{"bad category", `class @a.b { query f(out y : String); }
			templates { xp "things" := @a.b.f ; }`},
		{"missing required in template", `class @a.b { query f(in req x : String, out y : String); }
			templates { np "things" := @a.b.f ; }`},
	}
	for _, c := range cases {
		if _, err := ParseLibrary(c.src); err == nil {
			t.Errorf("%s: ParseLibrary should fail", c.name)
		}
	}
}

func TestParseLibraryVPClassification(t *testing.T) {
	src := `
class @a.b {
  query q(out y : String);
  action act(in req m : String);
}
templates {
  vp "get the thing" := @a.b.q ;
  vp "do the thing with $m" (m : String) := @a.b.act param:m = $m ;
  np "the thing" := @a.b.q ;
}`
	lib, err := ParseLibrary(src)
	if err != nil {
		t.Fatal(err)
	}
	prims := lib.Primitives("a.b")
	if len(prims) != 3 {
		t.Fatalf("expected 3 templates, got %d", len(prims))
	}
	if prims[0].Category != CatQVP || prims[0].Query == nil {
		t.Errorf("vp over query should be qvp: %+v", prims[0])
	}
	if prims[1].Category != CatAVP || prims[1].Action == nil {
		t.Errorf("vp over action should be avp: %+v", prims[1])
	}
	if prims[2].Category != CatNP {
		t.Errorf("np should stay np")
	}
	// Slot metadata: the action placeholder should be typed and bound.
	var slot *thingtalk.Value
	for i := range prims[1].Action.Invocation.In {
		slot = &prims[1].Action.Invocation.In[i].Value
	}
	if slot.Kind != thingtalk.VSlot || slot.SlotType == nil || slot.SlotParam != "m" {
		t.Errorf("slot not resolved: %+v", slot)
	}
}

func TestLibraryAsSchemaSource(t *testing.T) {
	lib := Builtin()
	prog, err := thingtalk.ParseProgram(
		`monitor ( @com.twitter.timeline filter param:author == " pldi " ) => @com.twitter.retweet param:tweet_id = param:tweet_id`)
	if err != nil {
		t.Fatal(err)
	}
	if err := thingtalk.Typecheck(prog, lib); err != nil {
		t.Errorf("paper example should typecheck against builtin library: %v", err)
	}
}

func TestClassFlagsAndLookup(t *testing.T) {
	lib := Builtin()
	c, ok := lib.Class("com.twitter")
	if !ok || !c.Easy {
		t.Error("twitter should be an easy class")
	}
	if _, ok := c.Function("timeline"); !ok {
		t.Error("timeline function missing")
	}
	if _, ok := c.Function("nope"); ok {
		t.Error("unexpected function")
	}
	if _, ok := lib.Class("com.nosuch"); ok {
		t.Error("unexpected class")
	}
}

func TestPrimitiveFlags(t *testing.T) {
	src := `
class @a.b { query q(out y : String); }
templates {
  np [train] "the thing" := @a.b.q ;
  np "the other thing" := @a.b.q ;
}`
	lib, err := ParseLibrary(src)
	if err != nil {
		t.Fatal(err)
	}
	prims := lib.Primitives("")
	if !prims[0].HasFlag("train") || prims[0].HasFlag("paraphrase") {
		t.Error("flagged template should match only its flag")
	}
	if !prims[1].HasFlag("train") || !prims[1].HasFlag("paraphrase") {
		t.Error("unflagged template should match every flag")
	}
}
