package thingpedia

import (
	"os"
	"path/filepath"
	"testing"
)

const dirTestLib = `class @test.dir easy {
  action ping(in req text : String) "ping";
}
templates {
  vp "ping $x" (x : String) := @test.dir.ping param:text = $x ;
}
`

func TestScanLibraryDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"beta.tt", "alpha.tt", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(dirTestLib), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "sub.tt"), 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := ScanLibraryDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "alpha" || entries[1].Name != "beta" {
		t.Fatalf("entries = %+v, want alpha, beta", entries)
	}
	for _, e := range entries {
		if e.Size != int64(len(dirTestLib)) || e.ModTime.IsZero() {
			t.Errorf("entry %s missing stat signal: %+v", e.Name, e)
		}
	}
	if entries[0].Changed(entries[0]) {
		t.Error("entry reported changed against itself")
	}
	var zero DirEntry
	if !entries[0].Changed(zero) {
		t.Error("entry must report changed against the zero DirEntry")
	}

	if _, err := ScanLibraryDir(filepath.Join(dir, "nosuch")); err == nil {
		t.Error("scanning a missing directory should error")
	}
}

func TestLoadLibraryFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "skill.tt")
	if err := os.WriteFile(path, []byte(dirTestLib), 0o644); err != nil {
		t.Fatal(err)
	}
	lib, err := LoadLibraryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.Class("test.dir"); !ok {
		t.Error("parsed library missing its class")
	}
	if lib.Checksum() == "" {
		t.Error("empty checksum")
	}
	// Content-identical reparse hashes equal (the hot-reload predicate).
	lib2, err := LoadLibraryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Checksum() != lib2.Checksum() {
		t.Error("re-parsed library checksum differs")
	}

	if _, err := LoadLibraryFile(filepath.Join(dir, "missing.tt")); err == nil {
		t.Error("loading a missing file should error")
	}
	bad := filepath.Join(dir, "bad.tt")
	os.WriteFile(bad, []byte("class @x {"), 0o644)
	if _, err := LoadLibraryFile(bad); err == nil {
		t.Error("loading an unparsable file should error")
	}
}
