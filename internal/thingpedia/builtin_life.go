package thingpedia

// Everyday-life skills: ride hailing, transit, restaurants, recipes,
// parking, sports scores.

const builtinLife = `
class @com.uber {
  query price_estimate(in req start : Location,
                       in req end : Location,
                       out low_estimate : Currency,
                       out high_estimate : Currency,
                       out duration : Measure(ms)) "an uber price estimate";
  action request(in req start : Location, in req end : Location) "request an uber";
}

templates {
  np "an uber estimate from $x to $y" (x : Location, y : Location) := @com.uber.price_estimate param:end = $y param:start = $x ;
  np "the cost of an uber from $x to $y" (x : Location, y : Location) := @com.uber.price_estimate param:end = $y param:start = $x ;
  vp "request an uber from $x to $y" (x : Location, y : Location) := @com.uber.request param:end = $y param:start = $x ;
  vp "call me a ride from $x to $y" (x : Location, y : Location) := @com.uber.request param:end = $y param:start = $x ;
}

class @org.thingpedia.transit {
  monitorable list query next_bus(in req route : String,
                                  out arrival_time : Date,
                                  out minutes_away : Number) "the next bus arrival";
}

templates {
  np "the next $x bus" (x : String) := @org.thingpedia.transit.next_bus param:route = $x ;
  np "when the $x bus arrives" (x : String) := @org.thingpedia.transit.next_bus param:route = $x ;
  wp "when the $x bus is close" (x : String) := edge ( monitor ( @org.thingpedia.transit.next_bus param:route = $x ) ) on param:minutes_away < 5 ;
}

class @com.yelp {
  list query restaurants(in opt cuisine : String,
                         in opt near : Location,
                         out restaurant_name : String,
                         out rating : Number,
                         out price_range : Number) "restaurants nearby";
}

templates {
  np "restaurants nearby" := @com.yelp.restaurants ;
  np "$x restaurants" (x : String) := @com.yelp.restaurants param:cuisine = $x ;
  np "$x restaurants near $y" (x : String, y : Location) := @com.yelp.restaurants param:cuisine = $x param:near = $y ;
  np "restaurants rated above $x" (x : Number) := @com.yelp.restaurants filter param:rating > $x ;
  vp "find me a $x restaurant" (x : String) := @com.yelp.restaurants param:cuisine = $x ;
}

class @com.food2fork {
  list query recipes(in req ingredient : String,
                     out recipe_name : String,
                     out recipe_url : URL) "recipes using an ingredient";
}

templates {
  np "recipes with $x" (x : String) := @com.food2fork.recipes param:ingredient = $x ;
  np "something to cook with $x" (x : String) := @com.food2fork.recipes param:ingredient = $x ;
  vp "find a recipe using $x" (x : String) := @com.food2fork.recipes param:ingredient = $x ;
}

class @com.espn {
  monitorable query team_score(in req team : Entity(com.espn:team),
                               out score : String,
                               out is_playing : Boolean,
                               out won : Boolean) "the latest score for a team";
}

templates {
  np "the score of the $x game" (x : Entity(com.espn:team)) := @com.espn.team_score param:team = $x ;
  np "how the $x are doing" (x : Entity(com.espn:team)) := @com.espn.team_score param:team = $x ;
  wp "when the $x game ends" (x : Entity(com.espn:team)) := monitor ( @com.espn.team_score param:team = $x filter param:is_playing == false ) ;
  wp "when the $x win" (x : Entity(com.espn:team)) := monitor ( @com.espn.team_score param:team = $x filter param:won == true ) ;
  wp "when the $x score changes" (x : Entity(com.espn:team)) := monitor ( @com.espn.team_score param:team = $x ) on new param:score ;
}

class @org.thingpedia.builtin.battery {
  monitorable query level(out battery_level : Number,
                          out charging : Boolean) "my phone battery level";
}

templates {
  np "my battery level" := @org.thingpedia.builtin.battery.level ;
  np "how much battery i have left" := @org.thingpedia.builtin.battery.level ;
  wp "when my battery is low" := edge ( monitor ( @org.thingpedia.builtin.battery.level ) ) on param:battery_level < 20 ;
  wp "when my phone is charged" := edge ( monitor ( @org.thingpedia.builtin.battery.level ) ) on param:battery_level >= 100 ;
}
`
