package thingpedia

// Media skills: YouTube, the cat API, XKCD, Giphy, Imgflip, NASA.

const builtinMedia = `
class @com.youtube easy {
  monitorable list query search_videos(in req query : String,
                                       out video_title : String,
                                       out video_url : URL,
                                       out channel : Entity(com.youtube:channel)) "youtube videos matching a search";
  monitorable list query subscriptions(out channel : Entity(com.youtube:channel),
                                       out video_title : String,
                                       out video_url : URL) "new videos from my subscriptions";
  action add_to_playlist(in req playlist : String, in req video_url : URL) "add a video to a playlist";
}

templates {
  np "youtube videos about $x" (x : String) := @com.youtube.search_videos param:query = $x ;
  np "videos matching $x on youtube" (x : String) := @com.youtube.search_videos param:query = $x ;
  vp "search youtube for $x" (x : String) := @com.youtube.search_videos param:query = $x ;
  wp "when there is a new youtube video about $x" (x : String) := monitor ( @com.youtube.search_videos param:query = $x ) ;
  np "videos from my youtube subscriptions" := @com.youtube.subscriptions ;
  np "new videos from channels i follow" := @com.youtube.subscriptions ;
  wp "when a channel i subscribe to uploads a video" := monitor ( @com.youtube.subscriptions ) ;
  wp "when $x uploads a video" (x : Entity(com.youtube:channel)) := monitor ( @com.youtube.subscriptions filter param:channel == $x ) ;
  vp "add $y to my youtube playlist $x" (x : String, y : URL) := @com.youtube.add_to_playlist param:playlist = $x param:video_url = $y ;
  vp "save the video $y to playlist $x" (x : String, y : URL) := @com.youtube.add_to_playlist param:playlist = $x param:video_url = $y ;
}

class @com.thecatapi easy {
  list query get(in opt count : Number,
                 out picture_url : URL,
                 out image_id : Entity(com.thecatapi:image_id)) "a cat picture";
}

templates {
  np "a cat picture" := @com.thecatapi.get ;
  np "a random cat photo" := @com.thecatapi.get ;
  np "cute cat pictures" := @com.thecatapi.get ;
  np "$x cat pictures" (x : Number) := @com.thecatapi.get param:count = $x ;
  vp "get a cat picture" := @com.thecatapi.get ;
  vp "show me cats" := @com.thecatapi.get ;
}

class @com.xkcd easy {
  monitorable query comic(in opt number : Number,
                          out title : String,
                          out picture_url : URL,
                          out link : URL) "an xkcd comic";
}

templates {
  np "the latest xkcd comic" := @com.xkcd.comic ;
  np "today's xkcd" := @com.xkcd.comic ;
  np "xkcd number $x" (x : Number) := @com.xkcd.comic param:number = $x ;
  wp "when a new xkcd comes out" := monitor ( @com.xkcd.comic ) ;
  wp "when xkcd is updated" := monitor ( @com.xkcd.comic ) ;
}

class @com.giphy {
  list query get(in opt tag : String,
                 out picture_url : URL) "a random gif";
}

templates {
  np "a random gif" := @com.giphy.get ;
  np "a gif of $x" (x : String) := @com.giphy.get param:tag = $x ;
  np "a $x gif from giphy" (x : String) := @com.giphy.get param:tag = $x ;
  vp "find me a gif about $x" (x : String) := @com.giphy.get param:tag = $x ;
}

class @com.imgflip {
  query generate(in req template : String,
                 in req top_text : String,
                 in req bottom_text : String,
                 out picture_url : URL) "a generated meme";
  list query list_templates(out template : String) "available meme templates";
}

templates {
  np "a $x meme saying $y on top and $z below" (x : String, y : String, z : String) := @com.imgflip.generate param:template = $x param:top_text = $y param:bottom_text = $z ;
  vp "make a $x meme with $y and $z" (x : String, y : String, z : String) := @com.imgflip.generate param:template = $x param:top_text = $y param:bottom_text = $z ;
  np "meme templates on imgflip" := @com.imgflip.list_templates ;
  np "the list of meme templates" := @com.imgflip.list_templates ;
}

class @gov.nasa {
  monitorable query apod(out title : String,
                         out picture_url : URL,
                         out description : String) "nasa's astronomy picture of the day";
  query asteroid(out name : String,
                 out distance : Measure(m),
                 out velocity : Measure(mps)) "the closest asteroid today";
}

templates {
  np "nasa's astronomy picture of the day" := @gov.nasa.apod ;
  np "the nasa picture of the day" := @gov.nasa.apod ;
  np "today's space picture" := @gov.nasa.apod ;
  wp "when nasa posts a new picture of the day" := monitor ( @gov.nasa.apod ) ;
  np "the asteroid closest to earth" := @gov.nasa.asteroid ;
  np "today's closest asteroid" := @gov.nasa.asteroid ;
}
`
