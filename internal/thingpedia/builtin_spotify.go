package thingpedia

// The comprehensive Spotify skill of Section 6.1: 15 queries and 17 actions.
// Songs and artists are quote-free string-like parameters; the parser must
// learn to distinguish "play shake it off" (a song) from "play taylor swift"
// (an artist) from the parameter value itself.

const builtinSpotify = `
class @com.spotify easy {
  monitorable query get_currently_playing(out song : Entity(com.spotify:song),
                                          out artist : Entity(com.spotify:artist),
                                          out album : Entity(com.spotify:album)) "the song that is playing";
  list query get_my_songs(out song : Entity(com.spotify:song),
                          out artist : Entity(com.spotify:artist),
                          out tempo : Measure(bpm),
                          out energy : Number,
                          out popularity : Number) "songs in my library";
  list query get_top_tracks(out song : Entity(com.spotify:song),
                            out artist : Entity(com.spotify:artist)) "my most played songs";
  list query get_top_artists(out artist : Entity(com.spotify:artist),
                             out genre : String) "my most played artists";
  list query get_song(in req song : Entity(com.spotify:song),
                      out artist : Entity(com.spotify:artist),
                      out album : Entity(com.spotify:album),
                      out tempo : Measure(bpm),
                      out duration : Measure(ms)) "information about a song";
  list query get_artist(in req artist : Entity(com.spotify:artist),
                        out genre : String,
                        out followers : Number) "information about an artist";
  list query get_album(in req album : Entity(com.spotify:album),
                       out artist : Entity(com.spotify:artist),
                       out song : Entity(com.spotify:song)) "songs on an album";
  list query get_playlists(out playlist : Entity(com.spotify:playlist),
                           out song_count : Number) "my playlists";
  list query get_playlist_tracks(in req playlist : Entity(com.spotify:playlist),
                                 out song : Entity(com.spotify:song),
                                 out artist : Entity(com.spotify:artist)) "songs in a playlist";
  monitorable list query get_new_releases(out album : Entity(com.spotify:album),
                                          out artist : Entity(com.spotify:artist)) "newly released albums";
  list query get_recommendations(in opt seed_artist : Entity(com.spotify:artist),
                                 out song : Entity(com.spotify:song),
                                 out artist : Entity(com.spotify:artist)) "recommended songs";
  monitorable list query get_recently_played(out song : Entity(com.spotify:song),
                                             out artist : Entity(com.spotify:artist)) "songs i listened to recently";
  list query get_devices(out device : Entity(com.spotify:device),
                         out is_active : Boolean) "my spotify devices";
  query get_volume(out volume : Number) "the playback volume";
  query get_shuffle_state(out shuffle : Boolean,
                          out repeat : Enum(off,track,context)) "the shuffle and repeat state";

  action play_song(in req song : Entity(com.spotify:song),
                   in opt artist : Entity(com.spotify:artist)) "play a song";
  action play_artist(in req artist : Entity(com.spotify:artist)) "play songs by an artist";
  action play_album(in req album : Entity(com.spotify:album)) "play an album";
  action play_playlist(in req playlist : Entity(com.spotify:playlist)) "play a playlist";
  action pause() "pause the music";
  action resume() "resume the music";
  action next_track() "skip to the next song";
  action previous_track() "go back to the previous song";
  action set_volume(in req volume : Number) "set the playback volume";
  action set_shuffle(in req shuffle : Enum(on,off)) "turn shuffle on or off";
  action set_repeat(in req repeat : Enum(off,track,context)) "set the repeat mode";
  action add_song_to_playlist(in req playlist : Entity(com.spotify:playlist),
                              in req song : Entity(com.spotify:song)) "add a song to a playlist";
  action create_playlist(in req name : String) "create a playlist";
  action save_song(in req song : Entity(com.spotify:song)) "save a song to my library";
  action remove_song(in req song : Entity(com.spotify:song)) "remove a song from my library";
  action follow_artist(in req artist : Entity(com.spotify:artist)) "follow an artist";
  action transfer_playback(in req device : Entity(com.spotify:device)) "move playback to another device";
}

templates {
  np "the song that is playing" := @com.spotify.get_currently_playing ;
  np "what i am listening to" := @com.spotify.get_currently_playing ;
  np "the current song" := @com.spotify.get_currently_playing ;
  wp "when the song changes" := monitor ( @com.spotify.get_currently_playing ) ;
  wp "when a song by $x comes on" (x : Entity(com.spotify:artist)) := monitor ( @com.spotify.get_currently_playing filter param:artist == $x ) ;
  np "songs in my spotify library" := @com.spotify.get_my_songs ;
  np "my saved songs" := @com.spotify.get_my_songs ;
  np "my songs faster than $x" (x : Measure(bpm)) := @com.spotify.get_my_songs filter param:tempo > $x ;
  np "my songs by $x" (x : Entity(com.spotify:artist)) := @com.spotify.get_my_songs filter param:artist == $x ;
  np "high energy songs in my library" := @com.spotify.get_my_songs filter param:energy > 80 ;
  np "my most played songs" := @com.spotify.get_top_tracks ;
  np "my top tracks on spotify" := @com.spotify.get_top_tracks ;
  np "my favorite artists" := @com.spotify.get_top_artists ;
  np "the artists i listen to most" := @com.spotify.get_top_artists ;
  np "information about the song $x" (x : Entity(com.spotify:song)) := @com.spotify.get_song param:song = $x ;
  np "the tempo of $x" (x : Entity(com.spotify:song)) := @com.spotify.get_song param:song = $x ;
  np "details on the artist $x" (x : Entity(com.spotify:artist)) := @com.spotify.get_artist param:artist = $x ;
  np "the genre of $x" (x : Entity(com.spotify:artist)) := @com.spotify.get_artist param:artist = $x ;
  np "songs on the album $x" (x : Entity(com.spotify:album)) := @com.spotify.get_album param:album = $x ;
  np "the track list of $x" (x : Entity(com.spotify:album)) := @com.spotify.get_album param:album = $x ;
  np "my spotify playlists" := @com.spotify.get_playlists ;
  np "the playlists i created" := @com.spotify.get_playlists ;
  np "songs in my playlist $x" (x : Entity(com.spotify:playlist)) := @com.spotify.get_playlist_tracks param:playlist = $x ;
  np "tracks on the playlist $x" (x : Entity(com.spotify:playlist)) := @com.spotify.get_playlist_tracks param:playlist = $x ;
  np "new album releases" := @com.spotify.get_new_releases ;
  np "albums that just came out" := @com.spotify.get_new_releases ;
  wp "when a new album drops" := monitor ( @com.spotify.get_new_releases ) ;
  wp "when $x releases an album" (x : Entity(com.spotify:artist)) := monitor ( @com.spotify.get_new_releases filter param:artist == $x ) ;
  np "song recommendations" := @com.spotify.get_recommendations ;
  np "songs similar to $x" (x : Entity(com.spotify:artist)) := @com.spotify.get_recommendations param:seed_artist = $x ;
  np "songs i listened to recently" := @com.spotify.get_recently_played ;
  np "my listening history" := @com.spotify.get_recently_played ;
  wp "when i finish a song" := monitor ( @com.spotify.get_recently_played ) ;
  np "my spotify devices" := @com.spotify.get_devices ;
  np "devices i can play music on" := @com.spotify.get_devices ;
  np "the spotify volume" := @com.spotify.get_volume ;
  np "how loud the music is" := @com.spotify.get_volume ;
  np "the shuffle setting" := @com.spotify.get_shuffle_state ;

  vp "play $x" (x : Entity(com.spotify:song)) := @com.spotify.play_song param:song = $x ;
  vp "play the song $x" (x : Entity(com.spotify:song)) := @com.spotify.play_song param:song = $x ;
  vp "put on $x" (x : Entity(com.spotify:song)) := @com.spotify.play_song param:song = $x ;
  vp "play $x by $y" (x : Entity(com.spotify:song), y : Entity(com.spotify:artist)) := @com.spotify.play_song param:artist = $y param:song = $x ;
  vp "play $x" (x : Entity(com.spotify:artist)) := @com.spotify.play_artist param:artist = $x ;
  vp "play songs by $x" (x : Entity(com.spotify:artist)) := @com.spotify.play_artist param:artist = $x ;
  vp "put on some $x" (x : Entity(com.spotify:artist)) := @com.spotify.play_artist param:artist = $x ;
  vp "play the album $x" (x : Entity(com.spotify:album)) := @com.spotify.play_album param:album = $x ;
  vp "listen to the album $x" (x : Entity(com.spotify:album)) := @com.spotify.play_album param:album = $x ;
  vp "play my playlist $x" (x : Entity(com.spotify:playlist)) := @com.spotify.play_playlist param:playlist = $x ;
  vp "shuffle the playlist $x" (x : Entity(com.spotify:playlist)) := @com.spotify.play_playlist param:playlist = $x ;
  vp "pause the music" := @com.spotify.pause ;
  vp "stop playing" := @com.spotify.pause ;
  vp "resume the music" := @com.spotify.resume ;
  vp "keep playing" := @com.spotify.resume ;
  vp "skip this song" := @com.spotify.next_track ;
  vp "play the next track" := @com.spotify.next_track ;
  vp "go back a song" := @com.spotify.previous_track ;
  vp "play the previous track" := @com.spotify.previous_track ;
  vp "set the volume to $x" (x : Number) := @com.spotify.set_volume param:volume = $x ;
  vp "turn the music to $x percent" (x : Number) := @com.spotify.set_volume param:volume = $x ;
  vp "turn shuffle $x" (x : Enum(on,off)) := @com.spotify.set_shuffle param:shuffle = $x ;
  vp "set repeat to $x" (x : Enum(off,track,context)) := @com.spotify.set_repeat param:repeat = $x ;
  vp "add $y to the playlist $x" (x : Entity(com.spotify:playlist), y : Entity(com.spotify:song)) := @com.spotify.add_song_to_playlist param:playlist = $x param:song = $y ;
  vp "put the song $y on my $x playlist" (x : Entity(com.spotify:playlist), y : Entity(com.spotify:song)) := @com.spotify.add_song_to_playlist param:playlist = $x param:song = $y ;
  vp "create a playlist called $x" (x : String) := @com.spotify.create_playlist param:name = $x ;
  vp "make a new playlist named $x" (x : String) := @com.spotify.create_playlist param:name = $x ;
  vp "save $x to my library" (x : Entity(com.spotify:song)) := @com.spotify.save_song param:song = $x ;
  vp "like the song $x" (x : Entity(com.spotify:song)) := @com.spotify.save_song param:song = $x ;
  vp "remove $x from my library" (x : Entity(com.spotify:song)) := @com.spotify.remove_song param:song = $x ;
  vp "unlike $x" (x : Entity(com.spotify:song)) := @com.spotify.remove_song param:song = $x ;
  vp "follow $x on spotify" (x : Entity(com.spotify:artist)) := @com.spotify.follow_artist param:artist = $x ;
  vp "move the music to $x" (x : Entity(com.spotify:device)) := @com.spotify.transfer_playback param:device = $x ;
  vp "play on my $x" (x : Entity(com.spotify:device)) := @com.spotify.transfer_playback param:device = $x ;
}
`
