package thingpedia

// IoT skills: lights, thermostat, security camera, TV, vacuum, door lock,
// fitness devices.

const builtinIoT = `
class @com.hue easy {
  monitorable query state(out power : Enum(on,off),
                          out brightness : Number,
                          out color : String) "the state of my light bulbs";
  action set_power(in req power : Enum(on,off)) "turn my lights on or off";
  action set_brightness(in req brightness : Number) "set light brightness";
  action set_color(in req color : String) "change the light color";
  action color_loop() "make the lights cycle colors";
}

templates {
  np "the state of my lights" := @com.hue.state ;
  np "my hue light settings" := @com.hue.state ;
  wp "when my lights change" := monitor ( @com.hue.state ) ;
  wp "when my lights turn on" := monitor ( @com.hue.state filter param:power == enum:on ) ;
  vp "turn $x my lights" (x : Enum(on,off)) := @com.hue.set_power param:power = $x ;
  vp "switch my hue lights $x" (x : Enum(on,off)) := @com.hue.set_power param:power = $x ;
  vp "set my lights to $x percent" (x : Number) := @com.hue.set_brightness param:brightness = $x ;
  vp "dim the lights to $x" (x : Number) := @com.hue.set_brightness param:brightness = $x ;
  vp "make my lights $x" (x : String) := @com.hue.set_color param:color = $x ;
  vp "change the light color to $x" (x : String) := @com.hue.set_color param:color = $x ;
  vp "make my hue lights color loop" := @com.hue.color_loop ;
  vp "cycle the light colors" := @com.hue.color_loop ;
}

class @com.nest.thermostat easy {
  monitorable query get_temperature(out value : Measure(C),
                                    out humidity : Number,
                                    out mode : Enum(heat,cool,off)) "the thermostat reading";
  action set_target_temperature(in req value : Measure(C)) "set the thermostat";
  action set_mode(in req mode : Enum(heat,cool,off)) "set the thermostat mode";
}

templates {
  np "the temperature inside" := @com.nest.thermostat.get_temperature ;
  np "my thermostat reading" := @com.nest.thermostat.get_temperature ;
  np "the thermostat setting" := @com.nest.thermostat.get_temperature ;
  wp "when the temperature inside changes" := monitor ( @com.nest.thermostat.get_temperature ) ;
  vp "set the temperature to $x" (x : Measure(C)) := @com.nest.thermostat.set_target_temperature param:value = $x ;
  vp "set my thermostat to $x" (x : Measure(C)) := @com.nest.thermostat.set_target_temperature param:value = $x ;
  vp "set the thermostat to $x mode" (x : Enum(heat,cool,off)) := @com.nest.thermostat.set_mode param:mode = $x ;
  vp "switch the hvac to $x" (x : Enum(heat,cool,off)) := @com.nest.thermostat.set_mode param:mode = $x ;
}

class @com.nest.camera {
  monitorable query current_event(out motion : Boolean,
                                  out person_detected : Boolean,
                                  out picture_url : URL) "security camera events";
  action set_streaming(in req streaming : Enum(on,off)) "turn the camera on or off";
}

templates {
  np "my security camera feed" := @com.nest.camera.current_event ;
  np "the latest security camera event" := @com.nest.camera.current_event ;
  wp "when my camera detects motion" := monitor ( @com.nest.camera.current_event filter param:motion == true ) ;
  wp "when somebody is at the door" := monitor ( @com.nest.camera.current_event filter param:person_detected == true ) ;
  vp "turn the security camera $x" (x : Enum(on,off)) := @com.nest.camera.set_streaming param:streaming = $x ;
}

class @com.lg.tv {
  monitorable query get_channel(out channel : String,
                                out volume : Number) "what is on my tv";
  action set_channel(in req channel : String) "change the tv channel";
  action set_volume(in req volume : Number) "set the tv volume";
  action turn_off() "turn off the tv";
}

templates {
  np "the channel my tv is on" := @com.lg.tv.get_channel ;
  np "what is playing on my tv" := @com.lg.tv.get_channel ;
  wp "when somebody changes the tv channel" := monitor ( @com.lg.tv.get_channel ) ;
  vp "change the tv to $x" (x : String) := @com.lg.tv.set_channel param:channel = $x ;
  vp "put $x on the tv" (x : String) := @com.lg.tv.set_channel param:channel = $x ;
  vp "set the tv volume to $x" (x : Number) := @com.lg.tv.set_volume param:volume = $x ;
  vp "turn the tv volume to $x" (x : Number) := @com.lg.tv.set_volume param:volume = $x ;
  vp "turn off the tv" := @com.lg.tv.turn_off ;
  vp "shut the television down" := @com.lg.tv.turn_off ;
}

class @com.irobot {
  monitorable query status(out state : Enum(cleaning,docked,stuck),
                           out battery : Number) "what my roomba is doing";
  action start_cleaning() "start the roomba";
  action dock() "send the roomba home";
}

templates {
  np "my roomba's status" := @com.irobot.status ;
  np "what my roomba is doing" := @com.irobot.status ;
  wp "when my roomba gets stuck" := monitor ( @com.irobot.status filter param:state == enum:stuck ) ;
  wp "when the roomba finishes cleaning" := monitor ( @com.irobot.status filter param:state == enum:docked ) ;
  vp "start the roomba" := @com.irobot.start_cleaning ;
  vp "vacuum the house" := @com.irobot.start_cleaning ;
  vp "send the roomba back to its dock" := @com.irobot.dock ;
}

class @com.august.lock {
  monitorable query state(out locked : Boolean) "whether my door is locked";
  action lock() "lock the door";
  action unlock() "unlock the door";
}

templates {
  np "the state of my door lock" := @com.august.lock.state ;
  np "whether my door is locked" := @com.august.lock.state ;
  wp "when my door unlocks" := monitor ( @com.august.lock.state filter param:locked == false ) ;
  wp "when someone locks the door" := monitor ( @com.august.lock.state filter param:locked == true ) ;
  vp "lock the door" := @com.august.lock.lock ;
  vp "lock my front door" := @com.august.lock.lock ;
  vp "unlock the door" := @com.august.lock.unlock ;
}

class @com.fitbit {
  monitorable query steps(out steps : Number,
                          out distance : Measure(m),
                          out calories : Measure(kcal)) "my step count";
  monitorable query heartrate(out bpm : Measure(bpm)) "my heart rate";
}

templates {
  np "my step count" := @com.fitbit.steps ;
  np "how far i walked today" := @com.fitbit.steps ;
  np "the calories i burned" := @com.fitbit.steps ;
  wp "when i reach $x steps" (x : Number) := edge ( monitor ( @com.fitbit.steps ) ) on param:steps >= $x ;
  wp "when my step count updates" := monitor ( @com.fitbit.steps ) ;
  np "my heart rate" := @com.fitbit.heartrate ;
  wp "when my heart rate goes above $x" (x : Measure(bpm)) := edge ( monitor ( @com.fitbit.heartrate ) ) on param:bpm > $x ;
}

class @com.bodytrace.scale {
  monitorable query get_weight(out weight : Measure(kg)) "my weight from the smart scale";
}

templates {
  np "my weight" := @com.bodytrace.scale.get_weight ;
  np "the reading from my scale" := @com.bodytrace.scale.get_weight ;
  wp "when i weigh myself" := monitor ( @com.bodytrace.scale.get_weight ) ;
  wp "when my weight drops below $x" (x : Measure(kg)) := edge ( monitor ( @com.bodytrace.scale.get_weight ) ) on param:weight < $x ;
}
`
