package faultinject

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBackend is a healthy upstream answering a fixed JSON body.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"tokens":["now","=>","notify"],"program":"now => notify"}`)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func newProxy(t *testing.T, target string) *Server {
	t.Helper()
	s, err := NewServer(target)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestProxyPassesThrough(t *testing.T) {
	s := newProxy(t, newBackend(t).URL)
	resp, err := http.Get(s.URL() + "/parse")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "notify") {
		t.Errorf("pass-through reply: status %d body %q", resp.StatusCode, body)
	}
	if st := s.Stats(); st.Passed != 1 {
		t.Errorf("Stats.Passed = %d, want 1", st.Passed)
	}
}

func TestProxyDropAbortsConnection(t *testing.T) {
	s := newProxy(t, newBackend(t).URL)
	s.SetFault(Fault{Mode: Drop})
	if _, err := http.Get(s.URL() + "/parse"); err == nil {
		t.Error("dropped request should surface a transport error")
	}
	if st := s.Stats(); st.Dropped != 1 {
		t.Errorf("Stats.Dropped = %d, want 1", st.Dropped)
	}
}

func TestProxyStatusInjects5xx(t *testing.T) {
	s := newProxy(t, newBackend(t).URL)
	s.SetFault(Fault{Mode: Status, Status: 500})
	resp, err := http.Get(s.URL() + "/parse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 500 {
		t.Errorf("status = %d, want 500", resp.StatusCode)
	}
}

func TestProxyDelayAddsLatency(t *testing.T) {
	s := newProxy(t, newBackend(t).URL)
	s.SetFault(Fault{Mode: Delay, Delay: 60 * time.Millisecond})
	start := time.Now()
	resp, err := http.Get(s.URL() + "/parse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("delayed request answered in %v, want >= 60ms", elapsed)
	}
	if resp.StatusCode != 200 {
		t.Errorf("delayed status = %d, want 200", resp.StatusCode)
	}
}

func TestProxyTruncateTearsReply(t *testing.T) {
	s := newProxy(t, newBackend(t).URL)
	s.SetFault(Fault{Mode: Truncate, TruncateBytes: 5})
	resp, err := http.Get(s.URL() + "/parse")
	if err != nil {
		return // aborting before headers is also a valid torn reply
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr == nil && len(body) > 5 {
		t.Errorf("truncated body carried %d bytes with no read error: %q", len(body), body)
	}
}

func TestProxyHangBlocksUntilReleased(t *testing.T) {
	s := newProxy(t, newBackend(t).URL)
	s.SetFault(Fault{Mode: Hang})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, s.URL()+"/parse", nil)
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Error("hung request should time out on the client deadline")
	}
	// Flipping the fault releases any still-hung request.
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(s.URL() + "/parse")
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.SetFault(Fault{Mode: Pass})
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hung request was not released by SetFault")
	}
}

func TestControlHandlerFlipsFaults(t *testing.T) {
	s := newProxy(t, newBackend(t).URL)
	ctl := httptest.NewServer(s.ControlHandler())
	defer ctl.Close()

	resp, err := http.Post(ctl.URL+"/fault", "application/json",
		bytes.NewReader([]byte(`{"mode":"status","status":503}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if f := s.CurrentFault(); f.Mode != Status || f.Status != 503 {
		t.Errorf("fault after control POST = %+v", f)
	}

	// The proxy applies it, and /stats reflects the outcome.
	presp, err := http.Get(s.URL() + "/parse")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 503 {
		t.Errorf("status = %d, want 503", presp.StatusCode)
	}
	sresp, err := http.Get(ctl.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.Statused != 1 {
		t.Errorf("Stats.Statused = %d, want 1", st.Statused)
	}
}
