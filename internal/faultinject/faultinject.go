// Package faultinject is a chaos proxy for HTTP backends: it sits between
// the gateway and a real fleet process and injects the failure modes the
// resilience contract must survive — dropped connections, added latency,
// synthetic 5xx, truncated reply bodies, and hangs. Tests (and the CI chaos
// smoke) flip the fault atomically mid-load and assert the gateway's
// retry/eject/readmit behavior; the proxy itself stays dumb and
// deterministic.
package faultinject

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the injected fault.
type Mode string

const (
	// Pass proxies untouched.
	Pass Mode = "pass"
	// Drop aborts the connection before any response bytes (the client sees
	// a transport error, as if the process died mid-accept).
	Drop Mode = "drop"
	// Delay sleeps Fault.Delay before proxying (slow backend; exercises
	// hedging and deadline budgets).
	Delay Mode = "delay"
	// Status answers Fault.Status with an empty body instead of proxying
	// (synthetic 5xx; 0 means 500).
	Status Mode = "status"
	// Truncate proxies but cuts the reply body after Fault.TruncateBytes
	// bytes and aborts the connection (torn response).
	Truncate Mode = "truncate"
	// Hang accepts the request and blocks until the client gives up or the
	// fault changes (stuck process; exercises probe timeouts and hedges).
	Hang Mode = "hang"
)

// Fault is the active injection, swapped atomically via SetFault.
type Fault struct {
	Mode          Mode          `json:"mode"`
	Delay         time.Duration `json:"-"`
	DelayMS       int           `json:"delay_ms,omitempty"`
	Status        int           `json:"status,omitempty"`
	TruncateBytes int           `json:"truncate_bytes,omitempty"`
}

// Stats counts requests per outcome since the proxy started.
type Stats struct {
	Passed    int64 `json:"passed"`
	Dropped   int64 `json:"dropped"`
	Delayed   int64 `json:"delayed"`
	Statused  int64 `json:"statused"`
	Truncated int64 `json:"truncated"`
	Hung      int64 `json:"hung"`
}

// Proxy is the chaos proxy. Zero value is not usable; build with New.
type Proxy struct {
	rp    *httputil.ReverseProxy
	fault atomic.Value // Fault

	passed, dropped, delayed, statused, truncated, hung atomic.Int64

	mu      sync.Mutex
	release chan struct{} // closed to free hung requests
}

// New builds a proxy forwarding to target (a base URL), starting in Pass.
func New(target string) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	p := &Proxy{rp: httputil.NewSingleHostReverseProxy(u), release: make(chan struct{})}
	// Swallow the reverse proxy's default error logging; the tests inspect
	// outcomes through the client, not stderr.
	p.rp.ErrorLog = nil
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		http.Error(w, "faultinject: upstream: "+err.Error(), http.StatusBadGateway)
	}
	p.fault.Store(Fault{Mode: Pass})
	return p, nil
}

// SetFault swaps the active fault and frees any requests hung on the
// previous one.
func (p *Proxy) SetFault(f Fault) {
	if f.Mode == "" {
		f.Mode = Pass
	}
	if f.DelayMS > 0 && f.Delay == 0 {
		f.Delay = time.Duration(f.DelayMS) * time.Millisecond
	}
	p.fault.Store(f)
	p.mu.Lock()
	close(p.release)
	p.release = make(chan struct{})
	p.mu.Unlock()
}

// CurrentFault returns the active fault.
func (p *Proxy) CurrentFault() Fault { return p.fault.Load().(Fault) }

// Stats snapshots the per-outcome counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Passed:    p.passed.Load(),
		Dropped:   p.dropped.Load(),
		Delayed:   p.delayed.Load(),
		Statused:  p.statused.Load(),
		Truncated: p.truncated.Load(),
		Hung:      p.hung.Load(),
	}
}

// ServeHTTP applies the active fault to one request.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f := p.CurrentFault()
	switch f.Mode {
	case Drop:
		p.dropped.Add(1)
		panic(http.ErrAbortHandler) // net/http aborts the connection
	case Delay:
		p.delayed.Add(1)
		select {
		case <-time.After(f.Delay):
		case <-r.Context().Done():
			return
		}
		p.rp.ServeHTTP(w, r)
	case Status:
		p.statused.Add(1)
		code := f.Status
		if code == 0 {
			code = http.StatusInternalServerError
		}
		http.Error(w, "faultinject: injected status", code)
	case Truncate:
		p.truncated.Add(1)
		p.rp.ServeHTTP(&truncatingWriter{w: w, remain: f.TruncateBytes}, r)
		panic(http.ErrAbortHandler) // tear the connection after the partial body
	case Hang:
		p.hung.Add(1)
		p.mu.Lock()
		release := p.release
		p.mu.Unlock()
		select {
		case <-release:
		case <-r.Context().Done():
		}
	default:
		p.passed.Add(1)
		p.rp.ServeHTTP(w, r)
	}
}

// truncatingWriter forwards at most remain body bytes, then swallows the
// rest; the caller tears the connection so the client sees a short read.
type truncatingWriter struct {
	w      http.ResponseWriter
	remain int
}

func (t *truncatingWriter) Header() http.Header { return t.w.Header() }

func (t *truncatingWriter) WriteHeader(code int) { t.w.WriteHeader(code) }

func (t *truncatingWriter) Write(b []byte) (int, error) {
	if t.remain <= 0 {
		return len(b), nil // swallow, pretend written
	}
	n := len(b)
	if n > t.remain {
		n = t.remain
	}
	if _, err := t.w.Write(b[:n]); err != nil {
		return 0, err
	}
	t.remain -= n
	if f, ok := t.w.(http.Flusher); ok {
		f.Flush() // force the partial bytes onto the wire before the abort
	}
	return len(b), nil
}

// Server wraps a Proxy in an httptest.Server for tests.
type Server struct {
	*Proxy
	ts *httptest.Server
}

// NewServer starts a chaos proxy in front of target on an ephemeral port.
func NewServer(target string) (*Server, error) {
	p, err := New(target)
	if err != nil {
		return nil, err
	}
	return &Server{Proxy: p, ts: httptest.NewServer(p)}, nil
}

// URL is the proxy's base URL (hand this to the gateway as a backend).
func (s *Server) URL() string { return s.ts.URL }

// Close shuts the listener down (in-flight hangs are released first).
func (s *Server) Close() {
	s.SetFault(Fault{Mode: Pass})
	s.ts.Close()
}

// ControlHandler exposes the proxy over HTTP for the CLI chaos harness:
// POST /fault installs a Fault from JSON, GET /fault and GET /stats report.
func (p *Proxy) ControlHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fault", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodPost:
			var f Fault
			if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
				http.Error(w, "bad fault: "+err.Error(), http.StatusBadRequest)
				return
			}
			p.SetFault(f)
			writeJSON(w, p.CurrentFault())
		case http.MethodGet:
			writeJSON(w, p.CurrentFault())
		default:
			http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// WaitHealthy polls url+"/healthz" until it answers 200 or the context
// expires; shared by the CLI harness and tests that boot real processes.
func WaitHealthy(ctx context.Context, hc *http.Client, url string) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := hc.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}
