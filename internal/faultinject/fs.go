package faultinject

import (
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/durable"
)

// FSMode selects the injected filesystem fault. These are the disk failure
// modes the durable store's recovery contract must survive: a write that
// silently loses its tail (torn write — the classic crash-mid-write
// artifact), a full disk, a flipped bit surfacing on read, and an fsync that
// takes forever.
type FSMode string

const (
	// FSPass performs real filesystem operations untouched.
	FSPass FSMode = "pass"
	// FSTornWrite silently discards every written byte after AfterBytes —
	// the file looks written (no error!) but its tail never hit the disk,
	// exactly what a crash between write and fsync leaves behind.
	FSTornWrite FSMode = "torn-write"
	// FSENOSPC fails writes with ENOSPC once AfterBytes have been written to
	// the faulted file (0 = immediately).
	FSENOSPC FSMode = "enospc"
	// FSBitFlip flips bit Bit of the byte at Offset in everything read — a
	// latent media error the checksum must catch.
	FSBitFlip FSMode = "bit-flip"
	// FSSlowSync makes File.Sync and SyncDir sleep Delay before syncing.
	FSSlowSync FSMode = "slow-sync"
)

// FSFault is the active filesystem injection.
type FSFault struct {
	Mode FSMode
	// AfterBytes: torn-write discards after this many written bytes; enospc
	// errors after this many.
	AfterBytes int64
	// Offset/Bit locate the flipped bit for bit-flip (offset within the
	// file's byte stream as read).
	Offset int64
	Bit    uint
	// Delay is the slow-sync sleep.
	Delay time.Duration
	// Match restricts the fault to paths containing this substring
	// ("" = every file).
	Match string
}

// FSStats counts injected filesystem faults.
type FSStats struct {
	TornWrites int64 `json:"torn_writes"`
	ENOSPCs    int64 `json:"enospcs"`
	BitFlips   int64 `json:"bit_flips"`
	SlowSyncs  int64 `json:"slow_syncs"`
}

// FaultFS wraps a durable.FS and injects the active FSFault underneath it.
// It is handed to durable.Open via Options.FS, so every store write and read
// goes through the fault layer. Safe for concurrent use; the fault is
// swapped atomically.
type FaultFS struct {
	inner durable.FS
	fault atomic.Value // FSFault

	torn, enospc, flips, slow atomic.Int64
}

// NewFaultFS wraps inner (nil = the real filesystem), starting in FSPass.
func NewFaultFS(inner durable.FS) *FaultFS {
	if inner == nil {
		inner = durable.OSFS{}
	}
	f := &FaultFS{inner: inner}
	f.fault.Store(FSFault{Mode: FSPass})
	return f
}

// SetFault atomically swaps the active fault.
func (f *FaultFS) SetFault(fault FSFault) {
	if fault.Mode == "" {
		fault.Mode = FSPass
	}
	f.fault.Store(fault)
}

// Fault returns the active fault.
func (f *FaultFS) Fault() FSFault { return f.fault.Load().(FSFault) }

// Stats returns how many faults have been injected.
func (f *FaultFS) Stats() FSStats {
	return FSStats{
		TornWrites: f.torn.Load(),
		ENOSPCs:    f.enospc.Load(),
		BitFlips:   f.flips.Load(),
		SlowSyncs:  f.slow.Load(),
	}
}

// active reports the fault that applies to path (FSPass when the fault's
// Match excludes it).
func (f *FaultFS) active(path string) FSFault {
	fault := f.Fault()
	if fault.Match != "" && !strings.Contains(path, fault.Match) {
		return FSFault{Mode: FSPass}
	}
	return fault
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *FaultFS) CreateTemp(dir, pattern string) (durable.File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (durable.File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *FaultFS) Remove(name string) error             { return f.inner.Remove(name) }
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	return f.inner.ReadDir(name)
}

func (f *FaultFS) SyncDir(name string) error {
	if fault := f.active(name); fault.Mode == FSSlowSync {
		f.slow.Add(1)
		time.Sleep(fault.Delay)
	}
	return f.inner.SyncDir(name)
}

// faultFile wraps one open file, tracking write and read offsets so byte-
// positioned faults (torn-write cutoff, bit-flip location) land
// deterministically.
type faultFile struct {
	fs    *FaultFS
	inner durable.File

	mu      sync.Mutex
	wrote   int64
	readOff int64
}

func (f *faultFile) Name() string { return f.inner.Name() }
func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Sync() error {
	if fault := f.fs.active(f.inner.Name()); fault.Mode == FSSlowSync {
		f.fs.slow.Add(1)
		time.Sleep(fault.Delay)
	}
	return f.inner.Sync()
}

func (f *faultFile) Write(p []byte) (int, error) {
	fault := f.fs.active(f.inner.Name())
	f.mu.Lock()
	defer f.mu.Unlock()
	switch fault.Mode {
	case FSTornWrite:
		// Write what fits under the cutoff, silently swallow the rest: the
		// caller sees full success, the disk holds a prefix.
		keep := fault.AfterBytes - f.wrote
		if keep < 0 {
			keep = 0
		}
		if keep > int64(len(p)) {
			keep = int64(len(p))
		}
		if keep > 0 {
			if n, err := f.inner.Write(p[:keep]); err != nil {
				f.wrote += int64(n)
				return n, err
			}
		}
		if keep < int64(len(p)) {
			f.fs.torn.Add(1)
		}
		f.wrote += int64(len(p))
		return len(p), nil
	case FSENOSPC:
		room := fault.AfterBytes - f.wrote
		if room >= int64(len(p)) {
			n, err := f.inner.Write(p)
			f.wrote += int64(n)
			return n, err
		}
		// The disk filled up partway through this write: keep the prefix
		// that fit, fail the rest — exactly what a real ENOSPC does.
		n := 0
		if room > 0 {
			n, _ = f.inner.Write(p[:room])
			f.wrote += int64(n)
		}
		f.fs.enospc.Add(1)
		return n, &os.PathError{Op: "write", Path: f.inner.Name(), Err: syscall.ENOSPC}
	default:
		n, err := f.inner.Write(p)
		f.wrote += int64(n)
		return n, err
	}
}

func (f *faultFile) Read(p []byte) (int, error) {
	fault := f.fs.active(f.inner.Name())
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.inner.Read(p)
	if fault.Mode == FSBitFlip && n > 0 {
		if i := fault.Offset - f.readOff; i >= 0 && i < int64(n) {
			p[i] ^= 1 << (fault.Bit % 8)
			f.fs.flips.Add(1)
		}
	}
	f.readOff += int64(n)
	return n, err
}
