package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
)

func storeOver(t *testing.T, ffs *FaultFS) (*durable.Store, string) {
	t.Helper()
	dir := t.TempDir()
	return durable.Open(dir, durable.Options{FS: ffs}), dir
}

func save(t *testing.T, s *durable.Store, key, val string) {
	t.Helper()
	if err := saveErr(s, key, val); err != nil {
		t.Fatalf("Save(%q): %v", key, err)
	}
}

func saveErr(s *durable.Store, key, val string) error {
	return s.Save(key, func(w io.Writer) error {
		_, err := io.WriteString(w, val)
		return err
	})
}

func load(s *durable.Store, key string) (string, error) {
	var buf bytes.Buffer
	err := s.Load(key, func(r io.Reader) error {
		_, err := io.Copy(&buf, r)
		return err
	})
	return buf.String(), err
}

// TestTornWriteRollsBack: a write whose tail never hit the disk must fail
// verification on load and fall back to the previous generation.
func TestTornWriteRollsBack(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, _ := storeOver(t, ffs)
	save(t, s, "k", "the good generation")

	ffs.SetFault(FSFault{Mode: FSTornWrite, AfterBytes: 25})
	// The torn save reports success — the bytes were "written", their tail
	// just never reached the platter. That is exactly the lie a crash
	// between write and fsync tells.
	save(t, s, "k", strings.Repeat("doomed payload ", 20))
	if ffs.Stats().TornWrites == 0 {
		t.Fatal("torn-write fault never fired")
	}
	ffs.SetFault(FSFault{Mode: FSPass})

	got, err := load(s, "k")
	if err != nil {
		t.Fatalf("Load over torn newest: %v", err)
	}
	if got != "the good generation" {
		t.Fatalf("payload = %q, want rollback to last good", got)
	}
	st := s.Stats()
	if st.Rollbacks != 1 || st.Quarantined != 1 {
		t.Fatalf("store stats = %+v, want 1 rollback / 1 quarantined", st)
	}
}

// TestENOSPCIsTransient: a full disk fails the save with an error the
// failure taxonomy classifies as retryable, and leaves the stored state
// untouched.
func TestENOSPCIsTransient(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, _ := storeOver(t, ffs)
	save(t, s, "k", "v1")

	ffs.SetFault(FSFault{Mode: FSENOSPC, AfterBytes: 10})
	err := saveErr(s, "k", strings.Repeat("x", 100))
	if err == nil {
		t.Fatal("save on a full disk must fail")
	}
	if !durable.IsTransient(err) {
		t.Fatalf("ENOSPC must classify as transient, got deterministic: %v", err)
	}
	ffs.SetFault(FSFault{Mode: FSPass})

	if got, lerr := load(s, "k"); lerr != nil || got != "v1" {
		t.Fatalf("after failed save: %q, %v; want v1 intact", got, lerr)
	}
	st := s.Stats()
	if st.SaveFailures != 1 {
		t.Fatalf("store stats = %+v, want 1 save failure", st)
	}
	if g := s.Generations("k"); len(g) != 1 {
		t.Fatalf("generations = %v, want the failed generation absent", g)
	}
}

// TestBitFlipQuarantinesAndRollsBack: a latent media error surfacing on read
// fails the checksum; the store quarantines the generation and serves the
// older one.
func TestBitFlipQuarantinesAndRollsBack(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, _ := storeOver(t, ffs)
	save(t, s, "k", "older still-good generation")
	save(t, s, "k", "newest generation with a bad sector")

	// Flip one payload bit of the newest generation only.
	ffs.SetFault(FSFault{Mode: FSBitFlip, Offset: 16, Bit: 3, Match: "k.g2"})
	got, err := load(s, "k")
	if err != nil {
		t.Fatalf("Load over flipped bit: %v", err)
	}
	if got != "older still-good generation" {
		t.Fatalf("payload = %q, want rollback", got)
	}
	if ffs.Stats().BitFlips == 0 {
		t.Fatal("bit-flip fault never fired")
	}
	st := s.Stats()
	if st.Rollbacks != 1 || st.Quarantined != 1 || st.LoadFailures != 1 {
		t.Fatalf("store stats = %+v", st)
	}
}

// TestSlowSyncStallsSave pins that fsync latency is injectable (the chaos
// smoke uses it to widen crash windows).
func TestSlowSyncStallsSave(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, _ := storeOver(t, ffs)
	ffs.SetFault(FSFault{Mode: FSSlowSync, Delay: 60 * time.Millisecond})
	start := time.Now()
	save(t, s, "k", "v")
	if d := time.Since(start); d < 60*time.Millisecond {
		t.Fatalf("save took %v, want >= 60ms under slow-sync", d)
	}
	if ffs.Stats().SlowSyncs == 0 {
		t.Fatal("slow-sync fault never fired")
	}
}

// TestFaultMatchScopesFault: a Match substring confines the fault to
// matching paths.
func TestFaultMatchScopesFault(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, _ := storeOver(t, ffs)
	ffs.SetFault(FSFault{Mode: FSENOSPC, Match: "victim"})
	if err := saveErr(s, "bystander", "fine"); err != nil {
		t.Fatalf("fault leaked to non-matching path: %v", err)
	}
	if err := saveErr(s, "victim", "doomed"); err == nil {
		t.Fatal("matching path must fault")
	}
}

// TestErrNotFoundSurvivesFaultFS: a missing key still reports not-found
// through the fault layer (the checkpoint-resume path depends on it).
func TestErrNotFoundSurvivesFaultFS(t *testing.T) {
	ffs := NewFaultFS(nil)
	s, _ := storeOver(t, ffs)
	if _, err := load(s, "absent"); !errors.Is(err, durable.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}
