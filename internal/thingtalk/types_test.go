package thingtalk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseTypeRoundTrip(t *testing.T) {
	cases := []string{
		"String", "Number", "Boolean", "Date", "Time", "PathName", "URL",
		"Location", "Currency",
		"Measure(byte)", "Measure(ms)", "Measure(C)",
		"Enum(a,b,c)", "Entity(tt:username)", "Array(String)",
		"Array(Measure(byte))", "Array(Entity(com.twitter:id))",
	}
	for _, src := range cases {
		typ, err := ParseType(src)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", src, err)
		}
		if got := typ.String(); got != src {
			t.Errorf("ParseType(%q).String() = %q", src, got)
		}
		again, err := ParseType(typ.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", typ.String(), err)
		}
		if !typ.Equal(again) {
			t.Errorf("type %q not equal after round trip", src)
		}
	}
}

func TestParseTypeNormalizesUnits(t *testing.T) {
	typ, err := ParseType("Measure(KB)")
	if err != nil {
		t.Fatal(err)
	}
	if typ.String() != "Measure(byte)" {
		t.Errorf("Measure(KB) should normalize to base unit, got %s", typ)
	}
}

func TestParseTypeErrors(t *testing.T) {
	for _, src := range []string{
		"", "string", "Measure()", "Measure(parsec)", "Enum()", "Enum(,)",
		"Entity()", "Array(Nope)", "Array(String", "Foo(bar)",
	} {
		if _, err := ParseType(src); err == nil {
			t.Errorf("ParseType(%q) should fail", src)
		}
	}
}

func TestTypeEquality(t *testing.T) {
	if (StringType{}).Equal(NumberType{}) {
		t.Error("String == Number")
	}
	if !(EnumType{Values: []string{"a", "b"}}).Equal(EnumType{Values: []string{"b", "a"}}) {
		t.Error("enum equality should ignore order")
	}
	if (EnumType{Values: []string{"a"}}).Equal(EnumType{Values: []string{"a", "b"}}) {
		t.Error("enums of different size equal")
	}
	if (MeasureType{Unit: "byte"}).Equal(MeasureType{Unit: "ms"}) {
		t.Error("measures of different dimension equal")
	}
	if !(ArrayType{Elem: StringType{}}).Equal(ArrayType{Elem: StringType{}}) {
		t.Error("array equality broken")
	}
	if (EntityType{Kind: "a"}).Equal(EntityType{Kind: "b"}) {
		t.Error("entities of different kind equal")
	}
}

// genType builds a random type for the property test.
func genType(rng *rand.Rand, depth int) Type {
	choices := 10
	if depth > 0 {
		choices = 13
	}
	switch rng.Intn(choices) {
	case 0:
		return StringType{}
	case 1:
		return NumberType{}
	case 2:
		return BoolType{}
	case 3:
		return DateType{}
	case 4:
		return TimeType{}
	case 5:
		return PathNameType{}
	case 6:
		return URLType{}
	case 7:
		return LocationType{}
	case 8:
		return CurrencyType{}
	case 9:
		bases := []string{"byte", "ms", "m", "C", "kg", "mps", "bpm"}
		return MeasureType{Unit: bases[rng.Intn(len(bases))]}
	case 10:
		n := 1 + rng.Intn(4)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = genWord(rng) + "_" + string(rune('a'+i))
		}
		return EnumType{Values: vals}
	case 11:
		return EntityType{Kind: "tt:" + genWord(rng)}
	default:
		return ArrayType{Elem: genType(rng, depth-1)}
	}
}

func TestQuickTypeStringParseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		typ := genType(rng, 2)
		parsed, err := ParseType(typ.String())
		if err != nil {
			t.Logf("ParseType(%q): %v", typ.String(), err)
			return false
		}
		return parsed.Equal(typ)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnitConversions(t *testing.T) {
	cases := []struct {
		amount float64
		unit   string
		want   float64
	}{
		{1, "KB", 1000},
		{2, "h", 7200e3},
		{32, "F", 0},
		{212, "F", 100},
		{273.15, "K", 0},
		{1, "mi", 1609.344},
	}
	for _, c := range cases {
		got, ok := ConvertUnit(c.amount, c.unit)
		if !ok {
			t.Fatalf("ConvertUnit(%v, %q) not ok", c.amount, c.unit)
		}
		if diff := got - c.want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("ConvertUnit(%v, %q) = %v, want %v", c.amount, c.unit, got, c.want)
		}
	}
	if _, ok := ConvertUnit(1, "parsec"); ok {
		t.Error("unknown unit should not convert")
	}
}

func TestUnitsOf(t *testing.T) {
	units := UnitsOf("byte")
	if len(units) != 5 {
		t.Fatalf("UnitsOf(byte) = %v", units)
	}
	for i := 1; i < len(units); i++ {
		if units[i-1] >= units[i] {
			t.Errorf("UnitsOf not sorted: %v", units)
		}
	}
}

func TestIsStringLikeAndComparable(t *testing.T) {
	if !IsStringLike(PathNameType{}) || !IsStringLike(EntityType{Kind: "x"}) {
		t.Error("PathName/Entity should be string-like")
	}
	if IsStringLike(NumberType{}) {
		t.Error("Number should not be string-like")
	}
	if !IsComparable(MeasureType{Unit: "C"}) || !IsComparable(DateType{}) {
		t.Error("Measure/Date should be comparable")
	}
	if IsComparable(StringType{}) {
		t.Error("String should not be comparable")
	}
}
