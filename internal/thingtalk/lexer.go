package thingtalk

import (
	"fmt"
	"strings"
	"unicode"
)

// The lexer turns program text into the same token stream the encoder
// produces, so parsing NN output is just Tokenize + parse. Quoted strings
// are split into a `"` token, one token per word, and a closing `"`, which
// is exactly the copyable representation used in training data.

// Tokenize splits program text into canonical tokens.
func Tokenize(src string) ([]string, error) {
	var toks []string
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '"':
			// Quoted string: emit quote, inner words, quote.
			j := strings.IndexByte(src[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("thingtalk: unterminated string at offset %d", i)
			}
			inner := src[i+1 : i+1+j]
			toks = append(toks, `"`)
			toks = append(toks, strings.Fields(inner)...)
			toks = append(toks, `"`)
			i += j + 2
		case strings.IndexByte("(){},;", c) >= 0:
			toks = append(toks, string(c))
			i++
		case c == '=' || c == '>' || c == '<' || c == '!' || c == '+':
			j := i
			for j < n && strings.IndexByte("=><!+", src[j]) >= 0 {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			j := i
			for j < n && !isTokenBreak(src[j]) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("thingtalk: unexpected character %q at offset %d", c, i)
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

func isTokenBreak(c byte) bool {
	switch c {
	case ' ', '\t', '\n', '\r', '"', '{', '}', ';', ',':
		return true
	}
	// '(' and ')' break tokens unless inside a type annotation like
	// Entity(tt:username) — the tokenizer cannot see that context, so
	// identifiers are allowed to contain balanced parens. We approximate by
	// treating '(' as part of the token when the token so far looks like a
	// parameter/type annotation; the practical rule that works for the whole
	// language is: '(' and ')' break only when the current token is empty.
	return false
}

// Because '(' inside param:...:Entity(tt:username) must not break the token,
// tokenization of parentheses needs one more rule: a '(' or ')' standing
// alone (preceded by whitespace) is punctuation; attached to an identifier it
// belongs to the identifier. The implementation above achieves this because
// the punctuation case only triggers at token start.

// "=>" is the clause separator; relational operators are ==, >=, <=, >, <.
var symbolTokens = map[string]bool{
	"=>": true, "==": true, ">=": true, "<=": true, ">": true, "<": true,
	"=": true, "+": true,
}

// IsSymbolToken reports whether tok is punctuation or an operator.
func IsSymbolToken(tok string) bool {
	if symbolTokens[tok] {
		return true
	}
	switch tok {
	case "(", ")", "{", "}", ",", ";", `"`:
		return true
	}
	return false
}

// isIdentLike reports whether the token starts like an identifier, keyword
// or selector.
func isIdentLike(tok string) bool {
	if tok == "" {
		return false
	}
	r := rune(tok[0])
	return r == '@' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '.'
}
