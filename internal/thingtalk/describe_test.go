package thingtalk

import (
	"strings"
	"testing"
)

func TestDescribePrimitive(t *testing.T) {
	schemas := testSchemas()
	prog := mustParse(`now => @com.thecatapi.get => notify`)
	got := Describe(prog, schemas)
	if !strings.Contains(got, "a cat picture") || !strings.Contains(got, "notify me") {
		t.Errorf("Describe = %q", got)
	}
}

func TestDescribeCompound(t *testing.T) {
	schemas := testSchemas()
	prog := mustParse(`monitor ( @com.twitter.timeline filter param:author == " pldi " ) => @com.twitter.retweet param:tweet_id = param:tweet_id`)
	got := Describe(prog, schemas)
	for _, want := range []string{"retweet", "when", "tweets in my timeline", "author is pldi", "the tweet id"} {
		if !strings.Contains(got, want) {
			t.Errorf("Describe = %q, missing %q", got, want)
		}
	}
}

func TestDescribeTimerAndEdge(t *testing.T) {
	schemas := testSchemas()
	prog := mustParse(`timer base = date:now interval = 1 unit:h => @com.thecatapi.get => notify`)
	if got := Describe(prog, schemas); !strings.Contains(got, "every 1 h") {
		t.Errorf("Describe = %q", got)
	}
	prog2 := mustParse(`edge ( monitor ( @org.thingpedia.weather.current ) ) on param:temperature < 60 unit:F => notify`)
	got2 := Describe(prog2, schemas)
	if !strings.Contains(got2, "temperature is less than 60 F") {
		t.Errorf("Describe = %q", got2)
	}
}

func TestDescribeAggregate(t *testing.T) {
	schemas := testSchemas()
	prog := mustParse(`now => agg sum param:file_size of ( @com.dropbox.list_folder ) => notify`)
	got := Describe(prog, schemas)
	if !strings.Contains(got, "the total file size of files in my dropbox") {
		t.Errorf("Describe = %q", got)
	}
	prog2 := mustParse(`now => agg count of ( @com.dropbox.list_folder ) => notify`)
	if got := Describe(prog2, schemas); !strings.Contains(got, "the number of") {
		t.Errorf("Describe = %q", got)
	}
}

func TestDescribeWithoutSchemas(t *testing.T) {
	prog := mustParse(`now => @com.dropbox.list_folder => notify`)
	got := Describe(prog, nil)
	if !strings.Contains(got, "list folder") {
		t.Errorf("fallback description should use the function name: %q", got)
	}
}

func TestDescribeValues(t *testing.T) {
	schemas := testSchemas()
	prog := mustParse(`now => @com.dropbox.list_folder filter param:modified_time > date:start_of_week and param:is_folder == false => notify`)
	got := Describe(prog, schemas)
	if !strings.Contains(got, "start of week") || !strings.Contains(got, "is no") {
		t.Errorf("Describe = %q", got)
	}
}
