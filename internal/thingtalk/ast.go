package thingtalk

import "strings"

// Program is the single ThingTalk construct (Fig. 5):
//
//	s => q? => a;
//
// The stream clause drives evaluation as a continuous stream of events, the
// optional query clause retrieves data when events occur, and the action
// clause performs the program's effect.
type Program struct {
	Stream *Stream
	Query  *Query // optional
	Action *Action
}

// StreamKind discriminates stream forms.
type StreamKind int

// Stream kinds.
const (
	// StreamNow triggers the program once, immediately.
	StreamNow StreamKind = iota
	// StreamTimer triggers repeatedly with a fixed interval.
	StreamTimer
	// StreamAtTimer triggers at a given time of day.
	StreamAtTimer
	// StreamMonitor triggers whenever a query's result changes.
	StreamMonitor
	// StreamEdge filters an inner stream, triggering when a predicate
	// transitions from false to true.
	StreamEdge
)

// Stream is the event source of a program.
type Stream struct {
	Kind StreamKind

	// Timer fields.
	Base     Value
	Interval Value
	// AtTimer field.
	Time Value
	// Monitor fields. MonitorOn optionally restricts change detection to
	// specific output parameters ("monitor q on new file_name").
	Monitor   *Query
	MonitorOn []string
	// Edge fields.
	Inner     *Stream
	Predicate *Predicate
}

// QueryKind discriminates query forms.
type QueryKind int

// Query kinds.
const (
	// QueryInvocation is a direct call of a query function.
	QueryInvocation QueryKind = iota
	// QueryFilter restricts a query's results with a boolean predicate.
	QueryFilter
	// QueryJoin is the cross product of two queries, optionally with
	// parameter passing.
	QueryJoin
	// QueryAggregate computes min/max/sum/avg/count over a query's results
	// (the TT+A extension of Section 6.3).
	QueryAggregate
)

// Query retrieves data and has no side effects.
type Query struct {
	Kind QueryKind

	// Invocation for QueryInvocation.
	Invocation *Invocation
	// Inner for QueryFilter and QueryAggregate; Inner and Right for
	// QueryJoin.
	Inner *Query
	Right *Query
	// Predicate for QueryFilter.
	Predicate *Predicate
	// JoinParams for QueryJoin: in-parameter-of-Right = out-parameter-of-
	// Inner assignments.
	JoinParams []InputParam
	// AggOp (max, min, sum, avg, count) and AggParam for QueryAggregate.
	// AggParam is empty for count.
	AggOp    string
	AggParam string
}

// AggregateOps are the operators of the TT+A extension.
var AggregateOps = []string{"max", "min", "sum", "avg", "count"}

// Action performs the program's effect: either the builtin notify, which
// presents results to the user, or an action function with side effects.
type Action struct {
	Notify     bool
	Invocation *Invocation
}

// Invocation is a call of a library function with keyword input parameters.
type Invocation struct {
	Class    string // e.g. com.dropbox
	Function string // e.g. list_folder
	In       []InputParam
}

// InputParam is a keyword argument: a constant value or a parameter-passing
// reference (VVarRef) to an output of an earlier function.
type InputParam struct {
	Name  string
	Value Value
	// Type is the declared parameter type, filled in by the typechecker.
	// When present, token encoding annotates the parameter with it
	// (Section 2.3: "we annotate each parameter with its type").
	Type Type
}

// Selector returns the @class.function spelling of the invocation.
func (inv *Invocation) Selector() string {
	return "@" + inv.Class + "." + inv.Function
}

// PredKind discriminates predicate forms.
type PredKind int

// Predicate kinds.
const (
	// PredTrue is the constant true.
	PredTrue PredKind = iota
	// PredFalse is the constant false.
	PredFalse
	// PredNot negates a predicate.
	PredNot
	// PredAnd is an n-ary conjunction.
	PredAnd
	// PredOr is an n-ary disjunction.
	PredOr
	// PredAtom compares an output parameter with a value.
	PredAtom
	// PredExternal is a predicated query function invocation:
	// f [ip = v]* { p }.
	PredExternal
)

// Predicate is a boolean expression over output parameters (Fig. 5).
type Predicate struct {
	Kind     PredKind
	Children []*Predicate // Not (1 child), And/Or (n children)

	// Atom fields. ParamType is filled in by the typechecker.
	Param     string
	Op        string
	Value     Value
	ParamType Type

	// External fields.
	External  *Invocation
	InnerPred *Predicate
}

// Comparison and containment operators.
const (
	OpEq         = "=="
	OpGt         = ">"
	OpLt         = "<"
	OpGe         = ">="
	OpLe         = "<="
	OpContains   = "contains"    // array containment
	OpSubstr     = "substr"      // string containment
	OpStartsWith = "starts_with" //
	OpEndsWith   = "ends_with"   //
)

// Operators lists every predicate operator in canonical order.
var Operators = []string{OpEq, OpGt, OpLt, OpGe, OpLe, OpContains, OpSubstr, OpStartsWith, OpEndsWith}

// IsOperator reports whether s is a predicate operator.
func IsOperator(s string) bool { return containsString(Operators, s) }

// negatedOp returns the complementary operator if one exists, so that
// canonicalization can eliminate negations around order comparisons.
func negatedOp(op string) (string, bool) {
	switch op {
	case OpGt:
		return OpLe, true
	case OpLt:
		return OpGe, true
	case OpGe:
		return OpLt, true
	case OpLe:
		return OpGt, true
	}
	return "", false
}

// --- Constructors -----------------------------------------------------------

// Now returns the degenerate stream that triggers once immediately.
func Now() *Stream { return &Stream{Kind: StreamNow} }

// Monitor returns a stream that watches q for changes.
func Monitor(q *Query, onNew ...string) *Stream {
	return &Stream{Kind: StreamMonitor, Monitor: q, MonitorOn: onNew}
}

// Timer returns a repeating timer stream.
func Timer(base, interval Value) *Stream {
	return &Stream{Kind: StreamTimer, Base: base, Interval: interval}
}

// AtTimer returns a time-of-day timer stream.
func AtTimer(t Value) *Stream { return &Stream{Kind: StreamAtTimer, Time: t} }

// Edge wraps a stream with an edge filter.
func Edge(inner *Stream, p *Predicate) *Stream {
	return &Stream{Kind: StreamEdge, Inner: inner, Predicate: p}
}

// Invoke returns a query wrapping a function invocation.
func Invoke(class, fn string, in ...InputParam) *Query {
	return &Query{Kind: QueryInvocation, Invocation: &Invocation{Class: class, Function: fn, In: in}}
}

// Filter wraps a query with a predicate.
func Filter(q *Query, p *Predicate) *Query {
	return &Query{Kind: QueryFilter, Inner: q, Predicate: p}
}

// Join combines two queries, optionally with parameter passing.
func Join(left, right *Query, on ...InputParam) *Query {
	return &Query{Kind: QueryJoin, Inner: left, Right: right, JoinParams: on}
}

// Aggregate wraps a query with a TT+A aggregation.
func Aggregate(op, param string, q *Query) *Query {
	return &Query{Kind: QueryAggregate, AggOp: op, AggParam: param, Inner: q}
}

// Notify returns the builtin notify action.
func Notify() *Action { return &Action{Notify: true} }

// Do returns an action invoking a library function.
func Do(class, fn string, in ...InputParam) *Action {
	return &Action{Invocation: &Invocation{Class: class, Function: fn, In: in}}
}

// Atom returns an atomic comparison predicate.
func Atom(param, op string, v Value) *Predicate {
	return &Predicate{Kind: PredAtom, Param: param, Op: op, Value: v}
}

// And returns an n-ary conjunction.
func And(ps ...*Predicate) *Predicate { return &Predicate{Kind: PredAnd, Children: ps} }

// Or returns an n-ary disjunction.
func Or(ps ...*Predicate) *Predicate { return &Predicate{Kind: PredOr, Children: ps} }

// Not negates a predicate.
func Not(p *Predicate) *Predicate { return &Predicate{Kind: PredNot, Children: []*Predicate{p}} }

// True returns the constant true predicate.
func True() *Predicate { return &Predicate{Kind: PredTrue} }

// False returns the constant false predicate.
func False() *Predicate { return &Predicate{Kind: PredFalse} }

// In builds an InputParam.
func In(name string, v Value) InputParam { return InputParam{Name: name, Value: v} }

// --- Deep copies ------------------------------------------------------------
//
// Synthesis reuses derivation fragments across many programs; every composer
// clones before mutating.

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	if p == nil {
		return nil
	}
	return &Program{Stream: p.Stream.Clone(), Query: p.Query.Clone(), Action: p.Action.Clone()}
}

// Clone returns a deep copy of the stream.
func (s *Stream) Clone() *Stream {
	if s == nil {
		return nil
	}
	c := *s
	c.Monitor = s.Monitor.Clone()
	c.Inner = s.Inner.Clone()
	c.Predicate = s.Predicate.Clone()
	c.MonitorOn = append([]string(nil), s.MonitorOn...)
	return &c
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	if q == nil {
		return nil
	}
	c := *q
	c.Invocation = q.Invocation.Clone()
	c.Inner = q.Inner.Clone()
	c.Right = q.Right.Clone()
	c.Predicate = q.Predicate.Clone()
	c.JoinParams = cloneInputParams(q.JoinParams)
	return &c
}

// Clone returns a deep copy of the action.
func (a *Action) Clone() *Action {
	if a == nil {
		return nil
	}
	return &Action{Notify: a.Notify, Invocation: a.Invocation.Clone()}
}

// Clone returns a deep copy of the invocation.
func (inv *Invocation) Clone() *Invocation {
	if inv == nil {
		return nil
	}
	return &Invocation{Class: inv.Class, Function: inv.Function, In: cloneInputParams(inv.In)}
}

// Clone returns a deep copy of the predicate.
func (p *Predicate) Clone() *Predicate {
	if p == nil {
		return nil
	}
	c := *p
	if p.Children != nil {
		c.Children = make([]*Predicate, len(p.Children))
		for i, ch := range p.Children {
			c.Children[i] = ch.Clone()
		}
	}
	c.External = p.External.Clone()
	c.InnerPred = p.InnerPred.Clone()
	c.Value = cloneValue(p.Value)
	return &c
}

func cloneInputParams(in []InputParam) []InputParam {
	if in == nil {
		return nil
	}
	out := make([]InputParam, len(in))
	for i, ip := range in {
		out[i] = InputParam{Name: ip.Name, Value: cloneValue(ip.Value), Type: ip.Type}
	}
	return out
}

func cloneValue(v Value) Value {
	c := v
	c.Words = append([]string(nil), v.Words...)
	c.Measures = append([]MeasureTerm(nil), v.Measures...)
	return c
}

// --- Traversal --------------------------------------------------------------

// Invocations returns every function invocation in the program, left to
// right: stream first, then query, then action. Invocations inside external
// predicates are included after their host.
func (p *Program) Invocations() []*Invocation {
	var out []*Invocation
	if p.Stream != nil {
		out = append(out, p.Stream.invocations()...)
	}
	if p.Query != nil {
		out = append(out, p.Query.invocations()...)
	}
	if p.Action != nil && p.Action.Invocation != nil {
		out = append(out, p.Action.Invocation)
	}
	return out
}

func (s *Stream) invocations() []*Invocation {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case StreamMonitor:
		return s.Monitor.invocations()
	case StreamEdge:
		out := s.Inner.invocations()
		out = append(out, s.Predicate.invocations()...)
		return out
	}
	return nil
}

func (q *Query) invocations() []*Invocation {
	if q == nil {
		return nil
	}
	switch q.Kind {
	case QueryInvocation:
		return []*Invocation{q.Invocation}
	case QueryFilter:
		out := q.Inner.invocations()
		out = append(out, q.Predicate.invocations()...)
		return out
	case QueryJoin:
		out := q.Inner.invocations()
		return append(out, q.Right.invocations()...)
	case QueryAggregate:
		return q.Inner.invocations()
	}
	return nil
}

func (p *Predicate) invocations() []*Invocation {
	if p == nil {
		return nil
	}
	var out []*Invocation
	switch p.Kind {
	case PredNot, PredAnd, PredOr:
		for _, ch := range p.Children {
			out = append(out, ch.invocations()...)
		}
	case PredExternal:
		out = append(out, p.External)
		out = append(out, p.InnerPred.invocations()...)
	}
	return out
}

// Functions returns the distinct @class.function selectors used by the
// program, in order of first use.
func (p *Program) Functions() []string {
	seen := map[string]bool{}
	var out []string
	for _, inv := range p.Invocations() {
		sel := inv.Selector()
		if !seen[sel] {
			seen[sel] = true
			out = append(out, sel)
		}
	}
	return out
}

// Skills returns the distinct class names used by the program, in order of
// first use.
func (p *Program) Skills() []string {
	seen := map[string]bool{}
	var out []string
	for _, inv := range p.Invocations() {
		if !seen[inv.Class] {
			seen[inv.Class] = true
			out = append(out, inv.Class)
		}
	}
	return out
}

// IsCompound reports whether the program uses two or more functions
// (Section 5.2's primitive/compound split counts functions, not clauses).
func (p *Program) IsCompound() bool { return len(p.Invocations()) >= 2 }

// HasFilter reports whether the program contains any filter or edge
// predicate.
func (p *Program) HasFilter() bool {
	if p.Stream != nil && p.Stream.hasFilter() {
		return true
	}
	return p.Query.hasFilter()
}

func (s *Stream) hasFilter() bool {
	if s == nil {
		return false
	}
	switch s.Kind {
	case StreamEdge:
		return true
	case StreamMonitor:
		return s.Monitor.hasFilter()
	}
	return false
}

func (q *Query) hasFilter() bool {
	if q == nil {
		return false
	}
	switch q.Kind {
	case QueryFilter:
		return true
	case QueryJoin:
		return q.Inner.hasFilter() || q.Right.hasFilter()
	case QueryAggregate:
		return q.Inner.hasFilter()
	}
	return false
}

// HasParamPassing reports whether any input parameter is a VVarRef.
func (p *Program) HasParamPassing() bool {
	for _, inv := range p.Invocations() {
		for _, ip := range inv.In {
			if ip.Value.Kind == VVarRef {
				return true
			}
		}
	}
	if p.Query != nil && p.Query.hasJoinPassing() {
		return true
	}
	return false
}

func (q *Query) hasJoinPassing() bool {
	if q == nil {
		return false
	}
	switch q.Kind {
	case QueryJoin:
		if len(q.JoinParams) > 0 {
			return true
		}
		return q.Inner.hasJoinPassing() || q.Right.hasJoinPassing()
	case QueryFilter, QueryAggregate:
		return q.Inner.hasJoinPassing()
	}
	return false
}

// String renders the program in canonical surface syntax.
func (p *Program) String() string { return strings.Join(p.Tokens(), " ") }
