package thingtalk

import "fmt"

// Function signatures (Fig. 3). The skill library (package thingpedia)
// provides these; the typechecker, the positional encoder, and the runtime
// consume them through the SchemaSource interface.

// ParamDir is the direction of a declared parameter.
type ParamDir int

// Parameter directions.
const (
	// DirInReq is a required input.
	DirInReq ParamDir = iota
	// DirInOpt is an optional input.
	DirInOpt
	// DirOut is an output.
	DirOut
)

func (d ParamDir) String() string {
	switch d {
	case DirInReq:
		return "in req"
	case DirInOpt:
		return "in opt"
	case DirOut:
		return "out"
	}
	return "invalid"
}

// FunctionKind distinguishes queries from actions. The original ThingTalk
// had a third kind (triggers); the revised language collapses triggers and
// retrievals into monitorable queries (Section 2.2).
type FunctionKind int

// Function kinds.
const (
	// KindQuery retrieves data and has no side effects.
	KindQuery FunctionKind = iota
	// KindAction has side effects and returns no data.
	KindAction
)

func (k FunctionKind) String() string {
	if k == KindAction {
		return "action"
	}
	return "query"
}

// ParamSpec declares one parameter of a function.
type ParamSpec struct {
	Name string
	Type Type
	Dir  ParamDir
}

// FunctionSchema is the complete signature of a library function.
type FunctionSchema struct {
	Class     string
	Name      string
	Kind      FunctionKind
	Monitor   bool // monitorable query
	List      bool // returns a list of results
	Params    []ParamSpec
	Canonical string // short natural-language name, e.g. "list folder"
}

// Selector returns the @class.function spelling.
func (f *FunctionSchema) Selector() string { return "@" + f.Class + "." + f.Name }

// Param returns the declared parameter named name.
func (f *FunctionSchema) Param(name string) (ParamSpec, bool) {
	for _, p := range f.Params {
		if p.Name == name {
			return p, true
		}
	}
	return ParamSpec{}, false
}

// InParams returns the declared input parameters in declaration order.
func (f *FunctionSchema) InParams() []ParamSpec {
	var out []ParamSpec
	for _, p := range f.Params {
		if p.Dir != DirOut {
			out = append(out, p)
		}
	}
	return out
}

// OutParams returns the declared output parameters in declaration order.
func (f *FunctionSchema) OutParams() []ParamSpec {
	var out []ParamSpec
	for _, p := range f.Params {
		if p.Dir == DirOut {
			out = append(out, p)
		}
	}
	return out
}

// SchemaSource resolves function signatures. The zero SchemaMap is usable.
type SchemaSource interface {
	// Schema returns the signature of @class.function.
	Schema(class, function string) (*FunctionSchema, bool)
}

// SchemaMap is an in-memory SchemaSource keyed by selector.
type SchemaMap map[string]*FunctionSchema

// Schema implements SchemaSource.
func (m SchemaMap) Schema(class, function string) (*FunctionSchema, bool) {
	f, ok := m["@"+class+"."+function]
	return f, ok
}

// Add registers a schema, replacing any previous entry.
func (m SchemaMap) Add(f *FunctionSchema) { m[f.Selector()] = f }

// Validate checks internal consistency of a schema: actions must not declare
// outputs, queries must declare at least one output, and parameter names
// must be unique.
func (f *FunctionSchema) Validate() error {
	seen := map[string]bool{}
	outs := 0
	for _, p := range f.Params {
		if seen[p.Name] {
			return fmt.Errorf("thingtalk: %s: duplicate parameter %q", f.Selector(), p.Name)
		}
		seen[p.Name] = true
		if p.Type == nil {
			return fmt.Errorf("thingtalk: %s: parameter %q has no type", f.Selector(), p.Name)
		}
		if p.Dir == DirOut {
			outs++
		}
	}
	if f.Kind == KindAction {
		if outs > 0 {
			return fmt.Errorf("thingtalk: %s: action declares output parameters", f.Selector())
		}
		if f.Monitor || f.List {
			return fmt.Errorf("thingtalk: %s: action cannot be monitorable or list", f.Selector())
		}
		return nil
	}
	if outs == 0 {
		return fmt.Errorf("thingtalk: %s: query declares no output parameters", f.Selector())
	}
	return nil
}
