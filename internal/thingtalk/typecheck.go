package thingtalk

import (
	"fmt"
)

// Typecheck verifies a program against a skill library and annotates the AST
// with resolved parameter types (used by the annotated token encoding).
//
// The checks implement Section 2 of the paper:
//   - every invoked function exists with the right kind for its position
//     (queries in stream/query clauses, actions in the action clause);
//   - monitored queries are monitorable;
//   - required inputs are present, unknown or duplicated parameters are
//     rejected, and every value is compatible with the declared type;
//   - parameter passing references resolve to an output parameter of an
//     earlier function with a compatible type (right-most instance wins);
//   - filter atoms name output parameters of the filtered query and use an
//     operator legal for the parameter's type;
//   - aggregations apply numeric operators to numeric parameters and count
//     to list queries.
func Typecheck(p *Program, schemas SchemaSource) error {
	tc := &typechecker{schemas: schemas}
	return tc.program(p)
}

type typechecker struct {
	schemas SchemaSource
}

// TypecheckQuery typechecks a stand-alone query fragment (as produced by a
// primitive template) and returns its output environment as a name→type map.
func TypecheckQuery(q *Query, schemas SchemaSource) (map[string]Type, error) {
	tc := &typechecker{schemas: schemas}
	env, err := tc.query(q, outEnv{}, nil)
	return env, err
}

// TypecheckStream typechecks a stand-alone stream fragment.
func TypecheckStream(s *Stream, schemas SchemaSource) (map[string]Type, error) {
	tc := &typechecker{schemas: schemas}
	env, err := tc.stream(s)
	return env, err
}

// TypecheckAction typechecks a stand-alone action fragment; env lists the
// output parameters available for parameter passing (nil for none).
func TypecheckAction(a *Action, schemas SchemaSource, env map[string]Type) error {
	tc := &typechecker{schemas: schemas}
	return tc.action(a, outEnv(env))
}

// outEnv maps output parameter names to their types; later (right-most)
// definitions shadow earlier ones.
type outEnv map[string]Type

func (env outEnv) extend(other outEnv) outEnv {
	merged := make(outEnv, len(env)+len(other))
	for k, v := range env {
		merged[k] = v
	}
	for k, v := range other {
		merged[k] = v
	}
	return merged
}

func (tc *typechecker) program(p *Program) error {
	if p.Stream == nil {
		return fmt.Errorf("thingtalk: program has no stream clause")
	}
	if p.Action == nil {
		return fmt.Errorf("thingtalk: program has no action clause")
	}
	streamEnv, err := tc.stream(p.Stream)
	if err != nil {
		return err
	}
	env := streamEnv
	if p.Query != nil {
		queryEnv, err := tc.query(p.Query, streamEnv, nil)
		if err != nil {
			return err
		}
		env = env.extend(queryEnv)
	}
	return tc.action(p.Action, env)
}

func (tc *typechecker) stream(s *Stream) (outEnv, error) {
	switch s.Kind {
	case StreamNow:
		return outEnv{}, nil
	case StreamTimer:
		if err := tc.valueOfType(s.Base, DateType{}, "timer base"); err != nil {
			return nil, err
		}
		if err := tc.valueOfType(s.Interval, MeasureType{Unit: "ms"}, "timer interval"); err != nil {
			return nil, err
		}
		return outEnv{}, nil
	case StreamAtTimer:
		if err := tc.valueOfType(s.Time, TimeType{}, "attimer time"); err != nil {
			return nil, err
		}
		return outEnv{}, nil
	case StreamMonitor:
		env, err := tc.query(s.Monitor, outEnv{}, nil)
		if err != nil {
			return nil, err
		}
		if err := tc.requireMonitorable(s.Monitor); err != nil {
			return nil, err
		}
		for _, name := range s.MonitorOn {
			if _, ok := env[name]; !ok {
				return nil, fmt.Errorf("thingtalk: monitor on new %q: no such output parameter", name)
			}
		}
		return env, nil
	case StreamEdge:
		env, err := tc.stream(s.Inner)
		if err != nil {
			return nil, err
		}
		if s.Inner.Kind != StreamMonitor && s.Inner.Kind != StreamEdge {
			return nil, fmt.Errorf("thingtalk: edge filter requires a monitored stream")
		}
		if err := tc.predicate(s.Predicate, env); err != nil {
			return nil, err
		}
		return env, nil
	}
	return nil, fmt.Errorf("thingtalk: invalid stream kind %d", s.Kind)
}

func (tc *typechecker) requireMonitorable(q *Query) error {
	for _, inv := range q.invocations() {
		sch, ok := tc.schemas.Schema(inv.Class, inv.Function)
		if !ok {
			return fmt.Errorf("thingtalk: unknown function %s", inv.Selector())
		}
		if sch.Kind == KindQuery && !sch.Monitor {
			return fmt.Errorf("thingtalk: %s is not monitorable", inv.Selector())
		}
	}
	return nil
}

// query typechecks q given the outputs visible from the stream, and returns
// q's own output environment. provided names parameters of q's right-most
// invocation that are supplied externally by an enclosing join's "on" clause
// (they count toward required-parameter checking).
func (tc *typechecker) query(q *Query, incoming outEnv, provided map[string]bool) (outEnv, error) {
	switch q.Kind {
	case QueryInvocation:
		sch, err := tc.invocationProvided(q.Invocation, KindQuery, incoming, provided)
		if err != nil {
			return nil, err
		}
		env := outEnv{}
		for _, ps := range sch.OutParams() {
			env[ps.Name] = ps.Type
		}
		return env, nil
	case QueryFilter:
		env, err := tc.query(q.Inner, incoming, provided)
		if err != nil {
			return nil, err
		}
		if err := tc.predicate(q.Predicate, env); err != nil {
			return nil, err
		}
		return env, nil
	case QueryJoin:
		left, err := tc.query(q.Inner, incoming, nil)
		if err != nil {
			return nil, err
		}
		// The right operand sees the left's outputs (plus the stream's) for
		// parameter passing; the join's "on" assignments satisfy required
		// inputs of the right-most function.
		rightIncoming := incoming.extend(left)
		rightProvided := map[string]bool{}
		for name := range provided {
			rightProvided[name] = true
		}
		for _, ip := range q.JoinParams {
			rightProvided[ip.Name] = true
		}
		right, err := tc.query(q.Right, rightIncoming, rightProvided)
		if err != nil {
			return nil, err
		}
		for i := range q.JoinParams {
			ip := &q.JoinParams[i]
			sch, ok := tc.rightmostSchema(q.Right)
			if !ok {
				return nil, fmt.Errorf("thingtalk: join target function not found")
			}
			ps, ok := sch.Param(ip.Name)
			if !ok || ps.Dir == DirOut {
				return nil, fmt.Errorf("thingtalk: join on: %s has no input parameter %q", sch.Selector(), ip.Name)
			}
			if ip.Value.Kind != VVarRef {
				return nil, fmt.Errorf("thingtalk: join on %q: value must be a parameter reference", ip.Name)
			}
			srcType, ok := rightIncoming[ip.Value.Name]
			if !ok {
				return nil, fmt.Errorf("thingtalk: join on %q: no output parameter %q in scope", ip.Name, ip.Value.Name)
			}
			if !assignable(srcType, ps.Type) {
				return nil, fmt.Errorf("thingtalk: join on %q: cannot pass %s to %s", ip.Name, srcType, ps.Type)
			}
			ip.Type = ps.Type
		}
		return left.extend(right), nil
	case QueryAggregate:
		env, err := tc.query(q.Inner, incoming, provided)
		if err != nil {
			return nil, err
		}
		if !containsString(AggregateOps, q.AggOp) {
			return nil, fmt.Errorf("thingtalk: unknown aggregation %q", q.AggOp)
		}
		if q.AggOp == "count" {
			if q.AggParam != "" {
				return nil, fmt.Errorf("thingtalk: count takes no parameter")
			}
			if !tc.isListQuery(q.Inner) {
				return nil, fmt.Errorf("thingtalk: count requires a list query")
			}
			return outEnv{"count": NumberType{}}, nil
		}
		t, ok := env[q.AggParam]
		if !ok {
			return nil, fmt.Errorf("thingtalk: aggregation over unknown parameter %q", q.AggParam)
		}
		if !isNumericType(t) {
			return nil, fmt.Errorf("thingtalk: aggregation %s over non-numeric parameter %q (%s)", q.AggOp, q.AggParam, t)
		}
		if !tc.isListQuery(q.Inner) {
			return nil, fmt.Errorf("thingtalk: aggregation requires a list query")
		}
		return outEnv{q.AggParam: t}, nil
	}
	return nil, fmt.Errorf("thingtalk: invalid query kind %d", q.Kind)
}

// rightmostSchema returns the schema of the right-most invocation of q (the
// function that receives join parameter passing).
func (tc *typechecker) rightmostSchema(q *Query) (*FunctionSchema, bool) {
	invs := q.invocations()
	if len(invs) == 0 {
		return nil, false
	}
	last := invs[len(invs)-1]
	return tc.schemas.Schema(last.Class, last.Function)
}

func (tc *typechecker) isListQuery(q *Query) bool {
	for _, inv := range q.invocations() {
		sch, ok := tc.schemas.Schema(inv.Class, inv.Function)
		if ok && sch.Kind == KindQuery && sch.List {
			return true
		}
	}
	return false
}

func (tc *typechecker) action(a *Action, env outEnv) error {
	if a.Notify {
		if a.Invocation != nil {
			return fmt.Errorf("thingtalk: notify action with invocation")
		}
		return nil
	}
	if a.Invocation == nil {
		return fmt.Errorf("thingtalk: action has no invocation")
	}
	_, err := tc.invocation(a.Invocation, KindAction, env)
	return err
}

// invocation typechecks one function call. env provides the output
// parameters available for parameter passing.
func (tc *typechecker) invocation(inv *Invocation, want FunctionKind, env outEnv) (*FunctionSchema, error) {
	return tc.invocationProvided(inv, want, env, nil)
}

// invocationProvided is invocation with a set of parameter names supplied
// externally (by a join's "on" clause), which count as present for the
// required-parameter check.
func (tc *typechecker) invocationProvided(inv *Invocation, want FunctionKind, env outEnv, provided map[string]bool) (*FunctionSchema, error) {
	sch, ok := tc.schemas.Schema(inv.Class, inv.Function)
	if !ok {
		return nil, fmt.Errorf("thingtalk: unknown function %s", inv.Selector())
	}
	if sch.Kind != want {
		return nil, fmt.Errorf("thingtalk: %s is a %s, used as a %s", inv.Selector(), sch.Kind, want)
	}
	seen := map[string]bool{}
	for i := range inv.In {
		ip := &inv.In[i]
		if seen[ip.Name] {
			return nil, fmt.Errorf("thingtalk: %s: duplicate input parameter %q", inv.Selector(), ip.Name)
		}
		seen[ip.Name] = true
		ps, ok := sch.Param(ip.Name)
		if !ok {
			return nil, fmt.Errorf("thingtalk: %s has no parameter %q", inv.Selector(), ip.Name)
		}
		if ps.Dir == DirOut {
			return nil, fmt.Errorf("thingtalk: %s: cannot assign output parameter %q", inv.Selector(), ip.Name)
		}
		if ip.Value.Kind == VVarRef {
			srcType, ok := env[ip.Value.Name]
			if !ok {
				return nil, fmt.Errorf("thingtalk: %s: no output parameter %q in scope", inv.Selector(), ip.Value.Name)
			}
			if !assignable(srcType, ps.Type) {
				return nil, fmt.Errorf("thingtalk: %s: cannot pass %s (%s) to %q (%s)",
					inv.Selector(), ip.Value.Name, srcType, ip.Name, ps.Type)
			}
		} else if err := tc.valueOfType(ip.Value, ps.Type, inv.Selector()+"."+ip.Name); err != nil {
			return nil, err
		}
		ip.Type = ps.Type
	}
	for _, ps := range sch.Params {
		if ps.Dir == DirInReq && !seen[ps.Name] && !provided[ps.Name] {
			return nil, fmt.Errorf("thingtalk: %s: missing required parameter %q", inv.Selector(), ps.Name)
		}
	}
	return sch, nil
}

// predicate typechecks a boolean expression whose atoms reference output
// parameters from env.
func (tc *typechecker) predicate(p *Predicate, env outEnv) error {
	switch p.Kind {
	case PredTrue, PredFalse:
		return nil
	case PredNot:
		return tc.predicate(p.Children[0], env)
	case PredAnd, PredOr:
		if len(p.Children) < 2 {
			return fmt.Errorf("thingtalk: %d-ary boolean connective", len(p.Children))
		}
		for _, ch := range p.Children {
			if err := tc.predicate(ch, env); err != nil {
				return err
			}
		}
		return nil
	case PredAtom:
		t, ok := env[p.Param]
		if !ok {
			return fmt.Errorf("thingtalk: filter on unknown parameter %q", p.Param)
		}
		if err := checkOperator(p.Op, t, p.Value); err != nil {
			return fmt.Errorf("thingtalk: filter %s: %w", p.Param, err)
		}
		p.ParamType = t
		return nil
	case PredExternal:
		sch, err := tc.invocation(p.External, KindQuery, env)
		if err != nil {
			return err
		}
		innerEnv := outEnv{}
		for _, ps := range sch.OutParams() {
			innerEnv[ps.Name] = ps.Type
		}
		return tc.predicate(p.InnerPred, innerEnv)
	}
	return fmt.Errorf("thingtalk: invalid predicate kind %d", p.Kind)
}

// checkOperator verifies op applies to a parameter of type t compared with v.
func checkOperator(op string, t Type, v Value) error {
	switch op {
	case OpEq:
		if !valueCompatible(v, t) {
			return fmt.Errorf("value %s is not a %s", v, t)
		}
		return nil
	case OpGt, OpLt, OpGe, OpLe:
		if !IsComparable(t) {
			return fmt.Errorf("type %s does not support %s", t, op)
		}
		if !valueCompatible(v, t) {
			return fmt.Errorf("value %s is not a %s", v, t)
		}
		return nil
	case OpContains:
		at, ok := t.(ArrayType)
		if !ok {
			return fmt.Errorf("contains requires an array parameter, got %s", t)
		}
		if !valueCompatible(v, at.Elem) {
			return fmt.Errorf("value %s is not a %s", v, at.Elem)
		}
		return nil
	case OpSubstr, OpStartsWith, OpEndsWith:
		if !IsStringLike(t) {
			return fmt.Errorf("%s requires a string-like parameter, got %s", op, t)
		}
		if v.Kind != VString && v.Kind != VSlot {
			return fmt.Errorf("%s requires a string value", op)
		}
		return nil
	}
	return fmt.Errorf("unknown operator %q", op)
}

func (tc *typechecker) valueOfType(v Value, t Type, context string) error {
	if !valueCompatible(v, t) {
		return fmt.Errorf("thingtalk: %s: value %s is not a %s", context, v, t)
	}
	return nil
}

// assignable reports whether an output of type src may be passed to an input
// of type dst.
func assignable(src, dst Type) bool {
	if src.Equal(dst) {
		return true
	}
	// String-like outputs can flow into String inputs (e.g. a tweet's text
	// into a message body) and vice versa for free-form inputs.
	if IsStringLike(src) && IsStringLike(dst) {
		return true
	}
	if _, ok := src.(StringType); ok {
		return IsStringLike(dst)
	}
	if _, ok := dst.(StringType); ok {
		return IsStringLike(src)
	}
	return false
}

// valueCompatible reports whether constant v may inhabit declared type t.
func valueCompatible(v Value, t Type) bool {
	if v.Kind == VSlot {
		if v.SlotType == nil {
			return false
		}
		return v.SlotType.Equal(t) || (IsStringLike(t) && IsStringLike(v.SlotType))
	}
	switch t := t.(type) {
	case StringType, PathNameType, URLType, EntityType:
		return v.Kind == VString
	case NumberType:
		return v.Kind == VNumber || isPlaceholderOf(v, "NUMBER")
	case BoolType:
		return v.Kind == VBool
	case DateType:
		return v.Kind == VDate || isPlaceholderOf(v, "DATE")
	case TimeType:
		return v.Kind == VTime || isPlaceholderOf(v, "TIME")
	case LocationType:
		return v.Kind == VLocation || isPlaceholderOf(v, "LOCATION")
	case CurrencyType:
		if isPlaceholderOf(v, "CURRENCY") {
			return true
		}
		return v.Kind == VMeasure && len(v.Measures) > 0 && BaseUnit(v.Measures[0].Unit) == "usd"
	case MeasureType:
		if v.Kind != VMeasure || len(v.Measures) == 0 {
			if t.Unit == "ms" && isPlaceholderOf(v, "DURATION") {
				return true
			}
			return false
		}
		for _, m := range v.Measures {
			if BaseUnit(m.Unit) != t.Unit {
				return false
			}
		}
		return true
	case EnumType:
		return v.Kind == VEnum && t.HasEnumValue(v.Name)
	case ArrayType:
		// Array constants are not part of the constant language; arrays are
		// only produced by functions.
		return false
	}
	return false
}

func isPlaceholderOf(v Value, prefix string) bool {
	if v.Kind != VPlaceholder {
		return false
	}
	if _, ok := PlaceholderKind(v.Name); !ok {
		return false
	}
	return len(v.Name) > len(prefix) && v.Name[:len(prefix)] == prefix
}

func isNumericType(t Type) bool {
	switch t.(type) {
	case NumberType, MeasureType, CurrencyType:
		return true
	}
	return false
}
