package thingtalk

import (
	"fmt"
	"strconv"
	"strings"
)

// Recursive-descent parser for the canonical token stream. Because the
// encoder and the lexer agree on the token format, the parser accepts both
// human-written program text and raw neural-network output.

// ParseOptions control parsing.
type ParseOptions struct {
	// Schemas enables positional-parameter syntax (the Table 3 ablation)
	// and is required to map positions back to names.
	Schemas SchemaSource
}

// ParseProgram parses program text in canonical surface syntax.
func ParseProgram(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	return ParseTokens(toks, ParseOptions{})
}

// ParseTokens parses a canonical token sequence into a Program.
func ParseTokens(toks []string, opt ParseOptions) (*Program, error) {
	p := NewParser(toks, opt)
	prog, err := p.Program()
	if err != nil {
		return nil, err
	}
	if !p.AtEnd() {
		return nil, fmt.Errorf("thingtalk: trailing tokens after program: %q", strings.Join(p.rest(), " "))
	}
	return prog, nil
}

// Parser is a cursor over a token sequence. It is exported so that language
// extensions (such as the TACL policy language) can reuse the ThingTalk
// sub-grammars.
type Parser struct {
	toks []string
	pos  int
	opt  ParseOptions
}

// NewParser returns a parser over toks.
func NewParser(toks []string, opt ParseOptions) *Parser {
	return &Parser{toks: toks, opt: opt}
}

// AtEnd reports whether all tokens have been consumed (a trailing ";" is
// ignored).
func (p *Parser) AtEnd() bool {
	for p.pos < len(p.toks) && p.toks[p.pos] == ";" {
		p.pos++
	}
	return p.pos >= len(p.toks)
}

func (p *Parser) rest() []string { return p.toks[p.pos:] }

// Peek returns the token at offset n from the cursor without consuming it,
// or "" past the end.
func (p *Parser) Peek(n int) string {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return ""
}

func (p *Parser) next() string {
	t := p.Peek(0)
	if t != "" {
		p.pos++
	}
	return t
}

// Expect consumes the next token, failing unless it equals want.
func (p *Parser) Expect(want string) error {
	got := p.next()
	if got != want {
		return fmt.Errorf("thingtalk: expected %q, got %q at token %d", want, got, p.pos-1)
	}
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("thingtalk: "+format+" (at token %d)", append(args, p.pos)...)
}

// Program parses s => q? => a.
func (p *Parser) Program() (*Program, error) {
	s, err := p.Stream()
	if err != nil {
		return nil, err
	}
	if err := p.Expect("=>"); err != nil {
		return nil, err
	}
	q, err := p.queryOrAction()
	if err != nil {
		return nil, err
	}
	if p.Peek(0) == "=>" {
		p.pos++
		a, err := p.Action()
		if err != nil {
			return nil, err
		}
		return &Program{Stream: s, Query: q, Action: a}, nil
	}
	// The clause we parsed must be the action: a plain invocation of an
	// action function, or notify.
	if q == nil {
		return &Program{Stream: s, Action: Notify()}, nil
	}
	if q.Kind != QueryInvocation {
		return nil, p.errf("expected => before action")
	}
	return &Program{Stream: s, Action: &Action{Invocation: q.Invocation}}, nil
}

// queryOrAction parses either a query or the tokens of an action; "notify"
// yields (nil, nil) and the caller interprets it.
func (p *Parser) queryOrAction() (*Query, error) {
	if p.Peek(0) == "notify" {
		p.pos++
		return nil, nil
	}
	return p.Query()
}

// Stream parses a stream clause.
func (p *Parser) Stream() (*Stream, error) {
	switch p.Peek(0) {
	case "now":
		p.pos++
		return Now(), nil
	case "timer":
		p.pos++
		if err := p.Expect("base"); err != nil {
			return nil, err
		}
		if err := p.Expect("="); err != nil {
			return nil, err
		}
		base, err := p.Value()
		if err != nil {
			return nil, err
		}
		if err := p.Expect("interval"); err != nil {
			return nil, err
		}
		if err := p.Expect("="); err != nil {
			return nil, err
		}
		iv, err := p.Value()
		if err != nil {
			return nil, err
		}
		return Timer(base, iv), nil
	case "attimer":
		p.pos++
		if err := p.Expect("time"); err != nil {
			return nil, err
		}
		if err := p.Expect("="); err != nil {
			return nil, err
		}
		t, err := p.Value()
		if err != nil {
			return nil, err
		}
		return AtTimer(t), nil
	case "monitor":
		p.pos++
		if err := p.Expect("("); err != nil {
			return nil, err
		}
		q, err := p.Query()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(")"); err != nil {
			return nil, err
		}
		s := Monitor(q)
		if p.Peek(0) == "on" && p.Peek(1) == "new" {
			p.pos += 2
			for strings.HasPrefix(p.Peek(0), "param:") && p.Peek(1) != "=" {
				name, _, err := ParseParamToken(p.next())
				if err != nil {
					return nil, err
				}
				s.MonitorOn = append(s.MonitorOn, name)
			}
			if len(s.MonitorOn) == 0 {
				return nil, p.errf("expected parameter after 'on new'")
			}
		}
		return s, nil
	case "edge":
		p.pos++
		if err := p.Expect("("); err != nil {
			return nil, err
		}
		inner, err := p.Stream()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(")"); err != nil {
			return nil, err
		}
		if err := p.Expect("on"); err != nil {
			return nil, err
		}
		pred, err := p.Predicate()
		if err != nil {
			return nil, err
		}
		return Edge(inner, pred), nil
	}
	return nil, p.errf("expected stream, got %q", p.Peek(0))
}

// Query parses a query with postfix filter/join operators.
func (p *Parser) Query() (*Query, error) {
	q, err := p.primaryQuery()
	if err != nil {
		return nil, err
	}
	for {
		switch p.Peek(0) {
		case "filter":
			p.pos++
			pred, err := p.Predicate()
			if err != nil {
				return nil, err
			}
			q = Filter(q, pred)
		case "join":
			p.pos++
			right, err := p.primaryQuery()
			if err != nil {
				return nil, err
			}
			j := Join(q, right)
			if p.Peek(0) == "on" && p.Peek(1) != "new" {
				p.pos++
				on, err := p.inputParams()
				if err != nil {
					return nil, err
				}
				if len(on) == 0 {
					return nil, p.errf("expected parameter passing after join 'on'")
				}
				j.JoinParams = on
			}
			q = j
		default:
			return q, nil
		}
	}
}

func (p *Parser) primaryQuery() (*Query, error) {
	switch {
	case p.Peek(0) == "(":
		p.pos++
		q, err := p.Query()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(")"); err != nil {
			return nil, err
		}
		return q, nil
	case p.Peek(0) == "agg":
		p.pos++
		op := p.next()
		if !containsString(AggregateOps, op) {
			return nil, p.errf("unknown aggregation operator %q", op)
		}
		param := ""
		if strings.HasPrefix(p.Peek(0), "param:") {
			name, _, err := ParseParamToken(p.next())
			if err != nil {
				return nil, err
			}
			param = name
		}
		if op != "count" && param == "" {
			return nil, p.errf("aggregation %q requires a parameter", op)
		}
		if op == "count" && param != "" {
			return nil, p.errf("count takes no parameter")
		}
		if err := p.Expect("of"); err != nil {
			return nil, err
		}
		if err := p.Expect("("); err != nil {
			return nil, err
		}
		inner, err := p.Query()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(")"); err != nil {
			return nil, err
		}
		return Aggregate(op, param, inner), nil
	case strings.HasPrefix(p.Peek(0), "@"):
		inv, err := p.Invocation()
		if err != nil {
			return nil, err
		}
		return &Query{Kind: QueryInvocation, Invocation: inv}, nil
	}
	return nil, p.errf("expected query, got %q", p.Peek(0))
}

// Action parses the action clause.
func (p *Parser) Action() (*Action, error) {
	if p.Peek(0) == "notify" {
		p.pos++
		return Notify(), nil
	}
	inv, err := p.Invocation()
	if err != nil {
		return nil, err
	}
	return &Action{Invocation: inv}, nil
}

// Invocation parses @class.fn followed by keyword (or positional) input
// parameters.
func (p *Parser) Invocation() (*Invocation, error) {
	sel := p.next()
	class, fn, err := SelectorParts(sel)
	if err != nil {
		return nil, err
	}
	inv := &Invocation{Class: class, Function: fn}
	if p.Peek(0) == "(" && p.opt.Schemas != nil {
		// Positional syntax.
		sch, ok := p.opt.Schemas.Schema(class, fn)
		if !ok {
			return nil, p.errf("unknown function %s for positional parameters", sel)
		}
		p.pos++
		ins := sch.InParams()
		idx := 0
		for p.Peek(0) != ")" {
			if idx > 0 {
				if err := p.Expect(","); err != nil {
					return nil, err
				}
			}
			if idx >= len(ins) {
				return nil, p.errf("too many positional parameters for %s", sel)
			}
			if p.Peek(0) == "_" {
				p.pos++
			} else {
				v, err := p.Value()
				if err != nil {
					return nil, err
				}
				inv.In = append(inv.In, InputParam{Name: ins[idx].Name, Value: v, Type: ins[idx].Type})
			}
			idx++
		}
		p.pos++ // ')'
		return inv, nil
	}
	in, err := p.inputParams()
	if err != nil {
		return nil, err
	}
	inv.In = in
	return inv, nil
}

// inputParams parses zero or more "param:name[:Type] = value".
func (p *Parser) inputParams() ([]InputParam, error) {
	var out []InputParam
	for strings.HasPrefix(p.Peek(0), "param:") && p.Peek(1) == "=" {
		name, typ, err := ParseParamToken(p.next())
		if err != nil {
			return nil, err
		}
		p.pos++ // '='
		v, err := p.Value()
		if err != nil {
			return nil, err
		}
		out = append(out, InputParam{Name: name, Value: v, Type: typ})
	}
	return out, nil
}

// Predicate parses a boolean expression with standard precedence
// (not > and > or).
func (p *Parser) Predicate() (*Predicate, error) {
	return p.orExpr()
}

func (p *Parser) orExpr() (*Predicate, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	if p.Peek(0) != "or" {
		return left, nil
	}
	children := []*Predicate{left}
	for p.Peek(0) == "or" {
		p.pos++
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return Or(children...), nil
}

func (p *Parser) andExpr() (*Predicate, error) {
	left, err := p.unaryPred()
	if err != nil {
		return nil, err
	}
	if p.Peek(0) != "and" {
		return left, nil
	}
	children := []*Predicate{left}
	for p.Peek(0) == "and" {
		p.pos++
		right, err := p.unaryPred()
		if err != nil {
			return nil, err
		}
		children = append(children, right)
	}
	return And(children...), nil
}

func (p *Parser) unaryPred() (*Predicate, error) {
	switch {
	case p.Peek(0) == "true":
		p.pos++
		return True(), nil
	case p.Peek(0) == "false":
		p.pos++
		return False(), nil
	case p.Peek(0) == "not":
		p.pos++
		inner, err := p.unaryPred()
		if err != nil {
			return nil, err
		}
		return Not(inner), nil
	case p.Peek(0) == "(":
		p.pos++
		inner, err := p.Predicate()
		if err != nil {
			return nil, err
		}
		if err := p.Expect(")"); err != nil {
			return nil, err
		}
		return inner, nil
	case strings.HasPrefix(p.Peek(0), "@"):
		inv, err := p.Invocation()
		if err != nil {
			return nil, err
		}
		if err := p.Expect("{"); err != nil {
			return nil, err
		}
		inner, err := p.Predicate()
		if err != nil {
			return nil, err
		}
		if err := p.Expect("}"); err != nil {
			return nil, err
		}
		return &Predicate{Kind: PredExternal, External: inv, InnerPred: inner}, nil
	case strings.HasPrefix(p.Peek(0), "param:"):
		name, typ, err := ParseParamToken(p.next())
		if err != nil {
			return nil, err
		}
		op := p.next()
		if !IsOperator(op) {
			return nil, p.errf("unknown operator %q", op)
		}
		v, err := p.Value()
		if err != nil {
			return nil, err
		}
		a := Atom(name, op, v)
		a.ParamType = typ
		return a, nil
	}
	return nil, p.errf("expected predicate, got %q", p.Peek(0))
}

// Value parses one constant or parameter reference.
func (p *Parser) Value() (Value, error) {
	tok := p.Peek(0)
	switch {
	case tok == `"`:
		p.pos++
		var words []string
		for p.Peek(0) != `"` {
			if p.Peek(0) == "" {
				return Value{}, p.errf("unterminated string value")
			}
			words = append(words, p.next())
		}
		p.pos++
		return StringValue(words...), nil
	case tok == "true":
		p.pos++
		return BoolValue(true), nil
	case tok == "false":
		p.pos++
		return BoolValue(false), nil
	case strings.HasPrefix(tok, "enum:"):
		p.pos++
		return EnumValue(tok[len("enum:"):]), nil
	case strings.HasPrefix(tok, "date:"):
		p.pos++
		name := tok[len("date:"):]
		if !IsNamedDate(name) {
			return Value{}, p.errf("unknown date edge %q", name)
		}
		return DateValue(name), nil
	case strings.HasPrefix(tok, "time:"):
		p.pos++
		name := tok[len("time:"):]
		if !IsNamedTime(name) {
			return Value{}, p.errf("unknown time name %q", name)
		}
		return TimeValue(name), nil
	case strings.HasPrefix(tok, "location:"):
		p.pos++
		name := tok[len("location:"):]
		if !IsNamedLocation(name) {
			return Value{}, p.errf("unknown location name %q", name)
		}
		return LocationValue(name), nil
	case strings.HasPrefix(tok, "param:"):
		p.pos++
		name, _, err := ParseParamToken(tok)
		if err != nil {
			return Value{}, err
		}
		return VarRefValue(name), nil
	case strings.HasPrefix(tok, "$") && len(tok) > 1:
		// Named placeholder from a primitive template; the template loader
		// resolves its type from the declaration list.
		p.pos++
		return Value{Kind: VSlot, Name: tok[1:]}, nil
	}
	// Placeholder or numeric literal, possibly a measure.
	if _, isPH := PlaceholderKind(tok); isPH {
		p.pos++
		if strings.HasPrefix(p.Peek(0), "unit:") {
			return p.measure(MeasureTerm{Placeholder: tok, Unit: p.next()[len("unit:"):]})
		}
		return PlaceholderValue(tok), nil
	}
	if n, err := strconv.ParseFloat(tok, 64); err == nil {
		p.pos++
		if strings.HasPrefix(p.Peek(0), "unit:") {
			return p.measure(MeasureTerm{Num: n, Unit: p.next()[len("unit:"):]})
		}
		return NumberValue(n), nil
	}
	return Value{}, p.errf("expected value, got %q", tok)
}

// measure parses the remaining additive terms of a measure value.
func (p *Parser) measure(first MeasureTerm) (Value, error) {
	if _, ok := UnitDimension(first.Unit); !ok {
		return Value{}, p.errf("unknown unit %q", first.Unit)
	}
	v := Value{Kind: VMeasure, Measures: []MeasureTerm{first}}
	for p.Peek(0) == "+" {
		p.pos++
		t := p.next()
		term := MeasureTerm{}
		if _, isPH := PlaceholderKind(t); isPH {
			term.Placeholder = t
		} else if n, err := strconv.ParseFloat(t, 64); err == nil {
			term.Num = n
		} else {
			return Value{}, p.errf("expected measure magnitude, got %q", t)
		}
		u := p.next()
		if !strings.HasPrefix(u, "unit:") {
			return Value{}, p.errf("expected unit, got %q", u)
		}
		term.Unit = u[len("unit:"):]
		if _, ok := UnitDimension(term.Unit); !ok {
			return Value{}, p.errf("unknown unit %q", term.Unit)
		}
		if BaseUnit(term.Unit) != BaseUnit(first.Unit) {
			return Value{}, p.errf("mixed dimensions in measure: %q and %q", first.Unit, term.Unit)
		}
		v.Measures = append(v.Measures, term)
	}
	return v, nil
}
