package thingtalk

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Canonical examples from the paper, translated to the canonical token
// syntax of this implementation.
var paperExamples = []string{
	// Fig 1: get a cat picture and post it on Facebook.
	`now => @com.thecatapi.get => @com.facebook.post_picture param:caption = " funny cat " param:picture_url = param:picture_url`,
	// Section 2.3: retweet PLDI.
	`monitor ( @com.twitter.timeline filter param:author == " pldi " ) => @com.twitter.retweet param:tweet_id = param:tweet_id`,
	// Section 2.3: emails from Alice (adapted to the Twitter schema).
	`now => @com.twitter.timeline filter param:author == " alice " => notify`,
	// Section 2.3: translate NYT titles.
	`now => @com.nytimes.get_front_page join @com.yandex.translate on param:text = param:title => notify`,
	// Section 2.3: edge filter on temperature.
	`edge ( monitor ( @org.thingpedia.weather.current ) ) on param:temperature < 60 unit:F => notify`,
	// Timers.
	`timer base = date:now interval = 1 unit:h => @com.thecatapi.get => notify`,
	`attimer time = TIME_0 => @com.twitter.post param:status = " good morning "`,
	// Monitor on new.
	`monitor ( @com.dropbox.list_folder ) on new param:file_name => @com.twitter.post param:status = " new file "`,
	// TT+A aggregation (Section 6.3): total size of a folder.
	`now => agg sum param:file_size of ( @com.dropbox.list_folder ) => notify`,
	`now => agg count of ( @com.dropbox.list_folder ) => notify`,
	// Compound predicate.
	`now => @com.dropbox.list_folder filter param:file_size > 10 unit:MB and ( param:is_folder == false or param:modified_time > date:start_of_week ) => notify`,
	// External predicate.
	`now => @com.twitter.timeline filter @org.thingpedia.weather.current { param:temperature > 30 unit:C } => notify`,
	// Placeholders.
	`now => @com.thecatapi.get param:count = NUMBER_0 => notify`,
	// Composed measure (6 ft 3 in).
	`now => @com.dropbox.list_folder filter param:file_size > 6 unit:GB + 300 unit:MB => notify`,
	// Array containment.
	`now => @com.twitter.timeline filter param:hashtags contains " pldi " => notify`,
	// String operators.
	`now => @com.dropbox.list_folder filter param:file_name starts_with " report " => notify`,
}

func TestParsePaperExamples(t *testing.T) {
	for _, src := range paperExamples {
		prog, err := ParseProgram(src)
		if err != nil {
			t.Fatalf("ParseProgram(%q): %v", src, err)
		}
		if got := strings.Join(prog.Tokens(), " "); got != src {
			t.Errorf("round trip mismatch:\n in: %s\nout: %s", src, got)
		}
	}
}

func TestParseProgramMissingQuery(t *testing.T) {
	prog := mustParse(`now => @com.dropbox.move param:new_name = " b " param:old_name = " a "`)
	if prog.Query != nil {
		t.Error("expected no query clause")
	}
	if prog.Action.Notify || prog.Action.Invocation == nil {
		t.Error("expected action invocation")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`now`,
		`now =>`,
		`now => notify extra`,
		`=> notify`,
		`now => @bad => notify`,
		`now => @com.thecatapi.get param:count = => notify`,
		`now => @com.thecatapi.get filter => notify`,
		`now => @com.thecatapi.get filter param:count ?? 3 => notify`,
		`monitor @com.thecatapi.get => notify`, // missing parens
		`now => @com.thecatapi.get param:count = " unterminated => notify`,
		`now => agg total param:x of ( @com.dropbox.list_folder ) => notify`,
		`now => agg sum of ( @com.dropbox.list_folder ) => notify`,
		`now => agg count param:x of ( @com.dropbox.list_folder ) => notify`,
		`now => @com.thecatapi.get param:count = 3 unit:floops => notify`,
		`now => @com.thecatapi.get param:count = 3 unit:MB + 4 unit:h => notify`,
		`now => @com.dropbox.list_folder filter param:modified_time > date:someday => notify`,
		`edge ( now ) on true => notify`, // parses but edge needs monitor: that's typecheck; grammar allows it
	}
	for _, src := range cases[:len(cases)-1] {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%q) should fail", src)
		}
	}
}

func TestParsePredicatePrecedence(t *testing.T) {
	prog := mustParse(`now => @com.dropbox.list_folder filter param:is_folder == true or param:is_folder == false and param:file_size > 1 unit:KB => notify`)
	pred := prog.Query.Predicate
	if pred.Kind != PredOr {
		t.Fatalf("top-level should be Or, got %d", pred.Kind)
	}
	if pred.Children[1].Kind != PredAnd {
		t.Fatalf("and should bind tighter than or")
	}
}

func TestParseNotPredicate(t *testing.T) {
	prog := mustParse(`now => @com.twitter.timeline filter not param:text substr " spam " => notify`)
	pred := prog.Query.Predicate
	if pred.Kind != PredNot || pred.Children[0].Kind != PredAtom {
		t.Fatal("expected not(atom)")
	}
}

func TestParseJoinAssociativity(t *testing.T) {
	prog := mustParse(`now => @com.nytimes.get_front_page join @com.thecatapi.get join @com.dropbox.list_folder => notify`)
	q := prog.Query
	if q.Kind != QueryJoin || q.Inner.Kind != QueryJoin {
		t.Fatal("join should be left-associative")
	}
}

func TestParseTypeAnnotatedParams(t *testing.T) {
	src := `now => @com.thecatapi.get param:count:Number = 3 => notify`
	prog := mustParse(src)
	ip := prog.Query.Invocation.In[0]
	if ip.Type == nil || !ip.Type.Equal(NumberType{}) {
		t.Fatalf("annotation not parsed: %+v", ip)
	}
	if got := strings.Join(prog.Tokens(), " "); got != src {
		t.Errorf("annotated round trip mismatch: %s", got)
	}
}

func TestTokenizeQuotedStrings(t *testing.T) {
	toks, err := Tokenize(`@com.twitter.post param:status = "hello  world"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"@com.twitter.post", "param:status", "=", `"`, "hello", "world", `"`}
	if len(toks) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d: got %q want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizeRejectsUnterminatedString(t *testing.T) {
	if _, err := Tokenize(`now => "oops`); err == nil {
		t.Error("unterminated string should fail tokenization")
	}
}

func TestEncodeParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func() bool {
		prog := genProgram(rng)
		toks := prog.Encode(EncodeOptions{})
		parsed, err := ParseTokens(toks, ParseOptions{})
		if err != nil {
			t.Logf("parse(%s): %v", strings.Join(toks, " "), err)
			return false
		}
		again := parsed.Encode(EncodeOptions{})
		if strings.Join(toks, " ") != strings.Join(again, " ") {
			t.Logf("fixpoint mismatch:\n a: %s\n b: %s", strings.Join(toks, " "), strings.Join(again, " "))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPositionalEncodeDecode(t *testing.T) {
	schemas := testSchemas()
	src := `now => @com.thecatapi.get param:count = 3 => @com.facebook.post_picture param:caption = " hi " param:picture_url = param:picture_url`
	prog := mustParse(src)
	if err := Typecheck(prog, schemas); err != nil {
		t.Fatal(err)
	}
	opt := EncodeOptions{Positional: true, Schemas: schemas}
	toks := prog.Encode(opt)
	joined := strings.Join(toks, " ")
	if !strings.Contains(joined, "(") || strings.Contains(joined, "param:count") {
		t.Fatalf("positional encoding should not mention parameter names: %s", joined)
	}
	parsed, err := ParseTokens(toks, ParseOptions{Schemas: schemas})
	if err != nil {
		t.Fatalf("parse positional: %v\ntokens: %s", err, joined)
	}
	if !SameProgram(prog, parsed, schemas) {
		t.Errorf("positional round trip changed program:\n in: %s\nout: %s", prog, parsed)
	}
}

func TestSelectorParts(t *testing.T) {
	class, fn, err := SelectorParts("@com.yandex.translate.translate")
	if err != nil || class != "com.yandex.translate" || fn != "translate" {
		t.Errorf("got %q %q %v", class, fn, err)
	}
	for _, bad := range []string{"com.foo.bar", "@", "@nofunction", "@trailing."} {
		if _, _, err := SelectorParts(bad); err == nil {
			t.Errorf("SelectorParts(%q) should fail", bad)
		}
	}
}
