// Package thingtalk implements the ThingTalk virtual-assistant programming
// language (VAPL) described in "Genie: A Generator of Natural Language
// Semantic Parsers for Virtual Assistant Commands" (PLDI 2019), Section 2.
//
// The package provides the type system, the abstract syntax tree for the
// single ThingTalk construct (stream => query => action), a lexer and parser
// for the canonical surface syntax, a typechecker driven by function
// signatures, the canonicalizer of Section 2.4, and the token codec used to
// exchange programs with the neural semantic parser.
package thingtalk

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a ThingTalk parameter type (Fig. 3 of the paper).
//
// ThingTalk is strongly and statically typed; values carry enough structure
// that a neural parser never has to normalize units or perform arithmetic.
type Type interface {
	// String returns the canonical spelling of the type, as used in class
	// definitions and in annotated NN tokens.
	String() string
	// Equal reports whether two types are identical.
	Equal(Type) bool
}

// Primitive types. Each is a distinct named type so that a type switch can
// discriminate them.
type (
	// StringType is free-form text.
	StringType struct{}
	// NumberType is a dimensionless number.
	NumberType struct{}
	// BoolType is a boolean.
	BoolType struct{}
	// DateType is a point in time (absolute or a named edge such as
	// start_of_week).
	DateType struct{}
	// TimeType is a time of day.
	TimeType struct{}
	// PathNameType is a file-system path.
	PathNameType struct{}
	// URLType is a web address.
	URLType struct{}
	// LocationType is a geographic location.
	LocationType struct{}
	// CurrencyType is an amount of money with a currency unit.
	CurrencyType struct{}
)

// MeasureType is a number with a physical unit; the Unit field is the
// canonical base unit of the dimension (for example "byte" or "ms"). Values
// of a measure type may use any unit of the same dimension, and may compose
// additively ("6 feet 3 inches").
type MeasureType struct{ Unit string }

// EnumType is a closed set of named values.
type EnumType struct{ Values []string }

// EntityType is an opaque named entity (for example tt:username); entities
// are recalled by display name in natural language and resolved by a
// knowledge-base lookup after parsing.
type EntityType struct{ Kind string }

// ArrayType is the only compound type in ThingTalk.
type ArrayType struct{ Elem Type }

func (StringType) String() string   { return "String" }
func (NumberType) String() string   { return "Number" }
func (BoolType) String() string     { return "Boolean" }
func (DateType) String() string     { return "Date" }
func (TimeType) String() string     { return "Time" }
func (PathNameType) String() string { return "PathName" }
func (URLType) String() string      { return "URL" }
func (LocationType) String() string { return "Location" }
func (CurrencyType) String() string { return "Currency" }
func (t MeasureType) String() string {
	return fmt.Sprintf("Measure(%s)", t.Unit)
}
func (t EnumType) String() string {
	return fmt.Sprintf("Enum(%s)", strings.Join(t.Values, ","))
}
func (t EntityType) String() string { return fmt.Sprintf("Entity(%s)", t.Kind) }
func (t ArrayType) String() string  { return fmt.Sprintf("Array(%s)", t.Elem) }

func (StringType) Equal(o Type) bool   { _, ok := o.(StringType); return ok }
func (NumberType) Equal(o Type) bool   { _, ok := o.(NumberType); return ok }
func (BoolType) Equal(o Type) bool     { _, ok := o.(BoolType); return ok }
func (DateType) Equal(o Type) bool     { _, ok := o.(DateType); return ok }
func (TimeType) Equal(o Type) bool     { _, ok := o.(TimeType); return ok }
func (PathNameType) Equal(o Type) bool { _, ok := o.(PathNameType); return ok }
func (URLType) Equal(o Type) bool      { _, ok := o.(URLType); return ok }
func (LocationType) Equal(o Type) bool { _, ok := o.(LocationType); return ok }
func (CurrencyType) Equal(o Type) bool { _, ok := o.(CurrencyType); return ok }

func (t MeasureType) Equal(o Type) bool {
	m, ok := o.(MeasureType)
	return ok && m.Unit == t.Unit
}

func (t EnumType) Equal(o Type) bool {
	e, ok := o.(EnumType)
	if !ok || len(e.Values) != len(t.Values) {
		return false
	}
	a := append([]string(nil), t.Values...)
	b := append([]string(nil), e.Values...)
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (t EntityType) Equal(o Type) bool {
	e, ok := o.(EntityType)
	return ok && e.Kind == t.Kind
}

func (t ArrayType) Equal(o Type) bool {
	a, ok := o.(ArrayType)
	return ok && a.Elem.Equal(t.Elem)
}

// HasEnumValue reports whether v is one of the enum's values.
func (t EnumType) HasEnumValue(v string) bool {
	for _, x := range t.Values {
		if x == v {
			return true
		}
	}
	return false
}

// ParseType parses the canonical spelling of a type, as produced by
// Type.String. It accepts the grammar of Fig. 3:
//
//	t := String | Number | Boolean | Date | Time | PathName | URL |
//	     Location | Currency | Measure(u) | Enum(v,...) | Entity(et) |
//	     Array(t)
func ParseType(s string) (Type, error) {
	s = strings.TrimSpace(s)
	switch s {
	case "String":
		return StringType{}, nil
	case "Number":
		return NumberType{}, nil
	case "Boolean":
		return BoolType{}, nil
	case "Date":
		return DateType{}, nil
	case "Time":
		return TimeType{}, nil
	case "PathName":
		return PathNameType{}, nil
	case "URL":
		return URLType{}, nil
	case "Location":
		return LocationType{}, nil
	case "Currency":
		return CurrencyType{}, nil
	}
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("thingtalk: invalid type %q", s)
	}
	head, arg := s[:open], s[open+1:len(s)-1]
	switch head {
	case "Measure":
		if _, ok := UnitDimension(arg); !ok {
			return nil, fmt.Errorf("thingtalk: unknown unit %q in %q", arg, s)
		}
		return MeasureType{Unit: BaseUnit(arg)}, nil
	case "Enum":
		parts := strings.Split(arg, ",")
		values := make([]string, 0, len(parts))
		for _, p := range parts {
			p = strings.TrimSpace(p)
			if p == "" {
				return nil, fmt.Errorf("thingtalk: empty enum value in %q", s)
			}
			values = append(values, p)
		}
		if len(values) == 0 {
			return nil, fmt.Errorf("thingtalk: empty enum in %q", s)
		}
		return EnumType{Values: values}, nil
	case "Entity":
		if arg == "" {
			return nil, fmt.Errorf("thingtalk: empty entity kind in %q", s)
		}
		return EntityType{Kind: arg}, nil
	case "Array":
		elem, err := ParseType(arg)
		if err != nil {
			return nil, err
		}
		return ArrayType{Elem: elem}, nil
	}
	return nil, fmt.Errorf("thingtalk: invalid type %q", s)
}

// IsStringLike reports whether values of t are represented as free-form word
// sequences in sentences and programs (and therefore flow through the
// pointer-generator copy mechanism of the parser).
func IsStringLike(t Type) bool {
	switch t.(type) {
	case StringType, PathNameType, URLType, EntityType:
		return true
	}
	return false
}

// IsComparable reports whether values of t support the ordering operators
// (> and <).
func IsComparable(t Type) bool {
	switch t.(type) {
	case NumberType, DateType, TimeType, MeasureType, CurrencyType:
		return true
	}
	return false
}
