package thingtalk

import (
	"strings"
	"testing"
)

// fuzzSeeds are well-formed canonical programs covering every construct the
// encoder can emit: streams (now/timer/attimer/monitor/edge), filters,
// joins, aggregations, external predicates, boolean connectives, measures,
// placeholders and parameter passing. They seed the fuzzer alongside the
// files under testdata/fuzz/FuzzThingTalkParser.
var fuzzSeeds = []string{
	`now => notify`,
	`now => @com.twitter.post param:status = " hello "`,
	`now => @com.thecatapi.get param:count = NUMBER_0 => notify`,
	`now => @com.twitter.timeline filter param:author == " alice " => notify`,
	`monitor ( @com.twitter.timeline filter param:author == " pldi " ) => @com.twitter.retweet param:tweet_id = param:tweet_id`,
	`monitor ( @com.dropbox.list_folder ) on new param:file_name => @com.twitter.post param:status = " new file "`,
	`edge ( monitor ( @org.thingpedia.weather.current ) ) on param:temperature < 60 unit:F => notify`,
	`timer base = date:now interval = 1 unit:h => @com.thecatapi.get => notify`,
	`attimer time = TIME_0 => @com.twitter.post param:status = " good morning "`,
	`now => @com.nytimes.get_front_page join @com.yandex.translate on param:text = param:title => notify`,
	`now => agg sum param:file_size of ( @com.dropbox.list_folder ) => notify`,
	`now => agg count of ( @com.dropbox.list_folder ) => notify`,
	`now => @com.dropbox.list_folder filter param:file_size > 10 unit:MB and ( param:is_folder == false or param:modified_time > date:start_of_week ) => notify`,
	`now => @com.twitter.timeline filter @org.thingpedia.weather.current { param:temperature > 30 unit:C } => notify`,
	`now => @com.dropbox.list_folder filter param:file_size > 6 unit:GB + 300 unit:MB => notify`,
	`now => @com.twitter.timeline filter param:hashtags contains " pldi " => notify`,
	`now => @com.dropbox.list_folder filter not param:file_name starts_with " report " => notify`,
}

// FuzzThingTalkParser feeds arbitrary program text through tokenize → parse →
// encode → reparse → re-encode. Malformed inputs must be rejected with an
// error — never a panic — and for any input the parser accepts, the encoded
// form must be a fixed point: it reparses cleanly, the two parses encode
// identically, and the reparsed AST is equivalent (same canonical string).
func FuzzThingTalkParser(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Tokenize(src)
		if err != nil {
			return // rejected without panicking: fine
		}
		prog, err := ParseTokens(toks, ParseOptions{})
		if err != nil {
			return
		}
		enc := prog.Tokens()
		reprog, err := ParseTokens(enc, ParseOptions{})
		if err != nil {
			t.Fatalf("encoded form of accepted input does not reparse\ninput:   %q\nencoded: %q\nerror:   %v",
				src, strings.Join(enc, " "), err)
		}
		if got := strings.Join(reprog.Tokens(), " "); got != strings.Join(enc, " ") {
			t.Fatalf("parse/encode round trip is not stable\ninput:  %q\nfirst:  %q\nsecond: %q",
				src, strings.Join(enc, " "), got)
		}
	})
}
