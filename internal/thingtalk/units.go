package thingtalk

import "sort"

// Unit handling. ThingTalk measures can be written with any legal unit of a
// dimension and composed additively ("6 feet 3 inches" = 6ft + 3in); the
// runtime normalizes to the dimension's base unit. The neural parser never
// performs this arithmetic (Section 2.1 of the paper).

// unitSpec describes one unit: the dimension it belongs to (identified by the
// dimension's base unit) and the conversion to that base unit. Temperature
// units are affine and carry an offset.
type unitSpec struct {
	base   string
	factor float64
	offset float64
}

var unitTable = map[string]unitSpec{
	// Data size (base: byte).
	"byte": {"byte", 1, 0},
	"KB":   {"byte", 1e3, 0},
	"MB":   {"byte", 1e6, 0},
	"GB":   {"byte", 1e9, 0},
	"TB":   {"byte", 1e12, 0},

	// Duration (base: ms).
	"ms":   {"ms", 1, 0},
	"s":    {"ms", 1e3, 0},
	"min":  {"ms", 60e3, 0},
	"h":    {"ms", 3600e3, 0},
	"day":  {"ms", 86400e3, 0},
	"week": {"ms", 7 * 86400e3, 0},

	// Length (base: m).
	"mm": {"m", 1e-3, 0},
	"cm": {"m", 1e-2, 0},
	"m":  {"m", 1, 0},
	"km": {"m", 1e3, 0},
	"in": {"m", 0.0254, 0},
	"ft": {"m", 0.3048, 0},
	"mi": {"m", 1609.344, 0},

	// Temperature (base: C). Affine conversions.
	"C": {"C", 1, 0},
	"F": {"C", 5.0 / 9.0, -32 * 5.0 / 9.0},
	"K": {"C", 1, -273.15},

	// Mass (base: kg).
	"g":  {"kg", 1e-3, 0},
	"kg": {"kg", 1, 0},
	"lb": {"kg", 0.45359237, 0},
	"oz": {"kg", 0.028349523125, 0},

	// Speed (base: mps).
	"mps":  {"mps", 1, 0},
	"kmph": {"mps", 1.0 / 3.6, 0},
	"mph":  {"mps", 0.44704, 0},

	// Music tempo (base: bpm).
	"bpm": {"bpm", 1, 0},

	// Energy expenditure (base: kcal).
	"kcal": {"kcal", 1, 0},

	// Currency (base: usd). Fixed synthetic rates; the simulator only needs
	// a consistent ordering, not live exchange rates.
	"usd": {"usd", 1, 0},
	"eur": {"usd", 1.1, 0},
	"gbp": {"usd", 1.3, 0},
	"jpy": {"usd", 0.0091, 0},
}

// UnitDimension returns the base unit of u's dimension, and whether u is a
// known unit.
func UnitDimension(u string) (base string, ok bool) {
	spec, ok := unitTable[u]
	if !ok {
		return "", false
	}
	return spec.base, true
}

// BaseUnit returns the base unit of u's dimension, or u itself when u is
// unknown (so that error reporting shows the original spelling).
func BaseUnit(u string) string {
	if spec, ok := unitTable[u]; ok {
		return spec.base
	}
	return u
}

// ConvertUnit converts amount in unit u to the base unit of u's dimension.
func ConvertUnit(amount float64, u string) (float64, bool) {
	spec, ok := unitTable[u]
	if !ok {
		return 0, false
	}
	return amount*spec.factor + spec.offset, true
}

// UnitsOf returns all known units of the dimension identified by base, in a
// deterministic order. It is used by template expansion to offer unit variety.
func UnitsOf(base string) []string {
	var out []string
	for u, spec := range unitTable {
		if spec.base == base {
			out = append(out, u)
		}
	}
	sort.Strings(out)
	return out
}
