package thingtalk

import (
	"math/rand"
)

// testSchemas is a small skill library used across the package tests; it
// mirrors the shapes in the paper's figures (Dropbox, Twitter, weather,
// Facebook, the cat API).
func testSchemas() SchemaMap {
	m := SchemaMap{}
	m.Add(&FunctionSchema{
		Class: "com.dropbox", Name: "list_folder", Kind: KindQuery, Monitor: true, List: true,
		Canonical: "files in my dropbox",
		Params: []ParamSpec{
			{Name: "folder_name", Dir: DirInOpt, Type: PathNameType{}},
			{Name: "order_by", Dir: DirInOpt, Type: EnumType{Values: []string{"modified_time_decreasing", "modified_time_increasing"}}},
			{Name: "file_name", Dir: DirOut, Type: PathNameType{}},
			{Name: "is_folder", Dir: DirOut, Type: BoolType{}},
			{Name: "modified_time", Dir: DirOut, Type: DateType{}},
			{Name: "file_size", Dir: DirOut, Type: MeasureType{Unit: "byte"}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.dropbox", Name: "open", Kind: KindQuery,
		Canonical: "the download link",
		Params: []ParamSpec{
			{Name: "file_name", Dir: DirInReq, Type: PathNameType{}},
			{Name: "download_url", Dir: DirOut, Type: URLType{}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.dropbox", Name: "move", Kind: KindAction,
		Canonical: "move a file",
		Params: []ParamSpec{
			{Name: "old_name", Dir: DirInReq, Type: PathNameType{}},
			{Name: "new_name", Dir: DirInReq, Type: PathNameType{}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.twitter", Name: "timeline", Kind: KindQuery, Monitor: true, List: true,
		Canonical: "tweets in my timeline",
		Params: []ParamSpec{
			{Name: "author", Dir: DirOut, Type: EntityType{Kind: "tt:username"}},
			{Name: "text", Dir: DirOut, Type: StringType{}},
			{Name: "hashtags", Dir: DirOut, Type: ArrayType{Elem: StringType{}}},
			{Name: "tweet_id", Dir: DirOut, Type: EntityType{Kind: "com.twitter:id"}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.twitter", Name: "retweet", Kind: KindAction,
		Canonical: "retweet",
		Params: []ParamSpec{
			{Name: "tweet_id", Dir: DirInReq, Type: EntityType{Kind: "com.twitter:id"}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.twitter", Name: "post", Kind: KindAction,
		Canonical: "tweet",
		Params: []ParamSpec{
			{Name: "status", Dir: DirInReq, Type: StringType{}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "org.thingpedia.weather", Name: "current", Kind: KindQuery, Monitor: true,
		Canonical: "the current weather",
		Params: []ParamSpec{
			{Name: "location", Dir: DirInOpt, Type: LocationType{}},
			{Name: "temperature", Dir: DirOut, Type: MeasureType{Unit: "C"}},
			{Name: "humidity", Dir: DirOut, Type: NumberType{}},
			{Name: "status", Dir: DirOut, Type: EnumType{Values: []string{"sunny", "cloudy", "raining", "snowing"}}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.thecatapi", Name: "get", Kind: KindQuery, List: true,
		Canonical: "a cat picture",
		Params: []ParamSpec{
			{Name: "count", Dir: DirInOpt, Type: NumberType{}},
			{Name: "picture_url", Dir: DirOut, Type: URLType{}},
			{Name: "image_id", Dir: DirOut, Type: EntityType{Kind: "com.thecatapi:image_id"}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.facebook", Name: "post_picture", Kind: KindAction,
		Canonical: "post a picture on facebook",
		Params: []ParamSpec{
			{Name: "picture_url", Dir: DirInReq, Type: URLType{}},
			{Name: "caption", Dir: DirInOpt, Type: StringType{}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.yandex", Name: "translate", Kind: KindQuery,
		Canonical: "the translation",
		Params: []ParamSpec{
			{Name: "text", Dir: DirInReq, Type: StringType{}},
			{Name: "target_language", Dir: DirInOpt, Type: EntityType{Kind: "tt:iso_lang_code"}},
			{Name: "translated_text", Dir: DirOut, Type: StringType{}},
		},
	})
	m.Add(&FunctionSchema{
		Class: "com.nytimes", Name: "get_front_page", Kind: KindQuery, Monitor: true, List: true,
		Canonical: "articles on the new york times front page",
		Params: []ParamSpec{
			{Name: "title", Dir: DirOut, Type: StringType{}},
			{Name: "link", Dir: DirOut, Type: URLType{}},
			{Name: "updated", Dir: DirOut, Type: DateType{}},
		},
	})
	return m
}

// mustParse parses src or panics; for test fixtures only.
func mustParse(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// genProgram builds a random well-typed program over testSchemas, used by
// the property-based tests.
func genProgram(rng *rand.Rand) *Program {
	schemas := testSchemas()
	queries := []*FunctionSchema{}
	actions := []*FunctionSchema{}
	for _, sch := range schemas {
		if sch.Kind == KindQuery {
			queries = append(queries, sch)
		} else {
			actions = append(actions, sch)
		}
	}
	// Deterministic ordering (map iteration is random).
	sortSchemas(queries)
	sortSchemas(actions)

	q := genQuery(rng, queries)
	var stream *Stream
	switch rng.Intn(3) {
	case 0:
		stream = Now()
	case 1:
		stream = Timer(DateValue("now"), MeasureValue(float64(1+rng.Intn(12)), "h"))
	default:
		// Monitor requires all functions monitorable.
		mq := genMonitorableQuery(rng, queries)
		stream = Monitor(mq)
	}
	var action *Action
	if rng.Intn(2) == 0 {
		action = Notify()
	} else {
		asch := actions[rng.Intn(len(actions))]
		inv := &Invocation{Class: asch.Class, Function: asch.Name}
		for _, ps := range asch.InParams() {
			if ps.Dir == DirInReq {
				inv.In = append(inv.In, InputParam{Name: ps.Name, Value: genValue(rng, ps.Type)})
			}
		}
		action = &Action{Invocation: inv}
	}
	prog := &Program{Stream: stream, Query: q, Action: action}
	if rng.Intn(4) == 0 {
		prog.Query = nil
		if !prog.Action.Notify {
			return prog
		}
		prog.Action = Notify()
		prog.Query = q
	}
	return prog
}

func sortSchemas(s []*FunctionSchema) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Selector() < s[j-1].Selector(); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func genQuery(rng *rand.Rand, queries []*FunctionSchema) *Query {
	sch := queries[rng.Intn(len(queries))]
	q := genInvocationQuery(rng, sch)
	if rng.Intn(3) == 0 {
		if pred := genPredicate(rng, sch, 2); pred != nil {
			q = Filter(q, pred)
		}
	}
	return q
}

func genMonitorableQuery(rng *rand.Rand, queries []*FunctionSchema) *Query {
	var mon []*FunctionSchema
	for _, sch := range queries {
		if sch.Monitor {
			mon = append(mon, sch)
		}
	}
	sch := mon[rng.Intn(len(mon))]
	q := genInvocationQuery(rng, sch)
	if rng.Intn(3) == 0 {
		if pred := genPredicate(rng, sch, 2); pred != nil {
			q = Filter(q, pred)
		}
	}
	return q
}

func genInvocationQuery(rng *rand.Rand, sch *FunctionSchema) *Query {
	inv := &Invocation{Class: sch.Class, Function: sch.Name}
	for _, ps := range sch.InParams() {
		if ps.Dir == DirInReq || rng.Intn(3) == 0 {
			inv.In = append(inv.In, InputParam{Name: ps.Name, Value: genValue(rng, ps.Type)})
		}
	}
	return &Query{Kind: QueryInvocation, Invocation: inv}
}

func genPredicate(rng *rand.Rand, sch *FunctionSchema, depth int) *Predicate {
	outs := sch.OutParams()
	if len(outs) == 0 {
		return nil
	}
	if depth > 0 && rng.Intn(4) == 0 {
		a := genPredicate(rng, sch, depth-1)
		b := genPredicate(rng, sch, depth-1)
		if a == nil || b == nil {
			return a
		}
		if rng.Intn(2) == 0 {
			return And(a, b)
		}
		return Or(a, b)
	}
	if depth > 0 && rng.Intn(6) == 0 {
		inner := genPredicate(rng, sch, depth-1)
		if inner != nil {
			return Not(inner)
		}
	}
	ps := outs[rng.Intn(len(outs))]
	op, v := genAtomFor(rng, ps.Type)
	if op == "" {
		return nil
	}
	return Atom(ps.Name, op, v)
}

func genAtomFor(rng *rand.Rand, t Type) (string, Value) {
	switch t := t.(type) {
	case StringType, PathNameType, URLType, EntityType:
		ops := []string{OpEq, OpSubstr, OpStartsWith, OpEndsWith}
		return ops[rng.Intn(len(ops))], StringValue(genWord(rng), genWord(rng))
	case NumberType:
		ops := []string{OpEq, OpGt, OpLt, OpGe, OpLe}
		return ops[rng.Intn(len(ops))], NumberValue(float64(rng.Intn(100)))
	case BoolType:
		return OpEq, BoolValue(rng.Intn(2) == 0)
	case DateType:
		ops := []string{OpGt, OpLt}
		return ops[rng.Intn(len(ops))], DateValue(NamedDates[rng.Intn(len(NamedDates))])
	case MeasureType:
		ops := []string{OpGt, OpLt, OpGe, OpLe}
		units := UnitsOf(t.Unit)
		return ops[rng.Intn(len(ops))], MeasureValue(float64(1+rng.Intn(50)), units[rng.Intn(len(units))])
	case EnumType:
		return OpEq, EnumValue(t.Values[rng.Intn(len(t.Values))])
	case ArrayType:
		if _, ok := t.Elem.(StringType); ok {
			return OpContains, StringValue(genWord(rng))
		}
	}
	return "", Value{}
}

func genValue(rng *rand.Rand, t Type) Value {
	switch t := t.(type) {
	case StringType, PathNameType, URLType, EntityType:
		n := 1 + rng.Intn(3)
		words := make([]string, n)
		for i := range words {
			words[i] = genWord(rng)
		}
		return StringValue(words...)
	case NumberType:
		return NumberValue(float64(rng.Intn(1000)))
	case BoolType:
		return BoolValue(rng.Intn(2) == 0)
	case DateType:
		return DateValue(NamedDates[rng.Intn(len(NamedDates))])
	case TimeType:
		return TimeValue(NamedTimes[rng.Intn(len(NamedTimes))])
	case LocationType:
		return LocationValue(NamedLocations[rng.Intn(len(NamedLocations))])
	case CurrencyType:
		return MeasureValue(float64(1+rng.Intn(100)), "usd")
	case MeasureType:
		units := UnitsOf(t.Unit)
		return MeasureValue(float64(1+rng.Intn(100)), units[rng.Intn(len(units))])
	case EnumType:
		return EnumValue(t.Values[rng.Intn(len(t.Values))])
	}
	return NumberValue(0)
}

var testWords = []string{
	"funny", "cat", "report", "project", "music", "vacation", "deadline",
	"hello", "world", "photos", "budget", "meeting", "notes", "taxes",
}

func genWord(rng *rand.Rand) string { return testWords[rng.Intn(len(testWords))] }
