package thingtalk

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTypecheckAcceptsPaperExamples(t *testing.T) {
	schemas := testSchemas()
	for _, src := range paperExamples {
		prog := mustParse(src)
		if err := Typecheck(prog, schemas); err != nil {
			t.Errorf("Typecheck(%q): %v", src, err)
		}
	}
}

func TestTypecheckAnnotatesTypes(t *testing.T) {
	schemas := testSchemas()
	prog := mustParse(`now => @com.thecatapi.get param:count = 3 => notify`)
	if err := Typecheck(prog, schemas); err != nil {
		t.Fatal(err)
	}
	ip := prog.Query.Invocation.In[0]
	if ip.Type == nil || !ip.Type.Equal(NumberType{}) {
		t.Fatalf("type not annotated: %+v", ip)
	}
	toks := strings.Join(prog.Tokens(), " ")
	if !strings.Contains(toks, "param:count:Number") {
		t.Errorf("annotated encoding missing type: %s", toks)
	}
}

func TestTypecheckRejections(t *testing.T) {
	schemas := testSchemas()
	cases := []struct {
		name string
		src  string
	}{
		{"unknown function", `now => @com.nosuch.fn => notify`},
		{"action as query", `now => @com.twitter.retweet param:tweet_id = " x " => notify`},
		{"query as action", `now => @com.thecatapi.get => @com.dropbox.list_folder`},
		{"missing required", `now => @com.dropbox.open => notify`},
		{"unknown param", `now => @com.thecatapi.get param:nope = 3 => notify`},
		{"assign out param", `now => @com.thecatapi.get param:picture_url = " x " => notify`},
		{"duplicate param", `now => @com.thecatapi.get param:count = 1 param:count = 2 => notify`},
		{"wrong value type", `now => @com.thecatapi.get param:count = " three " => notify`},
		{"wrong measure dim", `now => @com.dropbox.list_folder filter param:file_size > 3 unit:h => notify`},
		{"bad enum member", `now => @com.dropbox.list_folder param:order_by = enum:alphabetical => notify`},
		{"monitor unmonitorable", `monitor ( @com.thecatapi.get ) => notify`},
		{"filter unknown param", `now => @com.thecatapi.get filter param:nope == 3 => notify`},
		{"order op on string", `now => @com.twitter.timeline filter param:text > " a " => notify`},
		{"contains on scalar", `now => @com.twitter.timeline filter param:text contains " a " => notify`},
		{"substr on number", `now => @com.thecatapi.get filter param:image_id > 3 => notify`},
		{"varref unknown", `now => @com.thecatapi.get => @com.facebook.post_picture param:picture_url = param:nope`},
		{"varref type clash", `monitor ( @org.thingpedia.weather.current ) => @com.facebook.post_picture param:picture_url = param:temperature`},
		{"edge without monitor", `edge ( now ) on true => notify`},
		{"monitor on new unknown", `monitor ( @com.dropbox.list_folder ) on new param:nope => notify`},
		{"agg non-numeric", `now => agg sum param:file_name of ( @com.dropbox.list_folder ) => notify`},
		{"agg unknown param", `now => agg sum param:nope of ( @com.dropbox.list_folder ) => notify`},
		{"agg non-list", `now => agg count of ( @org.thingpedia.weather.current ) => notify`},
		{"join on non-input", `now => @com.nytimes.get_front_page join @com.yandex.translate on param:translated_text = param:title => notify`},
		{"join on unknown src", `now => @com.nytimes.get_front_page join @com.yandex.translate on param:text = param:nope => notify`},
	}
	for _, c := range cases {
		prog, err := ParseProgram(c.src)
		if err != nil {
			t.Fatalf("%s: parse error: %v", c.name, err)
		}
		if err := Typecheck(prog, schemas); err == nil {
			t.Errorf("%s: Typecheck(%q) should fail", c.name, c.src)
		}
	}
}

func TestTypecheckParamPassingStringLike(t *testing.T) {
	schemas := testSchemas()
	// URL output into URL input: exact.
	ok := `now => @com.thecatapi.get => @com.facebook.post_picture param:picture_url = param:picture_url`
	prog := mustParse(ok)
	if err := Typecheck(prog, schemas); err != nil {
		t.Errorf("url->url passing should typecheck: %v", err)
	}
	// String-like widening: tweet text (String) into translate text (String).
	ok2 := `monitor ( @com.twitter.timeline ) => @com.twitter.post param:status = param:text`
	if err := Typecheck(mustParse(ok2), schemas); err != nil {
		t.Errorf("string->string passing should typecheck: %v", err)
	}
}

func TestTypecheckRightmostWins(t *testing.T) {
	schemas := testSchemas()
	// Both timeline and translate output string-likes; "text" refers to the
	// right-most producer. translate has out translated_text and in text, so
	// "text" resolves to timeline's output even after the join.
	src := `now => @com.twitter.timeline join @com.yandex.translate on param:text = param:text => @com.twitter.post param:status = param:translated_text`
	if err := Typecheck(mustParse(src), schemas); err != nil {
		t.Errorf("join passing should typecheck: %v", err)
	}
}

func TestTypecheckExternalPredicate(t *testing.T) {
	schemas := testSchemas()
	src := `now => @com.twitter.timeline filter @org.thingpedia.weather.current { param:temperature > 25 unit:C } => notify`
	if err := Typecheck(mustParse(src), schemas); err != nil {
		t.Errorf("external predicate should typecheck: %v", err)
	}
	// Inner predicate sees only the external function's outputs.
	bad := `now => @com.twitter.timeline filter @org.thingpedia.weather.current { param:text == " x " } => notify`
	if err := Typecheck(mustParse(bad), schemas); err == nil {
		t.Error("external predicate should not see host outputs")
	}
}

func TestTypecheckSlots(t *testing.T) {
	schemas := testSchemas()
	prog := &Program{
		Stream: Now(),
		Query:  Invoke("com.thecatapi", "get", In("count", SlotValue(NumberType{}, 0))),
		Action: Notify(),
	}
	if err := Typecheck(prog, schemas); err != nil {
		t.Errorf("matching slot should typecheck: %v", err)
	}
	bad := &Program{
		Stream: Now(),
		Query:  Invoke("com.thecatapi", "get", In("count", SlotValue(StringType{}, 0))),
		Action: Notify(),
	}
	if err := Typecheck(bad, schemas); err == nil {
		t.Error("mismatched slot should fail")
	}
}

func TestQuickGeneratedProgramsTypecheck(t *testing.T) {
	schemas := testSchemas()
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		prog := genProgram(rng)
		if err := Typecheck(prog, schemas); err != nil {
			t.Logf("generated program failed typecheck: %v\n%s", err, prog)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidate(t *testing.T) {
	good := &FunctionSchema{
		Class: "a", Name: "q", Kind: KindQuery,
		Params: []ParamSpec{{Name: "x", Dir: DirOut, Type: StringType{}}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
	bads := []*FunctionSchema{
		{Class: "a", Name: "q", Kind: KindQuery, Params: []ParamSpec{
			{Name: "x", Dir: DirOut, Type: StringType{}}, {Name: "x", Dir: DirOut, Type: StringType{}}}},
		{Class: "a", Name: "q", Kind: KindQuery, Params: []ParamSpec{{Name: "x", Dir: DirInReq, Type: StringType{}}}},
		{Class: "a", Name: "a", Kind: KindAction, Params: []ParamSpec{{Name: "x", Dir: DirOut, Type: StringType{}}}},
		{Class: "a", Name: "a", Kind: KindAction, Monitor: true},
		{Class: "a", Name: "q", Kind: KindQuery, Params: []ParamSpec{{Name: "x", Dir: DirOut}}},
	}
	for i, b := range bads {
		if err := b.Validate(); err == nil {
			t.Errorf("invalid schema %d accepted", i)
		}
	}
}
