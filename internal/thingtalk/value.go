package thingtalk

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind discriminates the constant forms of the language.
type ValueKind int

// Value kinds.
const (
	// VString is a free-form word sequence (also used for PathName, URL and
	// Entity values; the parameter's declared type disambiguates).
	VString ValueKind = iota
	// VNumber is a dimensionless number literal.
	VNumber
	// VBool is a boolean literal.
	VBool
	// VMeasure is an additively-composed measure, e.g. 6ft + 3in.
	VMeasure
	// VEnum is an enum member reference, e.g. enum:ascending.
	VEnum
	// VDate is a named date edge (start_of_week, end_of_day, now, ...).
	VDate
	// VTime is a named time of day (morning, noon, evening, midnight).
	VTime
	// VLocation is a named location (location:home, location:work,
	// location:current).
	VLocation
	// VPlaceholder is a normalized argument placeholder produced by the
	// rule-based argument identifier: NUMBER_0, DATE_1, TIME_0, LOCATION_0,
	// CURRENCY_0. Strings are never placeholders; they stay as words so the
	// pointer network can copy them token by token.
	VPlaceholder
	// VVarRef is a reference to an output parameter of an earlier function
	// (parameter passing).
	VVarRef
	// VSlot is an unfilled typed slot emitted by the synthesizer and
	// replaced by the parameter-replacement stage; it never appears in a
	// final dataset.
	VSlot
)

// MeasureTerm is one addend of a measure value. Exactly one of Num or
// Placeholder is meaningful: if Placeholder is non-empty the magnitude is a
// normalized NUMBER_k token.
type MeasureTerm struct {
	Num         float64
	Placeholder string
	Unit        string
}

// Value is a ThingTalk constant or parameter reference.
//
// Value is a small sum type; the Kind field selects which other fields are
// meaningful. Values are immutable by convention: code that rewrites a value
// makes a copy.
type Value struct {
	Kind ValueKind

	// Words holds the tokens of a VString.
	Words []string
	// Num holds the magnitude of a VNumber.
	Num float64
	// Bool holds a VBool.
	Bool bool
	// Measures holds the addends of a VMeasure.
	Measures []MeasureTerm
	// Name holds the payload of VEnum (member name), VDate (edge name),
	// VTime (name), VLocation (name), VPlaceholder (token), VVarRef
	// (output parameter name), and the variable name of a VSlot written as
	// $name in a primitive template.
	Name string
	// SlotType and SlotID identify a VSlot; SlotParam records the input or
	// filter parameter the slot fills, which the parameter-replacement
	// stage uses to pick values from the right corpus.
	SlotType  Type
	SlotID    int
	SlotParam string
}

// Convenience constructors.

// StringValue builds a VString from words.
func StringValue(words ...string) Value { return Value{Kind: VString, Words: words} }

// NumberValue builds a VNumber.
func NumberValue(n float64) Value { return Value{Kind: VNumber, Num: n} }

// BoolValue builds a VBool.
func BoolValue(b bool) Value { return Value{Kind: VBool, Bool: b} }

// MeasureValue builds a single-term VMeasure.
func MeasureValue(n float64, unit string) Value {
	return Value{Kind: VMeasure, Measures: []MeasureTerm{{Num: n, Unit: unit}}}
}

// EnumValue builds a VEnum.
func EnumValue(name string) Value { return Value{Kind: VEnum, Name: name} }

// DateValue builds a VDate with a named edge.
func DateValue(name string) Value { return Value{Kind: VDate, Name: name} }

// TimeValue builds a VTime.
func TimeValue(name string) Value { return Value{Kind: VTime, Name: name} }

// LocationValue builds a VLocation.
func LocationValue(name string) Value { return Value{Kind: VLocation, Name: name} }

// PlaceholderValue builds a VPlaceholder from a normalized token such as
// NUMBER_0.
func PlaceholderValue(token string) Value { return Value{Kind: VPlaceholder, Name: token} }

// VarRefValue builds a VVarRef.
func VarRefValue(param string) Value { return Value{Kind: VVarRef, Name: param} }

// SlotValue builds a VSlot.
func SlotValue(t Type, id int) Value { return Value{Kind: VSlot, SlotType: t, SlotID: id} }

// NamedDates are the date edges the language understands without contextual
// information.
var NamedDates = []string{
	"now", "start_of_day", "end_of_day", "start_of_week", "end_of_week",
	"start_of_month", "end_of_month", "start_of_year", "end_of_year",
}

// NamedTimes are the symbolic times of day.
var NamedTimes = []string{"morning", "noon", "afternoon", "evening", "midnight"}

// NamedLocations are the symbolic locations.
var NamedLocations = []string{"home", "work", "current"}

// IsNamedDate reports whether s is a recognized date edge.
func IsNamedDate(s string) bool { return containsString(NamedDates, s) }

// IsNamedTime reports whether s is a recognized symbolic time.
func IsNamedTime(s string) bool { return containsString(NamedTimes, s) }

// IsNamedLocation reports whether s is a recognized symbolic location.
func IsNamedLocation(s string) bool { return containsString(NamedLocations, s) }

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// PlaceholderPrefixes maps the prefix of a normalized placeholder token to
// the type of value it stands for.
var PlaceholderPrefixes = map[string]ValueKind{
	"NUMBER":   VNumber,
	"DATE":     VDate,
	"TIME":     VTime,
	"LOCATION": VLocation,
	"CURRENCY": VNumber,
	"DURATION": VMeasure,
}

// PlaceholderKind returns the value kind a placeholder token stands for, or
// false if the token is not a placeholder (placeholders look like PREFIX_k).
func PlaceholderKind(token string) (ValueKind, bool) {
	i := strings.LastIndexByte(token, '_')
	if i <= 0 || i == len(token)-1 {
		return 0, false
	}
	if _, err := strconv.Atoi(token[i+1:]); err != nil {
		return 0, false
	}
	kind, ok := PlaceholderPrefixes[token[:i]]
	return kind, ok
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case VString:
		if len(v.Words) != len(o.Words) {
			return false
		}
		for i := range v.Words {
			if v.Words[i] != o.Words[i] {
				return false
			}
		}
		return true
	case VNumber:
		return v.Num == o.Num
	case VBool:
		return v.Bool == o.Bool
	case VMeasure:
		if len(v.Measures) != len(o.Measures) {
			return false
		}
		for i := range v.Measures {
			if v.Measures[i] != o.Measures[i] {
				return false
			}
		}
		return true
	case VEnum, VDate, VTime, VLocation, VPlaceholder, VVarRef:
		return v.Name == o.Name
	case VSlot:
		if (v.SlotType == nil) != (o.SlotType == nil) {
			return false
		}
		if v.SlotType != nil && !v.SlotType.Equal(o.SlotType) {
			return false
		}
		return v.SlotID == o.SlotID && v.Name == o.Name
	}
	return false
}

// String renders the value in canonical surface syntax. The rendering, split
// on spaces, is exactly the NN token sequence for the value.
func (v Value) String() string { return strings.Join(v.Tokens(), " ") }

// Tokens returns the canonical token sequence for the value.
func (v Value) Tokens() []string {
	switch v.Kind {
	case VString:
		toks := make([]string, 0, len(v.Words)+2)
		toks = append(toks, `"`)
		toks = append(toks, v.Words...)
		toks = append(toks, `"`)
		return toks
	case VNumber:
		return []string{formatNumber(v.Num)}
	case VBool:
		if v.Bool {
			return []string{"true"}
		}
		return []string{"false"}
	case VMeasure:
		var toks []string
		for i, m := range v.Measures {
			if i > 0 {
				toks = append(toks, "+")
			}
			if m.Placeholder != "" {
				toks = append(toks, m.Placeholder)
			} else {
				toks = append(toks, formatNumber(m.Num))
			}
			toks = append(toks, "unit:"+m.Unit)
		}
		return toks
	case VEnum:
		return []string{"enum:" + v.Name}
	case VDate:
		return []string{"date:" + v.Name}
	case VTime:
		return []string{"time:" + v.Name}
	case VLocation:
		return []string{"location:" + v.Name}
	case VPlaceholder:
		return []string{v.Name}
	case VVarRef:
		return []string{"param:" + v.Name}
	case VSlot:
		if v.Name != "" {
			return []string{"$" + v.Name}
		}
		return []string{fmt.Sprintf("__slot_%d", v.SlotID)}
	}
	return []string{"<invalid>"}
}

func formatNumber(n float64) string {
	return strconv.FormatFloat(n, 'g', -1, 64)
}

// CompareKey returns a deterministic sort key for the value; canonicalization
// uses it to order filter atoms and join operands.
func (v Value) CompareKey() string {
	return fmt.Sprintf("%02d:%s", v.Kind, v.String())
}

// TypeOf returns the most specific type derivable from the value alone
// (without the declared parameter type). String-like declared types accept
// VString; the typechecker handles that widening.
func (v Value) TypeOf() Type {
	switch v.Kind {
	case VString:
		return StringType{}
	case VNumber:
		return NumberType{}
	case VBool:
		return BoolType{}
	case VMeasure:
		if len(v.Measures) > 0 {
			return MeasureType{Unit: BaseUnit(v.Measures[0].Unit)}
		}
		return MeasureType{}
	case VEnum:
		return EnumType{Values: []string{v.Name}}
	case VDate:
		return DateType{}
	case VTime:
		return TimeType{}
	case VLocation:
		return LocationType{}
	case VPlaceholder:
		kind, ok := PlaceholderKind(v.Name)
		if !ok {
			return StringType{}
		}
		switch kind {
		case VNumber:
			if strings.HasPrefix(v.Name, "CURRENCY") {
				return CurrencyType{}
			}
			return NumberType{}
		case VDate:
			return DateType{}
		case VTime:
			return TimeType{}
		case VLocation:
			return LocationType{}
		case VMeasure:
			return MeasureType{Unit: "ms"}
		}
		return StringType{}
	case VSlot:
		if v.SlotType == nil {
			return StringType{}
		}
		return v.SlotType
	}
	return StringType{}
}
