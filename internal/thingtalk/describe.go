package thingtalk

import (
	"fmt"
	"strings"
)

// Describe renders a program as a canonical natural-language sentence so the
// assistant can confirm a parsed command before executing it (Section 1.1:
// "The VAPL code can also be converted back into a canonical natural
// language sentence to confirm the program before execution").
//
// The description uses the library's canonical function names when schemas
// is non-nil and falls back to selector spellings otherwise.
func Describe(p *Program, schemas SchemaSource) string {
	d := describer{schemas: schemas}
	return d.program(p)
}

type describer struct {
	schemas SchemaSource
}

func (d describer) program(p *Program) string {
	action := d.action(p.Action, p.Query)
	switch p.Stream.Kind {
	case StreamNow:
		return action
	default:
		return fmt.Sprintf("%s %s", action, d.stream(p.Stream))
	}
}

func (d describer) stream(s *Stream) string {
	switch s.Kind {
	case StreamNow:
		return "now"
	case StreamTimer:
		return fmt.Sprintf("every %s", d.value(s.Interval))
	case StreamAtTimer:
		return fmt.Sprintf("every day at %s", d.value(s.Time))
	case StreamMonitor:
		base := fmt.Sprintf("when %s change", d.query(s.Monitor))
		if len(s.MonitorOn) > 0 {
			base = fmt.Sprintf("when there are new %s in %s",
				strings.Join(humanizeAll(s.MonitorOn), " and "), d.query(s.Monitor))
		}
		return base
	case StreamEdge:
		return fmt.Sprintf("%s and %s", d.stream(s.Inner), d.predicate(s.Predicate))
	}
	return "<invalid stream>"
}

func (d describer) query(q *Query) string {
	switch q.Kind {
	case QueryInvocation:
		return d.invocation(q.Invocation)
	case QueryFilter:
		return fmt.Sprintf("%s if %s", d.query(q.Inner), d.predicate(q.Predicate))
	case QueryJoin:
		s := fmt.Sprintf("%s combined with %s", d.query(q.Inner), d.query(q.Right))
		if len(q.JoinParams) > 0 {
			var parts []string
			for _, ip := range q.JoinParams {
				parts = append(parts, fmt.Sprintf("the %s set to the %s",
					humanize(ip.Name), humanize(ip.Value.Name)))
			}
			s += " with " + strings.Join(parts, " and ")
		}
		return s
	case QueryAggregate:
		if q.AggOp == "count" {
			return fmt.Sprintf("the number of %s", d.query(q.Inner))
		}
		opNames := map[string]string{"max": "maximum", "min": "minimum", "sum": "total", "avg": "average"}
		return fmt.Sprintf("the %s %s of %s", opNames[q.AggOp], humanize(q.AggParam), d.query(q.Inner))
	}
	return "<invalid query>"
}

func (d describer) action(a *Action, q *Query) string {
	if a.Notify {
		if q == nil {
			return "notify me"
		}
		return fmt.Sprintf("get %s and notify me", d.query(q))
	}
	act := d.invocation(a.Invocation)
	if q == nil {
		return act
	}
	return fmt.Sprintf("get %s and then %s", d.query(q), act)
}

func (d describer) invocation(inv *Invocation) string {
	name := strings.ReplaceAll(inv.Function, "_", " ")
	if d.schemas != nil {
		if sch, ok := d.schemas.Schema(inv.Class, inv.Function); ok && sch.Canonical != "" {
			name = sch.Canonical
		}
	}
	s := fmt.Sprintf("%s on %s", name, classDisplay(inv.Class))
	for _, ip := range inv.In {
		s += fmt.Sprintf(" with %s %s", humanize(ip.Name), d.value(ip.Value))
	}
	return s
}

func (d describer) predicate(p *Predicate) string {
	switch p.Kind {
	case PredTrue:
		return "always"
	case PredFalse:
		return "never"
	case PredNot:
		return "not " + d.predicate(p.Children[0])
	case PredAnd:
		return joinClauses(d.describeAll(p.Children), " and ")
	case PredOr:
		return joinClauses(d.describeAll(p.Children), " or ")
	case PredAtom:
		return fmt.Sprintf("the %s %s %s", humanize(p.Param), opNL(p.Op), d.value(p.Value))
	case PredExternal:
		return fmt.Sprintf("%s matches %s", d.invocation(p.External), d.predicate(p.InnerPred))
	}
	return "<invalid predicate>"
}

func (d describer) describeAll(ps []*Predicate) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = d.predicate(p)
	}
	return out
}

func (d describer) value(v Value) string {
	switch v.Kind {
	case VString:
		return strings.Join(v.Words, " ")
	case VNumber:
		return formatNumber(v.Num)
	case VBool:
		if v.Bool {
			return "yes"
		}
		return "no"
	case VMeasure:
		var parts []string
		for _, m := range v.Measures {
			if m.Placeholder != "" {
				parts = append(parts, fmt.Sprintf("%s %s", m.Placeholder, m.Unit))
			} else {
				parts = append(parts, fmt.Sprintf("%s %s", formatNumber(m.Num), m.Unit))
			}
		}
		return strings.Join(parts, " and ")
	case VEnum:
		return strings.ReplaceAll(v.Name, "_", " ")
	case VDate:
		return strings.ReplaceAll(v.Name, "_", " ")
	case VTime:
		return v.Name
	case VLocation:
		if v.Name == "current" {
			return "my current location"
		}
		return v.Name
	case VPlaceholder:
		return v.Name
	case VVarRef:
		return "the " + humanize(v.Name)
	case VSlot:
		return fmt.Sprintf("<%s>", v.SlotType)
	}
	return "<invalid value>"
}

func opNL(op string) string {
	switch op {
	case OpEq:
		return "is"
	case OpGt:
		return "is greater than"
	case OpLt:
		return "is less than"
	case OpGe:
		return "is at least"
	case OpLe:
		return "is at most"
	case OpContains:
		return "contain"
	case OpSubstr:
		return "contains"
	case OpStartsWith:
		return "starts with"
	case OpEndsWith:
		return "ends with"
	}
	return op
}

func humanize(param string) string { return strings.ReplaceAll(param, "_", " ") }

func humanizeAll(params []string) []string {
	out := make([]string, len(params))
	for i, p := range params {
		out[i] = humanize(p)
	}
	return out
}

// classDisplay turns com.dropbox into "dropbox" for descriptions.
func classDisplay(class string) string {
	parts := strings.Split(class, ".")
	last := parts[len(parts)-1]
	if last == "builtin" && len(parts) > 1 {
		last = parts[len(parts)-2]
	}
	return last
}

func joinClauses(parts []string, sep string) string { return strings.Join(parts, sep) }
