package thingtalk

import (
	"fmt"
	"strings"
)

// Token encoding. The canonical surface syntax of a ThingTalk program is a
// sequence of whitespace-separated tokens; the same sequence is the target
// vocabulary of the neural semantic parser, so Encode followed by Parse is
// the identity on canonical programs.
//
// EncodeOptions expose the serialization ablations of Table 3: type
// annotations can be dropped, and keyword parameters can be replaced by
// positional parameters.

// EncodeOptions control program-to-token serialization.
type EncodeOptions struct {
	// TypeAnnotations appends ":Type" to parameter tokens when the type is
	// known (param:caption:String). This is the canonical form.
	TypeAnnotations bool
	// Positional replaces keyword parameters with positional parameters:
	// each invocation serializes every declared input parameter in
	// signature order, using "_" for absent ones. Requires Schemas.
	Positional bool
	// Schemas provides signatures for Positional mode.
	Schemas SchemaSource
}

// CanonicalEncode is the default encoding used throughout the pipeline.
var CanonicalEncode = EncodeOptions{TypeAnnotations: true}

// Tokens renders the program with canonical options.
func (p *Program) Tokens() []string { return p.Encode(CanonicalEncode) }

// Encode renders the program as its NN token sequence.
func (p *Program) Encode(opt EncodeOptions) []string {
	var e encoder
	e.opt = opt
	e.program(p)
	return e.out
}

type encoder struct {
	opt EncodeOptions
	out []string
}

func (e *encoder) emit(toks ...string) { e.out = append(e.out, toks...) }

func (e *encoder) program(p *Program) {
	e.stream(p.Stream)
	e.emit("=>")
	if p.Query != nil {
		e.query(p.Query, false)
		e.emit("=>")
	}
	e.action(p.Action)
}

func (e *encoder) stream(s *Stream) {
	switch s.Kind {
	case StreamNow:
		e.emit("now")
	case StreamTimer:
		e.emit("timer", "base", "=")
		e.value(s.Base)
		e.emit("interval", "=")
		e.value(s.Interval)
	case StreamAtTimer:
		e.emit("attimer", "time", "=")
		e.value(s.Time)
	case StreamMonitor:
		e.emit("monitor", "(")
		e.query(s.Monitor, false)
		e.emit(")")
		if len(s.MonitorOn) > 0 {
			e.emit("on", "new")
			for _, p := range s.MonitorOn {
				e.emit("param:" + p)
			}
		}
	case StreamEdge:
		e.emit("edge", "(")
		e.stream(s.Inner)
		e.emit(")", "on")
		e.predicate(s.Predicate, false)
	}
}

// query emits q; atomic controls whether compound forms are parenthesized
// (right operands of joins and nested groupings must be atomic).
func (e *encoder) query(q *Query, atomic bool) {
	switch q.Kind {
	case QueryInvocation:
		e.invocation(q.Invocation)
	case QueryFilter:
		if atomic {
			e.emit("(")
		}
		e.query(q.Inner, q.Inner.Kind == QueryJoin)
		e.emit("filter")
		e.predicate(q.Predicate, false)
		if atomic {
			e.emit(")")
		}
	case QueryJoin:
		if atomic {
			e.emit("(")
		}
		e.query(q.Inner, q.Inner.Kind == QueryFilter)
		e.emit("join")
		e.query(q.Right, true)
		if len(q.JoinParams) > 0 {
			e.emit("on")
			for _, ip := range q.JoinParams {
				e.inputParam(ip)
			}
		}
		if atomic {
			e.emit(")")
		}
	case QueryAggregate:
		e.emit("agg", q.AggOp)
		if q.AggParam != "" {
			e.emit("param:" + q.AggParam)
		}
		e.emit("of", "(")
		e.query(q.Inner, false)
		e.emit(")")
	}
}

func (e *encoder) action(a *Action) {
	if a.Notify {
		e.emit("notify")
		return
	}
	e.invocation(a.Invocation)
}

func (e *encoder) invocation(inv *Invocation) {
	e.emit(inv.Selector())
	if e.opt.Positional && e.opt.Schemas != nil {
		if sch, ok := e.opt.Schemas.Schema(inv.Class, inv.Function); ok {
			e.positionalParams(inv, sch)
			return
		}
	}
	for _, ip := range inv.In {
		e.inputParam(ip)
	}
}

func (e *encoder) positionalParams(inv *Invocation, sch *FunctionSchema) {
	e.emit("(")
	first := true
	for _, ps := range sch.Params {
		if ps.Dir == DirOut {
			continue
		}
		if !first {
			e.emit(",")
		}
		first = false
		found := false
		for _, ip := range inv.In {
			if ip.Name == ps.Name {
				e.value(ip.Value)
				found = true
				break
			}
		}
		if !found {
			e.emit("_")
		}
	}
	e.emit(")")
}

func (e *encoder) inputParam(ip InputParam) {
	e.emit(e.paramToken(ip.Name, ip.Type), "=")
	e.value(ip.Value)
}

func (e *encoder) paramToken(name string, t Type) string {
	if e.opt.TypeAnnotations && t != nil {
		return "param:" + name + ":" + t.String()
	}
	return "param:" + name
}

func (e *encoder) predicate(p *Predicate, nested bool) {
	switch p.Kind {
	case PredTrue:
		e.emit("true")
	case PredFalse:
		e.emit("false")
	case PredNot:
		e.emit("not")
		e.predicateAtomic(p.Children[0])
	case PredAnd:
		if nested {
			e.emit("(")
		}
		for i, ch := range p.Children {
			if i > 0 {
				e.emit("and")
			}
			e.predicateChild(ch, PredAnd)
		}
		if nested {
			e.emit(")")
		}
	case PredOr:
		if nested {
			e.emit("(")
		}
		for i, ch := range p.Children {
			if i > 0 {
				e.emit("or")
			}
			e.predicateChild(ch, PredOr)
		}
		if nested {
			e.emit(")")
		}
	case PredAtom:
		e.emit(e.paramToken(p.Param, p.ParamType), p.Op)
		e.value(p.Value)
	case PredExternal:
		e.invocation(p.External)
		e.emit("{")
		e.predicate(p.InnerPred, false)
		e.emit("}")
	}
}

// predicateChild emits a child of an and/or node, parenthesizing when the
// child binds less tightly than the parent ('and' binds tighter than 'or',
// so an Or child of an And needs parentheses — the CNF canonical shape).
func (e *encoder) predicateChild(ch *Predicate, parent PredKind) {
	switch ch.Kind {
	case PredAnd:
		if parent == PredOr {
			// And inside Or binds tighter; no parens needed.
			e.predicate(ch, false)
		} else {
			e.predicate(ch, true)
		}
	case PredOr:
		// Or inside And needs parens.
		e.predicate(ch, parent == PredAnd)
	default:
		e.predicate(ch, false)
	}
}

func (e *encoder) predicateAtomic(p *Predicate) {
	switch p.Kind {
	case PredAtom, PredTrue, PredFalse, PredExternal:
		e.predicate(p, false)
	default:
		e.emit("(")
		e.predicate(p, false)
		e.emit(")")
	}
}

func (e *encoder) value(v Value) {
	e.emit(v.Tokens()...)
}

// EncodeString renders the program as a single string with canonical options.
func EncodeString(p *Program) string { return strings.Join(p.Tokens(), " ") }

// Tokens renders a predicate alone (used for deduplication keys and
// diagnostics).
func (p *Predicate) Tokens() []string {
	var e encoder
	e.opt = CanonicalEncode
	e.predicate(p, false)
	return e.out
}

// SelectorParts splits an @class.function token.
func SelectorParts(sel string) (class, fn string, err error) {
	if !strings.HasPrefix(sel, "@") {
		return "", "", fmt.Errorf("thingtalk: invalid selector %q", sel)
	}
	body := sel[1:]
	i := strings.LastIndexByte(body, '.')
	if i <= 0 || i == len(body)-1 {
		return "", "", fmt.Errorf("thingtalk: invalid selector %q", sel)
	}
	return body[:i], body[i+1:], nil
}

// ParseParamToken splits a param:name[:Type] token into its name and
// optional type.
func ParseParamToken(tok string) (name string, typ Type, err error) {
	if !strings.HasPrefix(tok, "param:") {
		return "", nil, fmt.Errorf("thingtalk: invalid parameter token %q", tok)
	}
	rest := tok[len("param:"):]
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		name = rest[:i]
		typ, err = ParseType(rest[i+1:])
		if err != nil {
			return "", nil, err
		}
	} else {
		name = rest
	}
	if name == "" {
		return "", nil, fmt.Errorf("thingtalk: empty parameter name in %q", tok)
	}
	return name, typ, nil
}
