package thingtalk

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func canon(t *testing.T, src string) string {
	t.Helper()
	prog := mustParse(src)
	return strings.Join(Canonicalize(prog, testSchemas()).Encode(EncodeOptions{}), " ")
}

func TestCanonicalSortsInputParams(t *testing.T) {
	a := canon(t, `now => @com.thecatapi.get => @com.facebook.post_picture param:picture_url = param:picture_url param:caption = " hi "`)
	b := canon(t, `now => @com.thecatapi.get => @com.facebook.post_picture param:caption = " hi " param:picture_url = param:picture_url`)
	if a != b {
		t.Errorf("parameter order should not matter:\n a: %s\n b: %s", a, b)
	}
	if !strings.Contains(a, `param:caption = " hi " param:picture_url`) {
		t.Errorf("parameters not alphabetical: %s", a)
	}
}

func TestCanonicalMergesNestedFilters(t *testing.T) {
	a := canon(t, `now => ( @com.dropbox.list_folder filter param:file_size > 1 unit:MB ) filter param:is_folder == false => notify`)
	b := canon(t, `now => @com.dropbox.list_folder filter param:file_size > 1 unit:MB and param:is_folder == false => notify`)
	if a != b {
		t.Errorf("nested filters should merge:\n a: %s\n b: %s", a, b)
	}
}

func TestCanonicalOrdersCommutativeJoin(t *testing.T) {
	a := canon(t, `now => @com.thecatapi.get join @com.dropbox.list_folder => notify`)
	b := canon(t, `now => @com.dropbox.list_folder join @com.thecatapi.get => notify`)
	if a != b {
		t.Errorf("commutative join should canonicalize to one order:\n a: %s\n b: %s", a, b)
	}
}

func TestCanonicalKeepsJoinWithPassing(t *testing.T) {
	src := `now => @com.nytimes.get_front_page join @com.yandex.translate on param:text = param:title => notify`
	got := canon(t, src)
	if !strings.HasPrefix(got, "now => @com.nytimes.get_front_page join") {
		t.Errorf("join with parameter passing must not be reordered: %s", got)
	}
}

func TestCanonicalBooleanSimplification(t *testing.T) {
	// x and x -> x
	a := canon(t, `now => @com.dropbox.list_folder filter param:is_folder == true and param:is_folder == true => notify`)
	b := canon(t, `now => @com.dropbox.list_folder filter param:is_folder == true => notify`)
	if a != b {
		t.Errorf("duplicate conjuncts should collapse:\n a: %s\n b: %s", a, b)
	}
	// not(not x) -> x
	c := canon(t, `now => @com.dropbox.list_folder filter not not param:is_folder == true => notify`)
	if c != b {
		t.Errorf("double negation should cancel:\n c: %s\n b: %s", c, b)
	}
	// not (x > v) -> x <= v
	d := canon(t, `now => @com.dropbox.list_folder filter not param:file_size > 1 unit:MB => notify`)
	if !strings.Contains(d, "param:file_size <= 1 unit:MB") {
		t.Errorf("negated comparison should flip operator: %s", d)
	}
	// true conjunct disappears.
	e := canon(t, `now => @com.dropbox.list_folder filter true and param:is_folder == true => notify`)
	if e != b {
		t.Errorf("true conjunct should vanish:\n e: %s\n b: %s", e, b)
	}
	// Filter true disappears entirely.
	f := canon(t, `now => @com.dropbox.list_folder filter true => notify`)
	g := canon(t, `now => @com.dropbox.list_folder => notify`)
	if f != g {
		t.Errorf("filter true should be dropped:\n f: %s\n g: %s", f, g)
	}
}

func TestCanonicalCNF(t *testing.T) {
	// a or (b and c) -> (a or b) and (a or c)
	a := canon(t, `now => @com.dropbox.list_folder filter param:is_folder == true or ( param:file_size > 1 unit:MB and param:file_name starts_with " x " ) => notify`)
	if strings.Count(a, " and ") != 1 || strings.Count(a, " or ") != 2 {
		t.Errorf("expected CNF with 2 clauses: %s", a)
	}
	// Commuted disjuncts canonicalize identically.
	b := canon(t, `now => @com.dropbox.list_folder filter ( param:file_name starts_with " x " and param:file_size > 1 unit:MB ) or param:is_folder == true => notify`)
	if a != b {
		t.Errorf("commuted predicate should canonicalize identically:\n a: %s\n b: %s", a, b)
	}
}

func TestCanonicalTautologyAndContradiction(t *testing.T) {
	// x or not x -> true -> filter dropped.
	a := canon(t, `now => @com.dropbox.list_folder filter param:file_size > 1 unit:MB or not param:file_size > 1 unit:MB => notify`)
	b := canon(t, `now => @com.dropbox.list_folder => notify`)
	if a != b {
		t.Errorf("tautology should drop filter:\n a: %s\n b: %s", a, b)
	}
	// Absorption: a and (a or b) -> a.
	c := canon(t, `now => @com.dropbox.list_folder filter param:is_folder == true and ( param:is_folder == true or param:file_size > 1 unit:MB ) => notify`)
	d := canon(t, `now => @com.dropbox.list_folder filter param:is_folder == true => notify`)
	if c != d {
		t.Errorf("absorption failed:\n c: %s\n d: %s", c, d)
	}
}

func TestCanonicalFilterPushdown(t *testing.T) {
	// The filter references only list_folder outputs, so it moves onto the
	// left-most function that defines them.
	a := canon(t, `now => ( @com.dropbox.list_folder join @com.thecatapi.get ) filter param:file_size > 1 unit:MB => notify`)
	b := canon(t, `now => ( @com.dropbox.list_folder filter param:file_size > 1 unit:MB ) join @com.thecatapi.get => notify`)
	if a != b {
		t.Errorf("filter should push into join operand:\n a: %s\n b: %s", a, b)
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	schemas := testSchemas()
	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		prog := genProgram(rng)
		if err := Typecheck(prog, schemas); err != nil {
			return true // generator invariant checked elsewhere
		}
		once := Canonicalize(prog, schemas)
		twice := Canonicalize(once, schemas)
		a := strings.Join(once.Tokens(), " ")
		b := strings.Join(twice.Tokens(), " ")
		if a != b {
			t.Logf("not idempotent:\n 1: %s\n 2: %s", a, b)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalPreservesTypechecking(t *testing.T) {
	schemas := testSchemas()
	rng := rand.New(rand.NewSource(123))
	f := func() bool {
		prog := genProgram(rng)
		if err := Typecheck(prog, schemas); err != nil {
			return true
		}
		c := Canonicalize(prog, schemas)
		if err := Typecheck(c, schemas); err != nil {
			t.Logf("canonical form fails typecheck: %v\nfrom: %s\n  to: %s", err, prog, c)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalDoesNotMutateInput(t *testing.T) {
	src := `now => @com.facebook.post_picture param:picture_url = " x " param:caption = " hi "`
	prog := mustParse(src)
	before := strings.Join(prog.Encode(EncodeOptions{}), " ")
	Canonicalize(prog, testSchemas())
	after := strings.Join(prog.Encode(EncodeOptions{}), " ")
	if before != after {
		t.Errorf("Canonicalize mutated its input:\nbefore: %s\n after: %s", before, after)
	}
}

func TestCanonicalRoundTripsThroughParser(t *testing.T) {
	schemas := testSchemas()
	rng := rand.New(rand.NewSource(77))
	f := func() bool {
		prog := genProgram(rng)
		if err := Typecheck(prog, schemas); err != nil {
			return true
		}
		c := Canonicalize(prog, schemas)
		toks := c.Tokens()
		parsed, err := ParseTokens(toks, ParseOptions{})
		if err != nil {
			t.Logf("canonical form unparseable: %v\n%s", err, strings.Join(toks, " "))
			return false
		}
		if !SameProgram(c, parsed, schemas) {
			t.Logf("canonical round trip changed program:\n a: %s\n b: %s", c, parsed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSameProgram(t *testing.T) {
	schemas := testSchemas()
	a := mustParse(`now => @com.facebook.post_picture param:picture_url = " x " param:caption = " hi "`)
	b := mustParse(`now => @com.facebook.post_picture param:caption = " hi " param:picture_url = " x "`)
	if !SameProgram(a, b, schemas) {
		t.Error("programs differing only in parameter order should compare equal")
	}
	c := mustParse(`now => @com.facebook.post_picture param:caption = " bye " param:picture_url = " x "`)
	if SameProgram(a, c, schemas) {
		t.Error("different captions should not compare equal")
	}
}
