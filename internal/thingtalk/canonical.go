package thingtalk

import (
	"sort"
	"strings"
)

// Canonicalize returns the canonical form of a program (Section 2.4).
// Canonicalization is the property that makes neural output checkable by
// exact match: semantically equivalent programs have one spelling.
//
// The transformation rules:
//   - input parameters are listed in alphabetical order;
//   - nested filter applications collapse into a single conjunction;
//   - boolean predicates are simplified, converted to conjunctive normal
//     form, deduplicated (with absorption), and sorted;
//   - joins without parameter passing are commutative and are ordered
//     lexically;
//   - each filter clause moves to the left-most function that defines all
//     the output parameters it references (requires schemas; skipped when
//     schemas is nil).
//
// The input program is not modified; the result is a fresh tree.
func Canonicalize(p *Program, schemas SchemaSource) *Program {
	c := canonicalizer{schemas: schemas}
	out := p.Clone()
	out.Stream = c.stream(out.Stream)
	if out.Query != nil {
		out.Query = c.query(out.Query)
	}
	if out.Action != nil && out.Action.Invocation != nil {
		c.invocation(out.Action.Invocation)
	}
	return out
}

// SameProgram reports whether two programs have identical canonical forms.
func SameProgram(a, b *Program, schemas SchemaSource) bool {
	if a == nil || b == nil {
		return a == b
	}
	ca := strings.Join(Canonicalize(a, schemas).Tokens(), " ")
	cb := strings.Join(Canonicalize(b, schemas).Tokens(), " ")
	return ca == cb
}

type canonicalizer struct {
	schemas SchemaSource
}

func (c canonicalizer) stream(s *Stream) *Stream {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case StreamMonitor:
		s.Monitor = c.query(s.Monitor)
		sort.Strings(s.MonitorOn)
	case StreamEdge:
		s.Inner = c.stream(s.Inner)
		s.Predicate = c.normalizePredicate(s.Predicate)
	}
	return s
}

func (c canonicalizer) query(q *Query) *Query {
	if q == nil {
		return nil
	}
	switch q.Kind {
	case QueryInvocation:
		c.invocation(q.Invocation)
		return q
	case QueryFilter:
		inner := c.query(q.Inner)
		// Collapse nested filters into one conjunction.
		pred := q.Predicate
		for inner.Kind == QueryFilter {
			pred = And(inner.Predicate, pred)
			inner = inner.Inner
		}
		pred = c.normalizePredicate(pred)
		if pred.Kind == PredTrue {
			return inner
		}
		// Push CNF clauses to the left-most operand that defines all the
		// referenced output parameters.
		if c.schemas != nil && inner.Kind == QueryJoin {
			var remaining []*Predicate
			for _, clause := range splitConjuncts(pred) {
				if !c.pushClause(inner, clause) {
					remaining = append(remaining, clause)
				}
			}
			if len(remaining) == 0 {
				return c.query(inner)
			}
			pred = c.normalizePredicate(conjoin(remaining))
			inner = c.query(inner)
		}
		return &Query{Kind: QueryFilter, Inner: inner, Predicate: pred}
	case QueryJoin:
		q.Inner = c.query(q.Inner)
		q.Right = c.query(q.Right)
		sortInputParams(q.JoinParams)
		if len(q.JoinParams) == 0 && !queryUsesVarRefs(q.Right) {
			// Commutative: order operands lexically.
			li := strings.Join(q.Inner.encodeForOrder(), " ")
			ri := strings.Join(q.Right.encodeForOrder(), " ")
			if ri < li && !queryUsesVarRefs(q.Inner) {
				q.Inner, q.Right = q.Right, q.Inner
			}
		}
		return q
	case QueryAggregate:
		q.Inner = c.query(q.Inner)
		return q
	}
	return q
}

// encodeForOrder renders the query for lexical comparison.
func (q *Query) encodeForOrder() []string {
	var e encoder
	e.opt = EncodeOptions{}
	e.query(q, false)
	return e.out
}

func queryUsesVarRefs(q *Query) bool {
	if q == nil {
		return false
	}
	for _, inv := range q.invocations() {
		for _, ip := range inv.In {
			if ip.Value.Kind == VVarRef {
				return true
			}
		}
	}
	return false
}

// pushClause attempts to move one CNF clause into an operand of a join tree;
// it reports whether the clause was placed.
func (c canonicalizer) pushClause(q *Query, clause *Predicate) bool {
	if q.Kind != QueryJoin {
		return false
	}
	params := clauseParams(clause)
	if len(params) == 0 {
		return false
	}
	if c.coveredBy(q.Inner, params) {
		q.Inner = c.attachClause(q.Inner, clause)
		return true
	}
	if c.coveredBy(q.Right, params) {
		q.Right = c.attachClause(q.Right, clause)
		return true
	}
	return false
}

// attachClause conjoins clause onto q as a filter (merging with an existing
// one); the result is re-canonicalized by the caller.
func (c canonicalizer) attachClause(q *Query, clause *Predicate) *Query {
	if q.Kind == QueryJoin && c.pushClause(q, clause) {
		return q
	}
	if q.Kind == QueryFilter {
		q.Predicate = And(q.Predicate, clause)
		return q
	}
	return &Query{Kind: QueryFilter, Inner: q, Predicate: clause}
}

// coveredBy reports whether every parameter in params is an output of q.
func (c canonicalizer) coveredBy(q *Query, params []string) bool {
	outs := c.outNames(q)
	for _, p := range params {
		if !outs[p] {
			return false
		}
	}
	return true
}

func (c canonicalizer) outNames(q *Query) map[string]bool {
	outs := map[string]bool{}
	for _, inv := range q.invocations() {
		sch, ok := c.schemas.Schema(inv.Class, inv.Function)
		if !ok {
			continue
		}
		for _, ps := range sch.OutParams() {
			outs[ps.Name] = true
		}
	}
	if q.Kind == QueryAggregate {
		outs = map[string]bool{}
		if q.AggOp == "count" {
			outs["count"] = true
		} else {
			outs[q.AggParam] = true
		}
	}
	return outs
}

// clauseParams returns the output parameters referenced by a CNF clause.
func clauseParams(p *Predicate) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(*Predicate)
	walk = func(p *Predicate) {
		if p == nil {
			return
		}
		switch p.Kind {
		case PredAtom:
			if !seen[p.Param] {
				seen[p.Param] = true
				out = append(out, p.Param)
			}
		case PredExternal:
			// External predicates reference their own function's outputs
			// internally; they have no free parameters of the host query.
		default:
			for _, ch := range p.Children {
				walk(ch)
			}
		}
	}
	walk(p)
	return out
}

func (c canonicalizer) invocation(inv *Invocation) {
	if inv == nil {
		return
	}
	sortInputParams(inv.In)
}

func sortInputParams(in []InputParam) {
	sort.SliceStable(in, func(i, j int) bool { return in[i].Name < in[j].Name })
}

// --- Predicate normalization -------------------------------------------------

// normalizePredicate simplifies p, converts it to conjunctive normal form,
// and orders clauses and atoms deterministically.
func (c canonicalizer) normalizePredicate(p *Predicate) *Predicate {
	if p == nil {
		return True()
	}
	p = c.toNNF(p, false)
	clauses := cnf(p)
	clauses = normalizeClauses(clauses)
	switch {
	case clauses == nil:
		return True()
	case len(clauses) == 0:
		return False()
	}
	conj := make([]*Predicate, 0, len(clauses))
	for _, cl := range clauses {
		if len(cl) == 1 {
			conj = append(conj, cl[0])
		} else {
			conj = append(conj, Or(cl...))
		}
	}
	if len(conj) == 1 {
		return conj[0]
	}
	return And(conj...)
}

// toNNF pushes negations onto atoms, eliminating double negation and using
// complementary comparison operators where available. neg indicates whether
// the current subtree is under an odd number of negations.
func (c canonicalizer) toNNF(p *Predicate, neg bool) *Predicate {
	switch p.Kind {
	case PredTrue:
		if neg {
			return False()
		}
		return True()
	case PredFalse:
		if neg {
			return True()
		}
		return False()
	case PredNot:
		return c.toNNF(p.Children[0], !neg)
	case PredAnd, PredOr:
		children := make([]*Predicate, len(p.Children))
		for i, ch := range p.Children {
			children[i] = c.toNNF(ch, neg)
		}
		kind := p.Kind
		if neg { // De Morgan
			if kind == PredAnd {
				kind = PredOr
			} else {
				kind = PredAnd
			}
		}
		return &Predicate{Kind: kind, Children: children}
	case PredAtom:
		if !neg {
			return p
		}
		if flipped, ok := negatedOp(p.Op); ok {
			q := p.Clone()
			q.Op = flipped
			return q
		}
		return Not(p)
	case PredExternal:
		q := p.Clone()
		q.InnerPred = c.normalizePredicate(q.InnerPred)
		if neg {
			return Not(q)
		}
		return q
	}
	return p
}

// cnf converts an NNF predicate into a list of clauses (each clause a list
// of literals). nil means "true" (no constraints); an empty clause means
// "false".
func cnf(p *Predicate) [][]*Predicate {
	switch p.Kind {
	case PredTrue:
		return nil
	case PredFalse:
		return [][]*Predicate{{}}
	case PredAnd:
		var out [][]*Predicate
		for _, ch := range p.Children {
			out = append(out, cnf(ch)...)
		}
		return out
	case PredOr:
		// Distribute: the cross product of the children's clause sets.
		acc := [][]*Predicate{{}}
		for _, ch := range p.Children {
			chClauses := cnf(ch)
			if chClauses == nil { // true short-circuits the disjunction
				return nil
			}
			var next [][]*Predicate
			for _, a := range acc {
				for _, b := range chClauses {
					merged := make([]*Predicate, 0, len(a)+len(b))
					merged = append(merged, a...)
					merged = append(merged, b...)
					next = append(next, merged)
				}
			}
			acc = next
		}
		return acc
	default:
		return [][]*Predicate{{p}}
	}
}

// normalizeClauses sorts and deduplicates literals and clauses, removes
// tautological clauses, and applies absorption. Returning nil means true;
// returning an empty non-nil slice means false.
func normalizeClauses(clauses [][]*Predicate) [][]*Predicate {
	if clauses == nil {
		return nil
	}
	type keyed struct {
		key   string
		atoms []*Predicate
		keys  map[string]bool
	}
	var kept []keyed
	hasFalse := false
	for _, cl := range clauses {
		if len(cl) == 0 {
			hasFalse = true
			break
		}
		// Dedup literals and detect tautologies (x or not x).
		keys := map[string]bool{}
		var atoms []*Predicate
		taut := false
		for _, lit := range cl {
			k := litKey(lit)
			if keys[k] {
				continue
			}
			if keys[complementKey(lit)] {
				taut = true
				break
			}
			keys[k] = true
			atoms = append(atoms, lit)
		}
		if taut {
			continue
		}
		sort.Slice(atoms, func(i, j int) bool { return litKey(atoms[i]) < litKey(atoms[j]) })
		allKeys := make([]string, len(atoms))
		for i, a := range atoms {
			allKeys[i] = litKey(a)
		}
		kept = append(kept, keyed{key: strings.Join(allKeys, "|"), atoms: atoms, keys: keys})
	}
	if hasFalse {
		return [][]*Predicate{}
	}
	if len(kept) == 0 {
		return nil // all clauses were tautologies: true
	}
	// Dedup clauses.
	sort.Slice(kept, func(i, j int) bool {
		if len(kept[i].atoms) != len(kept[j].atoms) {
			return len(kept[i].atoms) < len(kept[j].atoms)
		}
		return kept[i].key < kept[j].key
	})
	var uniq []keyed
	seen := map[string]bool{}
	for _, k := range kept {
		if !seen[k.key] {
			seen[k.key] = true
			uniq = append(uniq, k)
		}
	}
	// Absorption: a clause that is a superset of another clause is redundant.
	var out [][]*Predicate
	for i, k := range uniq {
		absorbed := false
		for j, smaller := range uniq {
			if i == j || len(smaller.atoms) >= len(k.atoms) {
				continue
			}
			subset := true
			for key := range smaller.keys {
				if !k.keys[key] {
					subset = false
					break
				}
			}
			if subset {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, k.atoms)
		}
	}
	return out
}

// litKey is a deterministic key for a CNF literal.
func litKey(p *Predicate) string {
	var e encoder
	e.opt = EncodeOptions{}
	e.predicate(p, false)
	return strings.Join(e.out, " ")
}

// complementKey returns the key of the literal's direct negation, for
// tautology detection.
func complementKey(p *Predicate) string {
	switch p.Kind {
	case PredNot:
		return litKey(p.Children[0])
	case PredAtom:
		if flipped, ok := negatedOp(p.Op); ok {
			q := *p
			q.Op = flipped
			return litKey(&q)
		}
		return litKey(Not(p))
	default:
		return litKey(Not(p))
	}
}

func splitConjuncts(p *Predicate) []*Predicate {
	if p.Kind == PredAnd {
		return p.Children
	}
	return []*Predicate{p}
}

func conjoin(ps []*Predicate) *Predicate {
	switch len(ps) {
	case 0:
		return True()
	case 1:
		return ps[0]
	}
	return And(ps...)
}
