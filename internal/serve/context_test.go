package serve

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ctxFakeParser is a contextual decode surface with fully observable
// behavior: plain decodes echo the words, contextual decodes prepend the
// context's first token, and — mirroring *model.Parser's contract — the
// batched contextual calls panic on any row with an empty context, so a
// mis-partitioned window fails loudly.
type ctxFakeParser struct {
	batchCalls    atomic.Int64 // ParseBatch windows
	ctxBatchCalls atomic.Int64 // ParseBatchContext windows
	ctxCalls      atomic.Int64 // per-request contextual decodes
}

func plainOut(words []string) []string { return append([]string{"plain"}, words...) }

func ctxOut(words, ctx []string) []string {
	return append([]string{"ctx", ctx[0]}, words...)
}

func (p *ctxFakeParser) Parse(words []string) []string            { return plainOut(words) }
func (p *ctxFakeParser) ParseBeam(words []string, _ int) []string { return plainOut(words) }
func (p *ctxFakeParser) ParseBatch(sentences [][]string) [][]string {
	p.batchCalls.Add(1)
	out := make([][]string, len(sentences))
	for i, s := range sentences {
		out[i] = plainOut(s)
	}
	return out
}
func (p *ctxFakeParser) ParseBeamBatch(sentences [][]string, _ int) [][]string {
	return p.ParseBatch(sentences)
}
func (p *ctxFakeParser) ParseContext(words, ctx []string) []string {
	if len(ctx) == 0 {
		return plainOut(words)
	}
	p.ctxCalls.Add(1)
	return ctxOut(words, ctx)
}
func (p *ctxFakeParser) ParseContextScored(words, ctx []string, _ int) ([]string, float64) {
	return p.ParseContext(words, ctx), 0.5
}
func (p *ctxFakeParser) ParseBatchContext(sentences, contexts [][]string) [][]string {
	p.ctxBatchCalls.Add(1)
	out := make([][]string, len(sentences))
	for i := range sentences {
		if len(contexts[i]) == 0 {
			panic("serve_test: empty context row reached ParseBatchContext")
		}
		out[i] = ctxOut(sentences[i], contexts[i])
	}
	return out
}
func (p *ctxFakeParser) ParseBatchContextScored(sentences, contexts [][]string) ([][]string, []float64) {
	outs := p.ParseBatchContext(sentences, contexts)
	return outs, make([]float64, len(outs))
}
func (p *ctxFakeParser) Contextual() bool { return true }

// TestBatcherPartitionsContextWindows gathers mixed single-turn and
// contextual traffic into shared windows and checks the partition: plain
// rows decode through the plain batched surface, contextual rows through the
// contextual one (whose model-layer contract panics on empty-context rows),
// and every request gets the answer its own context implies.
func TestBatcherPartitionsContextWindows(t *testing.T) {
	p := &ctxFakeParser{}
	b := NewBatcher(p, Options{MaxBatch: 8, MaxWait: 20 * time.Millisecond, Workers: 2, MaxQueue: -1})
	defer b.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([][]string, n)
	want := make([][]string, n)
	for i := 0; i < n; i++ {
		words := []string{"w", string(rune('a' + i%26))}
		var prior []string
		if i%2 == 1 {
			prior = []string{"prev", string(rune('a' + i%26))}
			want[i] = ctxOut(words, prior)
		} else {
			want[i] = plainOut(words)
		}
		wg.Add(1)
		go func(i int, words, prior []string) {
			defer wg.Done()
			got[i], errs[i] = b.ParseContextCtx(context.Background(), words, prior)
		}(i, words, prior)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if strings.Join(got[i], " ") != strings.Join(want[i], " ") {
			t.Errorf("request %d = %v, want %v", i, got[i], want[i])
		}
	}
	if p.ctxBatchCalls.Load() == 0 && p.ctxCalls.Load() == 0 {
		t.Error("no contextual decode ever ran")
	}
	if st := b.Stats(); st.Requests != n || st.Failed != 0 {
		t.Errorf("stats = %+v, want %d requests and no failures", st, n)
	}
}

// TestParseContextCtxWithoutSurface: on a parser without the contextual
// surfaces, a context-carrying request decodes single-turn — the serving
// layer never breaks on a pre-contextual snapshot.
// plainOnlyParser has no contextual (or batched) surface at all.
type plainOnlyParser struct{}

func (plainOnlyParser) Parse(words []string) []string            { return plainOut(words) }
func (plainOnlyParser) ParseBeam(words []string, _ int) []string { return plainOut(words) }

func TestParseContextCtxWithoutSurface(t *testing.T) {
	b := NewBatcher(plainOnlyParser{}, Options{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 1, MaxQueue: -1})
	defer b.Close()
	words := []string{"hello", "world"}
	plain, err := b.ParseCtx(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := b.ParseContextCtx(context.Background(), words, []string{"now", "=>", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(plain, " ") != strings.Join(withCtx, " ") {
		t.Errorf("context request diverged on non-contextual parser: %v != %v", withCtx, plain)
	}
	if b.Contextual() {
		t.Error("Contextual() = true for a parser without the surface")
	}
}

// TestParseContextScoredCtx: scored contextual requests flow through the
// contextual scored surface.
func TestParseContextScoredCtx(t *testing.T) {
	p := &ctxFakeParser{}
	b := NewBatcher(p, Options{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 1, MaxQueue: -1})
	defer b.Close()
	toks, score, err := b.ParseContextScoredCtx(context.Background(), []string{"w"}, []string{"prev"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(toks, " ") != "ctx prev w" || score != 0.5 {
		t.Errorf("scored contextual decode = %v (%v)", toks, score)
	}
	if !b.Contextual() {
		t.Error("Contextual() = false for a contextual parser")
	}
}
