// Package serve is the parser-serving layer: it turns a trained
// model.Parser — a pure function after training — into a long-lived service.
// It provides request micro-batching over a decode worker pool (Batcher),
// where a gathered window decodes as one batched forward per decode step
// (model.Parser.ParseBatch/ParseBeamBatch: all requests' hypotheses advance
// in lockstep as rows of B×n tensors), an HTTP JSON front end (Server) with
// a matching Client, and a trained-snapshot cache keyed by the Thingpedia
// skill-library checksum (Cache), so re-serving an unchanged library skips
// training entirely.
//
// The layer leans on two properties established in internal/model: decoding
// is concurrency-safe (all decode state lives in pooled per-call contexts,
// so one Parser serves every worker goroutine), and parsers round-trip
// through versioned binary snapshots bit-identically (model.Save/Load).
package serve

import (
	"context"
	"errors"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parser is the decoding surface the serving layer needs; *model.Parser
// implements it.
type Parser interface {
	Parse(words []string) []string
	ParseBeam(words []string, width int) []string
}

// BatchParser is the batched decoding surface; *model.Parser implements it.
// When the Batcher's parser does, each gathered window decodes as one
// batched forward per decode step — the window's sentences (or beams)
// advance in lockstep as rows of stacked tensors — instead of fanning each
// request to its own worker, so micro-batching buys matmul width on top of
// queueing.
type BatchParser interface {
	ParseBatch(sentences [][]string) [][]string
	ParseBeamBatch(sentences [][]string, width int) [][]string
}

// Options tune the serving layer.
type Options struct {
	// MaxBatch is the most requests gathered into one decode batch
	// (default 8).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is dispatched anyway (default 2ms).
	MaxWait time.Duration
	// Workers is the decode worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Beam is the beam width (<= 1 decodes greedily).
	Beam int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = goruntime.GOMAXPROCS(0)
	}
	return o
}

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: batcher closed")

type request struct {
	words []string
	reply chan []string
}

// Batcher gathers incoming parse requests into micro-batches — up to
// MaxBatch requests or MaxWait, whichever comes first — and decodes each
// batch on a fixed worker pool. When the parser supports batched decoding
// (BatchParser, which *model.Parser does), a worker decodes its whole batch
// in one lockstep batched call; otherwise it falls back to per-request
// decoding. Because decoding is concurrency-safe, all workers share the one
// trained parser, and distinct batches still decode concurrently.
type Batcher struct {
	opt    Options
	parser Parser
	bp     BatchParser // non-nil when parser supports batched decode

	in   chan request
	jobs chan []request
	done chan struct{}

	closeOnce sync.Once
	wg        sync.WaitGroup

	requests atomic.Int64
	batches  atomic.Int64
}

// NewBatcher starts the gather loop and the worker pool.
func NewBatcher(p Parser, opt Options) *Batcher {
	opt = opt.withDefaults()
	b := &Batcher{
		opt:    opt,
		parser: p,
		in:     make(chan request),
		jobs:   make(chan []request, max(opt.Workers, opt.MaxBatch)),
		done:   make(chan struct{}),
	}
	b.bp, _ = p.(BatchParser)
	b.wg.Add(1)
	go b.gather()
	for w := 0; w < opt.Workers; w++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// gather is the micro-batching loop: the first request opens a batch and
// starts the MaxWait timer; the batch is dispatched when full or when the
// timer fires.
func (b *Batcher) gather() {
	defer b.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first request
		select {
		case first = <-b.in:
		case <-b.done:
			close(b.jobs)
			return
		}
		batch := make([]request, 1, b.opt.MaxBatch)
		batch[0] = first
		timer.Reset(b.opt.MaxWait)
	fill:
		for len(batch) < b.opt.MaxBatch {
			select {
			case r := <-b.in:
				batch = append(batch, r)
			case <-timer.C:
				break fill
			case <-b.done:
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.batches.Add(1)
		b.requests.Add(int64(len(batch)))
		if b.bp != nil {
			b.jobs <- batch
		} else {
			// No batched decode surface: fan the window's requests across
			// the worker pool as before, instead of serializing them on one
			// worker.
			for _, r := range batch {
				b.jobs <- []request{r}
			}
		}
		select {
		case <-b.done:
			close(b.jobs)
			return
		default:
		}
	}
}

func (b *Batcher) worker() {
	defer b.wg.Done()
	for batch := range b.jobs {
		if b.bp != nil && len(batch) > 1 {
			sentences := make([][]string, len(batch))
			for i, r := range batch {
				sentences[i] = r.words
			}
			var outs [][]string
			if b.opt.Beam > 1 {
				outs = b.bp.ParseBeamBatch(sentences, b.opt.Beam)
			} else {
				outs = b.bp.ParseBatch(sentences)
			}
			for i, r := range batch {
				r.reply <- outs[i]
			}
			continue
		}
		for _, r := range batch {
			r.reply <- b.decode(r.words)
		}
	}
}

func (b *Batcher) decode(words []string) []string {
	if b.opt.Beam > 1 {
		return b.parser.ParseBeam(words, b.opt.Beam)
	}
	return b.parser.Parse(words)
}

// ParseCtx submits one sentence through the batching path and waits for its
// program tokens.
func (b *Batcher) ParseCtx(ctx context.Context, words []string) ([]string, error) {
	r := request{words: words, reply: make(chan []string, 1)}
	select {
	case b.in <- r:
	case <-b.done:
		return nil, ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case out := <-r.reply:
		return out, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Parse implements eval.Decoder over the batched path, so eval.Evaluate and
// eval.EvaluateParallel can score a served parser exactly like a local one.
// A closed batcher decodes to nil (scored as wrong).
func (b *Batcher) Parse(words []string) []string {
	out, err := b.ParseCtx(context.Background(), words)
	if err != nil {
		return nil
	}
	return out
}

// Stats reports served traffic; Requests/Batches is the realized mean batch
// size.
type Stats struct {
	Requests int64
	Batches  int64
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() Stats {
	return Stats{Requests: b.requests.Load(), Batches: b.batches.Load()}
}

// Close drains the workers and rejects further requests.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.done) })
	b.wg.Wait()
}
