// Package serve is the parser-serving layer: it turns a trained
// model.Parser — a pure function after training — into a long-lived service.
// It provides request micro-batching over a decode worker pool (Batcher)
// with bounded-queue admission control and graceful drain, where a gathered
// window decodes as one batched forward per decode step
// (model.Parser.ParseBatch/ParseBeamBatch: all requests' hypotheses advance
// in lockstep as rows of B×n tensors), an HTTP JSON front end (Server) with
// a matching Client, and a trained-snapshot cache keyed by the Thingpedia
// skill-library checksum (Cache), so re-serving an unchanged library skips
// training entirely. The multi-skill fleet control plane (internal/fleet)
// composes one Batcher per skill behind a router and speaks this package's
// wire types.
//
// The layer leans on two properties established in internal/model: decoding
// is concurrency-safe (all decode state lives in pooled per-call contexts,
// so one Parser serves every worker goroutine), and parsers round-trip
// through versioned binary snapshots bit-identically (model.Save/Load).
//
//genielint:ctx-strict
package serve

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Parser is the decoding surface the serving layer needs; *model.Parser
// implements it.
type Parser interface {
	Parse(words []string) []string
	ParseBeam(words []string, width int) []string
}

// BatchParser is the batched decoding surface; *model.Parser implements it.
// When the Batcher's parser does, each gathered window decodes as one
// batched forward per decode step — the window's sentences (or beams)
// advance in lockstep as rows of stacked tensors — instead of fanning each
// request to its own worker, so micro-batching buys matmul width on top of
// queueing.
type BatchParser interface {
	ParseBatch(sentences [][]string) [][]string
	ParseBeamBatch(sentences [][]string, width int) [][]string
}

// ScoredParser decodes with a hypothesis score; *model.Parser implements it
// (length-normalized log-probability). The fleet router's fallback path
// submits scored requests to every shard and keeps the best-scoring answer.
type ScoredParser interface {
	ParseScored(words []string, width int) ([]string, float64)
}

// AdaptiveParser decodes greedily and escalates to the beam only below its
// fitted confidence threshold; *model.Parser implements it.
type AdaptiveParser interface {
	ParseAdaptive(words []string, width int) (toks []string, score float64, escalated bool)
}

// ScoredBatchParser is the batched greedy decode with per-request scores;
// *model.Parser implements it. The adaptive batched path decodes the whole
// window greedily through it and re-decodes only the low-confidence subset
// with the beam.
type ScoredBatchParser interface {
	ParseBatchScored(sentences [][]string) ([][]string, []float64)
}

// CalibratedParser exposes the fitted confidence threshold; *model.Parser
// implements it.
type CalibratedParser interface {
	ConfidenceThreshold() (threshold float64, fitted bool)
}

// ContextParser is the contextual (multi-turn) decoding surface;
// *model.Parser implements it. ctx is the previous turn's program token
// sequence; both methods delegate to the single-turn decode — bit-identically
// — when ctx is empty or the parser was trained without a context encoder,
// so a batcher over a contextual parser serves single-turn traffic
// unchanged.
type ContextParser interface {
	ParseContext(words, ctx []string) []string
	ParseContextScored(words, ctx []string, width int) ([]string, float64)
}

// AdaptiveContextParser is the contextual form of the greedy-first
// escalation policy; *model.Parser implements it.
type AdaptiveContextParser interface {
	ParseContextAdaptive(words, ctx []string, width int) (toks []string, score float64, escalated bool)
}

// BatchContextParser is the batched contextual decode; *model.Parser
// implements it. Every row must carry a non-empty context (the model layer
// panics otherwise), so the batcher partitions each gathered window into its
// contextual and plain halves and decodes them as separate lockstep batches.
type BatchContextParser interface {
	ParseBatchContext(sentences, contexts [][]string) [][]string
	ParseBatchContextScored(sentences, contexts [][]string) ([][]string, []float64)
}

// Options tune the serving layer.
type Options struct {
	// MaxBatch is the most requests gathered into one decode batch
	// (default 8).
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is dispatched anyway (default 2ms).
	MaxWait time.Duration
	// Workers is the decode worker-pool size (0 = GOMAXPROCS).
	Workers int
	// Beam is the beam width (<= 1 decodes greedily).
	Beam int
	// MaxQueue bounds the number of admitted-but-unanswered requests
	// (queued plus in decode). A request arriving at a full queue is shed
	// immediately with ErrOverloaded instead of waiting — the HTTP layer
	// maps that to 429 + Retry-After. 0 picks the default 8×MaxBatch
	// (min 64); negative means unbounded.
	MaxQueue int
	// Adaptive (with Beam > 1) decodes greedy-first and escalates a request
	// to the beam only when its greedy confidence falls below the parser's
	// fitted threshold (CalibratedParser). High-confidence traffic then
	// pays greedy latency; Stats.Escalated counts the beam re-decodes. With
	// no fitted calibration every request stays greedy.
	Adaptive bool
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = goruntime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = max(64, 8*o.MaxBatch)
	}
	return o
}

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: batcher closed")

// ErrOverloaded is returned when the batcher's admission queue is full; the
// request was shed without queueing (HTTP 429).
var ErrOverloaded = errors.New("serve: queue full, request shed")

// ErrDecodeFailed is returned when a decode panicked; the panic is recovered
// into this per-request error so one poisoned request cannot kill a worker
// goroutine and strand the rest of its window (HTTP 500).
var ErrDecodeFailed = errors.New("serve: decode failed")

// parseResult is one request's answer.
type parseResult struct {
	toks  []string
	score float64
	err   error
}

type request struct {
	ctx     context.Context // caller's deadline budget; checked before decode
	words   []string
	context []string // previous-turn program tokens (contextual decode)
	scored  bool     // decode through ScoredParser and report the hypothesis score
	reply   chan parseResult
}

// Batcher gathers incoming parse requests into micro-batches — up to
// MaxBatch requests or MaxWait, whichever comes first — and decodes each
// batch on a fixed worker pool. When the parser supports batched decoding
// (BatchParser, which *model.Parser does), a worker decodes its whole batch
// in one lockstep batched call; otherwise it falls back to per-request
// decoding. Because decoding is concurrency-safe, all workers share the one
// trained parser, and distinct batches still decode concurrently.
//
// Admission is bounded: at most Options.MaxQueue requests may be in flight
// (queued or decoding); beyond that ParseCtx sheds immediately with
// ErrOverloaded so the gather loop never blocks behind a slow consumer.
// Close drains: requests admitted before Close are decoded and answered on
// the old parser before the workers exit, which is what lets the fleet
// control plane hot-swap a shard without dropping in-flight requests.
type Batcher struct {
	opt    Options
	parser Parser
	bp     BatchParser       // non-nil when parser supports batched decode
	sp     ScoredParser      // non-nil when parser supports scored decode
	ap     AdaptiveParser    // non-nil when parser supports adaptive decode
	sbp    ScoredBatchParser // non-nil when parser supports scored batched decode
	cp     CalibratedParser  // non-nil when parser exposes its calibration
	ctxp   ContextParser     // non-nil when parser supports contextual decode
	acp    AdaptiveContextParser
	bcp    BatchContextParser

	in   chan request
	jobs chan []request
	done chan struct{}

	closeMu   sync.RWMutex // guards closed vs. in-flight submissions
	closed    bool         // guarded by closeMu
	closeOnce sync.Once
	wg        sync.WaitGroup

	requests  atomic.Int64
	batches   atomic.Int64
	shed      atomic.Int64
	depth     atomic.Int64
	expired   atomic.Int64   // requests whose deadline passed before decode
	failed    atomic.Int64   // requests whose decode panicked (ErrDecodeFailed)
	adaptive  atomic.Int64   // requests decoded under the adaptive policy
	escalated atomic.Int64   // of those, requests re-decoded with the beam
	hist      []atomic.Int64 // batch-size histogram, index = size-1
}

// NewBatcher starts the gather loop and the worker pool.
func NewBatcher(p Parser, opt Options) *Batcher {
	opt = opt.withDefaults()
	inCap := opt.MaxQueue
	if inCap < 0 {
		inCap = 0 // unbounded admission keeps the old unbuffered handoff
	}
	b := &Batcher{
		opt:    opt,
		parser: p,
		in:     make(chan request, inCap),
		jobs:   make(chan []request, max(opt.Workers, opt.MaxBatch)),
		done:   make(chan struct{}),
		hist:   make([]atomic.Int64, opt.MaxBatch),
	}
	b.bp, _ = p.(BatchParser)
	b.sp, _ = p.(ScoredParser)
	b.ap, _ = p.(AdaptiveParser)
	b.sbp, _ = p.(ScoredBatchParser)
	b.cp, _ = p.(CalibratedParser)
	b.ctxp, _ = p.(ContextParser)
	b.acp, _ = p.(AdaptiveContextParser)
	b.bcp, _ = p.(BatchContextParser)
	b.wg.Add(1)
	go b.gather()
	for w := 0; w < opt.Workers; w++ {
		b.wg.Add(1)
		go b.worker()
	}
	return b
}

// gather is the micro-batching loop: the first request opens a batch and
// starts the MaxWait timer; the batch is dispatched when full or when the
// timer fires. When done closes, everything already admitted to the queue is
// still dispatched (drained) before jobs closes, so no admitted request goes
// unanswered.
func (b *Batcher) gather() {
	defer b.wg.Done()
	defer close(b.jobs)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		var first request
		select {
		case first = <-b.in:
		case <-b.done:
			b.drain()
			return
		}
		batch := make([]request, 1, b.opt.MaxBatch)
		batch[0] = first
		timer.Reset(b.opt.MaxWait)
	fill:
		for len(batch) < b.opt.MaxBatch {
			select {
			case r := <-b.in:
				batch = append(batch, r)
			case <-timer.C:
				break fill
			case <-b.done:
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		b.dispatch(batch)
		select {
		case <-b.done:
			b.drain()
			return
		default:
		}
	}
}

// drain dispatches whatever is still queued after Close; no new requests
// can arrive (Close flips closed under the write lock before closing done).
func (b *Batcher) drain() {
	for {
		batch := make([]request, 0, b.opt.MaxBatch)
		for len(batch) < b.opt.MaxBatch {
			select {
			case r := <-b.in:
				batch = append(batch, r)
				continue
			default:
			}
			break
		}
		if len(batch) == 0 {
			return
		}
		b.dispatch(batch)
	}
}

func (b *Batcher) dispatch(batch []request) {
	b.batches.Add(1)
	b.requests.Add(int64(len(batch)))
	if n := len(batch); n >= 1 && n <= len(b.hist) {
		b.hist[n-1].Add(1)
	}
	if b.bp != nil {
		b.jobs <- batch
		return
	}
	// No batched decode surface: fan the window's requests across the
	// worker pool as before, instead of serializing them on one worker.
	for _, r := range batch {
		b.jobs <- []request{r}
	}
}

func (b *Batcher) worker() {
	defer b.wg.Done()
	for batch := range b.jobs {
		b.serveBatch(batch)
	}
}

// serveBatch answers one dispatched window. Requests whose deadline budget
// ran out while they sat in the queue are answered with their context error
// before any decode is spent on them (the HTTP layer maps that to 408);
// scored requests decode per-request through ScoredParser; the plain
// remainder decodes as one lockstep batched call when the parser supports
// it. A decode panic anywhere is recovered into a per-request
// ErrDecodeFailed instead of killing the worker.
func (b *Batcher) serveBatch(batch []request) {
	// The expired/scored/contextual partition appends lag the iteration, so
	// reusing the batch's backing array for the plain prefix is safe.
	plain := batch[:0]
	var scored, ctxed []request
	for _, r := range batch {
		switch {
		case r.ctx != nil && r.ctx.Err() != nil:
			b.expired.Add(1)
			b.reply(r, parseResult{err: r.ctx.Err()})
		case r.scored && (b.sp != nil || (len(r.context) > 0 && b.ctxp != nil)):
			scored = append(scored, r)
		case len(r.context) > 0 && b.ctxp != nil:
			ctxed = append(ctxed, r)
		default:
			plain = append(plain, r)
		}
	}
	if b.bp != nil && len(plain) > 1 {
		sentences := make([][]string, len(plain))
		for i, r := range plain {
			sentences[i] = r.words
		}
		outs, err := b.decodeWindow(sentences)
		if err == nil {
			for i, r := range plain {
				b.reply(r, parseResult{toks: outs[i]})
			}
		} else {
			// The batched call panicked: one poisoned request must not take
			// the whole window down. Re-decode per request so only the
			// poisoned one errors.
			for _, r := range plain {
				toks, derr := b.safeDecode(r.words)
				b.reply(r, parseResult{toks: toks, err: derr})
			}
		}
	} else {
		for _, r := range plain {
			toks, err := b.safeDecode(r.words)
			b.reply(r, parseResult{toks: toks, err: err})
		}
	}
	b.serveContextWindow(ctxed)
	for _, r := range scored {
		b.reply(r, b.safeScored(r))
	}
}

// serveContextWindow answers the contextual half of a gathered window. It
// decodes as one lockstep contextual batch when the parser has the batched
// surface and the policy allows it (greedy, or adaptive — there is no
// batched contextual beam, so fixed beam widths decode per request), with
// the same panic-isolation fallback as the plain window.
func (b *Batcher) serveContextWindow(ctxed []request) {
	if len(ctxed) == 0 {
		return
	}
	if b.bcp != nil && len(ctxed) > 1 && (b.opt.Beam <= 1 || b.adaptiveOn()) {
		sentences := make([][]string, len(ctxed))
		contexts := make([][]string, len(ctxed))
		for i, r := range ctxed {
			sentences[i] = r.words
			contexts[i] = r.context
		}
		outs, err := b.decodeContextWindow(sentences, contexts)
		if err == nil {
			for i, r := range ctxed {
				b.reply(r, parseResult{toks: outs[i]})
			}
			return
		}
		// Batched contextual decode panicked: re-decode per request so only
		// the poisoned request errors.
	}
	for _, r := range ctxed {
		toks, err := b.safeDecodeContext(r.words, r.context)
		b.reply(r, parseResult{toks: toks, err: err})
	}
}

// decodeContextWindow is decodeWindow's contextual twin: greedy lockstep
// batch, or — under the adaptive policy — a scored greedy batch with only
// the low-confidence rows re-decoded through the contextual beam.
func (b *Batcher) decodeContextWindow(sentences, contexts [][]string) (outs [][]string, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			outs, err = nil, fmt.Errorf("%w: batched context decode panicked: %v", ErrDecodeFailed, rec)
		}
	}()
	if b.adaptiveOn() {
		return b.decodeAdaptiveContextBatch(sentences, contexts), nil
	}
	return b.bcp.ParseBatchContext(sentences, contexts), nil
}

// decodeAdaptiveContextBatch mirrors decodeAdaptiveBatch for contextual
// rows: the window decodes greedily in one scored contextual batch, then
// requests below the fitted confidence threshold re-decode one by one
// through the contextual beam (there is no batched contextual beam).
func (b *Batcher) decodeAdaptiveContextBatch(sentences, contexts [][]string) [][]string {
	outs, scores := b.bcp.ParseBatchContextScored(sentences, contexts)
	b.adaptive.Add(int64(len(sentences)))
	var thr float64
	fitted := false
	if b.cp != nil {
		thr, fitted = b.cp.ConfidenceThreshold()
	}
	if !fitted {
		return outs
	}
	for i, s := range scores {
		if len(sentences[i]) > 0 && s < thr {
			outs[i], _ = b.ctxp.ParseContextScored(sentences[i], contexts[i], b.opt.Beam)
			b.escalated.Add(1)
		}
	}
	return outs
}

// safeDecodeContext is the per-request contextual decode with panic
// recovery.
func (b *Batcher) safeDecodeContext(words, ctx []string) (toks []string, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			b.failed.Add(1)
			toks, err = nil, fmt.Errorf("%w: context decode panicked: %v", ErrDecodeFailed, rec)
		}
	}()
	return b.decodeContext(words, ctx), nil
}

func (b *Batcher) decodeContext(words, ctx []string) []string {
	if b.adaptiveOn() && b.acp != nil {
		toks, _, escalated := b.acp.ParseContextAdaptive(words, ctx, b.opt.Beam)
		b.adaptive.Add(1)
		if escalated {
			b.escalated.Add(1)
		}
		return toks
	}
	if b.opt.Beam > 1 {
		toks, _ := b.ctxp.ParseContextScored(words, ctx, b.opt.Beam)
		return toks
	}
	return b.ctxp.ParseContext(words, ctx)
}

// decodeWindow decodes one gathered window through the batched surface,
// recovering a panic into an error instead of killing the worker.
func (b *Batcher) decodeWindow(sentences [][]string) (outs [][]string, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			outs, err = nil, fmt.Errorf("%w: batched decode panicked: %v", ErrDecodeFailed, rec)
		}
	}()
	switch {
	case b.adaptiveOn() && b.sbp != nil:
		outs = b.decodeAdaptiveBatch(sentences)
	case b.opt.Beam > 1:
		outs = b.bp.ParseBeamBatch(sentences, b.opt.Beam)
	default:
		outs = b.bp.ParseBatch(sentences)
	}
	return outs, nil
}

// safeDecode is the per-request decode with panic recovery.
func (b *Batcher) safeDecode(words []string) (toks []string, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			b.failed.Add(1)
			toks, err = nil, fmt.Errorf("%w: decode panicked: %v", ErrDecodeFailed, rec)
		}
	}()
	return b.decode(words), nil
}

// safeScored is the per-request scored decode with panic recovery;
// contextual requests score through the contextual surface.
func (b *Batcher) safeScored(r request) (res parseResult) {
	defer func() {
		if rec := recover(); rec != nil {
			b.failed.Add(1)
			res = parseResult{err: fmt.Errorf("%w: decode panicked: %v", ErrDecodeFailed, rec)}
		}
	}()
	if len(r.context) > 0 && b.ctxp != nil {
		toks, score := b.ctxp.ParseContextScored(r.words, r.context, max(1, b.opt.Beam))
		return parseResult{toks: toks, score: score}
	}
	toks, score := b.sp.ParseScored(r.words, max(1, b.opt.Beam))
	return parseResult{toks: toks, score: score}
}

func (b *Batcher) reply(r request, res parseResult) {
	r.reply <- res
	b.depth.Add(-1)
}

func (b *Batcher) decode(words []string) []string {
	if b.adaptiveOn() && b.ap != nil {
		toks, _, escalated := b.ap.ParseAdaptive(words, b.opt.Beam)
		b.adaptive.Add(1)
		if escalated {
			b.escalated.Add(1)
		}
		return toks
	}
	if b.opt.Beam > 1 {
		return b.parser.ParseBeam(words, b.opt.Beam)
	}
	return b.parser.Parse(words)
}

// adaptiveOn reports whether the greedy-first escalation policy applies
// (beam width 1 has nothing to escalate to).
func (b *Batcher) adaptiveOn() bool { return b.opt.Adaptive && b.opt.Beam > 1 }

// decodeAdaptiveBatch is the windowed form of the adaptive policy: the whole
// window decodes greedily in lockstep, then only the requests whose greedy
// confidence falls below the fitted threshold re-decode as one beam batch.
func (b *Batcher) decodeAdaptiveBatch(sentences [][]string) [][]string {
	outs, scores := b.sbp.ParseBatchScored(sentences)
	b.adaptive.Add(int64(len(sentences)))
	var thr float64
	fitted := false
	if b.cp != nil {
		thr, fitted = b.cp.ConfidenceThreshold()
	}
	if !fitted {
		return outs
	}
	var low []int
	for i, s := range scores {
		if len(sentences[i]) > 0 && s < thr {
			low = append(low, i)
		}
	}
	if len(low) == 0 {
		return outs
	}
	sub := make([][]string, len(low))
	for j, i := range low {
		sub[j] = sentences[i]
	}
	reouts := b.bp.ParseBeamBatch(sub, b.opt.Beam)
	for j, i := range low {
		outs[i] = reouts[j]
	}
	b.escalated.Add(int64(len(low)))
	return outs
}

// submit admits one request or reports why it cannot: ErrClosed after
// Close, ErrOverloaded when MaxQueue requests are already in flight, the
// context error if ctx ends while an unbounded submission is blocked. A
// successful submit guarantees a reply (workers answer every admitted
// request, including during drain).
func (b *Batcher) submit(ctx context.Context, r request) error {
	b.closeMu.RLock()
	defer b.closeMu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	if b.opt.MaxQueue > 0 {
		if b.depth.Add(1) > int64(b.opt.MaxQueue) {
			b.depth.Add(-1)
			b.shed.Add(1)
			return ErrOverloaded
		}
		// At most MaxQueue requests are admitted, and the channel holds
		// that many, so this send cannot block.
		b.in <- r
		return nil
	}
	b.depth.Add(1)
	select {
	case b.in <- r:
		return nil
	case <-b.done:
		b.depth.Add(-1)
		return ErrClosed
	case <-ctx.Done():
		b.depth.Add(-1)
		return ctx.Err()
	}
}

// ParseCtx submits one sentence through the batching path and waits for its
// program tokens.
func (b *Batcher) ParseCtx(ctx context.Context, words []string) ([]string, error) {
	res, err := b.do(ctx, request{words: words, reply: make(chan parseResult, 1)})
	return res.toks, err
}

// ParseContextCtx is ParseCtx conditioned on the previous turn's program
// tokens (multi-turn dialogue). With an empty prior — or a parser without
// the ContextParser surface — it is exactly ParseCtx, so callers can thread
// session context unconditionally.
func (b *Batcher) ParseContextCtx(ctx context.Context, words, prior []string) ([]string, error) {
	res, err := b.do(ctx, request{words: words, context: prior, reply: make(chan parseResult, 1)})
	return res.toks, err
}

// ParseScoredCtx is ParseCtx plus the decoded hypothesis's
// length-normalized score (see model.Parser.ParseScored); it requires a
// parser with the ScoredParser surface, else the score is 0.
func (b *Batcher) ParseScoredCtx(ctx context.Context, words []string) ([]string, float64, error) {
	res, err := b.do(ctx, request{words: words, scored: true, reply: make(chan parseResult, 1)})
	return res.toks, res.score, err
}

// ParseContextScoredCtx is ParseScoredCtx conditioned on the previous
// turn's program tokens.
func (b *Batcher) ParseContextScoredCtx(ctx context.Context, words, prior []string) ([]string, float64, error) {
	res, err := b.do(ctx, request{words: words, context: prior, scored: true, reply: make(chan parseResult, 1)})
	return res.toks, res.score, err
}

// Contextual reports whether the underlying parser decodes with dialogue
// context (the fleet's session flow is a no-op otherwise).
func (b *Batcher) Contextual() bool {
	type contextual interface{ Contextual() bool }
	if c, ok := b.parser.(contextual); ok {
		return c.Contextual()
	}
	return false
}

func (b *Batcher) do(ctx context.Context, r request) (parseResult, error) {
	if err := ctx.Err(); err != nil {
		return parseResult{}, err
	}
	r.ctx = ctx
	if err := b.submit(ctx, r); err != nil {
		return parseResult{}, err
	}
	select {
	case out := <-r.reply:
		if out.err != nil {
			return parseResult{}, out.err
		}
		return out, nil
	case <-ctx.Done():
		return parseResult{}, ctx.Err()
	}
}

// Parse implements eval.Decoder over the batched path, so eval.Evaluate and
// eval.EvaluateParallel can score a served parser exactly like a local one.
// A closed or overloaded batcher decodes to nil (scored as wrong).
//
//genielint:ctx-root interface adapter: the eval.Decoder contract has no ctx parameter
func (b *Batcher) Parse(words []string) []string {
	out, err := b.ParseCtx(context.Background(), words)
	if err != nil {
		return nil
	}
	return out
}

// Stats reports served traffic; Requests/Batches is the realized mean batch
// size.
type Stats struct {
	Requests int64
	Batches  int64
	// Shed counts requests rejected by admission control (queue full).
	Shed int64
	// Expired counts requests whose deadline budget ran out in the queue;
	// they were answered with their context error before any decode was
	// spent (the HTTP layer's 408).
	Expired int64
	// Failed counts requests whose decode panicked (ErrDecodeFailed).
	Failed int64
	// QueueDepth is the current number of admitted, unanswered requests.
	QueueDepth int64
	// Adaptive counts requests decoded under the greedy-first adaptive
	// policy; Escalated counts the subset re-decoded with the beam because
	// their greedy confidence fell below the fitted threshold.
	Adaptive  int64
	Escalated int64
	// BatchSizes is the dispatch histogram: BatchSizes[i] batches carried
	// i+1 requests.
	BatchSizes []int64
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() Stats {
	hist := make([]int64, len(b.hist))
	for i := range b.hist {
		hist[i] = b.hist[i].Load()
	}
	return Stats{
		Requests:   b.requests.Load(),
		Batches:    b.batches.Load(),
		Shed:       b.shed.Load(),
		Expired:    b.expired.Load(),
		Failed:     b.failed.Load(),
		QueueDepth: b.depth.Load(),
		Adaptive:   b.adaptive.Load(),
		Escalated:  b.escalated.Load(),
		BatchSizes: hist,
	}
}

// Close rejects further requests, drains everything already admitted
// (every in-flight request still gets its reply, decoded on this batcher's
// parser), and waits for the workers to exit.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() {
		b.closeMu.Lock()
		b.closed = true
		b.closeMu.Unlock()
		close(b.done)
	})
	b.wg.Wait()
}
