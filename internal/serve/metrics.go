package serve

import (
	"sort"
	"sync"
)

// LatencyRing keeps the last RingSize request latencies and derives p50/p99
// on demand. A bounded ring favors recency — exactly what a hot-swap or a
// recovering backend wants: after behavior changes, the window flushes to
// the new regime within RingSize requests — and keeps the memory and
// /metrics cost constant under heavy traffic. Used per skill by the fleet
// and per gateway by the routing tier (whose hedge delay derives from p99).
type LatencyRing struct {
	mu   sync.Mutex
	buf  [RingSize]float64
	n    int // total observations (buf holds min(n, RingSize))
	next int
}

// RingSize is the latency window length.
const RingSize = 1024

// Observe records one request latency in milliseconds.
func (l *LatencyRing) Observe(ms float64) {
	l.mu.Lock()
	l.buf[l.next] = ms
	l.next = (l.next + 1) % RingSize
	l.n++
	l.mu.Unlock()
}

// Quantiles returns the windowed p50 and p99 (0, 0 before any traffic).
func (l *LatencyRing) Quantiles() (p50, p99 float64) {
	l.mu.Lock()
	n := min(l.n, RingSize)
	window := make([]float64, n)
	copy(window, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(window)
	return window[quantileIndex(n, 0.50)], window[quantileIndex(n, 0.99)]
}

// quantileIndex is the nearest-rank index of quantile q in n sorted values.
func quantileIndex(n int, q float64) int {
	i := int(q*float64(n-1) + 0.5)
	return min(i, n-1)
}
