package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseRequest is the JSON body of POST /parse. Either a raw sentence
// (whitespace-tokenized, lowercased) or a pre-tokenized word list. Skill
// addresses one shard of a multi-skill fleet (internal/fleet); a fleet
// request without a skill is routed by the fallback scorer, and the
// single-parser Server ignores the field.
type ParseRequest struct {
	Skill    string   `json:"skill,omitempty"`
	Sentence string   `json:"sentence,omitempty"`
	Words    []string `json:"words,omitempty"`
	// Context is the previous turn's accepted program tokens, conditioning a
	// contextual parser's decode (multi-turn dialogue). Callers that track
	// their own dialogue state send it explicitly; callers that instead send
	// an X-Genie-Session header get it filled in server-side from the fleet's
	// session store. Non-contextual parsers ignore it.
	Context []string `json:"context,omitempty"`
}

// ParseResponse is the JSON reply: the decoded ThingTalk program as a token
// list and as one joined string, plus the server-side latency. A fleet
// reply also names the skill that answered, its snapshot generation, and —
// for scored fallback routing — the hypothesis's length-normalized score.
type ParseResponse struct {
	Skill      string   `json:"skill,omitempty"`
	Tokens     []string `json:"tokens"`
	Program    string   `json:"program"`
	Score      float64  `json:"score,omitempty"`
	Generation uint64   `json:"generation,omitempty"`
	LatencyMS  float64  `json:"latency_ms"`
}

// HealthResponse is the JSON reply of GET /healthz.
type HealthResponse struct {
	OK       bool  `json:"ok"`
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches"`
	// Skills is the number of ready skills (fleet servers only).
	Skills int `json:"skills,omitempty"`
}

// SkillInfo describes one skill of a fleet (GET /skills). A gateway's
// /skills aggregates across backends: Status degrades to "degraded" when no
// live replica serves the skill, and Replicas counts the live ones.
type SkillInfo struct {
	Name       string `json:"name"`
	Status     string `json:"status"` // training, ready, reloading, failed, degraded
	Checksum   string `json:"checksum,omitempty"`
	Generation uint64 `json:"generation"`
	Error      string `json:"error,omitempty"`
	Path       string `json:"path,omitempty"`
	Replicas   int    `json:"replicas,omitempty"`
}

// SkillsResponse is the JSON reply of a fleet's GET /skills.
type SkillsResponse struct {
	Skills []SkillInfo `json:"skills"`
}

// SkillMetrics is one skill's live serving metrics (GET /metrics).
type SkillMetrics struct {
	Name       string `json:"name"`
	Generation uint64 `json:"generation"`
	Requests   int64  `json:"requests"`
	Shed       int64  `json:"shed"`
	// Errors is the cumulative count of requests this skill answered with an
	// error other than an admission-control shed (not-ready routing, expired
	// deadline budgets, decode failures); the gateway's ejection logic reads
	// it alongside Shed and QueueDepth.
	Errors     int64   `json:"errors"`
	QueueDepth int64   `json:"queue_depth"`
	Batches    int64   `json:"batches"`
	BatchSizes []int64 `json:"batch_sizes,omitempty"`
	// Adaptive decode: how many requests went through the confidence-routed
	// path and how many of those escalated to the beam.
	Adaptive       int64   `json:"adaptive"`
	Escalated      int64   `json:"escalated"`
	EscalationRate float64 `json:"escalation_rate"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	// Session-store counters (contextual skills with an X-Genie-Session
	// flow): live sessions, context lookups that hit or missed, and sessions
	// evicted by the store's LRU bound.
	Sessions         int64 `json:"sessions,omitempty"`
	SessionHits      int64 `json:"session_hits,omitempty"`
	SessionMisses    int64 `json:"session_misses,omitempty"`
	SessionEvictions int64 `json:"session_evictions,omitempty"`
}

// DurabilityMetrics are the snapshot-store and training-cache recovery
// counters of a fleet (GET /metrics): how often snapshots were written and
// read back, how many failed verification and were quarantined, how many
// loads rolled back to a last-good generation, and how training failures
// were handled.
type DurabilityMetrics struct {
	Saves            uint64 `json:"saves"`
	SaveFailures     uint64 `json:"save_failures"`
	Loads            uint64 `json:"loads"`
	LoadFailures     uint64 `json:"load_failures"`
	Quarantined      uint64 `json:"quarantined"`
	Rollbacks        uint64 `json:"rollbacks"`
	DiskLoadFailures uint64 `json:"disk_load_failures"`
	TransientRetries uint64 `json:"transient_retries"`
	Trainings        uint64 `json:"trainings"`
	TrainFailures    uint64 `json:"train_failures"`
}

// MetricsResponse is the JSON reply of a fleet's GET /metrics.
type MetricsResponse struct {
	// UptimeSeconds is how long this process has been serving.
	UptimeSeconds float64        `json:"uptime_seconds,omitempty"`
	Skills        []SkillMetrics `json:"skills"`
	// Durability carries the snapshot-store recovery counters (fleet
	// servers with a snapshot cache only).
	Durability *DurabilityMetrics `json:"durability,omitempty"`
}

// DurabilityFrom flattens cache stats into the wire form.
func DurabilityFrom(s CacheStats) *DurabilityMetrics {
	return &DurabilityMetrics{
		Saves:            s.Store.Saves,
		SaveFailures:     s.Store.SaveFailures,
		Loads:            s.Store.Loads,
		LoadFailures:     s.Store.LoadFailures,
		Quarantined:      s.Store.Quarantined,
		Rollbacks:        s.Store.Rollbacks,
		DiskLoadFailures: s.DiskLoadFailures,
		TransientRetries: s.TransientRetries,
		Trainings:        s.Trainings,
		TrainFailures:    s.TrainFailures,
	}
}

// Server is the HTTP front end over a Batcher.
//
//	POST /parse   {"sentence": "..."} or {"words": [...]} -> ParseResponse
//	GET  /healthz -> HealthResponse
type Server struct {
	b   *Batcher
	mux *http.ServeMux
}

// NewServer wraps a trained parser in a batching HTTP service.
func NewServer(p Parser, opt Options) *Server {
	s := &Server{b: NewBatcher(p, opt), mux: http.NewServeMux()}
	s.mux.HandleFunc("/parse", s.handleParse)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// Batcher exposes the underlying batcher (stats, direct eval.Decoder use).
func (s *Server) Batcher() *Batcher { return s.b }

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the batching layer down.
func (s *Server) Close() { s.b.Close() }

// Tokenize is the server's sentence tokenization: lowercase, whitespace
// split. It matches the pipeline's pre-tokenized training data closely
// enough for serving and is exported so Client can mirror it.
func Tokenize(sentence string) []string {
	return strings.Fields(strings.ToLower(sentence))
}

// RequestWords extracts the tokenized sentence of a parse request (words
// when given, else the tokenized sentence); shared by the single-parser and
// fleet servers.
func (r *ParseRequest) RequestWords() []string {
	if len(r.Words) > 0 {
		return r.Words
	}
	return Tokenize(r.Sentence)
}

// DeadlineHeader carries a request's remaining deadline budget in
// milliseconds. The gateway and Client stamp it from their context deadline
// on every outbound hop; servers honor it end to end (the Batcher answers a
// request whose budget ran out in the queue with 408 before spending a
// decode on it), so a caller's latency contract survives proxying, queueing
// and retries.
const DeadlineHeader = "X-Genie-Deadline-Ms"

// SessionHeader names a multi-turn dialogue session. A fleet server keys its
// per-skill session store by it — looking up the previous turn's accepted
// program as decoding context and recording each accepted parse back — and
// the gateway routes requests carrying it sticky to a consistent replica so
// follow-ups land where the session state lives.
const SessionHeader = "X-Genie-Session"

// DeadlineContext applies an inbound request's propagated deadline budget:
// the returned context carries min(connection lifetime, header budget).
// With no (or an unparsable) header it is just the request context.
func DeadlineContext(r *http.Request) (context.Context, context.CancelFunc) {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		return r.Context(), func() {}
	}
	ms, err := strconv.ParseFloat(v, 64)
	if err != nil || ms < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), time.Duration(ms*float64(time.Millisecond)))
}

// SetDeadlineHeader stamps ctx's remaining deadline budget onto an outbound
// request's headers (no-op without a deadline). Shared by Client and the
// gateway's proxy hop.
func SetDeadlineHeader(h http.Header, ctx context.Context) {
	d, ok := ctx.Deadline()
	if !ok {
		return
	}
	ms := time.Until(d).Seconds() * 1000
	if ms < 0 {
		ms = 0
	}
	h.Set(DeadlineHeader, strconv.FormatFloat(ms, 'f', 3, 64))
}

// WriteParseError maps a serving error to its HTTP status: 429 with a
// Retry-After for admission-control shedding, 408 for exhausted deadline
// budgets and caller timeouts, 500 for recovered decode panics, 503
// otherwise. Shared by the single-parser and fleet servers.
func WriteParseError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusServiceUnavailable
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), r.Context().Err() != nil:
		status = http.StatusRequestTimeout
	case errors.Is(err, ErrDecodeFailed):
		status = http.StatusInternalServerError
	}
	http.Error(w, err.Error(), status)
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req ParseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	words := req.RequestWords()
	if len(words) == 0 {
		http.Error(w, "empty sentence", http.StatusBadRequest)
		return
	}
	ctx, cancel := DeadlineContext(r)
	defer cancel()
	start := time.Now()
	toks, err := s.b.ParseContextCtx(ctx, words, req.Context)
	if err != nil {
		WriteParseError(w, r, err)
		return
	}
	if toks == nil {
		toks = []string{} // JSON [] rather than null
	}
	WriteJSON(w, ParseResponse{
		Tokens:    toks,
		Program:   strings.Join(toks, " "),
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.b.Stats()
	WriteJSON(w, HealthResponse{OK: true, Requests: st.Requests, Batches: st.Batches})
}

// WriteJSON writes v as a JSON response (shared with the fleet server).
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
