package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// ParseRequest is the JSON body of POST /parse. Either a raw sentence
// (whitespace-tokenized, lowercased) or a pre-tokenized word list.
type ParseRequest struct {
	Sentence string   `json:"sentence,omitempty"`
	Words    []string `json:"words,omitempty"`
}

// ParseResponse is the JSON reply: the decoded ThingTalk program as a token
// list and as one joined string, plus the server-side latency.
type ParseResponse struct {
	Tokens    []string `json:"tokens"`
	Program   string   `json:"program"`
	LatencyMS float64  `json:"latency_ms"`
}

// HealthResponse is the JSON reply of GET /healthz.
type HealthResponse struct {
	OK       bool  `json:"ok"`
	Requests int64 `json:"requests"`
	Batches  int64 `json:"batches"`
}

// Server is the HTTP front end over a Batcher.
//
//	POST /parse   {"sentence": "..."} or {"words": [...]} -> ParseResponse
//	GET  /healthz -> HealthResponse
type Server struct {
	b   *Batcher
	mux *http.ServeMux
}

// NewServer wraps a trained parser in a batching HTTP service.
func NewServer(p Parser, opt Options) *Server {
	s := &Server{b: NewBatcher(p, opt), mux: http.NewServeMux()}
	s.mux.HandleFunc("/parse", s.handleParse)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// Batcher exposes the underlying batcher (stats, direct eval.Decoder use).
func (s *Server) Batcher() *Batcher { return s.b }

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the batching layer down.
func (s *Server) Close() { s.b.Close() }

// Tokenize is the server's sentence tokenization: lowercase, whitespace
// split. It matches the pipeline's pre-tokenized training data closely
// enough for serving and is exported so Client can mirror it.
func Tokenize(sentence string) []string {
	return strings.Fields(strings.ToLower(sentence))
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req ParseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	words := req.Words
	if len(words) == 0 {
		words = Tokenize(req.Sentence)
	}
	if len(words) == 0 {
		http.Error(w, "empty sentence", http.StatusBadRequest)
		return
	}
	start := time.Now()
	toks, err := s.b.ParseCtx(r.Context(), words)
	if err != nil {
		status := http.StatusServiceUnavailable
		if r.Context().Err() != nil {
			status = http.StatusRequestTimeout
		}
		http.Error(w, err.Error(), status)
		return
	}
	if toks == nil {
		toks = []string{} // JSON [] rather than null
	}
	writeJSON(w, ParseResponse{
		Tokens:    toks,
		Program:   strings.Join(toks, " "),
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.b.Stats()
	writeJSON(w, HealthResponse{OK: true, Requests: st.Requests, Batches: st.Batches})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
