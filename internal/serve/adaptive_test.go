package serve

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// adaptiveFake implements every decode surface with deterministic outputs
// and an instrumented beam: sentences starting with "low" score below the
// threshold (must escalate), "high" ones above it (must stay greedy). The
// first output token records which path decoded the request.
type adaptiveFake struct {
	threshold float64
	fitted    bool
	beamCalls atomic.Int64 // single-sentence beam decodes (ParseBeam / escalated ParseAdaptive)
	beamRows  atomic.Int64 // sentences decoded through ParseBeamBatch
}

func (f *adaptiveFake) scoreOf(words []string) float64 {
	if len(words) > 0 && strings.HasPrefix(words[0], "low") {
		return f.threshold - 1
	}
	return f.threshold + 1
}

func (f *adaptiveFake) greedy(words []string) []string  { return append([]string{"greedy"}, words...) }
func (f *adaptiveFake) beamOut(words []string) []string { return append([]string{"beam"}, words...) }

func (f *adaptiveFake) Parse(words []string) []string { return f.greedy(words) }

func (f *adaptiveFake) ParseBeam(words []string, width int) []string {
	f.beamCalls.Add(1)
	return f.beamOut(words)
}

func (f *adaptiveFake) ParseScored(words []string, width int) ([]string, float64) {
	if width > 1 {
		f.beamCalls.Add(1)
		return f.beamOut(words), f.scoreOf(words)
	}
	return f.greedy(words), f.scoreOf(words)
}

func (f *adaptiveFake) ParseAdaptive(words []string, width int) ([]string, float64, bool) {
	s := f.scoreOf(words)
	if width <= 1 || !f.fitted || s >= f.threshold {
		return f.greedy(words), s, false
	}
	f.beamCalls.Add(1)
	return f.beamOut(words), s, true
}

func (f *adaptiveFake) ParseBatch(sentences [][]string) [][]string {
	outs, _ := f.ParseBatchScored(sentences)
	return outs
}

func (f *adaptiveFake) ParseBatchScored(sentences [][]string) ([][]string, []float64) {
	outs := make([][]string, len(sentences))
	scores := make([]float64, len(sentences))
	for i, s := range sentences {
		outs[i] = f.greedy(s)
		scores[i] = f.scoreOf(s)
	}
	return outs, scores
}

func (f *adaptiveFake) ParseBeamBatch(sentences [][]string, width int) [][]string {
	f.beamRows.Add(int64(len(sentences)))
	outs := make([][]string, len(sentences))
	for i, s := range sentences {
		outs[i] = f.beamOut(s)
	}
	return outs
}

func (f *adaptiveFake) ConfidenceThreshold() (float64, bool) { return f.threshold, f.fitted }

// TestAdaptiveBatcherEscalationCounters floods an adaptive batcher with
// concurrent requests straddling the confidence threshold (run under -race
// in CI): every low-confidence request must come back beam-decoded, every
// high-confidence one greedy, and the escalation counters must equal the
// observed beam decodes exactly.
func TestAdaptiveBatcherEscalationCounters(t *testing.T) {
	f := &adaptiveFake{threshold: -1, fitted: true}
	b := NewBatcher(f, Options{
		Adaptive: true, Beam: 3, MaxBatch: 4, MaxWait: time.Millisecond,
		Workers: 4, MaxQueue: 600,
	})
	const n = 240
	var wg sync.WaitGroup
	var lowCount atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			words := []string{fmt.Sprintf("high%d", i), "x"}
			if i%3 == 0 {
				words = []string{fmt.Sprintf("low%d", i), "x"}
				lowCount.Add(1)
			}
			out, err := b.ParseCtx(context.Background(), words)
			if err != nil {
				t.Errorf("ParseCtx: %v", err)
				return
			}
			want := "greedy"
			if strings.HasPrefix(words[0], "low") {
				want = "beam"
			}
			if len(out) == 0 || out[0] != want {
				t.Errorf("request %v decoded via %v, want %s path", words, out, want)
			}
		}(i)
	}
	wg.Wait()
	b.Close()

	st := b.Stats()
	if st.Adaptive != n {
		t.Errorf("Stats.Adaptive = %d, want %d", st.Adaptive, n)
	}
	if st.Escalated != lowCount.Load() {
		t.Errorf("Stats.Escalated = %d, want %d low-confidence requests", st.Escalated, lowCount.Load())
	}
	if observed := f.beamCalls.Load() + f.beamRows.Load(); observed != st.Escalated {
		t.Errorf("escalation counter %d does not match observed beam decodes %d", st.Escalated, observed)
	}
	if st.Requests != n {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, n)
	}
}

// TestAdaptiveBatcherUnfittedStaysGreedy: with Adaptive on but no fitted
// calibration, nothing escalates and the beam is never touched.
func TestAdaptiveBatcherUnfittedStaysGreedy(t *testing.T) {
	f := &adaptiveFake{threshold: -1, fitted: false}
	b := NewBatcher(f, Options{Adaptive: true, Beam: 3, MaxBatch: 4, MaxWait: time.Millisecond, MaxQueue: 300})
	var wg sync.WaitGroup
	for i := 0; i < 60; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.ParseCtx(context.Background(), []string{fmt.Sprintf("low%d", i)})
			if err != nil {
				t.Errorf("ParseCtx: %v", err)
				return
			}
			if len(out) == 0 || out[0] != "greedy" {
				t.Errorf("unfitted adaptive decode went through %v, want greedy", out)
			}
		}(i)
	}
	wg.Wait()
	b.Close()
	st := b.Stats()
	if st.Escalated != 0 || f.beamCalls.Load()+f.beamRows.Load() != 0 {
		t.Errorf("unfitted calibration escalated: %+v, beam decodes %d",
			st, f.beamCalls.Load()+f.beamRows.Load())
	}
	if st.Adaptive != 60 {
		t.Errorf("Stats.Adaptive = %d, want 60", st.Adaptive)
	}
}

// TestAdaptiveBatcherRealParser runs the adaptive policy over a real trained
// parser: with the threshold above every score all concurrent requests
// escalate and the outputs equal ParseBeam's; with it below, all stay greedy
// and equal Parse's.
func TestAdaptiveBatcherRealParser(t *testing.T) {
	p := toyParser()
	defer p.SetCalibration(model.Calibration{}) // shared parser: restore
	sentences := testSentences()

	for _, tc := range []struct {
		name      string
		threshold float64
		escalated bool
	}{
		{"all-escalate", math.Inf(1), true},
		{"none-escalate", math.Inf(-1), false},
	} {
		p.SetCalibration(model.Calibration{Fitted: true, Threshold: tc.threshold})
		b := NewBatcher(p, Options{Adaptive: true, Beam: 3, MaxBatch: 4, MaxWait: time.Millisecond, MaxQueue: 300})
		want := make([]string, len(sentences))
		for i, s := range sentences {
			if tc.escalated {
				want[i] = strings.Join(p.ParseBeam(s, 3), " ")
			} else {
				want[i] = strings.Join(p.Parse(s), " ")
			}
		}
		var wg sync.WaitGroup
		for i := range sentences {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := b.ParseCtx(context.Background(), sentences[i])
				if err != nil {
					t.Errorf("%s: ParseCtx: %v", tc.name, err)
					return
				}
				if got := strings.Join(out, " "); got != want[i] {
					t.Errorf("%s: decode of %v = %q, want %q", tc.name, sentences[i], got, want[i])
				}
			}(i)
		}
		wg.Wait()
		b.Close()
		st := b.Stats()
		wantEsc := int64(0)
		if tc.escalated {
			wantEsc = int64(len(sentences))
		}
		if st.Escalated != wantEsc || st.Adaptive != int64(len(sentences)) {
			t.Errorf("%s: stats %+v, want %d escalated of %d adaptive", tc.name, st, wantEsc, len(sentences))
		}
	}
}
