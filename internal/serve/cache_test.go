package serve

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/thingpedia"
)

func TestCacheSharesOneTrainingRun(t *testing.T) {
	c := NewCache("") // memory-only
	var trainCalls atomic.Int64
	train := func() (*model.Parser, error) {
		trainCalls.Add(1)
		return model.Train(toyTrainPairs(), nil, nil, toyConfig(2)), nil
	}

	const key = "k1"
	var wg sync.WaitGroup
	parsers := make([]*model.Parser, 8)
	for i := range parsers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, hit, err := c.GetOrTrain(key, train)
			if err != nil {
				t.Errorf("GetOrTrain: %v", err)
				return
			}
			if hit {
				t.Error("a caller that triggered or waited on training must report a miss")
			}
			parsers[i] = p
		}(i)
	}
	wg.Wait()
	if n := trainCalls.Load(); n != 1 {
		t.Errorf("train ran %d times for one key, want 1", n)
	}
	for _, p := range parsers[1:] {
		if p != parsers[0] {
			t.Error("concurrent callers got different parser instances")
		}
	}

	// A second key trains again; the first stays cached.
	if _, hit, err := c.GetOrTrain("k2", train); err != nil || hit {
		t.Errorf("fresh key: hit=%v err=%v, want miss", hit, err)
	}
	if _, hit, err := c.GetOrTrain(key, train); err != nil || !hit {
		t.Errorf("warm key: hit=%v err=%v, want hit", hit, err)
	}
	if n := trainCalls.Load(); n != 2 {
		t.Errorf("train ran %d times for two keys, want 2", n)
	}
}

func TestCacheDiskSnapshotsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	var trainCalls atomic.Int64
	train := func() (*model.Parser, error) {
		trainCalls.Add(1)
		return model.Train(toyTrainPairs(), nil, nil, toyConfig(3)), nil
	}

	key := "disk-key"
	c1 := NewCache(dir)
	p1, hit, err := c1.GetOrTrain(key, train)
	if err != nil || hit {
		t.Fatalf("first GetOrTrain: hit=%v err=%v", hit, err)
	}

	// A fresh Cache over the same directory simulates a process restart: the
	// snapshot must load from disk without retraining and decode identically.
	c2 := NewCache(dir)
	p2, hit, err := c2.GetOrTrain(key, train)
	if err != nil {
		t.Fatalf("restart GetOrTrain: %v", err)
	}
	if !hit {
		t.Error("restart should hit the disk snapshot")
	}
	if n := trainCalls.Load(); n != 1 {
		t.Errorf("train ran %d times across restart, want 1", n)
	}
	for _, src := range testSentences() {
		if a, b := strings.Join(p1.Parse(src), " "), strings.Join(p2.Parse(src), " "); a != b {
			t.Fatalf("snapshot-loaded parser decodes %q, original %q", b, a)
		}
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache("")
	boom := errors.New("boom")
	calls := 0
	train := func() (*model.Parser, error) { calls++; return nil, boom }
	if _, _, err := c.GetOrTrain("bad", train); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, _, err := c.GetOrTrain("bad", train); !errors.Is(err, boom) {
		t.Fatalf("second err = %v, want boom", err)
	}
	if calls != 1 {
		t.Errorf("failing train ran %d times, want 1 (errors are cached)", calls)
	}
}

func TestKeyTracksLibraryContent(t *testing.T) {
	lib := thingpedia.Builtin()
	k1 := Key(lib, "unit", "genie", "seed=1")
	k2 := Key(thingpedia.Builtin(), "unit", "genie", "seed=1")
	if k1 != k2 {
		t.Error("identical libraries and extras must map to one key")
	}
	if k1 == Key(lib, "unit", "genie", "seed=2") {
		t.Error("different extras must change the key")
	}
	if k1 == Key(thingpedia.SpotifyOnly(), "unit", "genie", "seed=1") {
		t.Error("different libraries must change the key")
	}
	// Extras must not alias across boundaries.
	if Key(lib, "ab", "c") == Key(lib, "a", "bc") {
		t.Error("length-prefixing failed: extras alias")
	}
}
