package serve

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/model"
)

// TestCacheTransientErrorRetriesWithBackoff: a transient training failure
// (disk full, I/O pressure) must not be cached forever — the next call after
// the backoff expires retries, while calls inside the window get the cached
// error without a retry storm.
func TestCacheTransientErrorRetriesWithBackoff(t *testing.T) {
	c := NewCacheWith(CacheOptions{RetryBase: 30 * time.Millisecond, RetryMax: time.Second})
	var calls atomic.Int64
	fail := true
	train := func() (*model.Parser, error) {
		calls.Add(1)
		if fail {
			return nil, durable.MarkTransient(errors.New("trainer disk full"))
		}
		return model.Train(toyTrainPairs(), nil, nil, toyConfig(2)), nil
	}

	if _, _, err := c.GetOrTrain("k", train); err == nil {
		t.Fatal("first call should fail")
	}
	// Inside the backoff window: cached error, no retry.
	if _, _, err := c.GetOrTrain("k", train); err == nil {
		t.Fatal("call inside backoff should return the cached error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("train ran %d times inside the backoff window, want 1", n)
	}

	fail = false
	deadline := time.Now().Add(5 * time.Second)
	for {
		p, _, err := c.GetOrTrain("k", train)
		if err == nil {
			if p == nil {
				t.Fatal("nil parser after successful retry")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry never ran after backoff: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Stats()
	if st.TransientRetries == 0 {
		t.Errorf("stats = %+v, want TransientRetries > 0", st)
	}
	if st.Trainings != 2 || st.TrainFailures != 1 {
		t.Errorf("stats = %+v, want 2 trainings / 1 failure", st)
	}

	// The recovered parser is now cached: further calls are hits.
	if _, hit, err := c.GetOrTrain("k", train); err != nil || !hit {
		t.Fatalf("post-recovery: hit=%v err=%v, want hit", hit, err)
	}
}

// TestCacheDeterministicErrorNotRetried pins the quarantine half of the
// failure taxonomy: a deterministic failure stays cached (the key embeds the
// input checksum, so changed input = new key = re-admission).
func TestCacheDeterministicErrorNotRetried(t *testing.T) {
	c := NewCacheWith(CacheOptions{RetryBase: time.Millisecond})
	var calls atomic.Int64
	train := func() (*model.Parser, error) {
		calls.Add(1)
		return nil, errors.New("library does not typecheck")
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.GetOrTrain("k", train); err == nil {
			t.Fatal("want cached deterministic error")
		}
		time.Sleep(3 * time.Millisecond)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("deterministic failure retrained %d times, want 1", n)
	}
	if st := c.Stats(); st.TransientRetries != 0 {
		t.Fatalf("stats = %+v, want no transient retries", st)
	}
}

// TestCacheCorruptSnapshotRollsBack: with two stored generations, corrupting
// the newest must roll a restarted cache back to last-good without
// retraining.
func TestCacheCorruptSnapshotRollsBack(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	train := func() (*model.Parser, error) {
		calls.Add(1)
		return model.Train(toyTrainPairs(), nil, nil, toyConfig(3)), nil
	}
	key := "skill"
	c1 := NewCache(dir)
	p1, _, err := c1.GetOrTrain(key, train)
	if err != nil {
		t.Fatal(err)
	}
	// A second generation of the same snapshot (a later retrain would write
	// one); then corrupt it on disk.
	if err := c1.Store().Save(key, func(w io.Writer) error { return p1.Save(w) }); err != nil {
		t.Fatal(err)
	}
	gens := c1.Store().Generations(key)
	newest := filepath.Join(dir, fmt.Sprintf("%s.g%d", key, gens[len(gens)-1]))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x10
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var logbuf strings.Builder
	c2 := NewCacheWith(CacheOptions{
		Store: durable.Open(dir, durable.Options{}),
		Logf:  func(f string, a ...any) { fmt.Fprintf(&logbuf, f+"\n", a...) },
	})
	p2, hit, err := c2.GetOrTrain(key, train)
	if err != nil {
		t.Fatalf("restart over corrupt newest generation: %v", err)
	}
	if !hit {
		t.Error("rollback load must still count as a disk hit")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("train ran %d times, want 1 (rollback, not retrain)", n)
	}
	st := c2.Stats()
	if st.Store.Rollbacks != 1 || st.Store.Quarantined != 1 {
		t.Fatalf("store stats = %+v, want 1 rollback / 1 quarantined", st.Store)
	}
	for _, src := range testSentences() {
		if a, b := strings.Join(p1.Parse(src), " "), strings.Join(p2.Parse(src), " "); a != b {
			t.Fatalf("rolled-back parser decodes %q, original %q", b, a)
		}
	}
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Errorf("corrupt generation not quarantined: %v", err)
	}
}

// TestCacheUnreadableSnapshotLoggedAndRetrained is the cache.go:82 satellite
// fix: a snapshot that exists but cannot be decoded must be logged, counted,
// and quarantined so it cannot cost a failed load on every restart.
func TestCacheUnreadableSnapshotLoggedAndRetrained(t *testing.T) {
	dir := t.TempDir()
	key := "skill"
	// A present-but-garbage snapshot generation (torn write from a dead
	// process, say).
	seed := durable.Open(dir, durable.Options{})
	if err := seed.Save(key, func(w io.Writer) error {
		_, err := io.WriteString(w, "definitely not a parser snapshot")
		return err
	}); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	train := func() (*model.Parser, error) {
		calls.Add(1)
		return model.Train(toyTrainPairs(), nil, nil, toyConfig(4)), nil
	}
	var logbuf strings.Builder
	c := NewCacheWith(CacheOptions{
		Store: durable.Open(dir, durable.Options{}),
		Logf:  func(f string, a ...any) { fmt.Fprintf(&logbuf, f+"\n", a...) },
	})
	_, hit, err := c.GetOrTrain(key, train)
	if err != nil {
		t.Fatal(err)
	}
	if hit || calls.Load() != 1 {
		t.Fatalf("hit=%v calls=%d, want retrain", hit, calls.Load())
	}
	if st := c.Stats(); st.DiskLoadFailures != 1 {
		t.Fatalf("stats = %+v, want DiskLoadFailures 1", st)
	}
	if !strings.Contains(logbuf.String(), "unreadable") {
		t.Fatalf("unreadable snapshot not logged: %q", logbuf.String())
	}

	// The bad generation was quarantined and the retrain wrote a good one: a
	// fresh process now hits disk.
	c2 := NewCacheWith(CacheOptions{Store: durable.Open(dir, durable.Options{})})
	if _, hit, err := c2.GetOrTrain(key, train); err != nil || !hit {
		t.Fatalf("restart after repair: hit=%v err=%v, want disk hit", hit, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("train ran %d times, want 1", n)
	}
}
