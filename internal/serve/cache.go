package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/thingpedia"
)

// Key derives the snapshot-cache key for a skill library plus any extra
// discriminators that change the trained parser (scale preset, training
// strategy, seed, model config digest, ...). The library contributes its
// content checksum, so an unchanged library — even re-parsed from source —
// maps to the same key, while any skill/function/template edit changes it.
func Key(lib *thingpedia.Library, extra ...string) string {
	h := sha256.New()
	writeLP := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeLP(lib.Checksum())
	for _, e := range extra {
		writeLP(e)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache keys trained parser snapshots by skill-library checksum (see Key).
// Hits are served from memory, then from disk snapshots (model.LoadFile);
// misses train once — concurrent requests for the same key share a single
// training run — and persist the snapshot when a directory is configured.
// Re-serving an unchanged Thingpedia library therefore never retrains.
type Cache struct {
	dir string // "" = memory-only

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	once  sync.Once
	ready atomic.Bool // set once p/err are final; read before once.Do to classify hits
	p     *model.Parser
	err   error
	disk  bool // resolved from a disk snapshot rather than training
}

// NewCache returns a cache; dir is the snapshot directory ("" keeps the
// cache memory-only). The directory is created on first write.
func NewCache(dir string) *Cache {
	return &Cache{dir: dir, entries: map[string]*cacheEntry{}}
}

// GetOrTrain returns the parser for key, reporting whether it was a cache
// hit — resolved from memory or a disk snapshot without this call training
// or waiting on an in-flight training run. On a miss it invokes train —
// once per key, no matter how many goroutines ask; concurrent callers for a
// cold key share the run and all report a miss. Training errors are cached
// too, so a failing recipe is not retried storm-style; use a new key (or a
// new Cache) to retry.
func (c *Cache) GetOrTrain(key string, train func() (*model.Parser, error)) (*model.Parser, bool, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	inMemory := ok && e.ready.Load() // resolved before this call started

	e.once.Do(func() {
		defer e.ready.Store(true)
		if c.dir != "" {
			if p, err := model.LoadFile(c.path(key)); err == nil {
				e.p, e.disk = p, true
				return
			}
		}
		e.p, e.err = train()
		if e.err == nil && c.dir != "" {
			if err := os.MkdirAll(c.dir, 0o755); err == nil {
				// Persisting is best-effort: a read-only disk degrades the
				// cache to memory-only rather than failing the request.
				_ = e.p.SaveFile(c.path(key))
			}
		}
	})
	if e.err != nil {
		return nil, false, e.err
	}
	return e.p, e.disk || inMemory, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".parser")
}
