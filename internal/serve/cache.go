package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"io"
	"io/fs"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/thingpedia"
)

// Key derives the snapshot-cache key for a skill library plus any extra
// discriminators that change the trained parser (scale preset, training
// strategy, seed, model config digest, ...). The library contributes its
// content checksum, so an unchanged library — even re-parsed from source —
// maps to the same key, while any skill/function/template edit changes it.
func Key(lib *thingpedia.Library, extra ...string) string {
	h := sha256.New()
	writeLP := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeLP(lib.Checksum())
	for _, e := range extra {
		writeLP(e)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache keys trained parser snapshots by skill-library checksum (see Key).
// Hits are served from memory, then from checksum-verified disk snapshots in
// a durable.Store (a corrupt snapshot is quarantined and the last good
// generation served instead); misses train once — concurrent requests for
// the same key share a single training run — and persist the snapshot when a
// store is configured. Re-serving an unchanged Thingpedia library therefore
// never retrains.
//
// Training failures are classified through durable.IsTransient: transient
// failures (I/O pressure, disk full, timeouts) are retried with capped
// exponential backoff on later GetOrTrain calls; deterministic failures stay
// cached forever — the input is the problem, and any input change produces a
// new key, which is the re-admission path.
type Cache struct {
	store     *durable.Store // nil = memory-only
	logf      func(format string, args ...any)
	retryBase time.Duration
	retryMax  time.Duration

	mu      sync.Mutex
	entries map[string]*cacheEntry

	trainings        atomic.Uint64
	trainFailures    atomic.Uint64
	diskLoadFailures atomic.Uint64
	transientRetries atomic.Uint64
}

type cacheEntry struct {
	once  sync.Once
	ready atomic.Bool // set once p/err are final; read before once.Do to classify hits
	p     *model.Parser
	err   error
	disk  bool // resolved from a disk snapshot rather than training

	// Transient-failure retry state, written inside once.Do (backoff is also
	// seeded at construction from the entry being replaced) and read under
	// Cache.mu after ready.
	transient bool
	backoff   time.Duration
	retryAt   time.Time
}

// CacheOptions configure a Cache beyond the snapshot directory.
type CacheOptions struct {
	// Store persists snapshots (nil keeps the cache memory-only).
	Store *durable.Store
	// Logf receives snapshot-corruption and retry events (nil discards).
	Logf func(format string, args ...any)
	// RetryBase/RetryMax bound the transient-failure backoff
	// (defaults 1s / 1m).
	RetryBase time.Duration
	RetryMax  time.Duration
}

// NewCache returns a cache; dir is the snapshot directory ("" keeps the
// cache memory-only). The directory is created on first write.
func NewCache(dir string) *Cache {
	var store *durable.Store
	if dir != "" {
		store = durable.Open(dir, durable.Options{})
	}
	return NewCacheWith(CacheOptions{Store: store})
}

// NewCacheWith returns a cache with explicit options.
func NewCacheWith(o CacheOptions) *Cache {
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Second
	}
	if o.RetryMax <= 0 {
		o.RetryMax = time.Minute
	}
	return &Cache{
		store:     o.Store,
		logf:      o.Logf,
		retryBase: o.RetryBase,
		retryMax:  o.RetryMax,
		entries:   map[string]*cacheEntry{},
	}
}

// Store exposes the backing durable store (nil when memory-only); the fleet
// surfaces its counters on /metrics.
func (c *Cache) Store() *durable.Store { return c.store }

// CacheStats are the cache's cumulative counters plus those of its backing
// store.
type CacheStats struct {
	Trainings        uint64 // training runs started (cold misses + retries)
	TrainFailures    uint64 // training runs that returned an error
	DiskLoadFailures uint64 // snapshot keys whose disk load failed outright
	TransientRetries uint64 // failed entries replaced for a backoff retry
	Store            durable.Stats
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	s := CacheStats{
		Trainings:        c.trainings.Load(),
		TrainFailures:    c.trainFailures.Load(),
		DiskLoadFailures: c.diskLoadFailures.Load(),
		TransientRetries: c.transientRetries.Load(),
	}
	if c.store != nil {
		s.Store = c.store.Stats()
	}
	return s
}

// GetOrTrain returns the parser for key, reporting whether it was a cache
// hit — resolved from memory or a disk snapshot without this call training
// or waiting on an in-flight training run. On a miss it invokes train —
// once per key, no matter how many goroutines ask; concurrent callers for a
// cold key share the run and all report a miss. A deterministic training
// error is cached (a new key is the retry path); a transient one is retried
// here once its backoff expires.
func (c *Cache) GetOrTrain(key string, train func() (*model.Parser, error)) (*model.Parser, bool, error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	switch {
	case !ok:
		e = &cacheEntry{}
		c.entries[key] = e
	case e.ready.Load() && e.transient && time.Now().After(e.retryAt):
		// The previous attempt failed transiently and its backoff has
		// expired: replace the entry so this call re-runs training. The new
		// entry inherits the backoff so repeated transient failures keep
		// widening the interval.
		e = &cacheEntry{backoff: e.backoff}
		c.entries[key] = e
		c.transientRetries.Add(1)
		ok = false
	}
	c.mu.Unlock()
	inMemory := ok && e.ready.Load() // resolved before this call started

	e.once.Do(func() {
		defer e.ready.Store(true)
		if c.loadSnapshot(key, e) {
			return
		}
		c.trainings.Add(1)
		e.p, e.err = train()
		if e.err != nil {
			c.trainFailures.Add(1)
			if durable.IsTransient(e.err) {
				e.transient = true
				e.backoff = max(c.retryBase, 2*e.backoff)
				if e.backoff > c.retryMax {
					e.backoff = c.retryMax
				}
				e.retryAt = time.Now().Add(e.backoff)
				c.logf("serve: training %s failed transiently (retry in %v): %v", key, e.backoff, e.err)
			}
			return
		}
		if c.store != nil {
			// Persisting is best-effort: a full or read-only disk degrades
			// the cache to memory-only rather than failing the request.
			if err := c.store.Save(key, func(w io.Writer) error { return e.p.Save(w) }); err != nil {
				c.logf("serve: persisting snapshot %s: %v", key, err)
			}
		}
	})
	if e.err != nil {
		return nil, false, e.err
	}
	return e.p, e.disk || inMemory, nil
}

// loadSnapshot resolves the entry from a verified disk snapshot, reporting
// whether it succeeded. A key that has no snapshot is a plain miss; a key
// whose snapshot exists but cannot be loaded is logged and counted — the
// store has already quarantined the corrupt generations, so the retrain
// below repairs the cache instead of hitting the same bad file every
// restart.
func (c *Cache) loadSnapshot(key string, e *cacheEntry) bool {
	if c.store == nil {
		return false
	}
	var p *model.Parser
	err := c.store.Load(key, func(r io.Reader) error {
		var derr error
		p, derr = model.Load(r)
		return derr
	})
	if err == nil {
		e.p, e.disk = p, true
		return true
	}
	if !errors.Is(err, fs.ErrNotExist) {
		c.diskLoadFailures.Add(1)
		c.logf("serve: snapshot %s unreadable (quarantined, retraining): %v", key, err)
	}
	return false
}
