package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// toyParser trains one small pointer-generator parser shared by all serving
// tests (training dominates; the tests exercise the serving path).
var toy struct {
	once sync.Once
	p    *model.Parser
}

func toyTrainPairs() []model.Pair {
	values := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliet"}
	verbs := []struct{ nl, fn string }{
		{"tweet", "@twitter.post"},
		{"email", "@gmail.send"},
	}
	var pairs []model.Pair
	for _, v := range values {
		for _, vb := range verbs {
			pairs = append(pairs, model.Pair{
				Src: []string{vb.nl, v, "now"},
				Tgt: []string{"now", "=>", vb.fn, "param:text", "=", `"`, v, `"`},
			})
		}
	}
	return pairs
}

func toyConfig(seed int64) model.Config {
	return model.Config{
		EmbedDim: 24, HiddenDim: 32, LR: 5e-3, Epochs: 25,
		EvalEvery: 100000, PointerGen: true, MaxDecodeLen: 16,
		MinVocabCount: 4, Seed: seed,
	}
}

func toyParser() *model.Parser {
	toy.once.Do(func() {
		toy.p = model.Train(toyTrainPairs(), nil, nil, toyConfig(1))
	})
	return toy.p
}

func testSentences() [][]string {
	var out [][]string
	for _, p := range toyTrainPairs() {
		out = append(out, p.Src)
	}
	return out
}

func TestBatcherMatchesDirectDecode(t *testing.T) {
	p := toyParser()
	b := NewBatcher(p, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	defer b.Close()

	sentences := testSentences()
	want := make([]string, len(sentences))
	for i, s := range sentences {
		want[i] = strings.Join(p.Parse(s), " ")
	}

	var wg sync.WaitGroup
	for rep := 0; rep < 5; rep++ {
		for i := range sentences {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := b.ParseCtx(context.Background(), sentences[i])
				if err != nil {
					t.Errorf("ParseCtx: %v", err)
					return
				}
				if strings.Join(got, " ") != want[i] {
					t.Errorf("batched decode of %v = %q, direct = %q", sentences[i], strings.Join(got, " "), want[i])
				}
			}(i)
		}
	}
	wg.Wait()

	st := b.Stats()
	if st.Requests != int64(5*len(sentences)) {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, 5*len(sentences))
	}
	if st.Batches <= 0 || st.Batches > st.Requests {
		t.Errorf("implausible batch count: %+v", st)
	}
}

// TestBatcherFormsBatches drives many concurrent requests through a batcher
// with a generous gather window and checks that batching actually happened
// (fewer batches than requests).
func TestBatcherFormsBatches(t *testing.T) {
	p := toyParser()
	b := NewBatcher(p, Options{MaxBatch: 8, MaxWait: 25 * time.Millisecond, Workers: 2})
	defer b.Close()
	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Parse([]string{"tweet", "alpha", "now"})
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Requests != n {
		t.Fatalf("Requests = %d, want %d", st.Requests, n)
	}
	if st.Batches >= st.Requests {
		t.Errorf("no batching happened: %d batches for %d requests", st.Batches, st.Requests)
	}
}

func TestBatcherClose(t *testing.T) {
	b := NewBatcher(toyParser(), Options{})
	b.Close()
	if _, err := b.ParseCtx(context.Background(), []string{"tweet", "alpha", "now"}); !errors.Is(err, ErrClosed) {
		t.Errorf("ParseCtx after Close: err = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestBatcherContextCancel(t *testing.T) {
	b := NewBatcher(toyParser(), Options{})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.ParseCtx(ctx, []string{"tweet", "alpha", "now"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ParseCtx: err = %v, want context.Canceled", err)
	}
}

func TestServerAndClientEndToEnd(t *testing.T) {
	p := toyParser()
	srv := NewServer(p, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	ctx := context.Background()
	words := []string{"tweet", "alpha", "now"}
	want := strings.Join(p.Parse(words), " ")

	// Pre-tokenized path.
	got, err := c.ParseWords(ctx, words)
	if err != nil {
		t.Fatalf("ParseWords: %v", err)
	}
	if strings.Join(got, " ") != want {
		t.Errorf("served decode = %q, direct = %q", strings.Join(got, " "), want)
	}

	// Raw-sentence path (server-side tokenization lowercases).
	resp, err := c.ParseSentence(ctx, "Tweet alpha NOW")
	if err != nil {
		t.Fatalf("ParseSentence: %v", err)
	}
	if resp.Program != want {
		t.Errorf("sentence decode = %q, want %q", resp.Program, want)
	}
	if len(resp.Tokens) == 0 {
		t.Error("empty token list for a trained in-distribution sentence")
	}

	// eval.Decoder adapter.
	if gotDec := strings.Join(c.Parse(words), " "); gotDec != want {
		t.Errorf("Client.Parse = %q, want %q", gotDec, want)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if !h.OK || h.Requests < 3 {
		t.Errorf("unexpected health: %+v", h)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv := NewServer(toyParser(), Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	if _, err := c.ParseSentence(context.Background(), "   "); err == nil {
		t.Error("empty sentence should be rejected")
	}
	resp, err := ts.Client().Get(ts.URL + "/parse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /parse status = %d, want 405", resp.StatusCode)
	}
}
