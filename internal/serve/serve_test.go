package serve

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// toyParser trains one small pointer-generator parser shared by all serving
// tests (training dominates; the tests exercise the serving path).
var toy struct {
	once sync.Once
	p    *model.Parser
}

func toyTrainPairs() []model.Pair {
	values := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliet"}
	verbs := []struct{ nl, fn string }{
		{"tweet", "@twitter.post"},
		{"email", "@gmail.send"},
	}
	var pairs []model.Pair
	for _, v := range values {
		for _, vb := range verbs {
			pairs = append(pairs, model.Pair{
				Src: []string{vb.nl, v, "now"},
				Tgt: []string{"now", "=>", vb.fn, "param:text", "=", `"`, v, `"`},
			})
		}
	}
	return pairs
}

func toyConfig(seed int64) model.Config {
	return model.Config{
		EmbedDim: 24, HiddenDim: 32, LR: 5e-3, Epochs: 25,
		EvalEvery: 100000, PointerGen: true, MaxDecodeLen: 16,
		MinVocabCount: 4, Seed: seed,
	}
}

func toyParser() *model.Parser {
	toy.once.Do(func() {
		toy.p = model.Train(toyTrainPairs(), nil, nil, toyConfig(1))
	})
	return toy.p
}

func testSentences() [][]string {
	var out [][]string
	for _, p := range toyTrainPairs() {
		out = append(out, p.Src)
	}
	return out
}

func TestBatcherMatchesDirectDecode(t *testing.T) {
	p := toyParser()
	// 5 waves × 20 sentences fire concurrently; raise the admission bound
	// above that so this test exercises decode parity, not load shedding.
	b := NewBatcher(p, Options{MaxBatch: 4, MaxWait: time.Millisecond, MaxQueue: 200})
	defer b.Close()

	sentences := testSentences()
	want := make([]string, len(sentences))
	for i, s := range sentences {
		want[i] = strings.Join(p.Parse(s), " ")
	}

	var wg sync.WaitGroup
	for rep := 0; rep < 5; rep++ {
		for i := range sentences {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := b.ParseCtx(context.Background(), sentences[i])
				if err != nil {
					t.Errorf("ParseCtx: %v", err)
					return
				}
				if strings.Join(got, " ") != want[i] {
					t.Errorf("batched decode of %v = %q, direct = %q", sentences[i], strings.Join(got, " "), want[i])
				}
			}(i)
		}
	}
	wg.Wait()

	st := b.Stats()
	if st.Requests != int64(5*len(sentences)) {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, 5*len(sentences))
	}
	if st.Batches <= 0 || st.Batches > st.Requests {
		t.Errorf("implausible batch count: %+v", st)
	}
}

// TestBatcherFormsBatches drives many concurrent requests through a batcher
// with a generous gather window and checks that batching actually happened
// (fewer batches than requests).
func TestBatcherFormsBatches(t *testing.T) {
	p := toyParser()
	b := NewBatcher(p, Options{MaxBatch: 8, MaxWait: 25 * time.Millisecond, Workers: 2})
	defer b.Close()
	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Parse([]string{"tweet", "alpha", "now"})
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Requests != n {
		t.Fatalf("Requests = %d, want %d", st.Requests, n)
	}
	if st.Batches >= st.Requests {
		t.Errorf("no batching happened: %d batches for %d requests", st.Batches, st.Requests)
	}
}

// recordingBatchParser counts batched-decode calls and the widest window it
// saw, delegating to the real parser.
type recordingBatchParser struct {
	p          *model.Parser
	mu         sync.Mutex
	batchCalls int
	maxWindow  int
}

func (r *recordingBatchParser) Parse(words []string) []string { return r.p.Parse(words) }
func (r *recordingBatchParser) ParseBeam(words []string, width int) []string {
	return r.p.ParseBeam(words, width)
}
func (r *recordingBatchParser) ParseBatch(sentences [][]string) [][]string {
	r.mu.Lock()
	r.batchCalls++
	if len(sentences) > r.maxWindow {
		r.maxWindow = len(sentences)
	}
	r.mu.Unlock()
	return r.p.ParseBatch(sentences)
}
func (r *recordingBatchParser) ParseBeamBatch(sentences [][]string, width int) [][]string {
	r.mu.Lock()
	r.batchCalls++
	if len(sentences) > r.maxWindow {
		r.maxWindow = len(sentences)
	}
	r.mu.Unlock()
	return r.p.ParseBeamBatch(sentences, width)
}

// TestBatcherBatchedDecodeParity drives concurrent traffic through a
// batcher whose gather window is wide enough to form real batches, checks
// every reply against the sequential decode, and asserts the batched decode
// path actually carried multi-request windows. Runs under -race in CI.
func TestBatcherBatchedDecodeParity(t *testing.T) {
	for _, beam := range []int{1, 3} {
		rec := &recordingBatchParser{p: toyParser()}
		b := NewBatcher(rec, Options{MaxBatch: 8, MaxWait: 25 * time.Millisecond, Workers: 2, Beam: beam})

		sentences := testSentences()
		want := make([]string, len(sentences))
		for i, s := range sentences {
			if beam > 1 {
				want[i] = strings.Join(rec.p.ParseBeam(s, beam), " ")
			} else {
				want[i] = strings.Join(rec.p.Parse(s), " ")
			}
		}

		var wg sync.WaitGroup
		for rep := 0; rep < 3; rep++ {
			for i := range sentences {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got, err := b.ParseCtx(context.Background(), sentences[i])
					if err != nil {
						t.Errorf("beam=%d ParseCtx: %v", beam, err)
						return
					}
					if strings.Join(got, " ") != want[i] {
						t.Errorf("beam=%d batched decode of %v = %q, sequential = %q",
							beam, sentences[i], strings.Join(got, " "), want[i])
					}
				}(i)
			}
		}
		wg.Wait()
		b.Close()

		rec.mu.Lock()
		calls, widest := rec.batchCalls, rec.maxWindow
		rec.mu.Unlock()
		if calls == 0 || widest < 2 {
			t.Errorf("beam=%d: batched decode path unused (calls=%d, widest window=%d)", beam, calls, widest)
		}
	}
}

// plainParser is a Parser without the batched surface, covering the
// Batcher's per-request fallback fan-out.
type plainParser struct{ p *model.Parser }

func (pp plainParser) Parse(words []string) []string { return pp.p.Parse(words) }
func (pp plainParser) ParseBeam(words []string, width int) []string {
	return pp.p.ParseBeam(words, width)
}

// TestBatcherFallbackWithoutBatchParser drives a window through a parser
// that lacks ParseBatch: requests must still fan across the worker pool and
// answer correctly.
func TestBatcherFallbackWithoutBatchParser(t *testing.T) {
	pp := plainParser{p: toyParser()}
	b := NewBatcher(pp, Options{MaxBatch: 8, MaxWait: 20 * time.Millisecond, Workers: 4})
	defer b.Close()
	sentences := testSentences()
	var wg sync.WaitGroup
	for rep := 0; rep < 2; rep++ {
		for i := range sentences {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := b.ParseCtx(context.Background(), sentences[i])
				if err != nil {
					t.Errorf("ParseCtx: %v", err)
					return
				}
				if want := strings.Join(pp.p.Parse(sentences[i]), " "); strings.Join(got, " ") != want {
					t.Errorf("fallback decode of %v = %q, want %q", sentences[i], strings.Join(got, " "), want)
				}
			}(i)
		}
	}
	wg.Wait()
	if st := b.Stats(); st.Requests != int64(2*len(sentences)) {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, 2*len(sentences))
	}
}

// slowParser blocks each decode until released, so tests can hold requests
// in flight deterministically.
type slowParser struct {
	release chan struct{} // each decode consumes one token
	calls   atomic.Int64
}

func (s *slowParser) decodeOne() []string {
	s.calls.Add(1)
	<-s.release
	return []string{"now", "=>", "notify"}
}

func (s *slowParser) Parse(words []string) []string { return s.decodeOne() }
func (s *slowParser) ParseBeam(words []string, width int) []string {
	return s.decodeOne()
}

// TestBatcherBackpressureSheds fills the admission queue against a blocked
// decoder and checks the overflow request is shed immediately with
// ErrOverloaded — the gather loop must never block behind a full queue —
// and that draining the queue restores admission.
func TestBatcherBackpressureSheds(t *testing.T) {
	sp := &slowParser{release: make(chan struct{})}
	b := NewBatcher(sp, Options{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, MaxQueue: 2})
	defer b.Close()
	defer close(sp.release) // unblock any decode still waiting at teardown

	ctx := context.Background()
	words := []string{"tweet", "alpha", "now"}
	type res struct {
		toks []string
		err  error
	}
	replies := make(chan res, 2)
	for i := 0; i < 2; i++ {
		go func() {
			toks, err := b.ParseCtx(ctx, words)
			replies <- res{toks, err}
		}()
	}
	// Wait until the queue is fully occupied (2 admitted, 1 decoding).
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	if _, err := b.ParseCtx(ctx, words); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow request: err = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("shedding took %s; must be immediate", waited)
	}
	if st := b.Stats(); st.Shed != 1 {
		t.Errorf("Stats.Shed = %d, want 1", st.Shed)
	}

	// Release the held decodes; both admitted requests must be answered.
	sp.release <- struct{}{}
	sp.release <- struct{}{}
	for i := 0; i < 2; i++ {
		r := <-replies
		if r.err != nil {
			t.Fatalf("admitted request errored: %v", r.err)
		}
		if len(r.toks) == 0 {
			t.Fatalf("admitted request got empty reply")
		}
	}
	// Queue drained: admission works again.
	go func() { sp.release <- struct{}{} }()
	if _, err := b.ParseCtx(ctx, words); err != nil {
		t.Fatalf("post-drain request: %v", err)
	}
}

// TestBatcherCloseDrainsAdmitted holds requests in the queue, closes the
// batcher, and checks every admitted request still gets its reply (decoded
// on the old parser) — the drain semantics hot reload relies on.
func TestBatcherCloseDrainsAdmitted(t *testing.T) {
	sp := &slowParser{release: make(chan struct{}, 16)}
	b := NewBatcher(sp, Options{MaxBatch: 2, MaxWait: time.Millisecond, Workers: 1, MaxQueue: 16})
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.ParseCtx(context.Background(), []string{"tweet", "alpha", "now"})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().QueueDepth < n {
		if time.Now().After(deadline) {
			t.Fatalf("requests never queued: %+v", b.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n; i++ {
		sp.release <- struct{}{}
	}
	b.Close() // must drain all n admitted requests, then stop
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("admitted request %d dropped during Close: %v", i, err)
		}
	}
	if _, err := b.ParseCtx(context.Background(), []string{"x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close request: err = %v, want ErrClosed", err)
	}
}

// TestBatcherScoredPath checks ParseScoredCtx returns the parser's own
// scored decode through the batching path.
func TestBatcherScoredPath(t *testing.T) {
	p := toyParser()
	b := NewBatcher(p, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	defer b.Close()
	words := []string{"tweet", "alpha", "now"}
	wantToks, wantScore := p.ParseScored(words, 1)
	toks, score, err := b.ParseScoredCtx(context.Background(), words)
	if err != nil {
		t.Fatalf("ParseScoredCtx: %v", err)
	}
	if strings.Join(toks, " ") != strings.Join(wantToks, " ") || score != wantScore {
		t.Errorf("scored decode = (%q, %v), direct = (%q, %v)",
			strings.Join(toks, " "), score, strings.Join(wantToks, " "), wantScore)
	}
}

// TestBatcherBatchSizeHistogram drives traffic and checks the dispatch
// histogram accounts for every batch.
func TestBatcherBatchSizeHistogram(t *testing.T) {
	b := NewBatcher(toyParser(), Options{MaxBatch: 8, MaxWait: 20 * time.Millisecond, Workers: 2})
	defer b.Close()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Parse([]string{"tweet", "alpha", "now"})
		}()
	}
	wg.Wait()
	st := b.Stats()
	var total, weighted int64
	for i, n := range st.BatchSizes {
		total += n
		weighted += int64(i+1) * n
	}
	if total != st.Batches || weighted != st.Requests {
		t.Errorf("histogram inconsistent: %d batches / %d requests vs hist %d / %d (%v)",
			st.Batches, st.Requests, total, weighted, st.BatchSizes)
	}
}

func TestBatcherClose(t *testing.T) {
	b := NewBatcher(toyParser(), Options{})
	b.Close()
	if _, err := b.ParseCtx(context.Background(), []string{"tweet", "alpha", "now"}); !errors.Is(err, ErrClosed) {
		t.Errorf("ParseCtx after Close: err = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
}

func TestBatcherContextCancel(t *testing.T) {
	b := NewBatcher(toyParser(), Options{})
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.ParseCtx(ctx, []string{"tweet", "alpha", "now"}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ParseCtx: err = %v, want context.Canceled", err)
	}
}

func TestServerAndClientEndToEnd(t *testing.T) {
	p := toyParser()
	srv := NewServer(p, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	ctx := context.Background()
	words := []string{"tweet", "alpha", "now"}
	want := strings.Join(p.Parse(words), " ")

	// Pre-tokenized path.
	got, err := c.ParseWords(ctx, words)
	if err != nil {
		t.Fatalf("ParseWords: %v", err)
	}
	if strings.Join(got, " ") != want {
		t.Errorf("served decode = %q, direct = %q", strings.Join(got, " "), want)
	}

	// Raw-sentence path (server-side tokenization lowercases).
	resp, err := c.ParseSentence(ctx, "Tweet alpha NOW")
	if err != nil {
		t.Fatalf("ParseSentence: %v", err)
	}
	if resp.Program != want {
		t.Errorf("sentence decode = %q, want %q", resp.Program, want)
	}
	if len(resp.Tokens) == 0 {
		t.Error("empty token list for a trained in-distribution sentence")
	}

	// eval.Decoder adapter.
	if gotDec := strings.Join(c.Parse(words), " "); gotDec != want {
		t.Errorf("Client.Parse = %q, want %q", gotDec, want)
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if !h.OK || h.Requests < 3 {
		t.Errorf("unexpected health: %+v", h)
	}
}

// TestServerSheds429 drives the HTTP front end into admission-control
// shedding and checks the 429 + Retry-After contract, plus the Client's
// ErrOverloaded mapping.
func TestServerSheds429(t *testing.T) {
	sp := &slowParser{release: make(chan struct{}, 4)}
	srv := NewServer(sp, Options{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, MaxQueue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	defer close(sp.release)

	// Occupy the single queue slot with a blocked request.
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Batcher().ParseCtx(context.Background(), []string{"tweet", "alpha", "now"})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Batcher().Stats().QueueDepth < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never occupied")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/parse", "application/json",
		bytes.NewReader([]byte(`{"sentence":"tweet alpha now"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overloaded POST /parse status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 reply missing Retry-After")
	}

	// The Client surfaces the shed as ErrOverloaded.
	c := NewClient(ts.URL)
	if _, err := c.ParseSentence(context.Background(), "tweet alpha now"); !errors.Is(err, ErrOverloaded) {
		t.Errorf("client error = %v, want ErrOverloaded", err)
	}

	sp.release <- struct{}{}
	<-done
}

func TestServerRejectsBadRequests(t *testing.T) {
	srv := NewServer(toyParser(), Options{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	if _, err := c.ParseSentence(context.Background(), "   "); err == nil {
		t.Error("empty sentence should be rejected")
	}
	resp, err := ts.Client().Get(ts.URL + "/parse")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET /parse status = %d, want 405", resp.StatusCode)
	}
}
