package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// StatusError is a non-2xx HTTP reply surfaced as a typed error, so retry
// policy can branch on the status code and the server's parsed Retry-After
// hint instead of substring-matching flattened error text.
type StatusError struct {
	Status     int
	RetryAfter time.Duration // parsed Retry-After hint (0 when absent)
	Msg        string        // response body, truncated
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: http %d: %s", e.Status, e.Msg)
}

// Is keeps errors.Is(err, ErrOverloaded) matching remote admission-control
// sheds (HTTP 429), as the older string-flattened errors did by wrapping.
func (e *StatusError) Is(target error) bool {
	return target == ErrOverloaded && e.Status == http.StatusTooManyRequests
}

// Temporary reports whether the status names a transient condition worth
// retrying: shed (429), or an unavailable/overwhelmed hop (502, 503, 504).
func (e *StatusError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// NewStatusError drains (a prefix of) a non-2xx response's body into a
// StatusError. Shared with the gateway's backend classification.
func NewStatusError(resp *http.Response) *StatusError {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return &StatusError{
		Status:     resp.StatusCode,
		RetryAfter: ParseRetryAfter(resp.Header.Get("Retry-After")),
		Msg:        strings.TrimSpace(string(msg)),
	}
}

// ParseRetryAfter parses a Retry-After header value (delay-seconds or
// HTTP-date); 0 means absent or unparsable.
func ParseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.ParseFloat(v, 64); err == nil && secs >= 0 {
		return time.Duration(secs * float64(time.Second))
	}
	if t, err := http.ParseTime(v); err == nil {
		return max(0, time.Until(t))
	}
	return 0
}

// RetryPolicy bounds the Client's shed-aware retry loop. Retries are
// attempted only for transient failures — transport errors and Temporary
// statuses — with capped exponential backoff, jittered by a deterministic
// seedable RNG, honoring the server's Retry-After when it is longer, and
// never sleeping past the request context's deadline budget.
type RetryPolicy struct {
	// MaxRetries is how many additional attempts follow a failed first one.
	MaxRetries int
	// BaseBackoff is the first retry's backoff before jitter (default 10ms);
	// each further retry doubles it up to MaxBackoff (default 500ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed seeds the jitter RNG, so tests can fix the backoff schedule
	// (0 uses seed 1).
	Seed int64
}

type retryState struct {
	policy RetryPolicy
	mu     sync.Mutex
	rng    *rand.Rand
}

// backoff is the jittered, capped wait before retry number attempt (1-based):
// min(MaxBackoff, BaseBackoff<<(attempt-1)) scaled by a uniform [0.5, 1.5).
func (r *retryState) backoff(attempt int) time.Duration {
	d := min(r.policy.MaxBackoff, r.policy.BaseBackoff<<(attempt-1))
	r.mu.Lock()
	jitter := 0.5 + r.rng.Float64()
	r.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// Client talks to a Server, fleet, or gateway over HTTP. Its Parse method
// implements eval.Decoder, so an evaluation harness can score a remote
// parser through the full batched serving path. A context deadline is
// propagated to the server as a deadline-budget header (DeadlineHeader), and
// WithRetry arms transparent shed-aware retry.
type Client struct {
	base  string
	hc    *http.Client
	retry *retryState
}

// NewClient returns a client for a server base URL (e.g.
// "http://127.0.0.1:8080"). A trailing slash is trimmed.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// WithRetry arms the client's retry loop and returns the client (chainable
// off NewClient). Not safe to call concurrently with in-flight requests.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 500 * time.Millisecond
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	c.retry = &retryState{policy: p, rng: rand.New(rand.NewSource(seed))}
	return c
}

// ParseRequestCtx sends one parse request and decodes the reply, retrying
// transient failures when the client was armed with WithRetry.
func (c *Client) ParseRequestCtx(ctx context.Context, req ParseRequest) (ParseResponse, error) {
	resp, err := c.parseOnce(ctx, req)
	if err == nil || c.retry == nil {
		return resp, err
	}
	for attempt := 1; attempt <= c.retry.policy.MaxRetries; attempt++ {
		if !retryable(err) {
			return resp, err
		}
		wait := c.retry.backoff(attempt)
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > wait {
			wait = se.RetryAfter // the server named its price; honor it
		}
		if dl, ok := ctx.Deadline(); ok && time.Now().Add(wait).After(dl) {
			return resp, err // budget-bounded: don't sleep past the deadline
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return resp, err
		}
		if resp, err = c.parseOnce(ctx, req); err == nil {
			return resp, nil
		}
	}
	return resp, err
}

// retryable reports whether an attempt's failure is transient: transport
// errors are (connection refused/reset, truncated replies), Temporary HTTP
// statuses are, an exhausted deadline budget or canceled context is not.
func retryable(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Temporary()
	}
	return true
}

// parseOnce is one attempt: marshal, send (stamping the remaining deadline
// budget), classify the status, decode.
func (c *Client) parseOnce(ctx context.Context, req ParseRequest) (ParseResponse, error) {
	var resp ParseResponse
	body, err := json.Marshal(req)
	if err != nil {
		return resp, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/parse", bytes.NewReader(body))
	if err != nil {
		return resp, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	SetDeadlineHeader(hreq.Header, ctx)
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return resp, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return resp, NewStatusError(hresp)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// ParseSentence parses a raw sentence (server-side tokenization).
func (c *Client) ParseSentence(ctx context.Context, sentence string) (ParseResponse, error) {
	return c.ParseRequestCtx(ctx, ParseRequest{Sentence: sentence})
}

// ParseWords parses a pre-tokenized sentence.
func (c *Client) ParseWords(ctx context.Context, words []string) ([]string, error) {
	resp, err := c.ParseRequestCtx(ctx, ParseRequest{Words: words})
	if err != nil {
		return nil, err
	}
	return resp.Tokens, nil
}

// Parse implements eval.Decoder; transport errors decode to nil (scored as
// wrong), keeping evaluation total-preserving.
//
//genielint:ctx-root interface adapter: the eval.Decoder contract has no ctx parameter
func (c *Client) Parse(words []string) []string {
	out, err := c.ParseWords(context.Background(), words)
	if err != nil {
		return nil
	}
	return out
}

// ParseSkillCtx parses a pre-tokenized sentence against one skill of a
// fleet server (the router rejects unknown skills with 404).
func (c *Client) ParseSkillCtx(ctx context.Context, skill string, words []string) (ParseResponse, error) {
	return c.ParseRequestCtx(ctx, ParseRequest{Skill: skill, Words: words})
}

// ParseSkill implements eval.SkillDecoder against a fleet server; transport
// errors decode to nil (scored as wrong), like Parse.
//
//genielint:ctx-root interface adapter: the eval.SkillDecoder contract has no ctx parameter
func (c *Client) ParseSkill(skill string, words []string) []string {
	resp, err := c.ParseSkillCtx(context.Background(), skill, words)
	if err != nil {
		return nil
	}
	return resp.Tokens
}

// Skills fetches a fleet server's GET /skills.
func (c *Client) Skills(ctx context.Context) (SkillsResponse, error) {
	var out SkillsResponse
	err := c.getJSON(ctx, "/skills", &out)
	return out, err
}

// Metrics fetches a fleet server's GET /metrics.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var out MetricsResponse
	err := c.getJSON(ctx, "/metrics", &out)
	return out, err
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: %s: %w", path, NewStatusError(resp))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.getJSON(ctx, "/healthz", &h)
	return h, err
}
