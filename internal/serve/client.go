package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a Server over HTTP. Its Parse method implements
// eval.Decoder, so an evaluation harness can score a remote parser through
// the full batched serving path.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server base URL (e.g.
// "http://127.0.0.1:8080"). A trailing slash is trimmed.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// ParseRequestCtx sends one parse request and decodes the reply.
func (c *Client) ParseRequestCtx(ctx context.Context, req ParseRequest) (ParseResponse, error) {
	var resp ParseResponse
	body, err := json.Marshal(req)
	if err != nil {
		return resp, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/parse", bytes.NewReader(body))
	if err != nil {
		return resp, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return resp, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return resp, fmt.Errorf("serve: %s: %s", hresp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// ParseSentence parses a raw sentence (server-side tokenization).
func (c *Client) ParseSentence(ctx context.Context, sentence string) (ParseResponse, error) {
	return c.ParseRequestCtx(ctx, ParseRequest{Sentence: sentence})
}

// ParseWords parses a pre-tokenized sentence.
func (c *Client) ParseWords(ctx context.Context, words []string) ([]string, error) {
	resp, err := c.ParseRequestCtx(ctx, ParseRequest{Words: words})
	if err != nil {
		return nil, err
	}
	return resp.Tokens, nil
}

// Parse implements eval.Decoder; transport errors decode to nil (scored as
// wrong), keeping evaluation total-preserving.
func (c *Client) Parse(words []string) []string {
	out, err := c.ParseWords(context.Background(), words)
	if err != nil {
		return nil
	}
	return out
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return h, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("serve: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&h)
	return h, err
}
