package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a Server over HTTP. Its Parse method implements
// eval.Decoder, so an evaluation harness can score a remote parser through
// the full batched serving path.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for a server base URL (e.g.
// "http://127.0.0.1:8080"). A trailing slash is trimmed.
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// ParseRequestCtx sends one parse request and decodes the reply.
func (c *Client) ParseRequestCtx(ctx context.Context, req ParseRequest) (ParseResponse, error) {
	var resp ParseResponse
	body, err := json.Marshal(req)
	if err != nil {
		return resp, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/parse", bytes.NewReader(body))
	if err != nil {
		return resp, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return resp, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode == http.StatusTooManyRequests {
		// Surface admission-control shedding as the sentinel the batcher
		// itself returns, so callers can match errors.Is(err, ErrOverloaded)
		// locally and remotely alike.
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return resp, fmt.Errorf("serve: %s: %w", strings.TrimSpace(string(msg)), ErrOverloaded)
	}
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return resp, fmt.Errorf("serve: %s: %s", hresp.Status, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(hresp.Body).Decode(&resp); err != nil {
		return resp, err
	}
	return resp, nil
}

// ParseSentence parses a raw sentence (server-side tokenization).
func (c *Client) ParseSentence(ctx context.Context, sentence string) (ParseResponse, error) {
	return c.ParseRequestCtx(ctx, ParseRequest{Sentence: sentence})
}

// ParseWords parses a pre-tokenized sentence.
func (c *Client) ParseWords(ctx context.Context, words []string) ([]string, error) {
	resp, err := c.ParseRequestCtx(ctx, ParseRequest{Words: words})
	if err != nil {
		return nil, err
	}
	return resp.Tokens, nil
}

// Parse implements eval.Decoder; transport errors decode to nil (scored as
// wrong), keeping evaluation total-preserving.
func (c *Client) Parse(words []string) []string {
	out, err := c.ParseWords(context.Background(), words)
	if err != nil {
		return nil
	}
	return out
}

// ParseSkillCtx parses a pre-tokenized sentence against one skill of a
// fleet server (the router rejects unknown skills with 404).
func (c *Client) ParseSkillCtx(ctx context.Context, skill string, words []string) (ParseResponse, error) {
	return c.ParseRequestCtx(ctx, ParseRequest{Skill: skill, Words: words})
}

// ParseSkill implements eval.SkillDecoder against a fleet server; transport
// errors decode to nil (scored as wrong), like Parse.
func (c *Client) ParseSkill(skill string, words []string) []string {
	resp, err := c.ParseSkillCtx(context.Background(), skill, words)
	if err != nil {
		return nil
	}
	return resp.Tokens
}

// Skills fetches a fleet server's GET /skills.
func (c *Client) Skills(ctx context.Context) (SkillsResponse, error) {
	var out SkillsResponse
	err := c.getJSON(ctx, "/skills", &out)
	return out, err
}

// Metrics fetches a fleet server's GET /metrics.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var out MetricsResponse
	err := c.getJSON(ctx, "/metrics", &out)
	return out, err
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var h HealthResponse
	err := c.getJSON(ctx, "/healthz", &h)
	return h, err
}
