package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherDeadlineExpiresInQueueNoDecode holds the single worker on a
// blocked decode while a second request's deadline budget runs out in the
// queue: the expired request must be answered with its context error and
// must not cost a decode.
func TestBatcherDeadlineExpiresInQueueNoDecode(t *testing.T) {
	sp := &slowParser{release: make(chan struct{}, 4)}
	b := NewBatcher(sp, Options{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, MaxQueue: 8})
	defer b.Close()

	// Occupy the worker.
	done := make(chan struct{})
	go func() {
		defer close(done)
		b.ParseCtx(context.Background(), []string{"tweet", "alpha", "now"})
	}()
	waitFor(t, "first decode to start", func() bool { return sp.calls.Load() == 1 })

	// Queue a request whose budget expires while it waits.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := b.ParseCtx(ctx, []string{"tweet", "bravo", "now"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline ParseCtx: err = %v, want DeadlineExceeded", err)
	}

	// Free the worker; it must answer the expired request without decoding.
	sp.release <- struct{}{}
	<-done
	waitFor(t, "expired request to be answered", func() bool { return b.Stats().Expired == 1 })
	if got := sp.calls.Load(); got != 1 {
		t.Errorf("decode calls = %d, want 1 (no decode spent on the expired request)", got)
	}
}

// TestServerDeadlineHeader408 proves deadline propagation end to end over
// HTTP: a request whose X-Genie-Deadline-Ms budget is shorter than the queue
// wait answers 408 without a decode being spent on it.
func TestServerDeadlineHeader408(t *testing.T) {
	sp := &slowParser{release: make(chan struct{}, 4)}
	srv := NewServer(sp, Options{MaxBatch: 1, MaxWait: time.Millisecond, Workers: 1, MaxQueue: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Batcher().ParseCtx(context.Background(), []string{"tweet", "alpha", "now"})
	}()
	waitFor(t, "first decode to start", func() bool { return sp.calls.Load() == 1 })

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/parse",
		strings.NewReader(`{"sentence":"tweet bravo now"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineHeader, "25")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Errorf("expired-budget POST /parse status = %d, want 408", resp.StatusCode)
	}

	sp.release <- struct{}{}
	<-done
	waitFor(t, "expired request to be answered", func() bool { return srv.Batcher().Stats().Expired >= 1 })
	if got := sp.calls.Load(); got != 1 {
		t.Errorf("decode calls = %d, want 1 (408 must not cost a decode)", got)
	}
}

// panickyParser panics on the sentinel word, on both the per-request and the
// batched surfaces — the poison-pill request that must not take the worker
// or its window down.
type panickyParser struct{ decodes atomic.Int64 }

func (p *panickyParser) decodeOne(words []string) []string {
	p.decodes.Add(1)
	if len(words) > 0 && words[0] == "poison" {
		panic("poisoned input")
	}
	return []string{"now", "=>", "notify"}
}

func (p *panickyParser) Parse(words []string) []string { return p.decodeOne(words) }
func (p *panickyParser) ParseBeam(words []string, width int) []string {
	return p.decodeOne(words)
}
func (p *panickyParser) ParseBatch(sentences [][]string) [][]string {
	out := make([][]string, len(sentences))
	for i, s := range sentences {
		out[i] = p.decodeOne(s)
	}
	return out
}
func (p *panickyParser) ParseBeamBatch(sentences [][]string, width int) [][]string {
	return p.ParseBatch(sentences)
}

// TestBatcherPanicIsolation gathers a window with one poison-pill request:
// the batched decode panics, the window re-decodes per request, the healthy
// requests answer normally, only the poisoned one errors with
// ErrDecodeFailed, and the worker survives to serve the next request.
func TestBatcherPanicIsolation(t *testing.T) {
	pp := &panickyParser{}
	b := NewBatcher(pp, Options{MaxBatch: 4, MaxWait: 25 * time.Millisecond, Workers: 1})
	defer b.Close()

	words := [][]string{
		{"tweet", "alpha", "now"},
		{"poison", "bravo", "now"},
		{"tweet", "charlie", "now"},
	}
	errs := make([]error, len(words))
	var wg sync.WaitGroup
	for i := range words {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.ParseCtx(context.Background(), words[i])
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		poisoned := words[i][0] == "poison"
		switch {
		case poisoned && !errors.Is(err, ErrDecodeFailed):
			t.Errorf("poisoned request err = %v, want ErrDecodeFailed", err)
		case !poisoned && err != nil:
			t.Errorf("healthy request %v err = %v, want nil", words[i], err)
		}
	}
	if st := b.Stats(); st.Failed < 1 {
		t.Errorf("Stats.Failed = %d, want >= 1", st.Failed)
	}

	// The worker survived the panic.
	if _, err := b.ParseCtx(context.Background(), []string{"tweet", "delta", "now"}); err != nil {
		t.Errorf("request after panic: %v", err)
	}
}

// TestServerPanicAnswers500 checks the HTTP mapping of a recovered decode
// panic.
func TestServerPanicAnswers500(t *testing.T) {
	srv := NewServer(&panickyParser{}, Options{MaxBatch: 1, MaxWait: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, err := http.Post(ts.URL+"/parse", "application/json",
		strings.NewReader(`{"words":["poison"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("poisoned POST /parse status = %d, want 500", resp.StatusCode)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0.25", 250 * time.Millisecond},
		{"garbage", 0},
		{"-1", 0},
	}
	for _, c := range cases {
		if got := ParseRetryAfter(c.in); got != c.want {
			t.Errorf("ParseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// HTTP-date form: a date in the future parses to a positive wait.
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if got := ParseRetryAfter(future); got <= 0 || got > 3*time.Second {
		t.Errorf("ParseRetryAfter(%q) = %v, want in (0, 3s]", future, got)
	}
}

// TestClientStatusError checks that non-2xx replies surface as typed
// *StatusError with the status and parsed Retry-After, and that 429 still
// matches ErrOverloaded through errors.Is.
func TestClientStatusError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1.5")
		http.Error(w, "queue full", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	_, err := NewClient(ts.URL).ParseWords(context.Background(), []string{"x"})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v (%T), want *StatusError", err, err)
	}
	if se.Status != http.StatusTooManyRequests {
		t.Errorf("Status = %d, want 429", se.Status)
	}
	if se.RetryAfter != 1500*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 1.5s", se.RetryAfter)
	}
	if se.Msg != "queue full" {
		t.Errorf("Msg = %q, want %q", se.Msg, "queue full")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("errors.Is(err, ErrOverloaded) = false for a 429, want true")
	}
}

// TestClientRetryRecovers sheds the first two attempts and answers the
// third: an armed client must succeed transparently.
func TestClientRetryRecovers(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0.01")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		WriteJSON(w, ParseResponse{Tokens: []string{"now", "=>", "notify"}, Program: "now => notify"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL).WithRetry(RetryPolicy{MaxRetries: 3, BaseBackoff: time.Millisecond, Seed: 42})
	toks, err := c.ParseWords(context.Background(), []string{"tweet", "alpha", "now"})
	if err != nil {
		t.Fatalf("ParseWords with retry: %v", err)
	}
	if strings.Join(toks, " ") != "now => notify" {
		t.Errorf("tokens = %v", toks)
	}
	if n := attempts.Load(); n != 3 {
		t.Errorf("attempts = %d, want 3", n)
	}
}

// TestClientRetryBudgetBounded: retries never sleep past the context
// deadline, and non-temporary statuses are not retried at all.
func TestClientRetryBudgetBounded(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := NewClient(ts.URL).WithRetry(RetryPolicy{MaxRetries: 10, BaseBackoff: 50 * time.Millisecond, Seed: 7})
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.ParseWords(ctx, []string{"x"})
	if err == nil {
		t.Fatal("want error from an always-503 server")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("retry loop overran the deadline budget: %v", elapsed)
	}
	if n := attempts.Load(); n >= 10 {
		t.Errorf("attempts = %d, want far fewer than MaxRetries+1 under an 80ms budget", n)
	}

	// A terminal status is not retried.
	attempts.Store(0)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, "no such skill", http.StatusNotFound)
	}))
	defer ts2.Close()
	c2 := NewClient(ts2.URL).WithRetry(RetryPolicy{MaxRetries: 5, BaseBackoff: time.Millisecond})
	_, err = c2.ParseWords(context.Background(), []string{"x"})
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want *StatusError 404", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Errorf("attempts on 404 = %d, want 1 (not retryable)", n)
	}
}
