package durable

import (
	"context"
	"errors"
	"os"
	"syscall"
)

// transienter is implemented by errors that carry an explicit retryability
// verdict (MarkTransient attaches one).
type transienter interface {
	Transient() bool
}

type transientErr struct{ err error }

func (t transientErr) Error() string   { return t.err.Error() }
func (t transientErr) Unwrap() error   { return t.err }
func (t transientErr) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true for it regardless of
// its underlying type. Use it when the caller knows the failure is
// environmental (a remote trainer timed out, a resource was briefly
// exhausted) but the error chain doesn't say so.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return transientErr{err: err}
}

// IsTransient classifies err for the fleet's recovery policy: transient
// errors (I/O pressure, disk full, timeouts, interrupted syscalls) are worth
// retrying with backoff; everything else is deterministic — the same input
// will fail the same way — and should quarantine until the input changes.
//
// A missing artifact (ErrNotFound / fs.ErrNotExist) is deterministic: the
// caller's move is to rebuild it, not retry the load.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	if errors.Is(err, context.DeadlineExceeded) || os.IsTimeout(err) {
		return true
	}
	var errno syscall.Errno
	if errors.As(err, &errno) {
		switch errno {
		case syscall.ENOSPC, syscall.EIO, syscall.EAGAIN, syscall.EINTR,
			syscall.EMFILE, syscall.ENFILE, syscall.ETIMEDOUT,
			syscall.ECONNRESET, syscall.ECONNREFUSED:
			return true
		}
	}
	return false
}

// ClassifyString names err's recovery class for logs and status pages.
func ClassifyString(err error) string {
	if err == nil {
		return "ok"
	}
	if IsTransient(err) {
		return "transient"
	}
	return "deterministic"
}
