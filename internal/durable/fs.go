// Package durable is the crash-safe on-disk artifact store under the fleet's
// snapshot cache and training checkpoints. Every artifact is written
// atomically (temp file, fsync, rename, directory fsync) inside a
// checksummed envelope, and the store keeps the last N generations per key:
// a corrupt or torn file is quarantined to a .corrupt sidecar and the load
// falls back to the last good generation, so a crash — or a disk fault —
// costs at most the newest write, never the artifact.
//
// The package also owns the fleet's failure taxonomy (IsTransient): which
// errors are worth retrying with backoff (I/O, ENOSPC, timeouts) and which
// are deterministic (a library that does not parse fails the same way every
// time) and should quarantine until the input changes.
package durable

import (
	"io"
	"os"
)

// FS is the filesystem surface the store writes through. The default is the
// real filesystem (OSFS); internal/faultinject wraps it to inject torn
// writes, ENOSPC, read bit-flips and slow fsync underneath the store.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	// CreateTemp creates a unique temp file in dir (os.CreateTemp pattern
	// semantics); the store writes, syncs, closes and renames it.
	CreateTemp(dir, pattern string) (File, error)
	Open(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	// SyncDir fsyncs a directory, making a completed rename durable.
	SyncDir(name string) error
}

// File is the store's view of one open file.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error             { return os.Remove(name) }

func (OSFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
