package durable

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Envelope format of one stored generation:
//
//	magic   "GENIEDUR" (8 bytes)
//	version uint32 little-endian (currently 1)
//	payload caller bytes, streamed through sha256
//	trailer uint64 payload length + 32-byte sha256 of the payload
//
// The trailer makes torn files self-evident: a write that stopped early (or
// a flipped bit anywhere in the payload) fails verification on load, and the
// store falls back to the previous generation instead of handing corrupt
// bytes to the decoder.
const (
	storeMagic   = "GENIEDUR"
	storeVersion = 1
	trailerSize  = 8 + sha256.Size
)

// keepGenerations is how many generations of each key survive a Save: the
// one just written plus the last good one, so a corrupt newest generation
// always has a rollback target.
const keepGenerations = 2

// ErrNotFound reports a key with no stored generations. It wraps
// fs.ErrNotExist so callers that cannot import this package (through the
// model.CheckpointStore interface, say) can still classify it with
// errors.Is(err, fs.ErrNotExist).
var ErrNotFound = fmt.Errorf("durable: not found: %w", fs.ErrNotExist)

// Options configure a Store. The zero value is the real filesystem with
// silent logging.
type Options struct {
	// FS is the filesystem the store writes through (nil = OSFS). Fault
	// injection (internal/faultinject.FaultFS) slots in here.
	FS FS
	// Logf receives quarantine and rollback events (nil discards them).
	Logf func(format string, args ...any)
}

// Stats are the store's cumulative counters, surfaced on /metrics.
type Stats struct {
	Saves        uint64 // generations written durably
	SaveFailures uint64 // Save calls that failed (disk full, I/O error)
	Loads        uint64 // successful loads (any generation)
	LoadFailures uint64 // generations that failed verification or decode
	Quarantined  uint64 // corrupt generations renamed to .corrupt sidecars
	Rollbacks    uint64 // loads answered by an older generation than the newest
}

// Store is a crash-safe generational key/blob store rooted at one directory.
// Generations of key k live in files "k.g<N>"; Save writes generation N+1
// atomically and prunes to the newest keepGenerations; Load verifies the
// newest generation's checksum and rolls back to older ones when it is
// corrupt. All methods are safe for concurrent use.
type Store struct {
	dir  string
	fsys FS
	logf func(format string, args ...any)

	mu      sync.Mutex
	scanned bool
	gens    map[string][]uint64 // per key, ascending
	stats   Stats
}

// Open returns a store rooted at dir. The directory is created (and existing
// generations discovered) lazily on first use, so opening a store on a
// read-only or missing path does not fail until it matters.
func Open(dir string, o Options) *Store {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return &Store{dir: dir, fsys: o.FS, logf: o.Logf, gens: map[string][]uint64{}}
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ensure creates the directory and scans existing generation files once.
// Callers hold s.mu.
func (s *Store) ensure() error {
	if s.scanned {
		return nil
	}
	if err := s.fsys.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("durable: creating %s: %w", s.dir, err)
	}
	ents, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("durable: scanning %s: %w", s.dir, err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		key, gen, ok := parseGenName(e.Name())
		if !ok {
			continue
		}
		s.gens[key] = append(s.gens[key], gen)
	}
	for key := range s.gens {
		g := s.gens[key]
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	}
	s.scanned = true
	return nil
}

// parseGenName splits "key.g<N>" into its key and generation; temp files,
// .corrupt sidecars and foreign files report !ok.
func parseGenName(name string) (key string, gen uint64, ok bool) {
	if strings.HasSuffix(name, ".corrupt") || strings.HasPrefix(name, ".") {
		return "", 0, false
	}
	i := strings.LastIndex(name, ".g")
	if i <= 0 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(name[i+2:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return name[:i], n, true
}

func (s *Store) genPath(key string, gen uint64) string {
	return s.dir + "/" + key + ".g" + strconv.FormatUint(gen, 10)
}

func validKey(key string) error {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.HasPrefix(key, ".") {
		return fmt.Errorf("durable: invalid key %q", key)
	}
	return nil
}

// Save durably writes one new generation of key: temp file, checksummed
// envelope, fsync, rename into place, directory fsync. Older generations
// beyond keepGenerations are pruned best-effort. write receives the payload
// writer; its error aborts the save with nothing renamed into place.
func (s *Store) Save(key string, write func(w io.Writer) error) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		s.stats.SaveFailures++
		return err
	}
	gens := s.gens[key]
	var gen uint64 = 1
	if len(gens) > 0 {
		gen = gens[len(gens)-1] + 1
	}
	if err := s.writeGeneration(key, gen, write); err != nil {
		s.stats.SaveFailures++
		return err
	}
	s.stats.Saves++
	gens = append(gens, gen)
	// Prune beyond the keep window (and any stale sidecar of the pruned
	// generation); failures here are cosmetic and ignored.
	for len(gens) > keepGenerations {
		old := gens[0]
		gens = gens[1:]
		_ = s.fsys.Remove(s.genPath(key, old))
		_ = s.fsys.Remove(s.genPath(key, old) + ".corrupt")
	}
	s.gens[key] = gens
	return nil
}

func (s *Store) writeGeneration(key string, gen uint64, write func(w io.Writer) error) (err error) {
	tmp, err := s.fsys.CreateTemp(s.dir, "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: creating temp for %s: %w", key, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = s.fsys.Remove(tmpName)
		}
	}()
	bw := bufio.NewWriter(tmp)
	var hdr [12]byte
	copy(hdr[:8], storeMagic)
	binary.LittleEndian.PutUint32(hdr[8:], storeVersion)
	if _, err = bw.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: writing %s header: %w", key, err)
	}
	h := sha256.New()
	cw := &countingWriter{w: io.MultiWriter(bw, h)}
	if err = write(cw); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: writing %s payload: %w", key, err)
	}
	var trailer [trailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:8], uint64(cw.n))
	h.Sum(trailer[8:8])
	if _, err = bw.Write(trailer[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: writing %s trailer: %w", key, err)
	}
	if err = bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: flushing %s: %w", key, err)
	}
	if err = tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: syncing %s: %w", key, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing %s: %w", key, err)
	}
	if err = s.fsys.Rename(tmpName, s.genPath(key, gen)); err != nil {
		return fmt.Errorf("durable: publishing %s generation %d: %w", key, gen, err)
	}
	if err = s.fsys.SyncDir(s.dir); err != nil {
		return fmt.Errorf("durable: syncing directory for %s: %w", key, err)
	}
	return nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Load reads the newest verifiable generation of key through read. A
// generation whose envelope fails verification — or whose payload read
// callback errors, which from the store's perspective is the same thing: the
// bytes do not decode — is quarantined to a .corrupt sidecar and the next
// older generation is tried (counted as a rollback when one succeeds).
// ErrNotFound (wrapping fs.ErrNotExist) reports a key that has no
// generations at all.
func (s *Store) Load(key string, read func(r io.Reader) error) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	if err := s.ensure(); err != nil {
		s.mu.Unlock()
		return err
	}
	gens := append([]uint64(nil), s.gens[key]...)
	s.mu.Unlock()
	if len(gens) == 0 {
		return fmt.Errorf("%w (key %s)", ErrNotFound, key)
	}
	var firstErr error
	for i := len(gens) - 1; i >= 0; i-- {
		gen := gens[i]
		err := s.loadGeneration(key, gen, read)
		if err == nil {
			s.mu.Lock()
			s.stats.Loads++
			if i < len(gens)-1 {
				s.stats.Rollbacks++
			}
			s.mu.Unlock()
			if i < len(gens)-1 {
				s.logf("durable: %s: rolled back to generation %d (newest failed verification)", key, gen)
			}
			return nil
		}
		if firstErr == nil {
			firstErr = err
		}
		s.quarantine(key, gen, err)
	}
	return fmt.Errorf("durable: %s: every generation failed verification: %w", key, firstErr)
}

// loadGeneration verifies and decodes one generation file.
func (s *Store) loadGeneration(key string, gen uint64, read func(r io.Reader) error) error {
	f, err := s.fsys.Open(s.genPath(key, gen))
	if err != nil {
		return fmt.Errorf("durable: opening %s generation %d: %w", key, gen, err)
	}
	data, err := io.ReadAll(bufio.NewReader(f))
	cerr := f.Close()
	if err != nil {
		return fmt.Errorf("durable: reading %s generation %d: %w", key, gen, err)
	}
	if cerr != nil {
		return fmt.Errorf("durable: closing %s generation %d: %w", key, gen, cerr)
	}
	if len(data) < 12+trailerSize {
		return fmt.Errorf("durable: %s generation %d truncated (%d bytes)", key, gen, len(data))
	}
	if string(data[:8]) != storeMagic {
		return fmt.Errorf("durable: %s generation %d: bad magic %q", key, gen, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != storeVersion {
		return fmt.Errorf("durable: %s generation %d: unsupported envelope version %d", key, gen, v)
	}
	payload := data[12 : len(data)-trailerSize]
	trailer := data[len(data)-trailerSize:]
	if n := binary.LittleEndian.Uint64(trailer[:8]); n != uint64(len(payload)) {
		return fmt.Errorf("durable: %s generation %d torn: trailer says %d payload bytes, file holds %d", key, gen, n, len(payload))
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], trailer[8:]) {
		return fmt.Errorf("durable: %s generation %d: payload checksum mismatch", key, gen)
	}
	if err := read(bytes.NewReader(payload)); err != nil {
		return fmt.Errorf("durable: %s generation %d: decoding payload: %w", key, gen, err)
	}
	return nil
}

// quarantine moves a generation that failed verification aside so it cannot
// cost another failed load (or a full retrain) on every restart, and drops
// it from the generation index.
func (s *Store) quarantine(key string, gen uint64, cause error) {
	path := s.genPath(key, gen)
	if err := s.fsys.Rename(path, path+".corrupt"); err != nil {
		// The file may have vanished (pruned by a concurrent Save); removal
		// is the same outcome.
		_ = s.fsys.Remove(path)
	}
	s.mu.Lock()
	s.stats.LoadFailures++
	s.stats.Quarantined++
	gens := s.gens[key]
	for i, g := range gens {
		if g == gen {
			s.gens[key] = append(gens[:i], gens[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.logf("durable: %s: generation %d quarantined to %s.corrupt: %v", key, gen, path, cause)
}

// Clear removes every generation (and sidecar) of key.
func (s *Store) Clear(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return err
	}
	var firstErr error
	for _, gen := range s.gens[key] {
		if err := s.fsys.Remove(s.genPath(key, gen)); err != nil && firstErr == nil {
			firstErr = err
		}
		_ = s.fsys.Remove(s.genPath(key, gen) + ".corrupt")
	}
	delete(s.gens, key)
	return firstErr
}

// Generations reports the stored generation numbers of key, ascending
// (diagnostics and tests).
func (s *Store) Generations(key string) []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensure(); err != nil {
		return nil
	}
	return append([]uint64(nil), s.gens[key]...)
}

// KeyStore is a Store scoped to one key — the shape training checkpoints
// consume (it satisfies model.CheckpointStore).
type KeyStore struct {
	s   *Store
	key string
}

// Key scopes the store to one key.
func (s *Store) Key(key string) *KeyStore { return &KeyStore{s: s, key: key} }

// Save writes one new generation of the key.
func (k *KeyStore) Save(write func(w io.Writer) error) error { return k.s.Save(k.key, write) }

// Load reads the newest verifiable generation of the key.
func (k *KeyStore) Load(read func(r io.Reader) error) error { return k.s.Load(k.key, read) }

// Clear removes every generation of the key.
func (k *KeyStore) Clear() error { return k.s.Clear(k.key) }
