package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
)

func saveString(t *testing.T, s *Store, key, val string) {
	t.Helper()
	err := s.Save(key, func(w io.Writer) error {
		_, err := io.WriteString(w, val)
		return err
	})
	if err != nil {
		t.Fatalf("Save(%q): %v", key, err)
	}
}

func loadString(s *Store, key string) (string, error) {
	var buf bytes.Buffer
	err := s.Load(key, func(r io.Reader) error {
		_, err := io.Copy(&buf, r)
		return err
	})
	return buf.String(), err
}

func TestStoreRoundTrip(t *testing.T) {
	s := Open(t.TempDir(), Options{})
	saveString(t, s, "model", "hello generation one")
	got, err := loadString(s, "model")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got != "hello generation one" {
		t.Fatalf("payload mismatch: %q", got)
	}
	st := s.Stats()
	if st.Saves != 1 || st.Loads != 1 || st.LoadFailures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreMissingKey(t *testing.T) {
	s := Open(t.TempDir(), Options{})
	_, err := loadString(s, "absent")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ErrNotFound must wrap fs.ErrNotExist, got %v", err)
	}
}

func TestStoreKeepsTwoGenerationsAndPrunes(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, Options{})
	for i := 1; i <= 4; i++ {
		saveString(t, s, "k", fmt.Sprintf("gen %d", i))
	}
	gens := s.Generations("k")
	if len(gens) != 2 || gens[0] != 3 || gens[1] != 4 {
		t.Fatalf("generations = %v, want [3 4]", gens)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("want 2 files on disk, got %d: %v", len(ents), ents)
	}
	got, err := loadString(s, "k")
	if err != nil || got != "gen 4" {
		t.Fatalf("Load = %q, %v", got, err)
	}
}

func corruptNewest(t *testing.T, dir, key string, s *Store) string {
	t.Helper()
	gens := s.Generations(key)
	if len(gens) == 0 {
		t.Fatal("no generations to corrupt")
	}
	path := filepath.Join(dir, fmt.Sprintf("%s.g%d", key, gens[len(gens)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestStoreRollsBackFromCorruptGeneration(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, Options{})
	saveString(t, s, "k", "good old")
	saveString(t, s, "k", "bad new")
	path := corruptNewest(t, dir, "k", s)

	got, err := loadString(s, "k")
	if err != nil {
		t.Fatalf("Load after corruption: %v", err)
	}
	if got != "good old" {
		t.Fatalf("rollback payload = %q, want last good", got)
	}
	st := s.Stats()
	if st.Rollbacks != 1 || st.Quarantined != 1 || st.LoadFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt generation not quarantined: %v", err)
	}
	// The quarantined generation must not cost another verification failure.
	if _, err := loadString(s, "k"); err != nil {
		t.Fatalf("second Load: %v", err)
	}
	if st := s.Stats(); st.LoadFailures != 1 {
		t.Fatalf("quarantined generation re-tried: %+v", st)
	}
}

func TestStoreTornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, Options{})
	saveString(t, s, "k", "good old")
	saveString(t, s, "k", strings.Repeat("new payload ", 100))
	gens := s.Generations("k")
	path := filepath.Join(dir, fmt.Sprintf("k.g%d", gens[len(gens)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A crash mid-write leaves a prefix of the file.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadString(s, "k")
	if err != nil || got != "good old" {
		t.Fatalf("Load = %q, %v; want rollback to last good", got, err)
	}
	if st := s.Stats(); st.Rollbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreDecodeErrorQuarantines(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, Options{})
	saveString(t, s, "k", "v1")
	saveString(t, s, "k", "v2")
	// The payload verifies but the decoder rejects it (schema change, bad
	// version...): same recovery path as corruption.
	calls := 0
	err := s.Load("k", func(r io.Reader) error {
		calls++
		if calls == 1 {
			return errors.New("decode: unsupported version")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if calls != 2 {
		t.Fatalf("decoder calls = %d, want fallback to older generation", calls)
	}
	if st := s.Stats(); st.Rollbacks != 1 || st.Quarantined != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreAllGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, Options{})
	saveString(t, s, "k", "v1")
	corruptNewest(t, dir, "k", s)
	_, err := loadString(s, "k")
	if err == nil {
		t.Fatal("want error when every generation is corrupt")
	}
	// Key is now empty; the caller's move is a rebuild.
	if _, err := loadString(s, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantining everything, want ErrNotFound, got %v", err)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := Open(dir, Options{})
	saveString(t, s1, "a", "alpha")
	saveString(t, s1, "a", "alpha2")
	saveString(t, s1, "b", "beta")

	s2 := Open(dir, Options{})
	if got, err := loadString(s2, "a"); err != nil || got != "alpha2" {
		t.Fatalf("reopen a = %q, %v", got, err)
	}
	if got, err := loadString(s2, "b"); err != nil || got != "beta" {
		t.Fatalf("reopen b = %q, %v", got, err)
	}
	// And a further save continues the generation sequence.
	saveString(t, s2, "a", "alpha3")
	if g := s2.Generations("a"); g[len(g)-1] != 3 {
		t.Fatalf("generations after reopen = %v", g)
	}
}

func TestStoreIgnoresForeignAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"notes.txt", ".k.tmp-123", "k.g2.corrupt", "k.gX"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s := Open(dir, Options{})
	if g := s.Generations("k"); len(g) != 0 {
		t.Fatalf("foreign files parsed as generations: %v", g)
	}
}

func TestStoreClear(t *testing.T) {
	dir := t.TempDir()
	s := Open(dir, Options{})
	saveString(t, s, "k", "v1")
	saveString(t, s, "k", "v2")
	if err := s.Clear("k"); err != nil {
		t.Fatalf("Clear: %v", err)
	}
	if _, err := loadString(s, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after Clear, got %v", err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 0 {
		t.Fatalf("files left after Clear: %v", ents)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	s := Open(t.TempDir(), Options{})
	for _, key := range []string{"", "a/b", `a\b`, ".hidden"} {
		if err := s.Save(key, func(io.Writer) error { return nil }); err == nil {
			t.Fatalf("Save(%q) accepted", key)
		}
	}
}

func TestStoreConcurrentSaveLoad(t *testing.T) {
	s := Open(t.TempDir(), Options{})
	saveString(t, s, "k", "seed")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				_ = s.Save("k", func(w io.Writer) error {
					_, err := fmt.Fprintf(w, "writer %d iter %d", i, j)
					return err
				})
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, err := loadString(s, "k"); err != nil {
					t.Errorf("Load: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestKeyStore(t *testing.T) {
	s := Open(t.TempDir(), Options{})
	k := s.Key("ckpt")
	err := k.Save(func(w io.Writer) error {
		_, err := io.WriteString(w, "checkpoint")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := k.Load(func(r io.Reader) error { _, e := io.Copy(&buf, r); return e }); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "checkpoint" {
		t.Fatalf("payload = %q", buf.String())
	}
	if err := k.Clear(); err != nil {
		t.Fatal(err)
	}
	if err := k.Load(func(io.Reader) error { return nil }); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist after Clear, got %v", err)
	}
}

func TestIsTransient(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("parse error"), false},
		{ErrNotFound, false},
		{syscall.ENOSPC, true},
		{&os.PathError{Op: "write", Path: "x", Err: syscall.EIO}, true},
		{fmt.Errorf("wrapped: %w", syscall.ECONNRESET), true},
		{os.ErrDeadlineExceeded, true},
		{MarkTransient(errors.New("remote trainer busy")), true},
		{fmt.Errorf("outer: %w", MarkTransient(errors.New("inner"))), true},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if ClassifyString(syscall.ENOSPC) != "transient" || ClassifyString(errors.New("x")) != "deterministic" {
		t.Error("ClassifyString mismatch")
	}
}
