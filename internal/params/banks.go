package params

import (
	"math/rand"
	"strings"
)

// Word banks. Phrases are generated from small templates over word banks,
// which yields tens of thousands of distinct values compositionally — the
// role the paper's scraped corpora (SMS, news, YouTube titles, song names,
// Enron emails, one-billion-word benchmark, ...) play.

var firstNames = []string{
	"alice", "bob", "carol", "david", "emma", "frank", "grace", "henry",
	"irene", "jack", "karen", "liam", "maria", "nathan", "olivia", "peter",
	"quinn", "rachel", "sam", "tina", "umar", "vera", "walter", "xena",
	"yusuf", "zoe", "amir", "bella", "carlos", "diana", "elena", "felix",
	"gina", "hugo", "ines", "jorge", "kate", "leo", "mona", "nina",
}

var lastNames = []string{
	"smith", "johnson", "lee", "garcia", "chen", "patel", "kim", "nguyen",
	"brown", "davis", "miller", "wilson", "moore", "taylor", "anderson",
	"thomas", "jackson", "white", "harris", "martin", "thompson", "young",
	"walker", "hall", "allen", "king", "wright", "scott", "torres", "hill",
}

func usernames(rng *rand.Rand) string {
	f := firstNames[rng.Intn(len(firstNames))]
	l := lastNames[rng.Intn(len(lastNames))]
	switch rng.Intn(3) {
	case 0:
		return f + l
	case 1:
		return f + "_" + l
	default:
		return f + l[:1]
	}
}

var mailDomains = []string{"gmail.com", "yahoo.com", "outlook.com", "stanford.edu", "example.com"}

var contacts = []string{
	"mom", "dad", "grandma", "my brother", "my sister", "my roommate",
	"my boss", "my wife", "my husband", "alice", "bob", "the babysitter",
	"my landlord", "the plumber", "coach",
}

var topics = []string{
	"cats", "dogs", "politics", "basketball", "cooking", "machine learning",
	"climate", "travel", "photography", "gardening", "bitcoin", "football",
	"music", "movies", "space", "startups", "fashion", "history", "chess",
	"poetry", "yoga", "hiking", "baking", "robots", "elections", "soccer",
	"tennis", "art", "science", "vaccines", "housing", "taxes", "wildfires",
}

var hashtags = []string{
	"#tbt", "#nofilter", "#blessed", "#foodie", "#fitness", "#travel",
	"#mondaymotivation", "#love", "#photooftheday", "#gamedev", "#ai",
	"#startup", "#pldi", "#goodvibes", "#sunset", "#caturday",
}

var shortNames = []string{
	"general", "random", "engineering", "design", "support", "family",
	"work", "school", "books", "gaming", "fitness", "recipes", "deals",
	"announcements", "standup", "oncall", "memes", "jazz", "red", "blue",
	"green", "purple", "orange", "warm white", "espn", "cnn", "hbo",
	"discovery", "dance", "chill", "focus", "workout", "roadtrip",
}

var repos = []string{
	"genie-toolkit", "almond-server", "thingpedia-common", "linux",
	"kubernetes", "tensorflow", "react", "rust-lang/rust", "golang/go",
	"my-website", "dotfiles", "course-project",
}

var fileNames = []string{
	"report.pdf", "budget.xlsx", "notes.txt", "resume.docx", "photo.jpg",
	"presentation.pptx", "thesis.tex", "invoice.pdf", "recipe.md",
	"homework.doc", "taxes_2018.pdf", "vacation.png", "backup.zip",
	"meeting_minutes.txt", "draft.docx", "schedule.ics",
}

var folders = []string{
	"documents", "photos", "work", "school", "projects", "music",
	"downloads", "shared", "archive", "taxes",
}

var domains = []string{
	"example.com", "photos.app", "cdn.media.net", "images.pets.org",
	"files.work.io", "static.news.site",
}

var urlPaths = []string{
	"a1b2c3", "kitten42", "xyz789", "report-final", "img_0042",
	"v/watch123", "p/post9", "d/doc77",
}

var languages = []string{
	"spanish", "french", "german", "italian", "chinese", "japanese",
	"korean", "portuguese", "russian", "arabic", "hindi", "dutch",
}

var stocks = []string{
	"aapl", "goog", "msft", "amzn", "tsla", "nflx", "nvda", "crm",
	"intc", "ibm", "orcl", "amd",
}

var devices = []string{
	"kitchen speaker", "living room tv", "bedroom echo", "laptop",
	"phone", "office speaker", "car stereo",
}

var teams = []string{
	"warriors", "lakers", "sharks", "giants", "forty niners", "raiders",
	"dodgers", "celtics", "patriots", "yankees", "red sox", "cardinal",
}

// Phrase templates: %A adjective, %N noun, %V verb phrase, %P person.
type phraseTemplate struct {
	pattern string
}

var adjectives = []string{
	"funny", "quick", "important", "secret", "final", "urgent", "happy",
	"lazy", "broken", "new", "old", "awesome", "terrible", "quiet",
	"loud", "monthly", "weekly", "crazy", "lovely", "midnight", "golden",
	"electric", "lonely", "wild", "summer", "winter", "neon", "velvet",
}

var nouns = []string{
	"meeting", "project", "dinner", "report", "party", "deadline",
	"vacation", "grocery list", "workout", "recipe", "garden", "budget",
	"homework", "presentation", "interview", "road trip", "wedding",
	"birthday", "game night", "cat", "dog", "heart", "river", "city",
	"dream", "storm", "fire", "mountain", "ocean", "road", "night",
}

var verbPhrases = []string{
	"call the dentist", "buy milk", "water the plants", "pay rent",
	"pick up the kids", "submit the report", "book flights",
	"renew my passport", "take out the trash", "feed the cat",
	"charge my phone", "email the professor", "review the pull request",
	"practice piano", "stretch", "drink water",
}

var messageTemplates = []phraseTemplate{
	{"running late for the %N"},
	{"do not forget the %A %N"},
	{"see you at the %N"},
	{"the %N is %A"},
	{"remember to %V"},
	{"%V before noon"},
	{"on my way home"},
	{"dinner is ready"},
	{"great job on the %A %N"},
	{"can we talk about the %N"},
	{"happy birthday"},
	{"meeting moved to tomorrow"},
	{"the %A %N starts soon"},
	{"i will be out on friday"},
}

var titleTemplates = []phraseTemplate{
	{"%A %N"},
	{"the %A %N"},
	{"%N notes"},
	{"%N plan"},
	{"my %A %N"},
	{"%N ideas"},
	{"q3 %N review"},
	{"%A %N checklist"},
}

var songTemplates = []phraseTemplate{
	{"%A %N"},
	{"the %A %N"},
	{"%N on fire"},
	{"dancing in the %N"},
	{"%A love"},
	{"shake it off"},
	{"wake me up inside"},
	{"%N boulevard"},
	{"tears of a %N"},
	{"%A nights"},
}

var artistTemplates = []phraseTemplate{
	{"the %A %Ns"},
	{"%P and the %Ns"},
	{"dj %A %N"},
	{"taylor swift"},
	{"evanescence"},
	{"the %N brothers"},
	{"%A %P"},
	{"little %N machine"},
}

var albumTemplates = []phraseTemplate{
	{"%A %N"},
	{"songs of the %N"},
	{"the %A sessions"},
	{"%N tapes"},
	{"live at the %N"},
}

var playlistTemplates = []phraseTemplate{
	{"%A vibes"},
	{"%N mix"},
	{"dance dance revolution"},
	{"%A %N jams"},
	{"morning %N"},
	{"gym %N"},
}

// phrase instantiates a random template from the bank.
func phrase(rng *rand.Rand, bank []phraseTemplate) []string {
	t := bank[rng.Intn(len(bank))].pattern
	out := make([]string, 0, 6)
	for _, tok := range strings.Fields(t) {
		switch {
		case strings.Contains(tok, "%A"):
			out = append(out, strings.ReplaceAll(tok, "%A", adjectives[rng.Intn(len(adjectives))]))
		case strings.Contains(tok, "%Ns"):
			out = append(out, strings.Fields(strings.ReplaceAll(tok, "%Ns", nouns[rng.Intn(len(nouns))]+"s"))...)
		case strings.Contains(tok, "%N"):
			out = append(out, strings.Fields(strings.ReplaceAll(tok, "%N", nouns[rng.Intn(len(nouns))]))...)
		case strings.Contains(tok, "%V"):
			out = append(out, strings.Fields(verbPhrases[rng.Intn(len(verbPhrases))])...)
		case strings.Contains(tok, "%P"):
			out = append(out, firstNames[rng.Intn(len(firstNames))])
		default:
			out = append(out, tok)
		}
	}
	return out
}

// countPhrases estimates the distinct phrases a bank can produce.
func countPhrases(bank []phraseTemplate) int {
	total := 0
	for _, t := range bank {
		n := 1
		for _, tok := range strings.Fields(t.pattern) {
			switch {
			case strings.Contains(tok, "%A"):
				n *= len(adjectives)
			case strings.Contains(tok, "%N"):
				n *= len(nouns)
			case strings.Contains(tok, "%V"):
				n *= len(verbPhrases)
			case strings.Contains(tok, "%P"):
				n *= len(firstNames)
			}
		}
		total += n
	}
	return total
}
