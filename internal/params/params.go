// Package params provides the parameter-value datasets of Section 3.3. The
// paper ships 49 parameter lists and named-entity gazettes (7.8 million
// distinct values scraped from the Web); this package substitutes
// deterministic compositional generators with the same role: enough value
// diversity that the model cannot overfit specific strings, with realistic
// token statistics, keyed by parameter type and name.
//
//genielint:deterministic
package params

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/thingtalk"
)

// Sample is one concrete parameter value: the words that appear in the
// sentence and the value that appears in the program. For number-like
// parameters both sides are a normalized placeholder such as NUMBER_0,
// mirroring the rule-based argument identifier of Section 2.1 (string
// parameters stay as copyable words).
type Sample struct {
	Words []string
	Value thingtalk.Value
}

// Sampler draws parameter values by type and parameter name.
type Sampler struct{}

// NewSampler returns a Sampler; all randomness comes from the rng passed to
// Draw, so a single Sampler is safely shared.
func NewSampler() *Sampler { return &Sampler{} }

// PlaceholderRequest marks values that the caller must index (NUMBER_k ...);
// Draw returns the placeholder prefix in Value.Name, e.g. "NUMBER".
func (s *Sampler) Draw(rng *rand.Rand, t thingtalk.Type, param string) Sample {
	switch t := t.(type) {
	case thingtalk.StringType:
		return s.drawString(rng, param)
	case thingtalk.PathNameType:
		return wordsSample(s.drawPath(rng))
	case thingtalk.URLType:
		return wordsSample(s.drawURL(rng))
	case thingtalk.EntityType:
		return wordsSample(s.drawEntity(rng, t.Kind, param))
	case thingtalk.NumberType:
		return placeholderSample("NUMBER")
	case thingtalk.CurrencyType:
		return placeholderSample("CURRENCY")
	case thingtalk.DateType:
		if rng.Intn(2) == 0 {
			name := thingtalk.NamedDates[1+rng.Intn(len(thingtalk.NamedDates)-1)]
			return Sample{
				Words: strings.Fields("the " + strings.ReplaceAll(name, "_", " ")),
				Value: thingtalk.DateValue(name),
			}
		}
		return placeholderSample("DATE")
	case thingtalk.TimeType:
		if rng.Intn(3) == 0 {
			name := thingtalk.NamedTimes[rng.Intn(len(thingtalk.NamedTimes))]
			return Sample{Words: []string{name}, Value: thingtalk.TimeValue(name)}
		}
		return placeholderSample("TIME")
	case thingtalk.LocationType:
		if rng.Intn(2) == 0 {
			name := thingtalk.NamedLocations[rng.Intn(len(thingtalk.NamedLocations))]
			return Sample{Words: []string{name}, Value: thingtalk.LocationValue(name)}
		}
		return placeholderSample("LOCATION")
	case thingtalk.MeasureType:
		return s.drawMeasure(rng, t.Unit)
	case thingtalk.EnumType:
		member := t.Values[rng.Intn(len(t.Values))]
		return Sample{
			Words: strings.Fields(strings.ReplaceAll(member, "_", " ")),
			Value: thingtalk.EnumValue(member),
		}
	case thingtalk.BoolType:
		b := rng.Intn(2) == 0
		w := "true"
		if !b {
			w = "false"
		}
		return Sample{Words: []string{w}, Value: thingtalk.BoolValue(b)}
	}
	return wordsSample([]string{"thing"})
}

func wordsSample(words []string) Sample {
	return Sample{Words: words, Value: thingtalk.StringValue(words...)}
}

func placeholderSample(prefix string) Sample {
	return Sample{Value: thingtalk.Value{Kind: thingtalk.VPlaceholder, Name: prefix}}
}

// drawMeasure produces a magnitude placeholder plus a spoken unit; the
// program side carries the unit token so the model learns to map unit words
// to unit tokens without arithmetic.
func (s *Sampler) drawMeasure(rng *rand.Rand, baseUnit string) Sample {
	units := measureUnits[baseUnit]
	if len(units) == 0 {
		units = []spokenUnit{{unit: baseUnit, words: baseUnit}}
	}
	u := units[rng.Intn(len(units))]
	return Sample{
		Words: append([]string{"NUMBER_?"}, strings.Fields(u.words)...),
		Value: thingtalk.Value{
			Kind:     thingtalk.VMeasure,
			Measures: []thingtalk.MeasureTerm{{Placeholder: "NUMBER_?", Unit: u.unit}},
		},
	}
}

type spokenUnit struct {
	unit  string
	words string
}

var measureUnits = map[string][]spokenUnit{
	"byte": {{"KB", "kilobytes"}, {"MB", "megabytes"}, {"GB", "gigabytes"}, {"byte", "bytes"}},
	"ms":   {{"s", "seconds"}, {"min", "minutes"}, {"h", "hours"}, {"day", "days"}, {"week", "weeks"}},
	"m":    {{"m", "meters"}, {"km", "kilometers"}, {"mi", "miles"}, {"ft", "feet"}},
	"C":    {{"C", "degrees celsius"}, {"F", "degrees fahrenheit"}, {"C", "degrees"}},
	"kg":   {{"kg", "kilograms"}, {"lb", "pounds"}},
	"mps":  {{"mph", "miles per hour"}, {"kmph", "kilometers per hour"}},
	"bpm":  {{"bpm", "bpm"}, {"bpm", "beats per minute"}},
	"kcal": {{"kcal", "calories"}},
	"usd":  {{"usd", "dollars"}, {"eur", "euros"}},
}

// drawString picks a free-form phrase whose flavor matches the parameter
// name (message-like, query-like, title-like, tag-like or channel-like).
func (s *Sampler) drawString(rng *rand.Rand, param string) Sample {
	switch {
	case containsAny(param, "message", "body", "status", "content", "caption", "text", "snippet"):
		return wordsSample(phrase(rng, messageTemplates))
	case containsAny(param, "hashtag"):
		return wordsSample([]string{hashtags[rng.Intn(len(hashtags))]})
	case containsAny(param, "query", "tag", "ingredient", "cuisine", "topic"):
		return wordsSample([]string{topics[rng.Intn(len(topics))]})
	case containsAny(param, "title", "subject", "name", "recipe"):
		return wordsSample(phrase(rng, titleTemplates))
	case containsAny(param, "channel", "subreddit", "project", "notebook", "label", "playlist", "section", "route", "template", "color"):
		return wordsSample([]string{shortNames[rng.Intn(len(shortNames))]})
	case containsAny(param, "repo"):
		return wordsSample([]string{repos[rng.Intn(len(repos))]})
	}
	return wordsSample(phrase(rng, titleTemplates))
}

func (s *Sampler) drawPath(rng *rand.Rand) []string {
	name := fileNames[rng.Intn(len(fileNames))]
	if rng.Intn(2) == 0 {
		return []string{"/" + folders[rng.Intn(len(folders))] + "/" + name}
	}
	return []string{name}
}

func (s *Sampler) drawURL(rng *rand.Rand) []string {
	return []string{fmt.Sprintf("%s/%s", domains[rng.Intn(len(domains))], urlPaths[rng.Intn(len(urlPaths))])}
}

// drawEntity draws a named entity by kind; unknown kinds fall back to short
// titles.
func (s *Sampler) drawEntity(rng *rand.Rand, kind, param string) []string {
	switch kind {
	case "tt:username":
		return []string{usernames(rng)}
	case "tt:email_address":
		return []string{usernames(rng) + "@" + mailDomains[rng.Intn(len(mailDomains))]}
	case "tt:phone_number", "tt:person":
		return []string{contacts[rng.Intn(len(contacts))]}
	case "tt:iso_lang_code":
		return []string{languages[rng.Intn(len(languages))]}
	case "tt:stock_id":
		return []string{stocks[rng.Intn(len(stocks))]}
	case "com.spotify:song":
		return phrase(rng, songTemplates)
	case "com.spotify:artist":
		return phrase(rng, artistTemplates)
	case "com.spotify:album":
		return phrase(rng, albumTemplates)
	case "com.spotify:playlist":
		return phrase(rng, playlistTemplates)
	case "com.spotify:device":
		return []string{devices[rng.Intn(len(devices))]}
	case "com.youtube:channel":
		return []string{shortNames[rng.Intn(len(shortNames))] + "tv"}
	case "com.espn:team":
		return strings.Fields(teams[rng.Intn(len(teams))])
	case "com.twitter:id", "com.thecatapi:image_id":
		return phrase(rng, titleTemplates)
	}
	return phrase(rng, titleTemplates)
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}

// EstimatedDistinctValues reports the approximate size of the value space
// (the paper's corpora hold 7.8M values; ours is compositional).
func EstimatedDistinctValues() int {
	n := len(topics) + len(hashtags) + len(shortNames) + len(repos) +
		len(fileNames)*(len(folders)+1) + len(domains)*len(urlPaths) +
		len(contacts) + len(languages) + len(stocks) + len(devices) + len(teams)
	n += len(firstNames) * len(lastNames) * 3 // usernames
	n += countPhrases(messageTemplates) + countPhrases(titleTemplates) +
		countPhrases(songTemplates) + countPhrases(artistTemplates) +
		countPhrases(albumTemplates) + countPhrases(playlistTemplates)
	return n
}
