package params

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/thingtalk"
)

func TestDrawTypesAreConsistent(t *testing.T) {
	s := NewSampler()
	rng := rand.New(rand.NewSource(1))
	types := []thingtalk.Type{
		thingtalk.StringType{}, thingtalk.PathNameType{}, thingtalk.URLType{},
		thingtalk.NumberType{}, thingtalk.BoolType{}, thingtalk.DateType{},
		thingtalk.TimeType{}, thingtalk.LocationType{}, thingtalk.CurrencyType{},
		thingtalk.MeasureType{Unit: "byte"}, thingtalk.MeasureType{Unit: "C"},
		thingtalk.EnumType{Values: []string{"on", "off"}},
		thingtalk.EntityType{Kind: "com.spotify:song"},
		thingtalk.EntityType{Kind: "tt:username"},
	}
	f := func() bool {
		typ := types[rng.Intn(len(types))]
		sample := s.Draw(rng, typ, "message")
		switch typ.(type) {
		case thingtalk.EnumType:
			return sample.Value.Kind == thingtalk.VEnum
		case thingtalk.NumberType, thingtalk.CurrencyType:
			return sample.Value.Kind == thingtalk.VPlaceholder
		case thingtalk.MeasureType:
			return sample.Value.Kind == thingtalk.VMeasure && len(sample.Words) >= 2
		case thingtalk.BoolType:
			return sample.Value.Kind == thingtalk.VBool
		case thingtalk.StringType, thingtalk.PathNameType, thingtalk.URLType, thingtalk.EntityType:
			return sample.Value.Kind == thingtalk.VString && len(sample.Words) > 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValueDiversity(t *testing.T) {
	s := NewSampler()
	rng := rand.New(rand.NewSource(2))
	distinct := map[string]bool{}
	for i := 0; i < 500; i++ {
		sample := s.Draw(rng, thingtalk.StringType{}, "message")
		distinct[sampleKey(sample)] = true
	}
	if len(distinct) < 100 {
		t.Errorf("message values not diverse enough: %d distinct in 500 draws", len(distinct))
	}
}

func sampleKey(s Sample) string {
	out := ""
	for _, w := range s.Words {
		out += w + " "
	}
	return out
}

func TestEstimatedDistinctValues(t *testing.T) {
	n := EstimatedDistinctValues()
	if n < 10000 {
		t.Errorf("value space too small to prevent overfitting: %d", n)
	}
	t.Logf("estimated distinct parameter values: %d", n)
}

func TestParamNameRouting(t *testing.T) {
	s := NewSampler()
	rng := rand.New(rand.NewSource(3))
	hash := s.Draw(rng, thingtalk.StringType{}, "hashtag")
	if len(hash.Words) != 1 || hash.Words[0][0] != '#' {
		t.Errorf("hashtag should be a #token: %v", hash.Words)
	}
	repo := s.Draw(rng, thingtalk.StringType{}, "repo")
	if len(repo.Words) != 1 {
		t.Errorf("repo should be one token: %v", repo.Words)
	}
}
