package params

// Seed derivation for the concurrent data pipeline. Every parallel stage
// (synthesis tasks, per-example parameter expansion) draws its randomness
// from an independent RNG whose seed is derived deterministically from the
// run seed, a stage label, and the task index. Scheduling therefore never
// influences which values are drawn: the same seed produces the same
// dataset whether the pipeline runs on one worker or many.

// DeriveSeed deterministically derives an independent RNG seed for pipeline
// sub-stream index of the named stage.
func DeriveSeed(base int64, stage string, index int) int64 {
	h := uint64(base) ^ 0x9e3779b97f4a7c15
	for _, c := range []byte(stage) {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	h ^= uint64(index+1) * 0xbf58476d1ce4e5b9
	return int64(splitmix64(h))
}

// splitmix64 is the finalizer of the SplitMix64 generator; it maps distinct
// inputs to well-distributed outputs and is the standard way to expand one
// seed into a family of stream seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
