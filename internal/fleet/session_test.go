package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/thingpedia"
)

// ctxToyParser trains one contextual toy parser per test binary: first turns
// are the toyPairs command, follow-ups ("also tweet it") must copy the value
// out of the previous turn's program — it never appears in the follow-up
// sentence, so a correct follow-up decode proves the session context reached
// the model.
var ctxToy struct {
	once sync.Once
	p    *model.Parser
}

func ctxToyParser() *model.Parser {
	ctxToy.once.Do(func() {
		base := toyPairs("tweet", "@twitter.post")
		pairs := make([]model.Pair, 0, 2*len(base))
		for _, pr := range base {
			pairs = append(pairs, pr)
			pairs = append(pairs, model.Pair{
				Src: []string{"also", "tweet", "it"},
				Tgt: pr.Tgt,
				Ctx: pr.Tgt,
			})
		}
		cfg := model.Config{
			EmbedDim: 24, HiddenDim: 32, LR: 5e-3, Epochs: 30,
			EvalEvery: 100000, PointerGen: true, MaxDecodeLen: 16,
			MinVocabCount: 3, Seed: 7, Contextual: true,
		}
		ctxToy.p = model.Train(pairs, nil, nil, cfg)
	})
	return ctxToy.p
}

func ctxTrain() TrainFunc {
	return func(name string, lib *thingpedia.Library) (*model.Parser, error) {
		return ctxToyParser(), nil
	}
}

// sessionMetrics finds one skill's metrics row.
func sessionMetrics(t *testing.T, r *Registry, name string) serve.SkillMetrics {
	t.Helper()
	for _, m := range r.Metrics() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no metrics for skill %q", name)
	return serve.SkillMetrics{}
}

// TestFleetSessionFollowupsAcrossHotSwap is the session tier's -race
// acceptance test: follow-up requests keep resolving against their session's
// stored context from many goroutines while the skill's shard hot-swaps
// underneath them. The store lives on the skill, not the shard, so a session
// opened before the swap must still hit after it (drain-safe handoff).
func TestFleetSessionFollowupsAcrossHotSwap(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	cfg := Config{
		LibDir: dir,
		Watch:  20 * time.Millisecond,
		Serve:  serve.Options{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2, MaxQueue: -1},
		Train:  ctxTrain(),
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)
	gen1 := skillGeneration(r, "alpha")

	p := ctxToyParser()
	open := []string{"tweet", "echo", "now"}
	follow := []string{"also", "tweet", "it"}
	wantOpen := strings.Join(p.Parse(open), " ")
	wantFollow := strings.Join(p.ParseContext(follow, p.Parse(open)), " ")
	if wantFollow == strings.Join(p.Parse(follow), " ") {
		t.Fatal("toy task degenerate: follow-up decode does not depend on context")
	}

	// One session opened before the swap, resumed after it.
	ctx := context.Background()
	if toks, _, err := r.ParseSession(ctx, "alpha", "sess-pre", open, nil); err != nil || strings.Join(toks, " ") != wantOpen {
		t.Fatalf("opening turn: %v %v", toks, err)
	}
	m := sessionMetrics(t, r, "alpha")
	if m.Sessions != 1 || m.SessionMisses == 0 {
		t.Fatalf("after opening turn: %+v, want 1 session and a recorded miss", m)
	}

	// Concurrent multi-turn sessions across the whole swap window.
	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		failures atomic.Int64
		turns    atomic.Int64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				session := fmt.Sprintf("sess-%d-%d", w, i)
				toks, _, err := r.ParseSession(ctx, "alpha", session, open, nil)
				if err != nil || strings.Join(toks, " ") != wantOpen {
					failures.Add(1)
					return
				}
				toks, _, err = r.ParseSession(ctx, "alpha", session, follow, nil)
				if err != nil || strings.Join(toks, " ") != wantFollow {
					failures.Add(1)
					return
				}
				turns.Add(2)
			}
		}(w)
	}

	time.Sleep(30 * time.Millisecond)
	writeLib(t, dir, "alpha", libV2("test.alpha"))
	deadline := time.Now().Add(15 * time.Second)
	for skillGeneration(r, "alpha") == gen1 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("hot swap never happened (generation still %d)", gen1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Errorf("%d session turns failed or mis-resolved across the hot swap", failures.Load())
	}
	if turns.Load() == 0 {
		t.Error("no session traffic flowed during the swap window")
	}

	// The pre-swap session survived the swap: its follow-up resolves against
	// the stored context and counts as a store hit.
	hitsBefore := sessionMetrics(t, r, "alpha").SessionHits
	toks, _, err := r.ParseSession(ctx, "alpha", "sess-pre", follow, nil)
	if err != nil || strings.Join(toks, " ") != wantFollow {
		t.Fatalf("post-swap follow-up on pre-swap session: %v %v", toks, err)
	}
	if hits := sessionMetrics(t, r, "alpha").SessionHits; hits <= hitsBefore {
		t.Errorf("pre-swap session did not hit the store after the swap (hits %d -> %d)", hitsBefore, hits)
	}

	// Explicit context outranks the stored one.
	alt := p.Parse([]string{"tweet", "bravo", "now"})
	wantAlt := strings.Join(p.ParseContext(follow, alt), " ")
	if toks, _, err := r.ParseSession(ctx, "alpha", "sess-pre", follow, alt); err != nil || strings.Join(toks, " ") != wantAlt {
		t.Errorf("explicit context ignored: got %v (err %v), want %s", toks, err, wantAlt)
	}
}

// TestFleetServeOverrides: a per-skill serve.Options override configures
// that skill's batcher only. The batch-size histogram length equals the
// shard's MaxBatch, making the applied options observable from /metrics.
func TestFleetServeOverrides(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	writeLib(t, dir, "beta", libV1("test.beta"))
	var counts sync.Map
	cfg := testConfig(dir, &counts)
	cfg.ServeOverrides = map[string]serve.Options{
		"alpha": {MaxBatch: 2, MaxWait: time.Millisecond, Workers: 1, MaxQueue: -1},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	for _, want := range []struct {
		skill    string
		maxBatch int
	}{{"alpha", 2}, {"beta", 4}} {
		if _, _, err := r.Parse(context.Background(), want.skill, []string{"tweet", "alpha", "now"}); err != nil {
			t.Fatalf("Parse(%s): %v", want.skill, err)
		}
		if m := sessionMetrics(t, r, want.skill); len(m.BatchSizes) != want.maxBatch {
			t.Errorf("%s batch histogram has %d buckets, want MaxBatch %d", want.skill, len(m.BatchSizes), want.maxBatch)
		}
	}
}

// TestFleetServerSessionHeader drives the session flow through the HTTP
// layer: two POST /parse calls with the same X-Genie-Session resolve the
// follow-up against the stored first-turn program, and /metrics reports the
// store counters.
func TestFleetServerSessionHeader(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	r, err := New(Config{
		LibDir: dir,
		Serve:  serve.Options{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2, MaxQueue: -1},
		Train:  ctxTrain(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	defer srv.Close()
	waitReady(t, r)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	p := ctxToyParser()
	open := []string{"tweet", "delta", "now"}
	follow := []string{"also", "tweet", "it"}
	wantFollow := strings.Join(p.ParseContext(follow, p.Parse(open)), " ")

	post := func(words []string, session string) serve.ParseResponse {
		t.Helper()
		body, _ := json.Marshal(serve.ParseRequest{Skill: "alpha", Words: words})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/parse", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if session != "" {
			req.Header.Set(serve.SessionHeader, session)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /parse: status %d", resp.StatusCode)
		}
		var pr serve.ParseResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr
	}

	post(open, "curl-sess")
	if got := post(follow, "curl-sess"); got.Program != wantFollow {
		t.Errorf("session follow-up over HTTP = %q, want %q", got.Program, wantFollow)
	}
	// Without the header there is no stored context: the follow-up decodes
	// single-turn.
	if got := post(follow, ""); got.Program == wantFollow {
		t.Errorf("headerless request used session context: %q", got.Program)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics serve.MetricsResponse
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if len(metrics.Skills) != 1 || metrics.Skills[0].Sessions != 1 || metrics.Skills[0].SessionHits == 0 {
		t.Errorf("session counters not surfaced on /metrics: %+v", metrics.Skills)
	}
}
