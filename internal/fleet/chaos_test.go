package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/gateway"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/thingpedia"
)

// The chaos scenario re-execs the test binary as a real fleet process
// (TestChaosHelperProcess) so the parent can SIGKILL it mid-train — an
// in-process goroutine cannot be killed. Both processes share these
// deterministic training inputs, so the parent can independently train the
// reference model and assert the resumed trajectory is bit-identical.

func chaosPairs() []model.Pair {
	values := []string{
		"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliet", "kilo", "lima",
		"mike", "november", "oscar", "papa", "quebec", "romeo",
		"sierra", "tango", "uniform", "victor", "whiskey", "xray",
	}
	pairs := make([]model.Pair, 0, len(values))
	for _, v := range values {
		pairs = append(pairs, model.Pair{
			Src: []string{"tweet", v, "now"},
			Tgt: []string{"now", "=>", "@twitter.post", "param:text", "=", `"`, v, `"`},
		})
	}
	return pairs
}

func chaosSplit() (train, val []model.Pair) {
	pairs := chaosPairs()
	return pairs[:20], pairs[20:]
}

func chaosConfig() model.Config {
	return model.Config{
		EmbedDim:      24,
		HiddenDim:     32,
		LR:            5e-3,
		Epochs:        200,
		MaxSteps:      600,
		EvalEvery:     1 << 30, // no early stopping: the step count is fixed
		PointerGen:    true,
		MaxDecodeLen:  16,
		MinVocabCount: 1,
		Seed:          7,
	}
}

// chaosTrainFunc is the victim fleet's TrainFunc: resumable training with
// checkpoints every 10 optimizer steps into the durable checkpoint store.
func chaosTrainFunc(ckpts *durable.Store) TrainFunc {
	return func(name string, lib *thingpedia.Library) (*model.Parser, error) {
		train, val := chaosSplit()
		return model.TrainResumable(context.Background(), train, val, nil, chaosConfig(), model.TrainOpts{
			Checkpoint: ckpts.Key("skill-" + name),
			EverySteps: 10,
			Logf:       log.Printf,
		})
	}
}

// TestChaosHelperProcess is not a test: it is the victim fleet process,
// re-exec'd by TestChaosSIGKILLWarmRestart with GENIE_FLEET_CHAOS_HELPER=1.
func TestChaosHelperProcess(t *testing.T) {
	if os.Getenv("GENIE_FLEET_CHAOS_HELPER") != "1" {
		t.Skip("helper process for TestChaosSIGKILLWarmRestart")
	}
	libDir := os.Getenv("GENIE_CHAOS_LIBDIR")
	ckptDir := os.Getenv("GENIE_CHAOS_CKPTDIR")
	cacheDir := os.Getenv("GENIE_CHAOS_CACHEDIR")
	addr := os.Getenv("GENIE_CHAOS_ADDR")

	log.SetOutput(os.Stderr)
	ckpts := durable.Open(ckptDir, durable.Options{Logf: log.Printf})
	cache := serve.NewCacheWith(serve.CacheOptions{
		Store: durable.Open(cacheDir, durable.Options{Logf: log.Printf}),
		Logf:  log.Printf,
	})
	r, err := New(Config{
		LibDir: libDir,
		Serve:  serve.Options{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2, MaxQueue: -1},
		Train:  chaosTrainFunc(ckpts),
		Cache:  cache,
		Logf:   log.Printf,
	})
	if err != nil {
		log.Fatalf("chaos helper: %v", err)
	}
	srv := NewServer(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("chaos helper listen: %v", err)
	}
	log.Printf("chaos helper serving on %s", addr)
	// Runs until the parent kills the process (SIGKILL both times).
	log.Fatal(http.Serve(ln, srv.Handler()))
}

// TestChaosSIGKILLWarmRestart is the acceptance chaos scenario from the
// durability issue: a fleet process is SIGKILLed mid-train under live
// gateway load, restarted, and must (a) resume training from the durable
// checkpoint rather than starting over, (b) end bit-identical to an
// uninterrupted run, and (c) cost zero client-visible failures — the
// gateway's second replica covers the outage.
func TestChaosSIGKILLWarmRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos test")
	}
	libDir, ckptDir, cacheDir := t.TempDir(), t.TempDir(), t.TempDir()
	libPath := writeLib(t, libDir, "alpha", libV1("test.alpha"))

	// Stable in-process replica: same skill, instant training. It carries
	// the load while the victim is down.
	stableDir := t.TempDir()
	writeLib(t, stableDir, "alpha", libV1("test.alpha"))
	stable, err := New(testConfig(stableDir, &sync.Map{}))
	if err != nil {
		t.Fatal(err)
	}
	defer stable.Close()
	waitReady(t, stable)
	stableTS := httptest.NewServer(NewServer(stable).Handler())
	defer stableTS.Close()

	// Reserve a port for the victim so both incarnations share an address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	victimAddr := ln.Addr().String()
	ln.Close()
	victimURL := "http://" + victimAddr

	g := gateway.New([]string{victimURL, stableTS.URL}, gateway.Options{
		Replication:   2,
		RetryBudget:   2,
		ProbeInterval: 30 * time.Millisecond,
		FailThreshold: 2,
		Seed:          1,
	})
	defer g.Close()
	gwTS := httptest.NewServer(g.Handler())
	defer gwTS.Close()

	// Continuous client load through the gateway for the whole scenario.
	var ok200, failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(serve.ParseRequest{Skill: "alpha", Words: []string{"tweet", "alpha", "now"}})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(gwTS.URL+"/parse", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					ok200.Add(1)
				} else {
					failed.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// First incarnation: starts training, gets SIGKILLed once checkpoints
	// prove it is mid-train.
	run1Log := startChaosHelper(t, libDir, ckptDir, cacheDir, victimAddr)
	waitForCheckpoint(t, ckptDir)
	if err := run1Log.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL victim: %v", err)
	}
	run1Log.cmd.Wait()
	t.Logf("victim killed mid-train; checkpoint generations on disk: %v",
		durable.Open(ckptDir, durable.Options{}).Generations("skill-alpha"))

	// Second incarnation: must resume, finish, and serve.
	restartAt := time.Now()
	run2Log := startChaosHelper(t, libDir, ckptDir, cacheDir, victimAddr)
	waitVictimReady(t, victimURL)
	t.Logf("victim warm restart to ready in %v", time.Since(restartAt))

	// Let load flow against the recovered fleet, then stop the clients.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	run2Log.cmd.Process.Kill()
	run2Log.cmd.Wait()

	if n := failed.Load(); n != 0 {
		t.Errorf("client-visible failures = %d, want 0 (replica + retries must absorb the kill)", n)
	}
	if ok200.Load() == 0 {
		t.Fatal("no load was driven through the gateway")
	}
	log2 := run2Log.contents(t)
	if !strings.Contains(log2, "resuming from checkpoint") {
		t.Errorf("restarted victim never logged a checkpoint resume; log:\n%s", log2)
	}

	// Bit-identity: the snapshot the recovered fleet cached must equal an
	// uninterrupted in-process training run on the same inputs.
	lib, err := thingpedia.LoadLibraryFile(libPath)
	if err != nil {
		t.Fatal(err)
	}
	key := serve.Key(lib, "fleet")
	var resumed *model.Parser
	err = durable.Open(cacheDir, durable.Options{}).Load(key, func(r io.Reader) error {
		resumed, err = model.Load(r)
		return err
	})
	if err != nil {
		t.Fatalf("loading recovered snapshot %q: %v", key, err)
	}
	train, val := chaosSplit()
	reference := model.Train(train, val, nil, chaosConfig())
	assertSameParams(t, reference, resumed)
}

type chaosHelper struct {
	cmd     *exec.Cmd
	logPath string
}

func (h *chaosHelper) contents(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(h.logPath)
	if err != nil {
		t.Fatalf("reading helper log: %v", err)
	}
	return string(b)
}

func startChaosHelper(t *testing.T, libDir, ckptDir, cacheDir, addr string) *chaosHelper {
	t.Helper()
	logFile, err := os.CreateTemp(t.TempDir(), "chaos-*.log")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestChaosHelperProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"GENIE_FLEET_CHAOS_HELPER=1",
		"GENIE_CHAOS_LIBDIR="+libDir,
		"GENIE_CHAOS_CKPTDIR="+ckptDir,
		"GENIE_CHAOS_CACHEDIR="+cacheDir,
		"GENIE_CHAOS_ADDR="+addr,
	)
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting chaos helper: %v", err)
	}
	path := logFile.Name()
	logFile.Close()
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return &chaosHelper{cmd: cmd, logPath: path}
}

// waitForCheckpoint blocks until the victim has durably written at least two
// checkpoint generations — proof it is mid-train, past the initial save.
func waitForCheckpoint(t *testing.T, ckptDir string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		entries, _ := os.ReadDir(ckptDir)
		gens := 0
		for _, e := range entries {
			if strings.Contains(e.Name(), ".g") && !strings.HasPrefix(e.Name(), ".") {
				gens++
			}
		}
		if gens >= 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never wrote 2 checkpoint generations; dir: %v", names(entries))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func names(entries []os.DirEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name()
	}
	return out
}

func waitVictimReady(t *testing.T, baseURL string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/skills")
		if err == nil {
			var sr serve.SkillsResponse
			jsonErr := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if jsonErr == nil {
				for _, s := range sr.Skills {
					if s.Name == "alpha" && s.Status == StatusReady {
						return
					}
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted victim never reached ready")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func assertSameParams(t *testing.T, want, got *model.Parser) {
	t.Helper()
	wp, gp := want.Params(), got.Params()
	if len(wp) != len(gp) {
		t.Fatalf("param tensor count %d != %d", len(gp), len(wp))
	}
	for i := range wp {
		if len(wp[i].W) != len(gp[i].W) {
			t.Fatalf("tensor %d size %d != %d", i, len(gp[i].W), len(wp[i].W))
		}
		for j := range wp[i].W {
			if wp[i].W[j] != gp[i].W[j] {
				t.Fatalf("resumed trajectory diverged: tensor %d element %d: %v != %v",
					i, j, gp[i].W[j], wp[i].W[j])
			}
		}
	}
}

// TestCorruptSnapshotServesLastGoodThroughGateway: a fleet restarting onto a
// corrupted newest snapshot generation must quarantine it, roll back to the
// previous generation, and serve every gateway request — no retrain, no
// client failures.
func TestCorruptSnapshotServesLastGoodThroughGateway(t *testing.T) {
	libDir, cacheDir := t.TempDir(), t.TempDir()
	libPath := writeLib(t, libDir, "alpha", libV1("test.alpha"))
	lib, err := thingpedia.LoadLibraryFile(libPath)
	if err != nil {
		t.Fatal(err)
	}
	key := serve.Key(lib, "fleet")

	// First fleet lifetime: train once, snapshot lands as generation 1.
	counts := &sync.Map{}
	cfg1 := testConfig(libDir, counts)
	cfg1.Cache = serve.NewCache(cacheDir)
	r1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, r1)
	// A second generation of the same snapshot — this is the one we corrupt.
	p := toyParser("alpha")
	if err := cfg1.Cache.Store().Save(key, p.Save); err != nil {
		t.Fatal(err)
	}
	r1.Close()

	// Flip one payload byte in the newest generation on disk.
	gen2 := filepath.Join(cacheDir, key+".g2")
	raw, err := os.ReadFile(gen2)
	if err != nil {
		t.Fatalf("reading generation 2 (%s): %v", gen2, err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(gen2, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Second lifetime: cold start onto the corrupt snapshot.
	var trainLog bytes.Buffer
	var logMu sync.Mutex
	cfg2 := testConfig(libDir, counts)
	cfg2.Cache = serve.NewCacheWith(serve.CacheOptions{
		Store: durable.Open(cacheDir, durable.Options{Logf: func(f string, a ...any) {
			logMu.Lock()
			fmt.Fprintf(&trainLog, f+"\n", a...)
			logMu.Unlock()
		}}),
	})
	r2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	waitReady(t, r2)

	ts := httptest.NewServer(NewServer(r2).Handler())
	defer ts.Close()
	g := gateway.New([]string{ts.URL}, gateway.Options{Replication: 1, Seed: 1})
	defer g.Close()
	gts := httptest.NewServer(g.Handler())
	defer gts.Close()

	body, _ := json.Marshal(serve.ParseRequest{Skill: "alpha", Words: []string{"tweet", "alpha", "now"}})
	for i := 0; i < 20; i++ {
		resp, err := http.Post(gts.URL+"/parse", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("parse %d through gateway: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("parse %d through gateway = HTTP %d, want 200", i, resp.StatusCode)
		}
	}

	st := cfg2.Cache.Stats()
	if st.Store.Rollbacks != 1 || st.Store.Quarantined != 1 {
		t.Errorf("store stats = %+v, want 1 rollback / 1 quarantined", st.Store)
	}
	if st.Trainings != 0 {
		t.Errorf("trainings on restart = %d, want 0 (last-good snapshot must serve)", st.Trainings)
	}
	c, _ := counts.Load("alpha")
	if n := c.(*atomic.Int64).Load(); n != 1 {
		t.Errorf("total builds = %d, want 1 (restart must not retrain)", n)
	}
	if _, err := os.Stat(gen2 + ".corrupt"); err != nil {
		t.Errorf("corrupt generation not quarantined to sidecar: %v", err)
	}
}
