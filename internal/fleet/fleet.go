// Package fleet is the parser-fleet control plane: Genie's premise is that
// every skill library generates its own semantic parser (one grammar, one
// synthesized dataset, one trained model per library), and this package
// manages a fleet of them behind one endpoint. A Registry scans a library
// directory (one <skill>.tt DSL source per skill), trains or cache-loads a
// parser per skill in the background, and serves each through its own
// serve.Batcher shard; a watcher polls the directory and hot-swaps a
// skill's shard when its library checksum changes, draining in-flight
// requests on the old snapshot. The HTTP Server routes POST /parse by skill
// — or, when no skill is named, scores the request against every ready
// shard and answers with the best length-normalized hypothesis — and
// exposes the fleet's live state on GET /skills and GET /metrics.
//
// Layering: internal/serve owns one parser's serving mechanics (micro-
// batching, admission control, drain) and the wire types; this package owns
// the many-parser concerns — lifecycle, routing, hot reload, observability.
//
//genielint:ctx-strict
package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dialogue"
	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/thingpedia"
)

// TrainFunc produces a trained parser for one skill library; the registry
// calls it in the background (through the snapshot cache when one is
// configured) and recovers panics into errors, so a degenerate library
// fails that skill rather than the fleet.
type TrainFunc func(name string, lib *thingpedia.Library) (*model.Parser, error)

// Config assembles a Registry.
type Config struct {
	// LibDir is the skill-library directory (one <skill>.tt per skill).
	LibDir string
	// Watch is the directory poll interval; 0 disables hot reload.
	Watch time.Duration
	// Serve configures each skill's Batcher shard (batch window, workers,
	// beam, admission queue bound).
	Serve serve.Options
	// ServeOverrides replaces Serve wholesale for the named skills, so one
	// hot skill can run a wider batch window or its own beam width without
	// retuning the fleet default. Overrides apply on the next (re)build of
	// the skill's shard.
	ServeOverrides map[string]serve.Options
	// SessionCapacity bounds each skill's dialogue session store — the LRU
	// map from X-Genie-Session ids to the last accepted program, which
	// contextual parsers consume as follow-up decoding context (<= 0 uses
	// dialogue.DefaultStoreCapacity).
	SessionCapacity int
	// Train builds a parser for a (possibly changed) library. Required.
	Train TrainFunc
	// Cache, when set, keys trained snapshots by library checksum so an
	// unchanged — or reverted — library never retrains.
	Cache *serve.Cache
	// CacheExtra are additional cache-key discriminators (scale, strategy,
	// seed, ...) that change what Train produces.
	CacheExtra []string
	// TrainWorkers bounds concurrent background training runs (default 1:
	// training is CPU-saturating, so queue rather than thrash).
	TrainWorkers int
	// RetryBase/RetryMax bound the capped exponential backoff applied to
	// *transient* build failures — I/O pressure, disk full, timeouts
	// (defaults 1s / 1m). Deterministic failures don't retry on a clock:
	// they quarantine the skill until its library bytes change.
	RetryBase time.Duration
	RetryMax  time.Duration
	// Logf receives control-plane events (nil discards them).
	Logf func(format string, args ...any)
}

// Routing errors. The HTTP layer maps ErrUnknownSkill to 404 and
// ErrNotReady to 503; serve.ErrOverloaded passes through as 429.
var (
	ErrUnknownSkill = errors.New("fleet: unknown skill")
	ErrNotReady     = errors.New("fleet: skill has no ready parser")
)

// Status is a skill's lifecycle state as surfaced on /skills.
const (
	StatusTraining    = "training"    // first parser still building; not serving
	StatusReady       = "ready"       // serving
	StatusReloading   = "reloading"   // serving the old snapshot while the new one trains
	StatusFailed      = "failed"      // no parser and the last (transient) build failure awaits retry
	StatusQuarantined = "quarantined" // deterministic build failure; re-admitted when the library bytes change
)

// shard is one skill's immutable serving state: a trained parser behind its
// own batcher. Hot reload swaps the whole shard pointer atomically; the old
// shard's batcher then drains, so in-flight requests complete on the
// snapshot they were admitted to.
type shard struct {
	parser     *model.Parser
	batcher    *serve.Batcher
	checksum   string
	generation uint64
}

// skill is one entry of the registry.
type skill struct {
	// name and path are fixed at construction and read lock-free.
	name string
	path string

	mu        sync.Mutex
	entry     thingpedia.DirEntry // guarded by mu; stat signal at the last (re)load
	err       error               // guarded by mu; last build error, if any
	reloading bool                // guarded by mu; a background build is in flight
	removed   bool                // guarded by mu

	// Failure-classified recovery state, guarded by mu. A deterministic
	// build failure quarantines the skill: quarantineSum pins the raw
	// library bytes that failed, and the watcher re-admits only once they
	// change. A transient failure schedules a retry at retryAt with capped
	// exponential backoff.
	quarantined   bool
	quarantineSum string
	retryAt       time.Time
	backoff       time.Duration

	shard atomic.Pointer[shard]

	// sessions is the skill's dialogue session store. It lives on the skill,
	// not the shard, so a hot-swap keeps every live session: requests
	// draining on the old snapshot and requests arriving on the new one
	// read and write the same store (drain-safe session handoff).
	sessions *dialogue.Store

	requests atomic.Int64
	errs     atomic.Int64 // answered with a non-shed error (see SkillMetrics.Errors)
	lat      serve.LatencyRing
}

// Registry manages the fleet: skill discovery, background training,
// checksum-watch hot reload, and per-skill routing.
type Registry struct {
	cfg      Config
	start    time.Time     // process serving since (uptime_seconds on /metrics)
	gen      atomic.Uint64 // fleet-wide snapshot generation counter
	trainSem chan struct{}

	mu     sync.RWMutex
	skills map[string]*skill

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New scans cfg.LibDir, starts a background build for every discovered
// skill, and — when cfg.Watch > 0 — starts the checksum watcher. It returns
// once the fleet is managing (not once it is serving); use WaitReady to
// block until every initial build resolved.
func New(cfg Config) (*Registry, error) {
	if cfg.Train == nil {
		return nil, errors.New("fleet: Config.Train is required")
	}
	if cfg.TrainWorkers <= 0 {
		cfg.TrainWorkers = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = time.Second
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = time.Minute
	}
	entries, err := thingpedia.ScanLibraryDir(cfg.LibDir)
	if err != nil {
		return nil, err
	}
	r := &Registry{
		cfg:      cfg,
		start:    time.Now(),
		trainSem: make(chan struct{}, cfg.TrainWorkers),
		skills:   map[string]*skill{},
		stop:     make(chan struct{}),
	}
	for _, e := range entries {
		r.addSkill(e)
	}
	if cfg.Watch > 0 {
		r.wg.Add(1)
		go r.watch()
	}
	return r, nil
}

// addSkill registers a discovered library and spawns its first build.
// Callers must not hold r.mu.
func (r *Registry) addSkill(e thingpedia.DirEntry) {
	sk := &skill{
		name: e.Name, path: e.Path, entry: e, reloading: true,
		sessions: dialogue.NewStore(r.cfg.SessionCapacity),
	}
	r.mu.Lock()
	r.skills[sk.name] = sk
	r.mu.Unlock()
	r.spawnReload(sk, e)
}

// spawnReload runs one build of sk in the background; sk.reloading must
// already be true (set under sk.mu by the caller).
func (r *Registry) spawnReload(sk *skill, e thingpedia.DirEntry) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer func() {
			sk.mu.Lock()
			sk.reloading = false
			sk.mu.Unlock()
		}()
		select {
		case r.trainSem <- struct{}{}:
			defer func() { <-r.trainSem }()
		case <-r.stop:
			return
		}
		r.reload(sk, e)
	}()
}

// reload parses the skill's library, trains (or cache-loads) a parser for
// its checksum, and atomically swaps it in. A build failure keeps the old
// shard serving.
func (r *Registry) reload(sk *skill, e thingpedia.DirEntry) {
	lib, err := thingpedia.LoadLibraryFile(sk.path)
	if err != nil {
		r.buildFailed(sk, e, err)
		return
	}
	sum := lib.Checksum()
	if cur := sk.shard.Load(); cur != nil && cur.checksum == sum {
		// Stat changed but content (by checksum) did not — e.g. touch(1) or
		// a formatting-only edit the checksum canonicalizes away.
		sk.mu.Lock()
		sk.entry, sk.err = e, nil
		sk.clearRecoveryLocked()
		sk.mu.Unlock()
		return
	}
	r.cfg.Logf("fleet: %s: building parser for checksum %.12s", sk.name, sum)
	start := time.Now()
	parser, err := r.train(sk.name, lib)
	if err != nil {
		r.buildFailed(sk, e, err)
		return
	}
	gen := r.gen.Add(1)
	parser.SetMeta(model.SnapshotMeta{
		LibraryChecksum: sum,
		Generation:      gen,
		Note:            "fleet:" + sk.name,
	})
	next := &shard{
		parser:     parser,
		batcher:    serve.NewBatcher(parser, r.serveOptions(sk.name)),
		checksum:   sum,
		generation: gen,
	}
	// The removed check and the swap share sk.mu with the watcher's
	// removal (which also swaps under it), so a skill deleted while its
	// build was in flight can never have the fresh shard — and its worker
	// goroutines — swapped in after the drain.
	sk.mu.Lock()
	if sk.removed {
		sk.mu.Unlock()
		next.batcher.Close()
		r.cfg.Logf("fleet: %s: removed during build, discarding generation %d", sk.name, gen)
		return
	}
	old := sk.shard.Swap(next)
	sk.entry, sk.err = e, nil
	sk.clearRecoveryLocked()
	sk.mu.Unlock()
	r.cfg.Logf("fleet: %s: generation %d live (checksum %.12s, built in %s)",
		sk.name, gen, sum, time.Since(start).Round(time.Millisecond))
	if old != nil {
		// Drain in the background: requests admitted before the swap finish
		// on the old snapshot; new requests already route to the new shard.
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			old.batcher.Close()
		}()
	}
}

// clearRecoveryLocked resets the failure-recovery state after a successful
// build; callers hold sk.mu.
func (sk *skill) clearRecoveryLocked() {
	sk.quarantined = false
	sk.quarantineSum = ""
	sk.retryAt = time.Time{}
	sk.backoff = 0
}

// buildFailed records a failed build, classified through durable.IsTransient:
// a transient failure (I/O pressure, disk full, timeout) schedules a
// backoff retry; a deterministic one (the library itself is bad — it will
// fail the same way every time) quarantines the skill until its bytes
// change. Either way any previously serving shard keeps serving.
func (r *Registry) buildFailed(sk *skill, e thingpedia.DirEntry, err error) {
	transient := durable.IsTransient(err)
	sk.mu.Lock()
	sk.err = err
	// Absorb the stat so the watcher doesn't re-trigger on the same bytes;
	// recovery is driven by retryAt / quarantineSum from here.
	sk.entry = e
	if transient {
		sk.backoff = max(r.cfg.RetryBase, 2*sk.backoff)
		if sk.backoff > r.cfg.RetryMax {
			sk.backoff = r.cfg.RetryMax
		}
		sk.retryAt = time.Now().Add(sk.backoff)
		backoff := sk.backoff
		sk.mu.Unlock()
		r.cfg.Logf("fleet: %s: build failed transiently (retry in %v): %v", sk.name, backoff, err)
		return
	}
	sk.quarantined = true
	sk.quarantineSum = rawFileChecksum(sk.path)
	sk.retryAt = time.Time{}
	sk.mu.Unlock()
	r.cfg.Logf("fleet: %s: build failed deterministically, quarantined until the library changes: %v", sk.name, err)
}

// rawFileChecksum hashes a library file's raw bytes. Quarantine pins this —
// not the parsed library checksum, which may not exist when parsing itself
// is what failed — so the re-admission probe works for any failure.
func rawFileChecksum(path string) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// serveOptions resolves one skill's batcher configuration: its
// Config.ServeOverrides entry when present, the fleet-wide default
// otherwise.
func (r *Registry) serveOptions(name string) serve.Options {
	if o, ok := r.cfg.ServeOverrides[name]; ok {
		return o
	}
	return r.cfg.Serve
}

// train invokes the configured TrainFunc through the snapshot cache (when
// present) and converts panics into errors.
func (r *Registry) train(name string, lib *thingpedia.Library) (p *model.Parser, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			p, err = nil, fmt.Errorf("fleet: training %s panicked: %v", name, rec)
		}
	}()
	if r.cfg.Cache != nil {
		key := serve.Key(lib, append([]string{"fleet"}, r.cfg.CacheExtra...)...)
		p, hit, err := r.cfg.Cache.GetOrTrain(key, func() (*model.Parser, error) {
			return r.cfg.Train(name, lib)
		})
		if hit {
			r.cfg.Logf("fleet: %s: snapshot cache hit (key %.12s), skipped training", name, key)
		}
		return p, err
	}
	return r.cfg.Train(name, lib)
}

// watch is the hot-reload loop: every cfg.Watch it re-scans the library
// directory and reacts to added, changed and removed skills. Change
// detection is two-stage — a cheap stat compare gates re-parsing, and the
// parsed library's checksum gates retraining — so an idle tick costs one
// ReadDir and an edit that does not change the checksum never retrains.
func (r *Registry) watch() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.cfg.Watch)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
		}
		entries, err := thingpedia.ScanLibraryDir(r.cfg.LibDir)
		if err != nil {
			r.cfg.Logf("fleet: watch: %v", err)
			continue
		}
		seen := map[string]bool{}
		for _, e := range entries {
			seen[e.Name] = true
			r.mu.RLock()
			sk := r.skills[e.Name]
			r.mu.RUnlock()
			if sk == nil {
				r.cfg.Logf("fleet: %s: new skill library %s", e.Name, e.Path)
				r.addSkill(e)
				continue
			}
			reload, reentry := false, e
			sk.mu.Lock()
			switch {
			case sk.reloading:
				// A build is already in flight; its result resolves first.
			case e.Changed(sk.entry):
				if sk.quarantined {
					// Re-admission probe: the stat changed, but a quarantined
					// skill only gets another build when its bytes actually
					// did — otherwise absorb the stat and stay quarantined.
					if sum := rawFileChecksum(e.Path); sum != "" && sum == sk.quarantineSum {
						sk.entry = e
						break
					}
					r.cfg.Logf("fleet: %s: quarantined library changed, re-admitting", sk.name)
				}
				reload = true
			case sk.err != nil && !sk.quarantined && !sk.retryAt.IsZero() && time.Now().After(sk.retryAt):
				// Transient failure past its backoff: retry the same entry.
				r.cfg.Logf("fleet: %s: retrying build after transient failure", sk.name)
				reload, reentry = true, sk.entry
			}
			if reload {
				sk.reloading = true
			}
			sk.mu.Unlock()
			if reload {
				r.spawnReload(sk, reentry)
			}
		}
		// Removed libraries: stop routing, then drain.
		r.mu.Lock()
		var removed []*skill
		for name, sk := range r.skills {
			if !seen[name] {
				delete(r.skills, name)
				removed = append(removed, sk)
			}
		}
		r.mu.Unlock()
		for _, sk := range removed {
			r.cfg.Logf("fleet: %s: library removed, draining", sk.name)
			sk.mu.Lock()
			sk.removed = true
			sh := sk.shard.Swap(nil)
			sk.mu.Unlock()
			if sh != nil {
				r.wg.Add(1)
				go func() {
					defer r.wg.Done()
					sh.batcher.Close()
				}()
			}
		}
	}
}

// WaitReady blocks until no skill has a build in flight (every skill is
// serving or failed), or ctx ends.
func (r *Registry) WaitReady(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if !r.anyReloading() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-r.stop:
			return ErrNotReady
		case <-tick.C:
		}
	}
}

func (r *Registry) anyReloading() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, sk := range r.skills {
		sk.mu.Lock()
		rel := sk.reloading
		sk.mu.Unlock()
		if rel {
			return true
		}
	}
	return false
}

// Close stops the watcher and background builds, then drains every shard
// (all admitted requests are answered before Close returns).
func (r *Registry) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
	r.mu.Lock()
	skills := make([]*skill, 0, len(r.skills))
	for _, sk := range r.skills {
		skills = append(skills, sk)
	}
	r.mu.Unlock()
	var wg sync.WaitGroup
	for _, sk := range skills {
		if sh := sk.shard.Swap(nil); sh != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sh.batcher.Close()
			}()
		}
	}
	wg.Wait()
}

func (r *Registry) skill(name string) *skill {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.skills[name]
}

// readyShards snapshots the currently serving (skill, shard) pairs in
// skill-name order.
func (r *Registry) readyShards() []*skill {
	r.mu.RLock()
	out := make([]*skill, 0, len(r.skills))
	for _, sk := range r.skills {
		out = append(out, sk)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Parse routes one request to the named skill's shard. The returned
// generation identifies the snapshot that answered.
func (r *Registry) Parse(ctx context.Context, name string, words []string) (toks []string, generation uint64, err error) {
	return r.ParseSession(ctx, name, "", words, nil)
}

// ParseSession is Parse with multi-turn dialogue state. prior is the
// previous turn's program tokens supplied explicitly by the caller; when it
// is empty and session names an X-Genie-Session, the skill's session store
// supplies it instead. An accepted parse is recorded back under the session
// id, becoming the next follow-up's context. On a non-contextual shard the
// whole session flow is a no-op and this is exactly Parse.
func (r *Registry) ParseSession(ctx context.Context, name, session string, words, prior []string) (toks []string, generation uint64, err error) {
	sk := r.skill(name)
	if sk == nil {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownSkill, name)
	}
	sh := sk.shard.Load()
	if sh == nil {
		sk.errs.Add(1)
		return nil, 0, fmt.Errorf("%w: %q", ErrNotReady, name)
	}
	contextual := sh.batcher.Contextual()
	if contextual && len(prior) == 0 && session != "" {
		prior, _ = sk.sessions.Get(session, name)
	}
	sk.requests.Add(1)
	start := time.Now()
	toks, err = sh.batcher.ParseContextCtx(ctx, words, prior)
	if err != nil {
		// Sheds have their own counter (the batcher's); everything else —
		// expired deadline budgets, decode failures, closed shards — is an
		// error this skill answered with.
		if !errors.Is(err, serve.ErrOverloaded) {
			sk.errs.Add(1)
		}
		return nil, sh.generation, err
	}
	sk.lat.Observe(float64(time.Since(start).Microseconds()) / 1000)
	if contextual && session != "" && len(toks) > 0 {
		sk.sessions.Put(session, name, toks)
	}
	return toks, sh.generation, nil
}

// ParseAny is the fallback router for requests that do not name a skill: it
// submits the sentence to every ready shard as a scored decode and answers
// with the best length-normalized hypothesis (ties broken by skill name, so
// routing is deterministic). Shards that shed or fail are skipped; if every
// shard shed, the fleet as a whole is overloaded and ErrOverloaded
// propagates.
func (r *Registry) ParseAny(ctx context.Context, words []string) (skillName string, toks []string, score float64, generation uint64, err error) {
	type answer struct {
		name  string
		toks  []string
		score float64
		gen   uint64
		err   error
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		answers []answer
	)
	for _, sk := range r.readyShards() {
		sh := sk.shard.Load()
		if sh == nil {
			continue
		}
		wg.Add(1)
		go func(sk *skill, sh *shard) {
			defer wg.Done()
			sk.requests.Add(1)
			start := time.Now()
			t, s, e := sh.batcher.ParseScoredCtx(ctx, words)
			if e == nil {
				sk.lat.Observe(float64(time.Since(start).Microseconds()) / 1000)
			} else if !errors.Is(e, serve.ErrOverloaded) {
				sk.errs.Add(1)
			}
			mu.Lock()
			answers = append(answers, answer{name: sk.name, toks: t, score: s, gen: sh.generation, err: e})
			mu.Unlock()
		}(sk, sh)
	}
	wg.Wait()
	if len(answers) == 0 {
		return "", nil, 0, 0, ErrNotReady
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i].name < answers[j].name })
	best := -1
	allShed := true
	for i := range answers {
		if answers[i].err != nil {
			if !errors.Is(answers[i].err, serve.ErrOverloaded) {
				allShed = false
			}
			continue
		}
		allShed = false
		if best < 0 || answers[i].score > answers[best].score {
			best = i
		}
	}
	if best < 0 {
		if allShed {
			return "", nil, 0, 0, serve.ErrOverloaded
		}
		return "", nil, 0, 0, answers[0].err
	}
	a := answers[best]
	return a.name, a.toks, a.score, a.gen, nil
}

// ParseSkill implements eval.SkillDecoder: errors decode to nil (scored as
// wrong), keeping fleet-level evaluation total-preserving.
//
//genielint:ctx-root interface adapter: the eval.SkillDecoder contract has no ctx parameter
func (r *Registry) ParseSkill(skillName string, words []string) []string {
	toks, _, err := r.Parse(context.Background(), skillName, words)
	if err != nil {
		return nil
	}
	return toks
}

// ParseTurn implements eval.SessionDecoder: one dialogue turn routed under a
// session id, with the skill's session store supplying the follow-up
// context. Errors decode to nil (scored as wrong).
//
//genielint:ctx-root interface adapter: the eval.SessionDecoder contract has no ctx parameter
func (r *Registry) ParseTurn(skillName, session string, words []string) []string {
	toks, _, err := r.ParseSession(context.Background(), skillName, session, words, nil)
	if err != nil {
		return nil
	}
	return toks
}

// Skills reports every skill's lifecycle state, sorted by name.
func (r *Registry) Skills() []serve.SkillInfo {
	var out []serve.SkillInfo
	for _, sk := range r.readyShards() {
		sh := sk.shard.Load()
		sk.mu.Lock()
		info := serve.SkillInfo{Name: sk.name, Path: sk.path}
		switch {
		case sh != nil && sk.reloading:
			info.Status = StatusReloading
		case sh != nil:
			info.Status = StatusReady
		case sk.quarantined:
			info.Status = StatusQuarantined
		case sk.err != nil:
			info.Status = StatusFailed
		default:
			info.Status = StatusTraining
		}
		if sk.err != nil {
			info.Error = sk.err.Error()
		}
		sk.mu.Unlock()
		if sh != nil {
			info.Checksum = sh.checksum
			info.Generation = sh.generation
		}
		out = append(out, info)
	}
	return out
}

// Uptime is how long this registry has been serving.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// Metrics reports every skill's live serving metrics, sorted by name.
func (r *Registry) Metrics() []serve.SkillMetrics {
	var out []serve.SkillMetrics
	for _, sk := range r.readyShards() {
		m := serve.SkillMetrics{
			Name:     sk.name,
			Requests: sk.requests.Load(),
			Errors:   sk.errs.Load(),
		}
		m.P50MS, m.P99MS = sk.lat.Quantiles()
		ss := sk.sessions.Stats()
		m.Sessions = int64(ss.Size)
		m.SessionHits = int64(ss.Hits)
		m.SessionMisses = int64(ss.Misses)
		m.SessionEvictions = int64(ss.Evictions)
		if sh := sk.shard.Load(); sh != nil {
			st := sh.batcher.Stats()
			m.Generation = sh.generation
			m.Shed = st.Shed
			m.QueueDepth = st.QueueDepth
			m.Batches = st.Batches
			m.BatchSizes = st.BatchSizes
			m.Adaptive = st.Adaptive
			m.Escalated = st.Escalated
			if st.Adaptive > 0 {
				m.EscalationRate = float64(st.Escalated) / float64(st.Adaptive)
			}
		}
		out = append(out, m)
	}
	return out
}
