package fleet

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/serve"
)

// TestFleetMetricsErrorsAndUptime covers the gateway-facing additions to
// GET /metrics: the per-skill cumulative error counter (non-shed errors
// only) and the process uptime.
func TestFleetMetricsErrorsAndUptime(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	var counts sync.Map
	r, err := New(testConfig(dir, &counts))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	defer srv.Close()
	waitReady(t, r)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := serve.NewClient(ts.URL)
	ctx := context.Background()
	words := []string{"tweet", "bravo", "now"}

	// A healthy parse: no errors counted.
	if _, err := c.ParseSkillCtx(ctx, "alpha", words); err != nil {
		t.Fatalf("ParseSkillCtx: %v", err)
	}

	// An exhausted deadline budget is a non-shed error the skill answered
	// with; it must move the counter.
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, perr := r.Parse(expired, "alpha", words); perr == nil {
		t.Fatal("expired-context Parse should error")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if m.UptimeSeconds <= 0 {
		t.Errorf("UptimeSeconds = %v, want > 0", m.UptimeSeconds)
	}
	var alpha *serve.SkillMetrics
	for i := range m.Skills {
		if m.Skills[i].Name == "alpha" {
			alpha = &m.Skills[i]
		}
	}
	if alpha == nil {
		t.Fatalf("alpha missing from metrics: %+v", m)
	}
	if alpha.Errors != 1 {
		t.Errorf("alpha.Errors = %d, want 1 (one expired-budget request)", alpha.Errors)
	}
	if alpha.Shed != 0 {
		t.Errorf("alpha.Shed = %d, want 0", alpha.Shed)
	}
}
