package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/serve"
)

// TestFleetHTTPEndToEnd drives the whole multi-skill API through
// serve.Client: explicit-skill routing, fallback routing with a score,
// /skills, /metrics and /healthz, plus 404 on unknown skills.
func TestFleetHTTPEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	writeLib(t, dir, "beta", libV1("test.beta"))
	var counts sync.Map
	r, err := New(testConfig(dir, &counts))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	defer srv.Close()
	waitReady(t, r)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := serve.NewClient(ts.URL)
	ctx := context.Background()

	// Explicit skill.
	words := []string{"tweet", "bravo", "now"}
	resp, err := c.ParseSkillCtx(ctx, "alpha", words)
	if err != nil {
		t.Fatalf("ParseSkillCtx: %v", err)
	}
	want := strings.Join(toyParser("alpha").Parse(words), " ")
	if resp.Program != want || resp.Skill != "alpha" || resp.Generation == 0 {
		t.Errorf("skill parse = %+v, want program %q", resp, want)
	}

	// eval.SkillDecoder adapter.
	if got := strings.Join(c.ParseSkill("alpha", words), " "); got != want {
		t.Errorf("Client.ParseSkill = %q, want %q", got, want)
	}

	// Fallback routing: no skill named; the reply must name the routed
	// skill and carry its score.
	fresp, err := c.ParseRequestCtx(ctx, serve.ParseRequest{Words: words})
	if err != nil {
		t.Fatalf("fallback parse: %v", err)
	}
	if fresp.Skill == "" || fresp.Score == 0 || fresp.Generation == 0 {
		t.Errorf("fallback reply missing routing info: %+v", fresp)
	}

	// Unknown skill: 404.
	if _, err := c.ParseSkillCtx(ctx, "nosuch", words); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown skill error = %v, want 404", err)
	}

	// /skills.
	skills, err := c.Skills(ctx)
	if err != nil {
		t.Fatalf("Skills: %v", err)
	}
	if len(skills.Skills) != 2 || skills.Skills[0].Name != "alpha" || skills.Skills[1].Name != "beta" {
		t.Errorf("skills = %+v", skills)
	}
	for _, s := range skills.Skills {
		if s.Status != StatusReady || s.Checksum == "" || s.Generation == 0 {
			t.Errorf("skill not ready over HTTP: %+v", s)
		}
	}

	// /metrics: alpha served traffic (explicit + fallback), latencies move.
	metrics, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	var alpha *serve.SkillMetrics
	for i := range metrics.Skills {
		if metrics.Skills[i].Name == "alpha" {
			alpha = &metrics.Skills[i]
		}
	}
	if alpha == nil || alpha.Requests < 2 || alpha.Batches < 1 {
		t.Errorf("alpha metrics = %+v", alpha)
	}
	if alpha.P50MS <= 0 || alpha.P99MS < alpha.P50MS {
		t.Errorf("implausible latency quantiles: %+v", alpha)
	}
	if len(alpha.BatchSizes) == 0 {
		t.Errorf("missing batch-size histogram: %+v", alpha)
	}

	// /healthz counts ready skills.
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if !h.OK || h.Skills != 2 {
		t.Errorf("health = %+v", h)
	}

	// GET /parse is rejected.
	getResp, err := ts.Client().Get(ts.URL + "/parse")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /parse status = %d, want 405", getResp.StatusCode)
	}
}
