package fleet

import (
	"sort"
	"sync"
)

// latencyRing keeps the last ringSize request latencies per skill and
// derives p50/p99 on demand. A bounded ring favors recency — exactly what a
// hot-swap wants: after a new generation goes live, the window flushes to
// the new snapshot's behavior within ringSize requests — and keeps the
// memory and /metrics cost constant under heavy traffic.
type latencyRing struct {
	mu   sync.Mutex
	buf  [ringSize]float64
	n    int // total observations (buf holds min(n, ringSize))
	next int
}

const ringSize = 1024

func (l *latencyRing) observe(ms float64) {
	l.mu.Lock()
	l.buf[l.next] = ms
	l.next = (l.next + 1) % ringSize
	l.n++
	l.mu.Unlock()
}

// quantiles returns the windowed p50 and p99 (0, 0 before any traffic).
func (l *latencyRing) quantiles() (p50, p99 float64) {
	l.mu.Lock()
	n := min(l.n, ringSize)
	window := make([]float64, n)
	copy(window, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(window)
	return window[quantileIndex(n, 0.50)], window[quantileIndex(n, 0.99)]
}

// quantileIndex is the nearest-rank index of quantile q in n sorted values.
func quantileIndex(n int, q float64) int {
	i := int(q*float64(n-1) + 0.5)
	return min(i, n-1)
}
