package fleet

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/thingpedia"
)

// Toy parsers: one per "domain", trained once per test binary. The control
// plane under test does not care what the parsers know — only that they are
// real *model.Parser values with distinct outputs per domain.

var toyParsers struct {
	once sync.Once
	p    map[string]*model.Parser
}

func toyPairs(verb, fn string) []model.Pair {
	values := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	var pairs []model.Pair
	for _, v := range values {
		pairs = append(pairs, model.Pair{
			Src: []string{verb, v, "now"},
			Tgt: []string{"now", "=>", fn, "param:text", "=", `"`, v, `"`},
		})
	}
	return pairs
}

func toyParser(domain string) *model.Parser {
	toyParsers.once.Do(func() {
		toyParsers.p = map[string]*model.Parser{}
		for domain, spec := range map[string]struct{ verb, fn string }{
			"alpha": {"tweet", "@twitter.post"},
			"beta":  {"email", "@gmail.send"},
		} {
			cfg := model.Config{
				EmbedDim: 24, HiddenDim: 32, LR: 5e-3, Epochs: 30,
				EvalEvery: 100000, PointerGen: true, MaxDecodeLen: 16,
				MinVocabCount: 3, Seed: 1,
			}
			toyParsers.p[domain] = model.Train(toyPairs(spec.verb, spec.fn), nil, nil, cfg)
		}
	})
	return toyParsers.p[domain]
}

// Minimal valid skill-library sources. libV2 differs from libV1 by a
// template, so the checksum changes; libTouched differs only in comments
// and whitespace, so it does not.
func libV1(class string) string {
	return fmt.Sprintf(`class @%s easy {
  action ping(in req text : String) "ping";
}
templates {
  vp "ping %s $x" (x : String) := @%s.ping param:text = $x ;
}
`, class, class, class)
}

func libV2(class string) string {
	return libV1(class) + fmt.Sprintf(`templates {
  vp "poke %s $x" (x : String) := @%s.ping param:text = $x ;
}
`, class, class)
}

func libTouched(class string) string {
	return "// comment only\n" + libV1(class)
}

func writeLib(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name+thingpedia.LibraryExt)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// countingTrain returns a TrainFunc mapping skill name -> toy parser,
// counting builds per skill.
func countingTrain(counts *sync.Map) TrainFunc {
	return func(name string, lib *thingpedia.Library) (*model.Parser, error) {
		c, _ := counts.LoadOrStore(name, new(atomic.Int64))
		c.(*atomic.Int64).Add(1)
		p := toyParser(name)
		if p == nil {
			return nil, fmt.Errorf("no toy parser for %q", name)
		}
		return p, nil
	}
}

func testConfig(dir string, counts *sync.Map) Config {
	return Config{
		LibDir: dir,
		Serve:  serve.Options{MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2, MaxQueue: -1},
		Train:  countingTrain(counts),
	}
}

func waitReady(t *testing.T, r *Registry) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := r.WaitReady(ctx); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
}

// skillGeneration polls /skills state for the named skill.
func skillGeneration(r *Registry, name string) uint64 {
	for _, s := range r.Skills() {
		if s.Name == name {
			return s.Generation
		}
	}
	return 0
}

func TestFleetRoutesBySkill(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	writeLib(t, dir, "beta", libV1("test.beta"))
	var counts sync.Map
	r, err := New(testConfig(dir, &counts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	ctx := context.Background()
	words := []string{"tweet", "delta", "now"}
	toks, gen, err := r.Parse(ctx, "alpha", words)
	if err != nil {
		t.Fatalf("Parse(alpha): %v", err)
	}
	if want := strings.Join(toyParser("alpha").Parse(words), " "); strings.Join(toks, " ") != want {
		t.Errorf("alpha decode = %q, want %q", strings.Join(toks, " "), want)
	}
	if gen == 0 {
		t.Error("generation should be nonzero for a served request")
	}
	bwords := []string{"email", "delta", "now"}
	btoks, _, err := r.Parse(ctx, "beta", bwords)
	if err != nil {
		t.Fatalf("Parse(beta): %v", err)
	}
	if want := strings.Join(toyParser("beta").Parse(bwords), " "); strings.Join(btoks, " ") != want {
		t.Errorf("beta decode = %q, want %q", strings.Join(btoks, " "), want)
	}

	if _, _, err := r.Parse(ctx, "nosuch", words); !errors.Is(err, ErrUnknownSkill) {
		t.Errorf("unknown skill: err = %v, want ErrUnknownSkill", err)
	}

	// Skills surface: both ready, distinct generations, real checksums.
	infos := r.Skills()
	if len(infos) != 2 {
		t.Fatalf("Skills() = %+v, want 2 entries", infos)
	}
	gens := map[uint64]bool{}
	for _, s := range infos {
		if s.Status != StatusReady {
			t.Errorf("skill %s status = %s, want ready", s.Name, s.Status)
		}
		if len(s.Checksum) != 64 {
			t.Errorf("skill %s checksum = %q", s.Name, s.Checksum)
		}
		gens[s.Generation] = true
	}
	if len(gens) != 2 {
		t.Errorf("generations not distinct: %+v", infos)
	}
}

// TestFleetFallbackScoring routes skill-less requests by best
// length-normalized score and checks the choice against the parsers'
// directly computed scores (name-ordered tie-break).
func TestFleetFallbackScoring(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	writeLib(t, dir, "beta", libV1("test.beta"))
	var counts sync.Map
	r, err := New(testConfig(dir, &counts))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	for _, words := range [][]string{
		{"tweet", "alpha", "now"},
		{"email", "bravo", "now"},
		{"tweet", "charlie", "now"},
	} {
		wantSkill, wantScore := "", 0.0
		for _, name := range []string{"alpha", "beta"} { // name order = tie-break order
			_, score := toyParser(name).ParseScored(words, 1)
			if wantSkill == "" || score > wantScore {
				wantSkill, wantScore = name, score
			}
		}
		skill, toks, score, gen, err := r.ParseAny(context.Background(), words)
		if err != nil {
			t.Fatalf("ParseAny(%v): %v", words, err)
		}
		if skill != wantSkill || score != wantScore {
			t.Errorf("ParseAny(%v) routed to %s (score %v), want %s (score %v)", words, skill, score, wantSkill, wantScore)
		}
		if wantToks, _ := toyParser(wantSkill).ParseScored(words, 1); strings.Join(toks, " ") != strings.Join(wantToks, " ") {
			t.Errorf("ParseAny(%v) tokens = %q, want %q", words, strings.Join(toks, " "), strings.Join(wantToks, " "))
		}
		if gen == 0 {
			t.Error("fallback answer should carry its shard's generation")
		}
	}
}

// TestFleetHotReloadUnderLoad is the tentpole's -race acceptance test: a
// library edit must hot-swap the skill's parser within one watch interval
// while concurrent requests keep flowing — every request admitted before or
// during the swap is answered (drained on the old snapshot), none dropped.
func TestFleetHotReloadUnderLoad(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	var counts sync.Map
	cfg := testConfig(dir, &counts)
	cfg.Watch = 20 * time.Millisecond
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)
	gen1 := skillGeneration(r, "alpha")
	if gen1 == 0 {
		t.Fatal("alpha not serving after WaitReady")
	}

	// Concurrent load for the whole reload window.
	var (
		stop     atomic.Bool
		wg       sync.WaitGroup
		failures atomic.Int64
		served   atomic.Int64
	)
	words := []string{"tweet", "echo", "now"}
	want := strings.Join(toyParser("alpha").Parse(words), " ")
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				toks, _, err := r.Parse(context.Background(), "alpha", words)
				if err != nil || strings.Join(toks, " ") != want {
					failures.Add(1)
					return
				}
				served.Add(1)
			}
		}()
	}

	// Edit the library (checksum changes) and wait for the swap.
	time.Sleep(30 * time.Millisecond) // let some pre-swap traffic through
	writeLib(t, dir, "alpha", libV2("test.alpha"))
	deadline := time.Now().Add(15 * time.Second)
	for skillGeneration(r, "alpha") == gen1 {
		if time.Now().After(deadline) {
			stop.Store(true)
			wg.Wait()
			t.Fatalf("hot swap never happened (generation still %d)", gen1)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Keep load flowing across the post-swap drain, then stop.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if failures.Load() != 0 {
		t.Errorf("%d requests dropped or wrong across the hot swap", failures.Load())
	}
	if served.Load() == 0 {
		t.Error("no traffic served during the reload window")
	}
	if c, ok := counts.Load("alpha"); !ok || c.(*atomic.Int64).Load() != 2 {
		t.Errorf("alpha built %v times, want 2 (initial + reload)", c)
	}
	if gen2 := skillGeneration(r, "alpha"); gen2 <= gen1 {
		t.Errorf("generation did not advance: %d -> %d", gen1, gen2)
	}
}

// TestFleetTouchDoesNotRetrain: a stat change whose parsed checksum is
// unchanged (comments/whitespace) must not rebuild or bump the generation.
func TestFleetTouchDoesNotRetrain(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	var counts sync.Map
	cfg := testConfig(dir, &counts)
	cfg.Watch = 20 * time.Millisecond
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)
	gen1 := skillGeneration(r, "alpha")

	writeLib(t, dir, "alpha", libTouched("test.alpha"))
	// Wait for the watcher to see the stat change and settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(30 * time.Millisecond)
		if !r.anyReloading() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reload never settled")
		}
	}
	time.Sleep(60 * time.Millisecond) // a couple more ticks
	if gen := skillGeneration(r, "alpha"); gen != gen1 {
		t.Errorf("comment-only edit bumped generation %d -> %d", gen1, gen)
	}
	if c, _ := counts.Load("alpha"); c.(*atomic.Int64).Load() != 1 {
		t.Errorf("comment-only edit retrained (builds = %d)", c.(*atomic.Int64).Load())
	}
}

// TestFleetAddAndRemoveSkills: the watcher picks up new library files and
// drains removed ones.
func TestFleetAddAndRemoveSkills(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	var counts sync.Map
	cfg := testConfig(dir, &counts)
	cfg.Watch = 20 * time.Millisecond
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	betaPath := writeLib(t, dir, "beta", libV1("test.beta"))
	deadline := time.Now().Add(15 * time.Second)
	for skillGeneration(r, "beta") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("added skill never became ready: %+v", r.Skills())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if toks := r.ParseSkill("beta", []string{"email", "alpha", "now"}); len(toks) == 0 {
		t.Error("added skill does not serve")
	}

	if err := os.Remove(betaPath); err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err := r.Parse(context.Background(), "beta", []string{"email", "alpha", "now"}); errors.Is(err, ErrUnknownSkill) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("removed skill still routed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(r.Skills()) != 1 {
		t.Errorf("Skills() after removal = %+v", r.Skills())
	}
}

// TestFleetBuildFailureKeepsServing: a broken library edit records the
// error but keeps the previous snapshot serving.
func TestFleetBuildFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	var counts sync.Map
	cfg := testConfig(dir, &counts)
	cfg.Watch = 20 * time.Millisecond
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)
	gen1 := skillGeneration(r, "alpha")

	writeLib(t, dir, "alpha", "class @broken {") // parse error
	deadline := time.Now().Add(10 * time.Second)
	for {
		infos := r.Skills()
		if len(infos) == 1 && infos[0].Error != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("build failure never surfaced: %+v", infos)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gen := skillGeneration(r, "alpha"); gen != gen1 {
		t.Errorf("failed build changed generation %d -> %d", gen1, gen)
	}
	if toks := r.ParseSkill("alpha", []string{"tweet", "alpha", "now"}); len(toks) == 0 {
		t.Error("old snapshot stopped serving after failed rebuild")
	}
}

// TestFleetCacheSkipsRetrainOnRevert: with a snapshot cache, reverting a
// library to previously seen content must swap without invoking TrainFunc
// again (the checksum-keyed cache hit resolves it).
func TestFleetCacheSkipsRetrainOnRevert(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	var counts sync.Map
	cfg := testConfig(dir, &counts)
	cfg.Watch = 20 * time.Millisecond
	cfg.Cache = serve.NewCache("") // memory-only
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	awaitGen := func(not uint64) uint64 {
		deadline := time.Now().Add(15 * time.Second)
		for {
			if g := skillGeneration(r, "alpha"); g != not {
				return g
			}
			if time.Now().After(deadline) {
				t.Fatalf("generation stuck at %d", not)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	gen1 := skillGeneration(r, "alpha")
	writeLib(t, dir, "alpha", libV2("test.alpha"))
	gen2 := awaitGen(gen1)
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	gen3 := awaitGen(gen2)
	if gen3 <= gen2 {
		t.Errorf("revert did not swap a fresh generation: %d -> %d -> %d", gen1, gen2, gen3)
	}
	c, _ := counts.Load("alpha")
	if n := c.(*atomic.Int64).Load(); n != 2 {
		t.Errorf("TrainFunc ran %d times across v1->v2->v1, want 2 (revert must hit the cache)", n)
	}
}
