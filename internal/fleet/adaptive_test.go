package fleet

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/thingpedia"
)

// TestFleetAdaptiveEscalationMetrics runs a two-skill fleet with adaptive
// decoding on: alpha's parser carries a calibration threshold above every
// score (all requests escalate to the beam), beta's one below (none do).
// The per-skill escalation counters surfaced on /metrics must reflect
// exactly that split.
func TestFleetAdaptiveEscalationMetrics(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))
	writeLib(t, dir, "beta", libV1("test.beta"))

	// The toy parsers are shared across the test binary: restore their
	// (empty) calibration on the way out.
	defer toyParser("alpha").SetCalibration(model.Calibration{})
	defer toyParser("beta").SetCalibration(model.Calibration{})

	train := func(name string, lib *thingpedia.Library) (*model.Parser, error) {
		p := toyParser(name)
		thr := math.Inf(1) // alpha: every greedy score is below +Inf
		if name == "beta" {
			thr = math.Inf(-1) // beta: no score is below -Inf
		}
		p.SetCalibration(model.Calibration{Fitted: true, Threshold: thr})
		return p, nil
	}
	r, err := New(Config{
		LibDir: dir,
		Serve: serve.Options{
			MaxBatch: 4, MaxWait: time.Millisecond, Workers: 2,
			MaxQueue: -1, Beam: 3, Adaptive: true,
		},
		Train: train,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	const n = 24
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		for _, skill := range []string{"alpha", "beta"} {
			wg.Add(1)
			go func(skill string) {
				defer wg.Done()
				if _, _, err := r.Parse(context.Background(), skill, []string{"tweet", "bravo", "now"}); err != nil {
					t.Errorf("Parse %s: %v", skill, err)
				}
			}(skill)
		}
	}
	wg.Wait()

	byName := map[string]serve.SkillMetrics{}
	for _, m := range r.Metrics() {
		byName[m.Name] = m
	}
	alpha, beta := byName["alpha"], byName["beta"]
	if alpha.Adaptive != n || alpha.Escalated != n || alpha.EscalationRate != 1 {
		t.Errorf("alpha should escalate all %d adaptive requests: %+v", n, alpha)
	}
	if beta.Adaptive != n || beta.Escalated != 0 || beta.EscalationRate != 0 {
		t.Errorf("beta should escalate none of %d adaptive requests: %+v", n, beta)
	}
}
