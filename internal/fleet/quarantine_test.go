package fleet

import (
	"context"
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/model"
	"repro/internal/thingpedia"
)

func skillStatus(r *Registry, name string) string {
	for _, s := range r.Skills() {
		if s.Name == name {
			return s.Status
		}
	}
	return ""
}

func waitStatus(t *testing.T, r *Registry, name, want string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if got := skillStatus(r, name); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("skill %s never reached status %q (at %q)", name, want, skillStatus(r, name))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQuarantineLifecycle walks the full deterministic-failure arc: a bad
// library quarantines its skill (StatusQuarantined, no retry storm), a
// touch with identical bytes stays quarantined, and an actual content
// change re-admits it. Run under -race in CI.
func TestQuarantineLifecycle(t *testing.T) {
	dir := t.TempDir()
	path := writeLib(t, dir, "alpha", libV1("test.alpha"))

	var builds atomic.Int64
	var poisoned atomic.Bool
	poisoned.Store(true)
	cfg := Config{
		LibDir: dir,
		Watch:  10 * time.Millisecond,
		Serve:  testConfig(dir, &sync.Map{}).Serve,
		Train: func(name string, lib *thingpedia.Library) (*model.Parser, error) {
			builds.Add(1)
			if poisoned.Load() {
				return nil, errors.New("library does not typecheck")
			}
			return toyParser("alpha"), nil
		},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	waitStatus(t, r, "alpha", StatusQuarantined)
	if _, _, err := r.Parse(context.Background(), "alpha", []string{"ping"}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("quarantined skill parse err = %v, want ErrNotReady", err)
	}
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d, want exactly 1 before any change", n)
	}

	// Touch: stat changes, bytes do not. The re-admission probe must reject
	// it — no build, still quarantined.
	future := time.Now().Add(2 * time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // several watch ticks
	if n := builds.Load(); n != 1 {
		t.Fatalf("builds = %d after touch, want 1 (same bytes must stay quarantined)", n)
	}
	if got := skillStatus(r, "alpha"); got != StatusQuarantined {
		t.Fatalf("status after touch = %q, want quarantined", got)
	}

	// Content change: re-admitted, built, serving.
	poisoned.Store(false)
	writeLib(t, dir, "alpha", libV2("test.alpha"))
	waitStatus(t, r, "alpha", StatusReady)
	if _, _, err := r.Parse(context.Background(), "alpha", []string{"ping", "alpha", "now"}); err != nil {
		t.Fatalf("re-admitted skill parse: %v", err)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("builds = %d after re-admission, want 2", n)
	}
}

// TestTransientBuildFailureRetriesWithBackoff: transient failures (the
// trainer hit I/O pressure) must NOT quarantine — the watcher retries on a
// backoff clock with no library change at all.
func TestTransientBuildFailureRetriesWithBackoff(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))

	var builds atomic.Int64
	cfg := Config{
		LibDir:    dir,
		Watch:     10 * time.Millisecond,
		RetryBase: 20 * time.Millisecond,
		RetryMax:  100 * time.Millisecond,
		Serve:     testConfig(dir, &sync.Map{}).Serve,
		Train: func(name string, lib *thingpedia.Library) (*model.Parser, error) {
			if builds.Add(1) < 3 {
				return nil, durable.MarkTransient(errors.New("trainer disk full"))
			}
			return toyParser("alpha"), nil
		},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)

	if got := skillStatus(r, "alpha"); got != StatusFailed {
		t.Fatalf("status after transient failure = %q, want failed (not quarantined)", got)
	}
	waitStatus(t, r, "alpha", StatusReady)
	if n := builds.Load(); n != 3 {
		t.Fatalf("builds = %d, want 3 (two transient failures + one success)", n)
	}
}

// TestQuarantineDoesNotEvictServingShard: a skill serving generation N whose
// *new* library revision fails deterministically keeps serving N (last-good)
// and reports the error.
func TestQuarantineDoesNotEvictServingShard(t *testing.T) {
	dir := t.TempDir()
	writeLib(t, dir, "alpha", libV1("test.alpha"))

	var poisoned atomic.Bool
	cfg := Config{
		LibDir: dir,
		Watch:  10 * time.Millisecond,
		Serve:  testConfig(dir, &sync.Map{}).Serve,
		Train: func(name string, lib *thingpedia.Library) (*model.Parser, error) {
			if poisoned.Load() {
				return nil, errors.New("new revision does not typecheck")
			}
			return toyParser("alpha"), nil
		},
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	waitReady(t, r)
	waitStatus(t, r, "alpha", StatusReady)
	gen := skillGeneration(r, "alpha")

	poisoned.Store(true)
	writeLib(t, dir, "alpha", libV2("test.alpha"))
	deadline := time.Now().Add(10 * time.Second)
	for {
		found := false
		for _, s := range r.Skills() {
			if s.Name == "alpha" && s.Error != "" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("failed rebuild never surfaced an error")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := skillGeneration(r, "alpha"); got != gen {
		t.Fatalf("generation = %d, want last-good %d still serving", got, gen)
	}
	if _, g, err := r.Parse(context.Background(), "alpha", []string{"ping", "alpha", "now"}); err != nil || g != gen {
		t.Fatalf("parse on last-good: gen=%d err=%v", g, err)
	}
}
