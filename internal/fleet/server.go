package fleet

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"repro/internal/serve"
)

// Server is the fleet's HTTP front end, speaking the serve package's wire
// types so serve.Client works unchanged against a fleet:
//
//	POST /parse   {"skill": "...", "sentence"|"words": ...} -> serve.ParseResponse
//	              (no skill: fallback-routed by best length-normalized score)
//	GET  /skills  -> serve.SkillsResponse (lifecycle: status, checksum, generation)
//	GET  /metrics -> serve.MetricsResponse (per-skill traffic, latency, queue)
//	GET  /healthz -> serve.HealthResponse
type Server struct {
	reg *Registry
	mux *http.ServeMux
}

// NewServer wraps a registry in the fleet HTTP API.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/parse", s.handleParse)
	s.mux.HandleFunc("/skills", s.handleSkills)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s
}

// Registry returns the underlying control plane.
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the HTTP handler (for http.Server or httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Close shuts the whole fleet down (watcher, builds, shard drain).
func (s *Server) Close() { s.reg.Close() }

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var req serve.ParseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	words := req.RequestWords()
	if len(words) == 0 {
		http.Error(w, "empty sentence", http.StatusBadRequest)
		return
	}
	ctx, cancel := serve.DeadlineContext(r)
	defer cancel()
	start := time.Now()
	resp := serve.ParseResponse{Skill: req.Skill}
	var err error
	if req.Skill != "" {
		session := r.Header.Get(serve.SessionHeader)
		resp.Tokens, resp.Generation, err = s.reg.ParseSession(ctx, req.Skill, session, words, req.Context)
	} else {
		resp.Skill, resp.Tokens, resp.Score, resp.Generation, err = s.reg.ParseAny(ctx, words)
	}
	if err != nil {
		switch {
		case errors.Is(err, ErrUnknownSkill):
			http.Error(w, err.Error(), http.StatusNotFound)
		case errors.Is(err, ErrNotReady):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			serve.WriteParseError(w, r, err)
		}
		return
	}
	if resp.Tokens == nil {
		resp.Tokens = []string{} // JSON [] rather than null
	}
	resp.Program = strings.Join(resp.Tokens, " ")
	resp.LatencyMS = float64(time.Since(start).Microseconds()) / 1000
	serve.WriteJSON(w, resp)
}

func (s *Server) handleSkills(w http.ResponseWriter, r *http.Request) {
	serve.WriteJSON(w, serve.SkillsResponse{Skills: s.reg.Skills()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := serve.MetricsResponse{
		UptimeSeconds: s.reg.Uptime().Seconds(),
		Skills:        s.reg.Metrics(),
	}
	if c := s.reg.cfg.Cache; c != nil {
		resp.Durability = serve.DurabilityFrom(c.Stats())
	}
	serve.WriteJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	var requests, batches int64
	ready := 0
	for _, m := range s.reg.Metrics() {
		requests += m.Requests
		batches += m.Batches
		if m.Generation > 0 {
			ready++
		}
	}
	serve.WriteJSON(w, serve.HealthResponse{OK: true, Requests: requests, Batches: batches, Skills: ready})
}
