package tacl

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/params"
	"repro/internal/thingpedia"
)

func TestPolicyTokensRoundTrip(t *testing.T) {
	lib := thingpedia.Builtin()
	examples := Synthesize(lib, 12, 3, 1)
	if len(examples) < 20 {
		t.Fatalf("too few policies: %d", len(examples))
	}
	rng := rand.New(rand.NewSource(3))
	sampler := params.NewSampler()
	for i := range examples {
		inst, ok := Instantiate(&examples[i], sampler, rng)
		if !ok {
			t.Fatalf("instantiation failed for %s", examples[i].Sentence())
		}
		toks := inst.Policy.Tokens()
		parsed, err := ParsePolicy(toks, lib)
		if err != nil {
			t.Fatalf("policy does not round trip: %v\n%s", err, strings.Join(toks, " "))
		}
		if parsed.Source != inst.Policy.Source {
			t.Fatalf("source lost: %q vs %q", parsed.Source, inst.Policy.Source)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	lib := thingpedia.Builtin()
	bads := [][]string{
		nil,
		strings.Fields(`now => @com.thecatapi.get => notify`),
		strings.Fields(`param:source == " " : now => @com.thecatapi.get => notify`),
		strings.Fields(`param:source == " mom " : monitor ( @com.twitter.timeline ) => notify`), // not primitive
		strings.Fields(`param:source == " mom " : now => @com.nosuch.fn => notify`),
	}
	for i, toks := range bads {
		if _, err := ParsePolicy(toks, lib); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBuildDataset(t *testing.T) {
	lib := thingpedia.Builtin()
	d := Build(lib, 12, 3, 80, 2, 1)
	if len(d.Train) == 0 || len(d.ParaTest) == 0 || len(d.Cheatsheet) == 0 {
		t.Fatalf("dataset empty: train=%d paraTest=%d cheat=%d", len(d.Train), len(d.ParaTest), len(d.Cheatsheet))
	}
	if len(d.TrainBase) >= len(d.Train) {
		t.Errorf("baseline (%d) should be smaller than genie training set (%d)", len(d.TrainBase), len(d.Train))
	}
	// Instantiated examples carry no slots.
	for _, e := range d.Train {
		if strings.Contains(e.Sentence(), "__slot_") {
			t.Fatalf("uninstantiated policy: %s", e.Sentence())
		}
	}
	pairs := ToPairs(d.Train[:3])
	for _, p := range pairs {
		if p.Tgt[0] != "param:source" {
			t.Errorf("target should start with the source predicate: %v", p.Tgt[:4])
		}
	}
}
