// Package tacl implements the ThingTalk Access Control Language of
// Section 6.2 (Fig. 10): policies that state who may run which primitive
// commands over the user's data. A policy pairs a source predicate (the
// person requesting access) with a filtered primitive query or action.
//
// The package reuses the ThingTalk substrate end to end — grammar rules over
// the same skill library, the same synthesis engine, parameter replacement
// and the same neural parser — and adds the policy construct templates (the
// paper wrote 6) plus policy-level encoding, parsing and evaluation.
package tacl

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/paraphrase"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// Policy is one access-control rule: source may run the command.
type Policy struct {
	// Source is the person the policy grants access to (a role word).
	Source string
	// Program is the primitive command the policy permits (now => q =>
	// notify for read access, now => a for actions).
	Program *thingtalk.Program
}

// Tokens renders the policy in canonical token form:
//
//	param:source == " secretary " : now => ... ;
func (p *Policy) Tokens() []string {
	out := []string{"param:source", "==", `"`}
	out = append(out, strings.Fields(p.Source)...)
	out = append(out, `"`, ":")
	return append(out, p.Program.Tokens()...)
}

// Clone deep-copies the policy.
func (p *Policy) Clone() *Policy {
	return &Policy{Source: p.Source, Program: p.Program.Clone()}
}

// ParsePolicy parses a canonical policy token sequence.
func ParsePolicy(toks []string, schemas thingtalk.SchemaSource) (*Policy, error) {
	// Find the ":" separator after the quoted source.
	sep := -1
	for i, t := range toks {
		if t == ":" {
			sep = i
			break
		}
	}
	if sep < 4 || toks[0] != "param:source" || toks[1] != "==" || toks[2] != `"` || toks[sep-1] != `"` {
		return nil, fmt.Errorf("tacl: malformed policy header")
	}
	source := strings.Join(toks[3:sep-1], " ")
	if source == "" {
		return nil, fmt.Errorf("tacl: empty policy source")
	}
	prog, err := thingtalk.ParseTokens(toks[sep+1:], thingtalk.ParseOptions{Schemas: schemas})
	if err != nil {
		return nil, err
	}
	if err := thingtalk.Typecheck(prog, schemas); err != nil {
		return nil, err
	}
	if prog.Stream.Kind != thingtalk.StreamNow {
		return nil, fmt.Errorf("tacl: policies cover primitive commands only")
	}
	return &Policy{Source: source, Program: prog}, nil
}

// Roles are the paper-style access-control subjects.
var Roles = []string{
	"secretary", "mom", "dad", "babysitter", "roommate", "boss",
	"assistant", "wife", "husband", "doctor", "accountant", "neighbor",
}

// PolicyCategory is the grammar category of complete policies.
const PolicyCategory = "policy"

// AddPolicyRules installs the six policy construct templates over an
// existing ThingTalk grammar (np and avp pools come from the skill
// library's primitive templates).
func AddPolicyRules(g *nltemplate.Grammar, lib *thingpedia.Library) {
	for _, role := range Roles {
		r := role
		readPolicy := func(c []*nltemplate.Derivation) any {
			q, ok := c[0].Value.(*thingtalk.Query)
			if !ok || q == nil {
				return nil
			}
			prog := &thingtalk.Program{Stream: thingtalk.Now(), Query: q.Clone(), Action: thingtalk.Notify()}
			if err := thingtalk.Typecheck(prog, lib); err != nil {
				return nil
			}
			return &Policy{Source: r, Program: thingtalk.Canonicalize(prog, lib)}
		}
		doPolicy := func(c []*nltemplate.Derivation) any {
			a, ok := c[0].Value.(*thingtalk.Action)
			if !ok || a == nil {
				return nil
			}
			prog := &thingtalk.Program{Stream: thingtalk.Now(), Action: a.Clone()}
			if err := thingtalk.Typecheck(prog, lib); err != nil {
				return nil
			}
			return &Policy{Source: r, Program: thingtalk.Canonicalize(prog, lib)}
		}
		// The six construct templates of Section 6.2.
		g.AddRule("policy:cansee:"+r, PolicyCategory,
			[]nltemplate.Symbol{nltemplate.Lit("my " + r + " can see"), nltemplate.NT(nltemplate.CatNP)}, readPolicy)
		g.AddRule("policy:allowed-see:"+r, PolicyCategory,
			[]nltemplate.Symbol{nltemplate.Lit("my " + r + " is allowed to see"), nltemplate.NT(nltemplate.CatNP)}, readPolicy)
		g.AddRule("policy:show:"+r, PolicyCategory,
			[]nltemplate.Symbol{nltemplate.Lit("show my " + r), nltemplate.NT(nltemplate.CatNP)}, readPolicy)
		g.AddRule("policy:cando:"+r, PolicyCategory,
			[]nltemplate.Symbol{nltemplate.Lit("my " + r + " can"), nltemplate.NT(nltemplate.CatAVP)}, doPolicy)
		g.AddRule("policy:allow-to:"+r, PolicyCategory,
			[]nltemplate.Symbol{nltemplate.Lit("allow my " + r + " to"), nltemplate.NT(nltemplate.CatAVP)}, doPolicy)
		g.AddRule("policy:let:"+r, PolicyCategory,
			[]nltemplate.Symbol{nltemplate.Lit("let my " + r), nltemplate.NT(nltemplate.CatAVP)}, doPolicy)
	}
}

// Example is one policy sentence with its gold policy.
type Example struct {
	Words  []string
	Policy *Policy
}

// Sentence joins the words.
func (e *Example) Sentence() string { return strings.Join(e.Words, " ") }

// Synthesize builds policy examples over a library.
func Synthesize(lib *thingpedia.Library, target, maxDepth int, seed int64) []Example {
	g := nltemplate.StandardGrammar(lib, nltemplate.Options{GenericFilters: true, MaxFilterParams: 3})
	AddPolicyRules(g, lib)
	ders := synthesis.SynthesizeCategory(g, synthesis.Config{
		TargetPerRule: target, MaxDepth: maxDepth, Seed: seed, Schemas: lib,
	}, PolicyCategory)
	out := make([]Example, 0, len(ders))
	for _, d := range ders {
		pol, ok := d.Value.(*Policy)
		if !ok {
			continue
		}
		out = append(out, Example{Words: d.Words, Policy: pol})
	}
	return out
}

// Instantiate replaces parameter slots in a policy example.
func Instantiate(e *Example, sampler *params.Sampler, rng *rand.Rand) (Example, bool) {
	wrapped := dataset.Example{Words: e.Words, Program: e.Policy.Program}
	inst, err := augment.Instantiate(&wrapped, sampler, rng)
	if err != nil {
		return Example{}, false
	}
	return Example{Words: inst.Words, Policy: &Policy{Source: e.Policy.Source, Program: inst.Program}}, true
}

// Dataset is a complete TACL experiment dataset.
type Dataset struct {
	Lib        *thingpedia.Library
	Train      []Example // instantiated, paraphrase + synthesized mix
	TrainBase  []Example // paraphrases only, no expansion (the Baseline)
	ParaTest   []Example
	Cheatsheet []Example
}

// Build synthesizes, paraphrases and splits a TACL dataset; expansion is the
// number of parameter instantiations per training sentence for the Genie
// strategy.
func Build(lib *thingpedia.Library, target, maxDepth, paraMax, expansion int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	sampler := params.NewSampler()
	synth := Synthesize(lib, target, maxDepth, seed)
	rng.Shuffle(len(synth), func(i, j int) { synth[i], synth[j] = synth[j], synth[i] })

	// Paraphrase a sample via the shared crowdworker simulator.
	sel := synth
	if len(sel) > paraMax {
		sel = sel[:paraMax]
	}
	wrapped := make([]dataset.Example, len(sel))
	for i := range sel {
		wrapped[i] = dataset.Example{Words: sel[i].Words, Program: sel[i].Policy.Program}
	}
	res := paraphrase.Simulate(wrapped, paraphrase.Config{Seed: seed + 1})
	paras := make([]Example, 0, len(res.Paraphrases))
	for i := range res.Paraphrases {
		// Pair each paraphrase back with its source policy by program
		// identity.
		paras = append(paras, Example{
			Words:  res.Paraphrases[i].Words,
			Policy: &Policy{Source: sourceFor(res.Paraphrases[i].Words, sel), Program: res.Paraphrases[i].Program},
		})
	}
	paras = filterValid(paras)

	d := &Dataset{Lib: lib}
	// Unique-paraphrase test split (Section 6.2: "the test consists
	// exclusively of paraphrases unique to the whole set").
	testN := len(paras) / 5
	for i, e := range paras {
		inst, ok := Instantiate(&e, sampler, rng)
		if !ok {
			continue
		}
		if i < testN {
			d.ParaTest = append(d.ParaTest, inst)
			continue
		}
		d.TrainBase = append(d.TrainBase, inst)
		d.Train = append(d.Train, inst)
		for k := 1; k < expansion; k++ {
			if more, ok := Instantiate(&e, sampler, rng); ok {
				d.Train = append(d.Train, more)
			}
		}
	}
	// Genie adds the synthesized policies to training.
	for i := range synth {
		if inst, ok := Instantiate(&synth[i], sampler, rng); ok {
			d.Train = append(d.Train, inst)
		}
	}
	// Cheatsheet-style realistic test: user-lexicon rewrites of fresh
	// synthesized policies.
	for i := len(synth) - 1; i >= 0 && len(d.Cheatsheet) < 80; i-- {
		e := synth[i]
		rew := userRewrite(e.Words, rng)
		if inst, ok := Instantiate(&Example{Words: rew, Policy: e.Policy}, sampler, rng); ok {
			d.Cheatsheet = append(d.Cheatsheet, inst)
		}
	}
	return d
}

// sourceFor recovers the role mentioned in a paraphrase (roles are preserved
// words).
func sourceFor(words []string, pool []Example) string {
	for _, w := range words {
		for _, r := range Roles {
			if w == r {
				return r
			}
		}
	}
	if len(pool) > 0 {
		return pool[0].Policy.Source
	}
	return Roles[0]
}

func filterValid(es []Example) []Example {
	out := es[:0]
	for _, e := range es {
		ok := false
		for _, w := range e.Words {
			for _, r := range Roles {
				if w == r {
					ok = true
				}
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

// userRewrite is a light distribution shift for the cheatsheet test.
var userPolicyTable = map[string][]string{
	"can":     {"may", "is permitted to"},
	"see":     {"look at", "read", "view"},
	"allow":   {"permit", "authorize"},
	"let":     {"authorize"},
	"my":      {"my"},
	"show":    {"reveal to"},
	"allowed": {"permitted", "cleared"},
}

func userRewrite(words []string, rng *rand.Rand) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if choices := userPolicyTable[w]; len(choices) > 0 && rng.Intn(2) == 0 {
			out = append(out, strings.Fields(choices[rng.Intn(len(choices))])...)
			continue
		}
		out = append(out, w)
	}
	return out
}

// ToPairs serializes policy examples for the parser.
func ToPairs(examples []Example) []model.Pair {
	out := make([]model.Pair, len(examples))
	for i := range examples {
		out[i] = model.Pair{Src: examples[i].Words, Tgt: examples[i].Policy.Tokens()}
	}
	return out
}

// Evaluate measures exact policy accuracy (canonicalized program plus
// source) of a decoder on examples.
func Evaluate(dec eval.Decoder, examples []Example, schemas thingtalk.SchemaSource) (accuracy float64) {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for i := range examples {
		toks := dec.Parse(examples[i].Words)
		pol, err := ParsePolicy(toks, schemas)
		if err != nil {
			continue
		}
		if pol.Source != examples[i].Policy.Source {
			continue
		}
		if thingtalk.SameProgram(pol.Program, examples[i].Policy.Program, schemas) {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(examples))
}
