// Package evaldata simulates the realistic evaluation data of Section 5.1.
// The paper collects developer data (Almond's training interface) and
// cheatsheet data (crowdworkers who saw a function cheatsheet, then wrote
// commands from memory); both are distribution-shifted away from the
// synthesized/paraphrased training set. This package reproduces that shift
// with a user-phrasing rewriter whose lexicon and sentence forms are
// deliberately disjoint from both the templates and the simulated
// crowdworkers (see DESIGN.md, Substitutions).
package evaldata

import (
	"math/rand"
	"strings"

	"repro/internal/dataset"
)

// Kind selects the simulated collection protocol.
type Kind int

// Evaluation data kinds.
const (
	// Developer data: written by people who know the system; closest to
	// the template language (the paper's easiest realistic set).
	Developer Kind = iota
	// Cheatsheet data: users writing commands from memory; strong shift.
	Cheatsheet
)

// Build derives a realistic evaluation set from synthesized seed examples
// (still slot-marked; instantiate afterwards). Each seed yields one
// rewritten sentence.
func Build(kind Kind, seeds []dataset.Example, seed int64) []dataset.Example {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dataset.Example, 0, len(seeds))
	for i := range seeds {
		e := seeds[i].Clone()
		switch kind {
		case Developer:
			e.Words = rewriteDeveloper(e.Words, rng)
		case Cheatsheet:
			e.Words = rewriteUser(e.Words, rng)
		}
		e.Group = dataset.GroupEval
		if !slotsPreserved(seeds[i].Words, e.Words) {
			// Never lose parameters when rewriting.
			e.Words = append([]string(nil), seeds[i].Words...)
		}
		out = append(out, e)
	}
	return out
}

func slotsPreserved(src, dst []string) bool {
	count := func(ws []string) int {
		n := 0
		for _, w := range ws {
			if strings.HasPrefix(w, "__slot_") {
				n++
			}
		}
		return n
	}
	return count(src) == count(dst)
}

// rewriteDeveloper makes light edits: developers phrase commands close to
// the canonical templates, so roughly half the sentences pass through with
// at most a politeness marker (the cheatsheet rewriter, by contrast, always
// shifts the phrasing).
func rewriteDeveloper(words []string, rng *rand.Rand) []string {
	out := append([]string(nil), words...)
	if rng.Intn(2) == 0 {
		out = applyLexicon(out, devTable, rng, 1)
	}
	if rng.Intn(4) == 0 {
		out = append([]string{"please"}, out...)
	}
	return out
}

// rewriteUser applies the heavier cheatsheet-style shift: a distinct
// lexicon, question forms, aggressive function-word dropping and occasional
// double substitution.
func rewriteUser(words []string, rng *rand.Rand) []string {
	out := applyLexicon(words, userTable, rng, 2+rng.Intn(2))
	out = reshape(out, rng)
	if rng.Intn(3) == 0 {
		out = dropSmallWords(out, rng)
	}
	return out
}

// applyLexicon substitutes up to n table words.
func applyLexicon(words []string, table map[string][]string, rng *rand.Rand, n int) []string {
	out := append([]string(nil), words...)
	for k := 0; k < n; k++ {
		idxs := rng.Perm(len(out))
		for _, i := range idxs {
			choices := table[out[i]]
			if len(choices) == 0 {
				continue
			}
			repl := strings.Fields(choices[rng.Intn(len(choices))])
			next := append([]string(nil), out[:i]...)
			next = append(next, repl...)
			next = append(next, out[i+1:]...)
			out = next
			break
		}
	}
	return out
}

// reshape converts imperatives into the interrogative and desire forms real
// users type.
func reshape(words []string, rng *rand.Rand) []string {
	joined := strings.Join(words, " ")
	switch {
	case strings.HasPrefix(joined, "get ") || strings.HasPrefix(joined, "show me "):
		rest := words[1:]
		if strings.HasPrefix(joined, "show me ") {
			rest = words[2:]
		}
		switch rng.Intn(4) {
		case 0:
			return append([]string{"what", "are"}, rest...)
		case 1:
			return append([]string{"i", "wanna", "see"}, rest...)
		case 2:
			return append([]string{"do", "i", "have"}, rest...)
		default:
			return append([]string{"pull", "up"}, rest...)
		}
	case strings.HasPrefix(joined, "notify me when "):
		rest := words[3:]
		switch rng.Intn(3) {
		case 0:
			return append([]string{"keep", "an", "eye", "on", "things", "and", "tell", "me", "when"}, rest...)
		case 1:
			return append([]string{"i", "need", "to", "know", "when"}, rest...)
		default:
			return append([]string{"heads", "up", "when"}, rest...)
		}
	}
	return words
}

func dropSmallWords(words []string, rng *rand.Rand) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if (w == "the" || w == "a" || w == "," || w == "my") && rng.Intn(2) == 0 {
			continue
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return words
	}
	return out
}

// devTable is the developers' lexicon: small, canonical-ish edits.
var devTable = map[string][]string{
	"get":     {"retrieve", "get me"},
	"show":    {"show"},
	"when":    {"once", "when"},
	"notify":  {"notify"},
	"every":   {"every"},
	"picture": {"picture"},
	"tweet":   {"tweet"},
	"changes": {"changes"},
	"and":     {"and"},
}

// userTable is the cheatsheet users' lexicon — deliberately disjoint from
// the paraphrase-worker table where possible, so the cheatsheet set measures
// generalization beyond the training distribution.
var userTable = map[string][]string{
	"get":         {"lemme see", "bring up", "i need", "gimme"},
	"show":        {"open up", "bring up"},
	"list":        {"what are all", "run through"},
	"tell":        {"keep", "fill"},
	"notify":      {"buzz", "hit up", "give a shout to"},
	"when":        {"right when", "immediately after", "any time"},
	"changes":     {"moves", "shifts", "looks different"},
	"send":        {"forward", "pass along"},
	"post":        {"throw up", "drop"},
	"picture":     {"shot", "picture"},
	"pictures":    {"shots"},
	"tweet":       {"say on twitter"},
	"tweets":      {"stuff on twitter"},
	"email":       {"electronic mail", "gmail"},
	"emails":      {"my mail"},
	"message":     {"dm", "ping"},
	"messages":    {"pings", "dms"},
	"file":        {"thing", "item"},
	"files":       {"stuff", "things"},
	"folder":      {"folder"},
	"song":        {"number", "record"},
	"songs":       {"records", "bangers"},
	"play":        {"blast", "spin", "crank up"},
	"music":       {"some music"},
	"weather":     {"conditions outside", "sky situation"},
	"temperature": {"how hot it is", "degrees"},
	"articles":    {"write ups", "coverage"},
	"video":       {"footage"},
	"videos":      {"footage"},
	"new":         {"brand new", "incoming"},
	"latest":      {"freshest", "last"},
	"every":       {"once per", "all"},
	"find":        {"hunt down", "track down"},
	"make":        {"whip up", "spin up"},
	"turn":        {"crank", "toggle"},
	"add":         {"toss", "drop"},
	"remind":      {"bug", "poke"},
	"lights":      {"lighting", "the lights"},
	"delete":      {"wipe", "nuke"},
	"start":       {"get going with"},
	"stop":        {"cut"},
	"check":       {"see about"},
	"house":       {"crib", "apartment"},
	"door":        {"front door"},
	"upload":      {"throw"},
	"posts":       {"activity"},
	"channel":     {"feed"},
	"greater":     {"over"},
	"less":        {"under"},
	"bigger":      {"heavier"},
	"morning":     {"early am"},
}
