package evaldata

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/thingtalk"
)

func seeds(n int) []dataset.Example {
	prog, _ := thingtalk.ParseProgram(`now => @a.b.q => notify`)
	var out []dataset.Example
	for i := 0; i < n; i++ {
		out = append(out, dataset.Example{
			Words:   strings.Fields("get my new pictures of __slot_1"),
			Program: prog.Clone(),
		})
	}
	return out
}

func TestBuildPreservesSlotsAndPrograms(t *testing.T) {
	for _, kind := range []Kind{Developer, Cheatsheet} {
		out := Build(kind, seeds(100), 1)
		if len(out) != 100 {
			t.Fatal("lost examples")
		}
		for i := range out {
			if strings.Count(out[i].Sentence(), "__slot_1") != 1 {
				t.Fatalf("slot lost: %s", out[i].Sentence())
			}
			if out[i].Group != dataset.GroupEval {
				t.Error("group not set")
			}
		}
	}
}

func TestCheatsheetShiftsDistribution(t *testing.T) {
	src := seeds(200)
	dev := Build(Developer, src, 2)
	user := Build(Cheatsheet, src, 2)
	devChanged, userChanged := 0, 0
	for i := range src {
		if dev[i].Sentence() != src[i].Sentence() {
			devChanged++
		}
		if user[i].Sentence() != src[i].Sentence() {
			userChanged++
		}
	}
	if userChanged <= devChanged {
		t.Errorf("cheatsheet rewrites (%d) should shift more than developer rewrites (%d)", userChanged, devChanged)
	}
	// The user lexicon must introduce words the templates never produce.
	vocab := dataset.Vocab(user)
	if !vocab["lemme"] && !vocab["gimme"] && !vocab["wanna"] && !vocab["crank"] && !vocab["freshest"] && !vocab["incoming"] {
		t.Error("no held-out user vocabulary found in cheatsheet data")
	}
}
