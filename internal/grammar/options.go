package grammar

import (
	"sort"
	"strconv"

	"repro/internal/thingtalk"
)

// LegalSet is the per-decode-state mask. IDs lists legal vocabulary ids in
// ascending order; EOS marks end-of-sequence legality; AllTokens marks a
// quoted-string interior where every token (and every out-of-vocabulary copy)
// is a word; NumberOK marks positions where an out-of-vocabulary numeral is a
// valid numeric constant. The struct is reusable across calls without
// allocation.
type LegalSet struct {
	IDs       []int32
	EOS       bool
	AllTokens bool
	NumberOK  bool

	mark    []uint32
	gen     uint32
	scratch State
}

func (ls *LegalSet) reset(vsize int) {
	ls.IDs = ls.IDs[:0]
	ls.EOS, ls.AllTokens, ls.NumberOK = false, false, false
	if len(ls.mark) < vsize {
		ls.mark = make([]uint32, vsize)
		ls.gen = 0
	}
	ls.gen++
}

func (ls *LegalSet) add(id int32) {
	if id < 0 {
		return
	}
	if ls.mark[id] != ls.gen {
		ls.mark[id] = ls.gen
		ls.IDs = append(ls.IDs, id)
	}
}

// Has reports whether vocabulary id is in the mask (EOS and OOV rules are
// separate flags).
func (ls *LegalSet) Has(id int32) bool {
	if ls.AllTokens && id >= 3 {
		return true
	}
	return id >= 0 && int(id) < len(ls.mark) && ls.mark[id] == ls.gen
}

// WordLegal reports whether an out-of-vocabulary copy of word is legal.
func (ls *LegalSet) WordLegal(word string) bool {
	if ls.AllTokens {
		return true
	}
	if ls.NumberOK {
		if _, err := strconv.ParseFloat(word, 64); err == nil {
			return true
		}
	}
	return false
}

// Legal fills ls with the tokens legal from st when at most `remaining` more
// tokens (including the one about to be emitted) may be produced. The walk
// visits the active frame and then every ancestor reachable by finishing the
// constructs below it, so postfix continuations and closings are all visible.
func (a *Automaton) Legal(st *State, remaining int, ls *LegalSet) {
	a.legal(st, remaining, ls, nil)
}

// legal is Legal with optional budget-comparison tracking: when track is
// non-nil it records the largest afterTotal any budget check considered, so
// a caller can tell whether the budget constrained the result at all. Every
// comparison against R-1 funnels through addOptions' ok closure; a walk whose
// tracked maximum is <= remaining-1 passed every check, which means the same
// walk at any looser budget R' (R'-1 >= max) takes identical branches — the
// AllTokens early-break and every addIf admit the same tokens — so the result
// is reusable across that whole budget band.
func (a *Automaton) legal(st *State, remaining int, ls *LegalSet, track *int) {
	ls.reset(len(a.vocab))
	w := &ls.scratch
	w.frames = append(w.frames[:0], st.frames...)
	w.lastFn = st.lastFn
	for {
		if len(w.frames) == 0 {
			ls.EOS = true
			break
		}
		base := a.minTotal(w)
		a.addOptions(w, base, remaining, ls, track)
		if ls.AllTokens {
			break // string interior: the frame cannot finish without its quote
		}
		if !a.advance(w) {
			break
		}
	}
	sort.Slice(ls.IDs, func(i, j int) bool { return ls.IDs[i] < ls.IDs[j] })
}

// visitEnv calls fn for every visible (unshadowed) entry, right-most first.
func visitEnv(env []EnvEntry, fn func(name, typ int32)) {
outer:
	for i := len(env) - 1; i >= 0; i-- {
		for j := i + 1; j < len(env); j++ {
			if env[j].name == env[i].name {
				continue outer
			}
		}
		fn(env[i].name, env[i].typ)
	}
}

// invocable reports whether fn can be invoked to completion given env:
// every required parameter has an annotated token and a producible value.
func (a *Automaton) invocable(fi int32, env []EnvEntry) bool {
	fn := &a.fns[fi]
	if fn.selID < 0 {
		return false
	}
	if fn.reqMask != 0 && a.kwID(tcEq) < 0 {
		return false
	}
	for pi := 0; pi < len(fn.params); pi++ {
		if fn.reqMask&(1<<uint(pi)) == 0 {
			continue
		}
		p := &fn.params[pi]
		if p.annID < 0 {
			return false
		}
		if a.types[p.typ].constMin >= noConst && !a.envAssignable(env, p.typ) {
			return false
		}
	}
	return true
}

// dynCost is the minimum invocation length for fn given env.
func (a *Automaton) dynCost(fi int32, env []EnvEntry) int {
	fn := &a.fns[fi]
	c := 1
	for pi := 0; pi < len(fn.params); pi++ {
		if fn.reqMask&(1<<uint(pi)) == 0 {
			continue
		}
		c += 2 + a.minValDyn(&fn.params[pi], env)
	}
	return c
}

// opValue resolves a filter operator against an atom's type: the value type
// it compares with, whether the value must be a quoted string, and legality.
func (a *Automaton) opValue(opIdx int32, typ int32) (vtyp int32, strOnly, ok bool) {
	ti := &a.types[typ]
	switch thingtalk.Operators[opIdx] {
	case thingtalk.OpEq:
		return typ, false, ti.constMin < noConst
	case thingtalk.OpGt, thingtalk.OpLt, thingtalk.OpGe, thingtalk.OpLe:
		return typ, false, ti.comparable && ti.constMin < noConst
	case thingtalk.OpContains:
		if !ti.isArray || ti.elem < 0 {
			return 0, false, false
		}
		return ti.elem, false, a.types[ti.elem].constMin < noConst
	case thingtalk.OpSubstr, thingtalk.OpStartsWith, thingtalk.OpEndsWith:
		return -1, true, ti.stringLike && a.kwID(tcQuote) >= 0
	}
	return 0, false, false
}

func (a *Automaton) hasAtomOp(typ int32) bool {
	for i := range thingtalk.Operators {
		if a.opIDs[i] < 0 {
			continue
		}
		if _, _, ok := a.opValue(int32(i), typ); ok {
			return true
		}
	}
	return false
}

// minAtomVal is the cheapest op+value completion of an atom on typ.
func (a *Automaton) minAtomVal(typ int32) int {
	best := noConst
	for i := range thingtalk.Operators {
		if a.opIDs[i] < 0 {
			continue
		}
		vtyp, strOnly, ok := a.opValue(int32(i), typ)
		if !ok {
			continue
		}
		c := 1 + 2 // op + quoted string floor
		if !strOnly {
			c = 1 + a.types[vtyp].constMin
		}
		if c < best {
			best = c
		}
	}
	return best
}

func isMagnitude(tok tokDesc) bool {
	if tok.cls == tcNumber {
		return true
	}
	return tok.cls == tcPlaceholder &&
		(tok.payload == phNumber || tok.payload == phDuration || tok.payload == phCurrency)
}

func mkValue(typ int32, flags uint16, env []EnvEntry) frame {
	return frame{kind: frValue, pos: v0, flags: flags, fn: typ, aux: -1, env: env}
}

// consume attempts to let the top frame absorb tok, mutating st and returning
// true on success. On false the state is untouched.
func (a *Automaton) consume(st *State, tok tokDesc) bool {
	f := st.top()
	switch f.kind {
	case frProgram:
		return a.consumeProgram(st, f, tok)
	case frStream:
		return a.consumeStream(st, f, tok)
	case frQuery:
		return a.consumeQuery(st, f, tok)
	case frInv:
		return a.consumeInv(st, f, tok)
	case frPred:
		return a.consumePred(st, f, tok)
	case frValue:
		return a.consumeValue(st, f, tok)
	case frAgg:
		return a.consumeAgg(st, f, tok)
	}
	return false
}

func isQueryStart(a *Automaton, tok tokDesc) bool {
	switch tok.cls {
	case tcLParen, tcAgg:
		return true
	case tcSelector:
		return tok.payload >= 0 && a.fns[tok.payload].kind == thingtalk.KindQuery
	}
	return false
}

func (a *Automaton) consumeProgram(st *State, f *frame, tok tokDesc) bool {
	switch f.pos {
	case pg1:
		if tok.cls == tcArrow {
			f.pos = pg2
			return true
		}
	case pg2:
		switch {
		case tok.cls == tcNotify:
			f.pos = pgDone
			return true
		case tok.cls == tcSelector && tok.payload >= 0 && a.fns[tok.payload].kind == thingtalk.KindAction:
			env := f.env
			f.pos = pgDone
			st.push(frame{kind: frInv, pos: i0, fn: tok.payload, aux: -1, env2: env})
			return true
		case isQueryStart(a, tok):
			env := f.env
			f.pos = pg3
			st.push(frame{kind: frQuery, pos: q0, env2: env})
			return a.consume(st, tok) // the new frame absorbs the same token
		}
	case pg3:
		if tok.cls == tcArrow {
			f.pos = pg4
			return true
		}
	case pg4:
		switch {
		case tok.cls == tcNotify:
			f.pos = pgDone
			return true
		case tok.cls == tcSelector && tok.payload >= 0 && a.fns[tok.payload].kind == thingtalk.KindAction:
			env := extendEnv(f.env, f.env2)
			f.pos = pgDone
			st.push(frame{kind: frInv, pos: i0, fn: tok.payload, aux: -1, env2: env})
			return true
		}
	}
	return false
}

func (a *Automaton) consumeStream(st *State, f *frame, tok tokDesc) bool {
	switch f.pos {
	case s0:
		if f.flags&fEdgeInner != 0 && tok.cls != tcMonitor && tok.cls != tcEdge {
			return false
		}
		switch tok.cls {
		case tcNow:
			f.pos = sDone
			return true
		case tcTimer:
			f.pos = sT1
			return true
		case tcAtTimer:
			f.pos = sA1
			return true
		case tcMonitor:
			f.pos = sM1
			return true
		case tcEdge:
			f.pos = sE1
			return true
		}
	case sT1:
		if tok.cls == tcBase {
			f.pos = sT2
			return true
		}
	case sT2:
		if tok.cls == tcEq {
			f.pos = sT3
			st.push(mkValue(a.tDate, fConstOK, nil))
			return true
		}
	case sT3:
		if tok.cls == tcInterval {
			f.pos = sT4
			return true
		}
	case sT4:
		if tok.cls == tcEq {
			f.pos = sDone
			st.push(mkValue(a.tMs, fConstOK, nil))
			return true
		}
	case sA1:
		if tok.cls == tcTimeKw {
			f.pos = sA2
			return true
		}
	case sA2:
		if tok.cls == tcEq {
			f.pos = sDone
			st.push(mkValue(a.tTime, fConstOK, nil))
			return true
		}
	case sM1:
		if tok.cls == tcLParen {
			f.pos = sM2
			st.push(frame{kind: frQuery, pos: q0, flags: fParen | fMonOnly})
			return true
		}
	case sM2:
		if tok.cls == tcOn {
			f.pos = sM2n
			return true
		}
	case sM2n:
		if tok.cls == tcNew {
			f.pos = sM3
			return true
		}
	case sM3:
		if tok.cls == tcParamBare {
			if _, ok := envLookup(f.env, tok.payload); ok {
				f.aux++
				return true
			}
		}
	case sE1:
		if tok.cls == tcLParen {
			f.pos = sE2
			st.push(frame{kind: frStream, pos: s0, flags: fEdgeInner})
			return true
		}
	case sE2:
		if tok.cls == tcRParen {
			f.pos = sE3
			return true
		}
	case sE3:
		if tok.cls == tcOn {
			f.pos = sDone
			st.push(frame{kind: frPred, pos: pU, env: f.env})
			return true
		}
	}
	return false
}

func (a *Automaton) consumeQuery(st *State, f *frame, tok tokDesc) bool {
	switch f.pos {
	case q0, qJPrm:
		right := f.pos == qJPrm
		env2 := f.env2
		retPos := uint8(qLoop)
		childFlags := f.flags & (fMonOnly | fProvOK)
		if right {
			env2 = f.envR
			retPos = qJR
			childFlags = (f.flags & fMonOnly) | fProvOK
		}
		switch tok.cls {
		case tcLParen:
			f.pos = retPos
			st.push(frame{kind: frQuery, pos: q0, flags: childFlags | fParen, env2: env2})
			return true
		case tcAgg:
			f.pos = retPos
			st.push(frame{kind: frAgg, pos: aOp, flags: childFlags, fn: -1, aux: -1, env2: env2})
			return true
		case tcSelector:
			if tok.payload < 0 {
				return false
			}
			fn := &a.fns[tok.payload]
			if fn.kind != thingtalk.KindQuery {
				return false
			}
			if f.flags&fMonOnly != 0 && !fn.monitor {
				return false
			}
			f.pos = retPos
			st.push(frame{kind: frInv, pos: i0, flags: childFlags & fProvOK, fn: tok.payload, aux: -1, env2: env2})
			return true
		}
	case qLoop:
		switch tok.cls {
		case tcFilter:
			st.push(frame{kind: frPred, pos: pU, env: f.env})
			return true
		case tcJoin:
			if f.pending != 0 {
				return false
			}
			f.envR = extendEnv(f.env2, f.env)
			f.used = 0
			f.pos = qJPrm
			return true
		case tcRParen:
			if f.flags&fParen != 0 {
				fx := popFx{kind: fxQuery, env: f.env, sawList: f.sawList, pending: f.pending, lastFn: -1}
				st.pop()
				applyFx(st, fx)
				return true
			}
		}
	case qJR:
		if tok.cls == tcOn {
			f.pos = qOn1
			f.aux = 0
			return true
		}
	case qOn1:
		if tok.cls == tcParamAnn && st.lastFn >= 0 {
			e := a.annParams[tok.payload]
			fn := &a.fns[st.lastFn]
			for pi := 0; pi < len(fn.params); pi++ {
				p := &fn.params[pi]
				if p.nameIdx != e.name || p.typ != e.typ || p.dir == thingtalk.DirOut {
					continue
				}
				if f.used&(1<<uint(pi)) != 0 {
					continue
				}
				f.fn = int32(pi)
				f.pos = qOn2
				return true
			}
		}
	case qOn2:
		if tok.cls == tcEq {
			f.pos = qOn3
			return true
		}
	case qOn3:
		if tok.cls == tcParamBare && st.lastFn >= 0 {
			t, ok := envLookup(f.envR, tok.payload)
			if !ok {
				return false
			}
			p := &a.fns[st.lastFn].params[f.fn]
			if !a.typeAssignable(t, p.typ) {
				return false
			}
			f.used |= 1 << uint(f.fn)
			f.pending &^= 1 << uint(f.fn)
			f.aux++
			f.pos = qOn1
			return true
		}
	}
	return false
}

func (a *Automaton) consumeInv(st *State, f *frame, tok tokDesc) bool {
	fn := &a.fns[f.fn]
	switch f.pos {
	case i0:
		if tok.cls != tcParamAnn {
			return false
		}
		e := a.annParams[tok.payload]
		for pi := 0; pi < len(fn.params); pi++ {
			p := &fn.params[pi]
			if p.nameIdx != e.name || p.typ != e.typ || p.dir == thingtalk.DirOut {
				continue
			}
			if f.used&(1<<uint(pi)) != 0 {
				continue
			}
			f.used |= 1 << uint(pi)
			f.aux = int32(pi)
			f.pos = i1
			return true
		}
	case i1:
		if tok.cls == tcEq {
			f.pos = i0
			st.push(mkValue(fn.params[f.aux].typ, fConstOK|fVarRefOK, f.env2))
			return true
		}
	}
	return false
}

func (a *Automaton) consumePred(st *State, f *frame, tok tokDesc) bool {
	switch f.pos {
	case pU:
		switch tok.cls {
		case tcTrue, tcFalse:
			f.pos = pA
			return true
		case tcNot:
			return true
		case tcLParen:
			env := f.env
			f.pos = pA
			st.push(frame{kind: frPred, pos: pU, flags: fParen, env: env})
			return true
		case tcParamAnn:
			e := a.annParams[tok.payload]
			t, ok := envLookup(f.env, e.name)
			if !ok || t != e.typ || !a.hasAtomOp(t) {
				return false
			}
			f.fn = t
			f.pos = pOp
			return true
		}
	case pOp:
		if tok.cls == tcOp {
			vtyp, strOnly, ok := a.opValue(tok.payload, f.fn)
			if !ok {
				return false
			}
			flags := uint16(fConstOK)
			if strOnly {
				flags = fStrOnly
			}
			f.pos = pA
			st.push(mkValue(vtyp, flags, nil))
			return true
		}
	case pA:
		switch tok.cls {
		case tcAnd, tcOr:
			f.pos = pU
			return true
		case tcRParen:
			if f.flags&fParen != 0 {
				st.pop()
				return true
			}
		}
	}
	return false
}

func (a *Automaton) consumeValue(st *State, f *frame, tok tokDesc) bool {
	switch f.pos {
	case v0:
		if f.flags&fStrOnly != 0 {
			if tok.cls == tcQuote {
				f.pos = vStr
				return true
			}
			return false
		}
		if f.flags&fVarRefOK != 0 && tok.cls == tcParamBare {
			if t, ok := envLookup(f.env, tok.payload); ok && a.typeAssignable(t, f.fn) {
				f.pos = vDone
				return true
			}
		}
		if f.flags&fConstOK == 0 {
			return false
		}
		ti := &a.types[f.fn]
		switch t := ti.t.(type) {
		case thingtalk.StringType, thingtalk.PathNameType, thingtalk.URLType, thingtalk.EntityType:
			if tok.cls == tcQuote {
				f.pos = vStr
				return true
			}
		case thingtalk.BoolType:
			if tok.cls == tcTrue || tok.cls == tcFalse {
				f.pos = vDone
				return true
			}
		case thingtalk.NumberType:
			if tok.cls == tcNumber || (tok.cls == tcPlaceholder && tok.payload == phNumber) {
				f.pos = vDone
				return true
			}
		case thingtalk.DateType:
			if (tok.cls == tcDateVal && tok.payload == 1) || (tok.cls == tcPlaceholder && tok.payload == phDate) {
				f.pos = vDone
				return true
			}
		case thingtalk.TimeType:
			if (tok.cls == tcTimeVal && tok.payload == 1) || (tok.cls == tcPlaceholder && tok.payload == phTime) {
				f.pos = vDone
				return true
			}
		case thingtalk.LocationType:
			if (tok.cls == tcLocVal && tok.payload == 1) || (tok.cls == tcPlaceholder && tok.payload == phLocation) {
				f.pos = vDone
				return true
			}
		case thingtalk.EnumType:
			if tok.cls == tcEnum && t.HasEnumValue(a.strs[tok.payload]) {
				f.pos = vDone
				return true
			}
		case thingtalk.CurrencyType:
			if tok.cls == tcPlaceholder && tok.payload == phCurrency {
				f.pos = vPH
				f.aux = ti.baseIdx
				return true
			}
			if isMagnitude(tok) && len(a.unitsBy[ti.base]) > 0 {
				f.pos = vUnit
				f.aux = ti.baseIdx
				return true
			}
		case thingtalk.MeasureType:
			if t.Unit == "ms" && tok.cls == tcPlaceholder && tok.payload == phDuration {
				f.pos = vPH
				f.aux = ti.baseIdx
				return true
			}
			if isMagnitude(tok) && len(a.unitsBy[ti.base]) > 0 {
				f.pos = vUnit
				f.aux = ti.baseIdx
				return true
			}
		}
	case vStr:
		if tok.cls == tcQuote {
			f.pos = vDone
		}
		return true
	case vUnit:
		if tok.cls == tcUnit && tok.payload == f.aux {
			f.pos = vMeas
			return true
		}
	case vPH:
		if tok.cls == tcUnit && tok.payload == f.aux {
			f.pos = vMeas
			return true
		}
	case vMeas:
		if tok.cls == tcPlus {
			f.pos = vPlus
			return true
		}
	case vPlus:
		if isMagnitude(tok) {
			f.pos = vUnit
			return true
		}
	}
	return false
}

func (a *Automaton) consumeAgg(st *State, f *frame, tok tokDesc) bool {
	switch f.pos {
	case aOp:
		if tok.cls == tcAggOp {
			f.aux = tok.payload
			if tok.payload == aggOpCount {
				f.pos = aOf
			} else {
				f.pos = aParam
			}
			return true
		}
	case aParam:
		if tok.cls == tcParamBare {
			f.fn = tok.payload
			f.pos = aOf
			return true
		}
	case aOf:
		if tok.cls == tcOf {
			f.pos = aLP
			return true
		}
	case aLP:
		if tok.cls == tcLParen {
			f.pos = aRP
			st.push(frame{kind: frQuery, pos: q0, flags: (f.flags & (fMonOnly | fProvOK)) | fAggInner, env2: f.env2})
			return true
		}
	case aRP:
		if tok.cls == tcRParen && a.aggObligationMet(f) {
			env := a.countEnv
			if f.aux != aggOpCount {
				t, _ := envLookup(f.env, f.fn)
				env = []EnvEntry{{name: f.fn, typ: t}}
			}
			fx := popFx{kind: fxQuery, env: env, sawList: f.sawList, pending: f.pending, lastFn: -1}
			st.pop()
			applyFx(st, fx)
			return true
		}
	}
	return false
}
