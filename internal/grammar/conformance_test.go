package grammar_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/grammar"
	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// corpus builds a realistic instantiated program corpus plus the decoder
// vocabulary a trained model would see (reserved entries + every program
// token), exactly like model.BuildVocab over target sequences.
func corpus(t testing.TB, n int) (*thingpedia.Library, [][]string, []string) {
	t.Helper()
	lib := thingpedia.Builtin()
	g := nltemplate.StandardGrammar(lib, nltemplate.DefaultOptions)
	raw := synthesis.Synthesize(g, synthesis.Config{
		TargetPerRule: 30, MaxDepth: 4, Seed: 7, Schemas: lib,
	})
	sampler := params.NewSampler()
	rng := rand.New(rand.NewSource(11))
	var progs [][]string
	seen := map[string]bool{}
	for i := range raw {
		e := dataset.Example{Words: raw[i].Words, Program: raw[i].Program}
		inst, err := augment.Instantiate(&e, sampler, rng)
		if err != nil {
			continue
		}
		toks := inst.Program.Tokens()
		key := strings.Join(toks, " ")
		if seen[key] {
			continue
		}
		seen[key] = true
		progs = append(progs, toks)
		if n > 0 && len(progs) >= n {
			break
		}
	}
	if len(progs) < 100 {
		t.Fatalf("corpus too small: %d programs", len(progs))
	}
	vocabSet := map[string]bool{}
	for _, p := range progs {
		for _, tok := range p {
			vocabSet[tok] = true
		}
	}
	var toks []string
	for tok := range vocabSet {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	vocab := append([]string{"<unk>", "<s>", "</s>"}, toks...)
	return lib, progs, vocab
}

func compile(t testing.TB, lib *thingpedia.Library, vocab []string) *grammar.Automaton {
	t.Helper()
	spec := grammar.NewSpec(lib.Functions())
	auto, err := grammar.Compile(spec, vocab)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return auto
}

const walkBudget = 48 // mirrors the unit-scale MaxDecodeLen

// TestConformance replays every corpus program through the automaton: each
// token must be in the mask before it is consumed, Step must accept it, and
// EOS must be legal at the end. This pins the automaton to the real grammar:
// any construct the synthesis pipeline can emit must be representable.
func TestConformance(t *testing.T) {
	lib, progs, vocab := corpus(t, 0)
	auto := compile(t, lib, vocab)
	index := map[string]int{}
	for i, tok := range vocab {
		if _, ok := index[tok]; !ok {
			index[tok] = i
		}
	}

	var ls grammar.LegalSet
	for _, toks := range progs {
		budget := walkBudget
		if len(toks)+1 > budget {
			budget = len(toks) + 1
		}
		st := auto.Start()
		for i, tok := range toks {
			id, inVocab := index[tok]
			if !inVocab {
				id = -1
			}
			auto.Legal(st, budget, &ls)
			legal := false
			if inVocab {
				legal = ls.Has(int32(id))
			}
			if !legal {
				legal = ls.WordLegal(tok)
			}
			if !legal {
				t.Fatalf("token %d %q not in mask\nprogram: %s", i, tok, strings.Join(toks, " "))
			}
			next, err := auto.Step(st, id, tok)
			if err != nil {
				t.Fatalf("Step(%q): %v\nprogram: %s", tok, err, strings.Join(toks, " "))
			}
			st = next
			budget--
		}
		if !auto.Accepting(st) {
			t.Fatalf("EOS not accepting after full program: %s", strings.Join(toks, " "))
		}
		auto.Legal(st, budget, &ls)
		if !ls.EOS {
			t.Fatalf("EOS not in final mask: %s", strings.Join(toks, " "))
		}
	}
}

// TestRandomWalks drives the automaton from the mask side: random choices
// among the legal tokens must always terminate within the budget and yield a
// program that parses and typechecks. This is the soundness direction — the
// mask never admits a prefix that cannot become a valid program.
func TestRandomWalks(t *testing.T) {
	lib, _, vocab := corpus(t, 400)
	auto := compile(t, lib, vocab)
	schemas := lib.Schemas()
	quoteWords := []string{"alpha", "beta", "gamma"}

	rng := rand.New(rand.NewSource(23))
	var ls grammar.LegalSet
	for walk := 0; walk < 1000; walk++ {
		st := auto.Start()
		var toks []string
		for rem := walkBudget; ; rem-- { // emissions left, EOS slot included
			auto.Legal(st, rem-1, &ls)
			// Bias toward EOS so walks stay short but still explore.
			if ls.EOS && (len(ls.IDs) == 0 || rng.Intn(3) == 0) {
				break
			}
			if rem <= 1 {
				t.Fatalf("walk %d exhausted budget without EOS: %s", walk, strings.Join(toks, " "))
			}
			var tok string
			var id int
			switch {
			case ls.AllTokens && rng.Intn(3) != 0:
				// Inside a quoted string: any word, out-of-vocabulary included.
				tok, id = quoteWords[rng.Intn(len(quoteWords))], -1
			case len(ls.IDs) > 0:
				id = int(ls.IDs[rng.Intn(len(ls.IDs))])
				tok = vocab[id]
			default:
				t.Fatalf("walk %d: dead end (no legal tokens, EOS illegal) after: %s",
					walk, strings.Join(toks, " "))
			}
			next, err := auto.Step(st, id, tok)
			if err != nil {
				t.Fatalf("walk %d: Step(%q) rejected a masked token: %v\nprefix: %s",
					walk, tok, err, strings.Join(toks, " "))
			}
			st = next
			toks = append(toks, tok)
		}
		prog, err := thingtalk.ParseTokens(toks, thingtalk.ParseOptions{})
		if err != nil {
			t.Fatalf("walk %d: masked output does not parse: %v\n%s", walk, err, strings.Join(toks, " "))
		}
		if err := thingtalk.Typecheck(prog, schemas); err != nil {
			t.Fatalf("walk %d: masked output does not typecheck: %v\n%s", walk, err, strings.Join(toks, " "))
		}
	}
}

// TestSpecRoundTrip locks the serializable spec layer: marshal → unmarshal
// preserves the checksum and rebuilds identical schemas.
func TestSpecRoundTrip(t *testing.T) {
	lib := thingpedia.Builtin()
	spec := grammar.NewSpec(lib.Functions())
	data, err := spec.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := grammar.UnmarshalSpec(data)
	if err != nil {
		t.Fatalf("UnmarshalSpec: %v", err)
	}
	if spec.Checksum() != back.Checksum() {
		t.Fatalf("checksum changed across round-trip")
	}
	if spec.Checksum() == "" {
		t.Fatalf("empty checksum")
	}
	if _, err := back.Schemas(); err != nil {
		t.Fatalf("Schemas: %v", err)
	}
}
