package grammar

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
)

// These tests live in-package so they can pin the clock arena to a tiny
// limit and inspect slot/map consistency — the external parity test
// (memo_test.go) never fills the default 8192 slots.

func satEntry(n int) (exactKey, memoEntry) {
	return exactKey{state: fmt.Sprintf("s%d", n), r: satBudget}, memoEntry{ids: []int32{int32(n)}, maxAfter: trackFloor}
}

// TestClockSecondChanceMechanics drives insert/evict by hand: referenced
// slots survive one sweep (their bit is cleared, not their entry), and the
// first unreferenced slot clockwise of the hand is the victim.
func TestClockSecondChanceMechanics(t *testing.T) {
	c := &LegalCache{limit: 3}
	c.invalidate(nil)
	for i := 0; i < 3; i++ {
		k, e := satEntry(i)
		c.insert(k, e)
	}
	if len(c.slots) != 3 || c.evictions != 0 {
		t.Fatalf("after fill: %d slots, %d evictions", len(c.slots), c.evictions)
	}

	// All three slots are referenced (insert sets the bit): the next insert
	// sweeps a full revolution clearing bits, then evicts slot 0.
	k3, e3 := satEntry(3)
	c.insert(k3, e3)
	if c.evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.evictions)
	}
	if _, ok := c.sat["s0"]; ok {
		t.Fatal("s0 should have been the clock victim")
	}
	for _, want := range []string{"s1", "s2", "s3"} {
		if _, ok := c.sat[want]; !ok {
			t.Fatalf("%s missing after eviction", want)
		}
	}

	// A hit on s1 re-arms its reference bit, so the next insert skips it and
	// evicts s2 — second chance in action.
	c.slots[c.sat["s1"]].ref = true
	k4, e4 := satEntry(4)
	c.insert(k4, e4)
	if _, ok := c.sat["s1"]; !ok {
		t.Fatal("referenced s1 must survive the sweep")
	}
	if _, ok := c.sat["s2"]; ok {
		t.Fatal("unreferenced s2 should have been evicted")
	}
	if c.evictions != 2 {
		t.Fatalf("evictions = %d, want 2", c.evictions)
	}
	if len(c.slots) != 3 || len(c.sat)+len(c.exact) != 3 {
		t.Fatalf("arena inconsistent: %d slots, %d sat, %d exact", len(c.slots), len(c.sat), len(c.exact))
	}
}

// TestClockSatReinsertReusesSlot: re-memoizing a fingerprint that already
// holds a sat slot (a tighter budget widened maxAfter) must overwrite in
// place — a stale twin slot would later evict the live map entry.
func TestClockSatReinsertReusesSlot(t *testing.T) {
	c := &LegalCache{limit: 4}
	c.invalidate(nil)
	k, e := satEntry(0)
	c.insert(k, e)
	e.maxAfter = 17
	c.insert(k, e)
	if len(c.slots) != 1 {
		t.Fatalf("re-insert grew the arena to %d slots, want 1 reused", len(c.slots))
	}
	if got := c.slots[c.sat["s0"]].e.maxAfter; got != 17 {
		t.Fatalf("maxAfter = %d, want the widened 17", got)
	}
}

func clockCorpus(t *testing.T) (*Automaton, [][]string, map[string]int) {
	t.Helper()
	lib := thingpedia.Builtin()
	g := nltemplate.StandardGrammar(lib, nltemplate.DefaultOptions)
	raw := synthesis.Synthesize(g, synthesis.Config{TargetPerRule: 10, MaxDepth: 4, Seed: 7, Schemas: lib})
	sampler := params.NewSampler()
	rng := rand.New(rand.NewSource(11))
	var progs [][]string
	seen := map[string]bool{}
	for i := range raw {
		e := dataset.Example{Words: raw[i].Words, Program: raw[i].Program}
		inst, err := augment.Instantiate(&e, sampler, rng)
		if err != nil {
			continue
		}
		toks := inst.Program.Tokens()
		key := strings.Join(toks, " ")
		if !seen[key] {
			seen[key] = true
			progs = append(progs, toks)
		}
		if len(progs) >= 60 {
			break
		}
	}
	if len(progs) < 30 {
		t.Fatalf("corpus too small: %d programs", len(progs))
	}
	vocabSet := map[string]bool{}
	for _, p := range progs {
		for _, tok := range p {
			vocabSet[tok] = true
		}
	}
	var toks []string
	for tok := range vocabSet {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	vocab := append([]string{"<unk>", "<s>", "</s>"}, toks...)
	auto, err := Compile(NewSpec(lib.Functions()), vocab)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	index := map[string]int{}
	for i, tok := range vocab {
		if _, ok := index[tok]; !ok {
			index[tok] = i
		}
	}
	return auto, progs, index
}

// TestClockEvictionParityUnderPressure replays a corpus through a cache
// whose arena is far smaller than the state population: the clock must evict
// constantly, and every answer — fresh, hit, or recomputed after eviction —
// must match the unmemoized walker exactly.
func TestClockEvictionParityUnderPressure(t *testing.T) {
	auto, progs, index := clockCorpus(t)
	cache := &LegalCache{limit: 16}
	var want, got LegalSet
	const budget = 48

	queries := 0
	for pass := 0; pass < 2; pass++ { // second pass re-queries evicted states
		for _, toks := range progs {
			st := auto.Start()
			rem := budget
			for _, tok := range toks {
				auto.Legal(st, rem, &want)
				auto.LegalCached(st, rem, &got, cache)
				queries++
				if got.EOS != want.EOS || got.AllTokens != want.AllTokens || got.NumberOK != want.NumberOK ||
					len(got.IDs) != len(want.IDs) {
					t.Fatalf("mask mismatch under eviction pressure at %q (pass %d)", tok, pass)
				}
				for i := range want.IDs {
					if want.IDs[i] != got.IDs[i] {
						t.Fatalf("mask ids diverge at %q (pass %d)", tok, pass)
					}
				}
				id, inVocab := index[tok]
				if !inVocab {
					id = -1
				}
				next, err := auto.Step(st, id, tok)
				if err != nil {
					t.Fatalf("Step(%q): %v", tok, err)
				}
				st = next
				rem--
			}
		}
	}

	hits, misses, evictions := cache.Stats()
	if evictions == 0 {
		t.Fatal("a 16-slot arena over this corpus must evict")
	}
	if hits == 0 {
		t.Fatal("cache never hit under eviction pressure")
	}
	if hits+misses != uint64(queries) {
		t.Fatalf("hits+misses = %d, want %d queries", hits+misses, queries)
	}
	if len(cache.slots) > 16 {
		t.Fatalf("arena grew past its limit: %d slots", len(cache.slots))
	}
	if len(cache.sat)+len(cache.exact) != len(cache.slots) {
		t.Fatalf("index out of sync: %d sat + %d exact != %d slots",
			len(cache.sat), len(cache.exact), len(cache.slots))
	}
	t.Logf("pressure: %d hits, %d misses, %d evictions over %d queries", hits, misses, evictions, queries)
}
