package grammar_test

import (
	"strings"
	"testing"

	"repro/internal/grammar"
)

func masksEqual(a, b *grammar.LegalSet) bool {
	if a.EOS != b.EOS || a.AllTokens != b.AllTokens || a.NumberOK != b.NumberOK {
		return false
	}
	if len(a.IDs) != len(b.IDs) {
		return false
	}
	for i := range a.IDs {
		if a.IDs[i] != b.IDs[i] {
			return false
		}
	}
	return true
}

func describeMask(ls *grammar.LegalSet) string {
	var sb strings.Builder
	for _, id := range ls.IDs {
		sb.WriteString(" ")
		sb.WriteString(string(rune('0' + id%10)))
	}
	return sb.String()
}

// TestLegalCacheParity replays corpus programs and, at every decode state,
// compares the memoized mask against the unmemoized walker across a sweep of
// budgets — looser and tighter than the one that populated the cache, in both
// orders, so saturated-band reuse and exact-budget entries are both exercised
// against ground truth. One shared cache serves the whole replay, matching
// how a pooled decode context accumulates states across requests.
func TestLegalCacheParity(t *testing.T) {
	lib, progs, vocab := corpus(t, 300)
	auto := compile(t, lib, vocab)
	index := map[string]int{}
	for i, tok := range vocab {
		if _, ok := index[tok]; !ok {
			index[tok] = i
		}
	}

	var want, got grammar.LegalSet
	var cache grammar.LegalCache
	// Descending then ascending: a loose-budget (often saturated) entry is
	// queried again at tighter budgets where it must NOT be reused, and a
	// tight-budget entry at looser ones.
	budgets := []int{walkBudget + 16, walkBudget, 9, 3, 1, 5, walkBudget + 7}
	check := func(st *grammar.State, where string, program []string) {
		for _, r := range budgets {
			auto.Legal(st, r, &want)
			auto.LegalCached(st, r, &got, &cache)
			if !masksEqual(&want, &got) {
				t.Fatalf("mask mismatch at %s, budget %d\nwant: eos=%v all=%v num=%v ids=%s\ngot:  eos=%v all=%v num=%v ids=%s\nprogram: %s",
					where, r,
					want.EOS, want.AllTokens, want.NumberOK, describeMask(&want),
					got.EOS, got.AllTokens, got.NumberOK, describeMask(&got),
					strings.Join(program, " "))
			}
			// Immediate re-query: must hit and still agree.
			auto.LegalCached(st, r, &got, &cache)
			if !masksEqual(&want, &got) {
				t.Fatalf("mask mismatch on re-query at %s, budget %d", where, r)
			}
		}
	}

	for _, toks := range progs {
		st := auto.Start()
		for i, tok := range toks {
			check(st, "token "+tok, toks)
			id, inVocab := index[tok]
			if !inVocab {
				id = -1
			}
			next, err := auto.Step(st, id, tok)
			if err != nil {
				t.Fatalf("Step(%q) at %d: %v\nprogram: %s", tok, i, err, strings.Join(toks, " "))
			}
			st = next
		}
		check(st, "end of program", toks)
	}

	hits, misses, _ := cache.Stats()
	if hits == 0 {
		t.Fatal("cache never hit: memoization is not engaging")
	}
	t.Logf("cache: %d hits, %d misses (%.1f%% hit rate)",
		hits, misses, 100*float64(hits)/float64(hits+misses))
}

// collectStates replays n corpus programs and returns every intermediate
// decode state, the shared automaton, and a budget schedule mirroring the
// decode loop's shrinking remaining-length.
func collectStates(b *testing.B, n int) (*grammar.Automaton, []*grammar.State, []int) {
	lib, progs, vocab := corpus(b, n)
	auto := compile(b, lib, vocab)
	index := map[string]int{}
	for i, tok := range vocab {
		if _, ok := index[tok]; !ok {
			index[tok] = i
		}
	}
	var states []*grammar.State
	var budgets []int
	for _, toks := range progs {
		budget := walkBudget
		if len(toks)+1 > budget {
			budget = len(toks) + 1
		}
		st := auto.Start()
		for _, tok := range toks {
			states = append(states, st)
			budgets = append(budgets, budget)
			id, inVocab := index[tok]
			if !inVocab {
				id = -1
			}
			next, err := auto.Step(st, id, tok)
			if err != nil {
				b.Fatalf("Step(%q): %v", tok, err)
			}
			st = next
			budget--
		}
	}
	return auto, states, budgets
}

// BenchmarkLegalWalk / BenchmarkLegalMemo isolate what the per-context memo
// buys on the mask walk itself (the decode benchmarks measure it diluted by
// the neural forward pass): the same corpus-derived state stream, unmemoized
// versus through one warm LegalCache.
func BenchmarkLegalWalk(b *testing.B) {
	auto, states, budgets := collectStates(b, 200)
	var ls grammar.LegalSet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auto.Legal(states[i%len(states)], budgets[i%len(states)], &ls)
	}
}

func BenchmarkLegalMemo(b *testing.B) {
	auto, states, budgets := collectStates(b, 200)
	var ls grammar.LegalSet
	var cache grammar.LegalCache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		auto.LegalCached(states[i%len(states)], budgets[i%len(states)], &ls, &cache)
	}
}

// TestLegalCacheAutomatonSwitch pins the invalidation path: a cache warmed on
// one automaton must produce that *other* automaton's masks when a query
// arrives for it — pooled decode contexts outlive any one parser.
func TestLegalCacheAutomatonSwitch(t *testing.T) {
	lib, progs, vocab := corpus(t, 120)
	autoA := compile(t, lib, vocab)
	autoB := compile(t, lib, vocab[:len(vocab)-1]) // distinct vocab => distinct masks

	var want, got grammar.LegalSet
	var cache grammar.LegalCache
	for _, auto := range []*grammar.Automaton{autoA, autoB, autoA} {
		for _, toks := range progs[:10] {
			_ = toks
			st := auto.Start()
			auto.Legal(st, walkBudget, &want)
			auto.LegalCached(st, walkBudget, &got, &cache)
			if !masksEqual(&want, &got) {
				t.Fatalf("mask mismatch after automaton switch")
			}
		}
	}
}
