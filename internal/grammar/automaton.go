package grammar

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/thingtalk"
)

// tokClass partitions the decoder vocabulary by grammatical role. Every
// vocabulary token is classified exactly once at compile time; decode-time
// legality checks are table lookups keyed by class and payload.
type tokClass uint8

const (
	tcOther tokClass = iota // legal only as a word inside a quoted string
	tcArrow
	tcNow
	tcTimer
	tcAtTimer
	tcMonitor
	tcEdge
	tcNotify
	tcFilter
	tcJoin
	tcOn
	tcNew
	tcAgg
	tcAggOp // payload: aggregate op index (aggOps order)
	tcOf
	tcBase
	tcInterval
	tcTimeKw // the "timer"-clause keyword "time" (distinct from time: values)
	tcEq     // "="
	tcLParen
	tcRParen
	tcQuote
	tcTrue
	tcFalse
	tcAnd
	tcOr
	tcNot
	tcOp   // filter operator; payload: index into thingtalk.Operators
	tcPlus // measure term continuation
	tcSelector
	tcParamAnn  // param:name:Type; payload: index into annParams
	tcParamBare // param:name; payload: interned name index
	tcEnum      // payload: interned member-name index
	tcDateVal   // payload: 1 when the edge name is recognized
	tcTimeVal
	tcLocVal
	tcUnit   // payload: interned base-unit index, -1 for unknown units
	tcNumber // numeric literal
	tcPlaceholder
)

// Placeholder payload kinds (index into phKinds).
var phKinds = []string{"NUMBER", "DATE", "TIME", "LOCATION", "CURRENCY", "DURATION"}

const (
	phNumber = iota
	phDate
	phTime
	phLocation
	phCurrency
	phDuration
)

// aggOps mirrors thingtalk.AggregateOps with count first so the payload
// distinguishes the parameterless form by index 0.
var aggOps = []string{"count", "sum", "avg", "min", "max"}

var keywordClass = map[string]tokClass{
	"=>": tcArrow, "now": tcNow, "timer": tcTimer, "attimer": tcAtTimer,
	"monitor": tcMonitor, "edge": tcEdge, "notify": tcNotify,
	"filter": tcFilter, "join": tcJoin, "on": tcOn, "new": tcNew,
	"agg": tcAgg, "of": tcOf, "base": tcBase, "interval": tcInterval,
	"time": tcTimeKw, "=": tcEq, "(": tcLParen, ")": tcRParen,
	`"`: tcQuote, "true": tcTrue, "false": tcFalse,
	"and": tcAnd, "or": tcOr, "not": tcNot, "+": tcPlus,
}

// EnvEntry is one visible output parameter: interned name and type indexes.
// Environments are append-ordered; later entries shadow earlier ones (the
// typechecker's right-most-wins rule).
type EnvEntry struct{ name, typ int32 }

// typeInfo is one interned parameter type with everything masking needs.
type typeInfo struct {
	t          thingtalk.Type
	str        string
	numeric    bool
	comparable bool
	stringLike bool
	isArray    bool
	elem       int32  // array element type index, -1 otherwise
	base       string // measure base unit; "usd" for Currency; "" otherwise
	baseIdx    int32  // interned base string, -1 when base == ""
	constStart []int32
	constMin   int // min tokens of a complete constant; noConst when none
}

const noConst = 1 << 20

// cParam is one compiled function parameter.
type cParam struct {
	name    string
	nameIdx int32
	typ     int32
	dir     thingtalk.ParamDir
	annID   int32 // vocab id of param:name:Type, -1 when absent
}

// cFn is one compiled function.
type cFn struct {
	sel     string
	selID   int32 // vocab id of the selector token, -1 when absent
	kind    thingtalk.FunctionKind
	monitor bool
	list    bool
	params  []cParam
	reqMask uint64 // bit i set when params[i] is a required input
	inMask  uint64 // bit i set when params[i] is an input
	outEnv  []EnvEntry
	// minCostConst is the env-independent invocation floor: selector plus
	// every required parameter spelled with constants. noConst when some
	// required parameter has no constant form in this vocabulary.
	minCostConst int
}

type aggCand struct {
	minFn int // cheapest satisfying invocation (minCostConst), noConst if none
}

// Automaton is a Spec compiled against one decoder vocabulary.
type Automaton struct {
	spec  *Spec
	vocab []string
	index map[string]int32

	cls     []tokClass
	payload []int32

	strs    []string
	strIdx  map[string]int32
	types   []typeInfo
	typeIdx map[string]int32

	fns        []cFn
	annParams  []EnvEntry         // tcParamAnn payload -> (name, type)
	annByNT    map[int64]int32    // name<<32|type -> vocab id
	bareByName map[int32]int32    // name -> vocab id of param:name
	unitsBy    map[string][]int32 // base unit -> vocab ids of unit: tokens

	kw       map[tokClass]int32 // singleton keyword classes -> vocab id
	aggOpIDs [5]int32
	opIDs    []int32 // per thingtalk.Operators index, -1 when absent

	numberIDs []int32
	phIDs     [6][]int32
	dateIDs   []int32
	timeIDs   []int32
	locIDs    []int32

	// Aggregate viability: countCand covers "agg count"; numCands maps a
	// parameter name to the cheapest List function producing it numerically.
	countCand aggCand
	numCands  map[int32]aggCand

	// Builtin type indexes (timer base, attimer time, timer interval) and the
	// synthetic "agg count" output environment.
	tDate, tTime, tMs int32
	countEnv          []EnvEntry

	// Static token floors for budget accounting.
	minQuery     int // cheapest query invocation (env-independent)
	minMonQuery  int // cheapest monitorable query invocation
	minAction    int // notify, or cheapest action invocation
	minStream    int
	minPred      int
	minAgg       int // cheapest complete aggregate primary, noConst if none
	constMinDate int
	constMinTime int
	constMinMs   int
}

func (a *Automaton) intern(s string) int32 {
	if i, ok := a.strIdx[s]; ok {
		return i
	}
	i := int32(len(a.strs))
	a.strs = append(a.strs, s)
	a.strIdx[s] = i
	return i
}

func (a *Automaton) internType(t thingtalk.Type) int32 {
	key := t.String()
	if i, ok := a.typeIdx[key]; ok {
		return i
	}
	ti := typeInfo{t: t, str: key, elem: -1, baseIdx: -1, constMin: noConst}
	switch tt := t.(type) {
	case thingtalk.NumberType:
		ti.numeric = true
	case thingtalk.CurrencyType:
		ti.numeric = true
		ti.base = "usd"
	case thingtalk.MeasureType:
		ti.numeric = true
		ti.base = tt.Unit
	case thingtalk.ArrayType:
		ti.isArray = true
	}
	ti.comparable = thingtalk.IsComparable(t)
	ti.stringLike = thingtalk.IsStringLike(t)
	if ti.base != "" {
		ti.baseIdx = a.intern(ti.base)
	}
	i := int32(len(a.types))
	a.types = append(a.types, ti)
	a.typeIdx[key] = i
	if at, ok := t.(thingtalk.ArrayType); ok {
		elem := a.internType(at.Elem) // may append; fix up after
		a.types[i].elem = elem
	}
	return i
}

// lookupID returns the vocabulary id of tok, or -1.
func (a *Automaton) lookupID(tok string) int32 {
	if id, ok := a.index[tok]; ok {
		return id
	}
	return -1
}

func classifyPlaceholder(tok string) (int32, bool) {
	if _, ok := thingtalk.PlaceholderKind(tok); !ok {
		return 0, false
	}
	for k, prefix := range phKinds {
		if strings.HasPrefix(tok, prefix+"_") {
			return int32(k), true
		}
	}
	return 0, false
}

func (a *Automaton) classify(tok string) (tokClass, int32) {
	if c, ok := keywordClass[tok]; ok {
		return c, 0
	}
	for i, op := range aggOps {
		if tok == op {
			return tcAggOp, int32(i)
		}
	}
	for i, op := range thingtalk.Operators {
		if tok == op {
			return tcOp, int32(i)
		}
	}
	switch {
	case strings.HasPrefix(tok, "@"):
		for i := range a.fns {
			if a.fns[i].sel == tok {
				return tcSelector, int32(i)
			}
		}
		return tcSelector, -1
	case strings.HasPrefix(tok, "param:"):
		name, typ, err := thingtalk.ParseParamToken(tok)
		if err != nil {
			return tcOther, 0
		}
		if typ == nil {
			return tcParamBare, a.intern(name)
		}
		a.annParams = append(a.annParams, EnvEntry{name: a.intern(name), typ: a.internType(typ)})
		return tcParamAnn, int32(len(a.annParams) - 1)
	case strings.HasPrefix(tok, "enum:"):
		return tcEnum, a.intern(tok[len("enum:"):])
	case strings.HasPrefix(tok, "date:"):
		if thingtalk.IsNamedDate(tok[len("date:"):]) {
			return tcDateVal, 1
		}
		return tcDateVal, 0
	case strings.HasPrefix(tok, "time:"):
		if thingtalk.IsNamedTime(tok[len("time:"):]) {
			return tcTimeVal, 1
		}
		return tcTimeVal, 0
	case strings.HasPrefix(tok, "location:"):
		if thingtalk.IsNamedLocation(tok[len("location:"):]) {
			return tcLocVal, 1
		}
		return tcLocVal, 0
	case strings.HasPrefix(tok, "unit:"):
		if base, ok := thingtalk.UnitDimension(tok[len("unit:"):]); ok {
			return tcUnit, a.intern(base)
		}
		return tcUnit, -1
	}
	if k, ok := classifyPlaceholder(tok); ok {
		return tcPlaceholder, k
	}
	if _, err := strconv.ParseFloat(tok, 64); err == nil {
		return tcNumber, 0
	}
	return tcOther, 0
}

// Compile builds the automaton for spec over a concrete decoder vocabulary
// (the exact token list of the model's target Vocab, reserved entries
// included). It fails if the vocabulary cannot express any complete program.
func Compile(spec *Spec, vocab []string) (*Automaton, error) {
	a := &Automaton{
		spec:       spec,
		vocab:      vocab,
		index:      make(map[string]int32, len(vocab)),
		strIdx:     map[string]int32{},
		typeIdx:    map[string]int32{},
		annByNT:    map[int64]int32{},
		bareByName: map[int32]int32{},
		unitsBy:    map[string][]int32{},
		kw:         map[tokClass]int32{},
		numCands:   map[int32]aggCand{},
	}
	for i, tok := range vocab {
		if _, ok := a.index[tok]; !ok {
			a.index[tok] = int32(i)
		}
	}

	// Compile functions first so selector classification can resolve them.
	for i := range spec.Functions {
		sf := &spec.Functions[i]
		if len(sf.Params) > 64 {
			continue // bitmask bookkeeping bound; no realistic schema exceeds it
		}
		f := cFn{
			sel:     sf.selector(),
			kind:    thingtalk.FunctionKind(sf.Kind),
			monitor: sf.Monitor,
			list:    sf.List,
		}
		f.selID = a.lookupID(f.sel)
		for pi, sp := range sf.Params {
			t, err := thingtalk.ParseType(sp.Type)
			if err != nil {
				return nil, fmt.Errorf("grammar: %s param %s: %w", f.sel, sp.Name, err)
			}
			cp := cParam{
				name:    sp.Name,
				nameIdx: a.intern(sp.Name),
				typ:     a.internType(t),
				dir:     thingtalk.ParamDir(sp.Dir),
				annID:   a.lookupID("param:" + sp.Name + ":" + sp.Type),
			}
			f.params = append(f.params, cp)
			switch cp.dir {
			case thingtalk.DirInReq:
				f.reqMask |= 1 << uint(pi)
				f.inMask |= 1 << uint(pi)
			case thingtalk.DirInOpt:
				f.inMask |= 1 << uint(pi)
			case thingtalk.DirOut:
				f.outEnv = append(f.outEnv, EnvEntry{name: cp.nameIdx, typ: cp.typ})
			}
		}
		a.fns = append(a.fns, f)
	}

	// Classify the vocabulary (skipping the reserved sentinel entries, which
	// are never legal program tokens; EOS legality is tracked separately).
	a.cls = make([]tokClass, len(vocab))
	a.payload = make([]int32, len(vocab))
	for id, tok := range vocab {
		if id < 3 { // <unk>, <s>, </s>
			a.cls[id] = tcOther
			continue
		}
		if int32(id) != a.index[tok] {
			a.cls[id] = tcOther // duplicate spelling; only the first id is used
			continue
		}
		c, p := a.classify(tok)
		a.cls[id], a.payload[id] = c, p
		switch c {
		case tcParamAnn:
			if p >= 0 {
				e := a.annParams[p]
				a.annByNT[int64(e.name)<<32|int64(e.typ)] = int32(id)
			}
		case tcParamBare:
			if _, ok := a.bareByName[p]; !ok {
				a.bareByName[p] = int32(id)
			}
		case tcUnit:
			if p >= 0 {
				base := a.strs[p]
				a.unitsBy[base] = append(a.unitsBy[base], int32(id))
			}
		case tcNumber:
			a.numberIDs = append(a.numberIDs, int32(id))
		case tcPlaceholder:
			a.phIDs[p] = append(a.phIDs[p], int32(id))
		case tcDateVal:
			if p == 1 {
				a.dateIDs = append(a.dateIDs, int32(id))
			}
		case tcTimeVal:
			if p == 1 {
				a.timeIDs = append(a.timeIDs, int32(id))
			}
		case tcLocVal:
			if p == 1 {
				a.locIDs = append(a.locIDs, int32(id))
			}
		case tcAggOp:
			a.aggOpIDs[p] = int32(id) + 1 // stored +1 so zero means absent
		default:
			if _, single := singletonKw[c]; single {
				a.kw[c] = int32(id)
			}
		}
	}
	a.opIDs = make([]int32, len(thingtalk.Operators))
	for i := range a.opIDs {
		a.opIDs[i] = a.lookupID(thingtalk.Operators[i])
	}

	a.tDate = a.internType(thingtalk.DateType{})
	a.tTime = a.internType(thingtalk.TimeType{})
	a.tMs = a.internType(thingtalk.MeasureType{Unit: "ms"})
	a.countEnv = []EnvEntry{{name: a.intern("count"), typ: a.internType(thingtalk.NumberType{})}}

	a.buildConstTables()
	a.buildCosts()

	if err := a.viable(); err != nil {
		return nil, err
	}
	return a, nil
}

// singletonKw marks classes with exactly one spelling.
var singletonKw = map[tokClass]struct{}{
	tcArrow: {}, tcNow: {}, tcTimer: {}, tcAtTimer: {}, tcMonitor: {}, tcEdge: {},
	tcNotify: {}, tcFilter: {}, tcJoin: {}, tcOn: {}, tcNew: {}, tcAgg: {}, tcOf: {},
	tcBase: {}, tcInterval: {}, tcTimeKw: {}, tcEq: {}, tcLParen: {}, tcRParen: {},
	tcQuote: {}, tcTrue: {}, tcFalse: {}, tcAnd: {}, tcOr: {}, tcNot: {}, tcPlus: {},
}

// kwID returns the vocab id of a singleton keyword class, or -1.
func (a *Automaton) kwID(c tokClass) int32 {
	if id, ok := a.kw[c]; ok {
		return id
	}
	return -1
}

func (a *Automaton) aggOpID(op int) int32 { return a.aggOpIDs[op] - 1 }

// magnitudeIDs are the tokens accepted as a measure-term magnitude (parser:
// any numeric literal or normalized placeholder).
func (a *Automaton) magnitudeIDs() []int32 {
	out := append([]int32(nil), a.numberIDs...)
	out = append(out, a.phIDs[phNumber]...)
	out = append(out, a.phIDs[phDuration]...)
	out = append(out, a.phIDs[phCurrency]...)
	return out
}

// buildConstTables fills each interned type's constant-start token list and
// minimum constant length, mirroring typecheck.valueCompatible.
func (a *Automaton) buildConstTables() {
	mags := a.magnitudeIDs()
	for i := range a.types {
		ti := &a.types[i]
		switch t := ti.t.(type) {
		case thingtalk.StringType, thingtalk.PathNameType, thingtalk.URLType, thingtalk.EntityType:
			if q := a.kwID(tcQuote); q >= 0 {
				ti.constStart = []int32{q}
				ti.constMin = 2
			}
		case thingtalk.NumberType:
			ti.constStart = append(append([]int32(nil), a.numberIDs...), a.phIDs[phNumber]...)
			if len(ti.constStart) > 0 {
				ti.constMin = 1
			}
		case thingtalk.BoolType:
			for _, c := range []tokClass{tcTrue, tcFalse} {
				if id := a.kwID(c); id >= 0 {
					ti.constStart = append(ti.constStart, id)
				}
			}
			if len(ti.constStart) > 0 {
				ti.constMin = 1
			}
		case thingtalk.DateType:
			ti.constStart = append(append([]int32(nil), a.dateIDs...), a.phIDs[phDate]...)
			if len(ti.constStart) > 0 {
				ti.constMin = 1
			}
		case thingtalk.TimeType:
			ti.constStart = append(append([]int32(nil), a.timeIDs...), a.phIDs[phTime]...)
			if len(ti.constStart) > 0 {
				ti.constMin = 1
			}
		case thingtalk.LocationType:
			ti.constStart = append(append([]int32(nil), a.locIDs...), a.phIDs[phLocation]...)
			if len(ti.constStart) > 0 {
				ti.constMin = 1
			}
		case thingtalk.CurrencyType:
			ti.constStart = append([]int32(nil), a.phIDs[phCurrency]...)
			if len(ti.constStart) > 0 {
				ti.constMin = 1
			}
			if len(a.unitsBy["usd"]) > 0 && len(mags) > 0 {
				ti.constStart = append(ti.constStart, mags...)
				if ti.constMin > 2 {
					ti.constMin = 2
				}
			}
		case thingtalk.MeasureType:
			if t.Unit == "ms" {
				ti.constStart = append([]int32(nil), a.phIDs[phDuration]...)
				if len(ti.constStart) > 0 {
					ti.constMin = 1
				}
			}
			if len(a.unitsBy[t.Unit]) > 0 && len(mags) > 0 {
				ti.constStart = append(ti.constStart, mags...)
				if ti.constMin > 2 {
					ti.constMin = 2
				}
			}
		case thingtalk.EnumType:
			for _, v := range t.Values {
				if id := a.lookupID("enum:" + v); id >= 0 {
					ti.constStart = append(ti.constStart, id)
				}
			}
			if len(ti.constStart) > 0 {
				ti.constMin = 1
			}
		case thingtalk.ArrayType:
			// Array constants do not exist; arrays flow only through varrefs
			// and contains-filters over the element type.
		}
		dedupSorted(&ti.constStart)
	}
}

func dedupSorted(ids *[]int32) {
	s := *ids
	if len(s) < 2 {
		return
	}
	sortInt32(s)
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	*ids = s[:w]
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// buildCosts computes per-function and global token floors used by the
// decode-length budget.
func (a *Automaton) buildCosts() {
	for i := range a.fns {
		f := &a.fns[i]
		f.minCostConst = 1
		if f.selID < 0 {
			f.minCostConst = noConst
			continue
		}
		for pi := range f.params {
			if f.reqMask&(1<<uint(pi)) == 0 {
				continue
			}
			p := &f.params[pi]
			cm := a.types[p.typ].constMin
			if p.annID < 0 || cm >= noConst || a.kwID(tcEq) < 0 {
				f.minCostConst = noConst
				break
			}
			f.minCostConst += 2 + cm
		}
	}

	a.minQuery, a.minMonQuery, a.minAction = noConst, noConst, noConst
	a.countCand = aggCand{minFn: noConst}
	for i := range a.fns {
		f := &a.fns[i]
		if f.minCostConst >= noConst {
			continue
		}
		switch f.kind {
		case thingtalk.KindQuery:
			if f.minCostConst < a.minQuery {
				a.minQuery = f.minCostConst
			}
			if f.monitor && f.minCostConst < a.minMonQuery {
				a.minMonQuery = f.minCostConst
			}
			if f.list {
				if f.minCostConst < a.countCand.minFn {
					a.countCand.minFn = f.minCostConst
				}
				for _, e := range f.outEnv {
					if !a.types[e.typ].numeric {
						continue
					}
					if _, ok := a.bareByName[e.name]; !ok {
						continue
					}
					c := a.numCands[e.name]
					if c.minFn == 0 {
						c.minFn = noConst
					}
					if f.minCostConst < c.minFn {
						c.minFn = f.minCostConst
					}
					a.numCands[e.name] = c
				}
			}
		case thingtalk.KindAction:
			if f.minCostConst < a.minAction {
				a.minAction = f.minCostConst
			}
		}
	}
	if a.kwID(tcNotify) >= 0 {
		a.minAction = 1
	}

	a.minStream = noConst
	if a.kwID(tcNow) >= 0 {
		a.minStream = 1
	}
	if a.minMonQuery < noConst && a.kwID(tcMonitor) >= 0 && a.kwID(tcLParen) >= 0 && a.kwID(tcRParen) >= 0 {
		if m := 3 + a.minMonQuery; m < a.minStream {
			a.minStream = m
		}
	}

	a.minPred = 3 // param op single-token-value floor
	if a.kwID(tcTrue) >= 0 || a.kwID(tcFalse) >= 0 {
		a.minPred = 1
	}

	a.constMinDate = a.types[a.tDate].constMin
	a.constMinTime = a.types[a.tTime].constMin
	a.constMinMs = a.types[a.tMs].constMin

	a.minAgg = noConst
	if a.countCand.minFn < noConst {
		a.minAgg = 4 + a.countCand.minFn
	}
	for _, c := range a.numCands {
		if 5+c.minFn < a.minAgg {
			a.minAgg = 5 + c.minFn
		}
	}
}

// viable rejects vocabularies that cannot express any complete program; the
// caller then decodes unmasked rather than with an automaton that would dead-
// end immediately.
func (a *Automaton) viable() error {
	if a.kwID(tcArrow) < 0 {
		return fmt.Errorf("grammar: vocabulary has no \"=>\" token")
	}
	if a.minStream >= noConst {
		return fmt.Errorf("grammar: vocabulary cannot express any stream clause")
	}
	if a.minAction >= noConst {
		return fmt.Errorf("grammar: vocabulary cannot express any action clause")
	}
	return nil
}

// typeAssignable mirrors typecheck.assignable over interned types.
func (a *Automaton) typeAssignable(src, dst int32) bool {
	if src == dst {
		return true
	}
	return a.types[src].stringLike && a.types[dst].stringLike
}

// envAssignable reports whether env exposes an output a varref could pass to
// an input of type dst (right-most entries shadow earlier ones by name).
func (a *Automaton) envAssignable(env []EnvEntry, dst int32) bool {
	seen := map[int32]bool{}
	for i := len(env) - 1; i >= 0; i-- {
		e := env[i]
		if seen[e.name] {
			continue
		}
		seen[e.name] = true
		if _, ok := a.bareByName[e.name]; !ok {
			continue
		}
		if a.typeAssignable(e.typ, dst) {
			return true
		}
	}
	return false
}

// envLookup returns the visible (right-most) type of name in env.
func envLookup(env []EnvEntry, name int32) (int32, bool) {
	for i := len(env) - 1; i >= 0; i-- {
		if env[i].name == name {
			return env[i].typ, true
		}
	}
	return 0, false
}

// extendEnv returns a fresh slice a++b (b shadows a). Environments are
// immutable once built, so states can share them across beam forks.
func extendEnv(base, add []EnvEntry) []EnvEntry {
	if len(add) == 0 {
		return base
	}
	out := make([]EnvEntry, 0, len(base)+len(add))
	out = append(out, base...)
	out = append(out, add...)
	return out
}

// Vocab returns the vocabulary the automaton was compiled against.
func (a *Automaton) Vocab() []string { return a.vocab }

// Spec returns the spec the automaton was compiled from.
func (a *Automaton) Spec() *Spec { return a.spec }
