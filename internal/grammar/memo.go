package grammar

import "encoding/binary"

// legalCacheLimit bounds the total number of memoized masks. Pooled decode
// contexts live for the process lifetime, so without a cap a cache would
// accumulate fingerprints across every request it ever served.
const legalCacheLimit = 8192

// satBudget marks a clock slot holding a budget-saturated entry, keyed by
// state fingerprint alone (see LegalCache). No real remaining-length ever
// takes this value.
const satBudget = -(1 << 30)

// LegalCache memoizes Legal results per (state fingerprint, budget band).
//
// Most decode states are budget-insensitive: every afterTotal the walk
// compares against the budget is well under it, so the resulting mask is
// identical for any budget at least as loose (see Automaton.legal). Those
// results are stored once, keyed by the state fingerprint alone, and reused
// for every remaining-length in the band. Runs where the budget did clip at
// least one option are stored under (fingerprint, budget).
//
// Eviction is CLOCK second-chance over a fixed slot arena: each hit sets the
// slot's reference bit; when the cache is full the hand sweeps, clearing set
// bits and evicting the first unreferenced slot. Hot entries — the states
// every decode revisits — survive indefinitely, while one-off fingerprints
// recycle, so a full cache no longer forgets its working set the way the old
// drop-everything reset did.
//
// A cache belongs to one goroutine (typically one pooled decode context) and
// is not safe for concurrent use. It self-invalidates when queried with a
// different Automaton, so a pooled context that alternates between parsers
// stays correct, merely cold. The zero value is ready to use.
type LegalCache struct {
	auto  *Automaton
	slots []clockSlot
	sat   map[string]int   // state fingerprint -> slot (budget-saturated)
	exact map[exactKey]int // (fingerprint, budget) -> slot
	hand  int
	limit int    // slot capacity; 0 means legalCacheLimit
	key   []byte // encode scratch, reused across queries

	hits      uint64
	misses    uint64
	evictions uint64
}

type clockSlot struct {
	key exactKey // r == satBudget: sat entry, keyed by state alone
	e   memoEntry
	ref bool
}

// Stats reports how many LegalCached queries were served from the cache, how
// many fell through to the walker, and how many entries the clock hand has
// evicted. Counters survive invalidation.
func (c *LegalCache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

type exactKey struct {
	state string
	r     int
}

type memoEntry struct {
	ids      []int32 // ascending, as Legal produces them
	eos      bool
	all      bool
	num      bool
	maxAfter int // sat only: largest afterTotal any budget check considered
}

func (e *memoEntry) restore(ls *LegalSet, vsize int) {
	ls.reset(vsize)
	for _, id := range e.ids {
		ls.add(id)
	}
	ls.EOS, ls.AllTokens, ls.NumberOK = e.eos, e.all, e.num
}

func (c *LegalCache) invalidate(a *Automaton) {
	c.auto = a
	c.slots = c.slots[:0]
	c.sat = make(map[string]int)
	c.exact = make(map[exactKey]int)
	c.hand = 0
}

func (c *LegalCache) capacity() int {
	if c.limit > 0 {
		return c.limit
	}
	return legalCacheLimit
}

// slot returns the index the next insert should use: a fresh slot while the
// arena is below capacity, otherwise the first unreferenced slot clockwise of
// the hand (clearing reference bits as it sweeps — second chance).
func (c *LegalCache) slot() int {
	if len(c.slots) < c.capacity() {
		c.slots = append(c.slots, clockSlot{})
		return len(c.slots) - 1
	}
	for {
		s := &c.slots[c.hand]
		i := c.hand
		c.hand = (c.hand + 1) % len(c.slots)
		if s.ref {
			s.ref = false
			continue
		}
		if s.key.r == satBudget {
			delete(c.sat, s.key.state)
		} else {
			delete(c.exact, s.key)
		}
		c.evictions++
		return i
	}
}

func (c *LegalCache) insert(key exactKey, e memoEntry) {
	// A sat entry can be re-memoized for a fingerprint that already holds a
	// slot (a tighter budget widened its maxAfter): overwrite in place so a
	// stale twin slot never evicts the live map entry out from under it.
	i, ok := c.sat[key.state]
	if key.r != satBudget {
		i, ok = c.exact[key]
	}
	if !ok {
		i = c.slot()
	}
	c.slots[i] = clockSlot{key: key, e: e, ref: true}
	if key.r == satBudget {
		c.sat[key.state] = i
	} else {
		c.exact[key] = i
	}
}

// trackFloor initializes the comparison tracker. Any real afterTotal exceeds
// it, and a walk that never consults the budget (tracker untouched) is
// budget-independent outright, reusable at every remaining-length.
const trackFloor = -(1 << 30)

// LegalCached is Legal through c. A nil cache degrades to the plain walk.
func (a *Automaton) LegalCached(st *State, remaining int, ls *LegalSet, c *LegalCache) {
	if c == nil {
		a.Legal(st, remaining, ls)
		return
	}
	if c.auto != a {
		c.invalidate(a)
	}
	c.key = appendStateKey(c.key[:0], st)
	if i, hit := c.sat[string(c.key)]; hit && remaining-1 >= c.slots[i].e.maxAfter {
		c.hits++
		c.slots[i].ref = true
		c.slots[i].e.restore(ls, len(a.vocab))
		return
	}
	if i, hit := c.exact[exactKey{string(c.key), remaining}]; hit {
		c.hits++
		c.slots[i].ref = true
		c.slots[i].e.restore(ls, len(a.vocab))
		return
	}
	c.misses++
	maxAfter := trackFloor
	a.legal(st, remaining, ls, &maxAfter)
	e := memoEntry{
		ids:      append([]int32(nil), ls.IDs...),
		eos:      ls.EOS,
		all:      ls.AllTokens,
		num:      ls.NumberOK,
		maxAfter: maxAfter,
	}
	if maxAfter <= remaining-1 {
		c.insert(exactKey{string(c.key), satBudget}, e)
	} else {
		c.insert(exactKey{string(c.key), remaining}, e)
	}
}

// appendStateKey appends an exact byte encoding of st. Two states compare
// equal under the encoding iff every frame field and environment entry
// matches — no hashing, no collisions. Lengths are encoded before their
// elements so adjacent variable-length sections cannot alias.
func appendStateKey(b []byte, st *State) []byte {
	b = binary.AppendVarint(b, int64(st.lastFn))
	b = binary.AppendUvarint(b, uint64(len(st.frames)))
	for i := range st.frames {
		f := &st.frames[i]
		b = append(b, f.kind, f.pos)
		b = binary.AppendUvarint(b, uint64(f.flags))
		b = binary.AppendVarint(b, int64(f.fn))
		b = binary.AppendVarint(b, int64(f.aux))
		b = binary.AppendUvarint(b, f.used)
		b = binary.AppendUvarint(b, f.pending)
		if f.sawList {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		for _, env := range [4][]EnvEntry{f.env, f.env2, f.envR, f.envRt} {
			b = binary.AppendUvarint(b, uint64(len(env)))
			for _, e := range env {
				b = binary.AppendVarint(b, int64(e.name))
				b = binary.AppendVarint(b, int64(e.typ))
			}
		}
	}
	return b
}
