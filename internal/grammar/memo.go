package grammar

import "encoding/binary"

// legalCacheLimit bounds the total number of memoized masks. Pooled decode
// contexts live for the process lifetime, so without a cap a cache would
// accumulate fingerprints across every request it ever served. When the cap
// is hit the cache is dropped wholesale: entries are cheap to recompute and
// an LRU chain would cost more bookkeeping than the walks it saves.
const legalCacheLimit = 8192

// LegalCache memoizes Legal results per (state fingerprint, budget band).
//
// Most decode states are budget-insensitive: every afterTotal the walk
// compares against the budget is well under it, so the resulting mask is
// identical for any budget at least as loose (see Automaton.legal). Those
// results are stored once in sat, keyed by the state fingerprint alone, and
// reused for every remaining-length in the band. Runs where the budget did
// clip at least one option are stored in exact under (fingerprint, budget).
//
// A cache belongs to one goroutine (typically one pooled decode context) and
// is not safe for concurrent use. It self-invalidates when queried with a
// different Automaton, so a pooled context that alternates between parsers
// stays correct, merely cold.
type LegalCache struct {
	auto   *Automaton
	sat    map[string]memoEntry
	exact  map[exactKey]memoEntry
	key    []byte // encode scratch, reused across queries
	hits   uint64
	misses uint64
}

// Stats reports how many LegalCached queries were served from the cache and
// how many fell through to the walker. Counters survive invalidation.
func (c *LegalCache) Stats() (hits, misses uint64) { return c.hits, c.misses }

type exactKey struct {
	state string
	r     int
}

type memoEntry struct {
	ids      []int32 // ascending, as Legal produces them
	eos      bool
	all      bool
	num      bool
	maxAfter int // sat only: largest afterTotal any budget check considered
}

func (e memoEntry) restore(ls *LegalSet, vsize int) {
	ls.reset(vsize)
	for _, id := range e.ids {
		ls.add(id)
	}
	ls.EOS, ls.AllTokens, ls.NumberOK = e.eos, e.all, e.num
}

func (c *LegalCache) invalidate(a *Automaton) {
	c.auto = a
	c.sat = make(map[string]memoEntry)
	c.exact = make(map[exactKey]memoEntry)
}

// trackFloor initializes the comparison tracker. Any real afterTotal exceeds
// it, and a walk that never consults the budget (tracker untouched) is
// budget-independent outright, reusable at every remaining-length.
const trackFloor = -(1 << 30)

// LegalCached is Legal through c. A nil cache degrades to the plain walk.
func (a *Automaton) LegalCached(st *State, remaining int, ls *LegalSet, c *LegalCache) {
	if c == nil {
		a.Legal(st, remaining, ls)
		return
	}
	if c.auto != a {
		c.invalidate(a)
	}
	c.key = appendStateKey(c.key[:0], st)
	if e, hit := c.sat[string(c.key)]; hit && remaining-1 >= e.maxAfter {
		c.hits++
		e.restore(ls, len(a.vocab))
		return
	}
	if e, hit := c.exact[exactKey{string(c.key), remaining}]; hit {
		c.hits++
		e.restore(ls, len(a.vocab))
		return
	}
	c.misses++
	maxAfter := trackFloor
	a.legal(st, remaining, ls, &maxAfter)
	if len(c.sat)+len(c.exact) >= legalCacheLimit {
		c.invalidate(a)
	}
	e := memoEntry{
		ids:      append([]int32(nil), ls.IDs...),
		eos:      ls.EOS,
		all:      ls.AllTokens,
		num:      ls.NumberOK,
		maxAfter: maxAfter,
	}
	if maxAfter <= remaining-1 {
		c.sat[string(c.key)] = e
	} else {
		c.exact[exactKey{string(c.key), remaining}] = e
	}
}

// appendStateKey appends an exact byte encoding of st. Two states compare
// equal under the encoding iff every frame field and environment entry
// matches — no hashing, no collisions. Lengths are encoded before their
// elements so adjacent variable-length sections cannot alias.
func appendStateKey(b []byte, st *State) []byte {
	b = binary.AppendVarint(b, int64(st.lastFn))
	b = binary.AppendUvarint(b, uint64(len(st.frames)))
	for i := range st.frames {
		f := &st.frames[i]
		b = append(b, f.kind, f.pos)
		b = binary.AppendUvarint(b, uint64(f.flags))
		b = binary.AppendVarint(b, int64(f.fn))
		b = binary.AppendVarint(b, int64(f.aux))
		b = binary.AppendUvarint(b, f.used)
		b = binary.AppendUvarint(b, f.pending)
		if f.sawList {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		for _, env := range [4][]EnvEntry{f.env, f.env2, f.envR, f.envRt} {
			b = binary.AppendUvarint(b, uint64(len(env)))
			for _, e := range env {
				b = binary.AppendVarint(b, int64(e.name))
				b = binary.AppendVarint(b, int64(e.typ))
			}
		}
	}
	return b
}
