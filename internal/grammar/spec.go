// Package grammar compiles the ThingTalk grammar and a skill library's
// function signatures into a token-transition automaton over a concrete
// decoder vocabulary. The automaton exposes, for every decode state, the set
// of legal next tokens — the constrained-decoding mask of "Don't Parse,
// Generate!" specialized to ThingTalk: any token sequence the automaton
// admits to completion parses under thingtalk.ParseTokens and typechecks
// against the library, so a masked decoder cannot emit a malformed program.
//
// The package has three layers:
//
//   - Spec: a distilled, serializable table of function signatures (the part
//     of the library the automaton needs). Snapshots embed it so a parser
//     loaded from disk can mask without access to the original library.
//   - Automaton: Spec compiled against a target vocabulary — every vocabulary
//     token classified once (keyword, selector, parameter, constant, ...),
//     with per-type constant tables and per-function cost bounds.
//   - State: one decode hypothesis's position in the grammar — a stack of
//     parse frames mirroring the recursive-descent parser, carrying the
//     typechecker's output-parameter environments so parameter references,
//     filter atoms and join conditions are masked type-correctly.
package grammar

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/thingtalk"
)

// SpecParam is one declared parameter in distilled form. Type is the
// canonical spelling (thingtalk.Type.String()), which round-trips through
// thingtalk.ParseType.
type SpecParam struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Dir  int    `json:"dir"` // thingtalk.ParamDir
}

// SpecFunction is one library function in distilled form.
type SpecFunction struct {
	Class   string      `json:"class"`
	Name    string      `json:"name"`
	Kind    int         `json:"kind"` // thingtalk.FunctionKind
	Monitor bool        `json:"monitor,omitempty"`
	List    bool        `json:"list,omitempty"`
	Params  []SpecParam `json:"params"`
}

// Spec is the schema table an automaton is compiled from. It is the
// serializable distillation of a thingpedia library: enough to reproduce the
// typechecker's decisions, nothing else.
type Spec struct {
	Functions []SpecFunction `json:"functions"`
}

// NewSpec distills a set of function schemas into a Spec. Functions are
// sorted by selector so the same library always produces byte-identical
// serializations (and therefore a stable checksum).
func NewSpec(fns []*thingtalk.FunctionSchema) *Spec {
	s := &Spec{Functions: make([]SpecFunction, 0, len(fns))}
	for _, f := range fns {
		sf := SpecFunction{
			Class:   f.Class,
			Name:    f.Name,
			Kind:    int(f.Kind),
			Monitor: f.Monitor,
			List:    f.List,
			Params:  make([]SpecParam, 0, len(f.Params)),
		}
		for _, p := range f.Params {
			sf.Params = append(sf.Params, SpecParam{Name: p.Name, Type: p.Type.String(), Dir: int(p.Dir)})
		}
		s.Functions = append(s.Functions, sf)
	}
	sort.Slice(s.Functions, func(i, j int) bool {
		return s.Functions[i].selector() < s.Functions[j].selector()
	})
	return s
}

func (f *SpecFunction) selector() string { return "@" + f.Class + "." + f.Name }

// Marshal serializes the spec deterministically.
func (s *Spec) Marshal() ([]byte, error) { return json.Marshal(s) }

// UnmarshalSpec reconstructs a Spec from Marshal output.
func UnmarshalSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("grammar: decoding spec: %w", err)
	}
	return &s, nil
}

// Checksum returns a hex SHA-256 over the canonical serialization; snapshots
// store it beside the spec so a corrupted or hand-edited spec is detected at
// load time.
func (s *Spec) Checksum() string {
	data, err := s.Marshal()
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Schemas rebuilds a thingtalk.SchemaMap from the spec (used by tests and by
// serving paths that need a SchemaSource but only have a snapshot).
func (s *Spec) Schemas() (thingtalk.SchemaMap, error) {
	m := thingtalk.SchemaMap{}
	for i := range s.Functions {
		f := &s.Functions[i]
		fs := &thingtalk.FunctionSchema{
			Class:   f.Class,
			Name:    f.Name,
			Kind:    thingtalk.FunctionKind(f.Kind),
			Monitor: f.Monitor,
			List:    f.List,
		}
		for _, p := range f.Params {
			t, err := thingtalk.ParseType(p.Type)
			if err != nil {
				return nil, fmt.Errorf("grammar: spec %s param %s: %w", f.selector(), p.Name, err)
			}
			fs.Params = append(fs.Params, thingtalk.ParamSpec{Name: p.Name, Type: t, Dir: thingtalk.ParamDir(p.Dir)})
		}
		m.Add(fs)
	}
	return m, nil
}
