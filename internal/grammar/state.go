package grammar

import (
	"fmt"
	"strconv"
)

// Frame kinds. A State is a stack of frames mirroring the recursive-descent
// parser's call stack, augmented with the typechecker's environments.
const (
	frProgram uint8 = iota
	frStream
	frQuery
	frInv
	frPred
	frValue
	frAgg
)

// Frame positions (shared constant space across kinds for readability).
const (
	// frProgram
	pg1    uint8 = iota // stream parsed; expect "=>"
	pg2                 // expect notify | action invocation | query
	pg3                 // query parsed; expect "=>"
	pg4                 // expect notify | action invocation
	pgDone              // program complete

	// frStream
	s0   // expect stream head
	sT1  // timer: expect "base"
	sT2  // expect "=" then Date value
	sT3  // expect "interval"
	sT4  // expect "=" then Measure(ms) value
	sA1  // attimer: expect "time"
	sA2  // expect "=" then Time value
	sM1  // monitor: expect "("
	sM2  // monitored query parsed; expect "on" (new) or finish
	sM2n // expect "new"
	sM3  // monitor-on list; aux counts params
	sE1  // edge: expect "("
	sE2  // inner stream parsed; expect ")"
	sE3  // expect "on" then predicate
	sDone

	// frQuery
	q0    // expect primary
	qLoop // primary parsed; postfix loop
	qJPrm // "join" consumed; expect right primary
	qJR   // right primary parsed; expect "on" or merge
	qOn1  // on-clause; expect parameter token (aux counts assignments)
	qOn2  // expect "="
	qOn3  // expect varref

	// frInv
	i0 // expect input parameter or finish
	i1 // expect "="

	// frPred
	pU  // expect unary
	pA  // unary complete; expect and/or/close
	pOp // atom parameter consumed; expect operator

	// frValue
	v0    // expect value start
	vStr  // inside quoted string
	vUnit // magnitude consumed; expect unit of frame's base
	vPH   // ms-duration placeholder consumed; unit optional
	vMeas // complete measure; "+" optional
	vPlus // "+" consumed; expect magnitude
	vDone

	// frAgg
	aOp    // expect aggregate operator
	aParam // expect bare parameter (non-count)
	aOf    // expect "of"
	aLP    // expect "("
	aRP    // inner query parsed; expect ")" gated on the aggregate obligation
)

// Frame flags.
const (
	fParen     uint16 = 1 << iota // frQuery/frPred: consumes its own ")"
	fMonOnly                      // invocations must be monitorable
	fProvOK                       // unmet required params may defer to a join "on"
	fAggInner                     // frQuery: ")" belongs to the parent frAgg
	fEdgeInner                    // frStream: only monitor/edge heads
	fConstOK                      // frValue: constants of the frame's type
	fVarRefOK                     // frValue: varrefs from env
	fStrOnly                      // frValue: quoted string only (substr-family)
)

type frame struct {
	kind    uint8
	pos     uint8
	flags   uint16
	fn      int32 // frInv: fn index; frValue: type index (-1 with fStrOnly); frPred: current atom type; frAgg: param name (-1)
	aux     int32 // frInv: current param index; frAgg: op index; frValue: expected base-unit string index; frStream/frQuery: list counters
	used    uint64
	pending uint64
	sawList bool
	env     []EnvEntry // own/result env (frQuery left env; frStream env; frPred atom env; frValue varref env)
	env2    []EnvEntry // incoming env (frQuery, frInv, frAgg)
	envR    []EnvEntry // frQuery: rightIncoming during a join
	envRt   []EnvEntry // frQuery: right operand's output env
}

// State is one decode hypothesis's position in the grammar. States are
// immutable through Step (clone-on-step), so beam forks share prefixes.
type State struct {
	frames []frame
	lastFn int32 // most recently completed invocation (the join-on target)
}

// Start returns the initial state: a program expecting its stream clause.
func (a *Automaton) Start() *State {
	return &State{
		frames: []frame{
			{kind: frProgram, pos: pg1},
			{kind: frStream, pos: s0},
		},
		lastFn: -1,
	}
}

func (st *State) clone() *State {
	c := &State{frames: make([]frame, len(st.frames)), lastFn: st.lastFn}
	copy(c.frames, st.frames)
	return c
}

func (st *State) top() *frame { return &st.frames[len(st.frames)-1] }

func (st *State) push(f frame) { st.frames = append(st.frames, f) }

func (st *State) pop() { st.frames = st.frames[:len(st.frames)-1] }

// popFx is what a completed construct delivers to its parent frame.
type popFx struct {
	kind    uint8 // fxNone, fxQuery, fxStream
	env     []EnvEntry
	sawList bool
	pending uint64
	lastFn  int32
}

const (
	fxNone uint8 = iota
	fxQuery
	fxStream
)

// canPop reports whether the top frame is finishable right now and the
// effects its completion delivers.
func (a *Automaton) canPop(st *State) (popFx, bool) {
	f := st.top()
	switch f.kind {
	case frProgram:
		if f.pos == pgDone {
			return popFx{}, true
		}
	case frStream:
		switch f.pos {
		case sDone, sM2:
			return popFx{kind: fxStream, env: f.env}, true
		case sM3:
			if f.aux >= 1 {
				return popFx{kind: fxStream, env: f.env}, true
			}
		}
	case frQuery:
		if f.pos == qLoop && f.flags&fParen == 0 {
			if f.pending == 0 || f.flags&fProvOK != 0 {
				return popFx{kind: fxQuery, env: f.env, sawList: f.sawList, pending: f.pending, lastFn: -1}, true
			}
		}
	case frInv:
		if f.pos == i0 {
			fn := &a.fns[f.fn]
			pend := fn.reqMask &^ f.used
			if pend != 0 {
				if f.flags&fProvOK == 0 {
					return popFx{}, false
				}
				for pi := 0; pi < len(fn.params); pi++ {
					if pend&(1<<uint(pi)) == 0 {
						continue
					}
					p := &fn.params[pi]
					if p.annID < 0 || !a.envAssignable(f.env2, p.typ) {
						return popFx{}, false
					}
				}
			}
			return popFx{kind: fxQuery, env: fn.outEnv, sawList: fn.list, pending: pend, lastFn: f.fn}, true
		}
	case frPred:
		if f.pos == pA && f.flags&fParen == 0 {
			return popFx{kind: fxNone}, true
		}
	case frValue:
		switch f.pos {
		case vPH, vMeas, vDone:
			return popFx{kind: fxNone}, true
		}
	}
	return popFx{}, false
}

// applyFx delivers a completed child's effects into the (new) top frame.
func applyFx(st *State, fx popFx) {
	if fx.lastFn >= 0 && fx.kind == fxQuery {
		st.lastFn = fx.lastFn
	}
	if len(st.frames) == 0 || fx.kind == fxNone {
		return
	}
	f := st.top()
	switch f.kind {
	case frProgram:
		switch f.pos {
		case pg1:
			f.env = fx.env // stream env
		case pg3:
			f.env2 = fx.env // query env
		}
	case frStream:
		switch f.pos {
		case sM2, sE2:
			f.env = fx.env
		}
	case frQuery:
		switch f.pos {
		case qLoop:
			f.env = fx.env
			f.sawList = f.sawList || fx.sawList
			f.pending |= fx.pending
		case qJR:
			f.envRt = fx.env
			f.sawList = f.sawList || fx.sawList
			f.pending |= fx.pending
		}
	case frAgg:
		if f.pos == aRP {
			f.env = fx.env
			f.sawList = fx.sawList
			f.pending |= fx.pending
		}
	}
}

// mergeJoin folds a finished join (left ⊕ right) back into the postfix loop.
func mergeJoin(f *frame) {
	f.env = extendEnv(f.env, f.envRt)
	f.envR, f.envRt = nil, nil
	f.used = 0
	f.aux = 0
	f.pos = qLoop
}

// advance performs one ε-move: an internal join/on transition, or a pop of a
// finishable frame. Returns false when the top frame needs a token.
func (a *Automaton) advance(st *State) bool {
	f := st.top()
	if f.kind == frQuery {
		if f.pos == qJR && f.pending == 0 {
			mergeJoin(f)
			return true
		}
		if f.pos == qOn1 && f.aux >= 1 && f.pending == 0 {
			mergeJoin(f)
			return true
		}
	}
	fx, ok := a.canPop(st)
	if !ok {
		return false
	}
	st.pop()
	applyFx(st, fx)
	return true
}

// Accepting reports whether EOS is legal: every open construct can finish.
func (a *Automaton) Accepting(st *State) bool {
	w := st.clone()
	for len(w.frames) > 0 {
		if !a.advance(w) {
			return false
		}
	}
	return true
}

// tokDesc is a classified token being consumed.
type tokDesc struct {
	id      int32 // vocab id, -1 for OOV copies
	cls     tokClass
	payload int32
	word    string
}

func (a *Automaton) describe(id int, word string) tokDesc {
	if id >= 0 && id < len(a.cls) {
		return tokDesc{id: int32(id), cls: a.cls[id], payload: a.payload[id], word: word}
	}
	// OOV copy from the source sentence: a quote closes strings, numerals can
	// fill numeric slots, anything else is only a word.
	if word == `"` {
		return tokDesc{id: -1, cls: tcQuote, word: word}
	}
	if _, err := strconv.ParseFloat(word, 64); err == nil {
		return tokDesc{id: -1, cls: tcNumber, word: word}
	}
	return tokDesc{id: -1, cls: tcOther, word: word}
}

// Step consumes one emitted token, returning the successor state. st is not
// modified. id is the target-vocabulary id, or -1 for an out-of-vocabulary
// copy; word is the token's spelling (required when id < 0).
func (a *Automaton) Step(st *State, id int, word string) (*State, error) {
	tok := a.describe(id, word)
	w := st.clone()
	for i := 0; i < 64; i++ { // bounded ε-chain; real stacks are shallow
		if len(w.frames) == 0 {
			return nil, fmt.Errorf("grammar: token %q after complete program", word)
		}
		if a.consume(w, tok) {
			return w, nil
		}
		if !a.advance(w) {
			return nil, fmt.Errorf("grammar: illegal token %q", word)
		}
	}
	return nil, fmt.Errorf("grammar: runaway parse at %q", word)
}

// minTotal is the minimum number of tokens needed to complete the program
// from st (used by the decode-length budget so the mask never admits a prefix
// that cannot finish in time).
func (a *Automaton) minTotal(st *State) int {
	total := 0
	for i := range st.frames {
		total += a.frameMin(&st.frames[i])
	}
	return total
}

func pcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// pendCost is the token cost of discharging deferred required parameters in
// an enclosing join-on clause ("param = ref" per entry, plus "on" once).
func pendCost(pending uint64) int {
	if pending == 0 {
		return 0
	}
	return 1 + 3*pcount(pending)
}

func (a *Automaton) frameMin(f *frame) int {
	switch f.kind {
	case frProgram:
		switch f.pos {
		case pg1:
			return 1 + min(a.minAction, 1)
		case pg2:
			return min(a.minAction, 1)
		case pg3:
			return 2
		case pg4:
			return 1
		}
		return 0
	case frStream:
		switch f.pos {
		case s0:
			if f.flags&fEdgeInner != 0 {
				return 3 + a.minMonQuery
			}
			return a.minStream
		case sT1:
			return 4 + a.constMinDate + a.constMinMs
		case sT2:
			return 3 + a.constMinDate + a.constMinMs
		case sT3:
			return 2 + a.constMinMs
		case sT4:
			return 1 + a.constMinMs
		case sA1:
			return 2 + a.constMinTime
		case sA2:
			return 1 + a.constMinTime
		case sM1:
			return 2 + a.minMonQuery
		case sM2n:
			return 2
		case sM3:
			if f.aux == 0 {
				return 1
			}
			return 0
		case sE1:
			return 6 + a.minMonQuery + a.minPred
		case sE2:
			return 2 + a.minPred
		case sE3:
			return 1 + a.minPred
		}
		return 0
	case frQuery:
		ex := 0
		if f.flags&fParen != 0 {
			ex = 1 // the frame's own closing ")"
		}
		switch f.pos {
		case q0, qJPrm:
			return ex + a.minQuery + pendCost(f.pending)
		case qLoop:
			return ex + pendCost(f.pending)
		case qJR:
			return ex + pendCost(f.pending)
		case qOn1:
			m := 3 * pcount(f.pending)
			if f.aux == 0 && m == 0 {
				m = 3
			}
			return ex + m
		case qOn2:
			// The in-progress assignment (param f.fn) is costed by the
			// position itself; exclude its pending bit to avoid counting the
			// same tokens twice.
			return ex + 2 + 3*pcount(f.pending&^(1<<uint(f.fn)))
		case qOn3:
			return ex + 1 + 3*pcount(f.pending&^(1<<uint(f.fn)))
		}
		return ex
	case frInv:
		fn := &a.fns[f.fn]
		switch f.pos {
		case i0:
			m := 0
			unmet := fn.reqMask &^ f.used
			for pi := 0; pi < len(fn.params); pi++ {
				if unmet&(1<<uint(pi)) == 0 {
					continue
				}
				c := 2 + a.minValDyn(&fn.params[pi], f.env2)
				if f.flags&fProvOK != 0 && c > 3 {
					c = 3
				}
				m += c
			}
			return m
		case i1:
			return 1 + a.minValDyn(&fn.params[f.aux], f.env2)
		}
		return 0
	case frPred:
		m := 0
		if f.flags&fParen != 0 {
			m = 1
		}
		switch f.pos {
		case pU:
			return m + a.minPred
		case pOp:
			return m + 2
		}
		return m
	case frValue:
		switch f.pos {
		case v0:
			if f.flags&fStrOnly != 0 {
				return 2
			}
			m := noConst
			if f.flags&fConstOK != 0 {
				m = a.types[f.fn].constMin
			}
			if f.flags&fVarRefOK != 0 && a.envAssignable(f.env, f.fn) {
				m = 1
			}
			if m >= noConst {
				return 1 // should not happen: pushes are gated on producibility
			}
			return m
		case vStr, vUnit:
			return 1
		case vPlus:
			return 2
		}
		return 0
	case frAgg:
		switch f.pos {
		case aOp:
			return 4 + a.minQuery
		case aParam:
			return 4 + a.minQuery
		case aOf:
			return 3 + a.minQuery
		case aLP:
			return 2 + a.minQuery
		case aRP:
			if a.aggObligationMet(f) {
				return 1
			}
			return 2 + a.aggFixCost(f)
		}
		return 0
	}
	return 0
}

// minValDyn is the cheapest way to fill parameter p given the incoming env.
func (a *Automaton) minValDyn(p *cParam, env []EnvEntry) int {
	m := a.types[p.typ].constMin
	if m > 1 && a.envAssignable(env, p.typ) {
		m = 1
	}
	return m
}

// aggObligationMet reports whether the aggregate's typecheck obligation holds
// for the inner query parsed so far (env/sawList already delivered to f).
func (a *Automaton) aggObligationMet(f *frame) bool {
	if !f.sawList {
		return false
	}
	if f.aux == aggOpCount {
		return true
	}
	t, ok := envLookup(f.env, f.fn)
	return ok && a.types[t].numeric
}

const aggOpCount = 0 // index of "count" in aggOps

// aggFixCost is the cheapest continuation that repairs an unmet aggregate
// obligation: joining a satisfying function onto the inner query.
func (a *Automaton) aggFixCost(f *frame) int {
	if f.aux == aggOpCount {
		return 1 + a.countCand.minFn
	}
	c, ok := a.numCands[f.fn]
	if !ok {
		return noConst
	}
	return 1 + c.minFn
}

func min(x, y int) int {
	if x < y {
		return x
	}
	return y
}
