package grammar

import (
	"repro/internal/thingtalk"
)

// addOptions adds every token the top frame of w can consume right now, gated
// by the decode-length budget: a token is admitted only when the program can
// still complete within R-1 further tokens after it. base is minTotal(w).
//
// The afterTotal for each option is base minus the top frame's current floor
// plus the floor of the configuration the token leads to; most transitions
// reduce the total by exactly one (the token just paid for itself).
func (a *Automaton) addOptions(w *State, base, R int, ls *LegalSet, track *int) {
	f := w.top()
	ok := func(after int) bool {
		if track != nil && after > *track {
			*track = after
		}
		return after <= R-1
	}
	addIf := func(id int32, after int) bool {
		if id >= 0 && ok(after) {
			ls.add(id)
			return true
		}
		return false
	}

	switch f.kind {
	case frProgram:
		switch f.pos {
		case pg1:
			addIf(a.kwID(tcArrow), base-1)
		case pg2:
			fm := a.frameMin(f)
			addIf(a.kwID(tcNotify), base-fm)
			for fi := range a.fns {
				fn := &a.fns[fi]
				if fn.kind != thingtalk.KindAction || !a.invocable(int32(fi), f.env) {
					continue
				}
				addIf(fn.selID, base-fm+a.dynCost(int32(fi), f.env)-1)
			}
			a.addQueryStarts(f.env, false, base-fm+2, ls, ok)
		case pg3:
			addIf(a.kwID(tcArrow), base-1)
		case pg4:
			addIf(a.kwID(tcNotify), base-1)
			env := extendEnv(f.env, f.env2)
			for fi := range a.fns {
				fn := &a.fns[fi]
				if fn.kind != thingtalk.KindAction || !a.invocable(int32(fi), env) {
					continue
				}
				addIf(fn.selID, base-1+a.dynCost(int32(fi), env)-1)
			}
		}

	case frStream:
		switch f.pos {
		case s0:
			fm := a.frameMin(f)
			if f.flags&fEdgeInner == 0 {
				addIf(a.kwID(tcNow), base-fm)
				if a.constMinDate < noConst && a.constMinMs < noConst && a.kwID(tcEq) >= 0 {
					addIf(a.kwID(tcTimer), base-fm+4+a.constMinDate+a.constMinMs)
				}
				if a.constMinTime < noConst && a.kwID(tcEq) >= 0 {
					addIf(a.kwID(tcAtTimer), base-fm+2+a.constMinTime)
				}
			}
			if a.minMonQuery < noConst && a.kwID(tcLParen) >= 0 && a.kwID(tcRParen) >= 0 {
				addIf(a.kwID(tcMonitor), base-fm+2+a.minMonQuery)
				if a.kwID(tcOn) >= 0 && a.minPred < noConst {
					addIf(a.kwID(tcEdge), base-fm+6+a.minMonQuery+a.minPred)
				}
			}
		case sT1:
			addIf(a.kwID(tcBase), base-1)
		case sT2, sT4, sA2:
			addIf(a.kwID(tcEq), base-1)
		case sT3:
			addIf(a.kwID(tcInterval), base-1)
		case sA1:
			addIf(a.kwID(tcTimeKw), base-1)
		case sM1:
			addIf(a.kwID(tcLParen), base-1)
		case sM2:
			if a.envHasBare(f.env) {
				addIf(a.kwID(tcOn), base+2)
			}
		case sM2n:
			addIf(a.kwID(tcNew), base-1)
		case sM3:
			after := base
			if f.aux == 0 {
				after = base - 1
			}
			visitEnv(f.env, func(name, _ int32) {
				if id, okb := a.bareByName[name]; okb {
					addIf(id, after)
				}
			})
		case sE1:
			addIf(a.kwID(tcLParen), base-1)
		case sE2:
			addIf(a.kwID(tcRParen), base-1)
		case sE3:
			addIf(a.kwID(tcOn), base-1)
		}

	case frQuery:
		switch f.pos {
		case q0, qJPrm:
			env2 := f.env2
			if f.pos == qJPrm {
				env2 = f.envR
			}
			a.addQueryStarts(env2, f.flags&fMonOnly != 0, base-a.minQuery, ls, ok)
		case qLoop:
			if a.hasPredStart(f.env) {
				addIf(a.kwID(tcFilter), base+a.minPred)
			}
			if f.pending == 0 && a.minQuery < noConst && a.kwID(tcOn) >= 0 {
				addIf(a.kwID(tcJoin), base+a.minQuery)
			}
			if f.flags&fParen != 0 {
				addIf(a.kwID(tcRParen), base-1)
			}
		case qJR:
			if w.lastFn >= 0 && a.onCandidate(w.lastFn, f.used, f.envR) {
				if f.pending != 0 {
					addIf(a.kwID(tcOn), base-1)
				} else {
					addIf(a.kwID(tcOn), base+3)
				}
			}
		case qOn1:
			if w.lastFn >= 0 {
				fn := &a.fns[w.lastFn]
				for pi := 0; pi < len(fn.params); pi++ {
					p := &fn.params[pi]
					if p.dir == thingtalk.DirOut || p.annID < 0 || f.used&(1<<uint(pi)) != 0 {
						continue
					}
					if !a.envAssignable(f.envR, p.typ) {
						continue
					}
					if f.pending&(1<<uint(pi)) != 0 || (f.aux == 0 && f.pending == 0) {
						addIf(p.annID, base-1)
					} else {
						addIf(p.annID, base+2)
					}
				}
			}
		case qOn2:
			addIf(a.kwID(tcEq), base-1)
		case qOn3:
			if w.lastFn >= 0 {
				p := &a.fns[w.lastFn].params[f.fn]
				visitEnv(f.envR, func(name, typ int32) {
					id, okb := a.bareByName[name]
					if okb && a.typeAssignable(typ, p.typ) {
						addIf(id, base-1)
					}
				})
			}
		}

	case frInv:
		fn := &a.fns[f.fn]
		switch f.pos {
		case i0:
			if a.kwID(tcEq) < 0 {
				break
			}
			for pi := 0; pi < len(fn.params); pi++ {
				p := &fn.params[pi]
				if p.dir == thingtalk.DirOut || p.annID < 0 || f.used&(1<<uint(pi)) != 0 {
					continue
				}
				mv := a.minValDyn(p, f.env2)
				if mv >= noConst {
					continue
				}
				if fn.reqMask&(1<<uint(pi)) != 0 {
					c := 2 + mv
					if f.flags&fProvOK != 0 && c > 3 {
						c = 3
					}
					addIf(p.annID, base-c+1+mv)
				} else {
					addIf(p.annID, base+1+mv)
				}
			}
		case i1:
			addIf(a.kwID(tcEq), base-1)
		}

	case frPred:
		switch f.pos {
		case pU:
			addIf(a.kwID(tcTrue), base-a.minPred)
			addIf(a.kwID(tcFalse), base-a.minPred)
			addIf(a.kwID(tcNot), base)
			if a.hasPredStart(f.env) {
				addIf(a.kwID(tcLParen), base+1)
			}
			visitEnv(f.env, func(name, typ int32) {
				id, okAnn := a.annByNT[int64(name)<<32|int64(typ)]
				if !okAnn || !a.hasAtomOp(typ) {
					return
				}
				addIf(id, base-a.minPred+a.minAtomVal(typ))
			})
		case pOp:
			for i := range thingtalk.Operators {
				if a.opIDs[i] < 0 {
					continue
				}
				vtyp, strOnly, okOp := a.opValue(int32(i), f.fn)
				if !okOp {
					continue
				}
				valMin := 2
				if !strOnly {
					valMin = a.types[vtyp].constMin
				}
				addIf(a.opIDs[i], base-2+valMin)
			}
		case pA:
			if a.hasPredStart(f.env) {
				addIf(a.kwID(tcAnd), base+a.minPred)
				addIf(a.kwID(tcOr), base+a.minPred)
			}
			if f.flags&fParen != 0 {
				addIf(a.kwID(tcRParen), base-1)
			}
		}

	case frValue:
		switch f.pos {
		case v0:
			if f.flags&fStrOnly != 0 {
				addIf(a.kwID(tcQuote), base-1)
				break
			}
			fm := a.frameMin(f)
			if f.flags&fVarRefOK != 0 {
				visitEnv(f.env, func(name, typ int32) {
					id, okb := a.bareByName[name]
					if okb && a.typeAssignable(typ, f.fn) {
						addIf(id, base-fm)
					}
				})
			}
			if f.flags&fConstOK != 0 {
				a.addConstStarts(f, base-fm, ls, addIf)
			}
		case vStr:
			if ok(base) {
				ls.AllTokens = true
			}
			addIf(a.kwID(tcQuote), base-1)
		case vUnit:
			for _, id := range a.unitsBy[a.strs[f.aux]] {
				addIf(id, base-1)
			}
		case vPH:
			for _, id := range a.unitsBy[a.strs[f.aux]] {
				addIf(id, base)
			}
		case vMeas:
			addIf(a.kwID(tcPlus), base+2)
		case vPlus:
			numeral := false
			for _, id := range a.magnitudeIDs() {
				numeral = addIf(id, base-1) || numeral
			}
			if numeral || ok(base-1) {
				ls.NumberOK = true
			}
		}

	case frAgg:
		switch f.pos {
		case aOp:
			if a.countCand.minFn < noConst {
				addIf(a.aggOpID(aggOpCount), base-1)
			}
			if len(a.numCands) > 0 {
				for k := 1; k < len(aggOps); k++ {
					addIf(a.aggOpID(k), base)
				}
			}
		case aParam:
			for name, cand := range a.numCands {
				if cand.minFn >= noConst {
					continue
				}
				addIf(a.bareByName[name], base-1)
			}
		case aOf:
			addIf(a.kwID(tcOf), base-1)
		case aLP:
			best := a.countCand.minFn
			if f.aux != aggOpCount {
				best = a.numCands[f.fn].minFn
			}
			addIf(a.kwID(tcLParen), base-(2+a.minQuery)+1+best)
		case aRP:
			if a.aggObligationMet(f) {
				addIf(a.kwID(tcRParen), base-1)
			}
		}
	}
}

// addQueryStarts adds the tokens that can begin a query primary: selectors of
// invocable query functions, "(", and "agg" when an aggregate is completable.
// preBase is base minus the pending primary's floor (a.minQuery).
func (a *Automaton) addQueryStarts(env2 []EnvEntry, monOnly bool, preBase int, ls *LegalSet, ok func(int) bool) {
	for fi := range a.fns {
		fn := &a.fns[fi]
		if fn.kind != thingtalk.KindQuery || (monOnly && !fn.monitor) {
			continue
		}
		if !a.invocable(int32(fi), env2) {
			continue
		}
		if after := preBase + a.dynCost(int32(fi), env2) - 1; fn.selID >= 0 && ok(after) {
			ls.add(fn.selID)
		}
	}
	if id := a.kwID(tcLParen); id >= 0 && a.kwID(tcRParen) >= 0 && ok(preBase+1+a.minQuery) {
		ls.add(id)
	}
	if id := a.kwID(tcAgg); id >= 0 && a.minAgg < noConst && ok(preBase+a.minAgg-1) {
		ls.add(id)
	}
}

// addConstStarts adds the constant-start tokens for a frValue at v0, with the
// per-start afterTotal (single-token constants finish immediately; quoted
// strings and measure magnitudes continue).
func (a *Automaton) addConstStarts(f *frame, done int, ls *LegalSet, addIf func(int32, int) bool) {
	ti := &a.types[f.fn]
	switch ti.t.(type) {
	case thingtalk.StringType, thingtalk.PathNameType, thingtalk.URLType, thingtalk.EntityType:
		addIf(a.kwID(tcQuote), done+1)
	case thingtalk.NumberType:
		numeral := false
		for _, id := range ti.constStart {
			numeral = addIf(id, done) || numeral
		}
		if numeral {
			ls.NumberOK = true
		}
	case thingtalk.CurrencyType, thingtalk.MeasureType:
		// Single-token placeholders complete; magnitudes need a unit after.
		hasUnits := len(a.unitsBy[ti.base]) > 0
		numeral := false
		for _, id := range ti.constStart {
			if a.cls[id] == tcPlaceholder && a.phMatchesBase(a.payload[id], ti) {
				addIf(id, done)
				continue
			}
			if hasUnits {
				numeral = addIf(id, done+1) || numeral
			}
		}
		if numeral {
			ls.NumberOK = true
		}
	default:
		for _, id := range ti.constStart {
			addIf(id, done)
		}
	}
}

// phMatchesBase reports whether a placeholder kind is the self-contained form
// of a currency/measure type (CURRENCY for usd, DURATION for ms).
func (a *Automaton) phMatchesBase(kind int32, ti *typeInfo) bool {
	switch kind {
	case phCurrency:
		_, isCur := ti.t.(thingtalk.CurrencyType)
		return isCur
	case phDuration:
		mt, isM := ti.t.(thingtalk.MeasureType)
		return isM && mt.Unit == "ms"
	}
	return false
}

// envHasBare reports whether any visible env entry has a bare param token.
func (a *Automaton) envHasBare(env []EnvEntry) bool {
	found := false
	visitEnv(env, func(name, _ int32) {
		if _, ok := a.bareByName[name]; ok {
			found = true
		}
	})
	return found
}

// hasPredStart reports whether any predicate unary is expressible over env.
func (a *Automaton) hasPredStart(env []EnvEntry) bool {
	if a.kwID(tcTrue) >= 0 || a.kwID(tcFalse) >= 0 {
		return true
	}
	found := false
	visitEnv(env, func(name, typ int32) {
		if found {
			return
		}
		if _, ok := a.annByNT[int64(name)<<32|int64(typ)]; ok && a.hasAtomOp(typ) {
			found = true
		}
	})
	return found
}

// onCandidate reports whether the last invocation still has an assignable,
// annotated input parameter for a join-on clause.
func (a *Automaton) onCandidate(lastFn int32, used uint64, envR []EnvEntry) bool {
	fn := &a.fns[lastFn]
	if a.kwID(tcEq) < 0 {
		return false
	}
	for pi := 0; pi < len(fn.params); pi++ {
		p := &fn.params[pi]
		if p.dir == thingtalk.DirOut || p.annID < 0 || used&(1<<uint(pi)) != 0 {
			continue
		}
		if a.envAssignable(envR, p.typ) {
			return true
		}
	}
	return false
}
