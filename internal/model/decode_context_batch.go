package model

import (
	"math"

	"repro/internal/grammar"
	"repro/internal/nn"
)

// Batched contextual decode: the serving layer's gathered window of
// follow-up requests advances in lockstep with *two* attended memories per
// row — the padded source memory and a padded previous-program memory — via
// the batched attention kernel's block mapping. Per row the kernels are
// numerically identical to the single-row contextual path, so
// ParseBatchContextScored emits exactly ParseContextScored's greedy tokens.
//
// Every request must carry a non-empty context: the serving layer partitions
// a window into contextual and single-turn halves, and the single-turn half
// goes through ParseBatch unchanged (bit-parity with the pre-contextual
// path).

// encodeCtxBatch runs the previous-program encoder over a prepared batch
// (prepareSrc with the target vocabulary), returning the packed padded
// context memory ((B*M)×h, one M-row block per request).
//
//genielint:returns-arena
func (p *Parser) encodeCtxBatch(g *nn.Graph, bb *batchBufs, B, M int) *nn.Tensor {
	hid := p.cfg.HiddenDim
	embs := grow(&bb.embs, M)
	for i := 0; i < M; i++ {
		embs[i] = g.Dropout(g.LookupRows(p.decEmb.Table, bb.srcIds[i*B:(i+1)*B]), p.cfg.Dropout, p.rng)
	}
	h := g.NewTensor(B, hid)
	c := g.NewTensor(B, hid)
	hs := grow(&bb.fhs, M)
	for i := 0; i < M; i++ {
		h, c = p.ctxCell.StepBatch(g, embs[i], h, c, bb.active[i*B:(i+1)*B])
		hs[i] = h
	}
	rows := grow(&bb.rows, M)
	copy(rows, hs[:M])
	return g.PackMemoryBatch(rows, bb.lens)
}

// decodeStepCtxBatch is the batched form of stepCtx: one lockstep decoder
// step over R rows attending both the source memory H and the context memory
// C through their block mappings.
//
//genielint:returns-arena
func (p *Parser) decodeStepCtxBatch(g *nn.Graph, H *nn.Tensor, lens []int, C *nn.Tensor, clens []int, prev, blocks []int, h, c, ctx *nn.Tensor) (pv, alpha, beta, gate, cgate, hN, cN, ctxN *nn.Tensor) {
	emb := g.LookupRows(p.decEmb.Table, prev)
	x := g.ConcatCols(emb, ctx)
	hN, cN = p.dec.StepBatch(g, x, h, c, nil)
	q := g.BatchedAffine(hN, p.attnLin.W, p.attnLin.B)
	alpha, ctxN = g.AttendSoftmaxContextBatch(q, H, blocks, lens)
	htilde := g.Tanh(g.BatchedAffine(g.ConcatCols(hN, ctxN), p.combLin.W, p.combLin.B))
	q2 := g.BatchedAffine(htilde, p.ctxAttnLin.W, p.ctxAttnLin.B)
	var cctx *nn.Tensor
	beta, cctx = g.AttendSoftmaxContextBatch(q2, C, blocks, clens)
	h2 := g.Tanh(g.BatchedAffine(g.ConcatCols(htilde, cctx), p.ctxCombLin.W, p.ctxCombLin.B))
	pv = g.SoftmaxRows(g.BatchedAffine(h2, p.outLin.W, p.outLin.B))
	gate = g.Sigmoid(g.BatchedAffine(h2, p.gateLin.W, p.gateLin.B))
	cgate = g.Sigmoid(g.BatchedAffine(h2, p.ctxGateLin.W, p.ctxGateLin.B))
	return pv, alpha, beta, gate, cgate, hN, cN, ctxN
}

// ParseBatchContext greedily decodes B (sentence, previous-program) requests
// in lockstep. Tokens are identical to per-request ParseContext calls.
func (p *Parser) ParseBatchContext(sentences, contexts [][]string) [][]string {
	outs, _ := p.ParseBatchContextScored(sentences, contexts)
	return outs
}

// ParseBatchContextScored is the scored batched contextual greedy decode.
// Every request must have a non-empty context (the serving layer routes
// empty-context requests through the single-turn batched path); rows with an
// empty sentence return nil like Parse.
func (p *Parser) ParseBatchContextScored(sentences, contexts [][]string) ([][]string, []float64) {
	if p.ctxCell == nil {
		panic("model: ParseBatchContext on a non-contextual parser")
	}
	B := len(sentences)
	outs := make([][]string, B)
	scores := make([]float64, B)
	for b := range scores {
		scores[b] = math.Inf(-1)
	}
	if B == 0 {
		return outs, scores
	}
	dc := acquireBatchDecodeCtx()
	defer dc.release()
	g := dc.g
	S := dc.bufs.prepareSrc(p.src, sentences)
	if S == 0 {
		return outs, scores
	}
	M := dc.cbufs.prepareSrc(p.tgt, contexts)
	if M == 0 {
		panic("model: ParseBatchContext with all-empty contexts")
	}
	H, final := p.encodeBatch(g, &dc.bufs, B, S)
	C := p.encodeCtxBatch(g, &dc.cbufs, B, M)
	hid := p.cfg.HiddenDim
	h := g.Tanh(g.BatchedAffine(final, p.initLin.W, p.initLin.B))
	c := g.NewTensor(B, hid)
	ctx := g.NewTensor(B, 2*hid)

	reqOf := grow(&dc.reqOf, B)
	prev := grow(&dc.prev, B)
	blocks := grow(&dc.blocks, B)
	keep := grow(&dc.srcIdx, B)
	logProb := make([]float64, B)
	done := make([]bool, B)
	var gss []*grammar.State
	if p.auto != nil {
		gss = make([]*grammar.State, B)
	}
	R := 0
	for b := 0; b < B; b++ {
		if len(sentences[b]) == 0 {
			continue
		}
		if len(contexts[b]) == 0 {
			panic("model: ParseBatchContext row with empty context")
		}
		reqOf[R] = b
		prev[R] = BosID
		blocks[R] = b
		keep[R] = b
		if gss != nil {
			gss[R] = p.auto.Start()
		}
		R++
		outs[b] = make([]string, 0, 16)
	}
	if R == 0 {
		return outs, scores
	}
	if R < B {
		h = gatherRows(g, h, keep[:R])
		c = gatherRows(g, c, keep[:R])
		ctx = gatherRows(g, ctx, keep[:R])
	}
	V := p.tgt.Size()
	maxLen := p.cfg.maxDecodeLen()
	for t := 0; t < maxLen && R > 0; t++ {
		pv, alpha, beta, gate, cgate, hN, cN, ctxN := p.decodeStepCtxBatch(g, H, dc.bufs.lens, C, dc.cbufs.lens, prev[:R], blocks[:R], h, c, ctx)
		w := 0
		for r := 0; r < R; r++ {
			req := reqOf[r]
			words := sentences[req]
			ew, ea := dc.cs.effMix(words, contexts[req], alpha.W[r*S:r*S+len(words)], beta.W[r*M:r*M+len(contexts[req])], cgate.W[r])
			var tok string
			var prob float64
			picked := false
			if gss != nil && gss[r] != nil {
				if mt, mp, ok := p.maskedBest(&dc.ms, &dc.ls, &dc.lc, gss[r], maskedBudget(maxLen, t), pv.W[r*V:(r+1)*V], ea, gate.W[r], ew); ok {
					tok, prob, picked = mt, mp, true
				} else {
					gss[r] = nil
				}
			}
			if !picked {
				tok, prob = p.bestTokenScored(&dc.ms, pv.W[r*V:(r+1)*V], ea, gate.W[r], ew)
			}
			logProb[req] += math.Log(prob + 1e-12)
			if tok == EosToken {
				done[req] = true
				continue
			}
			outs[req] = append(outs[req], tok)
			var ngs *grammar.State
			if gss != nil {
				ngs = p.grammarStep(gss[r], tok)
			}
			reqOf[w] = req
			prev[w] = p.tgt.ID(tok)
			blocks[w] = req
			keep[w] = r
			if gss != nil {
				gss[w] = ngs
			}
			w++
		}
		R = w
		if R == 0 {
			break
		}
		if R < hN.Rows {
			h = gatherRows(g, hN, keep[:R])
			c = gatherRows(g, cN, keep[:R])
			ctx = gatherRows(g, ctxN, keep[:R])
		} else {
			h, c, ctx = hN, cN, ctxN
		}
	}
	for b := 0; b < B; b++ {
		if len(sentences[b]) == 0 {
			continue
		}
		scores[b] = lengthNormScore(logProb[b], len(outs[b]), done[b])
	}
	return outs, scores
}
