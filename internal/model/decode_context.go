package model

import (
	"math"
	"sort"
)

// Contextual decoding (multi-turn parsing). The previous turn's accepted
// program tokens form a second attended memory; its attention row folds into
// the pointer mixture by treating context tokens as extra copyable positions:
// the effective copy distribution over words++ctx is
// [(1−cgate)·alpha, cgate·beta], so every existing mixture scorer — fused
// argmax, top-k, and the grammar-masked variants — applies unchanged.
//
// An empty context (or a non-contextual parser) delegates to the single-turn
// paths, which keeps those trajectories bit-identical to the pre-contextual
// code.

// ctxScratch holds the contextual decode buffers of a pooled decodeCtx.
//
//genielint:arena-scoped
type ctxScratch struct {
	cenc     ctxBufs
	ctxIds   []int
	effWords []string
	effAlpha []float64
}

// effMix builds the effective copy distribution and word list covering the
// source positions followed by the context positions.
func (cs *ctxScratch) effMix(words, ctx []string, alpha, beta []float64, cgate float64) ([]string, []float64) {
	ew := append(cs.effWords[:0], words...)
	ew = append(ew, ctx...)
	cs.effWords = ew
	ea := cs.effAlpha[:0]
	for _, a := range alpha[:len(words)] {
		ea = append(ea, (1-cgate)*a)
	}
	for _, b := range beta[:len(ctx)] {
		ea = append(ea, cgate*b)
	}
	cs.effAlpha = ea
	return ew, ea
}

// ParseContext greedily decodes a sentence against the previous turn's
// program tokens. With an empty context it is exactly Parse. Safe for
// concurrent use, like every decode entry point.
func (p *Parser) ParseContext(words, ctx []string) []string {
	out, _ := p.ParseContextScored(words, ctx, 1)
	return out
}

// ParseContextScored is the scored contextual decode: greedy at width <= 1,
// beam otherwise. With an empty context (or a parser trained without
// Config.Contextual) it delegates to the single-turn path bit-identically.
func (p *Parser) ParseContextScored(words, ctx []string, width int) ([]string, float64) {
	if p.ctxCell == nil || len(ctx) == 0 {
		return p.ParseScored(words, width)
	}
	if len(words) == 0 {
		return nil, math.Inf(-1)
	}
	if width <= 1 {
		return p.parseGreedyCtxScored(words, ctx)
	}
	best := p.beamDecodeCtx(words, ctx, width)
	return best.tokens, best.score()
}

// ParseContextAdaptive is the contextual twin of ParseAdaptive: greedy
// first, beam re-decode only when the fitted confidence threshold flags the
// greedy hypothesis. The escalated flag reports whether the beam ran.
func (p *Parser) ParseContextAdaptive(words, ctx []string, width int) ([]string, float64, bool) {
	if p.ctxCell == nil || len(ctx) == 0 {
		return p.ParseAdaptive(words, width)
	}
	if len(words) == 0 {
		return nil, math.Inf(-1), false
	}
	toks, score := p.parseGreedyCtxScored(words, ctx)
	if width <= 1 || !p.calib.Fitted || score >= p.calib.Threshold {
		return toks, score, false
	}
	best := p.beamDecodeCtx(words, ctx, width)
	return best.tokens, best.score(), true
}

func (p *Parser) parseGreedyCtxScored(words, ctx []string) ([]string, float64) {
	dc := acquireDecodeCtx()
	defer dc.release()
	g := dc.g
	dc.srcIds = p.src.EncodeInto(dc.srcIds[:0], words)
	dc.cs.ctxIds = p.tgt.EncodeInto(dc.cs.ctxIds[:0], ctx)
	H, final := p.encode(g, &dc.enc, dc.srcIds)
	C := p.encodeCtx(g, &dc.cs.cenc, dc.cs.ctxIds)
	st := p.initDecode(g, final)
	prev := BosID
	out := make([]string, 0, 16)
	logProb := 0.0
	done := false
	maxLen := p.cfg.maxDecodeLen()
	gs := p.grammarStart()
	for t := 0; t < maxLen; t++ {
		pv, alpha, beta, gate, cgate, next := p.stepCtx(g, st, prev, H, C)
		ew, ea := dc.cs.effMix(words, ctx, alpha.W, beta.W, cgate.W[0])
		var tok string
		var prob float64
		picked := false
		if gs != nil {
			if mt, mp, ok := p.maskedBest(&dc.ms, &dc.ls, &dc.lc, gs, maskedBudget(maxLen, t), pv.W, ea, gate.W[0], ew); ok {
				tok, prob, picked = mt, mp, true
			} else {
				gs = nil
			}
		}
		if !picked {
			tok, prob = p.bestTokenScored(&dc.ms, pv.W, ea, gate.W[0], ew)
		}
		logProb += math.Log(prob + 1e-12)
		if tok == EosToken {
			done = true
			break
		}
		out = append(out, tok)
		st = next
		prev = p.tgt.ID(tok)
		gs = p.grammarStep(gs, tok)
	}
	return out, lengthNormScore(logProb, len(out), done)
}

// beamDecodeCtx runs the contextual beam search, mirroring beamDecode with
// the two-memory step and the effective mixture rows.
func (p *Parser) beamDecodeCtx(words, ctx []string, width int) beamItem {
	dc := acquireDecodeCtx()
	defer dc.release()
	g := dc.g
	dc.srcIds = p.src.EncodeInto(dc.srcIds[:0], words)
	dc.cs.ctxIds = p.tgt.EncodeInto(dc.cs.ctxIds[:0], ctx)
	H, final := p.encode(g, &dc.enc, dc.srcIds)
	C := p.encodeCtx(g, &dc.cs.cenc, dc.cs.ctxIds)
	beam := []beamItem{{st: p.initDecode(g, final), prev: BosID, gs: p.grammarStart()}}
	maxLen := p.cfg.maxDecodeLen()
	for t := 0; t < maxLen; t++ {
		var candidates []beamItem
		allDone := true
		for _, item := range beam {
			if item.done {
				candidates = append(candidates, item)
				continue
			}
			allDone = false
			pv, alpha, beta, gate, cgate, next := p.stepCtx(g, item.st, item.prev, H, C)
			ew, ea := dc.cs.effMix(words, ctx, alpha.W, beta.W, cgate.W[0])
			var cands []scoredToken
			masked := false
			if item.gs != nil {
				cands, masked = p.maskedTop(&dc.ms, &dc.ls, &dc.lc, item.gs, maskedBudget(maxLen, t), &dc.scored, pv.W, ea, gate.W[0], ew, width)
			}
			if !masked {
				cands = p.topTokens(&dc.ms, &dc.scored, pv.W, ea, gate.W[0], ew, width)
			}
			for _, cand := range cands {
				ni := beamItem{
					tokens:  append(append([]string(nil), item.tokens...), cand.tok),
					logProb: item.logProb + math.Log(cand.p+1e-12),
					st:      next,
					prev:    p.tgt.ID(cand.tok),
				}
				if cand.tok == EosToken {
					ni.done = true
					ni.tokens = ni.tokens[:len(ni.tokens)-1]
				} else if masked {
					ni.gs = p.grammarStep(item.gs, cand.tok)
				}
				candidates = append(candidates, ni)
			}
		}
		if allDone {
			break
		}
		sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].score() > candidates[j].score() })
		if len(candidates) > width {
			candidates = candidates[:width]
		}
		beam = candidates
	}
	return bestHypothesis(beam)
}

// Contextual reports whether the parser carries the multi-turn context
// encoder (Config.Contextual at training time).
func (p *Parser) Contextual() bool { return p.ctxCell != nil }
