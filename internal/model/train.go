package model

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nn"
)

// Train builds vocabularies, optionally pre-trains the decoder language
// model on lmPrograms (synthesized program token sequences), then trains the
// parser with teacher forcing, Adam, and early stopping on validation loss.
// With Config.BatchSize > 1, fit and the LM pre-training process shuffled
// minibatches through the batched B×n kernels, one optimizer step per batch.
func Train(train, val []Pair, lmPrograms [][]string, cfg Config) *Parser {
	p := buildParser(train, lmPrograms, cfg)
	if p.cfg.PretrainLM && len(lmPrograms) > 0 {
		p.pretrainLM(lmPrograms)
	}
	p.fit(train, val)
	return p
}

// buildParser constructs the vocabularies and an untrained parser (shared by
// Train and NewTrainer).
func buildParser(train []Pair, lmPrograms [][]string, cfg Config) *Parser {
	if cfg.EmbedDim == 0 {
		cfg = mergeDefaults(cfg)
	}
	srcSeqs := make([][]string, len(train))
	tgtSeqs := make([][]string, len(train))
	for i := range train {
		srcSeqs[i] = train[i].Src
		tgtSeqs[i] = train[i].Tgt
	}
	// The decoder vocabulary also covers the LM corpus so pre-training and
	// fine-tuning share token ids.
	tgtSeqs = append(tgtSeqs, lmPrograms...)
	src := BuildVocab(srcSeqs, 1)
	tgt := BuildVocab(tgtSeqs, cfg.MinVocabCount)
	return newParser(cfg, src, tgt)
}

func mergeDefaults(cfg Config) Config {
	d := DefaultConfig
	d.Seed = cfg.Seed
	d.BatchSize = cfg.BatchSize
	d.BucketByLength = cfg.BucketByLength
	return d
}

// Trainer exposes single-step teacher-forced training over a persistent
// arena graph: benchmarks and profiling drive Step or StepBatch directly to
// measure the steady state (near-zero allocations once the arena and scratch
// buffers are warm). It performs no shuffling, evaluation or early stopping
// — that orchestration stays in Train.
type Trainer struct {
	p      *Parser
	g      *nn.Graph
	opt    *nn.Adam
	params []*nn.Tensor
}

// NewTrainer builds the vocabularies and an untrained parser ready for
// stepwise training.
func NewTrainer(train []Pair, lmPrograms [][]string, cfg Config) *Trainer {
	p := buildParser(train, lmPrograms, cfg)
	return &Trainer{
		p:      p,
		g:      nn.NewGraphArena(true, nn.NewArena()),
		opt:    nn.NewAdam(p.cfg.LR),
		params: p.Params(),
	}
}

// Step runs one forward/backward/update on the pair and returns its loss.
func (t *Trainer) Step(pair *Pair) float64 {
	t.g.Reset()
	l := t.p.loss(t.g, pair)
	t.g.Backward()
	t.opt.Step(t.params)
	return l
}

// StepBatch runs one forward/backward/update over a padded minibatch through
// the batched B×n kernels and returns the mean per-example loss. Gradients
// average over the batch, so a one-pair StepBatch performs the same update
// as Step on that pair.
func (t *Trainer) StepBatch(pairs []Pair) float64 {
	t.g.Reset()
	l := t.p.lossBatch(t.g, pairs)
	t.g.Backward()
	t.opt.Step(t.params)
	return l
}

// Parser returns the underlying (partially trained) parser.
func (t *Trainer) Parser() *Parser { return t.p }

// pretrainLM trains the decoder as a ThingTalk language model: next-token
// prediction over synthesized programs, with zeroed attention context. The
// decoder embedding, LSTM and output projection carry over to parsing
// (Section 4.2). With BatchSize > 1 each of the LMSteps optimizer steps
// processes one shuffled minibatch through lmLossBatch; otherwise one
// sampled program per step, through the decoder-step helpers shared with
// the parser loss.
func (p *Parser) pretrainLM(programs [][]string) {
	opt := nn.NewAdam(p.cfg.LR)
	params := p.decParams()
	rng := rand.New(rand.NewSource(p.cfg.Seed + 101))
	g := nn.NewGraphArena(true, nn.NewArena())
	steps := p.cfg.LMSteps

	if bs := p.cfg.BatchSize; bs > 1 {
		batch := make([][]string, 0, bs)
		order := rng.Perm(len(programs))
		pos := 0
		for s := 0; s < steps; s++ {
			batch = batch[:0]
			for len(batch) < bs {
				if pos == len(order) {
					rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
					pos = 0
				}
				batch = append(batch, programs[order[pos]])
				pos++
			}
			g.Reset()
			p.lmLossBatch(g, batch)
			g.Backward()
			opt.Step(params)
		}
		return
	}

	for s := 0; s < steps; s++ {
		prog := programs[rng.Intn(len(programs))]
		g.Reset()
		_, c := p.dec.ZeroState(g)
		h := g.NewTensor(1, p.cfg.HiddenDim)
		ctx := g.NewTensor(1, 2*p.cfg.HiddenDim)
		st := decodeState{h: h, c: c, ctx: ctx}
		prev := BosID
		target := append(p.scr.target[:0], prog...)
		target = append(target, EosToken)
		p.scr.target = target
		for _, tok := range target {
			hh, cc := p.decCell(g, st, prev)
			_, pv := p.vocabDist(g, hh, st.ctx, 0)
			idx := p.tgt.ID(tok)
			g.NLLPointerMix(pv, nil, onesGate(g), nil, idx)
			st = decodeState{h: hh, c: cc, ctx: st.ctx}
			prev = idx
		}
		g.Backward()
		opt.Step(params)
	}
}

// fit runs teacher-forced training with early stopping. All intermediate
// tensors of a step live in one arena recycled by Reset, so the steady-state
// step is allocation-free. With BatchSize > 1 each optimizer step (and so
// each unit of MaxSteps/EvalEvery) covers one shuffled minibatch.
func (p *Parser) fit(train, val []Pair) {
	// Without a checkpointer or context fitRun cannot fail.
	_ = p.fitRun(nil, train, val, nil, nil)
}

// fitRun is the fit loop with optional checkpointing (ck) and resume
// (resume, a validated checkpoint or nil) threaded through. Both the plain
// and the checkpointed run walk the identical trajectory: the RNG streams,
// shuffles and optimizer steps are the same whether or not state is being
// recorded, which is what makes a resumed run bit-identical to an
// uninterrupted one. ctx (nil = never canceled) stops training between
// batches after saving a final checkpoint, reported as ErrInterrupted.
func (p *Parser) fitRun(ctx context.Context, train, val []Pair, ck *checkpointer, resume *trainCheckpoint) error {
	opt := nn.NewAdam(p.cfg.LR)
	params := p.Params()
	fitSrc := newCountingSource(p.cfg.Seed + 202)
	rng := rand.New(fitSrc)
	g := nn.NewGraphArena(true, nn.NewArena())

	bestLoss := 1e18
	// best is allocated once at the first snapshot and copied into on every
	// later improvement (the parameter shapes never change mid-training).
	var best [][]float64
	evalEvery := p.cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 2000
	}
	badEvals := 0
	step := 0
	order := rng.Perm(len(train))
	var starts []int

	firstEpoch := 0
	startPos := 0
	if resume != nil {
		if err := resume.apply(p, opt, params, fitSrc, order); err != nil {
			return err
		}
		if resume.haveBest {
			best = copySlices(resume.best)
		}
		bestLoss = resume.bestLoss
		badEvals = resume.badEvals
		step = resume.step
		starts = append([]int(nil), resume.starts...)
		firstEpoch = resume.epoch
		startPos = resume.pos
	}
	resumedMidEpoch := resume != nil && resume.midEpoch

	snapshot := func() {
		if best == nil {
			best = make([][]float64, len(params))
			for i, t := range params {
				best[i] = make([]float64, len(t.W))
			}
		}
		for i, t := range params {
			copy(best[i], t.W)
		}
	}
	restore := func() {
		if best == nil {
			return
		}
		for i, t := range params {
			copy(t.W, best[i])
		}
	}
	// afterStep does the per-optimizer-step bookkeeping (step cap, periodic
	// eval, early stopping) and reports whether training should stop.
	afterStep := func() bool {
		step++
		if p.cfg.MaxSteps > 0 && step >= p.cfg.MaxSteps {
			restoreIfBetter(p, val, bestLoss, restore)
			return true
		}
		if len(val) > 0 && step%evalEvery == 0 {
			vl := p.valLoss(val)
			if vl < bestLoss {
				bestLoss = vl
				badEvals = 0
				snapshot()
			} else {
				badEvals++
				if p.cfg.Patience > 0 && badEvals >= p.cfg.Patience {
					restore()
					return true
				}
			}
		}
		return false
	}
	save := func(epoch, pos int, midEpoch bool) {
		if ck == nil {
			return
		}
		ck.save(captureCheckpoint(p, opt, params, fitSrc, epoch, pos, midEpoch, step, bestLoss, badEvals, best, order, starts))
	}

	bs := max(1, p.cfg.BatchSize)
	if p.ctxCell != nil {
		// Contextual training runs per-example: the batched loss kernels
		// have no context head, and the padded ctx memory layout is decode-
		// only (blocks require an inference graph). B=1 keeps the gradient
		// exact; the batched kernels still serve contextual decoding.
		bs = 1
	}
	// BucketByLength only applies to real minibatches; with bs 1 batchStarts
	// degenerates to 0,1,2,... and draws nothing from rng.
	bucket := p.cfg.BucketByLength && bs > 1
	var batch []Pair
	if bs > 1 {
		batch = make([]Pair, 0, bs)
	}
	if ck != nil && resume == nil {
		// The initial checkpoint pins the post-LM weights so a resumed run
		// never repeats LM pre-training.
		save(0, 0, false)
	}
	for epoch := firstEpoch; epoch < max(1, p.cfg.Epochs); epoch++ {
		pos0 := 0
		if resumedMidEpoch {
			// order and starts came from the checkpoint; re-enter this epoch
			// at the saved batch without re-drawing the shuffle.
			pos0 = startPos
			resumedMidEpoch = false
		} else {
			if epoch != firstEpoch {
				// Finished the previous epoch in this process: boundary
				// checkpoint, taken before the shuffle so a resume replays it.
				save(epoch, 0, false)
			}
			rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			starts = batchStarts(starts[:0], train, order, bs, bucket, rng)
		}
		for bi := pos0; bi < len(starts); bi++ {
			if ctx != nil && ctx.Err() != nil {
				// This epoch's shuffle has already been drawn, so the
				// checkpoint is mid-epoch even at bi == 0.
				save(epoch, bi, true)
				return fmt.Errorf("%w before epoch %d batch %d: %v", ErrInterrupted, epoch, bi, ctx.Err())
			}
			start := starts[bi]
			g.Reset()
			if bs <= 1 {
				p.loss(g, &train[order[start]])
			} else {
				end := min(start+bs, len(order))
				batch = batch[:0]
				for _, idx := range order[start:end] {
					batch = append(batch, train[idx])
				}
				p.lossBatch(g, batch)
			}
			g.Backward()
			opt.Step(params)
			if afterStep() {
				return nil
			}
			if ck != nil && ck.every > 0 && step%ck.every == 0 {
				save(epoch, bi+1, true)
			}
		}
	}
	if len(val) > 0 {
		vl := p.valLoss(val)
		if vl >= bestLoss {
			restore()
		}
	}
	return nil
}

// batchStarts returns this epoch's minibatch start offsets into order.
// Without bucketing that is just 0, bs, 2bs, ... — the pre-existing
// sequential cut. With bucketing, the shuffled order is first stably sorted
// by example length (so equal-length examples keep their shuffled relative
// order and batches pad to near-uniform lengths), then the batch *order* is
// reshuffled so the optimizer still sees short and long batches interleaved
// rather than a length curriculum.
func batchStarts(starts []int, train []Pair, order []int, bs int, bucket bool, rng *rand.Rand) []int {
	if bucket {
		sort.SliceStable(order, func(i, j int) bool {
			return pairLen(&train[order[i]]) < pairLen(&train[order[j]])
		})
	}
	for start := 0; start < len(order); start += bs {
		starts = append(starts, start)
	}
	if bucket {
		rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
	}
	return starts
}

// pairLen is the bucketing key: a batch's padded cost grows with both its
// longest source and its longest target, so examples sort by the sum.
func pairLen(p *Pair) int { return len(p.Src) + len(p.Tgt) }

// PaddingFraction reports the fraction of padded batch rows×positions that
// are padding when order is cut into minibatches of bs (source and target
// sides combined). It quantifies what BucketByLength saves; exported for
// tests and EXPERIMENTS.md bookkeeping.
func PaddingFraction(train []Pair, order []int, bs int) float64 {
	padded, real := 0, 0
	for start := 0; start < len(order); start += bs {
		end := min(start+bs, len(order))
		maxS, maxT := 0, 0
		for _, idx := range order[start:end] {
			maxS = max(maxS, len(train[idx].Src))
			maxT = max(maxT, len(train[idx].Tgt)+1)
			real += len(train[idx].Src) + len(train[idx].Tgt) + 1
		}
		padded += (end - start) * (maxS + maxT)
	}
	if padded == 0 {
		return 0
	}
	return 1 - float64(real)/float64(padded)
}

func restoreIfBetter(p *Parser, val []Pair, bestLoss float64, restore func()) {
	if len(val) == 0 {
		return
	}
	if p.valLoss(val) >= bestLoss {
		restore()
	}
}

// valLoss measures teacher-forced loss on (a sample of) the validation set.
func (p *Parser) valLoss(val []Pair) float64 {
	n := min(len(val), 200)
	total := 0.0
	if p.valG == nil {
		p.valG = nn.NewGraphArena(false, nn.NewArena())
	}
	for i := 0; i < n; i++ {
		p.valG.Reset()
		total += p.loss(p.valG, &val[i])
	}
	return total / float64(n)
}
