package model

import (
	"math/rand"

	"repro/internal/nn"
)

// Train builds vocabularies, optionally pre-trains the decoder language
// model on lmPrograms (synthesized program token sequences), then trains the
// parser with teacher forcing, Adam, and early stopping on validation loss.
func Train(train, val []Pair, lmPrograms [][]string, cfg Config) *Parser {
	p := buildParser(train, lmPrograms, cfg)
	if p.cfg.PretrainLM && len(lmPrograms) > 0 {
		p.pretrainLM(lmPrograms)
	}
	p.fit(train, val)
	return p
}

// buildParser constructs the vocabularies and an untrained parser (shared by
// Train and NewTrainer).
func buildParser(train []Pair, lmPrograms [][]string, cfg Config) *Parser {
	if cfg.EmbedDim == 0 {
		cfg = mergeDefaults(cfg)
	}
	srcSeqs := make([][]string, len(train))
	tgtSeqs := make([][]string, len(train))
	for i := range train {
		srcSeqs[i] = train[i].Src
		tgtSeqs[i] = train[i].Tgt
	}
	// The decoder vocabulary also covers the LM corpus so pre-training and
	// fine-tuning share token ids.
	tgtSeqs = append(tgtSeqs, lmPrograms...)
	src := BuildVocab(srcSeqs, 1)
	tgt := BuildVocab(tgtSeqs, cfg.MinVocabCount)
	return newParser(cfg, src, tgt)
}

func mergeDefaults(cfg Config) Config {
	d := DefaultConfig
	d.Seed = cfg.Seed
	return d
}

// Trainer exposes single-step teacher-forced training over a persistent
// arena graph: benchmarks and profiling drive Step directly to measure the
// steady state (near-zero allocations once the arena and scratch buffers are
// warm). It performs no shuffling, evaluation or early stopping — that
// orchestration stays in Train.
type Trainer struct {
	p      *Parser
	g      *nn.Graph
	opt    *nn.Adam
	params []*nn.Tensor
}

// NewTrainer builds the vocabularies and an untrained parser ready for
// stepwise training.
func NewTrainer(train []Pair, lmPrograms [][]string, cfg Config) *Trainer {
	p := buildParser(train, lmPrograms, cfg)
	return &Trainer{
		p:      p,
		g:      nn.NewGraphArena(true, nn.NewArena()),
		opt:    nn.NewAdam(p.cfg.LR),
		params: p.Params(),
	}
}

// Step runs one forward/backward/update on the pair and returns its loss.
func (t *Trainer) Step(pair *Pair) float64 {
	t.g.Reset()
	l := t.p.loss(t.g, pair)
	t.g.Backward()
	t.opt.Step(t.params)
	return l
}

// Parser returns the underlying (partially trained) parser.
func (t *Trainer) Parser() *Parser { return t.p }

// pretrainLM trains the decoder as a ThingTalk language model: next-token
// prediction over synthesized programs, with zeroed attention context. The
// decoder embedding, LSTM and output projection carry over to parsing
// (Section 4.2).
func (p *Parser) pretrainLM(programs [][]string) {
	opt := nn.NewAdam(p.cfg.LR)
	params := p.decParams()
	rng := rand.New(rand.NewSource(p.cfg.Seed + 101))
	g := nn.NewGraphArena(true, nn.NewArena())
	steps := p.cfg.LMSteps
	for s := 0; s < steps; s++ {
		prog := programs[rng.Intn(len(programs))]
		g.Reset()
		_, c := p.dec.ZeroState(g)
		h := g.NewTensor(1, p.cfg.HiddenDim)
		ctx := g.NewTensor(1, 2*p.cfg.HiddenDim)
		st := decodeState{h: h, c: c, ctx: ctx}
		prev := BosID
		target := append(p.scr.target[:0], prog...)
		target = append(target, EosToken)
		p.scr.target = target
		for _, tok := range target {
			emb := p.decEmb.Lookup(g, prev)
			x := g.ConcatRow(emb, st.ctx)
			hh, cc := p.dec.Step(g, x, st.h, st.c)
			htilde := g.Tanh(p.combLin.Apply(g, g.ConcatRow(hh, st.ctx)))
			pv := g.SoftmaxRow(p.outLin.Apply(g, htilde))
			idx := p.tgt.ID(tok)
			g.NLLPointerMix(pv, nil, onesGate(g), nil, idx)
			st = decodeState{h: hh, c: cc, ctx: st.ctx}
			prev = idx
		}
		g.Backward()
		opt.Step(params)
	}
}

// fit runs teacher-forced training with early stopping. All intermediate
// tensors of a step live in one arena recycled by Reset, so the steady-state
// step is allocation-free.
func (p *Parser) fit(train, val []Pair) {
	opt := nn.NewAdam(p.cfg.LR)
	params := p.Params()
	rng := rand.New(rand.NewSource(p.cfg.Seed + 202))
	g := nn.NewGraphArena(true, nn.NewArena())

	bestLoss := 1e18
	var best [][]float64
	evalEvery := p.cfg.EvalEvery
	if evalEvery <= 0 {
		evalEvery = 2000
	}
	badEvals := 0
	step := 0
	order := rng.Perm(len(train))

	snapshot := func() {
		best = best[:0]
		for _, t := range params {
			best = append(best, append([]float64(nil), t.W...))
		}
	}
	restore := func() {
		if best == nil {
			return
		}
		for i, t := range params {
			copy(t.W, best[i])
		}
	}

	for epoch := 0; epoch < max(1, p.cfg.Epochs); epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			g.Reset()
			p.loss(g, &train[idx])
			g.Backward()
			opt.Step(params)
			step++
			if p.cfg.MaxSteps > 0 && step >= p.cfg.MaxSteps {
				restoreIfBetter(p, val, bestLoss, restore)
				return
			}
			if len(val) > 0 && step%evalEvery == 0 {
				vl := p.valLoss(val)
				if vl < bestLoss {
					bestLoss = vl
					badEvals = 0
					snapshot()
				} else {
					badEvals++
					if p.cfg.Patience > 0 && badEvals >= p.cfg.Patience {
						restore()
						return
					}
				}
			}
		}
	}
	if len(val) > 0 {
		vl := p.valLoss(val)
		if vl >= bestLoss {
			restore()
		}
	}
}

func restoreIfBetter(p *Parser, val []Pair, bestLoss float64, restore func()) {
	if len(val) == 0 {
		return
	}
	if p.valLoss(val) >= bestLoss {
		restore()
	}
}

// valLoss measures teacher-forced loss on (a sample of) the validation set.
func (p *Parser) valLoss(val []Pair) float64 {
	n := len(val)
	if n > 200 {
		n = 200
	}
	total := 0.0
	if p.valG == nil {
		p.valG = nn.NewGraphArena(false, nn.NewArena())
	}
	for i := 0; i < n; i++ {
		p.valG.Reset()
		total += p.loss(p.valG, &val[i])
	}
	return total / float64(n)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
