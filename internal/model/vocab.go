// Package model implements Genie's neural semantic parser (Section 4): a
// sequence-to-sequence network with a BiLSTM encoder, an attentive LSTM
// decoder with input feeding, and the mixed pointer–generator output layer
// that copies free-form parameter words from the input sentence. The decoder
// can be initialized from a ThingTalk language model pre-trained on
// synthesized programs (Section 4.2).
//
// This is the scaled-down CPU substitute for MQAN/decaNLP documented in
// DESIGN.md: the coattention transformer stack is replaced by a single
// BiLSTM, but the components the paper's ablations attribute wins to — the
// pointer-generator, the pre-trained decoder LM, and the data strategy — are
// retained.
package model

import "sort"

// Reserved vocabulary entries.
const (
	UnkToken = "<unk>"
	BosToken = "<s>"
	EosToken = "</s>"
)

// Reserved ids.
const (
	UnkID = 0
	BosID = 1
	EosID = 2
)

// Vocab maps tokens to dense ids.
type Vocab struct {
	tokens []string
	index  map[string]int
}

// BuildVocab collects tokens appearing at least minCount times.
func BuildVocab(sequences [][]string, minCount int) *Vocab {
	counts := map[string]int{}
	for _, seq := range sequences {
		for _, tok := range seq {
			counts[tok]++
		}
	}
	var keep []string
	for tok, n := range counts {
		if n >= minCount {
			keep = append(keep, tok)
		}
	}
	sort.Strings(keep)
	v := &Vocab{
		tokens: append([]string{UnkToken, BosToken, EosToken}, keep...),
		index:  make(map[string]int, len(keep)+3),
	}
	for i, tok := range v.tokens {
		v.index[tok] = i
	}
	return v
}

// newVocabFromTokens rebuilds a vocabulary from its exact token list
// (reserved entries included), preserving ids; snapshot loading depends on
// the order being reproduced bit-for-bit.
func newVocabFromTokens(tokens []string) *Vocab {
	v := &Vocab{
		tokens: tokens,
		index:  make(map[string]int, len(tokens)),
	}
	for i, tok := range tokens {
		v.index[tok] = i
	}
	return v
}

// Size returns the vocabulary size.
func (v *Vocab) Size() int { return len(v.tokens) }

// ID returns the id of a token, or UnkID.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.index[tok]; ok {
		return id
	}
	return UnkID
}

// Has reports whether the token is in vocabulary.
func (v *Vocab) Has(tok string) bool {
	_, ok := v.index[tok]
	return ok
}

// lookup combines Has and ID in one map access (the decode scorer calls it
// once per distinct source word per step).
func (v *Vocab) lookup(tok string) (int, bool) {
	id, ok := v.index[tok]
	return id, ok
}

// Tokens returns the full token list in id order (reserved entries first).
// The grammar compiler consumes it to build the per-vocabulary automaton;
// callers must not mutate the returned slice.
func (v *Vocab) Tokens() []string { return v.tokens }

// Token returns the token of an id.
func (v *Vocab) Token(id int) string {
	if id < 0 || id >= len(v.tokens) {
		return UnkToken
	}
	return v.tokens[id]
}

// Encode maps a sequence to ids.
func (v *Vocab) Encode(seq []string) []int {
	return v.EncodeInto(make([]int, 0, len(seq)), seq)
}

// EncodeInto appends the ids of seq to dst and returns it; training loops
// pass a reused scratch slice to avoid per-step allocation.
func (v *Vocab) EncodeInto(dst []int, seq []string) []int {
	for _, tok := range seq {
		dst = append(dst, v.ID(tok))
	}
	return dst
}
