package model

import (
	"math"
	"testing"
)

// benchPair mirrors the root BenchmarkTrainingStep example.
func benchPair() Pair {
	return Pair{
		Src: []string{"post", "hello", "world", "on", "twitter"},
		Tgt: []string{"now", "=>", "@com.twitter.post", "param:status", "=", `"`, "hello", "world", `"`},
	}
}

// TestTrainerStepSteadyStateAllocs pins the arena property at the model
// level: once the arena, tape and scratch buffers are warm, a full training
// step (encode, decode, pointer loss, backward, Adam) stays within a small
// fixed allocation budget. The pre-arena substrate allocated two slices and
// a closure per op — thousands per step.
func TestTrainerStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	pair := benchPair()
	cfg := Config{EmbedDim: 32, HiddenDim: 48, LR: 1e-3, Epochs: 1,
		EvalEvery: 1 << 30, PointerGen: true, MaxDecodeLen: 16, MinVocabCount: 1, Seed: 1}
	tr := NewTrainer([]Pair{pair}, nil, cfg)
	for i := 0; i < 3; i++ { // warm arena, tape, scratch, Adam moments
		tr.Step(&pair)
	}
	const budget = 8
	if n := testing.AllocsPerRun(50, func() { tr.Step(&pair) }); n > budget {
		t.Errorf("steady-state training step allocates %v, budget %d", n, budget)
	}
}

// TestTrainerStepDropoutStaysInBudget repeats the check with dropout active
// (masks must come from the arena, not per-step makes).
func TestTrainerStepDropoutStaysInBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	pair := benchPair()
	cfg := Config{EmbedDim: 32, HiddenDim: 48, LR: 1e-3, Dropout: 0.1, Epochs: 1,
		EvalEvery: 1 << 30, PointerGen: true, MaxDecodeLen: 16, MinVocabCount: 1, Seed: 1}
	tr := NewTrainer([]Pair{pair}, nil, cfg)
	for i := 0; i < 3; i++ {
		tr.Step(&pair)
	}
	const budget = 8
	if n := testing.AllocsPerRun(50, func() { tr.Step(&pair) }); n > budget {
		t.Errorf("steady-state dropout step allocates %v, budget %d", n, budget)
	}
}

// TestTrainerStepLossDecreases sanity-checks that stepwise training on one
// example actually learns it.
func TestTrainerStepLossDecreases(t *testing.T) {
	pair := benchPair()
	cfg := Config{EmbedDim: 32, HiddenDim: 48, LR: 5e-3, Epochs: 1,
		EvalEvery: 1 << 30, PointerGen: true, MaxDecodeLen: 16, MinVocabCount: 1, Seed: 1}
	tr := NewTrainer([]Pair{pair}, nil, cfg)
	first := tr.Step(&pair)
	var last float64
	for i := 0; i < 60; i++ {
		last = tr.Step(&pair)
	}
	if math.IsNaN(last) || last >= first {
		t.Errorf("stepwise training did not reduce loss: first %g, last %g", first, last)
	}
}

// TestTrainMatchesTrainerMechanics ensures Train (which drives fit's
// internal arena graph) and manual Trainer stepping produce a parser that
// fits the training pair.
func TestTrainMatchesTrainerMechanics(t *testing.T) {
	train, _ := toyPairs()
	p := Train(train, nil, nil, testConfig(7))
	got := p.Parse(train[0].Src)
	if len(got) == 0 {
		t.Fatal("empty parse after training")
	}
}
