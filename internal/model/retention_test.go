package model

import (
	"testing"

	"repro/internal/nn"
)

// fillBufs simulates an encode pass leaving arena tensors in every buffer,
// then shrinks the visible lengths the way grow does on a shorter follow-up
// call, so the test also covers pointers hiding between len and cap.
func fillEncBufs(g *nn.Graph, e *encBufs, n int) {
	for _, buf := range []*[]*nn.Tensor{&e.embs, &e.fhs, &e.bhs, &e.rows} {
		s := grow(buf, n)
		for i := range s {
			s[i] = g.NewTensor(1, 2)
		}
		*buf = (*buf)[:n/2]
	}
}

func assertCleared(t *testing.T, name string, ts []*nn.Tensor) {
	t.Helper()
	full := ts[:cap(ts)]
	for i, p := range full {
		if p != nil {
			t.Errorf("%s[%d] still pins a tensor after release", name, i)
		}
	}
}

// TestReleasedDecodeCtxRetainsNoTensors pins the pool-retention audit fix: a
// decode context returned to its sync.Pool must not keep stale arena-tensor
// pointers alive — the arena recycles those tensors for the next graph
// lease, and a pooled context pinning them both leaks the backing slabs and
// risks aliasing another request's live tensors.
func TestReleasedDecodeCtxRetainsNoTensors(t *testing.T) {
	dc := acquireDecodeCtx()
	fillEncBufs(dc.g, &dc.enc, 6)
	dc.release()

	assertCleared(t, "enc.embs", dc.enc.embs)
	assertCleared(t, "enc.fhs", dc.enc.fhs)
	assertCleared(t, "enc.bhs", dc.enc.bhs)
	assertCleared(t, "enc.rows", dc.enc.rows)
	if dc.g != nil {
		t.Error("released decodeCtx still holds its graph")
	}
}

func TestReleasedBatchDecodeCtxRetainsNoTensors(t *testing.T) {
	dc := acquireBatchDecodeCtx()
	for _, buf := range []*[]*nn.Tensor{&dc.bufs.embs, &dc.bufs.fhs, &dc.bufs.bhs, &dc.bufs.rows} {
		s := grow(buf, 6)
		for i := range s {
			s[i] = dc.g.NewTensor(2, 2)
		}
		*buf = (*buf)[:3]
	}
	dc.release()

	assertCleared(t, "bufs.embs", dc.bufs.embs)
	assertCleared(t, "bufs.fhs", dc.bufs.fhs)
	assertCleared(t, "bufs.bhs", dc.bufs.bhs)
	assertCleared(t, "bufs.rows", dc.bufs.rows)
	if dc.g != nil {
		t.Error("released batchDecodeCtx still holds its graph")
	}
}
