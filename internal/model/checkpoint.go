package model

import (
	"bufio"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"

	"repro/internal/nn"
)

// Training checkpoints make a mid-train kill cost at most EverySteps
// optimizer steps instead of the whole run. A checkpoint records everything
// the fit loop's trajectory depends on — weights, optimizer moments,
// early-stopping state, this epoch's example order and batch offsets, and
// the *positions of both RNG streams* — so a resumed run replays the exact
// value sequence the uninterrupted run would have consumed and lands on
// bit-identical weights.
//
//	magic       "GENIECKP" (8 bytes)
//	version     uint64 (currently 1)
//	fingerprint sha256 over config + training data (mismatch = stale)
//	state       epoch, pos, step, bestLoss, badEvals, best (optional),
//	            weights, Adam t/m/v, order, starts, RNG draw counts
//
// A checkpoint is taken *before* batch pos of epoch: pos 0 means before the
// epoch's shuffle, so resuming replays the shuffle draws themselves.
const (
	checkpointMagic   = "GENIECKP"
	checkpointVersion = 1
)

// ErrInterrupted reports that TrainResumable stopped on context
// cancellation after saving a checkpoint; calling it again with the same
// inputs resumes where it left off.
var ErrInterrupted = errors.New("model: training interrupted")

// CheckpointStore is the persistence surface TrainResumable writes epoch
// checkpoints through; durable.(*KeyStore) satisfies it. Load must return an
// error wrapping fs.ErrNotExist when no checkpoint exists.
type CheckpointStore interface {
	Save(write func(w io.Writer) error) error
	Load(read func(r io.Reader) error) error
	Clear() error
}

// TrainOpts configure resumable training.
type TrainOpts struct {
	// Checkpoint is where epoch checkpoints go; nil trains exactly like
	// Train (no checkpointing).
	Checkpoint CheckpointStore
	// EverySteps is the mid-epoch checkpoint cadence in optimizer steps
	// (0 = checkpoint only at epoch boundaries).
	EverySteps int
	// Logf receives resume/mismatch/save-failure events (nil discards).
	Logf func(format string, args ...any)
}

// TrainResumable is Train with crash recovery: it checkpoints through
// opts.Checkpoint, resumes from a compatible checkpoint when one exists
// (logging "resuming from checkpoint"), and stops early — checkpoint saved,
// ErrInterrupted returned — when ctx is canceled. The resumed trajectory is
// bit-identical to an uninterrupted Train with the same inputs, and the
// checkpoint is cleared once training completes.
func TrainResumable(ctx context.Context, train, val []Pair, lmPrograms [][]string, cfg Config, opts TrainOpts) (*Parser, error) {
	if opts.Checkpoint == nil {
		return Train(train, val, lmPrograms, cfg), nil
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := buildParser(train, lmPrograms, cfg)
	ck := &checkpointer{
		store: opts.Checkpoint,
		every: opts.EverySteps,
		fp:    trainFingerprint(p.cfg, train, val, lmPrograms),
		logf:  logf,
	}

	var resume *trainCheckpoint
	err := opts.Checkpoint.Load(func(r io.Reader) error {
		c, err := readCheckpoint(r)
		if err != nil {
			return err
		}
		resume = c
		return nil
	})
	switch {
	case err == nil:
		if resume.fingerprint != ck.fp {
			logf("model: checkpoint is for a different training recipe or data; starting fresh")
			resume = nil
			_ = opts.Checkpoint.Clear()
		}
	case errors.Is(err, fs.ErrNotExist):
		// No checkpoint: a fresh run.
	default:
		// The store already quarantined what it could; an unreadable
		// checkpoint just means training starts over.
		logf("model: checkpoint unreadable (%v); starting fresh", err)
		resume = nil
	}

	if resume == nil {
		if p.cfg.PretrainLM && len(lmPrograms) > 0 {
			p.pretrainLM(lmPrograms)
		}
	} else {
		// The checkpoint's weights subsume LM pre-training (it ran before the
		// first checkpoint was written), so resume skips straight to fit.
		logf("model: resuming from checkpoint (epoch %d, batch %d, step %d)", resume.epoch, resume.pos, resume.step)
	}
	if err := p.fitRun(ctx, train, val, ck, resume); err != nil {
		return p, err
	}
	if err := opts.Checkpoint.Clear(); err != nil {
		logf("model: clearing completed checkpoint: %v", err)
	}
	return p, nil
}

// trainCheckpoint is the in-memory form of one checkpoint.
type trainCheckpoint struct {
	fingerprint [sha256.Size]byte
	epoch       int  // resume epoch
	pos         int  // resume batch offset into starts
	midEpoch    bool // true: order/starts already drawn, skip the shuffle on resume
	step        int  // optimizer steps taken
	bestLoss    float64
	badEvals    int
	haveBest    bool
	best        [][]float64 // early-stopping weight snapshot (haveBest)
	weights     [][]float64 // live weights, Params() order
	adamT       int
	adamM       [][]float64
	adamV       [][]float64
	order       []int
	starts      []int
	parserDraws uint64 // parser RNG (dropout) stream position
	fitDraws    uint64 // fit RNG (shuffle/bucketing) stream position
}

// checkpointer carries the checkpoint policy through the fit loop.
type checkpointer struct {
	store CheckpointStore
	every int
	fp    [sha256.Size]byte
	logf  func(format string, args ...any)
}

// save persists one checkpoint; failures are logged, not fatal — losing a
// checkpoint must never kill the training run it protects.
func (ck *checkpointer) save(c *trainCheckpoint) {
	c.fingerprint = ck.fp
	err := ck.store.Save(func(w io.Writer) error { return writeCheckpoint(w, c) })
	if err != nil {
		ck.logf("model: checkpoint save failed (training continues): %v", err)
	}
}

// capture assembles a checkpoint for "before batch pos of epoch". midEpoch
// records whether this epoch's shuffle and batch offsets have already been
// drawn (so resume must reuse them) or the checkpoint sits before the
// shuffle (so resume replays it).
func captureCheckpoint(p *Parser, opt *nn.Adam, params []*nn.Tensor, fitSrc *countingSource,
	epoch, pos int, midEpoch bool, step int, bestLoss float64, badEvals int, best [][]float64, order, starts []int) *trainCheckpoint {
	c := &trainCheckpoint{
		epoch:       epoch,
		pos:         pos,
		midEpoch:    midEpoch,
		step:        step,
		bestLoss:    bestLoss,
		badEvals:    badEvals,
		haveBest:    best != nil,
		order:       append([]int(nil), order...),
		starts:      append([]int(nil), starts...),
		parserDraws: p.rngSrc.n,
		fitDraws:    fitSrc.n,
	}
	if best != nil {
		c.best = copySlices(best)
	}
	c.weights = make([][]float64, len(params))
	for i, t := range params {
		c.weights[i] = append([]float64(nil), t.W...)
	}
	c.adamT, c.adamM, c.adamV = opt.State(params)
	return c
}

// apply restores a checkpoint into the live training state. It validates
// every shape before mutating anything, so a failed apply leaves the parser
// untrained and the caller can fall back to a fresh run.
func (c *trainCheckpoint) apply(p *Parser, opt *nn.Adam, params []*nn.Tensor, fitSrc *countingSource, order []int) error {
	if len(c.weights) != len(params) {
		return fmt.Errorf("model: checkpoint holds %d tensors, parser has %d", len(c.weights), len(params))
	}
	for i, t := range params {
		if len(c.weights[i]) != t.Size() {
			return fmt.Errorf("model: checkpoint tensor %d has %d values, parser wants %d", i, len(c.weights[i]), t.Size())
		}
	}
	if c.haveBest {
		if len(c.best) != len(params) {
			return fmt.Errorf("model: checkpoint best snapshot shape mismatch")
		}
		for i, t := range params {
			if len(c.best[i]) != t.Size() {
				return fmt.Errorf("model: checkpoint best snapshot shape mismatch")
			}
		}
	}
	if len(c.order) != len(order) {
		return fmt.Errorf("model: checkpoint order covers %d examples, run has %d", len(c.order), len(order))
	}
	if err := opt.Restore(params, c.adamT, c.adamM, c.adamV); err != nil {
		return err
	}
	for i, t := range params {
		copy(t.W, c.weights[i])
	}
	copy(order, c.order)
	p.rngSrc.forwardTo(c.parserDraws)
	fitSrc.forwardTo(c.fitDraws)
	return nil
}

func copySlices(ss [][]float64) [][]float64 {
	out := make([][]float64, len(ss))
	for i, s := range ss {
		out[i] = append([]float64(nil), s...)
	}
	return out
}

// trainFingerprint hashes everything that pins a training trajectory: the
// merged config (batch size included — writeConfig predates it), and the
// full token content of the train/val/LM sets. A resumed run with any of
// these changed must start fresh, not splice trajectories.
func trainFingerprint(cfg Config, train, val []Pair, lmPrograms [][]string) [sha256.Size]byte {
	h := sha256.New()
	bw := &binWriter{w: bufio.NewWriter(h)}
	writeConfig(bw, cfg, snapshotVersion)
	bw.i64(int64(cfg.BatchSize))
	writeSeqs := func(seqs [][]string) {
		bw.u64(uint64(len(seqs)))
		for _, seq := range seqs {
			bw.u64(uint64(len(seq)))
			for _, tok := range seq {
				bw.str(tok)
			}
		}
	}
	writePairs := func(pairs []Pair) {
		bw.u64(uint64(len(pairs)))
		for i := range pairs {
			writeSeqs([][]string{pairs[i].Src, pairs[i].Tgt})
		}
	}
	writePairs(train)
	writePairs(val)
	writeSeqs(lmPrograms)
	_ = bw.w.Flush()
	var fp [sha256.Size]byte
	h.Sum(fp[:0])
	return fp
}

func writeCheckpoint(w io.Writer, c *trainCheckpoint) error {
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.bytes([]byte(checkpointMagic))
	bw.u64(checkpointVersion)
	bw.bytes(c.fingerprint[:])
	bw.i64(int64(c.epoch))
	bw.i64(int64(c.pos))
	bw.bool(c.midEpoch)
	bw.i64(int64(c.step))
	bw.f64(c.bestLoss)
	bw.i64(int64(c.badEvals))
	bw.bool(c.haveBest)
	writeF64Slices := func(ss [][]float64) {
		bw.u64(uint64(len(ss)))
		for _, s := range ss {
			bw.u64(uint64(len(s)))
			for _, v := range s {
				bw.u64(math.Float64bits(v))
			}
		}
	}
	writeIntSlice := func(s []int) {
		bw.u64(uint64(len(s)))
		for _, v := range s {
			bw.i64(int64(v))
		}
	}
	if c.haveBest {
		writeF64Slices(c.best)
	}
	writeF64Slices(c.weights)
	bw.i64(int64(c.adamT))
	writeF64Slices(c.adamM)
	writeF64Slices(c.adamV)
	writeIntSlice(c.order)
	writeIntSlice(c.starts)
	bw.u64(c.parserDraws)
	bw.u64(c.fitDraws)
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

func readCheckpoint(r io.Reader) (*trainCheckpoint, error) {
	br := &binReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(checkpointMagic))
	br.bytes(magic)
	if br.err != nil {
		return nil, fmt.Errorf("model: reading checkpoint header: %w", br.err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("model: not a training checkpoint (magic %q)", magic)
	}
	if v := br.u64(); v != checkpointVersion {
		return nil, fmt.Errorf("model: unsupported checkpoint version %d", v)
	}
	c := &trainCheckpoint{}
	br.bytes(c.fingerprint[:])
	c.epoch = int(br.i64())
	c.pos = int(br.i64())
	c.midEpoch = br.bool()
	c.step = int(br.i64())
	c.bestLoss = br.f64()
	c.badEvals = int(br.i64())
	c.haveBest = br.bool()
	const maxSlices = 1 << 16
	const maxElems = 1 << 27
	readF64Slices := func() [][]float64 {
		n := br.u64()
		if br.err != nil {
			return nil
		}
		if n > maxSlices {
			br.err = fmt.Errorf("implausible slice count %d", n)
			return nil
		}
		out := make([][]float64, n)
		for i := range out {
			m := br.u64()
			if br.err != nil {
				return nil
			}
			if m > maxElems {
				br.err = fmt.Errorf("implausible slice length %d", m)
				return nil
			}
			out[i] = make([]float64, m)
			for j := range out[i] {
				out[i][j] = math.Float64frombits(br.u64())
			}
		}
		return out
	}
	readIntSlice := func() []int {
		n := br.u64()
		if br.err != nil {
			return nil
		}
		if n > maxElems {
			br.err = fmt.Errorf("implausible slice length %d", n)
			return nil
		}
		out := make([]int, n)
		for i := range out {
			out[i] = int(br.i64())
		}
		return out
	}
	if c.haveBest {
		c.best = readF64Slices()
	}
	c.weights = readF64Slices()
	c.adamT = int(br.i64())
	c.adamM = readF64Slices()
	c.adamV = readF64Slices()
	c.order = readIntSlice()
	c.starts = readIntSlice()
	c.parserDraws = br.u64()
	c.fitDraws = br.u64()
	if br.err != nil {
		return nil, fmt.Errorf("model: reading checkpoint: %w", br.err)
	}
	return c, nil
}
