package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/grammar"
)

// Snapshot format: a versioned little-endian binary stream holding the full
// trained parser — config, both vocabularies, and every weight tensor in
// Params() order. Weights are written as raw IEEE-754 bits, so a save/load
// round trip is bit-identical and a loaded parser decodes exactly like the
// one that was saved. The serving layer (internal/serve) builds its
// skill-library cache on top of these snapshots.
//
//	magic   "GENIEPSR" (8 bytes)
//	version uint64 (currently 4; version 1, 2 and 3 streams still load)
//	config  fixed field order (ints as int64, floats as bits, bools as u8);
//	        version 2 appends BucketByLength, version 4 appends Contextual
//	meta    (version 2) library checksum, generation, note
//	grammar (version 3) calibration fitted flag + threshold, grammar spec
//	        JSON (empty when the parser decodes unmasked), spec checksum
//	vocabs  source then target: count, then length-prefixed tokens
//	params  count, then per tensor: rows, cols, rows*cols float64 bits;
//	        version 4 contextual parsers append the context-encoder tensors
//	        after the base Params() order (newParser sizes them from the
//	        Contextual config bit, so the count check covers them)
const (
	snapshotMagic   = "GENIEPSR"
	snapshotVersion = 4
)

// SnapshotMeta is the provenance block of a snapshot: which skill library
// the parser was trained for (thingpedia.Library.Checksum), the fleet
// generation that produced it, and a free-form note. The fleet control
// plane stamps it before saving so a reloaded snapshot can be matched to
// its library without retraining and surfaced in /skills.
type SnapshotMeta struct {
	LibraryChecksum string
	Generation      uint64
	Note            string
}

// Meta returns the snapshot provenance metadata (zero for parsers trained
// locally or loaded from version-1 snapshots).
func (p *Parser) Meta() SnapshotMeta { return p.meta }

// SetMeta stamps the provenance metadata carried by subsequent Save calls.
func (p *Parser) SetMeta(m SnapshotMeta) { p.meta = m }

// Save writes the parser snapshot to w in the current format.
func (p *Parser) Save(w io.Writer) error { return p.saveVersioned(w, snapshotVersion) }

// saveVersioned writes the snapshot in an older (or the current) format —
// exactly the byte stream that version's Save produced. The back-compat
// fixtures regenerate through it; real saves always use the current version.
func (p *Parser) saveVersioned(w io.Writer, version uint64) error {
	if version < 1 || version > snapshotVersion {
		return fmt.Errorf("model: cannot write snapshot version %d", version)
	}
	if p.cfg.Contextual && version < 4 {
		return fmt.Errorf("model: contextual parsers need snapshot version 4 (asked for %d)", version)
	}
	bw := &binWriter{w: bufio.NewWriter(w)}
	bw.bytes([]byte(snapshotMagic))
	bw.u64(version)
	writeConfig(bw, p.cfg, version)
	if version >= 2 {
		bw.str(p.meta.LibraryChecksum)
		bw.u64(p.meta.Generation)
		bw.str(p.meta.Note)
	}
	if version >= 3 {
		bw.bool(p.calib.Fitted)
		bw.f64(p.calib.Threshold)
		specJSON, checksum := "", ""
		if p.gspec != nil {
			data, err := p.gspec.Marshal()
			if err != nil {
				return fmt.Errorf("model: marshaling grammar spec: %w", err)
			}
			specJSON, checksum = string(data), p.gspec.Checksum()
		}
		bw.str(specJSON)
		bw.str(checksum)
	}
	writeVocab(bw, p.src)
	writeVocab(bw, p.tgt)
	params := p.Params()
	bw.u64(uint64(len(params)))
	for _, t := range params {
		bw.u64(uint64(t.Rows))
		bw.u64(uint64(t.Cols))
		for _, v := range t.W {
			bw.u64(math.Float64bits(v))
		}
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// Load reads a snapshot written by Save and reconstructs the parser. The
// loaded parser is immediately servable: Parse output is bit-identical to
// the saved parser's.
func Load(r io.Reader) (*Parser, error) {
	br := &binReader{r: bufio.NewReader(r)}
	magic := make([]byte, len(snapshotMagic))
	br.bytes(magic)
	if br.err != nil {
		return nil, fmt.Errorf("model: reading snapshot header: %w", br.err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("model: not a parser snapshot (magic %q)", magic)
	}
	version := br.u64()
	if version < 1 || version > snapshotVersion {
		return nil, fmt.Errorf("model: unsupported snapshot version %d (want 1..%d)", version, snapshotVersion)
	}
	cfg := readConfig(br, version)
	var meta SnapshotMeta
	if version >= 2 {
		meta.LibraryChecksum = br.str()
		meta.Generation = br.u64()
		meta.Note = br.str()
	}
	var calib Calibration
	var specJSON, specChecksum string
	if version >= 3 {
		calib.Fitted = br.bool()
		calib.Threshold = br.f64()
		specJSON = br.str()
		specChecksum = br.str()
	}
	src := readVocab(br)
	tgt := readVocab(br)
	if br.err != nil {
		return nil, fmt.Errorf("model: reading snapshot: %w", br.err)
	}
	// Bound the dimensions before newParser sizes tensors off them: a
	// corrupt stream with a valid header must fail cleanly, not allocate
	// gigabytes or panic on a negative make.
	const maxDim = 1 << 16
	if cfg.EmbedDim <= 0 || cfg.EmbedDim > maxDim || cfg.HiddenDim <= 0 || cfg.HiddenDim > maxDim {
		return nil, fmt.Errorf("model: implausible snapshot dimensions embed=%d hidden=%d", cfg.EmbedDim, cfg.HiddenDim)
	}
	if src.Size() < 3 || tgt.Size() < 3 { // <unk>, <s>, </s> at minimum
		return nil, fmt.Errorf("model: snapshot vocabularies too small (%d src, %d tgt)", src.Size(), tgt.Size())
	}
	p := newParser(cfg, src, tgt)
	p.meta = meta
	p.calib = calib
	if specJSON != "" {
		spec, err := grammar.UnmarshalSpec([]byte(specJSON))
		if err != nil {
			return nil, fmt.Errorf("model: reading snapshot grammar spec: %w", err)
		}
		// The checksum pins the automaton the parser was calibrated with; a
		// mismatch means the stream was corrupted or tampered with.
		if got := spec.Checksum(); got != specChecksum {
			return nil, fmt.Errorf("model: snapshot grammar checksum mismatch (stored %s, computed %s)", specChecksum, got)
		}
		// A compile failure is non-fatal: the spec is kept for provenance and
		// the parser decodes unmasked (the automaton is a constraint, not a
		// requirement, and older vocabularies may not cover the library).
		_ = p.SetGrammar(spec)
	}
	params := p.Params()
	if n := br.u64(); int(n) != len(params) {
		return nil, fmt.Errorf("model: snapshot holds %d tensors, parser has %d", n, len(params))
	}
	for i, t := range params {
		rows, cols := int(br.u64()), int(br.u64())
		if br.err != nil {
			return nil, fmt.Errorf("model: reading tensor %d: %w", i, br.err)
		}
		if rows != t.Rows || cols != t.Cols {
			return nil, fmt.Errorf("model: tensor %d is %dx%d in snapshot, %dx%d in parser", i, rows, cols, t.Rows, t.Cols)
		}
		for j := range t.W {
			t.W[j] = math.Float64frombits(br.u64())
		}
	}
	if br.err != nil {
		return nil, fmt.Errorf("model: reading snapshot weights: %w", br.err)
	}
	return p, nil
}

// SaveFile writes the snapshot atomically: to a temp file in the target
// directory, then renamed into place, so a concurrent LoadFile never sees a
// half-written snapshot.
func (p *Parser) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := p.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFile reads a snapshot from disk.
func LoadFile(path string) (*Parser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func writeConfig(bw *binWriter, c Config, version uint64) {
	bw.i64(int64(c.EmbedDim))
	bw.i64(int64(c.HiddenDim))
	bw.f64(c.LR)
	bw.f64(c.Dropout)
	bw.i64(int64(c.Epochs))
	bw.i64(int64(c.MaxSteps))
	bw.i64(int64(c.EvalEvery))
	bw.i64(int64(c.Patience))
	bw.bool(c.PointerGen)
	bw.bool(c.PretrainLM)
	bw.i64(int64(c.LMSteps))
	bw.i64(int64(c.MaxDecodeLen))
	bw.i64(int64(c.MinVocabCount))
	bw.i64(c.Seed)
	if version >= 2 {
		bw.bool(c.BucketByLength)
	}
	if version >= 4 {
		bw.bool(c.Contextual)
	}
}

func readConfig(br *binReader, version uint64) Config {
	var c Config
	c.EmbedDim = int(br.i64())
	c.HiddenDim = int(br.i64())
	c.LR = br.f64()
	c.Dropout = br.f64()
	c.Epochs = int(br.i64())
	c.MaxSteps = int(br.i64())
	c.EvalEvery = int(br.i64())
	c.Patience = int(br.i64())
	c.PointerGen = br.bool()
	c.PretrainLM = br.bool()
	c.LMSteps = int(br.i64())
	c.MaxDecodeLen = int(br.i64())
	c.MinVocabCount = int(br.i64())
	c.Seed = br.i64()
	if version >= 2 {
		c.BucketByLength = br.bool()
	}
	if version >= 4 {
		c.Contextual = br.bool()
	}
	return c
}

func writeVocab(bw *binWriter, v *Vocab) {
	bw.u64(uint64(len(v.tokens)))
	for _, tok := range v.tokens {
		bw.str(tok)
	}
}

func readVocab(br *binReader) *Vocab {
	n := br.u64()
	if br.err != nil {
		return newVocabFromTokens(nil)
	}
	const maxVocab = 1 << 24 // sanity bound against corrupt headers
	if n > maxVocab {
		br.err = fmt.Errorf("implausible vocabulary size %d", n)
		return newVocabFromTokens(nil)
	}
	tokens := make([]string, n)
	for i := range tokens {
		tokens[i] = br.str()
	}
	return newVocabFromTokens(tokens)
}

// binWriter/binReader carry the first error so call sites stay linear.
type binWriter struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (b *binWriter) bytes(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(p)
}

func (b *binWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(b.buf[:], v)
	b.bytes(b.buf[:])
}

func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) bool(v bool) {
	if v {
		b.bytes([]byte{1})
	} else {
		b.bytes([]byte{0})
	}
}

func (b *binWriter) str(s string) {
	b.u64(uint64(len(s)))
	b.bytes([]byte(s))
}

type binReader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

func (b *binReader) bytes(p []byte) {
	if b.err != nil {
		return
	}
	_, b.err = io.ReadFull(b.r, p)
}

func (b *binReader) u64() uint64 {
	b.bytes(b.buf[:])
	if b.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b.buf[:])
}

func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

func (b *binReader) bool() bool {
	var one [1]byte
	b.bytes(one[:])
	return one[0] != 0
}

func (b *binReader) str() string {
	n := b.u64()
	if b.err != nil {
		return ""
	}
	const maxToken = 1 << 20
	if n > maxToken {
		b.err = fmt.Errorf("implausible token length %d", n)
		return ""
	}
	p := make([]byte, n)
	b.bytes(p)
	return string(p)
}

// Dims reports the embedding and hidden sizes (diagnostics and serving
// logs).
func (p *Parser) Dims() (embed, hidden int) { return p.cfg.EmbedDim, p.cfg.HiddenDim }

// VocabSizes reports source and target vocabulary sizes.
func (p *Parser) VocabSizes() (src, tgt int) { return p.src.Size(), p.tgt.Size() }
