package model

import (
	"math/rand"

	"repro/internal/grammar"
	"repro/internal/nn"
	"repro/internal/params"
)

// Config holds the hyperparameters of the parser (Section 4.3, scaled for
// CPU training).
type Config struct {
	EmbedDim  int
	HiddenDim int
	LR        float64
	Dropout   float64
	// Epochs and MaxSteps bound training (whichever is hit first; MaxSteps
	// 0 means unbounded).
	Epochs   int
	MaxSteps int
	// EvalEvery steps, validation loss is measured for early stopping;
	// Patience evaluations without improvement stop training.
	EvalEvery int
	Patience  int
	// PointerGen enables the mixed pointer-generator output (disabling it
	// leaves pure vocabulary generation; free-form parameters then cannot
	// be copied).
	PointerGen bool
	// PretrainLM pre-trains the decoder as a ThingTalk language model on
	// the provided program token sequences before parser training
	// (Section 4.2).
	PretrainLM bool
	LMSteps    int
	// BatchSize is the training minibatch width: fit and pretrainLM process
	// shuffled minibatches of this many examples per optimizer step through
	// the batched B×n kernels, padding each batch to its longest sequence.
	// 0 or 1 keeps the original per-example path (identical trajectories).
	BatchSize int
	// BucketByLength sorts each epoch's shuffled examples by length before
	// cutting minibatches (batch order reshuffled afterwards), so a batch
	// pads to near-uniform sequence lengths and the padded B×n kernels waste
	// far fewer rows on padding. Only consulted when BatchSize > 1; the B=1
	// trajectory is untouched.
	BucketByLength bool
	// MaxDecodeLen bounds greedy decoding.
	MaxDecodeLen int
	// MinVocabCount is the threshold for target vocabulary membership;
	// rarer tokens must be copied.
	MinVocabCount int
	// Contextual adds the multi-turn context encoder: the previous turn's
	// program tokens become a second attended memory with its own pointer
	// head, so follow-up commands can copy arguments from the prior program.
	// Parsers with Contextual false (and contextual parsers decoding an
	// empty context) walk exactly the single-turn graph: the context layers
	// draw their initial weights from a separate derived RNG stream, so the
	// base parameters and the training dropout stream are bit-identical to a
	// non-contextual parser with the same seed.
	Contextual bool
	Seed       int64
}

// DefaultConfig is the configuration used by the experiment harness at test
// scale.
var DefaultConfig = Config{
	EmbedDim:      48,
	HiddenDim:     64,
	LR:            2e-3,
	Dropout:       0.1,
	Epochs:        4,
	EvalEvery:     2000,
	Patience:      4,
	PointerGen:    true,
	PretrainLM:    true,
	LMSteps:       3000,
	MaxDecodeLen:  64,
	MinVocabCount: 2,
}

// maxDecodeLen returns the decode-length bound: MaxDecodeLen when set, else
// DefaultConfig's. Parse and ParseBeam both use it, so the fallback cannot
// drift between the two decode paths.
func (c Config) maxDecodeLen() int {
	if c.MaxDecodeLen > 0 {
		return c.MaxDecodeLen
	}
	return DefaultConfig.MaxDecodeLen
}

// Pair is one training example: a tokenized sentence and the target program
// token sequence. Ctx optionally carries the previous turn's program tokens
// for contextual training; it is ignored (and must be empty for bit-parity
// with single-turn training) unless Config.Contextual is set.
type Pair struct {
	Src []string
	Tgt []string
	Ctx []string
}

// Parser is the trained semantic parser.
type Parser struct {
	cfg Config
	src *Vocab
	tgt *Vocab

	encEmb *nn.Embedding
	fwd    *nn.LSTMCell
	bwd    *nn.LSTMCell

	decEmb  *nn.Embedding
	dec     *nn.LSTMCell
	initLin *nn.Linear // enc final states -> dec initial hidden
	attnLin *nn.Linear // dec hidden -> enc space (2h)
	combLin *nn.Linear // [h; ctx] -> h (the attentional h-tilde)
	outLin  *nn.Linear // h-tilde -> target vocab
	gateLin *nn.Linear // h-tilde -> pointer/generator gate

	// Context-encoder layers (Config.Contextual only, nil otherwise): the
	// previous turn's program tokens, embedded through decEmb, run through
	// ctxCell into an m×h memory attended by a second head.
	ctxCell    *nn.LSTMCell // program-token encoder (e -> h)
	ctxAttnLin *nn.Linear   // h-tilde -> ctx space (h)
	ctxCombLin *nn.Linear   // [h-tilde; cctx] -> h
	ctxGateLin *nn.Linear   // h2 -> context-copy gate

	rng    *rand.Rand
	rngSrc *countingSource // rng's source; draw position checkpointed by TrainResumable
	scr    scratch
	bscr   batchScratch // batched-loss buffers (batch.go); training goroutine only
	valG   *nn.Graph    // lazily built inference graph reused across valLoss calls
	meta   SnapshotMeta // provenance stamped into snapshots (snapshot.go)

	// Constrained decoding and adaptive serving (grammar.go): the grammar
	// spec the parser was trained against, its automaton compiled for this
	// target vocabulary (nil decodes unmasked), and the fitted confidence
	// threshold. Set before serving begins; decode paths read them without
	// locking.
	gspec *grammar.Spec
	auto  *grammar.Automaton
	calib Calibration
}

// scratch holds per-step buffers reused across training steps so that a
// steady-state step performs no slice allocation. It is owned by the single
// training goroutine: a Parser is not safe for concurrent *training*, but
// decoding never touches it — Parse/ParseBeam draw their state from pooled
// per-call decode contexts (decode.go), so one trained Parser serves any
// number of goroutines.
type scratch struct {
	enc     encBufs
	cenc    ctxBufs
	srcIds  []int
	ctxIds  []int
	target  []string
	maskBuf []bool
}

// encBufs holds the per-position tensor slices of one encoder pass. Training
// reuses the parser's copy (inside scratch); every decode call has its own
// (inside its decodeCtx), which is what makes inference concurrency-safe.
//
//genielint:arena-scoped
type encBufs struct {
	embs []*nn.Tensor
	fhs  []*nn.Tensor
	bhs  []*nn.Tensor
	rows []*nn.Tensor
}

// releaseTensors zeroes the retained tensor pointers — full capacity, not
// just the last call's length, because grow reslices without clearing — so a
// pooled decode context releases its arena tensors when its graph lease
// ends.
func (e *encBufs) releaseTensors() {
	clearTensorBuf(e.embs)
	clearTensorBuf(e.fhs)
	clearTensorBuf(e.bhs)
	clearTensorBuf(e.rows)
}

func clearTensorBuf(ts []*nn.Tensor) {
	clear(ts[:cap(ts)])
}

// ctxBufs holds the per-position tensor slices of one context-encoder pass,
// mirroring encBufs for the (unidirectional) previous-program encoder.
//
//genielint:arena-scoped
type ctxBufs struct {
	embs []*nn.Tensor
	hs   []*nn.Tensor
	rows []*nn.Tensor
}

func (c *ctxBufs) releaseTensors() {
	clearTensorBuf(c.embs)
	clearTensorBuf(c.hs)
	clearTensorBuf(c.rows)
}

// grow returns a length-n slice backed by *buf, growing it as needed; the
// training and decode loops use it to position tape-retained slices out of
// one reusable backing per step.
func grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n, n+n/2)
	}
	*buf = (*buf)[:n]
	return *buf
}

// countingSource wraps the stdlib RNG source and counts draws, so a training
// checkpoint can record the stream position and a resumed run can fast-forward
// to it — the resumed trajectory consumes the identical value sequence an
// uninterrupted run would have.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// forwardTo burns draws until the source has produced n values. Int63 and
// Uint64 advance the underlying stdlib source by exactly one step each
// (Int63 is Uint64 masked), so replaying the count restores the position
// regardless of which mix of calls produced it.
func (c *countingSource) forwardTo(n uint64) {
	for c.n < n {
		c.Uint64()
	}
}

func newParser(cfg Config, src, tgt *Vocab) *Parser {
	csrc := newCountingSource(cfg.Seed)
	rng := rand.New(csrc)
	e, h := cfg.EmbedDim, cfg.HiddenDim
	p := &Parser{
		cfg:     cfg,
		src:     src,
		tgt:     tgt,
		encEmb:  nn.NewEmbedding(src.Size(), e, rng),
		fwd:     nn.NewLSTMCell(e, h, rng),
		bwd:     nn.NewLSTMCell(e, h, rng),
		decEmb:  nn.NewEmbedding(tgt.Size(), e, rng),
		dec:     nn.NewLSTMCell(e+2*h, h, rng),
		initLin: nn.NewLinear(2*h, h, rng),
		attnLin: nn.NewLinear(h, 2*h, rng),
		combLin: nn.NewLinear(3*h, h, rng),
		outLin:  nn.NewLinear(h, tgt.Size(), rng),
		gateLin: nn.NewLinear(h, 1, rng),
		rng:     rng,
		rngSrc:  csrc,
	}
	if cfg.Contextual {
		// A separate derived stream keeps the base init draws — and with
		// them the subsequent training dropout stream positions — identical
		// to a non-contextual parser with the same seed.
		crng := rand.New(rand.NewSource(params.DeriveSeed(cfg.Seed, "ctx-encoder", 0)))
		p.ctxCell = nn.NewLSTMCell(e, h, crng)
		p.ctxAttnLin = nn.NewLinear(h, h, crng)
		p.ctxCombLin = nn.NewLinear(2*h, h, crng)
		p.ctxGateLin = nn.NewLinear(h, 1, crng)
	}
	return p
}

// Params returns all trainable tensors. Context-encoder parameters (when
// present) come last, so the snapshot tensor order of a non-contextual
// parser is a prefix of the contextual one.
func (p *Parser) Params() []*nn.Tensor {
	var out []*nn.Tensor
	out = append(out, p.encEmb.Params()...)
	out = append(out, p.fwd.Params()...)
	out = append(out, p.bwd.Params()...)
	out = append(out, p.decParams()...)
	if p.ctxCell != nil {
		out = append(out, p.ctxCell.Params()...)
		out = append(out, p.ctxAttnLin.Params()...)
		out = append(out, p.ctxCombLin.Params()...)
		out = append(out, p.ctxGateLin.Params()...)
	}
	return out
}

// decParams are the parameters shared with the pre-trained language model.
func (p *Parser) decParams() []*nn.Tensor {
	var out []*nn.Tensor
	out = append(out, p.decEmb.Params()...)
	out = append(out, p.dec.Params()...)
	out = append(out, p.initLin.Params()...)
	out = append(out, p.attnLin.Params()...)
	out = append(out, p.combLin.Params()...)
	out = append(out, p.outLin.Params()...)
	out = append(out, p.gateLin.Params()...)
	return out
}

// encode runs the bidirectional encoder, returning the memory matrix
// (len×2h) and the concatenated final states (1×2h). The per-position
// tensor slices come from the caller's encBufs and are valid until the next
// encode call over the same bufs (the graph's tape only retains the rows
// slice until Backward/Reset, which always precedes the next step).
//
//genielint:returns-arena
func (p *Parser) encode(g *nn.Graph, enc *encBufs, srcIds []int) (H *nn.Tensor, final *nn.Tensor) {
	n := len(srcIds)
	embs := grow(&enc.embs, n)
	for i, id := range srcIds {
		embs[i] = g.Dropout(p.encEmb.Lookup(g, id), p.cfg.Dropout, p.rng)
	}
	fh, fc := p.fwd.ZeroState(g)
	fhs := grow(&enc.fhs, n)
	for i := 0; i < n; i++ {
		fh, fc = p.fwd.Step(g, embs[i], fh, fc)
		fhs[i] = fh
	}
	bh, bc := p.bwd.ZeroState(g)
	bhs := grow(&enc.bhs, n)
	for i := n - 1; i >= 0; i-- {
		bh, bc = p.bwd.Step(g, embs[i], bh, bc)
		bhs[i] = bh
	}
	rows := grow(&enc.rows, n)
	for i := 0; i < n; i++ {
		rows[i] = g.ConcatRow(fhs[i], bhs[i])
	}
	H = g.RowsToMatrix(rows)
	final = g.ConcatRow(fh, bh)
	return H, final
}

// decodeState carries the decoder recurrence.
//
//genielint:arena-scoped
type decodeState struct {
	h, c *nn.Tensor
	ctx  *nn.Tensor
}

//genielint:returns-arena
func (p *Parser) initDecode(g *nn.Graph, final *nn.Tensor) decodeState {
	h := g.Tanh(p.initLin.Apply(g, final))
	_, c := p.dec.ZeroState(g)
	ctx := g.NewTensor(1, 2*p.cfg.HiddenDim)
	return decodeState{h: h, c: c, ctx: ctx}
}

// decCell advances the decoder LSTM over the previous target token with
// input feeding: the recurrence shared by the parser step (which then
// attends for a fresh context) and the LM pass (which keeps a zero context).
//
//genielint:returns-arena
func (p *Parser) decCell(g *nn.Graph, st decodeState, prev int) (h, c *nn.Tensor) {
	emb := p.decEmb.Lookup(g, prev)
	x := g.ConcatRow(emb, st.ctx)
	return p.dec.Step(g, x, st.h, st.c)
}

// vocabDist computes the attentional h-tilde and the vocabulary distribution
// from a decoder state and context — the output half of the decoder step,
// shared by the parser step and the LM pass. rate is the dropout applied to
// h-tilde (the LM pass trains without it).
//
//genielint:returns-arena
func (p *Parser) vocabDist(g *nn.Graph, h, ctx *nn.Tensor, rate float64) (htilde, pv *nn.Tensor) {
	htilde = g.Tanh(p.combLin.Apply(g, g.ConcatRow(h, ctx)))
	htilde = g.Dropout(htilde, rate, p.rng)
	pv = g.SoftmaxRow(p.outLin.Apply(g, htilde))
	return htilde, pv
}

// step advances the decoder one token: prev is the previous target token id.
// It returns the vocabulary distribution, the attention weights, the
// pointer gate, and the next state.
//
//genielint:returns-arena
func (p *Parser) step(g *nn.Graph, st decodeState, prev int, H *nn.Tensor) (pv, alpha, gate *nn.Tensor, next decodeState) {
	h, c := p.decCell(g, st, prev)
	q := p.attnLin.Apply(g, h)
	var ctx *nn.Tensor
	alpha, ctx = g.AttendSoftmaxContext(q, H)
	htilde, pv := p.vocabDist(g, h, ctx, p.cfg.Dropout)
	gate = g.Sigmoid(p.gateLin.Apply(g, htilde))
	return pv, alpha, gate, decodeState{h: h, c: c, ctx: ctx}
}

// encodeCtx runs the previous-program encoder: context tokens are embedded
// through the decoder embedding (they are target-language tokens) and folded
// by ctxCell into an m×h memory for the second attention head.
//
//genielint:returns-arena
func (p *Parser) encodeCtx(g *nn.Graph, bufs *ctxBufs, ctxIds []int) *nn.Tensor {
	n := len(ctxIds)
	embs := grow(&bufs.embs, n)
	for i, id := range ctxIds {
		embs[i] = g.Dropout(p.decEmb.Lookup(g, id), p.cfg.Dropout, p.rng)
	}
	h, c := p.ctxCell.ZeroState(g)
	hs := grow(&bufs.hs, n)
	for i := 0; i < n; i++ {
		h, c = p.ctxCell.Step(g, embs[i], h, c)
		hs[i] = h
	}
	rows := grow(&bufs.rows, n)
	copy(rows, hs)
	return g.RowsToMatrix(rows)
}

// stepCtx is the contextual decoder step: the single-turn step through the
// attentional h-tilde (including its dropout draw), then a second attention
// over the context memory C whose summary refines h-tilde before the output
// and gate projections. beta is the context attention and cgate the
// context-copy gate that splits copy mass between source and context.
//
//genielint:returns-arena
func (p *Parser) stepCtx(g *nn.Graph, st decodeState, prev int, H, C *nn.Tensor) (pv, alpha, beta, gate, cgate *nn.Tensor, next decodeState) {
	h, c := p.decCell(g, st, prev)
	q := p.attnLin.Apply(g, h)
	var ctx *nn.Tensor
	alpha, ctx = g.AttendSoftmaxContext(q, H)
	htilde := g.Tanh(p.combLin.Apply(g, g.ConcatRow(h, ctx)))
	htilde = g.Dropout(htilde, p.cfg.Dropout, p.rng)
	q2 := p.ctxAttnLin.Apply(g, htilde)
	var cctx *nn.Tensor
	beta, cctx = g.AttendSoftmaxContext(q2, C)
	h2 := g.Tanh(p.ctxCombLin.Apply(g, g.ConcatRow(htilde, cctx)))
	pv = g.SoftmaxRow(p.outLin.Apply(g, h2))
	gate = g.Sigmoid(p.gateLin.Apply(g, h2))
	cgate = g.Sigmoid(p.ctxGateLin.Apply(g, h2))
	return pv, alpha, beta, gate, cgate, decodeState{h: h, c: c, ctx: ctx}
}

// loss computes the teacher-forced loss of one pair. All per-step slices
// (source ids, target tokens, per-token copy masks) come from the parser's
// scratch so a steady-state training step allocates nothing.
func (p *Parser) loss(g *nn.Graph, pair *Pair) float64 {
	if p.ctxCell != nil && len(pair.Ctx) > 0 {
		return p.lossCtx(g, pair)
	}
	p.scr.srcIds = p.src.EncodeInto(p.scr.srcIds[:0], pair.Src)
	H, final := p.encode(g, &p.scr.enc, p.scr.srcIds)
	st := p.initDecode(g, final)
	prev := BosID
	total := 0.0
	target := append(p.scr.target[:0], pair.Tgt...)
	target = append(target, EosToken)
	p.scr.target = target
	// maskBuf backs one copy mask per target token; the tape retains each
	// sub-slice until Backward, so they share one growing buffer rather than
	// one allocation per token.
	mb := p.scr.maskBuf[:0]
	for _, tok := range target {
		pv, alpha, gate, next := p.step(g, st, prev, H)
		vocabIdx := -1
		if p.tgt.Has(tok) {
			vocabIdx = p.tgt.ID(tok)
		}
		if p.cfg.PointerGen {
			start := len(mb)
			for _, s := range pair.Src {
				mb = append(mb, s == tok)
			}
			mask := mb[start:len(mb):len(mb)]
			total += g.NLLPointerMix(pv, alpha, gate, mask, vocabIdx)
		} else {
			idx := vocabIdx
			if idx < 0 {
				idx = UnkID
			}
			total += g.NLLPointerMix(pv, alpha, onesGate(g), nil, idx)
		}
		st = next
		prev = p.tgt.ID(tok)
	}
	p.scr.maskBuf = mb
	return total / float64(len(target))
}

// lossCtx is the teacher-forced loss of a contextual pair: the previous
// turn's program is encoded as a second memory, each step attends both, and
// the pointer mixture splits copy mass between source and context tokens.
func (p *Parser) lossCtx(g *nn.Graph, pair *Pair) float64 {
	p.scr.srcIds = p.src.EncodeInto(p.scr.srcIds[:0], pair.Src)
	p.scr.ctxIds = p.tgt.EncodeInto(p.scr.ctxIds[:0], pair.Ctx)
	H, final := p.encode(g, &p.scr.enc, p.scr.srcIds)
	C := p.encodeCtx(g, &p.scr.cenc, p.scr.ctxIds)
	st := p.initDecode(g, final)
	prev := BosID
	total := 0.0
	target := append(p.scr.target[:0], pair.Tgt...)
	target = append(target, EosToken)
	p.scr.target = target
	mb := p.scr.maskBuf[:0]
	for _, tok := range target {
		pv, alpha, beta, gate, cgate, next := p.stepCtx(g, st, prev, H, C)
		vocabIdx := -1
		if p.tgt.Has(tok) {
			vocabIdx = p.tgt.ID(tok)
		}
		if p.cfg.PointerGen {
			start := len(mb)
			for _, s := range pair.Src {
				mb = append(mb, s == tok)
			}
			srcMask := mb[start:len(mb):len(mb)]
			cstart := len(mb)
			for _, c := range pair.Ctx {
				mb = append(mb, c == tok)
			}
			ctxMask := mb[cstart:len(mb):len(mb)]
			total += g.NLLPointerMixCtx(pv, alpha, beta, gate, cgate, srcMask, ctxMask, vocabIdx)
		} else {
			idx := vocabIdx
			if idx < 0 {
				idx = UnkID
			}
			total += g.NLLPointerMix(pv, nil, onesGate(g), nil, idx)
		}
		st = next
		prev = p.tgt.ID(tok)
	}
	p.scr.maskBuf = mb
	return total / float64(len(target))
}

// onesGate returns a constant gate of 1 (pure generation); it has no
// parameter behind it, which is exactly the -pointer ablation.
//
//genielint:returns-arena
func onesGate(g *nn.Graph) *nn.Tensor {
	t := g.NewTensor(1, 1)
	t.W[0] = 1
	return t
}
