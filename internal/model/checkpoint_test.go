package model

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"strings"
	"sync"
	"testing"
)

// memCheckpoints is an in-memory CheckpointStore with a save hook, so tests
// can interrupt training at an exact checkpoint.
type memCheckpoints struct {
	mu     sync.Mutex
	data   []byte
	saves  int
	onSave func(saves int)
}

func (m *memCheckpoints) Save(write func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		return err
	}
	m.mu.Lock()
	m.data = buf.Bytes()
	m.saves++
	n := m.saves
	cb := m.onSave
	m.mu.Unlock()
	if cb != nil {
		cb(n)
	}
	return nil
}

func (m *memCheckpoints) Load(read func(io.Reader) error) error {
	m.mu.Lock()
	data := m.data
	m.mu.Unlock()
	if data == nil {
		return fmt.Errorf("no checkpoint: %w", fs.ErrNotExist)
	}
	return read(bytes.NewReader(data))
}

func (m *memCheckpoints) Clear() error {
	m.mu.Lock()
	m.data = nil
	m.mu.Unlock()
	return nil
}

func checkpointPairs() (train, val []Pair, lm [][]string) {
	verbs := []string{"turn", "set", "make", "switch", "dim"}
	objs := []string{"light", "fan", "heater", "screen"}
	for i := 0; i < 40; i++ {
		v, o := verbs[i%len(verbs)], objs[i%len(objs)]
		src := []string{v, "the", o, fmt.Sprintf("v%d", i%7)}
		tgt := []string{"@io." + o, "." + v, "param:", fmt.Sprintf("v%d", i%7)}
		if i%3 == 0 {
			src = append(src, "now")
			tgt = append(tgt, "now")
		}
		p := Pair{Src: src, Tgt: tgt}
		if i%8 == 7 {
			val = append(val, p)
		} else {
			train = append(train, p)
		}
		lm = append(lm, tgt)
	}
	return train, val, lm
}

func checkpointConfig(batch int) Config {
	return Config{
		EmbedDim:      16,
		HiddenDim:     20,
		LR:            2e-3,
		Dropout:       0.1, // nonzero so the parser RNG stream matters
		Epochs:        3,
		EvalEvery:     9,
		PointerGen:    true,
		PretrainLM:    true,
		LMSteps:       25,
		BatchSize:     batch,
		MaxDecodeLen:  16,
		MinVocabCount: 1,
		Seed:          42,
	}
}

func paramsEqual(t *testing.T, a, b *Parser) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param count %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if len(pa[i].W) != len(pb[i].W) {
			t.Fatalf("tensor %d size %d vs %d", i, len(pa[i].W), len(pb[i].W))
		}
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatalf("tensor %d element %d differs: %v vs %v (trajectory not bit-identical)",
					i, j, pa[i].W[j], pb[i].W[j])
			}
		}
	}
}

// TestResumeBitIdentity kills training at a checkpoint and verifies the
// resumed run lands on weights bit-identical to an uninterrupted run — the
// tentpole guarantee: a crash costs wall-clock, never trajectory.
func TestResumeBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		name        string
		batch       int
		bucket      bool
		interruptAt int // after this many checkpoint saves
	}{
		{"batch1-midEpoch", 1, false, 3},
		{"batch4-bucketed-midEpoch", 4, true, 2},
		{"batch4-later", 4, false, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			train, val, lm := checkpointPairs()
			cfg := checkpointConfig(tc.batch)
			cfg.BucketByLength = tc.bucket

			reference := Train(train, val, lm, cfg)

			store := &memCheckpoints{}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			store.onSave = func(saves int) {
				if saves == tc.interruptAt {
					cancel()
				}
			}
			_, err := TrainResumable(ctx, train, val, lm, cfg, TrainOpts{Checkpoint: store, EverySteps: 7})
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("interrupted run: err = %v, want ErrInterrupted", err)
			}
			store.mu.Lock()
			store.onSave = nil
			store.mu.Unlock()

			var logbuf bytes.Buffer
			resumed, err := TrainResumable(context.Background(), train, val, lm, cfg, TrainOpts{
				Checkpoint: store,
				EverySteps: 7,
				Logf:       func(f string, a ...any) { fmt.Fprintf(&logbuf, f+"\n", a...) },
			})
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !strings.Contains(logbuf.String(), "resuming from checkpoint") {
				t.Fatalf("resumed run did not log resume: %q", logbuf.String())
			}
			paramsEqual(t, reference, resumed)
			if store.data != nil {
				t.Fatal("checkpoint not cleared after completion")
			}
		})
	}
}

// TestResumeSurvivesDoubleKill interrupts, resumes, interrupts again, and
// resumes to completion — checkpoints must compose, not just survive one
// crash.
func TestResumeSurvivesDoubleKill(t *testing.T) {
	train, val, lm := checkpointPairs()
	cfg := checkpointConfig(4)
	reference := Train(train, val, lm, cfg)

	store := &memCheckpoints{}
	for _, killAt := range []int{2, 5} {
		target := store.saves + killAt
		ctx, cancel := context.WithCancel(context.Background())
		store.onSave = func(saves int) {
			if saves >= target {
				cancel()
			}
		}
		_, err := TrainResumable(ctx, train, val, lm, cfg, TrainOpts{Checkpoint: store, EverySteps: 5})
		cancel()
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("kill at +%d saves: err = %v, want ErrInterrupted", killAt, err)
		}
	}
	store.onSave = nil
	resumed, err := TrainResumable(context.Background(), train, val, lm, cfg, TrainOpts{Checkpoint: store, EverySteps: 5})
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	paramsEqual(t, reference, resumed)
}

// TestResumeFingerprintMismatch changes the data under a checkpoint; the
// resumed run must detect it and train fresh rather than splice trajectories.
func TestResumeFingerprintMismatch(t *testing.T) {
	train, val, lm := checkpointPairs()
	cfg := checkpointConfig(1)

	store := &memCheckpoints{}
	ctx, cancel := context.WithCancel(context.Background())
	store.onSave = func(saves int) {
		if saves == 2 {
			cancel()
		}
	}
	_, err := TrainResumable(ctx, train, val, lm, cfg, TrainOpts{Checkpoint: store, EverySteps: 5})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	store.onSave = nil

	// Same store, different seed: the checkpoint no longer applies.
	cfg2 := cfg
	cfg2.Seed = 99
	var logbuf bytes.Buffer
	got, err := TrainResumable(context.Background(), train, val, lm, cfg2, TrainOpts{
		Checkpoint: store,
		Logf:       func(f string, a ...any) { fmt.Fprintf(&logbuf, f+"\n", a...) },
	})
	if err != nil {
		t.Fatalf("mismatched resume: %v", err)
	}
	if !strings.Contains(logbuf.String(), "different training recipe") {
		t.Fatalf("expected fingerprint-mismatch log, got %q", logbuf.String())
	}
	paramsEqual(t, Train(train, val, lm, cfg2), got)
}

// TestResumeCorruptCheckpoint feeds garbage bytes; training must fall back
// to a fresh run, not fail.
func TestResumeCorruptCheckpoint(t *testing.T) {
	train, val, lm := checkpointPairs()
	cfg := checkpointConfig(1)
	store := &memCheckpoints{data: []byte("not a checkpoint")}
	got, err := TrainResumable(context.Background(), train, val, lm, cfg, TrainOpts{Checkpoint: store})
	if err != nil {
		t.Fatalf("TrainResumable: %v", err)
	}
	paramsEqual(t, Train(train, val, lm, cfg), got)
}

// TestNilCheckpointStoreMatchesTrain pins TrainResumable's no-op path.
func TestNilCheckpointStoreMatchesTrain(t *testing.T) {
	train, val, lm := checkpointPairs()
	cfg := checkpointConfig(4)
	got, err := TrainResumable(context.Background(), train, val, lm, cfg, TrainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	paramsEqual(t, Train(train, val, lm, cfg), got)
}
