package model

import (
	"math"
	"sort"

	"repro/internal/nn"
)

// Parse greedily decodes the program token sequence for a sentence. Tokens
// may be copied verbatim from the input via the pointer mechanism, so the
// output can contain words outside the target vocabulary (unquoted free-form
// parameters).
func (p *Parser) Parse(words []string) []string {
	g := nn.NewGraph(false)
	srcIds := p.src.Encode(words)
	H, final := p.encode(g, srcIds)
	st := p.initDecode(g, final)
	prev := BosID
	var out []string
	maxLen := p.cfg.MaxDecodeLen
	if maxLen <= 0 {
		maxLen = 64
	}
	for t := 0; t < maxLen; t++ {
		pv, alpha, gate, next := p.step(g, st, prev, H)
		tok := p.bestToken(pv, alpha, gate, words)
		if tok == EosToken {
			break
		}
		out = append(out, tok)
		st = next
		prev = p.tgt.ID(tok)
	}
	return out
}

// bestToken mixes the generation and copy distributions and returns the
// argmax token.
func (p *Parser) bestToken(pv, alpha, gate *nn.Tensor, words []string) string {
	g := gate.W[0]
	if !p.cfg.PointerGen {
		g = 1
	}
	bestTok := EosToken
	bestP := math.Inf(-1)
	// Generation path over the vocabulary (skip <unk> and <s>).
	for id := 2; id < p.tgt.Size(); id++ {
		prob := g * pv.W[id]
		if copyMass := p.copyMass(alpha, words, p.tgt.Token(id)); copyMass > 0 {
			prob += (1 - g) * copyMass
		}
		if prob > bestP {
			bestP = prob
			bestTok = p.tgt.Token(id)
		}
	}
	if !p.cfg.PointerGen {
		return bestTok
	}
	// Copy path for out-of-vocabulary source tokens.
	seen := map[string]bool{}
	for i, w := range words {
		if p.tgt.Has(w) || seen[w] {
			continue
		}
		seen[w] = true
		prob := (1 - g) * p.copyMassAt(alpha, words, w, i)
		if prob > bestP {
			bestP = prob
			bestTok = w
		}
	}
	return bestTok
}

func (p *Parser) copyMass(alpha *nn.Tensor, words []string, tok string) float64 {
	var m float64
	for i, w := range words {
		if w == tok {
			m += alpha.W[i]
		}
	}
	return m
}

func (p *Parser) copyMassAt(alpha *nn.Tensor, words []string, tok string, from int) float64 {
	var m float64
	for i := from; i < len(words); i++ {
		if words[i] == tok {
			m += alpha.W[i]
		}
	}
	return m
}

// beamItem is one hypothesis during beam decoding.
type beamItem struct {
	tokens  []string
	logProb float64
	st      decodeState
	prev    int
	done    bool
}

// ParseBeam decodes with a fixed-width beam and returns the best complete
// hypothesis (falling back to greedy behavior at width 1).
func (p *Parser) ParseBeam(words []string, width int) []string {
	if width <= 1 {
		return p.Parse(words)
	}
	g := nn.NewGraph(false)
	srcIds := p.src.Encode(words)
	H, final := p.encode(g, srcIds)
	beam := []beamItem{{st: p.initDecode(g, final), prev: BosID}}
	maxLen := p.cfg.MaxDecodeLen
	if maxLen <= 0 {
		maxLen = 64
	}
	for t := 0; t < maxLen; t++ {
		var candidates []beamItem
		allDone := true
		for _, item := range beam {
			if item.done {
				candidates = append(candidates, item)
				continue
			}
			allDone = false
			pv, alpha, gate, next := p.step(g, item.st, item.prev, H)
			for _, cand := range p.topTokens(pv, alpha, gate, words, width) {
				ni := beamItem{
					tokens:  append(append([]string(nil), item.tokens...), cand.tok),
					logProb: item.logProb + math.Log(cand.p+1e-12),
					st:      next,
					prev:    p.tgt.ID(cand.tok),
				}
				if cand.tok == EosToken {
					ni.done = true
					ni.tokens = ni.tokens[:len(ni.tokens)-1]
				}
				candidates = append(candidates, ni)
			}
		}
		if allDone {
			break
		}
		sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].logProb > candidates[j].logProb })
		if len(candidates) > width {
			candidates = candidates[:width]
		}
		beam = candidates
	}
	best := beam[0]
	for _, item := range beam {
		if item.done && !best.done {
			best = item
			continue
		}
		if item.done == best.done && item.logProb > best.logProb {
			best = item
		}
	}
	return best.tokens
}

type scoredToken struct {
	tok string
	p   float64
}

func (p *Parser) topTokens(pv, alpha, gate *nn.Tensor, words []string, k int) []scoredToken {
	g := gate.W[0]
	if !p.cfg.PointerGen {
		g = 1
	}
	var all []scoredToken
	for id := 2; id < p.tgt.Size(); id++ {
		tok := p.tgt.Token(id)
		prob := g * pv.W[id]
		if cm := p.copyMass(alpha, words, tok); cm > 0 {
			prob += (1 - g) * cm
		}
		all = append(all, scoredToken{tok: tok, p: prob})
	}
	if p.cfg.PointerGen {
		seen := map[string]bool{}
		for i, w := range words {
			if p.tgt.Has(w) || seen[w] {
				continue
			}
			seen[w] = true
			all = append(all, scoredToken{tok: w, p: (1 - g) * p.copyMassAt(alpha, words, w, i)})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].p > all[j].p })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
