package model

import (
	"math"
	"sort"
	"sync"

	"repro/internal/grammar"
	"repro/internal/nn"
)

// inferGraphs pools arena-backed inference graphs across all parsers: arena
// buckets are keyed by tensor size, so graphs recycle cleanly between models
// of different dimensions.
var inferGraphs = nn.NewGraphPool()

// decodeCtx is the per-call state of one Parse/ParseBeam invocation: an
// inference graph drawn from the shared pool plus every scratch buffer the
// decode loop needs. Parse acquires one, decodes, and releases it, so a
// single trained Parser serves any number of goroutines with near-zero
// steady-state allocation. Nothing decode-time lives on the Parser itself.
//
//genielint:arena-scoped
type decodeCtx struct {
	g      *nn.Graph
	enc    encBufs
	cs     ctxScratch
	srcIds []int
	scored []scoredToken
	ms     mixScorer
	ls     grammar.LegalSet
	lc     grammar.LegalCache
}

var decodeCtxs = sync.Pool{New: func() any { return new(decodeCtx) }}

func acquireDecodeCtx() *decodeCtx {
	dc := decodeCtxs.Get().(*decodeCtx)
	dc.g = inferGraphs.Get()
	return dc
}

// release returns the graph (resetting its arena) and the scratch buffers to
// their pools. Tensors produced during the call are invalid afterwards, so
// callers must copy anything that outlives the decode before releasing. The
// tensor-pointer buffers are zeroed first: the arena recycles those tensors
// for the next lease, and a pooled context must not pin (or accidentally
// alias) another request's live tensors through stale pointers.
func (dc *decodeCtx) release() {
	dc.enc.releaseTensors()
	dc.cs.cenc.releaseTensors()
	inferGraphs.Put(dc.g)
	dc.g = nil
	decodeCtxs.Put(dc)
}

// Parse greedily decodes the program token sequence for a sentence. Tokens
// may be copied verbatim from the input via the pointer mechanism, so the
// output can contain words outside the target vocabulary (unquoted free-form
// parameters). Parse is safe for concurrent use: all decode state lives in a
// pooled per-call context, and the only steady-state allocation is the
// returned token slice.
func (p *Parser) Parse(words []string) []string {
	if len(words) == 0 {
		return nil
	}
	out, _ := p.parseGreedyScored(words)
	return out
}

// ParseScored is Parse (width <= 1) or ParseBeam with the winning
// hypothesis's length-normalized log-probability alongside its tokens. The
// score is comparable across parsers trained on different libraries, which
// is what the fleet router's fallback uses to pick a shard for a request
// that does not name a skill. Like Parse, it is safe for concurrent use.
func (p *Parser) ParseScored(words []string, width int) ([]string, float64) {
	if len(words) == 0 {
		return nil, math.Inf(-1)
	}
	if width <= 1 {
		return p.parseGreedyScored(words)
	}
	best := p.beamDecode(words, width)
	return best.tokens, best.score()
}

// parseGreedyScored is the greedy decode loop of Parse, accumulating each
// emitted token's mixed probability into the hypothesis log-probability
// (same per-token factors the beam scores with).
func (p *Parser) parseGreedyScored(words []string) ([]string, float64) {
	dc := acquireDecodeCtx()
	defer dc.release()
	g := dc.g
	dc.srcIds = p.src.EncodeInto(dc.srcIds[:0], words)
	H, final := p.encode(g, &dc.enc, dc.srcIds)
	st := p.initDecode(g, final)
	prev := BosID
	out := make([]string, 0, 16)
	logProb := 0.0
	done := false
	maxLen := p.cfg.maxDecodeLen()
	gs := p.grammarStart()
	for t := 0; t < maxLen; t++ {
		pv, alpha, gate, next := p.step(g, st, prev, H)
		var tok string
		var prob float64
		picked := false
		if gs != nil {
			if mt, mp, ok := p.maskedBest(&dc.ms, &dc.ls, &dc.lc, gs, maskedBudget(maxLen, t), pv.W, alpha.W, gate.W[0], words); ok {
				tok, prob, picked = mt, mp, true
			} else {
				// Empty mask (cannot happen for a well-formed automaton,
				// kept as a defensive fallback): decode the rest unmasked.
				gs = nil
			}
		}
		if !picked {
			tok, prob = p.bestTokenScored(&dc.ms, pv.W, alpha.W, gate.W[0], words)
		}
		logProb += math.Log(prob + 1e-12)
		if tok == EosToken {
			done = true
			break
		}
		out = append(out, tok)
		st = next
		prev = p.tgt.ID(tok)
		gs = p.grammarStep(gs, tok)
	}
	return out, lengthNormScore(logProb, len(out), done)
}

// mixSlot is one distinct source word of the sentence being decoded: its
// target-vocabulary id (or -1 when it can only be produced by copying) and
// the total attention mass over its source positions this step.
type mixSlot struct {
	word string
	id   int32
	mass float64
}

// mixScorer fuses the pointer-mix argmax: instead of rescanning the sentence
// once per vocabulary entry (O(V·S) string compares per decode step, the
// dominant cost at small vocabularies), prepare indexes the sentence's
// distinct words once per step — total copy mass per word, accumulated in
// source-position order exactly like the unfused scan — and marks their
// vocabulary ids in a sparse id->slot table, so the vocabulary pass does one
// O(1) lookup per entry and the whole mixed-distribution scan is O(V+S).
// The scorer lives in the pooled decode contexts; mark stays all-zero
// between prepare/release pairs, so a pooled context serves parsers of any
// vocabulary size.
type mixScorer struct {
	mark  []int32 // target-vocab id -> slot index + 1
	slots []mixSlot
}

// prepare indexes words and one step's attention row alpha. Call release
// before the next prepare.
func (ms *mixScorer) prepare(tgt *Vocab, words []string, alpha []float64) {
	ms.slots = ms.slots[:0]
	if len(ms.mark) < tgt.Size() {
		ms.mark = make([]int32, tgt.Size())
	}
	for i, w := range words {
		if id, ok := tgt.lookup(w); ok {
			if s := ms.mark[id]; s != 0 {
				ms.slots[s-1].mass += alpha[i]
				continue
			}
			ms.slots = append(ms.slots, mixSlot{word: w, id: int32(id), mass: alpha[i]})
			ms.mark[id] = int32(len(ms.slots))
			continue
		}
		dup := false
		for j := range ms.slots {
			if ms.slots[j].id < 0 && ms.slots[j].word == w {
				ms.slots[j].mass += alpha[i]
				dup = true
				break
			}
		}
		if !dup {
			ms.slots = append(ms.slots, mixSlot{word: w, id: -1, mass: alpha[i]})
		}
	}
}

// release restores the all-zero mark invariant (touching only the entries
// prepare set).
func (ms *mixScorer) release() {
	for i := range ms.slots {
		if id := ms.slots[i].id; id >= 0 {
			ms.mark[id] = 0
		}
	}
}

// bestToken mixes the generation and copy distributions and returns the
// argmax token. pv and alpha are one decoder step's vocabulary-distribution
// and attention rows (raw slices, so the batched decoder can pass rows of
// its stacked tensors); alpha covers at least len(words) positions.
func (p *Parser) bestToken(ms *mixScorer, pv, alpha []float64, gate float64, words []string) string {
	tok, _ := p.bestTokenScored(ms, pv, alpha, gate, words)
	return tok
}

// bestTokenScored is bestToken plus the winner's mixed probability.
func (p *Parser) bestTokenScored(ms *mixScorer, pv, alpha []float64, gate float64, words []string) (string, float64) {
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	ms.prepare(p.tgt, words, alpha)
	defer ms.release()
	bestTok := EosToken
	bestP := math.Inf(-1)
	// Generation path over the vocabulary (skip <unk> and <s>), with the
	// copy mass of in-vocabulary source words mixed in via the O(1) mark
	// lookup.
	for id := 2; id < p.tgt.Size(); id++ {
		prob := g * pv[id]
		if s := ms.mark[id]; s != 0 {
			if m := ms.slots[s-1].mass; m > 0 {
				prob += (1 - g) * m
			}
		}
		if prob > bestP {
			bestP = prob
			bestTok = p.tgt.Token(id)
		}
	}
	if !p.cfg.PointerGen {
		return bestTok, bestP
	}
	// Copy path for out-of-vocabulary source tokens (slots preserve first-
	// occurrence order, matching the unfused scan).
	for i := range ms.slots {
		s := &ms.slots[i]
		if s.id >= 0 {
			continue
		}
		prob := (1 - g) * s.mass
		if prob > bestP {
			bestP = prob
			bestTok = s.word
		}
	}
	return bestTok, bestP
}

// beamItem is one hypothesis during beam decoding. gs is the hypothesis's
// grammar state (nil when decoding unmasked); grammar states are immutable
// under Step, so forked hypotheses share their parent's state safely.
type beamItem struct {
	tokens  []string
	logProb float64
	st      decodeState
	prev    int
	done    bool
	gs      *grammar.State
}

// lengthNormScore is the length-normalized log-probability used for both
// pruning and final selection, shared by the sequential and batched beam.
// logProb accumulates one factor per decoded token plus, for finished
// hypotheses, the </s> factor; dividing by that count keeps long programs
// competitive with short ones. Ranking by raw cumulative log-probability
// systematically favored truncated programs — every extra token can only
// lower the sum.
func lengthNormScore(logProb float64, ntokens int, done bool) float64 {
	if done {
		ntokens++
	}
	if ntokens == 0 {
		return logProb
	}
	return logProb / float64(ntokens)
}

func (it *beamItem) score() float64 { return lengthNormScore(it.logProb, len(it.tokens), it.done) }

// bestHypIndex returns the index of a beam's winner: complete hypotheses
// beat incomplete ones, ties broken by length-normalized score. It is the
// single selection rule shared by the sequential and batched beams, so the
// ranking cannot drift between them.
func bestHypIndex(n int, done func(int) bool, score func(int) float64) int {
	best := 0
	for i := 0; i < n; i++ {
		if done(i) && !done(best) {
			best = i
			continue
		}
		if done(i) == done(best) && score(i) > score(best) {
			best = i
		}
	}
	return best
}

// bestHypothesis returns the beam's winner.
func bestHypothesis(beam []beamItem) beamItem {
	return beam[bestHypIndex(len(beam),
		func(i int) bool { return beam[i].done },
		func(i int) float64 { return beam[i].score() })]
}

// ParseBeam decodes with a fixed-width beam and returns the best complete
// hypothesis (falling back to greedy behavior at width 1). Hypotheses are
// pruned and selected by length-normalized log-probability. Like Parse, it
// is safe for concurrent use.
func (p *Parser) ParseBeam(words []string, width int) []string {
	if len(words) == 0 {
		return nil
	}
	if width <= 1 {
		return p.Parse(words)
	}
	return p.beamDecode(words, width).tokens
}

// beamDecode runs the beam search and returns the winning hypothesis
// (tokens plus accumulated log-probability), shared by ParseBeam and
// ParseScored.
func (p *Parser) beamDecode(words []string, width int) beamItem {
	dc := acquireDecodeCtx()
	defer dc.release()
	g := dc.g
	dc.srcIds = p.src.EncodeInto(dc.srcIds[:0], words)
	H, final := p.encode(g, &dc.enc, dc.srcIds)
	beam := []beamItem{{st: p.initDecode(g, final), prev: BosID, gs: p.grammarStart()}}
	maxLen := p.cfg.maxDecodeLen()
	for t := 0; t < maxLen; t++ {
		var candidates []beamItem
		allDone := true
		for _, item := range beam {
			if item.done {
				candidates = append(candidates, item)
				continue
			}
			allDone = false
			pv, alpha, gate, next := p.step(g, item.st, item.prev, H)
			var cands []scoredToken
			masked := false
			if item.gs != nil {
				cands, masked = p.maskedTop(&dc.ms, &dc.ls, &dc.lc, item.gs, maskedBudget(maxLen, t), &dc.scored, pv.W, alpha.W, gate.W[0], words, width)
			}
			if !masked {
				cands = p.topTokens(&dc.ms, &dc.scored, pv.W, alpha.W, gate.W[0], words, width)
			}
			for _, cand := range cands {
				ni := beamItem{
					tokens:  append(append([]string(nil), item.tokens...), cand.tok),
					logProb: item.logProb + math.Log(cand.p+1e-12),
					st:      next,
					prev:    p.tgt.ID(cand.tok),
				}
				if cand.tok == EosToken {
					ni.done = true
					ni.tokens = ni.tokens[:len(ni.tokens)-1]
				} else if masked {
					ni.gs = p.grammarStep(item.gs, cand.tok)
				}
				candidates = append(candidates, ni)
			}
		}
		if allDone {
			break
		}
		sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].score() > candidates[j].score() })
		if len(candidates) > width {
			candidates = candidates[:width]
		}
		beam = candidates
	}
	return bestHypothesis(beam)
}

type scoredToken struct {
	tok string
	p   float64
}

// topTokens returns the k most probable next tokens under the mixed
// pointer–generator distribution, through the same fused O(V+S) scan as
// bestTokenScored. pv and alpha are one step's distribution rows as in
// bestToken; the backing comes from *scored (a reusable decode-context
// buffer) and is valid until the next call over the same buffer.
func (p *Parser) topTokens(ms *mixScorer, scored *[]scoredToken, pv, alpha []float64, gate float64, words []string, k int) []scoredToken {
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	ms.prepare(p.tgt, words, alpha)
	defer ms.release()
	all := (*scored)[:0]
	for id := 2; id < p.tgt.Size(); id++ {
		prob := g * pv[id]
		if s := ms.mark[id]; s != 0 {
			if m := ms.slots[s-1].mass; m > 0 {
				prob += (1 - g) * m
			}
		}
		all = append(all, scoredToken{tok: p.tgt.Token(id), p: prob})
	}
	if p.cfg.PointerGen {
		for i := range ms.slots {
			s := &ms.slots[i]
			if s.id >= 0 {
				continue
			}
			all = append(all, scoredToken{tok: s.word, p: (1 - g) * s.mass})
		}
	}
	*scored = all
	sort.SliceStable(all, func(i, j int) bool { return all[i].p > all[j].p })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
