package model

import (
	"math"
	"sort"
	"sync"

	"repro/internal/nn"
)

// inferGraphs pools arena-backed inference graphs across all parsers: arena
// buckets are keyed by tensor size, so graphs recycle cleanly between models
// of different dimensions.
var inferGraphs = nn.NewGraphPool()

// decodeCtx is the per-call state of one Parse/ParseBeam invocation: an
// inference graph drawn from the shared pool plus every scratch buffer the
// decode loop needs. Parse acquires one, decodes, and releases it, so a
// single trained Parser serves any number of goroutines with near-zero
// steady-state allocation. Nothing decode-time lives on the Parser itself.
type decodeCtx struct {
	g      *nn.Graph
	enc    encBufs
	srcIds []int
	scored []scoredToken
}

var decodeCtxs = sync.Pool{New: func() any { return new(decodeCtx) }}

func acquireDecodeCtx() *decodeCtx {
	dc := decodeCtxs.Get().(*decodeCtx)
	dc.g = inferGraphs.Get()
	return dc
}

// release returns the graph (resetting its arena) and the scratch buffers to
// their pools. Tensors produced during the call are invalid afterwards, so
// callers must copy anything that outlives the decode before releasing.
func (dc *decodeCtx) release() {
	inferGraphs.Put(dc.g)
	dc.g = nil
	decodeCtxs.Put(dc)
}

// Parse greedily decodes the program token sequence for a sentence. Tokens
// may be copied verbatim from the input via the pointer mechanism, so the
// output can contain words outside the target vocabulary (unquoted free-form
// parameters). Parse is safe for concurrent use: all decode state lives in a
// pooled per-call context, and the only steady-state allocation is the
// returned token slice.
func (p *Parser) Parse(words []string) []string {
	if len(words) == 0 {
		return nil
	}
	dc := acquireDecodeCtx()
	defer dc.release()
	g := dc.g
	dc.srcIds = p.src.EncodeInto(dc.srcIds[:0], words)
	H, final := p.encode(g, &dc.enc, dc.srcIds)
	st := p.initDecode(g, final)
	prev := BosID
	out := make([]string, 0, 16)
	maxLen := p.cfg.maxDecodeLen()
	for t := 0; t < maxLen; t++ {
		pv, alpha, gate, next := p.step(g, st, prev, H)
		tok := p.bestToken(pv.W, alpha.W, gate.W[0], words)
		if tok == EosToken {
			break
		}
		out = append(out, tok)
		st = next
		prev = p.tgt.ID(tok)
	}
	return out
}

// bestToken mixes the generation and copy distributions and returns the
// argmax token. pv and alpha are one decoder step's vocabulary-distribution
// and attention rows (raw slices, so the batched decoder can pass rows of
// its stacked tensors); alpha covers at least len(words) positions.
func (p *Parser) bestToken(pv, alpha []float64, gate float64, words []string) string {
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	bestTok := EosToken
	bestP := math.Inf(-1)
	// Generation path over the vocabulary (skip <unk> and <s>).
	for id := 2; id < p.tgt.Size(); id++ {
		prob := g * pv[id]
		if copyMass := p.copyMass(alpha, words, p.tgt.Token(id)); copyMass > 0 {
			prob += (1 - g) * copyMass
		}
		if prob > bestP {
			bestP = prob
			bestTok = p.tgt.Token(id)
		}
	}
	if !p.cfg.PointerGen {
		return bestTok
	}
	// Copy path for out-of-vocabulary source tokens.
	for i, w := range words {
		if p.tgt.Has(w) || seenEarlier(words, i) {
			continue
		}
		prob := (1 - g) * p.copyMassAt(alpha, words, w, i)
		if prob > bestP {
			bestP = prob
			bestTok = w
		}
	}
	return bestTok
}

// seenEarlier reports whether words[i] already occurred before position i;
// sentences are short, so the scan beats allocating a set per decode step.
func seenEarlier(words []string, i int) bool {
	for j := 0; j < i; j++ {
		if words[j] == words[i] {
			return true
		}
	}
	return false
}

func (p *Parser) copyMass(alpha []float64, words []string, tok string) float64 {
	var m float64
	for i, w := range words {
		if w == tok {
			m += alpha[i]
		}
	}
	return m
}

func (p *Parser) copyMassAt(alpha []float64, words []string, tok string, from int) float64 {
	var m float64
	for i := from; i < len(words); i++ {
		if words[i] == tok {
			m += alpha[i]
		}
	}
	return m
}

// beamItem is one hypothesis during beam decoding.
type beamItem struct {
	tokens  []string
	logProb float64
	st      decodeState
	prev    int
	done    bool
}

// lengthNormScore is the length-normalized log-probability used for both
// pruning and final selection, shared by the sequential and batched beam.
// logProb accumulates one factor per decoded token plus, for finished
// hypotheses, the </s> factor; dividing by that count keeps long programs
// competitive with short ones. Ranking by raw cumulative log-probability
// systematically favored truncated programs — every extra token can only
// lower the sum.
func lengthNormScore(logProb float64, ntokens int, done bool) float64 {
	if done {
		ntokens++
	}
	if ntokens == 0 {
		return logProb
	}
	return logProb / float64(ntokens)
}

func (it *beamItem) score() float64 { return lengthNormScore(it.logProb, len(it.tokens), it.done) }

// bestHypIndex returns the index of a beam's winner: complete hypotheses
// beat incomplete ones, ties broken by length-normalized score. It is the
// single selection rule shared by the sequential and batched beams, so the
// ranking cannot drift between them.
func bestHypIndex(n int, done func(int) bool, score func(int) float64) int {
	best := 0
	for i := 0; i < n; i++ {
		if done(i) && !done(best) {
			best = i
			continue
		}
		if done(i) == done(best) && score(i) > score(best) {
			best = i
		}
	}
	return best
}

// bestHypothesis returns the beam's winner.
func bestHypothesis(beam []beamItem) beamItem {
	return beam[bestHypIndex(len(beam),
		func(i int) bool { return beam[i].done },
		func(i int) float64 { return beam[i].score() })]
}

// ParseBeam decodes with a fixed-width beam and returns the best complete
// hypothesis (falling back to greedy behavior at width 1). Hypotheses are
// pruned and selected by length-normalized log-probability. Like Parse, it
// is safe for concurrent use.
func (p *Parser) ParseBeam(words []string, width int) []string {
	if len(words) == 0 {
		return nil
	}
	if width <= 1 {
		return p.Parse(words)
	}
	dc := acquireDecodeCtx()
	defer dc.release()
	g := dc.g
	dc.srcIds = p.src.EncodeInto(dc.srcIds[:0], words)
	H, final := p.encode(g, &dc.enc, dc.srcIds)
	beam := []beamItem{{st: p.initDecode(g, final), prev: BosID}}
	maxLen := p.cfg.maxDecodeLen()
	for t := 0; t < maxLen; t++ {
		var candidates []beamItem
		allDone := true
		for _, item := range beam {
			if item.done {
				candidates = append(candidates, item)
				continue
			}
			allDone = false
			pv, alpha, gate, next := p.step(g, item.st, item.prev, H)
			for _, cand := range p.topTokens(&dc.scored, pv.W, alpha.W, gate.W[0], words, width) {
				ni := beamItem{
					tokens:  append(append([]string(nil), item.tokens...), cand.tok),
					logProb: item.logProb + math.Log(cand.p+1e-12),
					st:      next,
					prev:    p.tgt.ID(cand.tok),
				}
				if cand.tok == EosToken {
					ni.done = true
					ni.tokens = ni.tokens[:len(ni.tokens)-1]
				}
				candidates = append(candidates, ni)
			}
		}
		if allDone {
			break
		}
		sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].score() > candidates[j].score() })
		if len(candidates) > width {
			candidates = candidates[:width]
		}
		beam = candidates
	}
	return bestHypothesis(beam).tokens
}

type scoredToken struct {
	tok string
	p   float64
}

// topTokens returns the k most probable next tokens under the mixed
// pointer–generator distribution. pv and alpha are one step's distribution
// rows as in bestToken; the backing comes from *scored (a reusable decode-
// context buffer) and is valid until the next call over the same buffer.
func (p *Parser) topTokens(scored *[]scoredToken, pv, alpha []float64, gate float64, words []string, k int) []scoredToken {
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	all := (*scored)[:0]
	for id := 2; id < p.tgt.Size(); id++ {
		tok := p.tgt.Token(id)
		prob := g * pv[id]
		if cm := p.copyMass(alpha, words, tok); cm > 0 {
			prob += (1 - g) * cm
		}
		all = append(all, scoredToken{tok: tok, p: prob})
	}
	if p.cfg.PointerGen {
		for i, w := range words {
			if p.tgt.Has(w) || seenEarlier(words, i) {
				continue
			}
			all = append(all, scoredToken{tok: w, p: (1 - g) * p.copyMassAt(alpha, words, w, i)})
		}
	}
	*scored = all
	sort.SliceStable(all, func(i, j int) bool { return all[i].p > all[j].p })
	if len(all) > k {
		all = all[:k]
	}
	return all
}
