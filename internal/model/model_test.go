package model

import (
	"strings"
	"testing"
)

// toyPairs builds a tiny synthetic parsing task: map command sentences to
// program-like token sequences, with a value word that must be copied.
func toyPairs() ([]Pair, []Pair) {
	values := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
		"golf", "hotel", "india", "juliet", "kilo", "lima"}
	verbs := []struct {
		nl string
		fn string
	}{
		{"tweet", "@twitter.post"},
		{"email", "@gmail.send"},
		{"note", "@notes.create"},
	}
	var train, val []Pair
	for i, v := range values {
		for _, vb := range verbs {
			p := Pair{
				Src: []string{vb.nl, v, "now"},
				Tgt: []string{"now", "=>", vb.fn, "param:text", "=", `"`, v, `"`},
			}
			if i < len(values)-2 {
				train = append(train, p)
			} else {
				val = append(val, p)
			}
		}
	}
	return train, val
}

func testConfig(seed int64) Config {
	return Config{
		EmbedDim:      24,
		HiddenDim:     32,
		LR:            5e-3,
		Dropout:       0,
		Epochs:        30,
		EvalEvery:     100000, // disable mid-training eval for speed
		PointerGen:    true,
		PretrainLM:    false,
		MaxDecodeLen:  16,
		MinVocabCount: 4, // value words stay OOV and must be copied
		Seed:          seed,
	}
}

func TestParserLearnsToyTaskWithCopying(t *testing.T) {
	train, val := toyPairs()
	p := Train(train, nil, nil, testConfig(1))
	correct := 0
	for _, pair := range val {
		got := p.Parse(pair.Src)
		if strings.Join(got, " ") == strings.Join(pair.Tgt, " ") {
			correct++
		}
	}
	// Held-out value words never appeared in training; only the pointer
	// mechanism can produce them.
	if correct < len(val)*2/3 {
		for _, pair := range val {
			t.Logf("src=%v got=%v want=%v", pair.Src, p.Parse(pair.Src), pair.Tgt)
		}
		t.Fatalf("copy generalization too weak: %d/%d", correct, len(val))
	}
}

func TestParserWithoutPointerFailsOnUnseenValues(t *testing.T) {
	train, val := toyPairs()
	cfg := testConfig(2)
	cfg.PointerGen = false
	p := Train(train, nil, nil, cfg)
	correct := 0
	for _, pair := range val {
		if strings.Join(p.Parse(pair.Src), " ") == strings.Join(pair.Tgt, " ") {
			correct++
		}
	}
	if correct > len(val)/2 {
		t.Errorf("without the pointer mechanism unseen values should not be producible, got %d/%d", correct, len(val))
	}
}

func TestLMPretrainingRuns(t *testing.T) {
	train, val := toyPairs()
	cfg := testConfig(3)
	cfg.PretrainLM = true
	cfg.LMSteps = 200
	cfg.Epochs = 10
	var lm [][]string
	for _, p := range train {
		lm = append(lm, p.Tgt)
	}
	p := Train(train, val, lm, cfg)
	// Sanity: the parser still decodes something program-shaped.
	out := p.Parse(train[0].Src)
	if len(out) == 0 || out[0] != "now" {
		t.Errorf("unexpected decode after LM pretraining: %v", out)
	}
}

func TestBeamAtLeastMatchesGreedyShape(t *testing.T) {
	train, _ := toyPairs()
	p := Train(train, nil, nil, testConfig(4))
	src := train[0].Src
	greedy := p.Parse(src)
	beam := p.ParseBeam(src, 4)
	if len(beam) == 0 {
		t.Fatal("beam decode empty")
	}
	if strings.Join(greedy, " ") != strings.Join(p.ParseBeam(src, 1), " ") {
		t.Error("beam width 1 should equal greedy")
	}
}

func TestVocab(t *testing.T) {
	v := BuildVocab([][]string{{"a", "b", "a"}, {"a", "c"}}, 2)
	if !v.Has("a") || v.Has("b") || v.Has("c") {
		t.Errorf("min-count filtering wrong: %+v", v.tokens)
	}
	if v.ID("a") == UnkID || v.ID("zzz") != UnkID {
		t.Error("ID lookup wrong")
	}
	if v.Token(v.ID("a")) != "a" {
		t.Error("round trip wrong")
	}
	if v.Token(999) != UnkToken {
		t.Error("out of range should be unk")
	}
	ids := v.Encode([]string{"a", "zzz"})
	if ids[0] == UnkID || ids[1] != UnkID {
		t.Error("Encode wrong")
	}
}

func TestEarlyStoppingRestoresBest(t *testing.T) {
	train, val := toyPairs()
	cfg := testConfig(5)
	cfg.EvalEvery = 50
	cfg.Patience = 2
	cfg.Epochs = 40
	p := Train(train, val, nil, cfg)
	// Training must have completed without degenerating: the greedy output
	// on a training example is exact.
	pair := train[0]
	if strings.Join(p.Parse(pair.Src), " ") != strings.Join(pair.Tgt, " ") {
		t.Errorf("training example not fit after early stopping: %v", p.Parse(pair.Src))
	}
}
