package model

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// toyDialoguePairs builds the multi-turn toy task: every first turn is the
// toyPairs command, and every follow-up ("also <verb> it") carries the first
// turn's program as Ctx and must copy the value word out of it — the value
// never appears in the follow-up sentence, so only the context pointer can
// produce it.
func toyDialoguePairs() ([]Pair, []Pair) {
	train, val := toyPairs()
	followVerbs := map[string]string{
		"tweet": "@twitter.post",
		"email": "@gmail.send",
		"note":  "@notes.create",
	}
	withFollowups := func(pairs []Pair) []Pair {
		out := make([]Pair, 0, 2*len(pairs))
		for _, pr := range pairs {
			out = append(out, pr)
			value := pr.Src[1]
			for nl, fn := range followVerbs {
				if nl == pr.Src[0] {
					continue
				}
				out = append(out, Pair{
					Src: []string{"also", nl, "it"},
					Tgt: []string{"now", "=>", fn, "param:text", "=", `"`, value, `"`},
					Ctx: pr.Tgt,
				})
			}
		}
		return out
	}
	return withFollowups(train), withFollowups(val)
}

// sharedCtxToy trains one contextual parser on the multi-turn toy task,
// shared by every contextual test (training dominates the cost).
var sharedCtxToy struct {
	once sync.Once
	p    *Parser
}

func trainedCtxToyParser() *Parser {
	sharedCtxToy.once.Do(func() {
		train, _ := toyDialoguePairs()
		cfg := testConfig(11)
		cfg.Contextual = true
		sharedCtxToy.p = Train(train, nil, nil, cfg)
	})
	return sharedCtxToy.p
}

// TestContextualInitKeepsSingleTurnBitIdentical is the parity guarantee from
// the config doc: flipping Config.Contextual must not perturb the base
// initialization or the single-turn training trajectory, so a contextual and
// a non-contextual parser trained identically decode bit-identically on
// single-turn input. (The context layers draw from a separate derived RNG
// stream and receive zero gradient when no pair carries a context.)
func TestContextualInitKeepsSingleTurnBitIdentical(t *testing.T) {
	train, val := toyPairs()
	base := Train(train, nil, nil, testConfig(5))
	cfg := testConfig(5)
	cfg.Contextual = true
	ctx := Train(train, nil, nil, cfg)
	if !ctx.Contextual() {
		t.Fatal("Contextual config did not build a contextual parser")
	}
	for _, pr := range append(train, val...) {
		a, as := base.ParseScored(pr.Src, 1)
		b, bs := ctx.ParseScored(pr.Src, 1)
		if strings.Join(a, " ") != strings.Join(b, " ") || as != bs {
			t.Fatalf("single-turn decode drifted with Contextual on: %v (%v) != %v (%v)", a, as, b, bs)
		}
		c, cs := ctx.ParseContextScored(pr.Src, nil, 1)
		if strings.Join(b, " ") != strings.Join(c, " ") || bs != cs {
			t.Fatalf("ParseContextScored(nil ctx) != ParseScored: %v (%v) != %v (%v)", b, bs, c, cs)
		}
	}
}

// TestParseContextDelegatesOnNonContextualParser: a parser trained without
// the context encoder routes ParseContext* straight to the single-turn path
// even when a context is supplied.
func TestParseContextDelegatesOnNonContextualParser(t *testing.T) {
	p := trainedToyParser()
	if p.Contextual() {
		t.Fatal("toy parser unexpectedly contextual")
	}
	src := []string{"tweet", "alpha", "now"}
	ctx := []string{"now", "=>", "@gmail.send"}
	a, as := p.ParseScored(src, 1)
	b, bs := p.ParseContextScored(src, ctx, 1)
	if strings.Join(a, " ") != strings.Join(b, " ") || as != bs {
		t.Errorf("non-contextual ParseContextScored diverged: %v (%v) != %v (%v)", a, as, b, bs)
	}
}

// TestContextualParserResolvesFollowups: held-out follow-up turns name a
// value that only exists in the previous turn's program; the context pointer
// must copy it across. Follow-up accuracy must hold up against first-turn
// accuracy (the ISSUE acceptance bound is 10 points at fleet scale; the toy
// task is checked at a coarser 1/2 vs 2/3 floor to stay robust to seeds).
func TestContextualParserResolvesFollowups(t *testing.T) {
	p := trainedCtxToyParser()
	_, val := toyDialoguePairs()
	firstOK, firstN, followOK, followN := 0, 0, 0, 0
	for _, pr := range val {
		got := p.ParseContext(pr.Src, pr.Ctx)
		match := strings.Join(got, " ") == strings.Join(pr.Tgt, " ")
		if len(pr.Ctx) == 0 {
			firstN++
			if match {
				firstOK++
			}
		} else {
			followN++
			if match {
				followOK++
			}
		}
	}
	if firstOK < firstN*2/3 {
		t.Errorf("first-turn accuracy too weak: %d/%d", firstOK, firstN)
	}
	if followOK < followN/2 {
		for _, pr := range val {
			if len(pr.Ctx) > 0 {
				t.Logf("src=%v ctx=%v got=%v want=%v", pr.Src, pr.Ctx, p.ParseContext(pr.Src, pr.Ctx), pr.Tgt)
			}
		}
		t.Fatalf("follow-up accuracy too weak: %d/%d (first-turn %d/%d)", followOK, followN, firstOK, firstN)
	}
}

// TestBatchContextMatchesSequential: the batched contextual greedy decode
// must emit exactly the sequential contextual decode's tokens and scores for
// every row, across ragged batch shapes.
func TestBatchContextMatchesSequential(t *testing.T) {
	p := trainedCtxToyParser()
	train, val := toyDialoguePairs()
	var sentences, contexts [][]string
	for _, pr := range append(train, val...) {
		if len(pr.Ctx) == 0 {
			continue
		}
		sentences = append(sentences, pr.Src)
		contexts = append(contexts, pr.Ctx)
	}
	if len(sentences) < 4 {
		t.Fatal("not enough contextual rows to batch")
	}
	// Make the shapes ragged: one longer follow-up and one longer context.
	sentences[1] = append(append([]string(nil), sentences[1]...), "please", "please")
	contexts[2] = append(append([]string(nil), contexts[2]...), "on", "monday")

	outs, scores := p.ParseBatchContextScored(sentences, contexts)
	for i := range sentences {
		want, ws := p.ParseContextScored(sentences[i], contexts[i], 1)
		if strings.Join(outs[i], " ") != strings.Join(want, " ") {
			t.Errorf("row %d tokens differ: batch=%v sequential=%v", i, outs[i], want)
		}
		if math.Abs(scores[i]-ws) > 1e-9 {
			t.Errorf("row %d score differs: batch=%v sequential=%v", i, scores[i], ws)
		}
	}

	if !panics(func() { trainedToyParser().ParseBatchContext(sentences, contexts) }) {
		t.Error("ParseBatchContext on a non-contextual parser did not panic")
	}
	if !panics(func() { p.ParseBatchContext([][]string{{"also", "email", "it"}}, [][]string{nil}) }) {
		t.Error("ParseBatchContext with an empty context row did not panic")
	}
}

func panics(f func()) (didPanic bool) {
	defer func() {
		if recover() != nil {
			didPanic = true
		}
	}()
	f()
	return false
}

// TestConcurrentContextDecodeMatchesSequential hammers the pooled contextual
// decode scratch from many goroutines; run under -race in CI.
func TestConcurrentContextDecodeMatchesSequential(t *testing.T) {
	p := trainedCtxToyParser()
	train, _ := toyDialoguePairs()
	var sentences, contexts [][]string
	want := make([]string, 0, len(train))
	for _, pr := range train {
		if len(pr.Ctx) == 0 {
			continue
		}
		sentences = append(sentences, pr.Src)
		contexts = append(contexts, pr.Ctx)
		want = append(want, strings.Join(p.ParseContext(pr.Src, pr.Ctx), " "))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range sentences {
				j := (i + w) % len(sentences)
				if got := strings.Join(p.ParseContext(sentences[j], contexts[j]), " "); got != want[j] {
					t.Errorf("concurrent ParseContext(%v) = %q, want %q", sentences[j], got, want[j])
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestSnapshotV4ContextualRoundTrip: a contextual parser round-trips through
// the version-4 format bit-identically (context tensors included), refuses
// to serialize at pre-context versions, and a non-contextual parser still
// writes loadable version-1..3 streams.
func TestSnapshotV4ContextualRoundTrip(t *testing.T) {
	p := trainedCtxToyParser()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !q.Contextual() {
		t.Fatal("contextual bit lost in round trip")
	}
	pp, qp := p.Params(), q.Params()
	if len(pp) != len(qp) {
		t.Fatalf("param count changed: %d -> %d", len(pp), len(qp))
	}
	for i := range pp {
		for j := range pp[i].W {
			if pp[i].W[j] != qp[i].W[j] {
				t.Fatalf("tensor %d element %d not bit-identical", i, j)
			}
		}
	}
	train, _ := toyDialoguePairs()
	for _, pr := range train[:6] {
		a := strings.Join(p.ParseContext(pr.Src, pr.Ctx), " ")
		b := strings.Join(q.ParseContext(pr.Src, pr.Ctx), " ")
		if a != b {
			t.Fatalf("ParseContext differs after round trip: %q != %q", a, b)
		}
	}

	// Contextual parsers cannot be written at versions that predate the
	// context block.
	for v := uint64(1); v <= 3; v++ {
		var old bytes.Buffer
		if err := p.saveVersioned(&old, v); err == nil || !strings.Contains(err.Error(), "version 4") {
			t.Errorf("saveVersioned(%d) on contextual parser: err = %v, want version-4 error", v, err)
		}
	}

	// Non-contextual parsers keep emitting loadable old-version streams.
	np := trainedToyParser()
	for v := uint64(1); v <= 3; v++ {
		var old bytes.Buffer
		if err := np.saveVersioned(&old, v); err != nil {
			t.Fatalf("saveVersioned(%d): %v", v, err)
		}
		nq, err := Load(bytes.NewReader(old.Bytes()))
		if err != nil {
			t.Fatalf("loading version-%d stream: %v", v, err)
		}
		src := []string{"tweet", "alpha", "now"}
		if a, b := strings.Join(np.Parse(src), " "), strings.Join(nq.Parse(src), " "); a != b {
			t.Errorf("version-%d load decodes differently: %q != %q", v, a, b)
		}
	}
}

// TestContextAdaptiveEscalates: with a forced calibration threshold the
// contextual adaptive decode escalates to the beam and reports it.
func TestContextAdaptiveEscalates(t *testing.T) {
	p := trainedCtxToyParser()
	defer p.SetCalibration(Calibration{})
	train, _ := toyDialoguePairs()
	var pr Pair
	for _, cand := range train {
		if len(cand.Ctx) > 0 {
			pr = cand
			break
		}
	}
	p.SetCalibration(Calibration{Fitted: true, Threshold: math.Inf(1)})
	toks, _, escalated := p.ParseContextAdaptive(pr.Src, pr.Ctx, 3)
	if !escalated {
		t.Error("infinite threshold did not escalate the contextual decode")
	}
	want := p.beamDecodeCtx(pr.Src, pr.Ctx, 3)
	if strings.Join(toks, " ") != strings.Join(want.tokens, " ") {
		t.Errorf("escalated decode = %v, want beam %v", toks, want.tokens)
	}
	p.SetCalibration(Calibration{Fitted: true, Threshold: math.Inf(-1)})
	_, _, escalated = p.ParseContextAdaptive(pr.Src, pr.Ctx, 3)
	if escalated {
		t.Error("negative-infinity threshold escalated the contextual decode")
	}
}
