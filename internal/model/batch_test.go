package model

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/nn"
)

// variedPairs mixes source and target lengths so batched tests exercise the
// padding and masking machinery, not just the stacked kernels.
func variedPairs() []Pair {
	return []Pair{
		{Src: []string{"tweet", "alpha", "now"},
			Tgt: []string{"now", "=>", "@twitter.post", "param:text", "=", `"`, "alpha", `"`}},
		{Src: []string{"email", "bravo"},
			Tgt: []string{"now", "=>", "@gmail.send", "param:text", "=", `"`, "bravo", `"`, "please"}},
		{Src: []string{"note", "charlie", "now", "quickly"},
			Tgt: []string{"now", "=>", "@notes.create"}},
		{Src: []string{"send", "delta", "to", "echo", "chat"},
			Tgt: []string{"now", "=>", "@chat.send", "param:to", "=", "echo"}},
	}
}

// TestLossBatchMatchesMeanOfSingles is the headline parity property of the
// padded-minibatch path: the batched teacher-forced loss over B mixed-length
// pairs equals the mean of the B single-example losses within 1e-9.
func TestLossBatchMatchesMeanOfSingles(t *testing.T) {
	pairs := variedPairs()
	cfg := testConfig(11)
	p := buildParser(pairs, nil, cfg)

	gs := nn.NewGraphArena(false, nn.NewArena())
	mean := 0.0
	for i := range pairs {
		gs.Reset()
		mean += p.loss(gs, &pairs[i])
	}
	mean /= float64(len(pairs))

	gb := nn.NewGraphArena(false, nn.NewArena())
	got := p.lossBatch(gb, pairs)
	if math.Abs(got-mean) > 1e-9 {
		t.Errorf("lossBatch = %.15g, mean of single losses = %.15g (diff %g)", got, mean, got-mean)
	}

	// Without the pointer mechanism too (the onesGate path).
	cfg2 := testConfig(12)
	cfg2.PointerGen = false
	p2 := buildParser(pairs, nil, cfg2)
	mean = 0
	for i := range pairs {
		gs.Reset()
		mean += p2.loss(gs, &pairs[i])
	}
	mean /= float64(len(pairs))
	gb.Reset()
	if got := p2.lossBatch(gb, pairs); math.Abs(got-mean) > 1e-9 {
		t.Errorf("-pointer lossBatch = %.15g, mean of singles = %.15g", got, mean)
	}
}

// TestStepBatchMatchesStepAtB1 pins that a one-pair StepBatch follows Step's
// exact trajectory — same losses step after step through the shared Adam
// state, including dropout (the batched path consumes the RNG in the same
// order at B=1).
func TestStepBatchMatchesStepAtB1(t *testing.T) {
	pairs := variedPairs()
	cfg := testConfig(13)
	cfg.Dropout = 0.1
	a := NewTrainer(pairs, nil, cfg)
	b := NewTrainer(pairs, nil, cfg)
	for s := 0; s < 12; s++ {
		pr := pairs[s%len(pairs)]
		la := a.Step(&pr)
		lb := b.StepBatch([]Pair{pr})
		if math.Abs(la-lb) > 1e-12*(1+math.Abs(la)) {
			t.Fatalf("step %d: Step loss %.15g, StepBatch(1) loss %.15g", s, la, lb)
		}
	}
}

// TestStepBatchSteadyStateAllocs: the minibatch step keeps the arena
// property — once buffers are warm it stays within a small fixed budget.
func TestStepBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	pairs := variedPairs()
	cfg := Config{EmbedDim: 32, HiddenDim: 48, LR: 1e-3, Dropout: 0.1, Epochs: 1,
		EvalEvery: 1 << 30, PointerGen: true, MaxDecodeLen: 16, MinVocabCount: 1, Seed: 1}
	tr := NewTrainer(pairs, nil, cfg)
	for i := 0; i < 3; i++ {
		tr.StepBatch(pairs)
	}
	const budget = 16
	if n := testing.AllocsPerRun(50, func() { tr.StepBatch(pairs) }); n > budget {
		t.Errorf("steady-state StepBatch allocates %v, budget %d", n, budget)
	}
}

// TestTrainBatchedLearnsToyTask reruns the copy-generalization check through
// the minibatch fit path (BatchSize > 1).
func TestTrainBatchedLearnsToyTask(t *testing.T) {
	train, val := toyPairs()
	cfg := testConfig(14)
	cfg.BatchSize = 4
	cfg.Epochs = 40
	p := Train(train, nil, nil, cfg)
	correct := 0
	for _, pair := range val {
		if strings.Join(p.Parse(pair.Src), " ") == strings.Join(pair.Tgt, " ") {
			correct++
		}
	}
	if correct < len(val)*2/3 {
		for _, pair := range val {
			t.Logf("src=%v got=%v want=%v", pair.Src, p.Parse(pair.Src), pair.Tgt)
		}
		t.Fatalf("batched training copy generalization too weak: %d/%d", correct, len(val))
	}
}

// TestLMPretrainBatchedRuns covers the batched LM pre-training path.
func TestLMPretrainBatchedRuns(t *testing.T) {
	train, val := toyPairs()
	cfg := testConfig(15)
	cfg.PretrainLM = true
	cfg.LMSteps = 60
	cfg.BatchSize = 4
	cfg.Epochs = 10
	var lm [][]string
	for _, p := range train {
		lm = append(lm, p.Tgt)
	}
	p := Train(train, val, lm, cfg)
	out := p.Parse(train[0].Src)
	if len(out) == 0 || out[0] != "now" {
		t.Errorf("unexpected decode after batched LM pretraining: %v", out)
	}
}

// batchTestSentences builds mixed-length inputs (including words the parser
// never saw) so the batched decoders pad and mask across requests.
func batchTestSentences() [][]string {
	train, val := toyPairs()
	var out [][]string
	for _, pr := range append(train[:8:8], val...) {
		out = append(out, pr.Src)
	}
	out = append(out,
		[]string{"tweet", "zulu"},
		[]string{"email", "yankee", "now", "please"},
		[]string{}, // empty input decodes to nothing on both paths
		[]string{"note", "xray", "now", "now", "now"},
	)
	return out
}

// TestParseBatchParallelMatchesSequential is the serving-side parity
// property: batched greedy and beam decode emit token-identical outputs to
// the per-sentence Parse/ParseBeam paths, for mixed-length windows, under
// concurrency (run with -race in CI).
func TestParseBatchParallelMatchesSequential(t *testing.T) {
	p := trainedToyParser()
	sentences := batchTestSentences()

	wantGreedy := make([]string, len(sentences))
	wantBeam := make([]string, len(sentences))
	nonEmpty := false
	for i, s := range sentences {
		wantGreedy[i] = joinTokens(p.Parse(s))
		wantBeam[i] = joinTokens(p.ParseBeam(s, 3))
		nonEmpty = nonEmpty || wantGreedy[i] != ""
	}
	if !nonEmpty {
		t.Fatal("trained parser decodes nothing; test would be vacuous")
	}

	check := func(t *testing.T, lo, hi int) {
		window := sentences[lo:hi]
		got := p.ParseBatch(window)
		for i, toks := range got {
			if joinTokens(toks) != wantGreedy[lo+i] {
				t.Errorf("ParseBatch[%d..%d] row %d = %q, Parse = %q", lo, hi, i, joinTokens(toks), wantGreedy[lo+i])
			}
		}
		gotBeam := p.ParseBeamBatch(window, 3)
		for i, toks := range gotBeam {
			if joinTokens(toks) != wantBeam[lo+i] {
				t.Errorf("ParseBeamBatch[%d..%d] row %d = %q, ParseBeam = %q", lo, hi, i, joinTokens(toks), wantBeam[lo+i])
			}
		}
	}

	// Whole set, singleton window, and a sliding mid-size window.
	check(t, 0, len(sentences))
	check(t, 2, 3)
	for lo := 0; lo+4 <= len(sentences); lo += 3 {
		check(t, lo, lo+4)
	}

	// Concurrent batched decodes over one shared parser.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				lo := (w + rep) % (len(sentences) - 4)
				check(t, lo, lo+4)
			}
		}(w)
	}
	wg.Wait()
}

// TestParseBeamBatchWidthOneIsGreedy mirrors the sequential fallback.
func TestParseBeamBatchWidthOneIsGreedy(t *testing.T) {
	p := trainedToyParser()
	sentences := batchTestSentences()[:4]
	greedy := p.ParseBatch(sentences)
	beam1 := p.ParseBeamBatch(sentences, 1)
	for i := range sentences {
		if joinTokens(greedy[i]) != joinTokens(beam1[i]) {
			t.Errorf("width-1 beam batch differs from greedy batch on %v", sentences[i])
		}
	}
}
