package model

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/grammar"
)

// This file wires the grammar automaton (internal/grammar) into the decoder:
// when a parser carries a grammar spec, every decode path — greedy, beam, and
// the lockstep batched forms — restricts the fused pointer-mix argmax to the
// tokens legal in the current parse state, so the decoder cannot emit a
// malformed or ill-typed program. It also holds the confidence calibration
// used by adaptive serving: a threshold over length-normalized hypothesis
// scores fitted on held-out data (eval.FitCalibration), below which serving
// escalates from greedy to beam decode.

// Calibration is the fitted confidence threshold carried by snapshots
// (format v3). Scores are length-normalized log-probabilities as returned by
// ParseScored; Fitted distinguishes a real fit from the zero value.
type Calibration struct {
	Fitted    bool
	Threshold float64
}

// SetGrammar compiles spec against the parser's target vocabulary and caches
// the automaton for every subsequent decode. A nil spec clears masking.
// Compilation fails when the vocabulary cannot express any complete program
// (the automaton would dead-end immediately); the parser then keeps decoding
// unmasked.
func (p *Parser) SetGrammar(spec *grammar.Spec) error {
	if spec == nil {
		p.gspec, p.auto = nil, nil
		return nil
	}
	auto, err := grammar.Compile(spec, p.tgt.Tokens())
	if err != nil {
		p.gspec, p.auto = spec, nil
		return fmt.Errorf("model: compiling grammar: %w", err)
	}
	p.gspec, p.auto = spec, auto
	return nil
}

// Grammar returns the grammar spec the parser decodes under (nil when
// unmasked).
func (p *Parser) Grammar() *grammar.Spec { return p.gspec }

// GrammarActive reports whether masked decoding is in effect (a spec is set
// and compiled against this vocabulary).
func (p *Parser) GrammarActive() bool { return p.auto != nil }

// GrammarChecksum returns the checksum of the grammar spec the parser
// carries, or "" when it has none.
func (p *Parser) GrammarChecksum() string {
	if p.gspec == nil {
		return ""
	}
	return p.gspec.Checksum()
}

// SetCalibration stamps the confidence threshold used by ParseAdaptive and
// persisted in snapshots.
func (p *Parser) SetCalibration(c Calibration) { p.calib = c }

// Calibration returns the parser's confidence calibration.
func (p *Parser) Calibration() Calibration { return p.calib }

// ConfidenceThreshold exposes the calibration in the form the serving
// layer's CalibratedParser interface consumes.
func (p *Parser) ConfidenceThreshold() (float64, bool) {
	return p.calib.Threshold, p.calib.Fitted
}

// ParseAdaptive decodes greedily and escalates to a width-wide beam only
// when the greedy hypothesis's length-normalized score falls below the
// fitted confidence threshold. It returns the chosen tokens, their score,
// and whether the beam was used. Without a fitted calibration (or width <=
// 1) it is exactly greedy.
func (p *Parser) ParseAdaptive(words []string, width int) ([]string, float64, bool) {
	if len(words) == 0 {
		return nil, math.Inf(-1), false
	}
	toks, score := p.parseGreedyScored(words)
	if width <= 1 || !p.calib.Fitted || score >= p.calib.Threshold {
		return toks, score, false
	}
	best := p.beamDecode(words, width)
	return best.tokens, best.score(), true
}

// grammarStart returns a fresh decode-state for one hypothesis, or nil when
// the parser decodes unmasked.
func (p *Parser) grammarStart() *grammar.State {
	if p.auto == nil {
		return nil
	}
	return p.auto.Start()
}

// grammarStep advances a hypothesis's grammar state over an emitted token.
// A nil return means the automaton rejected the token (only possible after
// an unmasked fallback step); the caller decodes the rest unmasked.
func (p *Parser) grammarStep(gs *grammar.State, tok string) *grammar.State {
	if gs == nil {
		return nil
	}
	id := -1
	if p.tgt.Has(tok) {
		id = p.tgt.ID(tok)
	}
	next, err := p.auto.Step(gs, id, tok)
	if err != nil {
		return nil
	}
	return next
}

// legalMemoEnabled gates the per-context Legal memo. It exists so the
// masked-decode benchmark can report the unmemoized walker alongside the
// memoized one; production paths never turn it off.
var legalMemoEnabled = true

// legal computes the legal-token mask for gs at budget rem, consulting the
// decode context's LegalCache when memoization is on.
func (p *Parser) legal(gs *grammar.State, rem int, ls *grammar.LegalSet, lc *grammar.LegalCache) {
	if !legalMemoEnabled {
		p.auto.Legal(gs, rem, ls)
		return
	}
	p.auto.LegalCached(gs, rem, ls, lc)
}

// maskedBest is bestTokenScored restricted to the tokens legal in gs with
// rem emission slots left (EOS excluded). The scan order — EOS, then legal
// vocabulary ids ascending, then out-of-vocabulary copy slots in first-
// occurrence order, strict greater-than — is the unmasked scan's order
// filtered to the mask, so whenever the unmasked argmax is itself legal the
// two paths pick the same token. ok is false when the mask admits nothing
// (the caller falls back to unmasked decoding).
func (p *Parser) maskedBest(ms *mixScorer, ls *grammar.LegalSet, lc *grammar.LegalCache, gs *grammar.State, rem int, pv, alpha []float64, gate float64, words []string) (string, float64, bool) {
	p.legal(gs, rem, ls, lc)
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	ms.prepare(p.tgt, words, alpha)
	defer ms.release()
	mix := func(id int32) float64 {
		prob := g * pv[id]
		if s := ms.mark[id]; s != 0 {
			if m := ms.slots[s-1].mass; m > 0 {
				prob += (1 - g) * m
			}
		}
		return prob
	}
	any := false
	bestTok := EosToken
	bestP := math.Inf(-1)
	if ls.EOS {
		any = true
		bestP = mix(EosID)
	}
	for _, id := range ls.IDs {
		any = true
		if prob := mix(id); prob > bestP {
			bestP = prob
			bestTok = p.tgt.Token(int(id))
		}
	}
	if p.cfg.PointerGen {
		for i := range ms.slots {
			s := &ms.slots[i]
			if s.id >= 0 || !ls.WordLegal(s.word) {
				continue
			}
			any = true
			if prob := (1 - g) * s.mass; prob > bestP {
				bestP = prob
				bestTok = s.word
			}
		}
	}
	return bestTok, bestP, any
}

// maskedTop is topTokens restricted to the legal set: the same fused scan and
// stable descending sort over the masked candidates. ok is false when the
// mask admits nothing.
func (p *Parser) maskedTop(ms *mixScorer, ls *grammar.LegalSet, lc *grammar.LegalCache, gs *grammar.State, rem int, scored *[]scoredToken, pv, alpha []float64, gate float64, words []string, k int) ([]scoredToken, bool) {
	p.legal(gs, rem, ls, lc)
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	ms.prepare(p.tgt, words, alpha)
	defer ms.release()
	all := (*scored)[:0]
	mix := func(id int32) float64 {
		prob := g * pv[id]
		if s := ms.mark[id]; s != 0 {
			if m := ms.slots[s-1].mass; m > 0 {
				prob += (1 - g) * m
			}
		}
		return prob
	}
	if ls.EOS {
		all = append(all, scoredToken{tok: EosToken, p: mix(EosID)})
	}
	for _, id := range ls.IDs {
		all = append(all, scoredToken{tok: p.tgt.Token(int(id)), p: mix(id)})
	}
	if p.cfg.PointerGen {
		for i := range ms.slots {
			s := &ms.slots[i]
			if s.id >= 0 || !ls.WordLegal(s.word) {
				continue
			}
			all = append(all, scoredToken{tok: s.word, p: (1 - g) * s.mass})
		}
	}
	*scored = all
	if len(all) == 0 {
		return nil, false
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].p > all[j].p })
	if len(all) > k {
		all = all[:k]
	}
	return all, true
}

// maskedBudget is the program-token budget passed to Legal at decode step t:
// of the maxLen-t emissions left, one is reserved for </s>.
func maskedBudget(maxLen, t int) int { return maxLen - t - 1 }
