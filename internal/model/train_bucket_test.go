package model

import (
	"math/rand"
	"testing"
)

// manyVariedPairs pads variedPairs out to a population with a wide length
// spread, so bucketing has something to win.
func manyVariedPairs(n int) []Pair {
	base := variedPairs()
	rng := rand.New(rand.NewSource(5))
	out := make([]Pair, 0, n)
	for i := 0; i < n; i++ {
		p := base[i%len(base)]
		// Vary lengths: append filler words to both sides.
		extra := rng.Intn(8)
		src := append(append([]string(nil), p.Src...), make([]string, 0, extra)...)
		tgt := append([]string(nil), p.Tgt...)
		for j := 0; j < extra; j++ {
			src = append(src, "please")
			if j%2 == 0 {
				tgt = append(tgt, "notify")
			}
		}
		out = append(out, Pair{Src: src, Tgt: tgt})
	}
	return out
}

// TestBucketByLengthB1Unchanged asserts the satellite's safety property:
// BucketByLength only affects the minibatch path, so the B=1 training
// trajectory is bit-identical with the flag on and off.
func TestBucketByLengthB1Unchanged(t *testing.T) {
	train, val := toyPairs()
	cfg := testConfig(3)
	cfg.BatchSize = 1
	plain := Train(train, val, nil, cfg)
	cfg.BucketByLength = true
	bucketed := Train(train, val, nil, cfg)
	pp, bp := plain.Params(), bucketed.Params()
	for i := range pp {
		for j := range pp[i].W {
			if pp[i].W[j] != bp[i].W[j] {
				t.Fatalf("B=1 trajectory diverged with BucketByLength: param %d[%d] = %v vs %v",
					i, j, pp[i].W[j], bp[i].W[j])
			}
		}
	}
}

// TestBucketByLengthTrains checks the bucketed minibatch path end to end:
// training converges on the toy copy task and still decodes the training
// sentences.
func TestBucketByLengthTrains(t *testing.T) {
	train, val := toyPairs()
	cfg := testConfig(3)
	cfg.BatchSize = 4
	cfg.BucketByLength = true
	p := Train(train, val, nil, cfg)
	correct := 0
	for _, pair := range train {
		if joinTokens(p.Parse(pair.Src)) == joinTokens(pair.Tgt) {
			correct++
		}
	}
	if correct < len(train)/2 {
		t.Errorf("bucketed training underfits the toy task: %d/%d exact", correct, len(train))
	}
}

// TestBatchStartsCoverEveryExample asserts every example appears in exactly
// one minibatch per epoch, bucketed or not.
func TestBatchStartsCoverEveryExample(t *testing.T) {
	train := manyVariedPairs(37)
	rng := rand.New(rand.NewSource(1))
	order := rng.Perm(len(train))
	for _, bucket := range []bool{false, true} {
		ord := append([]int(nil), order...)
		starts := batchStarts(nil, train, ord, 8, bucket, rng)
		seen := map[int]int{}
		for _, start := range starts {
			for _, idx := range ord[start:min(start+8, len(ord))] {
				seen[idx]++
			}
		}
		if len(seen) != len(train) {
			t.Fatalf("bucket=%t: %d distinct examples covered, want %d", bucket, len(seen), len(train))
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("bucket=%t: example %d appears %d times", bucket, idx, n)
			}
		}
	}
}

// TestBucketingCutsPadding measures the padding satellite's actual win: on
// a length-varied population, sorting the shuffled order by length must
// strictly reduce the padded fraction. The measured ratio is recorded in
// EXPERIMENTS.md.
func TestBucketingCutsPadding(t *testing.T) {
	train := manyVariedPairs(512)
	rng := rand.New(rand.NewSource(9))
	order := rng.Perm(len(train))
	const bs = 16
	before := PaddingFraction(train, order, bs)
	bucketed := append([]int(nil), order...)
	batchStarts(nil, train, bucketed, bs, true, rng)
	after := PaddingFraction(train, bucketed, bs)
	t.Logf("padding fraction at B=%d: shuffled %.3f, bucketed %.3f", bs, before, after)
	if after >= before {
		t.Errorf("bucketing did not reduce padding: %.4f -> %.4f", before, after)
	}
	if before > 0.05 && after > 0.75*before {
		t.Errorf("bucketing saved less than a quarter of the padding: %.4f -> %.4f", before, after)
	}
}
