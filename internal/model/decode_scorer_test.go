package model

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The fused pointer-mix scorer (mixScorer) must select exactly what the
// original O(V·S) scan selected — including tie-breaks, which the argmax
// resolves by first strict improvement in scan order. naiveBestToken and
// naiveTopTokens below are the pre-fusion implementations, kept verbatim as
// the reference.

func naiveCopyMass(alpha []float64, words []string, tok string) float64 {
	var m float64
	for i, w := range words {
		if w == tok {
			m += alpha[i]
		}
	}
	return m
}

func naiveCopyMassAt(alpha []float64, words []string, tok string, from int) float64 {
	var m float64
	for i := from; i < len(words); i++ {
		if words[i] == tok {
			m += alpha[i]
		}
	}
	return m
}

func naiveSeenEarlier(words []string, i int) bool {
	for j := 0; j < i; j++ {
		if words[j] == words[i] {
			return true
		}
	}
	return false
}

func naiveBestToken(p *Parser, pv, alpha []float64, gate float64, words []string) (string, float64) {
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	bestTok := EosToken
	bestP := math.Inf(-1)
	for id := 2; id < p.tgt.Size(); id++ {
		prob := g * pv[id]
		if cm := naiveCopyMass(alpha, words, p.tgt.Token(id)); cm > 0 {
			prob += (1 - g) * cm
		}
		if prob > bestP {
			bestP = prob
			bestTok = p.tgt.Token(id)
		}
	}
	if !p.cfg.PointerGen {
		return bestTok, bestP
	}
	for i, w := range words {
		if p.tgt.Has(w) || naiveSeenEarlier(words, i) {
			continue
		}
		prob := (1 - g) * naiveCopyMassAt(alpha, words, w, i)
		if prob > bestP {
			bestP = prob
			bestTok = w
		}
	}
	return bestTok, bestP
}

func naiveTopTokens(p *Parser, pv, alpha []float64, gate float64, words []string, k int) []scoredToken {
	g := gate
	if !p.cfg.PointerGen {
		g = 1
	}
	var all []scoredToken
	for id := 2; id < p.tgt.Size(); id++ {
		tok := p.tgt.Token(id)
		prob := g * pv[id]
		if cm := naiveCopyMass(alpha, words, tok); cm > 0 {
			prob += (1 - g) * cm
		}
		all = append(all, scoredToken{tok: tok, p: prob})
	}
	if p.cfg.PointerGen {
		for i, w := range words {
			if p.tgt.Has(w) || naiveSeenEarlier(words, i) {
				continue
			}
			all = append(all, scoredToken{tok: w, p: (1 - g) * naiveCopyMassAt(alpha, words, w, i)})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].p > all[j].p })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// scorerParser builds a bare Parser with just the fields the scorers touch.
func scorerParser(pointerGen bool) *Parser {
	vocab := BuildVocab([][]string{{
		"now", "=>", "notify", "@twitter.post", "param:text", "=", `"`,
		"alpha", "bravo", "charlie", "tweet", "send",
	}}, 1)
	return &Parser{cfg: Config{PointerGen: pointerGen}, tgt: vocab}
}

// randomScorerCase draws one (pv, alpha, gate, words) tuple; sentences mix
// in-vocabulary words, out-of-vocabulary words, and duplicates of both, and
// occasionally tie several pv entries to pin the tie-break behavior.
func randomScorerCase(p *Parser, rng *rand.Rand) (pv, alpha []float64, gate float64, words []string) {
	pool := []string{"alpha", "bravo", "charlie", "tweet", "zebra", "quux", "now", "zebra", "alpha"}
	n := 1 + rng.Intn(len(pool))
	words = make([]string, n)
	for i := range words {
		words[i] = pool[rng.Intn(len(pool))]
	}
	pv = make([]float64, p.tgt.Size())
	sum := 0.0
	for i := range pv {
		pv[i] = rng.Float64()
		sum += pv[i]
	}
	for i := range pv {
		pv[i] /= sum
	}
	if rng.Intn(3) == 0 { // force exact ties across a stretch of the vocabulary
		for i := 2; i < len(pv); i++ {
			pv[i] = 0.25
		}
	}
	alpha = make([]float64, n)
	asum := 0.0
	for i := range alpha {
		alpha[i] = rng.Float64()
		asum += alpha[i]
	}
	for i := range alpha {
		alpha[i] /= asum
	}
	if rng.Intn(4) == 0 { // zero attention mass: the >0 copy-add guard path
		for i := range alpha {
			alpha[i] = 0
		}
	}
	return pv, alpha, rng.Float64(), words
}

// TestFusedScorerMatchesNaive drives the fused argmax and top-k through
// randomized distributions (ties, duplicates, OOV words, zero attention)
// and requires byte-identical selections and bit-identical probabilities
// against the pre-fusion reference scan.
func TestFusedScorerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, pointerGen := range []bool{true, false} {
		p := scorerParser(pointerGen)
		var ms mixScorer
		for trial := 0; trial < 500; trial++ {
			pv, alpha, gate, words := randomScorerCase(p, rng)

			wantTok, wantP := naiveBestToken(p, pv, alpha, gate, words)
			gotTok, gotP := p.bestTokenScored(&ms, pv, alpha, gate, words)
			if gotTok != wantTok || gotP != wantP {
				t.Fatalf("pointerGen=%t trial %d: bestToken fused = (%q, %v), naive = (%q, %v)\nwords=%v gate=%v",
					pointerGen, trial, gotTok, gotP, wantTok, wantP, words, gate)
			}

			k := 1 + rng.Intn(6)
			want := naiveTopTokens(p, pv, alpha, gate, words, k)
			var scored []scoredToken
			got := p.topTokens(&ms, &scored, pv, alpha, gate, words, k)
			if len(got) != len(want) {
				t.Fatalf("pointerGen=%t trial %d: topTokens lengths %d vs %d", pointerGen, trial, len(got), len(want))
			}
			for i := range got {
				if got[i].tok != want[i].tok || got[i].p != want[i].p {
					t.Fatalf("pointerGen=%t trial %d: topTokens[%d] fused = (%q, %v), naive = (%q, %v)",
						pointerGen, trial, i, got[i].tok, got[i].p, want[i].tok, want[i].p)
				}
			}
		}
	}
}

// TestMixScorerMarkInvariant checks the pooled-context safety property: the
// sparse mark table is all-zero between prepare/release pairs, so a pooled
// decode context can serve parsers with different vocabularies.
func TestMixScorerMarkInvariant(t *testing.T) {
	p := scorerParser(true)
	var ms mixScorer
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		_, alpha, _, words := randomScorerCase(p, rng)
		ms.prepare(p.tgt, words, alpha)
		ms.release()
		for i, v := range ms.mark {
			if v != 0 {
				t.Fatalf("trial %d: mark[%d] = %d after release", trial, i, v)
			}
		}
	}
}

// BenchmarkPointerMixArgmax pits the fused O(V+S) scorer against the
// original O(V·S) scan at several sentence lengths; the gap widens with S,
// which is what makes long free-form parameter sentences affordable.
func BenchmarkPointerMixArgmax(b *testing.B) {
	p := scorerParser(true)
	rng := rand.New(rand.NewSource(1))
	for _, S := range []int{5, 15, 40} {
		pv, alpha, gate, _ := randomScorerCase(p, rng)
		words := make([]string, S)
		pool := []string{"alpha", "bravo", "zebra", "quux", "now", "tweet", "oov1", "oov2"}
		for i := range words {
			words[i] = pool[rng.Intn(len(pool))]
		}
		alpha = make([]float64, S)
		for i := range alpha {
			alpha[i] = 1 / float64(S)
		}
		b.Run(fmt.Sprintf("S=%d/naive", S), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				naiveBestToken(p, pv, alpha, gate, words)
			}
		})
		b.Run(fmt.Sprintf("S=%d/fused", S), func(b *testing.B) {
			var ms mixScorer
			for i := 0; i < b.N; i++ {
				p.bestTokenScored(&ms, pv, alpha, gate, words)
			}
		})
	}
}

// TestParseScoredConsistent checks ParseScored against the unscored decode
// paths: identical tokens at both widths, and a finite length-normalized
// log-probability (≤ 0 for a probability model).
func TestParseScoredConsistent(t *testing.T) {
	p := trainedToyParser()
	train, _ := toyPairs()
	for _, pair := range train[:6] {
		toks, score := p.ParseScored(pair.Src, 1)
		if joinTokens(toks) != joinTokens(p.Parse(pair.Src)) {
			t.Errorf("ParseScored width 1 of %v = %q, Parse = %q", pair.Src, joinTokens(toks), joinTokens(p.Parse(pair.Src)))
		}
		if math.IsNaN(score) || math.IsInf(score, 0) || score > 0 {
			t.Errorf("implausible greedy score %v for %v", score, pair.Src)
		}
		btoks, bscore := p.ParseScored(pair.Src, 3)
		if joinTokens(btoks) != joinTokens(p.ParseBeam(pair.Src, 3)) {
			t.Errorf("ParseScored width 3 of %v = %q, ParseBeam = %q", pair.Src, joinTokens(btoks), joinTokens(p.ParseBeam(pair.Src, 3)))
		}
		if math.IsNaN(bscore) || math.IsInf(bscore, 0) || bscore > 0 {
			t.Errorf("implausible beam score %v for %v", bscore, pair.Src)
		}
	}
	if toks, score := p.ParseScored(nil, 1); toks != nil || !math.IsInf(score, -1) {
		t.Errorf("empty input: got (%v, %v), want (nil, -Inf)", toks, score)
	}
}
