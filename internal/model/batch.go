package model

import "repro/internal/nn"

// This file is the padded-minibatch training path: B examples stacked into
// B×n tensors and pushed through the batched kernels of internal/nn in one
// forward/backward per optimizer step. Padding scheme: each batch pads to
// its longest source (and target) sequence; encoder steps past a sequence's
// end carry state through unchanged (row-active masks), attention masks
// scores to each sequence's valid prefix, and loss rows past a target's end
// get a zero gradient scale, so padding never contributes probability mass
// or gradient. Per example the arithmetic matches the single-example path
// exactly: lossBatch over one pair follows the same compute order as loss.

// batchBufs holds the padded source-side buffers of one batched encoder
// pass, reused across steps (training owns one inside batchScratch; every
// batched decode call has its own inside a pooled batchDecodeCtx).
//
//genielint:arena-scoped
type batchBufs struct {
	srcIds []int  // position-major B×S source ids (S*B, padding UnkID)
	lens   []int  // per-sequence source lengths (B)
	active []bool // position-major row-active masks (S*B)
	embs   []*nn.Tensor
	fhs    []*nn.Tensor
	bhs    []*nn.Tensor
	rows   []*nn.Tensor
}

// releaseTensors zeroes the retained tensor pointers (full capacity; see
// encBufs.releaseTensors) when a pooled batch decode context's graph lease
// ends. The id/length/mask buffers carry no arena memory and are reused.
func (bb *batchBufs) releaseTensors() {
	clearTensorBuf(bb.embs)
	clearTensorBuf(bb.fhs)
	clearTensorBuf(bb.bhs)
	clearTensorBuf(bb.rows)
}

// prepareSrc encodes B source sentences into the padded position-major
// id/mask layout and returns S, the padded length. The id and mask slices
// are retained by the graph tape until Backward/Reset.
func (bb *batchBufs) prepareSrc(v *Vocab, srcs [][]string) int {
	B := len(srcs)
	S := 0
	bb.lens = bb.lens[:0]
	for _, s := range srcs {
		bb.lens = append(bb.lens, len(s))
		S = max(S, len(s))
	}
	ids := grow(&bb.srcIds, S*B)
	act := grow(&bb.active, S*B)
	for i := 0; i < S; i++ {
		for b, s := range srcs {
			if i < len(s) {
				ids[i*B+b] = v.ID(s[i])
				act[i*B+b] = true
			} else {
				ids[i*B+b] = UnkID
				act[i*B+b] = false
			}
		}
	}
	return S
}

// encodeBatch runs the bidirectional encoder over a prepared batch (see
// prepareSrc), returning the packed padded memory ((B*S)×2h, one S-row block
// per sequence) and the concatenated final states (B×2h). Rows past a
// sequence's end carry LSTM state through unchanged, so each row's final
// state and memory rows are identical to a single-example encode call.
//
//genielint:returns-arena
func (p *Parser) encodeBatch(g *nn.Graph, bb *batchBufs, B, S int) (H, final *nn.Tensor) {
	h := p.cfg.HiddenDim
	embs := grow(&bb.embs, S)
	for i := 0; i < S; i++ {
		embs[i] = g.Dropout(g.LookupRows(p.encEmb.Table, bb.srcIds[i*B:(i+1)*B]), p.cfg.Dropout, p.rng)
	}
	fh := g.NewTensor(B, h)
	fc := g.NewTensor(B, h)
	fhs := grow(&bb.fhs, S)
	for i := 0; i < S; i++ {
		fh, fc = p.fwd.StepBatch(g, embs[i], fh, fc, bb.active[i*B:(i+1)*B])
		fhs[i] = fh
	}
	bh := g.NewTensor(B, h)
	bc := g.NewTensor(B, h)
	bhs := grow(&bb.bhs, S)
	for i := S - 1; i >= 0; i-- {
		bh, bc = p.bwd.StepBatch(g, embs[i], bh, bc, bb.active[i*B:(i+1)*B])
		bhs[i] = bh
	}
	rows := grow(&bb.rows, S)
	for i := 0; i < S; i++ {
		rows[i] = g.ConcatCols(fhs[i], bhs[i])
	}
	H = g.PackMemoryBatch(rows, bb.lens)
	final = g.ConcatCols(fh, bh)
	return H, final
}

// batchScratch holds the decoder-side per-step buffers of lossBatch and
// lmLossBatch, reused across training steps. Slices handed to tape records
// (prev ids, copy masks, vocab indices, gradient scales) are positioned out
// of per-step backings so every record gets a distinct sub-slice.
type batchScratch struct {
	batchBufs
	srcView   [][]string
	tgtLens   []int
	prevIds   []int
	decActive []bool // position-major decoder row-active masks (T*B)
	vocabIdx  []int
	gradW     []float64
	copyMasks [][]bool
	maskBuf   []bool
	nll       []float64
	perEx     []float64
}

// onesGateBatch is onesGate for B rows: a constant gate of 1 per row (pure
// generation, the -pointer ablation).
//
//genielint:returns-arena
func onesGateBatch(g *nn.Graph, B int) *nn.Tensor {
	t := g.NewTensor(B, 1)
	for b := range t.W {
		t.W[b] = 1
	}
	return t
}

// lossBatch computes the teacher-forced loss of a padded minibatch in one
// batched forward, returning the mean of the per-example mean-per-token
// losses (what averaging B loss calls would report). Gradients are scaled
// 1/B per example — the mean of the per-example gradients the single path
// produces — so at B=1 the update matches loss exactly.
func (p *Parser) lossBatch(g *nn.Graph, pairs []Pair) float64 {
	B := len(pairs)
	sc := &p.bscr
	sc.srcView = sc.srcView[:0]
	for i := range pairs {
		sc.srcView = append(sc.srcView, pairs[i].Src)
	}
	S := sc.prepareSrc(p.src, sc.srcView)
	H, final := p.encodeBatch(g, &sc.batchBufs, B, S)

	hid := p.cfg.HiddenDim
	h := g.Tanh(g.BatchedAffine(final, p.initLin.W, p.initLin.B))
	c := g.NewTensor(B, hid)
	ctx := g.NewTensor(B, 2*hid)

	T := 0
	sc.tgtLens = sc.tgtLens[:0]
	for i := range pairs {
		n := len(pairs[i].Tgt) + 1 // + </s>
		sc.tgtLens = append(sc.tgtLens, n)
		T = max(T, n)
	}
	prevIds := grow(&sc.prevIds, T*B)
	decActive := grow(&sc.decActive, T*B)
	vocabIdx := grow(&sc.vocabIdx, T*B)
	gradW := grow(&sc.gradW, T*B)
	copyMasks := grow(&sc.copyMasks, T*B)
	nll := grow(&sc.nll, B)
	perEx := grow(&sc.perEx, B)
	for b := range perEx {
		perEx[b] = 0
	}
	mb := sc.maskBuf[:0]
	inv := 1 / float64(B)

	for t := 0; t < T; t++ {
		prev := prevIds[t*B : (t+1)*B]
		// Rows whose target ended before step t carry their decoder state
		// through (no LSTM work) and get a zero gradient scale below, so a
		// short example costs only its own steps.
		activeT := decActive[t*B : (t+1)*B : (t+1)*B]
		masksT := copyMasks[t*B : (t+1)*B : (t+1)*B]
		idxT := vocabIdx[t*B : (t+1)*B : (t+1)*B]
		wT := gradW[t*B : (t+1)*B : (t+1)*B]
		for b := range pairs {
			activeT[b] = t < sc.tgtLens[b]
			switch {
			case t == 0:
				prev[b] = BosID
			case t <= len(pairs[b].Tgt):
				prev[b] = p.tgt.ID(targetTok(&pairs[b], t-1))
			default:
				prev[b] = EosID // finished row; its output is never scored
			}
		}
		emb := g.LookupRows(p.decEmb.Table, prev)
		x := g.ConcatCols(emb, ctx)
		h, c = p.dec.StepBatch(g, x, h, c, activeT)
		q := g.BatchedAffine(h, p.attnLin.W, p.attnLin.B)
		alpha, ctxN := g.AttendSoftmaxContextBatch(q, H, nil, sc.lens)
		htilde := g.Tanh(g.BatchedAffine(g.ConcatCols(h, ctxN), p.combLin.W, p.combLin.B))
		htilde = g.Dropout(htilde, p.cfg.Dropout, p.rng)
		pv := g.SoftmaxRows(g.BatchedAffine(htilde, p.outLin.W, p.outLin.B))
		gate := g.Sigmoid(g.BatchedAffine(htilde, p.gateLin.W, p.gateLin.B))

		for b := range pairs {
			if t >= sc.tgtLens[b] {
				wT[b], masksT[b], idxT[b] = 0, nil, 0
				continue
			}
			tok := targetTok(&pairs[b], t)
			vi := -1
			if p.tgt.Has(tok) {
				vi = p.tgt.ID(tok)
			}
			if p.cfg.PointerGen {
				start := len(mb)
				for _, s := range pairs[b].Src {
					mb = append(mb, s == tok)
				}
				masksT[b] = mb[start:len(mb):len(mb)]
			} else {
				masksT[b] = nil
				if vi < 0 {
					vi = UnkID
				}
			}
			idxT[b] = vi
			wT[b] = inv
		}
		nllGate := gate
		if !p.cfg.PointerGen {
			nllGate = onesGateBatch(g, B)
		}
		g.NLLPointerMixBatch(pv, alpha, nllGate, masksT, idxT, wT, nll)
		for b := range perEx {
			perEx[b] += nll[b]
		}
		ctx = ctxN
	}
	sc.maskBuf = mb

	total := 0.0
	for b := range perEx {
		total += perEx[b] / float64(sc.tgtLens[b])
	}
	return total / float64(B)
}

// targetTok is the teacher-forcing target of step t: the program token, then
// </s> as the final factor.
func targetTok(pair *Pair, t int) string {
	if t < len(pair.Tgt) {
		return pair.Tgt[t]
	}
	return EosToken
}

// lmLossBatch is the batched decoder-only language-model loss: next-token
// prediction over B programs with a zero attention context, gradients
// averaged over the minibatch like lossBatch. It is the batched form of the
// per-program pass in pretrainLM.
func (p *Parser) lmLossBatch(g *nn.Graph, programs [][]string) float64 {
	B := len(programs)
	sc := &p.bscr
	hid := p.cfg.HiddenDim
	h := g.NewTensor(B, hid)
	c := g.NewTensor(B, hid)
	ctx := g.NewTensor(B, 2*hid)

	T := 0
	sc.tgtLens = sc.tgtLens[:0]
	for _, prog := range programs {
		n := len(prog) + 1
		sc.tgtLens = append(sc.tgtLens, n)
		T = max(T, n)
	}
	prevIds := grow(&sc.prevIds, T*B)
	decActive := grow(&sc.decActive, T*B)
	vocabIdx := grow(&sc.vocabIdx, T*B)
	gradW := grow(&sc.gradW, T*B)
	nll := grow(&sc.nll, B)
	perEx := grow(&sc.perEx, B)
	for b := range perEx {
		perEx[b] = 0
	}
	inv := 1 / float64(B)

	for t := 0; t < T; t++ {
		prev := prevIds[t*B : (t+1)*B]
		activeT := decActive[t*B : (t+1)*B : (t+1)*B]
		idxT := vocabIdx[t*B : (t+1)*B : (t+1)*B]
		wT := gradW[t*B : (t+1)*B : (t+1)*B]
		for b, prog := range programs {
			activeT[b] = t < sc.tgtLens[b]
			switch {
			case t == 0:
				prev[b] = BosID
			case t <= len(prog):
				prev[b] = p.tgt.ID(lmTok(prog, t-1))
			default:
				prev[b] = EosID
			}
			if t >= sc.tgtLens[b] {
				wT[b], idxT[b] = 0, 0
			} else {
				idxT[b] = p.tgt.ID(lmTok(prog, t))
				wT[b] = inv
			}
		}
		emb := g.LookupRows(p.decEmb.Table, prev)
		x := g.ConcatCols(emb, ctx)
		h, c = p.dec.StepBatch(g, x, h, c, activeT)
		htilde := g.Tanh(g.BatchedAffine(g.ConcatCols(h, ctx), p.combLin.W, p.combLin.B))
		pv := g.SoftmaxRows(g.BatchedAffine(htilde, p.outLin.W, p.outLin.B))
		g.NLLPointerMixBatch(pv, nil, onesGateBatch(g, B), nil, idxT, wT, nll)
		for b := range perEx {
			perEx[b] += nll[b]
		}
	}

	total := 0.0
	for b := range perEx {
		total += perEx[b] / float64(sc.tgtLens[b])
	}
	return total / float64(B)
}

func lmTok(prog []string, t int) string {
	if t < len(prog) {
		return prog[t]
	}
	return EosToken
}
