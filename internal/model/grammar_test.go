package model

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/augment"
	"repro/internal/dataset"
	"repro/internal/grammar"
	"repro/internal/nltemplate"
	"repro/internal/params"
	"repro/internal/synthesis"
	"repro/internal/thingpedia"
	"repro/internal/thingtalk"
)

// sharedGrammarFixture builds (once) the realistic decode environment the
// grammar-integration tests run in: the builtin skill library, its grammar
// spec, an instantiated program corpus, and the target vocabulary a trained
// parser would carry.
var sharedGrammarFixture struct {
	once  sync.Once
	err   error
	lib   *thingpedia.Library
	spec  *grammar.Spec
	progs [][]string
	vocab []string
}

func grammarFixture(t testing.TB) (*thingpedia.Library, *grammar.Spec, [][]string, []string) {
	f := &sharedGrammarFixture
	f.once.Do(func() {
		lib := thingpedia.Builtin()
		g := nltemplate.StandardGrammar(lib, nltemplate.DefaultOptions)
		raw := synthesis.Synthesize(g, synthesis.Config{
			TargetPerRule: 20, MaxDepth: 4, Seed: 7, Schemas: lib,
		})
		sampler := params.NewSampler()
		rng := rand.New(rand.NewSource(11))
		seen := map[string]bool{}
		var progs [][]string
		for i := range raw {
			e := dataset.Example{Words: raw[i].Words, Program: raw[i].Program}
			inst, err := augment.Instantiate(&e, sampler, rng)
			if err != nil {
				continue
			}
			toks := inst.Program.Tokens()
			key := strings.Join(toks, " ")
			if seen[key] {
				continue
			}
			seen[key] = true
			progs = append(progs, toks)
		}
		if len(progs) < 100 {
			f.err = fmt.Errorf("corpus too small: %d programs", len(progs))
			return
		}
		vocabSet := map[string]bool{}
		for _, p := range progs {
			for _, tok := range p {
				vocabSet[tok] = true
			}
		}
		var toks []string
		for tok := range vocabSet {
			toks = append(toks, tok)
		}
		sort.Strings(toks)
		f.lib = lib
		f.spec = grammar.NewSpec(lib.Functions())
		f.progs = progs
		f.vocab = append([]string{UnkToken, BosToken, EosToken}, toks...)
	})
	if f.err != nil {
		t.Fatal(f.err)
	}
	return f.lib, f.spec, f.progs, f.vocab
}

// utteranceWords is the input-side word pool for random utterances (some of
// the words are deliberately absent from both vocabularies so the pointer
// path stays exercised).
var utteranceWords = []string{
	"show", "me", "the", "latest", "news", "when", "it", "rains", "post",
	"alpha", "bravo", "zulu", "42", "tweet", "picture", "every", "morning",
}

// newGrammarParser builds an untrained, randomly-initialized parser whose
// target vocabulary covers the builtin library, with the grammar automaton
// compiled and active. Untrained weights are the adversarial case for
// constrained decoding: the network's preferences are noise, so only the
// mask keeps the output well-formed.
func newGrammarParser(t testing.TB, seed int64) *Parser {
	_, spec, _, vocab := grammarFixture(t)
	cfg := Config{
		EmbedDim: 12, HiddenDim: 12, PointerGen: true,
		MaxDecodeLen: 32, Seed: seed,
	}
	var srcSeqs [][]string
	for _, w := range utteranceWords {
		srcSeqs = append(srcSeqs, []string{w})
	}
	p := newParser(cfg, BuildVocab(srcSeqs, 1), newVocabFromTokens(vocab))
	if err := p.SetGrammar(spec); err != nil {
		t.Fatalf("SetGrammar: %v", err)
	}
	if !p.GrammarActive() {
		t.Fatal("grammar not active after SetGrammar")
	}
	return p
}

func randomUtterance(rng *rand.Rand) []string {
	n := 3 + rng.Intn(5)
	words := make([]string, n)
	for i := range words {
		words[i] = utteranceWords[rng.Intn(len(utteranceWords))]
	}
	return words
}

// TestMaskedDecodeAlwaysValid is the soundness property of the integrated
// decoder: across 1000 random (weights, utterance) combinations — 20
// randomly-initialized parsers ("random snapshots") × 50 random utterances —
// every greedy masked decode must parse and typecheck. Beam and batched
// paths are sampled on a subset (they share the same mask plumbing).
func TestMaskedDecodeAlwaysValid(t *testing.T) {
	lib, _, _, _ := grammarFixture(t)
	schemas := lib.Schemas()
	check := func(ctx string, out []string) {
		t.Helper()
		prog, err := thingtalk.ParseTokens(out, thingtalk.ParseOptions{})
		if err != nil {
			t.Fatalf("%s: masked decode emitted a non-parsing program: %v\n%s",
				ctx, err, strings.Join(out, " "))
		}
		if err := thingtalk.Typecheck(prog, schemas); err != nil {
			t.Fatalf("%s: masked decode emitted an ill-typed program: %v\n%s",
				ctx, err, strings.Join(out, " "))
		}
	}
	decodes := 0
	for seed := int64(0); seed < 20; seed++ {
		p := newGrammarParser(t, 1000+seed)
		rng := rand.New(rand.NewSource(seed))
		var batch [][]string
		for i := 0; i < 50; i++ {
			words := randomUtterance(rng)
			check(fmt.Sprintf("seed %d greedy %d", seed, i), p.Parse(words))
			decodes++
			batch = append(batch, words)
		}
		// A sample of the same utterances through the batched greedy path
		// and the beam paths: identical mask guarantees apply.
		for i, out := range p.ParseBatch(batch[:6]) {
			check(fmt.Sprintf("seed %d batch row %d", seed, i), out)
		}
		check(fmt.Sprintf("seed %d beam", seed), p.ParseBeam(batch[0], 3))
		for i, out := range p.ParseBeamBatch(batch[:3], 2) {
			check(fmt.Sprintf("seed %d beam batch row %d", seed, i), out)
		}
	}
	if decodes != 1000 {
		t.Fatalf("expected 1000 greedy decodes, ran %d", decodes)
	}
}

// TestMaskedUnmaskedParityScorer pins the argmax parity rule at the scorer
// level: whenever the unmasked argmax is itself legal, maskedBest must pick
// the same token with the same mixed probability. States are real corpus
// program prefixes; distributions are random but peaked at the true next
// token so the legal-hit case dominates.
func TestMaskedUnmaskedParityScorer(t *testing.T) {
	_, _, progs, _ := grammarFixture(t)
	p := newGrammarParser(t, 42)
	words := []string{"now", "alpha", "42", "zulu"}
	rng := rand.New(rand.NewSource(5))
	V := p.tgt.Size()
	pv := make([]float64, V)
	alpha := make([]float64, len(words))
	var ms mixScorer
	var ls grammar.LegalSet
	var lc grammar.LegalCache
	maxLen := p.cfg.maxDecodeLen()

	legalHits := 0
	for pi, prog := range progs {
		if pi >= 200 {
			break
		}
		gs := p.grammarStart()
		for ti := range prog {
			if gs == nil || ti >= maxLen {
				break
			}
			// Random distribution, peaked at the true next token when it is
			// in vocabulary (it usually is).
			var sum float64
			for i := range pv {
				pv[i] = rng.Float64()
				sum += pv[i]
			}
			if id, ok := p.tgt.lookup(prog[ti]); ok && rng.Intn(4) > 0 {
				pv[id] += sum
				sum *= 2
			}
			for i := range pv {
				pv[i] /= sum
			}
			var asum float64
			for i := range alpha {
				alpha[i] = rng.Float64()
				asum += alpha[i]
			}
			for i := range alpha {
				alpha[i] /= asum
			}
			gate := 0.5 + rng.Float64()/2
			rem := maskedBudget(maxLen, ti)

			unTok, unP := p.bestTokenScored(&ms, pv, alpha, gate, words)
			p.auto.Legal(gs, rem, &ls)
			legal := false
			if id, ok := p.tgt.lookup(unTok); ok {
				legal = ls.Has(int32(id)) || (id == EosID && ls.EOS)
			} else {
				legal = ls.WordLegal(unTok)
			}
			if legal {
				legalHits++
				mTok, mP, ok := p.maskedBest(&ms, &ls, &lc, gs, rem, pv, alpha, gate, words)
				if !ok {
					t.Fatalf("prog %d step %d: maskedBest empty while %q legal", pi, ti, unTok)
				}
				if mTok != unTok || mP != unP {
					t.Fatalf("prog %d step %d: parity broken: unmasked (%q, %v) masked (%q, %v)",
						pi, ti, unTok, unP, mTok, mP)
				}
			}
			gs = p.grammarStep(gs, prog[ti])
		}
	}
	if legalHits < 200 {
		t.Fatalf("parity test vacuous: only %d legal-argmax cases", legalHits)
	}
}

// TestMaskedUnmaskedParityDecode is the end-to-end form: when an unmasked
// greedy decode happens to be fully legal (every emitted token in the mask,
// EOS accepted), the masked decode of the same utterance must be identical.
func TestMaskedUnmaskedParityDecode(t *testing.T) {
	p := newGrammarParser(t, 99)
	auto := p.auto
	rng := rand.New(rand.NewSource(17))
	maxLen := p.cfg.maxDecodeLen()
	var ls grammar.LegalSet
	compared := 0
	for i := 0; i < 200; i++ {
		words := randomUtterance(rng)
		p.auto = nil
		un := p.Parse(words)
		p.auto = auto

		// Replay the unmasked output against the mask, step for step as the
		// masked decoder would see it.
		ok := true
		gs := auto.Start()
		for ti, tok := range un {
			auto.Legal(gs, maskedBudget(maxLen, ti), &ls)
			legal := false
			if id, has := p.tgt.lookup(tok); has {
				legal = ls.Has(int32(id))
			} else {
				legal = ls.WordLegal(tok)
			}
			if !legal {
				ok = false
				break
			}
			id := -1
			if has := p.tgt.Has(tok); has {
				id = p.tgt.ID(tok)
			}
			next, err := auto.Step(gs, id, tok)
			if err != nil {
				ok = false
				break
			}
			gs = next
		}
		if ok {
			auto.Legal(gs, maskedBudget(maxLen, len(un)), &ls)
			ok = ls.EOS
		}
		if !ok {
			continue
		}
		compared++
		masked := p.Parse(words)
		if strings.Join(masked, " ") != strings.Join(un, " ") {
			t.Fatalf("utterance %v: unmasked output fully legal but masked differs:\nunmasked: %s\nmasked:   %s",
				words, strings.Join(un, " "), strings.Join(masked, " "))
		}
	}
	t.Logf("decode-level parity comparisons: %d/200", compared)
}

// TestSnapshotV3GrammarRoundTrip locks the version-3 snapshot block: the
// calibration threshold, grammar spec, and automaton checksum survive a
// save/load round trip; a tampered checksum is rejected; and the reloaded
// parser's masked decode is identical.
func TestSnapshotV3GrammarRoundTrip(t *testing.T) {
	_, spec, _, _ := grammarFixture(t)
	p := newGrammarParser(t, 3)
	p.SetMeta(SnapshotMeta{LibraryChecksum: "lib123", Generation: 4, Note: "v3 test"})
	p.SetCalibration(Calibration{Fitted: true, Threshold: -0.37})
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if q.Calibration() != p.Calibration() {
		t.Errorf("calibration round trip: %+v != %+v", q.Calibration(), p.Calibration())
	}
	if q.GrammarChecksum() != spec.Checksum() || q.GrammarChecksum() == "" {
		t.Errorf("grammar checksum round trip: %q != %q", q.GrammarChecksum(), spec.Checksum())
	}
	if !q.GrammarActive() {
		t.Error("grammar not active after reload")
	}
	if q.Meta() != p.Meta() {
		t.Errorf("meta round trip: %+v != %+v", q.Meta(), p.Meta())
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 5; i++ {
		words := randomUtterance(rng)
		if a, b := strings.Join(p.Parse(words), " "), strings.Join(q.Parse(words), " "); a != b {
			t.Fatalf("masked decode differs after round trip: %q != %q", a, b)
		}
	}

	// A tampered checksum must be rejected (the stored hex digest appears
	// exactly once in the stream: flip its last character).
	sum := spec.Checksum()
	altered := sum[:len(sum)-1] + string('f'-sum[len(sum)-1]+'0')
	tampered := bytes.Replace(buf.Bytes(), []byte(sum), []byte(altered), 1)
	if !bytes.Equal(tampered, buf.Bytes()) {
		if _, err := Load(bytes.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Errorf("tampered checksum: err = %v, want checksum mismatch", err)
		}
	}
}

// fixtureParser is the deterministic parser the committed back-compat
// fixtures were generated from: fixed seed, fixed toy vocabularies, no
// training (initialization is seeded, so the weights reproduce exactly).
func fixtureParser() *Parser {
	train, _ := toyPairs()
	var src, tgt [][]string
	for _, pr := range train {
		src = append(src, pr.Src)
		tgt = append(tgt, pr.Tgt)
	}
	cfg := Config{EmbedDim: 8, HiddenDim: 8, PointerGen: true, MaxDecodeLen: 16, Seed: 12345}
	return newParser(cfg, BuildVocab(src, 1), BuildVocab(tgt, 1))
}

// TestSnapshotBackCompatFixtures loads the committed version-1 and
// version-2 snapshot fixtures: old streams must keep loading as the format
// moves forward, with zero values for blocks their version predates.
// Regenerate with GENIE_REGEN_FIXTURES=1 after an intentional format change.
func TestSnapshotBackCompatFixtures(t *testing.T) {
	dir := filepath.Join("testdata", "snapshots")
	v1Path := filepath.Join(dir, "toy_v1.snapshot")
	v2Path := filepath.Join(dir, "toy_v2.snapshot")
	v2Meta := SnapshotMeta{LibraryChecksum: "fixturelib", Generation: 2, Note: "v2 fixture"}
	if os.Getenv("GENIE_REGEN_FIXTURES") != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		p := fixtureParser()
		f1, err := os.Create(v1Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.saveVersioned(f1, 1); err != nil {
			t.Fatal(err)
		}
		f1.Close()
		p.SetMeta(v2Meta)
		f2, err := os.Create(v2Path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.saveVersioned(f2, 2); err != nil {
			t.Fatal(err)
		}
		f2.Close()
		t.Log("fixtures regenerated")
	}

	q1, err := LoadFile(v1Path)
	if err != nil {
		t.Fatalf("loading v1 fixture (regenerate with GENIE_REGEN_FIXTURES=1): %v", err)
	}
	if q1.Meta() != (SnapshotMeta{}) {
		t.Errorf("v1 fixture carries meta: %+v", q1.Meta())
	}
	if q1.Calibration() != (Calibration{}) || q1.GrammarActive() || q1.GrammarChecksum() != "" {
		t.Errorf("v1 fixture carries grammar state: calib=%+v active=%v", q1.Calibration(), q1.GrammarActive())
	}

	q2, err := LoadFile(v2Path)
	if err != nil {
		t.Fatalf("loading v2 fixture (regenerate with GENIE_REGEN_FIXTURES=1): %v", err)
	}
	if q2.Meta() != v2Meta {
		t.Errorf("v2 fixture meta = %+v, want %+v", q2.Meta(), v2Meta)
	}
	if q2.Calibration() != (Calibration{}) || q2.GrammarActive() {
		t.Errorf("v2 fixture carries grammar state: calib=%+v active=%v", q2.Calibration(), q2.GrammarActive())
	}

	// Both fixtures decode without panicking and within the decode budget,
	// and agree with the deterministically re-created parser.
	want := fixtureParser()
	src := []string{"tweet", "alpha", "now"}
	for name, q := range map[string]*Parser{"v1": q1, "v2": q2} {
		out := q.Parse(src)
		if len(out) > q.cfg.maxDecodeLen() {
			t.Errorf("%s fixture decode exceeds budget: %d tokens", name, len(out))
		}
		if a, b := strings.Join(out, " "), strings.Join(want.Parse(src), " "); a != b {
			t.Errorf("%s fixture decode drifted from seeded init: %q != %q", name, a, b)
		}
	}
}

// TestParseAdaptive exercises the greedy-first escalation rule directly:
// with a threshold above the greedy score the beam runs, below it greedy
// wins, and without a fitted calibration it never escalates.
func TestParseAdaptive(t *testing.T) {
	p := newGrammarParser(t, 6)
	words := []string{"show", "me", "news"}
	_, greedyScore := p.ParseScored(words, 1)

	p.SetCalibration(Calibration{})
	if _, _, esc := p.ParseAdaptive(words, 4); esc {
		t.Error("escalated without a fitted calibration")
	}
	p.SetCalibration(Calibration{Fitted: true, Threshold: greedyScore - 1})
	toks, score, esc := p.ParseAdaptive(words, 4)
	if esc {
		t.Error("escalated although greedy score was above threshold")
	}
	if score != greedyScore {
		t.Errorf("adaptive greedy score %v != ParseScored %v", score, greedyScore)
	}
	if strings.Join(toks, " ") != strings.Join(p.Parse(words), " ") {
		t.Error("non-escalated adaptive output differs from greedy")
	}
	p.SetCalibration(Calibration{Fitted: true, Threshold: greedyScore + 1})
	beamToks, beamScore, esc := p.ParseAdaptive(words, 4)
	if !esc {
		t.Error("did not escalate although greedy score was below threshold")
	}
	wantToks, wantScore := p.ParseScored(words, 4)
	if strings.Join(beamToks, " ") != strings.Join(wantToks, " ") || beamScore != wantScore {
		t.Errorf("escalated adaptive output differs from beam: (%v, %v) != (%v, %v)",
			beamToks, beamScore, wantToks, wantScore)
	}
	if _, _, esc := p.ParseAdaptive(words, 1); esc {
		t.Error("width 1 must never escalate")
	}
}

// TestParseBatchScoredMatchesSequential: the batched greedy scores are the
// sequential ParseScored scores, row for row.
func TestParseBatchScoredMatchesSequential(t *testing.T) {
	p := newGrammarParser(t, 7)
	rng := rand.New(rand.NewSource(13))
	var batch [][]string
	for i := 0; i < 12; i++ {
		batch = append(batch, randomUtterance(rng))
	}
	batch = append(batch, nil) // empty row: nil output, -Inf score
	outs, scores := p.ParseBatchScored(batch)
	for i, words := range batch {
		wantToks, wantScore := p.ParseScored(words, 1)
		if strings.Join(outs[i], " ") != strings.Join(wantToks, " ") {
			t.Errorf("row %d tokens differ: %v != %v", i, outs[i], wantToks)
		}
		if scores[i] != wantScore {
			t.Errorf("row %d score %v != %v", i, scores[i], wantScore)
		}
	}
}

// BenchmarkMaskedDecode / BenchmarkUnmaskedDecode feed the CI
// bench-masked-decode artifact: the per-decode cost of mask maintenance on
// top of the fused scorer (same parser, same utterance, grammar on vs off).
func BenchmarkMaskedDecode(b *testing.B) {
	p := newGrammarParser(b, 21)
	words := []string{"show", "me", "the", "latest", "news"}
	var toks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks += len(p.Parse(words))
	}
	b.ReportMetric(float64(toks)/float64(b.N), "tokens/op")
}

// BenchmarkMaskedDecodeNoMemo is BenchmarkMaskedDecode with the per-context
// Legal memo disabled: the before/after pair in the bench-masked-decode
// artifact that isolates what memoization buys.
func BenchmarkMaskedDecodeNoMemo(b *testing.B) {
	legalMemoEnabled = false
	defer func() { legalMemoEnabled = true }()
	p := newGrammarParser(b, 21)
	words := []string{"show", "me", "the", "latest", "news"}
	var toks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks += len(p.Parse(words))
	}
	b.ReportMetric(float64(toks)/float64(b.N), "tokens/op")
}

func BenchmarkUnmaskedDecode(b *testing.B) {
	p := newGrammarParser(b, 21)
	p.auto = nil
	words := []string{"show", "me", "the", "latest", "news"}
	var toks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks += len(p.Parse(words))
	}
	b.ReportMetric(float64(toks)/float64(b.N), "tokens/op")
}
