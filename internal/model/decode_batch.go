package model

import (
	"math"
	"sort"
	"sync"

	"repro/internal/grammar"
	"repro/internal/nn"
)

// This file is the batched decode path: the serving layer's gathered window
// of requests advances through one batched forward per decode step (every
// live hypothesis is one row of the stacked tensors), so micro-batching buys
// matmul width instead of just queueing. Per row the batched kernels are
// numerically identical to the single-row ones, so ParseBatch emits exactly
// Parse's tokens and ParseBeamBatch exactly ParseBeam's.

// batchDecodeCtx is the pooled per-call state of one ParseBatch /
// ParseBeamBatch invocation: an inference graph from the shared pool plus
// the padded-encode and per-step row buffers. Like decodeCtx, nothing
// decode-time lives on the Parser, so batched decoding is concurrency-safe
// alongside the per-sentence paths.
//
//genielint:arena-scoped
type batchDecodeCtx struct {
	g      *nn.Graph
	bufs   batchBufs
	cbufs  batchBufs  // padded previous-program memory (contextual decode)
	cs     ctxScratch // effective mixture rows (contextual decode)
	scored []scoredToken
	ms     mixScorer
	prev   []int // per-row previous target token ids
	blocks []int // per-row memory block (request) indices
	srcIdx []int // per-row parent rows in the previous step's tensors
	reqOf  []int // greedy path: per-row request indices
	ls     grammar.LegalSet
	lc     grammar.LegalCache
}

var batchDecodeCtxs = sync.Pool{New: func() any { return new(batchDecodeCtx) }}

func acquireBatchDecodeCtx() *batchDecodeCtx {
	dc := batchDecodeCtxs.Get().(*batchDecodeCtx)
	dc.g = inferGraphs.Get()
	return dc
}

// release returns the graph (resetting its arena) and the scratch buffers to
// their pools; tensors produced during the call are invalid afterwards. The
// tensor-pointer buffers are zeroed first so the pooled context does not pin
// recycled arena tensors across requests.
func (dc *batchDecodeCtx) release() {
	dc.bufs.releaseTensors()
	dc.cbufs.releaseTensors()
	dc.cs.cenc.releaseTensors()
	inferGraphs.Put(dc.g)
	dc.g = nil
	batchDecodeCtxs.Put(dc)
}

// gatherRows copies the selected rows of t into a fresh graph tensor. It is
// decode-only (no gradient link): the batched decoders use it to carry the
// surviving hypotheses' states into the next lockstep decode step.
//
//genielint:returns-arena
func gatherRows(g *nn.Graph, t *nn.Tensor, idx []int) *nn.Tensor {
	out := g.NewTensor(len(idx), t.Cols)
	for i, r := range idx {
		copy(out.W[i*t.Cols:(i+1)*t.Cols], t.W[r*t.Cols:(r+1)*t.Cols])
	}
	return out
}

// decodeStepBatch runs one batched decoder step over R rows: embedding
// lookup, input feeding, LSTM, attention over each row's memory block, and
// the output projections. It is the batched form of step.
//
//genielint:returns-arena
func (p *Parser) decodeStepBatch(g *nn.Graph, H *nn.Tensor, lens, prev, blocks []int, h, c, ctx *nn.Tensor) (pv, alpha, gate, hN, cN, ctxN *nn.Tensor) {
	emb := g.LookupRows(p.decEmb.Table, prev)
	x := g.ConcatCols(emb, ctx)
	hN, cN = p.dec.StepBatch(g, x, h, c, nil)
	q := g.BatchedAffine(hN, p.attnLin.W, p.attnLin.B)
	alpha, ctxN = g.AttendSoftmaxContextBatch(q, H, blocks, lens)
	htilde := g.Tanh(g.BatchedAffine(g.ConcatCols(hN, ctxN), p.combLin.W, p.combLin.B))
	pv = g.SoftmaxRows(g.BatchedAffine(htilde, p.outLin.W, p.outLin.B))
	gate = g.Sigmoid(g.BatchedAffine(htilde, p.gateLin.W, p.gateLin.B))
	return pv, alpha, gate, hN, cN, ctxN
}

// ParseBatch greedily decodes B sentences in lockstep: one batched forward
// per decode step over the rows still running, instead of B independent
// Parse calls. Rows that emit </s> drop out of the following steps' batch.
// Outputs are token-identical to per-sentence Parse; like Parse, ParseBatch
// is safe for concurrent use.
func (p *Parser) ParseBatch(sentences [][]string) [][]string {
	outs, _ := p.ParseBatchScored(sentences)
	return outs
}

// ParseBatchScored is ParseBatch plus each request's length-normalized
// hypothesis score (exactly what ParseScored at width 1 returns). The
// adaptive serving path decodes a whole window greedily through it and
// re-decodes only the low-confidence subset with the beam.
func (p *Parser) ParseBatchScored(sentences [][]string) ([][]string, []float64) {
	B := len(sentences)
	outs := make([][]string, B)
	scores := make([]float64, B)
	for b := range scores {
		scores[b] = math.Inf(-1)
	}
	if B == 0 {
		return outs, scores
	}
	dc := acquireBatchDecodeCtx()
	defer dc.release()
	g := dc.g
	S := dc.bufs.prepareSrc(p.src, sentences)
	if S == 0 {
		return outs, scores
	}
	H, final := p.encodeBatch(g, &dc.bufs, B, S)
	hid := p.cfg.HiddenDim
	h := g.Tanh(g.BatchedAffine(final, p.initLin.W, p.initLin.B))
	c := g.NewTensor(B, hid)
	ctx := g.NewTensor(B, 2*hid)

	reqOf := grow(&dc.reqOf, B)
	prev := grow(&dc.prev, B)
	blocks := grow(&dc.blocks, B)
	keep := grow(&dc.srcIdx, B)
	logProb := make([]float64, B)
	done := make([]bool, B)
	var gss []*grammar.State // per-row grammar states, compacted with reqOf
	if p.auto != nil {
		gss = make([]*grammar.State, B)
	}
	R := 0
	for b := 0; b < B; b++ {
		if len(sentences[b]) == 0 {
			continue // Parse returns nil for empty input; so does this row
		}
		reqOf[R] = b
		prev[R] = BosID
		blocks[R] = b
		keep[R] = b
		if gss != nil {
			gss[R] = p.auto.Start()
		}
		R++
		outs[b] = make([]string, 0, 16)
	}
	if R == 0 {
		return outs, scores
	}
	if R < B {
		h = gatherRows(g, h, keep[:R])
		c = gatherRows(g, c, keep[:R])
		ctx = gatherRows(g, ctx, keep[:R])
	}
	V := p.tgt.Size()
	maxLen := p.cfg.maxDecodeLen()
	for t := 0; t < maxLen && R > 0; t++ {
		pv, alpha, gate, hN, cN, ctxN := p.decodeStepBatch(g, H, dc.bufs.lens, prev[:R], blocks[:R], h, c, ctx)
		w := 0
		for r := 0; r < R; r++ {
			req := reqOf[r]
			words := sentences[req]
			var tok string
			var prob float64
			picked := false
			if gss != nil && gss[r] != nil {
				if mt, mp, ok := p.maskedBest(&dc.ms, &dc.ls, &dc.lc, gss[r], maskedBudget(maxLen, t), pv.W[r*V:(r+1)*V], alpha.W[r*S:r*S+len(words)], gate.W[r], words); ok {
					tok, prob, picked = mt, mp, true
				} else {
					gss[r] = nil // defensive: decode this row's rest unmasked
				}
			}
			if !picked {
				tok, prob = p.bestTokenScored(&dc.ms, pv.W[r*V:(r+1)*V], alpha.W[r*S:r*S+len(words)], gate.W[r], words)
			}
			logProb[req] += math.Log(prob + 1e-12)
			if tok == EosToken {
				done[req] = true
				continue
			}
			outs[req] = append(outs[req], tok)
			var ngs *grammar.State
			if gss != nil {
				ngs = p.grammarStep(gss[r], tok)
			}
			reqOf[w] = req
			prev[w] = p.tgt.ID(tok)
			blocks[w] = req
			keep[w] = r
			if gss != nil {
				gss[w] = ngs
			}
			w++
		}
		R = w
		if R == 0 {
			break
		}
		if R < hN.Rows {
			h = gatherRows(g, hN, keep[:R])
			c = gatherRows(g, cN, keep[:R])
			ctx = gatherRows(g, ctxN, keep[:R])
		} else { // no row finished this step: reuse the outputs as-is
			h, c, ctx = hN, cN, ctxN
		}
	}
	for b := 0; b < B; b++ {
		if len(sentences[b]) == 0 {
			continue
		}
		scores[b] = lengthNormScore(logProb[b], len(outs[b]), done[b])
	}
	return outs, scores
}

// batchHyp is one hypothesis of the batched beam: beamItem with the decoder
// state replaced by a row index into the current step's stacked tensors.
type batchHyp struct {
	tokens  []string
	logProb float64
	prev    int
	done    bool
	row     int            // row in the latest step's output tensors (-1 once done)
	gs      *grammar.State // grammar state (nil when unmasked); shared on fork
}

func (bh *batchHyp) score() float64 { return lengthNormScore(bh.logProb, len(bh.tokens), bh.done) }

// bestBatchHypothesis applies the shared winner-selection rule
// (bestHypIndex) to a batched beam.
func bestBatchHypothesis(beam []batchHyp) batchHyp {
	return beam[bestHypIndex(len(beam),
		func(i int) bool { return beam[i].done },
		func(i int) float64 { return beam[i].score() })]
}

// ParseBeamBatch beam-decodes B sentences in lockstep: at every decode step
// all live hypotheses across all requests stack into one batched forward (a
// request's beams share its memory block via the attention block mapping),
// then each request expands and prunes its beam exactly as sequential
// ParseBeam does — so the outputs are token-identical to per-sentence
// ParseBeam calls. Width <= 1 falls back to the batched greedy path. Safe
// for concurrent use.
func (p *Parser) ParseBeamBatch(sentences [][]string, width int) [][]string {
	if width <= 1 {
		return p.ParseBatch(sentences)
	}
	B := len(sentences)
	outs := make([][]string, B)
	if B == 0 {
		return outs
	}
	dc := acquireBatchDecodeCtx()
	defer dc.release()
	g := dc.g
	S := dc.bufs.prepareSrc(p.src, sentences)
	if S == 0 {
		return outs
	}
	H, final := p.encodeBatch(g, &dc.bufs, B, S)
	hid := p.cfg.HiddenDim
	hPrev := g.Tanh(g.BatchedAffine(final, p.initLin.W, p.initLin.B))
	cPrev := g.NewTensor(B, hid)
	ctxPrev := g.NewTensor(B, 2*hid)

	beams := make([][]batchHyp, B)
	finished := make([]bool, B)
	for b := range beams {
		beams[b] = []batchHyp{{prev: BosID, row: b, gs: p.grammarStart()}}
		if len(sentences[b]) == 0 {
			finished[b] = true // ParseBeam returns nil for empty input
		}
	}
	V := p.tgt.Size()
	maxLen := p.cfg.maxDecodeLen()
	for t := 0; t < maxLen; t++ {
		// Assign a batch row to every live hypothesis; srcIdx records where
		// its state lives in the previous step's tensors.
		prev := dc.prev[:0]
		blocks := dc.blocks[:0]
		srcIdx := dc.srcIdx[:0]
		for b := range beams {
			if finished[b] {
				continue
			}
			for hi := range beams[b] {
				hyp := &beams[b][hi]
				if hyp.done {
					continue
				}
				srcIdx = append(srcIdx, hyp.row)
				hyp.row = len(srcIdx) - 1
				prev = append(prev, hyp.prev)
				blocks = append(blocks, b)
			}
		}
		dc.prev, dc.blocks, dc.srcIdx = prev, blocks, srcIdx
		if len(srcIdx) == 0 {
			break
		}
		hIn := gatherRows(g, hPrev, srcIdx)
		cIn := gatherRows(g, cPrev, srcIdx)
		ctxIn := gatherRows(g, ctxPrev, srcIdx)
		pv, alpha, gate, hN, cN, ctxN := p.decodeStepBatch(g, H, dc.bufs.lens, prev, blocks, hIn, cIn, ctxIn)
		hPrev, cPrev, ctxPrev = hN, cN, ctxN

		// Expand and prune each request exactly as sequential ParseBeam does.
		for b := range beams {
			if finished[b] {
				continue
			}
			words := sentences[b]
			var candidates []batchHyp
			allDone := true
			for _, item := range beams[b] {
				if item.done {
					candidates = append(candidates, item)
					continue
				}
				allDone = false
				r := item.row
				var cands []scoredToken
				masked := false
				if item.gs != nil {
					cands, masked = p.maskedTop(&dc.ms, &dc.ls, &dc.lc, item.gs, maskedBudget(maxLen, t), &dc.scored, pv.W[r*V:(r+1)*V], alpha.W[r*S:r*S+len(words)], gate.W[r], words, width)
				}
				if !masked {
					cands = p.topTokens(&dc.ms, &dc.scored, pv.W[r*V:(r+1)*V], alpha.W[r*S:r*S+len(words)], gate.W[r], words, width)
				}
				for _, cand := range cands {
					ni := batchHyp{
						tokens:  append(append([]string(nil), item.tokens...), cand.tok),
						logProb: item.logProb + math.Log(cand.p+1e-12),
						prev:    p.tgt.ID(cand.tok),
						row:     r,
					}
					if cand.tok == EosToken {
						ni.done = true
						ni.tokens = ni.tokens[:len(ni.tokens)-1]
						ni.row = -1
					} else if masked {
						ni.gs = p.grammarStep(item.gs, cand.tok)
					}
					candidates = append(candidates, ni)
				}
			}
			if allDone {
				finished[b] = true
				continue
			}
			sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].score() > candidates[j].score() })
			if len(candidates) > width {
				candidates = candidates[:width]
			}
			beams[b] = candidates
		}
	}
	for b := range beams {
		outs[b] = bestBatchHypothesis(beams[b]).tokens
	}
	return outs
}
