package model

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// sharedToy trains one parser on the toy copy task, shared by the decode,
// concurrency and snapshot tests (training is the expensive part; decoding
// a shared parser is what those tests exercise).
var sharedToy struct {
	once sync.Once
	p    *Parser
}

func trainedToyParser() *Parser {
	sharedToy.once.Do(func() {
		train, _ := toyPairs()
		sharedToy.p = Train(train, nil, nil, testConfig(7))
	})
	return sharedToy.p
}

func joinTokens(toks []string) string { return strings.Join(toks, " ") }

// TestConcurrentDecodeMatchesSequential is the regression test for the old
// Parser.scr decode race: one trained parser is decoded from many goroutines
// (greedy and beam) and every output must match the sequential decode
// token-for-token. Run under -race in CI.
func TestConcurrentDecodeMatchesSequential(t *testing.T) {
	p := trainedToyParser()
	train, val := toyPairs()
	var sentences [][]string
	for _, pr := range append(train, val...) {
		sentences = append(sentences, pr.Src)
	}

	wantGreedy := make([]string, len(sentences))
	wantBeam := make([]string, len(sentences))
	nonEmpty := false
	for i, s := range sentences {
		wantGreedy[i] = joinTokens(p.Parse(s))
		wantBeam[i] = joinTokens(p.ParseBeam(s, 3))
		nonEmpty = nonEmpty || wantGreedy[i] != ""
	}
	if !nonEmpty {
		t.Fatal("trained parser decodes nothing; test would be vacuous")
	}

	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Stagger the starting sentence so goroutines decode different
			// inputs at the same time.
			for rep := 0; rep < 3; rep++ {
				for k := range sentences {
					i := (k + w) % len(sentences)
					if got := joinTokens(p.Parse(sentences[i])); got != wantGreedy[i] {
						t.Errorf("worker %d: concurrent Parse(%v) = %q, sequential %q", w, sentences[i], got, wantGreedy[i])
						return
					}
					if got := joinTokens(p.ParseBeam(sentences[i], 3)); got != wantBeam[i] {
						t.Errorf("worker %d: concurrent ParseBeam(%v) = %q, sequential %q", w, sentences[i], got, wantBeam[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParseSteadyStateAllocs checks the pooled decode path allocates (near)
// nothing once warm — the returned token slice is the only per-call
// allocation.
func TestParseSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	p := trainedToyParser()
	src := []string{"tweet", "alpha", "now"}
	p.Parse(src) // warm the graph pool, arena and scratch buffers
	allocs := testing.AllocsPerRun(100, func() { p.Parse(src) })
	if allocs > 4 {
		t.Errorf("steady-state Parse allocates %.1f objects/op; want near-zero (result slice only)", allocs)
	}
}

// TestBeamLengthNormalization is the regression test for the raw
// cumulative-log-probability ranking: a truncated one-token hypothesis with
// a high total (because it has fewer factors) used to beat the full program.
// Length normalization must pick the full program, which matches greedy.
func TestBeamLengthNormalization(t *testing.T) {
	p := trainedToyParser()
	train, _ := toyPairs()
	src := train[0].Src
	gold := p.Parse(src) // greedy decode of a fitted training example
	if len(gold) < 3 {
		t.Fatalf("greedy decode too short to exercise truncation: %v", gold)
	}

	// Truncated: 1 token + </s> = 2 factors totalling -0.5 (avg -0.25).
	// Full: len(gold)+1 factors totalling -1.2 (avg better than -0.25, but
	// the raw sum is lower simply because there are more factors).
	truncated := beamItem{tokens: gold[:1], logProb: -0.5, done: true}
	full := beamItem{tokens: gold, logProb: -1.2, done: true}
	beam := []beamItem{truncated, full}

	// The pre-fix ranking — raw cumulative log-probability — picks the
	// truncated program because every extra token lowers the sum.
	rawBest := beam[0]
	for _, it := range beam {
		if it.logProb > rawBest.logProb {
			rawBest = it
		}
	}
	if joinTokens(rawBest.tokens) != joinTokens(truncated.tokens) {
		t.Fatal("test setup wrong: raw log-prob ranking should favor the truncated hypothesis")
	}

	// The fixed ranking normalizes by length and picks the full program.
	best := bestHypothesis(beam)
	if joinTokens(best.tokens) != joinTokens(gold) {
		t.Errorf("length-normalized selection picked %v, want the full greedy program %v", best.tokens, gold)
	}

	// End to end: the fixed beam must not fall below greedy on fitted
	// examples (truncation would make them differ).
	for _, pr := range train[:6] {
		greedy := joinTokens(p.Parse(pr.Src))
		for _, width := range []int{2, 4} {
			if got := joinTokens(p.ParseBeam(pr.Src, width)); len(got) < len(greedy) {
				t.Errorf("ParseBeam(%v, %d) = %q truncates below greedy %q", pr.Src, width, got, greedy)
			}
		}
	}
}

func TestBeamScoreNormalization(t *testing.T) {
	it := beamItem{tokens: []string{"a", "b", "c"}, logProb: -3.0}
	if got := it.score(); math.Abs(got-(-1.0)) > 1e-12 {
		t.Errorf("in-flight score = %v, want -1.0 (3 factors)", got)
	}
	it.done = true // </s> adds a factor
	if got := it.score(); math.Abs(got-(-0.75)) > 1e-12 {
		t.Errorf("done score = %v, want -0.75 (4 factors)", got)
	}
	empty := beamItem{}
	if got := empty.score(); got != 0 {
		t.Errorf("empty hypothesis score = %v, want 0", got)
	}
}

// TestMaxDecodeLen covers the shared fallback helper: Parse and ParseBeam
// read the same bound, and an unset MaxDecodeLen falls back to
// DefaultConfig's rather than a drifting literal.
func TestMaxDecodeLen(t *testing.T) {
	if got := (Config{}).maxDecodeLen(); got != DefaultConfig.MaxDecodeLen {
		t.Errorf("zero config maxDecodeLen = %d, want DefaultConfig.MaxDecodeLen = %d", got, DefaultConfig.MaxDecodeLen)
	}
	if got := (Config{MaxDecodeLen: 7}).maxDecodeLen(); got != 7 {
		t.Errorf("maxDecodeLen = %d, want 7", got)
	}

	// Behavior: a tiny bound truncates both decode paths identically.
	q := *trainedToyParser()
	q.cfg.MaxDecodeLen = 2
	src := []string{"tweet", "alpha", "now"}
	if out := q.Parse(src); len(out) > 2 {
		t.Errorf("Parse ignored MaxDecodeLen=2: %v", out)
	}
	if out := q.ParseBeam(src, 3); len(out) > 2 {
		t.Errorf("ParseBeam ignored MaxDecodeLen=2: %v", out)
	}
}
