package model

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSnapshotRoundTripBitIdentical(t *testing.T) {
	p := trainedToyParser()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Weights: bit-identical, tensor by tensor.
	pp, qp := p.Params(), q.Params()
	if len(pp) != len(qp) {
		t.Fatalf("param count changed: %d -> %d", len(pp), len(qp))
	}
	for i := range pp {
		if pp[i].Rows != qp[i].Rows || pp[i].Cols != qp[i].Cols {
			t.Fatalf("tensor %d shape changed: %dx%d -> %dx%d", i, pp[i].Rows, pp[i].Cols, qp[i].Rows, qp[i].Cols)
		}
		for j := range pp[i].W {
			if pp[i].W[j] != qp[i].W[j] {
				t.Fatalf("tensor %d element %d not bit-identical: %v != %v", i, j, pp[i].W[j], qp[i].W[j])
			}
		}
	}
	if p.cfg != q.cfg {
		t.Errorf("config changed: %+v -> %+v", p.cfg, q.cfg)
	}

	// Decode: identical output token-for-token, greedy and beam.
	train, val := toyPairs()
	for _, pr := range append(train, val...) {
		if a, b := strings.Join(p.Parse(pr.Src), " "), strings.Join(q.Parse(pr.Src), " "); a != b {
			t.Fatalf("Parse(%v) differs after round trip: %q != %q", pr.Src, a, b)
		}
		if a, b := strings.Join(p.ParseBeam(pr.Src, 3), " "), strings.Join(q.ParseBeam(pr.Src, 3), " "); a != b {
			t.Fatalf("ParseBeam(%v) differs after round trip: %q != %q", pr.Src, a, b)
		}
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	p := trainedToyParser()
	path := filepath.Join(t.TempDir(), "toy.parser")
	if err := p.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	q, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	src := []string{"tweet", "alpha", "now"}
	if a, b := strings.Join(p.Parse(src), " "), strings.Join(q.Parse(src), " "); a != b {
		t.Errorf("file round trip decode differs: %q != %q", a, b)
	}
}

// TestSnapshotMetaRoundTrip: the version-2 provenance block survives the
// round trip, and a version-1 stream (no meta, no BucketByLength) still
// loads with zero meta.
func TestSnapshotMetaRoundTrip(t *testing.T) {
	p := trainedToyParser()
	defer p.SetMeta(SnapshotMeta{}) // shared parser: restore for other tests
	meta := SnapshotMeta{LibraryChecksum: "abc123", Generation: 7, Note: "fleet:alpha"}
	p.SetMeta(meta)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Meta() != meta {
		t.Errorf("meta round trip = %+v, want %+v", q.Meta(), meta)
	}

	// A version-1 stream (no meta, no BucketByLength, no grammar block)
	// still loads, with zero meta.
	var v1 bytes.Buffer
	if err := p.saveVersioned(&v1, 1); err != nil {
		t.Fatalf("saveVersioned(1): %v", err)
	}
	q1, err := Load(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("loading version-1 stream: %v", err)
	}
	if q1.Meta() != (SnapshotMeta{}) {
		t.Errorf("version-1 load carries meta: %+v", q1.Meta())
	}
	src := []string{"tweet", "alpha", "now"}
	if a, b := strings.Join(p.Parse(src), " "), strings.Join(q1.Parse(src), " "); a != b {
		t.Errorf("version-1 load decodes differently: %q != %q", a, b)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("NOTASNAPSHOT AT ALL"))); err == nil {
		t.Error("Load accepted a non-snapshot stream")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.WriteString(snapshotMagic)
	buf.Write([]byte{99, 0, 0, 0, 0, 0, 0, 0})
	if _, err := Load(bytes.NewReader(buf.Bytes())); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("Load of wrong version: err = %v, want version error", err)
	}
	// Truncated stream.
	p := trainedToyParser()
	var full bytes.Buffer
	if err := p.Save(&full); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(full.Bytes()[:full.Len()/2])); err == nil {
		t.Error("Load accepted a truncated snapshot")
	}
	// Valid header but garbage config: must error cleanly, not allocate
	// gigabytes off a corrupt dimension.
	corrupt := append([]byte(nil), full.Bytes()...)
	const cfgOff = len(snapshotMagic) + 8 // EmbedDim is the first config field
	corrupt[cfgOff+3] = 0x40              // EmbedDim |= 1<<30
	if _, err := Load(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("Load of corrupt dimensions: err = %v, want implausible-dimension error", err)
	}
}
