package nn

import (
	"math"
	"runtime"
	"sync"
)

// This file holds the batched (B×n) kernels: the per-row fused kernels of
// fused.go lifted to operate on B stacked rows in one forward pass and one
// tape record. Every kernel accumulates, per row, exactly the same
// floating-point expressions in the same order as B independent single-row
// calls — so a batched loss matches the mean of per-example losses to
// rounding, and the parity tests in batched_test.go can pin it tightly.
//
// Large kernels split their work across GOMAXPROCS goroutines: rows for the
// forward passes, weight-matrix rows (the k dimension) for the matmul
// backward. The partitions are disjoint and every accumulator keeps its
// sequential order, so results are bitwise deterministic for any core count.
// Below the parallelWorkMin flop estimate a kernel runs inline through the
// same named chunk function, allocating nothing; only the parallel branch
// pays a closure and WaitGroup per call.

// nllEps matches the epsilon inside NLLPointerMix.
const nllEps = 1e-9

// parallelWorkMin is the approximate per-kernel flop count below which
// forking goroutines costs more than it saves and the kernel runs inline.
const parallelWorkMin = 1 << 16

// useParallel reports whether a kernel over n chunks of approximately work
// total flops should fork.
func useParallel(n, work int) bool {
	return n >= 2 && work >= parallelWorkMin && runtime.GOMAXPROCS(0) > 1
}

// parallelChunks splits [0, n) into one contiguous chunk per processor and
// runs f(lo, hi) on each concurrently. Callers guarantee chunks touch
// disjoint memory.
func parallelChunks(n int, f func(lo, hi int)) {
	chunks := runtime.GOMAXPROCS(0)
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := min(lo+size, n)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// batchMatMulRows accumulates rows [lo, hi) of a·w into dst (a is row-major
// rows×cols, flat), skipping rows where active is false (nil = all rows).
// The blocked tile order matches rowMatMulInto's per-element accumulation
// order (k ascending, zeros skipped), so each computed output row is bitwise
// identical to a single-row call.
func batchMatMulRows(a []float64, cols int, w *Tensor, dst []float64, active []bool, lo, hi int) {
	p := w.Cols
	for j0 := 0; j0 < p; j0 += matMulBlock {
		j1 := min(j0+matMulBlock, p)
		for k0 := 0; k0 < cols; k0 += matMulBlock {
			k1 := min(k0+matMulBlock, cols)
			for i := lo; i < hi; i++ {
				if active != nil && !active[i] {
					continue
				}
				arow := a[i*cols : (i+1)*cols]
				orow := dst[i*p : (i+1)*p]
				for k := k0; k < k1; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					wrow := w.W[k*p : (k+1)*p]
					for j := j0; j < j1; j++ {
						orow[j] += av * wrow[j]
					}
				}
			}
		}
	}
}

// batchMatMulInto accumulates a·w into dst for a row-major rows×cols batch;
// rows where active is false are skipped (their output stays zero — the
// batched LSTM never reads them for carried-through rows).
func batchMatMulInto(a []float64, rows, cols int, w *Tensor, dst []float64, active []bool) {
	if rows == 1 && active == nil {
		rowMatMulInto(a, w, dst)
		return
	}
	if useParallel(rows, rows*cols*w.Cols) {
		parallelChunks(rows, func(lo, hi int) { batchMatMulRows(a, cols, w, dst, active, lo, hi) })
		return
	}
	batchMatMulRows(a, cols, w, dst, active, 0, rows)
}

// backBatchMatMulK accumulates the gradients of out = a·w for weight rows
// [klo, khi): each k owns w.DW row k and a.DW column k. The input-gradient
// dot product runs over four accumulators to break the floating-point add
// dependency chain. Weight gradients accumulate in exactly the order of B
// sequential single-row backward passes (batch rows ascending per element —
// bitwise identical); the input-gradient j-sum is reassociated by the
// accumulators within ~1 ulp, which the kernel parity tests bound. Rows
// where active is false are skipped: their dOut rows are zero, so they
// contribute nothing.
func backBatchMatMulK(a, w *Tensor, dOut []float64, active []bool, klo, khi int) {
	B, in, n := a.Rows, a.Cols, w.Cols
	for k := klo; k < khi; k++ {
		wrow := w.W[k*n : (k+1)*n]
		wdrow := w.DW[k*n : (k+1)*n]
		for i := 0; i < B; i++ {
			if active != nil && !active[i] {
				continue
			}
			av := a.W[i*in+k]
			od := dOut[i*n : (i+1)*n]
			var a0, a1, a2, a3 float64
			j := 0
			for ; j+4 <= n; j += 4 {
				d0, d1, d2, d3 := od[j], od[j+1], od[j+2], od[j+3]
				a0 += d0 * wrow[j]
				wdrow[j] += d0 * av
				a1 += d1 * wrow[j+1]
				wdrow[j+1] += d1 * av
				a2 += d2 * wrow[j+2]
				wdrow[j+2] += d2 * av
				a3 += d3 * wrow[j+3]
				wdrow[j+3] += d3 * av
			}
			for ; j < n; j++ {
				d := od[j]
				a0 += d * wrow[j]
				wdrow[j] += d * av
			}
			a.DW[i*in+k] += (a0 + a1) + (a2 + a3)
		}
	}
}

func backBatchMatMul(a, w *Tensor, dOut []float64, active []bool) {
	in := a.Cols
	if useParallel(in, a.Rows*in*w.Cols) {
		parallelChunks(in, func(klo, khi int) { backBatchMatMulK(a, w, dOut, active, klo, khi) })
		return
	}
	backBatchMatMulK(a, w, dOut, active, 0, in)
}

// BatchedAffine computes x·W + b for a B×in batch in one pass: the batched
// form of AffineRow, with the bias row broadcast over the batch.
func (g *Graph) BatchedAffine(x, w, b *Tensor) *Tensor {
	if x.Cols != w.Rows || b.Cols != w.Cols || b.Rows != 1 {
		panic("nn: BatchedAffine shape mismatch")
	}
	out := g.NewTensor(x.Rows, w.Cols)
	batchMatMulInto(x.W, x.Rows, x.Cols, w, out.W, nil)
	n := w.Cols
	for i := 0; i < x.Rows; i++ {
		orow := out.W[i*n : (i+1)*n]
		for j, bv := range b.W {
			orow[j] += bv
		}
	}
	g.push(tapeOp{kind: opAffineBatch, a: x, b: w, c: b, out: out})
	return out
}

func backAffineBatch(x, w, b, out *Tensor) {
	n := w.Cols
	// Bias: broadcast backward, batch rows in ascending order.
	for i := 0; i < x.Rows; i++ {
		odrow := out.DW[i*n : (i+1)*n]
		for j, d := range odrow {
			b.DW[j] += d
		}
	}
	backBatchMatMul(x, w, out.DW, nil)
}

// lstmBatchRows runs the activation and state-update stage of the batched
// LSTM step for rows [lo, hi), after pre has been filled with x·Wx (pre.W)
// and h·Wh (pre.DW). Inactive rows copy their state through.
func lstmBatchRows(cell *LSTMCell, h, c, pre, acts, tc, hNext, cNext *Tensor, active []bool, lo, hi int) {
	H := cell.Hidden
	n := 4 * H
	for bi := lo; bi < hi; bi++ {
		if active != nil && !active[bi] {
			copy(hNext.W[bi*H:(bi+1)*H], h.W[bi*H:(bi+1)*H])
			copy(cNext.W[bi*H:(bi+1)*H], c.W[bi*H:(bi+1)*H])
			continue
		}
		o := bi * n
		for j := 0; j < n; j++ {
			v := (pre.W[o+j] + pre.DW[o+j]) + cell.B.W[j]
			if j < 3*H {
				acts.W[o+j] = 1 / (1 + math.Exp(-v))
			} else {
				acts.W[o+j] = math.Tanh(v)
			}
		}
		s := bi * H
		for j := 0; j < H; j++ {
			// Two statements, matching Add(Mul(f,c), Mul(i,cand)) rounding.
			fc := acts.W[o+H+j] * c.W[s+j]
			ic := acts.W[o+j] * acts.W[o+3*H+j]
			cNext.W[s+j] = fc + ic
			tc.W[s+j] = math.Tanh(cNext.W[s+j])
			hNext.W[s+j] = acts.W[o+2*H+j] * tc.W[s+j]
		}
	}
}

// lstmStepBatch advances an LSTM cell one timestep for B stacked rows in one
// fused pass: the batched form of lstmStep. Rows where active is false carry
// their (h, c) state through unchanged — the padding scheme of the batched
// encoder, where sequences shorter than the batch maximum stop stepping —
// and contribute nothing to any gradient. A nil active means all rows step.
// The active slice is retained until Backward/Reset.
func (g *Graph) lstmStepBatch(cell *LSTMCell, x, h, c *Tensor, active []bool) (hNext, cNext *Tensor) {
	B := x.Rows
	H := cell.Hidden
	n := 4 * H
	if h.Rows != B || c.Rows != B || x.Cols != cell.Wx.Rows || h.Cols != H {
		panic("nn: StepBatch shape mismatch")
	}
	// pre.W accumulates x·Wx; pre.DW doubles as scratch for h·Wh during the
	// forward pass (this op's backward never reads pre), as in lstmStep.
	pre := g.NewTensor(B, n)
	batchMatMulInto(x.W, B, x.Cols, cell.Wx, pre.W, active)
	batchMatMulInto(h.W, B, h.Cols, cell.Wh, pre.DW, active)
	acts := g.NewTensor(B, n)
	tc := g.NewTensor(B, H)
	// Locals (not the named results) go into the closure: capturing a named
	// result would box it at function entry even on the inline path.
	hN := g.NewTensor(B, H)
	cN := g.NewTensor(B, H)
	if useParallel(B, B*n*8) {
		parallelChunks(B, func(lo, hi int) { lstmBatchRows(cell, h, c, pre, acts, tc, hN, cN, active, lo, hi) })
	} else {
		lstmBatchRows(cell, h, c, pre, acts, tc, hN, cN, active, 0, B)
	}
	g.push(tapeOp{kind: opLSTMStepBatch, cell: cell, a: x, b: h, c: c,
		out: hN, out2: cN, aux: acts, aux2: tc, mask: active})
	return hN, cN
}

// lstmBatchGateGrads computes the pre-activation gate gradients of rows
// [lo, hi) into acts.DW; inactive rows pass their state gradients straight
// through and leave a zero gradient row so the weight and bias passes see no
// contribution from them.
func lstmBatchGateGrads(o *tapeOp, lo, hi int) {
	cell := o.cell
	h, cPrev := o.b, o.c
	hNext, cNext := o.out, o.out2
	acts, tc := o.aux, o.aux2
	active := o.mask
	H := cell.Hidden
	n := 4 * H
	dG := acts.DW
	for bi := lo; bi < hi; bi++ {
		o4 := bi * n
		s := bi * H
		if active != nil && !active[bi] {
			for j := 0; j < n; j++ {
				dG[o4+j] = 0
			}
			for j := 0; j < H; j++ {
				h.DW[s+j] += hNext.DW[s+j]
				cPrev.DW[s+j] += cNext.DW[s+j]
			}
			continue
		}
		for j := 0; j < H; j++ {
			iv := acts.W[o4+j]
			fv := acts.W[o4+H+j]
			ov := acts.W[o4+2*H+j]
			cv := acts.W[o4+3*H+j]
			tcj := tc.W[s+j]
			dh := hNext.DW[s+j]
			dO := dh * tcj
			dtc := dh * ov
			cNext.DW[s+j] += dtc * (1 - tcj*tcj)
			dc := cNext.DW[s+j]
			dF := dc * cPrev.W[s+j]
			cPrev.DW[s+j] += dc * fv
			dI := dc * cv
			dCand := dc * iv
			dG[o4+j] = dI * iv * (1 - iv)
			dG[o4+H+j] = dF * fv * (1 - fv)
			dG[o4+2*H+j] = dO * ov * (1 - ov)
			dG[o4+3*H+j] = dCand * (1 - cv*cv)
		}
	}
}

func backLSTMStepBatch(o *tapeOp) {
	cell := o.cell
	x, h := o.a, o.b
	B := x.Rows
	n := 4 * cell.Hidden
	dG := o.aux.DW
	if useParallel(B, B*n*8) {
		parallelChunks(B, func(lo, hi int) { lstmBatchGateGrads(o, lo, hi) })
	} else {
		lstmBatchGateGrads(o, 0, B)
	}
	for bi := 0; bi < B; bi++ {
		o4 := bi * n
		for j := 0; j < n; j++ {
			cell.B.DW[j] += dG[o4+j]
		}
	}
	backBatchMatMul(h, cell.Wh, dG, o.mask)
	backBatchMatMul(x, cell.Wx, dG, o.mask)
}

// attendDotSliceInto computes scores = q·hᵀ over a flat rows×cols memory
// slice, matching attendDotInto's accumulation order.
func attendDotSliceInto(q, h []float64, rows, cols int, dst []float64) {
	for i := 0; i < rows; i++ {
		var s float64
		hrow := h[i*cols : (i+1)*cols]
		for j, qv := range q {
			s += qv * hrow[j]
		}
		dst[i] = s
	}
}

// weightedSumSliceInto accumulates α·h over a flat rows×cols memory slice,
// matching weightedSumInto's accumulation order.
func weightedSumSliceInto(alpha, h []float64, rows, cols int, dst []float64) {
	for i := 0; i < rows; i++ {
		a := alpha[i]
		if a == 0 {
			continue
		}
		hrow := h[i*cols : (i+1)*cols]
		for j := range dst {
			dst[j] += a * hrow[j]
		}
	}
}

// attendBatchRows runs the masked attention forward for query rows [lo, hi).
func attendBatchRows(q, H *Tensor, blocks, lens []int, S int, sc, alpha, ctx *Tensor, lo, hi int) {
	d := q.Cols
	for r := lo; r < hi; r++ {
		m := r
		if blocks != nil {
			m = blocks[r]
		}
		L := lens[m]
		mem := H.W[m*S*d : (m*S+L)*d]
		attendDotSliceInto(q.W[r*d:(r+1)*d], mem, L, d, sc.W[r*S:r*S+L])
		softmaxInto(sc.W[r*S:r*S+L], alpha.W[r*S:r*S+L])
		weightedSumSliceInto(alpha.W[r*S:r*S+L], mem, L, d, ctx.W[r*d:(r+1)*d])
	}
}

// AttendSoftmaxContextBatch is the batched attention kernel: queries q (R×d)
// attend over a padded memory H ((M*S)×d, M blocks of S rows each), with
// lens[m] giving block m's valid row count — scores, softmax and the context
// sum all restrict to the valid prefix, so padding rows never receive
// probability mass. blocks[r] names the memory block row r attends (beam
// rows of one request share its block); nil means row r attends block r
// (R == M), the training layout, and the only one supported on
// gradient-recording graphs. Returns the attention weights alpha (R×S, zero
// beyond the block's length) and the context ctx (R×d). The lens slice is
// retained until Backward/Reset.
func (g *Graph) AttendSoftmaxContextBatch(q, H *Tensor, blocks, lens []int) (alpha, ctx *Tensor) {
	R, d := q.Rows, q.Cols
	M := len(lens)
	if H.Cols != d || M == 0 || H.Rows%M != 0 {
		panic("nn: AttendSoftmaxContextBatch shape mismatch")
	}
	if blocks == nil && R != M {
		panic("nn: AttendSoftmaxContextBatch needs blocks when R != len(lens)")
	}
	if g.NeedsGrad && blocks != nil {
		panic("nn: AttendSoftmaxContextBatch blocks are inference-only")
	}
	S := H.Rows / M
	// sc.W holds the raw scores; sc.DW is backward's score-gradient scratch.
	// Locals (not the named results) go into the closure: capturing a named
	// result would box it at function entry even on the inline path.
	sc := g.NewTensor(R, S)
	al := g.NewTensor(R, S)
	cx := g.NewTensor(R, d)
	if useParallel(R, R*S*d*2) {
		parallelChunks(R, func(lo, hi int) { attendBatchRows(q, H, blocks, lens, S, sc, al, cx, lo, hi) })
	} else {
		attendBatchRows(q, H, blocks, lens, S, sc, al, cx, 0, R)
	}
	g.push(tapeOp{kind: opAttendBatch, a: q, b: H, out: cx, aux: al, aux2: sc, ints: lens})
	return al, cx
}

// backAttendBatchRows runs the attention backward for rows [lo, hi). The
// record-time identity block layout means row r owns memory rows
// [r*S, r*S+lens[r]), so row chunks touch disjoint gradients.
func backAttendBatchRows(o *tapeOp, lo, hi int) {
	q, H := o.a, o.b
	ctx, alpha, sc := o.out, o.aux, o.aux2
	lens := o.ints
	d := q.Cols
	S := alpha.Cols
	for r := lo; r < hi; r++ {
		L := lens[r]
		aW := alpha.W[r*S : r*S+L]
		aDW := alpha.DW[r*S : r*S+L]
		scDW := sc.DW[r*S : r*S+L]
		ctxDW := ctx.DW[r*d : (r+1)*d]
		qW := q.W[r*d : (r+1)*d]
		qDW := q.DW[r*d : (r+1)*d]
		base := r * S * d
		// WeightedSumRows backward (ctx = alpha·H) over the valid prefix.
		for i := 0; i < L; i++ {
			hrow := H.W[base+i*d : base+(i+1)*d]
			hdrow := H.DW[base+i*d : base+(i+1)*d]
			var acc float64
			a := aW[i]
			for j, od := range ctxDW {
				acc += od * hrow[j]
				hdrow[j] += od * a
			}
			aDW[i] += acc
		}
		// SoftmaxRow backward (alpha = softmax(scores)).
		var dot float64
		for i := range aW {
			dot += aW[i] * aDW[i]
		}
		for i := range aW {
			scDW[i] += aW[i] * (aDW[i] - dot)
		}
		// AttendDot backward (scores = q·Hᵀ).
		for i := 0; i < L; i++ {
			od := scDW[i]
			if od == 0 {
				continue
			}
			hrow := H.W[base+i*d : base+(i+1)*d]
			hdrow := H.DW[base+i*d : base+(i+1)*d]
			for j, qv := range qW {
				qDW[j] += od * hrow[j]
				hdrow[j] += od * qv
			}
		}
	}
}

func backAttendBatch(o *tapeOp) {
	R := o.a.Rows
	if useParallel(R, R*o.aux.Cols*o.a.Cols*4) {
		parallelChunks(R, func(lo, hi int) { backAttendBatchRows(o, lo, hi) })
		return
	}
	backAttendBatchRows(o, 0, R)
}

func softmaxRowsRange(a, out *Tensor, lo, hi int) {
	n := a.Cols
	for r := lo; r < hi; r++ {
		softmaxInto(a.W[r*n:(r+1)*n], out.W[r*n:(r+1)*n])
	}
}

// SoftmaxRows applies SoftmaxRow to every row of a B×n tensor.
func (g *Graph) SoftmaxRows(a *Tensor) *Tensor {
	out := g.NewTensor(a.Rows, a.Cols)
	if useParallel(a.Rows, a.Rows*a.Cols*4) {
		parallelChunks(a.Rows, func(lo, hi int) { softmaxRowsRange(a, out, lo, hi) })
	} else {
		softmaxRowsRange(a, out, 0, a.Rows)
	}
	g.push(tapeOp{kind: opSoftmaxRows, a: a, out: out})
	return out
}

func backSoftmaxRowsRange(a, out *Tensor, lo, hi int) {
	n := a.Cols
	for r := lo; r < hi; r++ {
		oW := out.W[r*n : (r+1)*n]
		oDW := out.DW[r*n : (r+1)*n]
		aDW := a.DW[r*n : (r+1)*n]
		var dot float64
		for i := range oW {
			dot += oW[i] * oDW[i]
		}
		for i := range aDW {
			aDW[i] += oW[i] * (oDW[i] - dot)
		}
	}
}

func backSoftmaxRows(a, out *Tensor) {
	if useParallel(a.Rows, a.Rows*a.Cols*4) {
		parallelChunks(a.Rows, func(lo, hi int) { backSoftmaxRowsRange(a, out, lo, hi) })
		return
	}
	backSoftmaxRowsRange(a, out, 0, a.Rows)
}

// LookupRows stacks the embedding rows of ids into a len(ids)×dim batch; the
// batched form of LookupRow. The ids slice is retained until Backward/Reset.
func (g *Graph) LookupRows(emb *Tensor, ids []int) *Tensor {
	d := emb.Cols
	out := g.NewTensor(len(ids), d)
	for i, id := range ids {
		copy(out.W[i*d:(i+1)*d], emb.W[id*d:(id+1)*d])
	}
	g.push(tapeOp{kind: opLookupRows, a: emb, ints: ids, out: out})
	return out
}

// ConcatCols concatenates two equal-height matrices along columns: the
// batched form of the two-part ConcatRow.
func (g *Graph) ConcatCols(a, b *Tensor) *Tensor {
	if a.Rows != b.Rows {
		panic("nn: ConcatCols row mismatch")
	}
	an, bn := a.Cols, b.Cols
	out := g.NewTensor(a.Rows, an+bn)
	for i := 0; i < a.Rows; i++ {
		copy(out.W[i*(an+bn):], a.W[i*an:(i+1)*an])
		copy(out.W[i*(an+bn)+an:], b.W[i*bn:(i+1)*bn])
	}
	g.push(tapeOp{kind: opConcatCols2, a: a, b: b, out: out})
	return out
}

func backConcatCols2(a, b, out *Tensor) {
	an, bn := a.Cols, b.Cols
	for i := 0; i < a.Rows; i++ {
		orow := out.DW[i*(an+bn) : (i+1)*(an+bn)]
		arow := a.DW[i*an : (i+1)*an]
		brow := b.DW[i*bn : (i+1)*bn]
		for j := range arow {
			arow[j] += orow[j]
		}
		for j := range brow {
			brow[j] += orow[an+j]
		}
	}
}

// PackMemoryBatch assembles the padded attention memory from per-position
// batch rows: rows[i] is the B×d encoder output at source position i, and
// the result is a (B*S)×d tensor (S = len(rows)) whose block b holds
// sequence b's memory — row b*S+i copies rows[i]'s row b for i < lens[b],
// and padding rows beyond a sequence's length stay zero. The rows and lens
// slices are retained until Backward/Reset (the RowsToMatrix caveat).
func (g *Graph) PackMemoryBatch(rows []*Tensor, lens []int) *Tensor {
	S := len(rows)
	if S == 0 {
		panic("nn: empty memory pack")
	}
	B, d := rows[0].Rows, rows[0].Cols
	out := g.NewTensor(B*S, d)
	for i, r := range rows {
		for b := 0; b < B; b++ {
			if i < lens[b] {
				copy(out.W[(b*S+i)*d:(b*S+i+1)*d], r.W[b*d:(b+1)*d])
			}
		}
	}
	g.push(tapeOp{kind: opPackMemory, list: rows, ints: lens, out: out})
	return out
}

func backPackMemory(o *tapeOp) {
	S := len(o.list)
	lens := o.ints
	B, d := o.list[0].Rows, o.list[0].Cols
	for i, r := range o.list {
		for b := 0; b < B; b++ {
			if i >= lens[b] {
				continue
			}
			orow := o.out.DW[(b*S+i)*d : (b*S+i+1)*d]
			rrow := r.DW[b*d : (b+1)*d]
			for j, dv := range orow {
				rrow[j] += dv
			}
		}
	}
}

// NLLPointerMixBatch is the batched pointer–generator loss: row b mixes the
// vocabulary distribution pvocab (B×V), the attention weights alpha (B×S)
// and the gate pgen (B×1) exactly as NLLPointerMix does for one row, with
// copyMasks[b] and vocabIdx[b] giving row b's copy positions and target
// vocabulary index. gradScale[b] scales row b's gradient — pass 1/B to
// average the minibatch gradient over examples, and 0 to mark a padded row
// (sequences shorter than the batch maximum), which is skipped entirely.
// nll[b] receives row b's raw −log p (0 for skipped rows); the caller
// weights those into the per-example means it reports. alpha and copyMasks
// may be nil for pure generation. All slice arguments are retained until
// Backward/Reset, so per-step calls need distinct backings.
func (g *Graph) NLLPointerMixBatch(pvocab, alpha, pgen *Tensor, copyMasks [][]bool, vocabIdx []int, gradScale []float64, nll []float64) {
	B := pvocab.Rows
	// pt stashes the mixed probability of each row for backward.
	pt := g.NewTensor(B, 1)
	for b := 0; b < B; b++ {
		nll[b] = 0
		if gradScale[b] == 0 {
			continue
		}
		gate := pgen.W[b]
		var pv, pc float64
		if vocabIdx[b] >= 0 {
			pv = pvocab.W[b*pvocab.Cols+vocabIdx[b]]
		}
		if copyMasks != nil && copyMasks[b] != nil {
			arow := alpha.W[b*alpha.Cols:]
			for i, m := range copyMasks[b] {
				if m {
					pc += arow[i]
				}
			}
		}
		p := gate*pv + (1-gate)*pc
		pt.W[b] = p
		nll[b] = -math.Log(p + nllEps)
	}
	g.push(tapeOp{kind: opNLLPointerMixBatch, a: pvocab, b: alpha, c: pgen,
		masks: copyMasks, ints: vocabIdx, fvals: gradScale, aux: pt})
}

func backNLLPointerMixBatch(o *tapeOp) {
	pvocab, alpha, pgen, pt := o.a, o.b, o.c, o.aux
	for b, w := range o.fvals {
		if w == 0 {
			continue
		}
		gate := pgen.W[b]
		idx := o.ints[b]
		var mask []bool
		if o.masks != nil {
			mask = o.masks[b]
		}
		var pv, pc float64
		if idx >= 0 {
			pv = pvocab.W[b*pvocab.Cols+idx]
		}
		for i, m := range mask {
			if m {
				pc += alpha.W[b*alpha.Cols+i]
			}
		}
		dp := -w / (pt.W[b] + nllEps)
		if idx >= 0 {
			pvocab.DW[b*pvocab.Cols+idx] += dp * gate
		}
		for i, m := range mask {
			if m {
				alpha.DW[b*alpha.Cols+i] += dp * (1 - gate)
			}
		}
		pgen.DW[b] += dp * (pv - pc)
	}
}
