package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// stackRows copies B single-row tensors into one B×n batch tensor.
func stackRows(rows []*Tensor) *Tensor {
	n := rows[0].Cols
	out := NewTensor(len(rows), n)
	for i, r := range rows {
		copy(out.W[i*n:(i+1)*n], r.W)
	}
	return out
}

// seedBatchGrad fills row i of a batch output gradient and the matching
// single-row output gradient with the same per-element pattern.
func seedBatchGrad(batch *Tensor, singles []*Tensor) {
	n := batch.Cols
	for i, s := range singles {
		for j := 0; j < n; j++ {
			v := float64(i*n+j) + 1
			batch.DW[i*n+j] = v
			s.DW[j] = v
		}
	}
}

// TestBatchedAffineMatchesRows checks forward values and all gradients of
// the batched kernel against B independent AffineRow calls.
func TestBatchedAffineMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const B, in, n = 3, 5, 7
	w := NewRandom(in, n, rng)
	b := NewRandom(1, n, rng)
	w2 := cloneParams([]*Tensor{w, b})
	xs := make([]*Tensor, B)
	for i := range xs {
		xs[i] = NewRandom(1, in, rng)
	}
	x := stackRows(xs)

	gb := NewGraph(true)
	out := gb.BatchedAffine(x, w, b)

	gs := NewGraph(true)
	singles := make([]*Tensor, B)
	for i := range xs {
		singles[i] = gs.AffineRow(xs[i], w2[0], w2[1])
	}
	seedBatchGrad(out, singles)
	gb.Backward()
	gs.Backward()

	for i := range xs {
		assertClose(t, "out", out.W[i*n:(i+1)*n], singles[i].W)
		assertClose(t, "dx", x.DW[i*in:(i+1)*in], xs[i].DW)
	}
	assertClose(t, "dW", w.DW, w2[0].DW)
	assertClose(t, "db", b.DW, w2[1].DW)
}

func TestBatchedAffineGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	x := NewRandom(3, 4, rng)
	w := NewRandom(4, 5, rng)
	b := NewRandom(1, 5, rng)
	checkGradients(t, []*Tensor{x, w, b}, func(g *Graph) *Tensor { return g.BatchedAffine(x, w, b) })
}

// TestLSTMStepBatchMatchesRows runs two batched timesteps (with one row
// going inactive on the second) against per-row Step chains: active rows
// must match the single-row kernel exactly, and the inactive row must carry
// its state through with pass-through gradients and no weight contribution.
func TestLSTMStepBatchMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const B, in, H = 3, 4, 5
	cell := NewLSTMCell(in, H, rng)
	cl := cloneParams([]*Tensor{cell.Wx, cell.Wh, cell.B})
	cell2 := &LSTMCell{Wx: cl[0], Wh: cl[1], B: cl[2], Hidden: H}
	xs := make([]*Tensor, B)
	for i := range xs {
		xs[i] = NewRandom(1, in, rng)
	}
	x := stackRows(xs)
	active := []bool{true, true, false} // row 2 stops after the first step

	gb := NewGraph(true)
	h0 := NewTensor(B, H)
	c0 := NewTensor(B, H)
	h1, c1 := cell.StepBatch(gb, x, h0, c0, nil)
	h2, c2 := cell.StepBatch(gb, x, h1, c1, active)

	gs := NewGraph(true)
	singleH := make([]*Tensor, B)
	singleC := make([]*Tensor, B)
	x2 := cloneParams(xs)
	for i := range xs {
		h, c := cell2.InitState()
		h, c = cell2.Step(gs, x2[i], h, c)
		if active[i] {
			h, c = cell2.Step(gs, x2[i], h, c)
		}
		singleH[i], singleC[i] = h, c
	}
	seedBatchGrad(h2, singleH)
	seedBatchGrad(c2, singleC)
	gb.Backward()
	gs.Backward()

	for i := range xs {
		assertClose(t, "h", h2.W[i*H:(i+1)*H], singleH[i].W)
		assertClose(t, "c", c2.W[i*H:(i+1)*H], singleC[i].W)
		assertClose(t, "dx", x.DW[i*in:(i+1)*in], x2[i].DW)
	}
	assertClose(t, "dWx", cell.Wx.DW, cell2.Wx.DW)
	assertClose(t, "dWh", cell.Wh.DW, cell2.Wh.DW)
	assertClose(t, "dB", cell.B.DW, cell2.B.DW)
}

func TestLSTMStepBatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	cell := NewLSTMCell(3, 4, rng)
	x := NewRandom(2, 3, rng)
	active := []bool{true, false}
	params := append([]*Tensor{x}, cell.Params()...)
	checkGradients(t, params, func(g *Graph) *Tensor {
		h := NewTensor(2, 4)
		c := NewTensor(2, 4)
		h, c = cell.StepBatch(g, x, h, c, nil)
		h, _ = cell.StepBatch(g, x, h, c, active)
		return h
	})
}

// TestAttendBatchMatchesRows checks the batched masked attention against
// per-sequence AttendSoftmaxContext calls over unpadded memories.
func TestAttendBatchMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	const B, S, d = 3, 4, 5
	lens := []int{4, 2, 3}
	qs := make([]*Tensor, B)
	mems := make([]*Tensor, B)
	for i := range qs {
		qs[i] = NewRandom(1, d, rng)
		mems[i] = NewRandom(lens[i], d, rng)
	}
	q := stackRows(qs)
	H := NewTensor(B*S, d)
	for b := 0; b < B; b++ {
		copy(H.W[b*S*d:(b*S+lens[b])*d], mems[b].W)
	}

	gb := NewGraph(true)
	alpha, ctx := gb.AttendSoftmaxContextBatch(q, H, nil, lens)

	gs := NewGraph(true)
	q2 := cloneParams(qs)
	singleA := make([]*Tensor, B)
	singleC := make([]*Tensor, B)
	mems2 := cloneParams(mems)
	for i := range qs {
		singleA[i], singleC[i] = gs.AttendSoftmaxContext(q2[i], mems2[i])
	}
	seedBatchGrad(ctx, singleC)
	for i := range qs {
		for j := 0; j < lens[i]; j++ {
			v := float64(3*(i*S+j) + 2)
			alpha.DW[i*S+j] = v
			singleA[i].DW[j] = v
		}
	}
	gb.Backward()
	gs.Backward()

	for i := range qs {
		assertClose(t, "alpha", alpha.W[i*S:i*S+lens[i]], singleA[i].W)
		assertClose(t, "ctx", ctx.W[i*d:(i+1)*d], singleC[i].W)
		assertClose(t, "dq", q.DW[i*d:(i+1)*d], q2[i].DW)
		assertClose(t, "dH", H.DW[i*S*d:(i*S+lens[i])*d], mems2[i].DW)
		// Padding rows beyond the sequence length must stay untouched.
		for j := lens[i] * d; j < S*d; j++ {
			if H.DW[i*S*d+j] != 0 {
				t.Fatalf("gradient leaked into padding row of block %d", i)
			}
		}
		for j := lens[i]; j < S; j++ {
			if alpha.W[i*S+j] != 0 {
				t.Fatalf("attention mass leaked into padding of block %d", i)
			}
		}
	}
}

func TestAttendBatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	const B, S, d = 2, 3, 4
	lens := []int{3, 2}
	q := NewRandom(B, d, rng)
	H := NewRandom(B*S, d, rng)
	// Zero the padding rows so the packed-memory invariant holds.
	for b := 0; b < B; b++ {
		for i := lens[b]; i < S; i++ {
			for j := 0; j < d; j++ {
				H.W[(b*S+i)*d+j] = 0
			}
		}
	}
	checkGradients(t, []*Tensor{q, H}, func(g *Graph) *Tensor {
		_, ctx := g.AttendSoftmaxContextBatch(q, H, nil, lens)
		return ctx
	})
}

func TestSoftmaxRowsMatchesRowsAndGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const B, n = 3, 6
	rows := make([]*Tensor, B)
	for i := range rows {
		rows[i] = NewRandom(1, n, rng)
	}
	a := stackRows(rows)

	gb := NewGraph(true)
	out := gb.SoftmaxRows(a)
	gs := NewGraph(true)
	a2 := cloneParams(rows)
	singles := make([]*Tensor, B)
	for i := range rows {
		singles[i] = gs.SoftmaxRow(a2[i])
	}
	seedBatchGrad(out, singles)
	gb.Backward()
	gs.Backward()
	for i := range rows {
		assertClose(t, "softmax", out.W[i*n:(i+1)*n], singles[i].W)
		assertClose(t, "dsoftmax", a.DW[i*n:(i+1)*n], a2[i].DW)
	}

	b := NewRandom(3, 4, rng)
	checkGradients(t, []*Tensor{b}, func(g *Graph) *Tensor { return g.SoftmaxRows(b) })
}

func TestLookupRowsConcatColsPackMemoryGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	emb := NewRandom(5, 3, rng)
	// Duplicate ids: gradients of a repeated row must accumulate.
	checkGradients(t, []*Tensor{emb}, func(g *Graph) *Tensor {
		return g.LookupRows(emb, []int{2, 0, 2})
	})
	a := NewRandom(2, 3, rng)
	b := NewRandom(2, 4, rng)
	checkGradients(t, []*Tensor{a, b}, func(g *Graph) *Tensor { return g.ConcatCols(a, b) })
	r0 := NewRandom(2, 3, rng)
	r1 := NewRandom(2, 3, rng)
	checkGradients(t, []*Tensor{r0, r1}, func(g *Graph) *Tensor {
		return g.PackMemoryBatch([]*Tensor{r0, r1}, []int{2, 1})
	})
}

// TestNLLPointerMixBatchMatchesRows checks per-row losses and gradients
// against independent single-row NLLPointerMix calls at gradScale 1, and
// that a zero gradScale skips a row entirely.
func TestNLLPointerMixBatchMatchesRows(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	const B, V, S = 3, 5, 3
	scoresV := make([]*Tensor, B)
	scoresA := make([]*Tensor, B)
	gateRaw := make([]*Tensor, B)
	masks := [][]bool{{true, false, true}, {false, true, false}, nil}
	idxs := []int{2, -1, 4}
	for i := 0; i < B; i++ {
		scoresV[i] = NewRandom(1, V, rng)
		scoresA[i] = NewRandom(1, S, rng)
		gateRaw[i] = NewRandom(1, 1, rng)
	}
	sv := stackRows(scoresV)
	sa := stackRows(scoresA)
	gr := stackRows(gateRaw)

	gb := NewGraph(true)
	pv := gb.SoftmaxRows(sv)
	al := gb.SoftmaxRows(sa)
	gate := gb.Sigmoid(gr)
	scale := []float64{1, 1, 1}
	nll := make([]float64, B)
	gb.NLLPointerMixBatch(pv, al, gate, masks, idxs, scale, nll)
	gb.Backward()

	sv2, sa2, gr2 := cloneParams(scoresV), cloneParams(scoresA), cloneParams(gateRaw)
	for i := 0; i < B; i++ {
		gs := NewGraph(true)
		pvi := gs.SoftmaxRow(sv2[i])
		ali := gs.SoftmaxRow(sa2[i])
		gi := gs.Sigmoid(gr2[i])
		want := gs.NLLPointerMix(pvi, ali, gi, masks[i], idxs[i])
		gs.Backward()
		if math.Abs(nll[i]-want) > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("row %d: batched nll %g, single %g", i, nll[i], want)
		}
		assertClose(t, "dscoresV", sv.DW[i*V:(i+1)*V], sv2[i].DW)
		assertClose(t, "dscoresA", sa.DW[i*S:(i+1)*S], sa2[i].DW)
		assertClose(t, "dgate", gr.DW[i:i+1], gr2[i].DW)
	}

	// A padded row (scale 0) reports zero loss and receives zero gradient.
	sv.ZeroGrad()
	sa.ZeroGrad()
	gr.ZeroGrad()
	g0 := NewGraph(true)
	pv0 := g0.SoftmaxRows(sv)
	al0 := g0.SoftmaxRows(sa)
	gate0 := g0.Sigmoid(gr)
	g0.NLLPointerMixBatch(pv0, al0, gate0, masks, idxs, []float64{1, 0, 1}, nll)
	if nll[1] != 0 {
		t.Fatalf("padded row reported loss %g", nll[1])
	}
	g0.Backward()
	for j := 0; j < S; j++ {
		if sa.DW[S+j] != 0 {
			t.Fatal("padded row received attention gradient")
		}
	}
	if gr.DW[1] != 0 {
		t.Fatal("padded row received gate gradient")
	}
}

// TestNLLPointerMixBatchFiniteDifferences drives the batched pointer loss
// through central differences on raw scores, batching gradient scales too.
func TestNLLPointerMixBatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	const B, V, S = 2, 4, 3
	scoresV := NewRandom(B, V, rng)
	scoresA := NewRandom(B, S, rng)
	gateRaw := NewRandom(B, 1, rng)
	masks := [][]bool{{true, false, true}, {false, true, true}}
	idxs := []int{1, 3}
	scale := []float64{0.5, 0.25}
	nll := make([]float64, B)

	loss := func() float64 {
		g := NewGraph(false)
		pv := g.SoftmaxRows(scoresV)
		al := g.SoftmaxRows(scoresA)
		gate := g.Sigmoid(gateRaw)
		g.NLLPointerMixBatch(pv, al, gate, masks, idxs, scale, nll)
		var s float64
		for b, v := range nll {
			s += scale[b] * v
		}
		return s
	}
	g := NewGraph(true)
	pv := g.SoftmaxRows(scoresV)
	al := g.SoftmaxRows(scoresA)
	gate := g.Sigmoid(gateRaw)
	g.NLLPointerMixBatch(pv, al, gate, masks, idxs, scale, nll)
	g.Backward()
	for _, p := range []*Tensor{scoresV, scoresA, gateRaw} {
		for i := range p.W {
			want := numericalGrad(p, i, loss)
			got := p.DW[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("batched pointer mix grad mismatch: analytic %g numeric %g", got, want)
			}
		}
	}
}

// TestBatchedKernelsParallelMatchesInline pins the determinism claim of the
// goroutine-split kernel paths: with GOMAXPROCS raised and dimensions above
// parallelWorkMin, the chunked forward and backward passes must produce
// bitwise-identical outputs and gradients to the inline (GOMAXPROCS=1)
// execution of the same network.
func TestBatchedKernelsParallelMatchesInline(t *testing.T) {
	const B, in, H, S = 32, 64, 128, 40
	rng := rand.New(rand.NewSource(42))
	cell := NewLSTMCell(in, H, rng)
	lin := NewLinear(H, 512, rng)
	x := NewRandom(B, in, rng)
	mem := NewRandom(B*S, H, rng)
	lens := make([]int, B)
	for b := range lens {
		lens[b] = S - b%7 // mixed valid prefixes exercise the masking
	}
	active := make([]bool, B)
	for b := range active {
		active[b] = b%5 != 0
	}
	params := append([]*Tensor{x, mem, lin.W, lin.B}, cell.Params()...)

	run := func() []float64 {
		g := NewGraph(true)
		h := NewTensor(B, H)
		c := NewTensor(B, H)
		h, c = cell.StepBatch(g, x, h, c, nil)
		h, _ = cell.StepBatch(g, x, h, c, active)
		alpha, ctx := g.AttendSoftmaxContextBatch(h, mem, nil, lens)
		out := g.SoftmaxRows(g.BatchedAffine(ctx, lin.W, lin.B))
		for i := range out.DW {
			out.DW[i] = float64(i%13) + 1
		}
		for i := range alpha.DW {
			alpha.DW[i] = float64(i % 7)
		}
		g.Backward()
		res := append([]float64(nil), out.W...)
		res = append(res, alpha.W...)
		for _, p := range params {
			res = append(res, p.DW...)
			p.ZeroGrad()
		}
		return res
	}

	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	inline := run()
	runtime.GOMAXPROCS(4) // forces the parallelChunks branches even on a 1-core host
	parallel := run()
	if len(inline) != len(parallel) {
		t.Fatalf("result length mismatch: %d vs %d", len(inline), len(parallel))
	}
	for i := range inline {
		if inline[i] != parallel[i] {
			t.Fatalf("parallel kernel path diverges from inline at element %d: %g vs %g",
				i, parallel[i], inline[i])
		}
	}
}

// TestBatchedKernelsArenaSteadyState asserts a warm batched
// forward/backward/reset cycle allocates nothing, like the single-row path.
func TestBatchedKernelsArenaSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(41))
	const B, in, H = 4, 6, 8
	cell := NewLSTMCell(in, H, rng)
	lin := NewLinear(H, in, rng)
	x := NewRandom(B, in, rng)
	g := NewGraphArena(true, NewArena())
	step := func() {
		g.Reset()
		h := g.NewTensor(B, H)
		c := g.NewTensor(B, H)
		for i := 0; i < 3; i++ {
			h, c = cell.StepBatch(g, x, h, c, nil)
		}
		out := g.SoftmaxRows(g.BatchedAffine(h, lin.W, lin.B))
		for i := range out.DW {
			out.DW[i] = 1
		}
		g.Backward()
	}
	step() // warm the arena and tape
	if n := testing.AllocsPerRun(20, step); n > 0 {
		t.Errorf("steady-state batched step allocates: %v allocs/run", n)
	}
}
