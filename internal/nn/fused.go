package nn

import "math"

// This file holds the fused kernels of the model's inner loop. Each fuses a
// chain of primitive ops into one forward pass and one tape record, while
// accumulating exactly the same floating-point expressions in the same
// order as the chain it replaces — so swapping a call site between the
// fused and unfused form does not change training trajectories.

// AffineRow computes x·W + b for a 1×in row in one pass; it fuses
// Add(MatMul(x, w), b).
func (g *Graph) AffineRow(x, w, b *Tensor) *Tensor {
	if x.Rows != 1 || x.Cols != w.Rows || b.Cols != w.Cols || b.Rows != 1 {
		panic("nn: AffineRow shape mismatch")
	}
	out := g.NewTensor(1, w.Cols)
	rowMatMulInto(x.W, w, out.W)
	for j := range out.W {
		out.W[j] += b.W[j]
	}
	g.push(tapeOp{kind: opAffineRow, a: x, b: w, c: b, out: out})
	return out
}

// lstmStep advances an LSTM cell one timestep in one fused pass: both gate
// matmuls, the bias add, the four activations, and the state update, with a
// single tape record. It fuses the chain
//
//	gates = Add(Add(MatMul(x, Wx), MatMul(h, Wh)), B)
//	i,f,o = Sigmoid(slice(gates, k)); cand = Tanh(slice(gates, 3))
//	cNext = Add(Mul(f, c), Mul(i, cand)); hNext = Mul(o, Tanh(cNext))
func (g *Graph) lstmStep(cell *LSTMCell, x, h, c *Tensor) (hNext, cNext *Tensor) {
	H := cell.Hidden
	n := 4 * H
	// pre.W accumulates x·Wx; pre.DW doubles as scratch for h·Wh during the
	// forward pass (this op's backward never reads pre).
	pre := g.NewTensor(1, n)
	rowMatMulInto(x.W, cell.Wx, pre.W)
	rowMatMulInto(h.W, cell.Wh, pre.DW)
	// acts stashes the activated gates [i|f|o|cand] for backward; its DW is
	// backward's pre-activation-gradient scratch.
	acts := g.NewTensor(1, n)
	tc := g.NewTensor(1, H)
	hNext = g.NewTensor(1, H)
	cNext = g.NewTensor(1, H)
	for j := 0; j < n; j++ {
		v := (pre.W[j] + pre.DW[j]) + cell.B.W[j]
		if j < 3*H {
			acts.W[j] = 1 / (1 + math.Exp(-v))
		} else {
			acts.W[j] = math.Tanh(v)
		}
	}
	for j := 0; j < H; j++ {
		// Two statements, matching Add(Mul(f,c), Mul(i,cand)) rounding.
		fc := acts.W[H+j] * c.W[j]
		ic := acts.W[j] * acts.W[3*H+j]
		cNext.W[j] = fc + ic
		tc.W[j] = math.Tanh(cNext.W[j])
		hNext.W[j] = acts.W[2*H+j] * tc.W[j]
	}
	g.push(tapeOp{kind: opLSTMStep, cell: cell, a: x, b: h, c: c, out: hNext, out2: cNext, aux: acts, aux2: tc})
	return hNext, cNext
}

// AttendSoftmaxContext fuses the decoder's attention chain
//
//	scores = AttendDot(q, H); alpha = SoftmaxRow(scores)
//	ctx    = WeightedSumRows(alpha, H)
//
// into one forward pass and one tape record, returning both the attention
// weights (needed by the pointer mechanism) and the context vector.
func (g *Graph) AttendSoftmaxContext(q, H *Tensor) (alpha, ctx *Tensor) {
	if q.Cols != H.Cols || q.Rows != 1 {
		panic("nn: AttendSoftmaxContext shape mismatch")
	}
	m := H.Rows
	// sc.W holds the raw scores; sc.DW is backward's score-gradient scratch.
	sc := g.NewTensor(1, m)
	alpha = g.NewTensor(1, m)
	ctx = g.NewTensor(1, H.Cols)
	attendDotInto(q.W, H, sc.W)
	softmaxInto(sc.W, alpha.W)
	weightedSumInto(alpha.W, H, ctx.W)
	g.push(tapeOp{kind: opAttendSoftmaxContext, a: q, b: H, out: ctx, aux: alpha, aux2: sc})
	return alpha, ctx
}
