package nn

import (
	"errors"
	"math"
)

var errMomentShape = errors.New("nn: optimizer state does not match parameter shapes")

// Adam implements the Adam optimizer (Kingma & Ba, the optimizer used in
// Section 4.3) with global-norm gradient clipping.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // global gradient-norm clip (0 disables)
	t       int
	moments map[*Tensor]*moment
}

type moment struct{ m, v []float64 }

// NewAdam returns an optimizer with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5, moments: map[*Tensor]*moment{}}
}

// State exports the optimizer state for checkpointing: the step count and
// the first/second moment vectors in params order. Parameters the optimizer
// has not yet seen export zero moments, matching what Step would lazily
// allocate.
func (a *Adam) State(params []*Tensor) (t int, m, v [][]float64) {
	m = make([][]float64, len(params))
	v = make([][]float64, len(params))
	for i, p := range params {
		mo := a.moments[p]
		if mo == nil {
			mo = &moment{m: make([]float64, p.Size()), v: make([]float64, p.Size())}
		}
		m[i] = append([]float64(nil), mo.m...)
		v[i] = append([]float64(nil), mo.v...)
	}
	return a.t, m, v
}

// Restore rebuilds the optimizer state exported by State against params (in
// the same order), so a resumed training run applies bit-identical updates.
func (a *Adam) Restore(params []*Tensor, t int, m, v [][]float64) error {
	if len(m) != len(params) || len(v) != len(params) {
		return errMomentShape
	}
	moments := make(map[*Tensor]*moment, len(params))
	for i, p := range params {
		if len(m[i]) != p.Size() || len(v[i]) != p.Size() {
			return errMomentShape
		}
		moments[p] = &moment{
			m: append([]float64(nil), m[i]...),
			v: append([]float64(nil), v[i]...),
		}
	}
	a.t = t
	a.moments = moments
	return nil
}

// Step applies one update to the parameters and clears their gradients.
func (a *Adam) Step(params []*Tensor) {
	a.t++
	// Global-norm clipping.
	if a.Clip > 0 {
		var norm float64
		for _, p := range params {
			for _, d := range p.DW {
				norm += d * d
			}
		}
		norm = math.Sqrt(norm)
		if norm > a.Clip {
			scale := a.Clip / norm
			for _, p := range params {
				for i := range p.DW {
					p.DW[i] *= scale
				}
			}
		}
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		mo := a.moments[p]
		if mo == nil {
			mo = &moment{m: make([]float64, p.Size()), v: make([]float64, p.Size())}
			a.moments[p] = mo
		}
		for i := range p.W {
			d := p.DW[i]
			mo.m[i] = a.Beta1*mo.m[i] + (1-a.Beta1)*d
			mo.v[i] = a.Beta2*mo.v[i] + (1-a.Beta2)*d*d
			mHat := mo.m[i] / bc1
			vHat := mo.v[i] / bc2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			p.DW[i] = 0
		}
	}
}
