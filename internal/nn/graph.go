package nn

// opKind identifies one autograd operation on the typed tape.
type opKind uint8

const (
	opMatMul opKind = iota
	opAdd
	opMul
	opTanh
	opSigmoid
	opConcatRow2
	opConcatRowN
	opLookupRow
	opDropout
	opRowsToMatrix
	opSoftmaxRow
	opAttendDot
	opWeightedSumRows
	opNLLPointerMix
	opSliceRow
	opAffineRow
	opLSTMStep
	opAttendSoftmaxContext
	opAffineBatch
	opLSTMStepBatch
	opAttendBatch
	opSoftmaxRows
	opNLLPointerMixBatch
	opLookupRows
	opConcatCols2
	opPackMemory
	opNLLPointerMixCtx
)

// tapeOp is one record of the typed tape: the operands, outputs and stashed
// forward values an op needs to run its backward pass. A single record type
// (rather than a closure per op) keeps the tape a flat, reusable slice with
// no per-op heap allocation.
type tapeOp struct {
	kind opKind

	a, b, c *Tensor // inputs (meaning is per-kind)
	out     *Tensor // primary output
	out2    *Tensor // secondary output (LSTM cell state)
	aux     *Tensor // stashed activations (LSTM gates, attention weights, dropout mask)
	aux2    *Tensor // scratch (LSTM tanh(c), attention score gradients)

	cell *LSTMCell // opLSTMStep / opLSTMStepBatch
	list []*Tensor // opConcatRowN parts / opRowsToMatrix rows / opPackMemory rows
	mask []bool    // opNLLPointerMix copy mask / opLSTMStepBatch row-active mask

	idx  int     // lookup row / slice from / target vocab index
	idx2 int     // slice to
	fval float64 // opNLLPointerMix mixed probability p

	// Batched-kernel operands. Slices are retained until Backward/Reset, so
	// callers must give every record a distinct backing (the model's batch
	// scratch slices positions out of one growing buffer per step).
	ints  []int     // opLookupRows ids / opAttendBatch+opPackMemory lens / opNLLPointerMixBatch vocab indices
	fvals []float64 // opNLLPointerMixBatch per-row gradient scales
	masks [][]bool  // opNLLPointerMixBatch per-row copy masks
}

// Graph is the autograd tape. Operations append typed records; Backward
// dispatches them in reverse through a single switch. A graph built with
// NeedsGrad=false skips recording (inference mode). When constructed with
// NewGraphArena, all intermediate tensors come from the arena and Reset
// recycles them between training steps, so a steady-state step allocates
// (near) nothing.
//
//genielint:arena-source
type Graph struct {
	NeedsGrad bool
	arena     *Arena
	tape      []tapeOp
}

// NewGraph returns a tape that records gradients; intermediates are
// heap-allocated (no arena).
func NewGraph(needsGrad bool) *Graph { return &Graph{NeedsGrad: needsGrad} }

// NewGraphArena returns a tape whose intermediate tensors are drawn from
// arena. Call Reset between steps to recycle them; tensors obtained from the
// graph are invalid after Reset. Parameters stay heap-owned by the caller.
func NewGraphArena(needsGrad bool, arena *Arena) *Graph {
	return &Graph{NeedsGrad: needsGrad, arena: arena}
}

// NewTensor allocates an intermediate tensor owned by this graph: from the
// arena when the graph has one (recycled on Reset), from the heap otherwise.
func (g *Graph) NewTensor(rows, cols int) *Tensor {
	if g.arena != nil {
		return g.arena.Get(rows, cols)
	}
	return NewTensor(rows, cols)
}

func (g *Graph) push(o tapeOp) {
	if g.NeedsGrad {
		g.tape = append(g.tape, o)
	}
}

// Backward runs the tape in reverse order and truncates it (keeping
// capacity). The caller seeds the gradient of the loss tensor (typically via
// the loss ops, which do it themselves).
func (g *Graph) Backward() {
	for i := len(g.tape) - 1; i >= 0; i-- {
		g.backstep(&g.tape[i])
	}
	g.tape = g.tape[:0]
}

// Reset truncates the tape and recycles all arena intermediates. Any tensor
// previously returned by graph ops or NewTensor must not be used afterwards.
func (g *Graph) Reset() {
	g.tape = g.tape[:0]
	if g.arena != nil {
		g.arena.Reset()
	}
}

// Ops returns the current tape length (diagnostics).
func (g *Graph) Ops() int { return len(g.tape) }

// backstep runs one op's backward pass. Each case accumulates input
// gradients exactly as the closure-based tape used to, in the same order, so
// the typed tape is a drop-in numeric replacement.
func (g *Graph) backstep(o *tapeOp) {
	switch o.kind {
	case opMatMul:
		backMatMul(o.a, o.b, o.out)
	case opAdd:
		a, b, out := o.a, o.b, o.out
		for i := range out.DW {
			a.DW[i] += out.DW[i]
			b.DW[i] += out.DW[i]
		}
	case opMul:
		a, b, out := o.a, o.b, o.out
		for i := range out.DW {
			a.DW[i] += out.DW[i] * b.W[i]
			b.DW[i] += out.DW[i] * a.W[i]
		}
	case opTanh:
		a, out := o.a, o.out
		for i := range out.DW {
			a.DW[i] += out.DW[i] * (1 - out.W[i]*out.W[i])
		}
	case opSigmoid:
		a, out := o.a, o.out
		for i := range out.DW {
			a.DW[i] += out.DW[i] * out.W[i] * (1 - out.W[i])
		}
	case opConcatRow2:
		a, b, out := o.a, o.b, o.out
		for i := range a.W {
			a.DW[i] += out.DW[i]
		}
		off := a.Cols
		for i := range b.W {
			b.DW[i] += out.DW[off+i]
		}
	case opConcatRowN:
		off := 0
		for _, p := range o.list {
			for i := range p.W {
				p.DW[i] += o.out.DW[off+i]
			}
			off += p.Cols
		}
	case opLookupRow:
		base := o.idx * o.a.Cols
		for i := range o.out.DW {
			o.a.DW[base+i] += o.out.DW[i]
		}
	case opDropout:
		mask := o.aux.W
		for i := range o.out.DW {
			o.a.DW[i] += o.out.DW[i] * mask[i]
		}
	case opRowsToMatrix:
		n := o.list[0].Cols
		for i, r := range o.list {
			for j := 0; j < n; j++ {
				r.DW[j] += o.out.DW[i*n+j]
			}
		}
	case opSoftmaxRow:
		a, out := o.a, o.out
		var dot float64
		for i := range out.W {
			dot += out.W[i] * out.DW[i]
		}
		for i := range a.W {
			a.DW[i] += out.W[i] * (out.DW[i] - dot)
		}
	case opAttendDot:
		backAttendDot(o.a, o.b, o.out.DW)
	case opWeightedSumRows:
		backWeightedSumRows(o.a, o.b, o.out)
	case opNLLPointerMix:
		backNLLPointerMix(o)
	case opSliceRow:
		a, out := o.a, o.out
		for i := range out.DW {
			a.DW[o.idx+i] += out.DW[i]
		}
	case opAffineRow:
		backAffineRow(o.a, o.b, o.c, o.out)
	case opLSTMStep:
		backLSTMStep(o)
	case opAttendSoftmaxContext:
		backAttendSoftmaxContext(o)
	case opAffineBatch:
		backAffineBatch(o.a, o.b, o.c, o.out)
	case opLSTMStepBatch:
		backLSTMStepBatch(o)
	case opAttendBatch:
		backAttendBatch(o)
	case opSoftmaxRows:
		backSoftmaxRows(o.a, o.out)
	case opNLLPointerMixBatch:
		backNLLPointerMixBatch(o)
	case opLookupRows:
		for i, id := range o.ints {
			base := id * o.a.Cols
			orow := o.out.DW[i*o.out.Cols : (i+1)*o.out.Cols]
			for j, d := range orow {
				o.a.DW[base+j] += d
			}
		}
	case opConcatCols2:
		backConcatCols2(o.a, o.b, o.out)
	case opPackMemory:
		backPackMemory(o)
	case opNLLPointerMixCtx:
		backNLLPointerMixCtx(o)
	}
}

func backMatMul(a, b, out *Tensor) {
	n, m, p := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		arow := a.W[i*m : (i+1)*m]
		adrow := a.DW[i*m : (i+1)*m]
		odrow := out.DW[i*p : (i+1)*p]
		for k := 0; k < m; k++ {
			brow := b.W[k*p : (k+1)*p]
			bdrow := b.DW[k*p : (k+1)*p]
			var acc float64
			av := arow[k]
			for j := 0; j < p; j++ {
				od := odrow[j]
				acc += od * brow[j]
				bdrow[j] += od * av
			}
			adrow[k] += acc
		}
	}
}

func backAttendDot(q, H *Tensor, outDW []float64) {
	for i := 0; i < H.Rows; i++ {
		od := outDW[i]
		if od == 0 {
			continue
		}
		hrow := H.W[i*H.Cols : (i+1)*H.Cols]
		hdrow := H.DW[i*H.Cols : (i+1)*H.Cols]
		for j, qv := range q.W {
			q.DW[j] += od * hrow[j]
			hdrow[j] += od * qv
		}
	}
}

func backWeightedSumRows(alpha, H, out *Tensor) {
	for i := 0; i < H.Rows; i++ {
		hrow := H.W[i*H.Cols : (i+1)*H.Cols]
		hdrow := H.DW[i*H.Cols : (i+1)*H.Cols]
		var acc float64
		a := alpha.W[i]
		for j := range out.DW {
			od := out.DW[j]
			acc += od * hrow[j]
			hdrow[j] += od * a
		}
		alpha.DW[i] += acc
	}
}

func backNLLPointerMix(o *tapeOp) {
	pvocab, alpha, pgen := o.a, o.b, o.c
	gate := pgen.W[0]
	var pv, pc float64
	if o.idx >= 0 {
		pv = pvocab.W[o.idx]
	}
	for i, m := range o.mask {
		if m {
			pc += alpha.W[i]
		}
	}
	const eps = 1e-9
	dp := -1 / (o.fval + eps)
	if o.idx >= 0 {
		pvocab.DW[o.idx] += dp * gate
	}
	for i, m := range o.mask {
		if m {
			alpha.DW[i] += dp * (1 - gate)
		}
	}
	pgen.DW[0] += dp * (pv - pc)
}

// backNLLPointerMixCtx is the two-memory pointer mixture: the copy mass
// splits between the source attention (alpha, masks[0]) and the context
// attention (beta, masks[1]) by the context gate. Operands: a=pvocab,
// b=alpha, c=pgen, aux=beta, aux2=cgate.
func backNLLPointerMixCtx(o *tapeOp) {
	pvocab, alpha, pgen, beta, cgate := o.a, o.b, o.c, o.aux, o.aux2
	g, g2 := pgen.W[0], cgate.W[0]
	var pv, ps, pc float64
	if o.idx >= 0 {
		pv = pvocab.W[o.idx]
	}
	for i, m := range o.masks[0] {
		if m {
			ps += alpha.W[i]
		}
	}
	for i, m := range o.masks[1] {
		if m {
			pc += beta.W[i]
		}
	}
	const eps = 1e-9
	dp := -1 / (o.fval + eps)
	if o.idx >= 0 {
		pvocab.DW[o.idx] += dp * g
	}
	for i, m := range o.masks[0] {
		if m {
			alpha.DW[i] += dp * (1 - g) * (1 - g2)
		}
	}
	for i, m := range o.masks[1] {
		if m {
			beta.DW[i] += dp * (1 - g) * g2
		}
	}
	pgen.DW[0] += dp * (pv - ((1-g2)*ps + g2*pc))
	cgate.DW[0] += dp * (1 - g) * (pc - ps)
}

func backAffineRow(x, w, b, out *Tensor) {
	in, n := x.Cols, w.Cols
	// Bias: the fused Add's backward.
	for j := 0; j < n; j++ {
		b.DW[j] += out.DW[j]
	}
	// MatMul backward for the 1×in row.
	for k := 0; k < in; k++ {
		wrow := w.W[k*n : (k+1)*n]
		wdrow := w.DW[k*n : (k+1)*n]
		var acc float64
		av := x.W[k]
		for j := 0; j < n; j++ {
			od := out.DW[j]
			acc += od * wrow[j]
			wdrow[j] += od * av
		}
		x.DW[k] += acc
	}
}

func backLSTMStep(o *tapeOp) {
	cell := o.cell
	x, h, cPrev := o.a, o.b, o.c
	hNext, cNext := o.out, o.out2
	acts, tc := o.aux, o.aux2
	H := cell.Hidden
	dG := acts.DW // scratch for pre-activation gradients
	for j := 0; j < H; j++ {
		iv := acts.W[j]
		fv := acts.W[H+j]
		ov := acts.W[2*H+j]
		cv := acts.W[3*H+j]
		tcj := tc.W[j]
		dh := hNext.DW[j]
		dO := dh * tcj
		dtc := dh * ov
		cNext.DW[j] += dtc * (1 - tcj*tcj)
		dc := cNext.DW[j]
		dF := dc * cPrev.W[j]
		cPrev.DW[j] += dc * fv
		dI := dc * cv
		dCand := dc * iv
		dG[j] = dI * iv * (1 - iv)
		dG[H+j] = dF * fv * (1 - fv)
		dG[2*H+j] = dO * ov * (1 - ov)
		dG[3*H+j] = dCand * (1 - cv*cv)
	}
	n := 4 * H
	for j := 0; j < n; j++ {
		cell.B.DW[j] += dG[j]
	}
	backRowMatMulInto(h, cell.Wh, dG)
	backRowMatMulInto(x, cell.Wx, dG)
}

// backRowMatMulInto accumulates the gradients of out = x·W for a 1×in row x
// given dOut, matching backMatMul's inner loop exactly.
func backRowMatMulInto(x, w *Tensor, dOut []float64) {
	in, n := x.Cols, w.Cols
	for k := 0; k < in; k++ {
		wrow := w.W[k*n : (k+1)*n]
		wdrow := w.DW[k*n : (k+1)*n]
		var acc float64
		av := x.W[k]
		for j := 0; j < n; j++ {
			od := dOut[j]
			acc += od * wrow[j]
			wdrow[j] += od * av
		}
		x.DW[k] += acc
	}
}

func backAttendSoftmaxContext(o *tapeOp) {
	q, H := o.a, o.b
	ctx, alpha, sc := o.out, o.aux, o.aux2
	// WeightedSumRows backward (ctx = alpha·H).
	backWeightedSumRows(alpha, H, ctx)
	// SoftmaxRow backward (alpha = softmax(scores)) into the score scratch.
	var dot float64
	for i := range alpha.W {
		dot += alpha.W[i] * alpha.DW[i]
	}
	for i := range alpha.W {
		sc.DW[i] += alpha.W[i] * (alpha.DW[i] - dot)
	}
	// AttendDot backward (scores = q·Hᵀ).
	backAttendDot(q, H, sc.DW)
}
