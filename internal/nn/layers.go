package nn

import "math/rand"

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *Tensor // in×out
	B *Tensor // 1×out
}

// NewLinear allocates a layer with Xavier initialization.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	return &Linear{W: NewRandom(in, out, rng), B: NewTensor(1, out)}
}

// Apply computes the layer output for a 1×in input with the fused
// AffineRow kernel (numerically identical to Add(MatMul(x, W), B)).
//
//genielint:returns-arena
func (l *Linear) Apply(g *Graph, x *Tensor) *Tensor {
	return g.AffineRow(x, l.W, l.B)
}

// Params returns the trainable tensors.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// LSTMCell is a standard LSTM with combined gate weights: for input x (1×in)
// and state (h, c) (1×hidden each), gates = x·Wx + h·Wh + b laid out as
// [input | forget | output | candidate].
type LSTMCell struct {
	Wx     *Tensor // in×4h
	Wh     *Tensor // h×4h
	B      *Tensor // 1×4h
	Hidden int
}

// NewLSTMCell allocates a cell; the forget-gate bias starts at 1 for stable
// early training.
func NewLSTMCell(in, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		Wx:     NewRandom(in, 4*hidden, rng),
		Wh:     NewRandom(hidden, 4*hidden, rng),
		B:      NewTensor(1, 4*hidden),
		Hidden: hidden,
	}
	for j := hidden; j < 2*hidden; j++ {
		c.B.W[j] = 1
	}
	return c
}

// Step advances the cell one timestep with the fused kernel: both gate
// matmuls, bias, activations and state update in one pass and one tape
// record (numerically identical to the chained MatMul/Add/Sigmoid/Tanh/Mul
// composition).
//
//genielint:returns-arena
func (l *LSTMCell) Step(g *Graph, x, h, c *Tensor) (hNext, cNext *Tensor) {
	return g.lstmStep(l, x, h, c)
}

// StepBatch advances the cell one timestep for B stacked rows with the
// batched fused kernel; per row it is numerically identical to Step. Rows
// where active is false carry their state through unchanged and contribute
// nothing to gradients (nil = all rows active); the active slice is retained
// until Backward/Reset.
//
//genielint:returns-arena
func (l *LSTMCell) StepBatch(g *Graph, x, h, c *Tensor, active []bool) (hNext, cNext *Tensor) {
	return g.lstmStepBatch(l, x, h, c, active)
}

// InitState returns fresh zero state tensors on the heap.
func (l *LSTMCell) InitState() (h, c *Tensor) {
	return NewTensor(1, l.Hidden), NewTensor(1, l.Hidden)
}

// ZeroState returns zero state tensors owned by the graph (arena-recycled
// when the graph has one); preferred inside training loops.
//
//genielint:returns-arena
func (l *LSTMCell) ZeroState(g *Graph) (h, c *Tensor) {
	return g.NewTensor(1, l.Hidden), g.NewTensor(1, l.Hidden)
}

// Params returns the trainable tensors.
func (l *LSTMCell) Params() []*Tensor { return []*Tensor{l.Wx, l.Wh, l.B} }

// sliceRow views columns [from, to) of a row vector as a new tensor sharing
// gradients (kept as the unfused building block the LSTM kernel is verified
// against).
func (g *Graph) sliceRow(a *Tensor, from, to int) *Tensor {
	out := g.NewTensor(1, to-from)
	copy(out.W, a.W[from:to])
	g.push(tapeOp{kind: opSliceRow, a: a, idx: from, idx2: to, out: out})
	return out
}

// Embedding is a trainable token-embedding table.
type Embedding struct {
	Table *Tensor // vocab×dim
}

// NewEmbedding allocates an embedding table.
func NewEmbedding(vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{Table: NewRandom(vocab, dim, rng)}
}

// Lookup returns the embedding row of a token.
//
//genielint:returns-arena
func (e *Embedding) Lookup(g *Graph, idx int) *Tensor { return g.LookupRow(e.Table, idx) }

// Params returns the trainable tensors.
func (e *Embedding) Params() []*Tensor { return []*Tensor{e.Table} }
