package nn

import "math/rand"

// Linear is a fully connected layer y = x·W + b.
type Linear struct {
	W *Tensor // in×out
	B *Tensor // 1×out
}

// NewLinear allocates a layer with Xavier initialization.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	return &Linear{W: NewRandom(in, out, rng), B: NewTensor(1, out)}
}

// Apply computes the layer output for a 1×in input.
func (l *Linear) Apply(g *Graph, x *Tensor) *Tensor {
	return g.Add(g.MatMul(x, l.W), l.B)
}

// Params returns the trainable tensors.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// LSTMCell is a standard LSTM with combined gate weights: for input x (1×in)
// and state (h, c) (1×hidden each), gates = x·Wx + h·Wh + b laid out as
// [input | forget | output | candidate].
type LSTMCell struct {
	Wx     *Tensor // in×4h
	Wh     *Tensor // h×4h
	B      *Tensor // 1×4h
	Hidden int
}

// NewLSTMCell allocates a cell; the forget-gate bias starts at 1 for stable
// early training.
func NewLSTMCell(in, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		Wx:     NewRandom(in, 4*hidden, rng),
		Wh:     NewRandom(hidden, 4*hidden, rng),
		B:      NewTensor(1, 4*hidden),
		Hidden: hidden,
	}
	for j := hidden; j < 2*hidden; j++ {
		c.B.W[j] = 1
	}
	return c
}

// Step advances the cell one timestep.
func (l *LSTMCell) Step(g *Graph, x, h, c *Tensor) (hNext, cNext *Tensor) {
	gates := g.Add(g.Add(g.MatMul(x, l.Wx), g.MatMul(h, l.Wh)), l.B)
	H := l.Hidden
	slice := func(from int) *Tensor { return g.sliceRow(gates, from*H, (from+1)*H) }
	i := g.Sigmoid(slice(0))
	f := g.Sigmoid(slice(1))
	o := g.Sigmoid(slice(2))
	cand := g.Tanh(slice(3))
	cNext = g.Add(g.Mul(f, c), g.Mul(i, cand))
	hNext = g.Mul(o, g.Tanh(cNext))
	return hNext, cNext
}

// InitState returns fresh zero state tensors.
func (l *LSTMCell) InitState() (h, c *Tensor) {
	return NewTensor(1, l.Hidden), NewTensor(1, l.Hidden)
}

// Params returns the trainable tensors.
func (l *LSTMCell) Params() []*Tensor { return []*Tensor{l.Wx, l.Wh, l.B} }

// sliceRow views columns [from, to) of a row vector as a new tensor sharing
// gradients.
func (g *Graph) sliceRow(a *Tensor, from, to int) *Tensor {
	out := NewTensor(1, to-from)
	copy(out.W, a.W[from:to])
	g.push(func() {
		for i := range out.DW {
			a.DW[from+i] += out.DW[i]
		}
	})
	return out
}

// Embedding is a trainable token-embedding table.
type Embedding struct {
	Table *Tensor // vocab×dim
}

// NewEmbedding allocates an embedding table.
func NewEmbedding(vocab, dim int, rng *rand.Rand) *Embedding {
	return &Embedding{Table: NewRandom(vocab, dim, rng)}
}

// Lookup returns the embedding row of a token.
func (e *Embedding) Lookup(g *Graph, idx int) *Tensor { return g.LookupRow(e.Table, idx) }

// Params returns the trainable tensors.
func (e *Embedding) Params() []*Tensor { return []*Tensor{e.Table} }
