package nn

import (
	"math"
	"math/rand"
)

// MatMul returns a·b.
func (g *Graph) MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic("nn: matmul shape mismatch")
	}
	out := NewTensor(a.Rows, b.Cols)
	n, m, p := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		arow := a.W[i*m : (i+1)*m]
		orow := out.W[i*p : (i+1)*p]
		for k := 0; k < m; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.W[k*p : (k+1)*p]
			for j := 0; j < p; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	g.push(func() {
		for i := 0; i < n; i++ {
			arow := a.W[i*m : (i+1)*m]
			adrow := a.DW[i*m : (i+1)*m]
			odrow := out.DW[i*p : (i+1)*p]
			for k := 0; k < m; k++ {
				brow := b.W[k*p : (k+1)*p]
				bdrow := b.DW[k*p : (k+1)*p]
				var acc float64
				av := arow[k]
				for j := 0; j < p; j++ {
					od := odrow[j]
					acc += od * brow[j]
					bdrow[j] += od * av
				}
				adrow[k] += acc
			}
		}
	})
	return out
}

// Add returns a+b (same shape).
func (g *Graph) Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = a.W[i] + b.W[i]
	}
	g.push(func() {
		for i := range out.DW {
			a.DW[i] += out.DW[i]
			b.DW[i] += out.DW[i]
		}
	})
	return out
}

// Mul returns the elementwise product.
func (g *Graph) Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = a.W[i] * b.W[i]
	}
	g.push(func() {
		for i := range out.DW {
			a.DW[i] += out.DW[i] * b.W[i]
			b.DW[i] += out.DW[i] * a.W[i]
		}
	})
	return out
}

// Tanh applies tanh elementwise.
func (g *Graph) Tanh(a *Tensor) *Tensor {
	out := NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = math.Tanh(a.W[i])
	}
	g.push(func() {
		for i := range out.DW {
			a.DW[i] += out.DW[i] * (1 - out.W[i]*out.W[i])
		}
	})
	return out
}

// Sigmoid applies the logistic function elementwise.
func (g *Graph) Sigmoid(a *Tensor) *Tensor {
	out := NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = 1 / (1 + math.Exp(-a.W[i]))
	}
	g.push(func() {
		for i := range out.DW {
			a.DW[i] += out.DW[i] * out.W[i] * (1 - out.W[i])
		}
	})
	return out
}

// ConcatRow concatenates row vectors (all 1×n_i) into one row vector.
func (g *Graph) ConcatRow(parts ...*Tensor) *Tensor {
	total := 0
	for _, p := range parts {
		if p.Rows != 1 {
			panic("nn: ConcatRow requires row vectors")
		}
		total += p.Cols
	}
	out := NewTensor(1, total)
	off := 0
	for _, p := range parts {
		copy(out.W[off:], p.W)
		off += p.Cols
	}
	g.push(func() {
		off := 0
		for _, p := range parts {
			for i := range p.W {
				p.DW[i] += out.DW[off+i]
			}
			off += p.Cols
		}
	})
	return out
}

// LookupRow selects row idx of an embedding matrix as a 1×Cols tensor.
func (g *Graph) LookupRow(emb *Tensor, idx int) *Tensor {
	out := NewTensor(1, emb.Cols)
	copy(out.W, emb.W[idx*emb.Cols:(idx+1)*emb.Cols])
	g.push(func() {
		base := idx * emb.Cols
		for i := range out.DW {
			emb.DW[base+i] += out.DW[i]
		}
	})
	return out
}

// Dropout zeroes elements with probability rate (training only), scaling
// the survivors by 1/(1-rate).
func (g *Graph) Dropout(a *Tensor, rate float64, rng *rand.Rand) *Tensor {
	if rate <= 0 || !g.NeedsGrad {
		return a
	}
	out := NewTensor(a.Rows, a.Cols)
	mask := make([]float64, len(a.W))
	scale := 1 / (1 - rate)
	for i := range a.W {
		if rng.Float64() >= rate {
			mask[i] = scale
		}
		out.W[i] = a.W[i] * mask[i]
	}
	g.push(func() {
		for i := range out.DW {
			a.DW[i] += out.DW[i] * mask[i]
		}
	})
	return out
}

// RowsToMatrix stacks 1×n rows into an m×n matrix that shares gradients with
// the rows.
func (g *Graph) RowsToMatrix(rows []*Tensor) *Tensor {
	if len(rows) == 0 {
		panic("nn: empty row stack")
	}
	n := rows[0].Cols
	out := NewTensor(len(rows), n)
	for i, r := range rows {
		copy(out.W[i*n:], r.W)
	}
	g.push(func() {
		for i, r := range rows {
			for j := 0; j < n; j++ {
				r.DW[j] += out.DW[i*n+j]
			}
		}
	})
	return out
}

// SoftmaxRow computes softmax over a 1×n tensor.
func (g *Graph) SoftmaxRow(a *Tensor) *Tensor {
	out := NewTensor(1, a.Cols)
	maxV := math.Inf(-1)
	for _, v := range a.W {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range a.W {
		e := math.Exp(v - maxV)
		out.W[i] = e
		sum += e
	}
	for i := range out.W {
		out.W[i] /= sum
	}
	g.push(func() {
		var dot float64
		for i := range out.W {
			dot += out.W[i] * out.DW[i]
		}
		for i := range a.W {
			a.DW[i] += out.W[i] * (out.DW[i] - dot)
		}
	})
	return out
}

// AttendDot computes scores = q · Hᵀ for a query 1×h and memory m×h,
// returning a 1×m row.
func (g *Graph) AttendDot(q, H *Tensor) *Tensor {
	if q.Cols != H.Cols || q.Rows != 1 {
		panic("nn: AttendDot shape mismatch")
	}
	out := NewTensor(1, H.Rows)
	for i := 0; i < H.Rows; i++ {
		var s float64
		hrow := H.W[i*H.Cols : (i+1)*H.Cols]
		for j, qv := range q.W {
			s += qv * hrow[j]
		}
		out.W[i] = s
	}
	g.push(func() {
		for i := 0; i < H.Rows; i++ {
			od := out.DW[i]
			if od == 0 {
				continue
			}
			hrow := H.W[i*H.Cols : (i+1)*H.Cols]
			hdrow := H.DW[i*H.Cols : (i+1)*H.Cols]
			for j, qv := range q.W {
				q.DW[j] += od * hrow[j]
				hdrow[j] += od * qv
			}
		}
	})
	return out
}

// WeightedSumRows computes α·H for weights 1×m and memory m×h, returning a
// 1×h context vector.
func (g *Graph) WeightedSumRows(alpha, H *Tensor) *Tensor {
	if alpha.Cols != H.Rows {
		panic("nn: WeightedSumRows shape mismatch")
	}
	out := NewTensor(1, H.Cols)
	for i := 0; i < H.Rows; i++ {
		a := alpha.W[i]
		if a == 0 {
			continue
		}
		hrow := H.W[i*H.Cols : (i+1)*H.Cols]
		for j := range out.W {
			out.W[j] += a * hrow[j]
		}
	}
	g.push(func() {
		for i := 0; i < H.Rows; i++ {
			hrow := H.W[i*H.Cols : (i+1)*H.Cols]
			hdrow := H.DW[i*H.Cols : (i+1)*H.Cols]
			var acc float64
			a := alpha.W[i]
			for j := range out.DW {
				od := out.DW[j]
				acc += od * hrow[j]
				hdrow[j] += od * a
			}
			alpha.DW[i] += acc
		}
	})
	return out
}

// NLLPointerMix computes the mixed pointer–generator loss of Section 4.1:
//
//	p(tok) = g·P_vocab(tok) + (1−g)·Σ_{i: src_i = tok} α_i
//
// pvocab is the 1×V vocabulary distribution, alpha the 1×S attention over
// the source, pgen a 1×1 gate, copyMask[i] true where source position i
// holds the target token, and vocabIdx the target's vocabulary index (−1
// when out of vocabulary, forcing a pure copy). It returns −log p and wires
// gradients into pvocab, alpha and pgen.
func (g *Graph) NLLPointerMix(pvocab, alpha, pgen *Tensor, copyMask []bool, vocabIdx int) float64 {
	gate := pgen.W[0]
	var pv, pc float64
	if vocabIdx >= 0 {
		pv = pvocab.W[vocabIdx]
	}
	for i, m := range copyMask {
		if m {
			pc += alpha.W[i]
		}
	}
	p := gate*pv + (1-gate)*pc
	const eps = 1e-9
	loss := -math.Log(p + eps)
	g.push(func() {
		dp := -1 / (p + eps)
		if vocabIdx >= 0 {
			pvocab.DW[vocabIdx] += dp * gate
		}
		for i, m := range copyMask {
			if m {
				alpha.DW[i] += dp * (1 - gate)
			}
		}
		pgen.DW[0] += dp * (pv - pc)
	})
	return loss
}

func sameShape(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("nn: shape mismatch")
	}
}
