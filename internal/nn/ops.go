package nn

import (
	"math"
	"math/rand"
)

// matMulBlock is the cache tile edge for the general (multi-row) MatMul
// path: 64×64 float64 tiles of b fit comfortably in L1/L2 alongside the
// corresponding rows of a and out.
const matMulBlock = 64

// MatMul returns a·b. The dominant model case — a a single row — runs a
// tight fused accumulation over b's rows; the general matrix-matrix case is
// blocked over (k, j) tiles for cache locality.
func (g *Graph) MatMul(a, b *Tensor) *Tensor {
	if a.Cols != b.Rows {
		panic("nn: matmul shape mismatch")
	}
	out := g.NewTensor(a.Rows, b.Cols)
	n, m, p := a.Rows, a.Cols, b.Cols
	if n == 1 {
		rowMatMulInto(a.W, b, out.W)
	} else {
		for j0 := 0; j0 < p; j0 += matMulBlock {
			j1 := min(j0+matMulBlock, p)
			for k0 := 0; k0 < m; k0 += matMulBlock {
				k1 := min(k0+matMulBlock, m)
				for i := 0; i < n; i++ {
					arow := a.W[i*m : (i+1)*m]
					orow := out.W[i*p : (i+1)*p]
					for k := k0; k < k1; k++ {
						av := arow[k]
						if av == 0 {
							continue
						}
						brow := b.W[k*p : (k+1)*p]
						for j := j0; j < j1; j++ {
							orow[j] += av * brow[j]
						}
					}
				}
			}
		}
	}
	g.push(tapeOp{kind: opMatMul, a: a, b: b, out: out})
	return out
}

// rowMatMulInto accumulates x·W into dst for a row vector x (len in) and W
// (in×len(dst)).
func rowMatMulInto(x []float64, w *Tensor, dst []float64) {
	p := w.Cols
	for k, av := range x {
		if av == 0 {
			continue
		}
		wrow := w.W[k*p : (k+1)*p]
		for j := range dst {
			dst[j] += av * wrow[j]
		}
	}
}

// Add returns a+b (same shape).
func (g *Graph) Add(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := g.NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = a.W[i] + b.W[i]
	}
	g.push(tapeOp{kind: opAdd, a: a, b: b, out: out})
	return out
}

// Mul returns the elementwise product.
func (g *Graph) Mul(a, b *Tensor) *Tensor {
	sameShape(a, b)
	out := g.NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = a.W[i] * b.W[i]
	}
	g.push(tapeOp{kind: opMul, a: a, b: b, out: out})
	return out
}

// Tanh applies tanh elementwise.
func (g *Graph) Tanh(a *Tensor) *Tensor {
	out := g.NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = math.Tanh(a.W[i])
	}
	g.push(tapeOp{kind: opTanh, a: a, out: out})
	return out
}

// Sigmoid applies the logistic function elementwise.
func (g *Graph) Sigmoid(a *Tensor) *Tensor {
	out := g.NewTensor(a.Rows, a.Cols)
	for i := range out.W {
		out.W[i] = 1 / (1 + math.Exp(-a.W[i]))
	}
	g.push(tapeOp{kind: opSigmoid, a: a, out: out})
	return out
}

// ConcatRow concatenates row vectors (all 1×n_i) into one row vector. The
// two-part case (every model call site) is recorded without retaining the
// argument slice, so the variadic slice stays on the caller's stack.
func (g *Graph) ConcatRow(parts ...*Tensor) *Tensor {
	total := 0
	for _, p := range parts {
		if p.Rows != 1 {
			panic("nn: ConcatRow requires row vectors")
		}
		total += p.Cols
	}
	out := g.NewTensor(1, total)
	off := 0
	for _, p := range parts {
		copy(out.W[off:], p.W)
		off += p.Cols
	}
	if len(parts) == 2 {
		g.push(tapeOp{kind: opConcatRow2, a: parts[0], b: parts[1], out: out})
	} else {
		g.push(tapeOp{kind: opConcatRowN, list: append([]*Tensor(nil), parts...), out: out})
	}
	return out
}

// LookupRow selects row idx of an embedding matrix as a 1×Cols tensor.
func (g *Graph) LookupRow(emb *Tensor, idx int) *Tensor {
	out := g.NewTensor(1, emb.Cols)
	copy(out.W, emb.W[idx*emb.Cols:(idx+1)*emb.Cols])
	g.push(tapeOp{kind: opLookupRow, a: emb, idx: idx, out: out})
	return out
}

// Dropout zeroes elements with probability rate (training only), scaling
// the survivors by 1/(1-rate).
func (g *Graph) Dropout(a *Tensor, rate float64, rng *rand.Rand) *Tensor {
	if rate <= 0 || !g.NeedsGrad {
		return a
	}
	out := g.NewTensor(a.Rows, a.Cols)
	maskT := g.NewTensor(a.Rows, a.Cols)
	mask := maskT.W
	scale := 1 / (1 - rate)
	for i := range a.W {
		if rng.Float64() >= rate {
			mask[i] = scale
		}
		out.W[i] = a.W[i] * mask[i]
	}
	g.push(tapeOp{kind: opDropout, a: a, aux: maskT, out: out})
	return out
}

// RowsToMatrix stacks 1×n rows into an m×n matrix that shares gradients with
// the rows. The rows slice is retained until Backward/Reset; callers reusing
// a scratch slice must not overwrite it before then.
func (g *Graph) RowsToMatrix(rows []*Tensor) *Tensor {
	if len(rows) == 0 {
		panic("nn: empty row stack")
	}
	n := rows[0].Cols
	out := g.NewTensor(len(rows), n)
	for i, r := range rows {
		copy(out.W[i*n:], r.W)
	}
	g.push(tapeOp{kind: opRowsToMatrix, list: rows, out: out})
	return out
}

// SoftmaxRow computes softmax over a 1×n tensor.
func (g *Graph) SoftmaxRow(a *Tensor) *Tensor {
	out := g.NewTensor(1, a.Cols)
	softmaxInto(a.W, out.W)
	g.push(tapeOp{kind: opSoftmaxRow, a: a, out: out})
	return out
}

func softmaxInto(src, dst []float64) {
	maxV := math.Inf(-1)
	for _, v := range src {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range src {
		e := math.Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// AttendDot computes scores = q · Hᵀ for a query 1×h and memory m×h,
// returning a 1×m row.
func (g *Graph) AttendDot(q, H *Tensor) *Tensor {
	if q.Cols != H.Cols || q.Rows != 1 {
		panic("nn: AttendDot shape mismatch")
	}
	out := g.NewTensor(1, H.Rows)
	attendDotInto(q.W, H, out.W)
	g.push(tapeOp{kind: opAttendDot, a: q, b: H, out: out})
	return out
}

func attendDotInto(q []float64, H *Tensor, dst []float64) {
	for i := 0; i < H.Rows; i++ {
		var s float64
		hrow := H.W[i*H.Cols : (i+1)*H.Cols]
		for j, qv := range q {
			s += qv * hrow[j]
		}
		dst[i] = s
	}
}

// WeightedSumRows computes α·H for weights 1×m and memory m×h, returning a
// 1×h context vector.
func (g *Graph) WeightedSumRows(alpha, H *Tensor) *Tensor {
	if alpha.Cols != H.Rows {
		panic("nn: WeightedSumRows shape mismatch")
	}
	out := g.NewTensor(1, H.Cols)
	weightedSumInto(alpha.W, H, out.W)
	g.push(tapeOp{kind: opWeightedSumRows, a: alpha, b: H, out: out})
	return out
}

func weightedSumInto(alpha []float64, H *Tensor, dst []float64) {
	for i := 0; i < H.Rows; i++ {
		a := alpha[i]
		if a == 0 {
			continue
		}
		hrow := H.W[i*H.Cols : (i+1)*H.Cols]
		for j := range dst {
			dst[j] += a * hrow[j]
		}
	}
}

// NLLPointerMix computes the mixed pointer–generator loss of Section 4.1:
//
//	p(tok) = g·P_vocab(tok) + (1−g)·Σ_{i: src_i = tok} α_i
//
// pvocab is the 1×V vocabulary distribution, alpha the 1×S attention over
// the source, pgen a 1×1 gate, copyMask[i] true where source position i
// holds the target token, and vocabIdx the target's vocabulary index (−1
// when out of vocabulary, forcing a pure copy). It returns −log p and wires
// gradients into pvocab, alpha and pgen. The copyMask slice is retained
// until Backward/Reset; per-token masks must be distinct buffers within one
// step.
func (g *Graph) NLLPointerMix(pvocab, alpha, pgen *Tensor, copyMask []bool, vocabIdx int) float64 {
	gate := pgen.W[0]
	var pv, pc float64
	if vocabIdx >= 0 {
		pv = pvocab.W[vocabIdx]
	}
	for i, m := range copyMask {
		if m {
			pc += alpha.W[i]
		}
	}
	p := gate*pv + (1-gate)*pc
	const eps = 1e-9
	loss := -math.Log(p + eps)
	g.push(tapeOp{kind: opNLLPointerMix, a: pvocab, b: alpha, c: pgen, mask: copyMask, idx: vocabIdx, fval: p})
	return loss
}

// NLLPointerMixCtx is the contextual twin of NLLPointerMix: the copy half of
// the mixture is itself a mixture of copying from the source attention
// (alpha over srcMask) and from the previous-turn program attention (beta
// over ctxMask), weighted by the context gate pctx:
//
//	p = gate·pvocab[idx] + (1−gate)·((1−pctx)·Σ srcMask·alpha + pctx·Σ ctxMask·beta)
//
// The masks slice header pair is retained on the tape until Backward/Reset,
// so callers must give each call distinct backings (the model slices them out
// of one growing buffer per step, as with NLLPointerMix).
func (g *Graph) NLLPointerMixCtx(pvocab, alpha, beta, pgen, pctx *Tensor, srcMask, ctxMask []bool, vocabIdx int) float64 {
	gate, cg := pgen.W[0], pctx.W[0]
	var pv, ps, pc float64
	if vocabIdx >= 0 {
		pv = pvocab.W[vocabIdx]
	}
	for i, m := range srcMask {
		if m {
			ps += alpha.W[i]
		}
	}
	for i, m := range ctxMask {
		if m {
			pc += beta.W[i]
		}
	}
	p := gate*pv + (1-gate)*((1-cg)*ps+cg*pc)
	const eps = 1e-9
	loss := -math.Log(p + eps)
	g.push(tapeOp{
		kind: opNLLPointerMixCtx, a: pvocab, b: alpha, c: pgen,
		aux: beta, aux2: pctx, masks: [][]bool{srcMask, ctxMask},
		idx: vocabIdx, fval: p,
	})
	return loss
}

func sameShape(a, b *Tensor) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("nn: shape mismatch")
	}
}
