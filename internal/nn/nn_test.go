package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericalGrad estimates d(loss)/d(param[i]) with central differences.
func numericalGrad(param *Tensor, i int, loss func() float64) float64 {
	const h = 1e-5
	orig := param.W[i]
	param.W[i] = orig + h
	up := loss()
	param.W[i] = orig - h
	down := loss()
	param.W[i] = orig
	return (up - down) / (2 * h)
}

// sumLoss runs f in a fresh graph and returns the scalar sum of the output;
// used as a simple differentiable objective.
func checkGradients(t *testing.T, params []*Tensor, forward func(g *Graph) *Tensor) {
	t.Helper()
	loss := func() float64 {
		g := NewGraph(false)
		out := forward(g)
		var s float64
		for i, v := range out.W {
			s += v * float64(i+1) // weighted so gradients differ per element
		}
		return s
	}
	// Analytic gradients.
	g := NewGraph(true)
	out := forward(g)
	for i := range out.DW {
		out.DW[i] = float64(i + 1)
	}
	g.Backward()
	for pi, p := range params {
		for i := range p.W {
			want := numericalGrad(p, i, loss)
			got := p.DW[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d elem %d: analytic %g, numeric %g", pi, i, got, want)
			}
		}
		p.ZeroGrad()
	}
}

func TestMatMulGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRandom(3, 4, rng)
	b := NewRandom(4, 2, rng)
	checkGradients(t, []*Tensor{a, b}, func(g *Graph) *Tensor { return g.MatMul(a, b) })
}

func TestElementwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewRandom(2, 3, rng)
	b := NewRandom(2, 3, rng)
	checkGradients(t, []*Tensor{a, b}, func(g *Graph) *Tensor { return g.Add(a, b) })
	checkGradients(t, []*Tensor{a, b}, func(g *Graph) *Tensor { return g.Mul(a, b) })
	checkGradients(t, []*Tensor{a}, func(g *Graph) *Tensor { return g.Tanh(a) })
	checkGradients(t, []*Tensor{a}, func(g *Graph) *Tensor { return g.Sigmoid(a) })
}

func TestConcatLookupSliceGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewRandom(1, 3, rng)
	b := NewRandom(1, 2, rng)
	checkGradients(t, []*Tensor{a, b}, func(g *Graph) *Tensor { return g.ConcatRow(a, b) })
	emb := NewRandom(5, 4, rng)
	checkGradients(t, []*Tensor{emb}, func(g *Graph) *Tensor { return g.LookupRow(emb, 2) })
	c := NewRandom(1, 6, rng)
	checkGradients(t, []*Tensor{c}, func(g *Graph) *Tensor { return g.sliceRow(c, 1, 4) })
}

func TestSoftmaxAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewRandom(1, 5, rng)
	checkGradients(t, []*Tensor{a}, func(g *Graph) *Tensor { return g.SoftmaxRow(a) })
	q := NewRandom(1, 4, rng)
	H := NewRandom(3, 4, rng)
	checkGradients(t, []*Tensor{q, H}, func(g *Graph) *Tensor { return g.AttendDot(q, H) })
	alpha := NewRandom(1, 3, rng)
	checkGradients(t, []*Tensor{alpha, H}, func(g *Graph) *Tensor { return g.WeightedSumRows(alpha, H) })
}

func TestLSTMCellGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cell := NewLSTMCell(3, 4, rng)
	x := NewRandom(1, 3, rng)
	params := append([]*Tensor{x}, cell.Params()...)
	checkGradients(t, params, func(g *Graph) *Tensor {
		h, c := cell.InitState()
		h1, c1 := cell.Step(g, x, h, c)
		h2, _ := cell.Step(g, x, h1, c1)
		return h2
	})
}

func TestPointerMixGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Build softmaxed distributions from raw scores so gradients are
	// meaningful.
	scoresV := NewRandom(1, 4, rng)
	scoresA := NewRandom(1, 3, rng)
	gateRaw := NewRandom(1, 1, rng)
	mask := []bool{true, false, true}

	loss := func() float64 {
		g := NewGraph(false)
		pv := g.SoftmaxRow(scoresV)
		al := g.SoftmaxRow(scoresA)
		gate := g.Sigmoid(gateRaw)
		return g.NLLPointerMix(pv, al, gate, mask, 2)
	}
	g := NewGraph(true)
	pv := g.SoftmaxRow(scoresV)
	al := g.SoftmaxRow(scoresA)
	gate := g.Sigmoid(gateRaw)
	g.NLLPointerMix(pv, al, gate, mask, 2)
	g.Backward()
	for _, p := range []*Tensor{scoresV, scoresA, gateRaw} {
		for i := range p.W {
			want := numericalGrad(p, i, loss)
			got := p.DW[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("pointer mix grad mismatch: analytic %g numeric %g", got, want)
			}
		}
	}
	// OOV target: only the copy path contributes.
	g2 := NewGraph(true)
	pv2 := g2.SoftmaxRow(scoresV)
	al2 := g2.SoftmaxRow(scoresA)
	gate2 := g2.Sigmoid(gateRaw)
	l := g2.NLLPointerMix(pv2, al2, gate2, mask, -1)
	if math.IsNaN(l) || math.IsInf(l, 0) {
		t.Fatal("OOV pointer loss not finite")
	}
}

func TestQuickSoftmaxIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		n := 1 + rng.Intn(10)
		a := NewRandom(1, n, rng)
		g := NewGraph(false)
		p := g.SoftmaxRow(a)
		var sum float64
		for _, v := range p.W {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAdamConvergesOnToyProblem(t *testing.T) {
	// Fit y = 2x - 3 with a single linear unit.
	rng := rand.New(rand.NewSource(8))
	lin := NewLinear(1, 1, rng)
	opt := NewAdam(0.05)
	var lastLoss float64
	for step := 0; step < 400; step++ {
		x := rng.Float64()*4 - 2
		target := 2*x - 3
		g := NewGraph(true)
		in := NewTensor(1, 1)
		in.W[0] = x
		out := lin.Apply(g, in)
		diff := out.W[0] - target
		lastLoss = diff * diff
		out.DW[0] = 2 * diff
		g.Backward()
		opt.Step(lin.Params())
	}
	if lastLoss > 1e-2 {
		t.Errorf("Adam failed to fit a line: final loss %g, W=%g b=%g", lastLoss, lin.W.W[0], lin.B.W[0])
	}
}

func TestGradientClipping(t *testing.T) {
	p := NewTensor(1, 2)
	p.DW[0], p.DW[1] = 30, 40 // norm 50
	opt := NewAdam(0.1)
	opt.Clip = 5
	before := [2]float64{p.DW[0], p.DW[1]}
	opt.Step([]*Tensor{p})
	_ = before
	// After the step gradients are cleared; verify the update magnitude is
	// bounded (clipped direction preserved).
	if math.Abs(p.W[0]) > 0.2 || math.Abs(p.W[1]) > 0.2 {
		t.Errorf("clipped update too large: %v", p.W)
	}
	if p.DW[0] != 0 || p.DW[1] != 0 {
		t.Error("gradients not cleared after step")
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewRandom(1, 8, rng)
	g := NewGraph(false)
	out := g.Dropout(a, 0.5, rng)
	for i := range a.W {
		if out.W[i] != a.W[i] {
			t.Fatal("dropout should be identity at inference")
		}
	}
}
