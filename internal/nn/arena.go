package nn

// Arena is a size-bucketed freelist of intermediate tensors. A graph built
// with NewGraphArena draws every intermediate from its arena; Graph.Reset
// (called between training steps) returns them all to the freelist, so after
// the first step of a given shape the steady state performs no heap
// allocation. Cold allocations carve float buffers out of large slabs and
// tensor structs out of chunks, so even the first step allocates far less
// than per-tensor `make` calls.
//
// Lifetime rules:
//   - Tensors obtained from an arena graph are valid only until the next
//     Reset; never retain them across steps.
//   - Parameters (weights the optimizer updates) must stay heap-owned — an
//     arena must never hand out a tensor that outlives a Reset.
//   - An Arena is not safe for concurrent use; give each training goroutine
//     its own (the parallel experiment harness trains one model per job, so
//     each model.Train call owns one arena).
//
//genielint:arena-source
type Arena struct {
	free map[int][]*Tensor // recycled tensors by element count
	live []*Tensor         // handed out since the last Reset

	structs []Tensor  // current struct chunk
	si      int       // next free struct in the chunk
	floats  []float64 // current float slab
	fi      int       // next free float in the slab
}

const (
	arenaSlabFloats  = 1 << 15 // 256 KiB of float64 per slab
	arenaStructChunk = 256
)

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][]*Tensor)}
}

// Get returns a zeroed rows×cols tensor, recycling one of the same size if
// available.
func (a *Arena) Get(rows, cols int) *Tensor {
	n := rows * cols
	if l := a.free[n]; len(l) > 0 {
		t := l[len(l)-1]
		a.free[n] = l[:len(l)-1]
		t.Rows, t.Cols = rows, cols
		clear(t.W)
		clear(t.DW)
		a.live = append(a.live, t)
		return t
	}
	if a.si == len(a.structs) {
		a.structs = make([]Tensor, arenaStructChunk)
		a.si = 0
	}
	t := &a.structs[a.si]
	a.si++
	t.W = a.allocFloats(n)
	t.DW = a.allocFloats(n)
	t.Rows, t.Cols = rows, cols
	a.live = append(a.live, t)
	return t
}

func (a *Arena) allocFloats(n int) []float64 {
	if a.fi+n > len(a.floats) {
		size := arenaSlabFloats
		if n > size {
			size = n
		}
		a.floats = make([]float64, size)
		a.fi = 0
	}
	s := a.floats[a.fi : a.fi+n : a.fi+n]
	a.fi += n
	return s
}

// Reset returns every live tensor to the freelist. All tensors handed out
// since the previous Reset become invalid.
func (a *Arena) Reset() {
	for _, t := range a.live {
		n := len(t.W)
		a.free[n] = append(a.free[n], t)
	}
	a.live = a.live[:0]
}

// Live reports how many tensors are currently handed out (diagnostics).
func (a *Arena) Live() int { return len(a.live) }
