package nn

import "sync"

// GraphPool is a sync.Pool of inference graphs (NeedsGrad=false), each backed
// by its own Arena. Get hands out a graph ready for a forward pass; Put
// resets it — recycling every intermediate tensor it produced — and returns
// it to the pool. One pool makes a trained model servable from many
// goroutines: each in-flight request holds a private graph, and once the
// pooled arenas are warm, steady-state traffic performs no heap allocation.
//
// Lifetime rules follow Arena's: tensors obtained from a pooled graph are
// valid only until the graph goes back via Put; never retain them across
// requests. A single graph is still single-goroutine — the pool provides
// exclusion by handing each goroutine its own.
//
//genielint:pool
type GraphPool struct {
	p sync.Pool
}

// NewGraphPool returns an empty pool; graphs are created on demand.
func NewGraphPool() *GraphPool {
	gp := &GraphPool{}
	gp.p.New = func() any { return NewGraphArena(false, NewArena()) }
	return gp
}

// Get returns an inference graph with an empty arena working set.
func (gp *GraphPool) Get() *Graph { return gp.p.Get().(*Graph) }

// Put resets g, invalidating every tensor it handed out, and recycles it.
func (gp *GraphPool) Put(g *Graph) {
	g.Reset()
	gp.p.Put(g)
}
