package nn

import (
	"math"
	"math/rand"
	"testing"
)

// unfusedAffineRow is the op chain AffineRow replaces.
func unfusedAffineRow(g *Graph, x, w, b *Tensor) *Tensor {
	return g.Add(g.MatMul(x, w), b)
}

// unfusedLSTMStep is the op chain lstmStep replaces (the pre-fusion
// LSTMCell.Step body).
func unfusedLSTMStep(g *Graph, l *LSTMCell, x, h, c *Tensor) (hNext, cNext *Tensor) {
	gates := g.Add(g.Add(g.MatMul(x, l.Wx), g.MatMul(h, l.Wh)), l.B)
	H := l.Hidden
	slice := func(from int) *Tensor { return g.sliceRow(gates, from*H, (from+1)*H) }
	i := g.Sigmoid(slice(0))
	f := g.Sigmoid(slice(1))
	o := g.Sigmoid(slice(2))
	cand := g.Tanh(slice(3))
	cNext = g.Add(g.Mul(f, c), g.Mul(i, cand))
	hNext = g.Mul(o, g.Tanh(cNext))
	return hNext, cNext
}

// unfusedAttention is the op chain AttendSoftmaxContext replaces.
func unfusedAttention(g *Graph, q, H *Tensor) (alpha, ctx *Tensor) {
	scores := g.AttendDot(q, H)
	alpha = g.SoftmaxRow(scores)
	ctx = g.WeightedSumRows(alpha, H)
	return alpha, ctx
}

const parityTol = 1e-13

func assertClose(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > parityTol*(1+math.Abs(want[i])) {
			t.Fatalf("%s[%d]: fused %g, unfused %g", name, i, got[i], want[i])
		}
	}
}

// cloneParams deep-copies tensors so fused and unfused passes start from
// identical weights and accumulate gradients independently.
func cloneParams(ts []*Tensor) []*Tensor {
	out := make([]*Tensor, len(ts))
	for i, t := range ts {
		c := NewTensor(t.Rows, t.Cols)
		copy(c.W, t.W)
		out[i] = c
	}
	return out
}

// TestAffineRowMatchesUnfused checks forward values and all gradients of the
// fused kernel against the Add(MatMul) composition.
func TestAffineRowMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := NewRandom(1, 5, rng)
	w := NewRandom(5, 7, rng)
	b := NewRandom(1, 7, rng)
	cl := cloneParams([]*Tensor{x, w, b})
	x2, w2, b2 := cl[0], cl[1], cl[2]

	g1 := NewGraph(true)
	out1 := g1.AffineRow(x, w, b)
	for i := range out1.DW {
		out1.DW[i] = float64(i + 1)
	}
	g1.Backward()

	g2 := NewGraph(true)
	out2 := unfusedAffineRow(g2, x2, w2, b2)
	for i := range out2.DW {
		out2.DW[i] = float64(i + 1)
	}
	g2.Backward()

	assertClose(t, "out", out1.W, out2.W)
	assertClose(t, "dx", x.DW, x2.DW)
	assertClose(t, "dW", w.DW, w2.DW)
	assertClose(t, "db", b.DW, b2.DW)
}

// TestAffineRowGradients checks the fused kernel against finite differences.
func TestAffineRowGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := NewRandom(1, 4, rng)
	w := NewRandom(4, 3, rng)
	b := NewRandom(1, 3, rng)
	checkGradients(t, []*Tensor{x, w, b}, func(g *Graph) *Tensor { return g.AffineRow(x, w, b) })
}

// TestLSTMStepMatchesUnfused checks the fused LSTM step against the chained
// MatMul/Add/Sigmoid/Tanh/Mul composition over two timesteps.
func TestLSTMStepMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cell := NewLSTMCell(3, 4, rng)
	x := NewRandom(1, 3, rng)
	cl := cloneParams([]*Tensor{x, cell.Wx, cell.Wh, cell.B})
	cell2 := &LSTMCell{Wx: cl[1], Wh: cl[2], B: cl[3], Hidden: cell.Hidden}
	x2 := cl[0]

	g1 := NewGraph(true)
	h0, c0 := cell.InitState()
	h1, c1 := cell.Step(g1, x, h0, c0)
	h2, c2 := cell.Step(g1, x, h1, c1)
	for i := range h2.DW {
		h2.DW[i] = float64(i + 1)
		c2.DW[i] = float64(2*i + 1)
	}
	g1.Backward()

	g2 := NewGraph(true)
	h0b, c0b := cell2.InitState()
	h1b, c1b := unfusedLSTMStep(g2, cell2, x2, h0b, c0b)
	h2b, c2b := unfusedLSTMStep(g2, cell2, x2, h1b, c1b)
	for i := range h2b.DW {
		h2b.DW[i] = float64(i + 1)
		c2b.DW[i] = float64(2*i + 1)
	}
	g2.Backward()

	assertClose(t, "h", h2.W, h2b.W)
	assertClose(t, "c", c2.W, c2b.W)
	assertClose(t, "dx", x.DW, x2.DW)
	assertClose(t, "dWx", cell.Wx.DW, cell2.Wx.DW)
	assertClose(t, "dWh", cell.Wh.DW, cell2.Wh.DW)
	assertClose(t, "dB", cell.B.DW, cell2.B.DW)
}

// TestLSTMStepFiniteDifferences checks the fused LSTM step against central
// differences (the pre-existing TestLSTMCellGradients covers the same path
// via LSTMCell.Step; this one pins the fused kernel explicitly).
func TestLSTMStepFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cell := NewLSTMCell(3, 4, rng)
	x := NewRandom(1, 3, rng)
	params := append([]*Tensor{x}, cell.Params()...)
	checkGradients(t, params, func(g *Graph) *Tensor {
		h, c := cell.InitState()
		h1, c1 := g.lstmStep(cell, x, h, c)
		h2, _ := g.lstmStep(cell, x, h1, c1)
		return h2
	})
}

// TestAttendSoftmaxContextMatchesUnfused checks the fused attention kernel
// against AttendDot + SoftmaxRow + WeightedSumRows, with gradients flowing
// into both outputs (the pointer loss reads alpha, the decoder reads ctx).
func TestAttendSoftmaxContextMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	q := NewRandom(1, 4, rng)
	H := NewRandom(3, 4, rng)
	cl := cloneParams([]*Tensor{q, H})
	q2, H2 := cl[0], cl[1]

	g1 := NewGraph(true)
	alpha1, ctx1 := g1.AttendSoftmaxContext(q, H)
	for i := range ctx1.DW {
		ctx1.DW[i] = float64(i + 1)
	}
	for i := range alpha1.DW {
		alpha1.DW[i] = float64(3*i + 2)
	}
	g1.Backward()

	g2 := NewGraph(true)
	alpha2, ctx2 := unfusedAttention(g2, q2, H2)
	for i := range ctx2.DW {
		ctx2.DW[i] = float64(i + 1)
	}
	for i := range alpha2.DW {
		alpha2.DW[i] = float64(3*i + 2)
	}
	g2.Backward()

	assertClose(t, "alpha", alpha1.W, alpha2.W)
	assertClose(t, "ctx", ctx1.W, ctx2.W)
	assertClose(t, "dq", q.DW, q2.DW)
	assertClose(t, "dH", H.DW, H2.DW)
}

// TestAttendSoftmaxContextFiniteDifferences drives the fused kernel's ctx
// output through the finite-difference checker.
func TestAttendSoftmaxContextFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	q := NewRandom(1, 4, rng)
	H := NewRandom(3, 4, rng)
	checkGradients(t, []*Tensor{q, H}, func(g *Graph) *Tensor {
		_, ctx := g.AttendSoftmaxContext(q, H)
		return ctx
	})
}

// TestArenaGraphMatchesHeapGraph runs the same fused network on an arena
// graph twice (with a Reset between) and on a heap graph, checking losses
// and gradients agree — recycled tensors must behave like fresh ones.
func TestArenaGraphMatchesHeapGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cell := NewLSTMCell(3, 4, rng)
	lin := NewLinear(4, 2, rng)
	x := NewRandom(1, 3, rng)

	run := func(g *Graph) []float64 {
		h, c := cell.ZeroState(g)
		h, _ = cell.Step(g, x, h, c)
		out := lin.Apply(g, h)
		for i := range out.DW {
			out.DW[i] = 1
		}
		g.Backward()
		grads := append([]float64(nil), cell.Wx.DW...)
		grads = append(grads, lin.W.DW...)
		grads = append(grads, x.DW...)
		for _, p := range append(cell.Params(), lin.W, lin.B, x) {
			p.ZeroGrad()
		}
		return grads
	}

	heap := run(NewGraph(true))
	ag := NewGraphArena(true, NewArena())
	first := run(ag)
	ag.Reset()
	second := run(ag)
	assertClose(t, "arena-vs-heap", first, heap)
	assertClose(t, "arena-after-reset", second, heap)
}

// TestArenaSteadyStateAllocationFree asserts that once warm, a full
// forward/backward/reset cycle over fused ops performs zero heap
// allocations.
func TestArenaSteadyStateAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	rng := rand.New(rand.NewSource(18))
	cell := NewLSTMCell(8, 16, rng)
	lin := NewLinear(16, 8, rng)
	x := NewRandom(1, 8, rng)
	g := NewGraphArena(true, NewArena())

	step := func() {
		g.Reset()
		h, c := cell.ZeroState(g)
		for i := 0; i < 4; i++ {
			h, c = cell.Step(g, x, h, c)
		}
		out := lin.Apply(g, h)
		for i := range out.DW {
			out.DW[i] = 1
		}
		g.Backward()
	}
	step() // warm the arena and tape
	if n := testing.AllocsPerRun(20, step); n > 0 {
		t.Errorf("steady-state fused step allocates: %v allocs/run", n)
	}
}
