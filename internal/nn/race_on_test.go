//go:build race

package nn

// raceEnabled reports whether this test binary was built with the race
// detector. Allocation-count assertions are skipped under race: the
// instrumented runtime adds heap allocations of its own (and defeats
// allocation-eliding optimizations like keyed map lookups on converted
// byte slices), so AllocsPerRun budgets tuned for the normal runtime are
// meaningless there. The non-race CI pass still enforces them.
const raceEnabled = true
