// Package nn is a pure-Go neural-network substrate: a tape-based reverse-
// mode autograd over dense matrices, LSTM cells, attention primitives, and
// the Adam optimizer. It is the foundation of the scaled-down MQAN semantic
// parser (Section 4 of the paper) in package model.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix with a gradient buffer. Row vectors are
// 1×n tensors.
type Tensor struct {
	W    []float64
	DW   []float64
	Rows int
	Cols int
}

// NewTensor allocates a zero tensor.
func NewTensor(rows, cols int) *Tensor {
	return &Tensor{
		W:    make([]float64, rows*cols),
		DW:   make([]float64, rows*cols),
		Rows: rows,
		Cols: cols,
	}
}

// NewRandom allocates a tensor with Xavier-uniform initialization.
func NewRandom(rows, cols int, rng *rand.Rand) *Tensor {
	t := NewTensor(rows, cols)
	scale := math.Sqrt(6.0 / float64(rows+cols))
	for i := range t.W {
		t.W[i] = (rng.Float64()*2 - 1) * scale
	}
	return t
}

// At returns element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.W[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.W[r*t.Cols+c] = v }

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.DW {
		t.DW[i] = 0
	}
}

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.W) }

// Row returns row r of the value buffer as a shared slice view into W (no
// copy, no gradient link); used for read-only inspection.
func (t *Tensor) Row(r int) []float64 { return t.W[r*t.Cols : (r+1)*t.Cols] }

func (t *Tensor) String() string { return fmt.Sprintf("Tensor(%dx%d)", t.Rows, t.Cols) }
